// Count (L1) tracking demo (Section 5): the coordinator maintains a
// (1 +/- eps) estimate of the total weight at all times. Compares the
// paper's SWOR-based tracker against the deterministic and the
// sqrt(k)-randomized baselines, on accuracy and message cost.
//
//   ./examples/l1_tracking_demo

#include <cmath>
#include <cstdio>

#include "dwrs.h"

int main() {
  using namespace dwrs;

  constexpr int kSites = 36;
  constexpr double kEps = 0.15;  // 1/eps^2 = 44 > k: sqrt(k) tracker in regime
  constexpr double kDelta = 0.2;
  constexpr uint64_t kItems = 50000;

  Workload stream = WorkloadBuilder()
                        .num_sites(kSites)
                        .num_items(kItems)
                        .seed(314)
                        .weights(std::make_unique<UniformWeights>(1.0, 50.0))
                        .partitioner(std::make_unique<RandomPartitioner>())
                        .Build();

  L1Tracker ours(L1TrackerConfig{kSites, kEps, kDelta, /*seed=*/17});
  DeterministicL1Tracker det(kSites, kEps);
  SqrtkL1Tracker hyz(kSites, kEps, /*seed=*/17);

  double true_weight = 0.0;
  double worst_ours = 0.0, worst_det = 0.0, worst_hyz = 0.0;
  const uint64_t warmup = kItems / 10;  // skip the first 10% of steps
  std::printf("checkpoint  true-W       ours         det          sqrt-k\n");
  for (uint64_t i = 0; i < stream.size(); ++i) {
    const auto& e = stream.event(i);
    true_weight += e.item.weight;
    ours.Observe(e.site, e.item);
    det.Observe(e.site, e.item);
    hyz.Observe(e.site, e.item);
    if (i < warmup) continue;
    const double ro = std::fabs(ours.Estimate() - true_weight) / true_weight;
    const double rd = std::fabs(det.Estimate() - true_weight) / true_weight;
    const double rh = std::fabs(hyz.Estimate() - true_weight) / true_weight;
    worst_ours = std::max(worst_ours, ro);
    worst_det = std::max(worst_det, rd);
    worst_hyz = std::max(worst_hyz, rh);
    if ((i + 1) % (kItems / 10) == 0) {
      std::printf("%-11llu %-12.4g %-12.4g %-12.4g %-12.4g\n",
                  static_cast<unsigned long long>(i + 1), true_weight,
                  ours.Estimate(), det.Estimate(), hyz.Estimate());
    }
  }

  std::printf("\nWorst relative error after warm-up (target eps=%.2f):\n",
              kEps);
  std::printf("  ours (Thm 6)       : %.4f   %llu messages\n", worst_ours,
              static_cast<unsigned long long>(ours.stats().total_messages()));
  std::printf("  deterministic      : %.4f   %llu messages\n", worst_det,
              static_cast<unsigned long long>(det.stats().total_messages()));
  std::printf("  sqrt(k) randomized : %.4f   %llu messages\n", worst_hyz,
              static_cast<unsigned long long>(hyz.stats().total_messages()));
  std::printf(
      "\nAt this modest k the deterministic tracker is cheapest; the\n"
      "SWOR-based tracker takes over for k >> 1/eps^2 — see\n"
      "bench/bench_table1_l1 for the crossover sweep.\n");
  return 0;
}
