// Search-query monitoring (paper introduction + Section 4): a skewed
// query stream with a handful of mega-heavy queries. A with-replacement
// sample collapses onto the mega-heavies; the residual heavy hitter
// tracker (Theorem 4) still surfaces the mid-weight queries that are
// heavy in the residual stream.
//
//   ./examples/search_queries

#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "dwrs.h"

int main() {
  using namespace dwrs;

  constexpr int kServers = 16;
  constexpr double kEps = 0.1;
  constexpr double kDelta = 0.1;
  constexpr uint64_t kQueries = 100000;

  // Base: unit-weight queries. Planted: 5 mega-heavy queries (weight 2e7
  // each, ~100x the rest of the stream combined) and 12 residual-heavy
  // queries of weight 4e4 (~10% of the residual stream each once the
  // top-1/eps items are removed — residual heavy hitters, invisible to
  // a with-replacement sampler).
  std::vector<uint64_t> heavy_positions;
  std::vector<uint64_t> residual_positions;
  for (uint64_t i = 0; i < 5; ++i) heavy_positions.push_back(1000 + 777 * i);
  for (uint64_t i = 0; i < 12; ++i) {
    residual_positions.push_back(5000 + 7321 * i);
  }

  WorkloadBuilder builder;
  builder.num_sites(kServers).num_items(kQueries).seed(99).partitioner(
      std::make_unique<RandomPartitioner>());
  {
    auto base = std::make_unique<ConstantWeights>(1.0);
    auto with_residual = std::make_unique<PlantedHeavyWeights>(
        std::move(base), residual_positions, 40000.0);
    builder.weights(std::make_unique<PlantedHeavyWeights>(
        std::move(with_residual), heavy_positions, 20000000.0));
  }
  Workload queries = builder.Build();

  ResidualHeavyHitterTracker residual(
      ResidualHhConfig{kServers, kEps, kDelta, /*seed=*/5});
  SwrHeavyHitterTracker swr_based(kServers, kEps, kDelta, /*seed=*/5);
  residual.Run(queries);
  swr_based.Run(queries);

  const auto exact = ExactResidualHeavyHitters(queries.PrefixWeights(), kEps);

  auto recall = [&](const std::vector<Item>& report) {
    std::unordered_set<uint64_t> ids;
    for (const Item& it : report) ids.insert(it.id);
    uint64_t hit = 0;
    for (uint64_t id : exact) hit += ids.count(id);
    return exact.empty() ? 1.0
                         : static_cast<double>(hit) /
                               static_cast<double>(exact.size());
  };

  std::printf("Exact residual heavy hitters (eps=%.2f): %zu items\n", kEps,
              exact.size());
  std::printf("  SWOR-based tracker (Thm 4): recall %.2f, %llu messages\n",
              recall(residual.HeavyHitters()),
              static_cast<unsigned long long>(
                  residual.stats().total_messages()));
  std::printf("  SWR-based tracker (baseline): recall %.2f, %llu messages\n",
              recall(swr_based.HeavyHitters()),
              static_cast<unsigned long long>(
                  swr_based.stats().total_messages()));

  std::printf("\nTop reported queries (SWOR tracker):\n");
  int shown = 0;
  for (const Item& it : residual.HeavyHitters()) {
    if (shown++ >= 10) break;
    std::printf("  query %-10llu weight %.0f\n",
                static_cast<unsigned long long>(it.id), it.weight);
  }
  std::printf(
      "\nNote how the mega-heavies dominate the SWR sample while the\n"
      "SWOR sample still covers the 40000-weight residual queries.\n");
  return 0;
}
