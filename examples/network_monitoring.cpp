// Network monitoring scenario from the paper's introduction: 64 routers
// each observe flow records (byte counts, heavy tailed); the coordinator
// continuously holds a weighted sample of all flows and uses it to
// estimate traffic shares of flow classes — without shipping every
// record.
//
//   ./examples/network_monitoring

#include <cstdio>
#include <vector>

#include "dwrs.h"

namespace {

// Flow class = id % 4 ("protocol").
const char* kClassNames[] = {"web", "video", "dns", "bulk"};

}  // namespace

int main() {
  using namespace dwrs;

  constexpr int kRouters = 64;
  constexpr int kSampleSize = 256;
  constexpr uint64_t kFlows = 300000;

  // Pareto(1.3) byte counts: classic heavy-tailed flow sizes.
  Workload traffic = WorkloadBuilder()
                         .num_sites(kRouters)
                         .num_items(kFlows)
                         .seed(2026)
                         .weights(std::make_unique<ParetoWeights>(1.3))
                         .partitioner(std::make_unique<RandomPartitioner>())
                         .Build();

  DistributedWswor sampler(WsworConfig{.num_sites = kRouters,
                                       .sample_size = kSampleSize,
                                       .seed = 11});
  // Centralized priority sampler as the subset-sum estimator over the
  // coordinator's view (it sees every record here only to provide the
  // "all data" reference; the distributed sampler does not).
  PrioritySampler priority(kSampleSize, /*seed=*/13);

  std::vector<double> exact_share(4, 0.0);
  double exact_total = 0.0;
  sampler.Run(traffic, [&](uint64_t step) {
    const auto& event = traffic.event(step - 1);
    priority.Add(event.item);
    exact_share[event.item.id % 4] += event.item.weight;
    exact_total += event.item.weight;
  });

  // Estimate class shares from the distributed sample via the standard
  // SWOR estimator: fraction of sampled items in the class, weighted by
  // inclusion-corrected weights ~ (simple ratio estimator here).
  std::vector<double> sampled_weight(4, 0.0);
  double sampled_total = 0.0;
  for (const KeyedItem& ki : sampler.Sample()) {
    sampled_weight[ki.item.id % 4] += ki.item.weight;
    sampled_total += ki.item.weight;
  }

  std::printf("Traffic share by class (W = %.4g bytes):\n", exact_total);
  std::printf("  %-8s %-10s %-18s %-18s\n", "class", "exact", "SWOR-ratio-est",
              "priority-est");
  for (int c = 0; c < 4; ++c) {
    const double exact = exact_share[c] / exact_total;
    const double swor = sampled_weight[c] / sampled_total;
    const double prio =
        priority.EstimateSubsetSum(
            [c](const Item& it) { return static_cast<int>(it.id % 4) == c; }) /
        exact_total;
    std::printf("  %-8s %-10.4f %-18.4f %-18.4f\n", kClassNames[c], exact,
                swor, prio);
  }

  std::printf("\nCost: %llu messages for %llu records (%.2f%%), words=%llu\n",
              static_cast<unsigned long long>(
                  sampler.stats().total_messages()),
              static_cast<unsigned long long>(kFlows),
              100.0 * static_cast<double>(sampler.stats().total_messages()) /
                  static_cast<double>(kFlows),
              static_cast<unsigned long long>(sampler.stats().words));
  return 0;
}
