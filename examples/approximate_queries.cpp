// BlinkDB-style approximate analytics (the paper's introduction cites
// [1]): keep one distributed weighted sample of a sales event stream and
// answer ad-hoc GROUP-BY revenue queries from the sample alone, using
// the Horvitz-Thompson estimators over the coordinator's top keys.
//
//   ./examples/approximate_queries

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "dwrs.h"

namespace {

// "Region" dimension of a sale = id % 5.
const char* kRegions[] = {"NA", "EU", "APAC", "LATAM", "MEA"};

}  // namespace

int main() {
  using namespace dwrs;

  constexpr int kStores = 32;   // distributed point-of-sale streams
  constexpr int kSampleSize = 512;
  constexpr uint64_t kSales = 400000;

  // Pareto revenues (most sales small, a few large).
  Workload sales = WorkloadBuilder()
                       .num_sites(kStores)
                       .num_items(kSales)
                       .seed(88)
                       .weights(std::make_unique<ParetoWeights>(1.4))
                       .partitioner(std::make_unique<RandomPartitioner>())
                       .Build();

  // Keep s+1 keys so the (s+1)-st is the estimation threshold tau.
  DistributedWswor sampler(WsworConfig{.num_sites = kStores,
                                       .sample_size = kSampleSize + 1,
                                       .seed = 21});
  std::vector<double> exact_revenue(5, 0.0);
  std::vector<double> exact_count(5, 0.0);
  sampler.Run(sales, [&](uint64_t step) {
    const auto& e = sales.event(step - 1);
    exact_revenue[e.item.id % 5] += e.item.weight;
    exact_count[e.item.id % 5] += 1.0;
  });

  const ThresholdedSample ts = MakeThresholdedSample(sampler.Sample());

  std::printf("SELECT region, SUM(revenue), COUNT(*) FROM sales GROUP BY "
              "region\n");
  std::printf("(answered from a %d-item sample of %llu sales; tau=%.3g)\n\n",
              kSampleSize, static_cast<unsigned long long>(kSales), ts.tau);
  std::printf("  %-7s %-14s %-14s %-8s %-14s %-14s %-8s\n", "region",
              "SUM exact", "SUM est", "err", "COUNT exact", "COUNT est",
              "err");
  for (int r = 0; r < 5; ++r) {
    auto in_region = [r](const Item& item) {
      return static_cast<int>(item.id % 5) == r;
    };
    const double sum_est = EstimateSubsetSum(ts, in_region);
    const double cnt_est = EstimateSubsetCount(ts, in_region);
    std::printf("  %-7s %-14.4g %-14.4g %-8.2f%% %-14.0f %-14.0f %-8.2f%%\n",
                kRegions[r], exact_revenue[r], sum_est,
                100.0 * std::fabs(sum_est - exact_revenue[r]) /
                    exact_revenue[r],
                exact_count[r], cnt_est,
                100.0 * std::fabs(cnt_est - exact_count[r]) / exact_count[r]);
  }

  std::printf("\nNetwork cost: %llu messages for %llu rows (%.2f%%)\n",
              static_cast<unsigned long long>(
                  sampler.stats().total_messages()),
              static_cast<unsigned long long>(kSales),
              100.0 * static_cast<double>(sampler.stats().total_messages()) /
                  static_cast<double>(kSales));
  return 0;
}
