// Quickstart: maintain a weighted sample without replacement over a
// stream partitioned across 8 sites, querying it continuously, and
// compare the message cost against the naive baseline.
//
//   ./examples/quickstart

#include <cstdio>

#include "dwrs.h"
#include "util/math_util.h"

int main() {
  using namespace dwrs;

  constexpr int kSites = 32;
  constexpr int kSampleSize = 16;
  constexpr uint64_t kItems = 200000;

  // A weighted stream with weights in [1, 64], items assigned to sites
  // uniformly at random. (See examples/search_queries.cpp for a heavily
  // skewed stream exercising the level-set machinery.)
  Workload workload = WorkloadBuilder()
                          .num_sites(kSites)
                          .num_items(kItems)
                          .seed(42)
                          .weights(std::make_unique<UniformWeights>(1.0, 64.0))
                          .partitioner(std::make_unique<RandomPartitioner>())
                          .Build();

  // The paper's sampler (Theorem 3) ...
  DistributedWswor sampler(WsworConfig{.num_sites = kSites,
                                       .sample_size = kSampleSize,
                                       .seed = 7});
  // ... and the naive per-site top-s baseline (Section 1.2).
  NaiveDistributedWswor naive(kSites, kSampleSize, /*seed=*/7);

  // The sample is valid at EVERY prefix; print a few checkpoints.
  std::printf("step        sample-size  threshold-u   messages\n");
  sampler.Run(workload, [&](uint64_t step) {
    if ((step & (step - 1)) == 0 && step >= 16) {  // powers of two
      std::printf("%-11llu %-12zu %-13.3g %llu\n",
                  static_cast<unsigned long long>(step),
                  sampler.Sample().size(), sampler.coordinator().Threshold(),
                  static_cast<unsigned long long>(
                      sampler.stats().total_messages()));
    }
  });
  naive.Run(workload);

  std::printf("\nFinal weighted sample (top keys first):\n");
  std::printf("  %-12s %-14s %s\n", "item id", "weight", "key");
  int shown = 0;
  for (const KeyedItem& ki : sampler.Sample()) {
    if (shown++ >= 8) break;
    std::printf("  %-12llu %-14.1f %.4g\n",
                static_cast<unsigned long long>(ki.item.id), ki.item.weight,
                ki.key);
  }

  const double w = workload.TotalWeight();
  std::printf("\nMessage complexity over W=%.3g:\n", w);
  std::printf("  this paper : %llu   (Theorem 3 bound ~ %.0f)\n",
              static_cast<unsigned long long>(sampler.stats().total_messages()),
              Theorem3MessageBound(kSites, kSampleSize, w));
  std::printf("  naive      : %llu   (~ k*s*ln W = %.0f)\n",
              static_cast<unsigned long long>(naive.stats().total_messages()),
              NaiveMessageBound(kSites, kSampleSize, w));
  return 0;
}
