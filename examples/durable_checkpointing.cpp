// Durability walkthrough (src/durability/): run the full faulty
// protocol stack with a write-ahead log and periodic checkpoints, let
// the seeded kill schedule tear the whole shard down mid-stream —
// un-committed WAL bytes and all — and recover it from disk, then
// check the survivor against an uninterrupted run of the same seeds:
// same sample, same reliability transcript, bit for bit.
//
//   ./examples/durable_checkpointing

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "durability/durable_shard.h"
#include "dwrs.h"
#include "faults/harness.h"

int main() {
  using namespace dwrs;

  constexpr int kSites = 4;
  constexpr int kSampleSize = 12;
  constexpr uint64_t kItems = 6000;

  Workload workload = WorkloadBuilder()
                          .num_sites(kSites)
                          .num_items(kItems)
                          .seed(19)
                          .weights(std::make_unique<UniformWeights>(1.0, 32.0))
                          .partitioner(std::make_unique<RandomPartitioner>())
                          .Build();
  const WsworConfig config{
      .num_sites = kSites, .sample_size = kSampleSize, .seed = 5};

  // Kill-only fault schedule: the message layer is reliable, but the
  // shard process itself dies (kill -9 semantics) at seeded steps.
  faults::FaultConfig faults;
  faults.seed = 11;
  faults.process_kill_prob = 0.002;
  faults.max_process_kills = 3;

  const std::string dir = "durable_checkpointing_state";
  std::system(("rm -rf " + dir).c_str());

  durability::DurabilityOptions durable;
  durable.dir = dir;
  durable.commit_interval_steps = 4;    // loss window: <= 4 steps
  durable.checkpoint_interval_steps = 64;

  durability::DurableWswor shard(config, faults, faults::Backend::kEngine,
                                 durable);
  shard.Run(workload);

  const durability::RecoveryReport& recovery = shard.last_recovery();
  std::printf("durable run : kills=%llu recoveries=%llu\n",
              static_cast<unsigned long long>(shard.process_kills()),
              static_cast<unsigned long long>(shard.recoveries()));
  std::printf("last recovery: checkpoint step %llu, durable step %llu, "
              "%llu records replayed (%llu truncated)\n",
              static_cast<unsigned long long>(recovery.checkpoint_step),
              static_cast<unsigned long long>(recovery.durable_step),
              static_cast<unsigned long long>(recovery.wal_records_replayed),
              static_cast<unsigned long long>(recovery.wal_records_truncated));

  // The uninterrupted control: the same stack, same seeds, no kills.
  faults::FaultConfig no_kills;
  no_kills.seed = 11;
  faults::FaultyWswor reference(config, no_kills, faults::Backend::kEngine);
  reference.Run(workload);

  const std::vector<uint64_t> survived = shard.SampleIds();
  const std::vector<uint64_t> control = reference.SampleIds();
  const bool sample_equal = survived == control;
  const bool transcript_equal =
      shard.report().transcript_hash == reference.report().transcript_hash;
  std::printf("sample      : %zu ids, %s the uninterrupted run's\n",
              survived.size(), sample_equal ? "identical to" : "DIFFERS from");
  std::printf("transcript  : %s\n",
              transcript_equal ? "identical" : "DIVERGED");

  std::system(("rm -rf " + dir).c_str());
  if (shard.process_kills() == 0) {
    std::fprintf(stderr, "expected the seeded schedule to kill at least once\n");
    return 1;
  }
  return sample_equal && transcript_equal ? 0 : 1;
}
