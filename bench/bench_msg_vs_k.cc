// E2 — Theorem 3, message complexity vs number of sites k.
// Claim: messages grow as k/log(1+k/s) * log(W/s) — slightly sublinear in
// k once k >> s — while the naive baseline pays k*s*log(W).

#include "bench_util.h"
#include "util/math_util.h"

int main() {
  using namespace dwrs;
  using namespace dwrs::bench;

  const int s = 16;
  const uint64_t n = 1u << 17;
  Header("E2: messages vs k  (s=16, n=131072, uniform weights)",
         "Theorem 3: k log(W/s)/log(1+k/s) growth in k; naive pays k*s*logW");
  Row("%-8s %-12s %-12s %-12s %-12s %-10s", "k", "ours", "naive",
      "thm3-bound", "msgs/item", "ours/bound");
  for (int k : {4, 16, 64, 256, 1024}) {
    const Workload w = UniformWorkload(k, n, 2000 + k);
    const double total = w.TotalWeight();
    const uint64_t ours = RunOurs(w, k, s, 43);
    const uint64_t naive = RunNaive(w, k, s, 43);
    const double bound = Theorem3MessageBound(k, s, total);
    Row("%-8d %-12llu %-12llu %-12.0f %-12.4f %-10.2f", k,
        static_cast<unsigned long long>(ours),
        static_cast<unsigned long long>(naive), bound,
        static_cast<double>(ours) / static_cast<double>(n),
        static_cast<double>(ours) / bound);
  }
  return 0;
}
