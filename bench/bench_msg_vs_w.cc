// E1 — Theorem 3, message complexity vs total weight W.
// Claim: E[msgs] = O(k log(W/s) / log(1+k/s)); the naive baseline grows
// like k*s*log(W). Expect: "ours" column tracks the bound column by a
// roughly constant factor and stays far below "naive".

#include <cmath>

#include "bench_util.h"
#include "util/math_util.h"

int main() {
  using namespace dwrs;
  using namespace dwrs::bench;

  const int k = 32;
  const int s = 16;
  Header("E1: messages vs W  (k=32, s=16, uniform weights in [1,16])",
         "Theorem 3: E[msgs] = O(k log(W/s)/log(1+k/s)); naive = k*s*log W");
  Row("%-12s %-12s %-12s %-12s %-12s %-10s", "n", "W", "ours", "naive",
      "thm3-bound", "ours/bound");
  for (uint64_t n = 1u << 12; n <= 1u << 20; n <<= 2) {
    const Workload w = UniformWorkload(k, n, 1000 + n);
    const double total = w.TotalWeight();
    const uint64_t ours = RunOurs(w, k, s, 42);
    const uint64_t naive = RunNaive(w, k, s, 42);
    const double bound = Theorem3MessageBound(k, s, total);
    Row("%-12llu %-12.3g %-12llu %-12llu %-12.0f %-10.2f",
        static_cast<unsigned long long>(n), total,
        static_cast<unsigned long long>(ours),
        static_cast<unsigned long long>(naive), bound,
        static_cast<double>(ours) / bound);
  }
  Row("%s", "");
  Row("%s", "-- cumulative messages over stream progress (n=2^18) --");
  Row("%-12s %-12s %-12s %-10s", "prefix", "W-so-far", "messages", "epoch");
  {
    const uint64_t n = 1u << 18;
    const Workload w = UniformWorkload(k, n, 4321);
    DistributedWswor sampler(
        WsworConfig{.num_sites = k, .sample_size = s, .seed = 42});
    double weight = 0.0;
    uint64_t next_report = 1024;
    for (uint64_t i = 0; i < w.size(); ++i) {
      weight += w.event(i).item.weight;
      sampler.Observe(w.event(i).site, w.event(i).item);
      if (i + 1 == next_report || i + 1 == n) {
        Row("%-12llu %-12.3g %-12llu %-10d",
            static_cast<unsigned long long>(i + 1), weight,
            static_cast<unsigned long long>(
                sampler.stats().total_messages()),
            sampler.coordinator().announced_epoch());
        next_report *= 4;
      }
    }
  }
  Row("%s", "");
  Row("%s", "shape check: each 4x increase in W adds a ~constant number of");
  Row("%s", "messages for ours (logarithmic growth; epochs advance with");
  Row("%s", "log W), while naive keeps a ~k*s multiple of that increment.");
  return 0;
}
