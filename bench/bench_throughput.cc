// E10 — Proposition 6/7 cost model: O(1) site work per update, O(1)
// expected random words per key decision, O(log s) coordinator work per
// accepted message. Google-benchmark microbenchmarks.

#include <benchmark/benchmark.h>

#include <memory>

#include "dwrs.h"
#include "random/distributions.h"
#include "random/lazy_exponential.h"
#include "sim/codec.h"

namespace dwrs {
namespace {

void BM_RngNextU64(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.NextU64());
}
BENCHMARK(BM_RngNextU64);

void BM_Exponential(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) benchmark::DoNotOptimize(Exponential(rng));
}
BENCHMARK(BM_Exponential);

void BM_LazyExpDecision(benchmark::State& state) {
  // The hot filter decision at a site: is the key above the threshold?
  Rng rng(3);
  const double bound = 1.0 / static_cast<double>(state.range(0));
  uint64_t bits = 0;
  uint64_t decisions = 0;
  for (auto _ : state) {
    const auto d = DecideExponentialBelow(rng, bound);
    bits += static_cast<uint64_t>(d.bits_consumed);
    ++decisions;
    benchmark::DoNotOptimize(d.below_bound);
  }
  state.counters["bits/decision"] =
      static_cast<double>(bits) / static_cast<double>(decisions);
}
BENCHMARK(BM_LazyExpDecision)->Arg(1)->Arg(100)->Arg(100000);

void BM_Binomial(benchmark::State& state) {
  Rng rng(4);
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(Binomial(rng, n, 0.3));
}
BENCHMARK(BM_Binomial)->Arg(16)->Arg(1024)->Arg(1u << 20);

void BM_CentralizedWsworAdd(benchmark::State& state) {
  CentralizedWswor sampler(static_cast<int>(state.range(0)), 5);
  Rng rng(6);
  uint64_t id = 0;
  for (auto _ : state) {
    sampler.Add(Item{id++, 1.0 + rng.NextDouble() * 9.0});
  }
}
BENCHMARK(BM_CentralizedWsworAdd)->Arg(16)->Arg(256);

void BM_CentralizedWsworSkipAdd(benchmark::State& state) {
  CentralizedWsworSkip sampler(static_cast<int>(state.range(0)), 7);
  Rng rng(8);
  uint64_t id = 0;
  for (auto _ : state) {
    sampler.Add(Item{id++, 1.0 + rng.NextDouble() * 9.0});
  }
}
BENCHMARK(BM_CentralizedWsworSkipAdd)->Arg(16)->Arg(256);

void BM_DistributedWsworObserve(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  DistributedWswor sampler(
      WsworConfig{.num_sites = k, .sample_size = 32, .seed = 9});
  Rng rng(10);
  uint64_t id = 0;
  for (auto _ : state) {
    const int site = static_cast<int>(
        rng.NextBounded(static_cast<uint64_t>(k)));
    sampler.Observe(site, Item{id++, 1.0 + rng.NextDouble() * 15.0});
  }
  state.counters["msgs/item"] =
      static_cast<double>(sampler.stats().total_messages()) /
      static_cast<double>(sampler.items_observed());
}
BENCHMARK(BM_DistributedWsworObserve)->Arg(4)->Arg(64);

void BM_NaiveObserve(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  NaiveDistributedWswor sampler(k, 32, 11);
  Rng rng(12);
  uint64_t id = 0;
  for (auto _ : state) {
    const int site = static_cast<int>(
        rng.NextBounded(static_cast<uint64_t>(k)));
    sampler.Observe(site, Item{id++, 1.0 + rng.NextDouble() * 15.0});
  }
}
BENCHMARK(BM_NaiveObserve)->Arg(4)->Arg(64);

void BM_L1TrackerObserve(benchmark::State& state) {
  L1Tracker tracker(L1TrackerConfig{
      .num_sites = 8, .eps = 0.2, .delta = 0.2, .seed = 13});
  Rng rng(14);
  uint64_t id = 0;
  for (auto _ : state) {
    const int site = static_cast<int>(rng.NextBounded(8));
    tracker.Observe(site, Item{id++, 1.0 + rng.NextDouble() * 3.0});
  }
}
BENCHMARK(BM_L1TrackerObserve);

void BM_CodecEncode(benchmark::State& state) {
  sim::Payload msg;
  msg.type = 2;
  msg.a = 1234567;
  msg.x = 17.5;
  msg.y = 8.25e6;
  uint64_t bytes = 0;
  uint64_t msgs = 0;
  for (auto _ : state) {
    const auto encoded = sim::EncodePayload(msg);
    bytes += encoded.size();
    ++msgs;
    benchmark::DoNotOptimize(encoded.data());
  }
  state.counters["bytes/msg"] =
      static_cast<double>(bytes) / static_cast<double>(msgs);
}
BENCHMARK(BM_CodecEncode);

void BM_CodecRoundTrip(benchmark::State& state) {
  sim::Payload msg;
  msg.type = 2;
  msg.a = 1234567;
  msg.x = 17.5;
  msg.y = 8.25e6;
  for (auto _ : state) {
    const auto decoded = sim::DecodePayload(sim::EncodePayload(msg));
    benchmark::DoNotOptimize(decoded->a);
  }
}
BENCHMARK(BM_CodecRoundTrip);

void BM_SpaceSavingAdd(benchmark::State& state) {
  SpaceSaving ss(static_cast<size_t>(state.range(0)));
  Rng rng(15);
  for (auto _ : state) {
    ss.Add(rng.NextBounded(100000), 1.0 + rng.NextDouble());
  }
}
BENCHMARK(BM_SpaceSavingAdd)->Arg(64)->Arg(1024);

}  // namespace
}  // namespace dwrs

BENCHMARK_MAIN();
