// Shared helpers for the experiment harnesses. Every bench prints
// paper-vs-measured rows so EXPERIMENTS.md can record the comparison, and
// can additionally emit a machine-readable BENCH_<name>.json via JsonBench
// so the perf trajectory is tracked across PRs.

#ifndef DWRS_BENCH_BENCH_UTIL_H_
#define DWRS_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dwrs.h"
#include "util/check.h"

namespace dwrs::bench {

// JSON scalar encoding. %g alone would print "nan"/"inf" — not JSON —
// so non-finite measurements (a failed run, a divide-by-zero rate)
// become null rather than corrupting BENCH_*.json for downstream
// tooling.
inline std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

// JSON string encoding per RFC 8259: quotes and backslashes escaped, all
// control characters (< 0x20) emitted as \n-style shorthands or \u00XX.
inline std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    const unsigned char u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

// Collects rows of key/value fields and writes them as
// BENCH_<name>.json:
//   {"name": "...", "params": {...}, "rows": [{...}, {...}]}
// Params hold run-wide settings (workload, item count); rows hold one
// measurement each (typically: backend/config keys plus items_per_sec and
// messages). Values are numbers or strings; field order is preserved.
class JsonBench {
 public:
  explicit JsonBench(std::string name) : name_(std::move(name)) {}

  JsonBench& Param(const std::string& key, double value) {
    params_.emplace_back(key, JsonNumber(value));
    return *this;
  }
  JsonBench& Param(const std::string& key, const std::string& value) {
    params_.emplace_back(key, JsonQuote(value));
    return *this;
  }

  JsonBench& StartRow() {
    rows_.emplace_back();
    return *this;
  }
  JsonBench& Field(const std::string& key, double value) {
    CurrentRow().emplace_back(key, JsonNumber(value));
    return *this;
  }
  JsonBench& Field(const std::string& key, uint64_t value) {
    CurrentRow().emplace_back(key, std::to_string(value));
    return *this;
  }
  JsonBench& Field(const std::string& key, const std::string& value) {
    CurrentRow().emplace_back(key, JsonQuote(value));
    return *this;
  }

  // Writes BENCH_<name>.json in the working directory; returns the path.
  std::string Write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    out << "{\"name\": " << JsonQuote(name_) << ",\n \"params\": ";
    WriteObject(out, params_);
    out << ",\n \"rows\": [";
    for (size_t i = 0; i < rows_.size(); ++i) {
      out << (i == 0 ? "\n  " : ",\n  ");
      WriteObject(out, rows_[i]);
    }
    out << "\n ]}\n";
    out.flush();
    DWRS_CHECK(out.good()) << " failed writing " << path;
    return path;
  }

 private:
  using Fields = std::vector<std::pair<std::string, std::string>>;

  Fields& CurrentRow() {
    DWRS_CHECK(!rows_.empty()) << " Field() before StartRow()";
    return rows_.back();
  }

  static void WriteObject(std::ofstream& out, const Fields& fields) {
    out << "{";
    for (size_t i = 0; i < fields.size(); ++i) {
      if (i != 0) out << ", ";
      out << JsonQuote(fields[i].first) << ": " << fields[i].second;
    }
    out << "}";
  }

  std::string name_;
  Fields params_;
  std::vector<Fields> rows_;
};

// True when the bench was invoked with --quick: CI mode, where every
// bench shrinks its workload to finish in seconds while still emitting
// its full BENCH_<name>.json row schema (so the perf trajectory is
// recorded on every push without slowing the pipeline).
inline bool QuickMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") return true;
  }
  return false;
}

inline void Header(const char* experiment, const char* claim) {
  std::printf("==============================================================="
              "=========\n");
  std::printf("%s\n", experiment);
  std::printf("claim: %s\n", claim);
  std::printf("==============================================================="
              "=========\n");
}

inline void Row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

inline Workload UniformWorkload(int k, uint64_t n, uint64_t seed,
                                double max_weight = 16.0) {
  return WorkloadBuilder()
      .num_sites(k)
      .num_items(n)
      .seed(seed)
      .weights(std::make_unique<UniformWeights>(1.0, max_weight))
      .partitioner(std::make_unique<RandomPartitioner>())
      .Build();
}

// Skewed query/flow stream: the paper's motivating workload.
inline Workload ZipfWorkload(int k, uint64_t n, uint64_t seed,
                             double alpha = 1.1) {
  return WorkloadBuilder()
      .num_sites(k)
      .num_items(n)
      .seed(seed)
      .weights(std::make_unique<ZipfWeights>(uint64_t{1} << 20, alpha))
      .partitioner(std::make_unique<RandomPartitioner>())
      .Build();
}

// Engine stress: self-similar bursty weights, every item on one (hopping)
// hot site.
inline Workload AdversarialWorkload(int k, uint64_t n, uint64_t seed,
                                    uint64_t hop_every = 0) {
  return WorkloadBuilder()
      .num_sites(k)
      .num_items(n)
      .seed(seed)
      .weights(std::make_unique<SelfSimilarWeights>())
      .partitioner(std::make_unique<AdversarialPartitioner>(hop_every))
      .Build();
}

inline uint64_t RunOurs(const Workload& w, int k, int s, uint64_t seed) {
  DistributedWswor sampler(
      WsworConfig{.num_sites = k, .sample_size = s, .seed = seed});
  sampler.Run(w);
  return sampler.stats().total_messages();
}

inline uint64_t RunNaive(const Workload& w, int k, int s, uint64_t seed) {
  NaiveDistributedWswor sampler(k, s, seed);
  sampler.Run(w);
  return sampler.stats().total_messages();
}

}  // namespace dwrs::bench

#endif  // DWRS_BENCH_BENCH_UTIL_H_
