// Shared helpers for the experiment harnesses. Every bench prints
// paper-vs-measured rows so EXPERIMENTS.md can record the comparison, and
// can additionally emit a machine-readable BENCH_<name>.json via JsonBench
// so the perf trajectory is tracked across PRs.

#ifndef DWRS_BENCH_BENCH_UTIL_H_
#define DWRS_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dwrs.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/json.h"

namespace dwrs::bench {

// JSON scalar/string encoding: the single shared implementation in
// util/json.h (also used by the obs snapshot export and the trace
// writer), aliased here so existing bench code keeps its spelling.
using util::JsonNumber;
using util::JsonQuote;

// Collects rows of key/value fields and writes them as
// BENCH_<name>.json:
//   {"name": "...", "params": {...}, "rows": [{...}, {...}]}
// Params hold run-wide settings (workload, item count); rows hold one
// measurement each (typically: backend/config keys plus items_per_sec and
// messages). Values are numbers or strings; field order is preserved.
class JsonBench {
 public:
  explicit JsonBench(std::string name) : name_(std::move(name)) {}

  JsonBench& Param(const std::string& key, double value) {
    params_.emplace_back(key, JsonNumber(value));
    return *this;
  }
  JsonBench& Param(const std::string& key, const std::string& value) {
    params_.emplace_back(key, JsonQuote(value));
    return *this;
  }

  JsonBench& StartRow() {
    rows_.emplace_back();
    return *this;
  }
  JsonBench& Field(const std::string& key, double value) {
    CurrentRow().emplace_back(key, JsonNumber(value));
    return *this;
  }
  JsonBench& Field(const std::string& key, uint64_t value) {
    CurrentRow().emplace_back(key, std::to_string(value));
    return *this;
  }
  JsonBench& Field(const std::string& key, const std::string& value) {
    CurrentRow().emplace_back(key, JsonQuote(value));
    return *this;
  }

  // Writes BENCH_<name>.json in the working directory; returns the path.
  std::string Write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    out << "{\"name\": " << JsonQuote(name_) << ",\n \"params\": ";
    WriteObject(out, params_);
    out << ",\n \"rows\": [";
    for (size_t i = 0; i < rows_.size(); ++i) {
      out << (i == 0 ? "\n  " : ",\n  ");
      WriteObject(out, rows_[i]);
    }
    out << "\n ]}\n";
    out.flush();
    DWRS_CHECK(out.good()) << " failed writing " << path;
    return path;
  }

 private:
  using Fields = std::vector<std::pair<std::string, std::string>>;

  Fields& CurrentRow() {
    DWRS_CHECK(!rows_.empty()) << " Field() before StartRow()";
    return rows_.back();
  }

  static void WriteObject(std::ofstream& out, const Fields& fields) {
    out << "{";
    for (size_t i = 0; i < fields.size(); ++i) {
      if (i != 0) out << ", ";
      out << JsonQuote(fields[i].first) << ": " << fields[i].second;
    }
    out << "}";
  }

  std::string name_;
  Fields params_;
  std::vector<Fields> rows_;
};

// Adds every entry of an obs::Snapshot to the current row, so bench JSON
// and the registry/CLI export share one field schema (obs/schema.h) —
// uint64 counters stay integral, doubles go through JsonNumber.
inline JsonBench& SnapshotFields(JsonBench& bench,
                                 const obs::Snapshot& snapshot) {
  for (const auto& [name, value] : snapshot.entries()) {
    if (value.kind == obs::SnapshotValue::Kind::kUint) {
      bench.Field(name, value.u);
    } else {
      bench.Field(name, value.d);
    }
  }
  return bench;
}

// True when the bench was invoked with --quick: CI mode, where every
// bench shrinks its workload to finish in seconds while still emitting
// its full BENCH_<name>.json row schema (so the perf trajectory is
// recorded on every push without slowing the pipeline).
inline bool QuickMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") return true;
  }
  return false;
}

inline void Header(const char* experiment, const char* claim) {
  std::printf("==============================================================="
              "=========\n");
  std::printf("%s\n", experiment);
  std::printf("claim: %s\n", claim);
  std::printf("==============================================================="
              "=========\n");
}

inline void Row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

inline Workload UniformWorkload(int k, uint64_t n, uint64_t seed,
                                double max_weight = 16.0) {
  return WorkloadBuilder()
      .num_sites(k)
      .num_items(n)
      .seed(seed)
      .weights(std::make_unique<UniformWeights>(1.0, max_weight))
      .partitioner(std::make_unique<RandomPartitioner>())
      .Build();
}

// Skewed query/flow stream: the paper's motivating workload.
inline Workload ZipfWorkload(int k, uint64_t n, uint64_t seed,
                             double alpha = 1.1) {
  return WorkloadBuilder()
      .num_sites(k)
      .num_items(n)
      .seed(seed)
      .weights(std::make_unique<ZipfWeights>(uint64_t{1} << 20, alpha))
      .partitioner(std::make_unique<RandomPartitioner>())
      .Build();
}

// Engine stress: self-similar bursty weights, every item on one (hopping)
// hot site.
inline Workload AdversarialWorkload(int k, uint64_t n, uint64_t seed,
                                    uint64_t hop_every = 0) {
  return WorkloadBuilder()
      .num_sites(k)
      .num_items(n)
      .seed(seed)
      .weights(std::make_unique<SelfSimilarWeights>())
      .partitioner(std::make_unique<AdversarialPartitioner>(hop_every))
      .Build();
}

inline uint64_t RunOurs(const Workload& w, int k, int s, uint64_t seed) {
  DistributedWswor sampler(
      WsworConfig{.num_sites = k, .sample_size = s, .seed = seed});
  sampler.Run(w);
  return sampler.stats().total_messages();
}

inline uint64_t RunNaive(const Workload& w, int k, int s, uint64_t seed) {
  NaiveDistributedWswor sampler(k, s, seed);
  sampler.Run(w);
  return sampler.stats().total_messages();
}

}  // namespace dwrs::bench

#endif  // DWRS_BENCH_BENCH_UTIL_H_
