// Shared helpers for the experiment harnesses. Every bench prints
// paper-vs-measured rows so EXPERIMENTS.md can record the comparison.

#ifndef DWRS_BENCH_BENCH_UTIL_H_
#define DWRS_BENCH_BENCH_UTIL_H_

#include <cstdarg>
#include <cstdio>
#include <memory>

#include "dwrs.h"

namespace dwrs::bench {

inline void Header(const char* experiment, const char* claim) {
  std::printf("==============================================================="
              "=========\n");
  std::printf("%s\n", experiment);
  std::printf("claim: %s\n", claim);
  std::printf("==============================================================="
              "=========\n");
}

inline void Row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

inline Workload UniformWorkload(int k, uint64_t n, uint64_t seed,
                                double max_weight = 16.0) {
  return WorkloadBuilder()
      .num_sites(k)
      .num_items(n)
      .seed(seed)
      .weights(std::make_unique<UniformWeights>(1.0, max_weight))
      .partitioner(std::make_unique<RandomPartitioner>())
      .Build();
}

inline uint64_t RunOurs(const Workload& w, int k, int s, uint64_t seed) {
  DistributedWswor sampler(
      WsworConfig{.num_sites = k, .sample_size = s, .seed = seed});
  sampler.Run(w);
  return sampler.stats().total_messages();
}

inline uint64_t RunNaive(const Workload& w, int k, int s, uint64_t seed) {
  NaiveDistributedWswor sampler(k, s, seed);
  sampler.Run(w);
  return sampler.stats().total_messages();
}

}  // namespace dwrs::bench

#endif  // DWRS_BENCH_BENCH_UTIL_H_
