// E13 — Sliding-window extension (paper Section 6 future work): message
// cost and skyline space of the distributed sliding-window weighted SWOR
// as the window length sweeps. No optimality claim exists in the paper;
// this charts what the forwarding protocol actually costs.

#include "bench_util.h"
#include "window/distributed_window.h"

int main() {
  using namespace dwrs;
  using namespace dwrs::bench;

  const int k = 16;
  const int s = 16;
  const uint64_t n = 100000;
  Header("E13: sliding-window weighted SWOR  (k=16, s=16, n=100000)",
         "Section 6 extension: msgs per item and skyline space vs window");
  Row("%-10s %-12s %-12s %-14s %-14s", "window", "messages", "msgs/item",
      "site-skyline", "coord-skyline");
  for (uint64_t window : {256u, 1024u, 4096u, 16384u}) {
    WindowConfig config;
    config.num_sites = k;
    config.sample_size = s;
    config.window = window;
    config.seed = 57;
    DistributedWindowWswor sampler(config);
    const Workload w = UniformWorkload(k, n, 1700 + window);
    sampler.Run(w);
    Row("%-10llu %-12llu %-12.4f %-14zu %-14zu",
        static_cast<unsigned long long>(window),
        static_cast<unsigned long long>(sampler.stats().total_messages()),
        static_cast<double>(sampler.stats().total_messages()) /
            static_cast<double>(n),
        sampler.MaxSiteSkyline(), sampler.CoordinatorSkyline());
  }
  Row("%s", "");
  Row("%s", "expect: messages grow mildly with shrinking windows (more");
  Row("%s", "expiry-driven promotions); skylines stay ~ s*log(window).");
  return 0;
}
