// E7 — Theorem 4: residual heavy hitter tracking. Recall of the exact
// eps-residual heavy hitters, message cost vs the Theorem 4 bound, and
// the SWR baseline's failure on masked streams.

#include <memory>
#include <unordered_set>

#include "bench_util.h"

namespace {

dwrs::Workload MaskedStream(int k, double eps, uint64_t seed) {
  using namespace dwrs;
  // ceil(1/(2 eps)) mega items mask 2/eps mid items over a unit base.
  std::vector<uint64_t> mega;
  std::vector<uint64_t> residual;
  const int num_mega = static_cast<int>(0.5 / eps) + 1;
  const int num_res = static_cast<int>(1.0 / eps);
  for (int i = 0; i < num_mega; ++i) {
    mega.push_back(50 + 311 * static_cast<uint64_t>(i));
  }
  for (int i = 0; i < num_res; ++i) {
    residual.push_back(3000 + 677 * static_cast<uint64_t>(i));
  }
  auto base = std::make_unique<ConstantWeights>(1.0);
  auto with_res = std::make_unique<PlantedHeavyWeights>(
      std::move(base), residual, 20000.0 * eps * 3.0);
  auto gen = std::make_unique<PlantedHeavyWeights>(std::move(with_res), mega,
                                                   5000000.0);
  return WorkloadBuilder()
      .num_sites(k)
      .num_items(20000)
      .seed(seed)
      .weights(std::move(gen))
      .partitioner(std::make_unique<RandomPartitioner>())
      .Build();
}

double Recall(const std::vector<dwrs::Item>& report,
              const std::vector<uint64_t>& exact) {
  if (exact.empty()) return 1.0;
  std::unordered_set<uint64_t> ids;
  for (const auto& item : report) ids.insert(item.id);
  uint64_t hit = 0;
  for (uint64_t id : exact) hit += ids.count(id);
  return static_cast<double>(hit) / static_cast<double>(exact.size());
}

}  // namespace

int main() {
  using namespace dwrs;
  using namespace dwrs::bench;

  const int k = 16;
  Header("E7: residual heavy hitters  (k=16, masked planted streams)",
         "Thm 4: recall 1 w.h.p. within O((k/log k + log(1/(e*d))/e) log(eW))"
         " msgs; SWR baseline misses");
  Row("%-8s %-8s %-12s %-12s %-12s %-12s %-12s", "eps", "exact", "swor-recall",
      "swr-recall", "swor-msgs", "swr-msgs", "thm4-bound");
  for (double eps : {0.05, 0.1, 0.2}) {
    const Workload w = MaskedStream(k, eps, 900 + static_cast<uint64_t>(eps * 100));
    const auto exact = ExactResidualHeavyHitters(w.PrefixWeights(), eps);
    ResidualHeavyHitterTracker swor(
        ResidualHhConfig{k, eps, /*delta=*/0.05, /*seed=*/49});
    swor.Run(w);
    SwrHeavyHitterTracker swr(k, eps, 0.05, 49);
    swr.Run(w);
    Row("%-8.2f %-8zu %-12.3f %-12.3f %-12llu %-12llu %-12.0f", eps,
        exact.size(), Recall(swor.HeavyHitters(), exact),
        Recall(swr.HeavyHitters(), exact),
        static_cast<unsigned long long>(swor.stats().total_messages()),
        static_cast<unsigned long long>(swr.stats().total_messages()),
        Theorem4MessageBound(k, eps, 0.05, w.TotalWeight()));
  }
  Row("%s", "");
  Row("%s", "expect: swor-recall = 1.000 at every eps; swr-recall < 1 (mega");
  Row("%s", "items absorb its draws).");
  return 0;
}
