// E8 — The Section 5 table ("Table 1"): measured message complexity AND
// accuracy of the three L1-tracking algorithms against their theory
// rows, sweeping k across the 1/eps^2 crossover. The paper's claim: for
// k >= 1/eps^2 our tracker matches the best achievable
// O(k log(eW)/log k + log(eW)/eps^2) while the [23]-style tracker's
// accuracy guarantee only holds for k <= 1/eps^2 and the deterministic
// tracker pays O(k log(W)/eps).

#include <cmath>

#include "bench_util.h"
#include "l1/deterministic_l1.h"
#include "l1/l1_tracker.h"
#include "l1/sqrtk_l1.h"

int main() {
  using namespace dwrs;
  using namespace dwrs::bench;

  const double eps = 0.25;  // 1/eps^2 = 16
  const double delta = 0.2;
  const uint64_t n = 200000;
  Header("E8: Section-5 table, L1 tracking  (eps=0.25, 1/eps^2=16, n=200000)",
         "ours wins for k >= 1/eps^2; [23] loses accuracy out of regime");
  Row("%-6s | %-9s %-9s %-6s | %-9s %-9s %-6s | %-9s %-9s %-6s", "k",
      "det[14]", "theory", "err", "hyz[23]", "theory", "err", "ours",
      "thm6-bnd", "err");
  for (int k : {4, 16, 64, 256, 1024}) {
    const Workload w = UniformWorkload(k, n, 1100 + k, 8.0);
    const double total = w.TotalWeight();

    DeterministicL1Tracker det(k, eps);
    SqrtkL1Tracker hyz(k, eps, 50);
    L1Tracker ours(L1TrackerConfig{
        .num_sites = k, .eps = eps, .delta = delta, .seed = 50});

    double true_weight = 0.0;
    double err_det = 0.0, err_hyz = 0.0, err_ours = 0.0;
    const uint64_t warmup = n / 10;
    for (uint64_t i = 0; i < w.size(); ++i) {
      const auto& e = w.event(i);
      true_weight += e.item.weight;
      det.Observe(e.site, e.item);
      hyz.Observe(e.site, e.item);
      ours.Observe(e.site, e.item);
      if (i < warmup || i % 97 != 0) continue;
      err_det = std::max(err_det,
                         std::fabs(det.Estimate() - true_weight) / true_weight);
      err_hyz = std::max(err_hyz,
                         std::fabs(hyz.Estimate() - true_weight) / true_weight);
      err_ours = std::max(
          err_ours, std::fabs(ours.Estimate() - true_weight) / true_weight);
    }

    const double det_theory = k * std::log(total / k) / eps;
    const double hyz_theory =
        HyzMessageBound(k, eps, total) + k * std::log2(total);
    const double ours_theory = Theorem6MessageBound(k, eps, delta, total);
    Row("%-6d | %-9llu %-9.0f %-6.2f | %-9llu %-9.0f %-6.2f | %-9llu %-9.0f "
        "%-6.2f",
        k, static_cast<unsigned long long>(det.stats().total_messages()),
        det_theory, err_det,
        static_cast<unsigned long long>(hyz.stats().total_messages()),
        hyz_theory, err_hyz,
        static_cast<unsigned long long>(ours.stats().total_messages()),
        ours_theory, err_ours);
  }
  Row("%s", "");
  Row("%s", "expect: det grows ~k/eps with error <= eps always; hyz msgs grow");
  Row("%s", "~sqrt(k)/eps + k but its error degrades once k >> 1/eps^2 = 16;");
  Row("%s", "ours keeps error ~eps at every k and overtakes det in messages");
  Row("%s", "at large k (the k log(eW)/log k regime).");
  return 0;
}
