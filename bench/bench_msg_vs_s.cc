// E3 — Theorem 3, message complexity vs sample size s; also sweeps the
// epoch base r (design-choice ablation).
// Claim: bound k log(W/s)/log(1+k/s): for s << k the k/log(k/s) regime,
// for s >= k the s-dominated regime (r=2); crossover near s ~ k.

#include "bench_util.h"
#include "util/math_util.h"

int main() {
  using namespace dwrs;
  using namespace dwrs::bench;

  const int k = 64;
  const uint64_t n = 1u << 16;
  Header("E3: messages vs s  (k=64, n=65536, uniform weights)",
         "Theorem 3 s-dependence; regime change around s ~ k");
  Row("%-8s %-12s %-12s %-10s %-8s", "s", "ours", "thm3-bound", "ours/bound",
      "r");
  for (int s : {1, 4, 16, 64, 256, 1024}) {
    const Workload w = UniformWorkload(k, n, 3000 + s);
    const uint64_t ours = RunOurs(w, k, s, 44);
    const double bound = Theorem3MessageBound(k, s, w.TotalWeight());
    Row("%-8d %-12llu %-12.0f %-10.2f %-8.2f", s,
        static_cast<unsigned long long>(ours), bound,
        static_cast<double>(ours) / bound, EpochBase(k, s));
  }

  Row("%s", "");
  Row("%s", "-- ablation: epoch base r override (s=16) --");
  Row("%-8s %-12s %-16s", "r", "ours", "broadcast-events");
  for (double r : {2.0, 4.0, 8.0, 32.0, 128.0}) {
    const Workload w = UniformWorkload(k, n, 3500);
    DistributedWswor sampler(WsworConfig{.num_sites = k,
                                         .sample_size = 16,
                                         .seed = 45,
                                         .epoch_base = r});
    sampler.Run(w);
    Row("%-8.0f %-12llu %-16llu", r,
        static_cast<unsigned long long>(sampler.stats().total_messages()),
        static_cast<unsigned long long>(sampler.stats().broadcast_events));
  }
  return 0;
}
