// E14 — hot-path anatomy: per-endpoint ingestion throughput of the span
// (OnItems) path vs the per-item path, and the geometric-skip thinning
// hit rate.
//
// Three wswor variants are measured:
//   legacy_peritem — the pre-span reference (virtual call per item,
//                    log-ratio level computation, fresh lazy-exponential
//                    decision per item), kept here in the bench to pin
//                    the before/after comparison;
//   peritem        — today's OnItem (the degenerate n=1 span: same skip
//                    filter, but per-call overhead per item);
//   batched        — OnItems over 1024-item spans, every loop-invariant
//                    hoisted, skips absorbed at O(1) amortized RNG cost.
// The PR target is batched >= 3x legacy_peritem on the Zipf workload.
//
// Every other endpoint (naive, uswor, l1, window, hh) reports peritem vs
// batched, plus an end-to-end single-site engine ingestion row (span
// Push + recycled batch buffers). Results go to BENCH_hotpath.json.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "engine/engine.h"
#include "random/lazy_exponential.h"

namespace dwrs {
namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Message sink standing in for the coordinator: the bench measures pure
// site-side ingestion cost.
class SinkTransport : public sim::Transport {
 public:
  void SendToCoordinator(int /*site*/, const sim::Payload& msg) override {
    ++sent_;
    words_ += msg.words;
  }
  void SendToSite(int /*site*/, const sim::Payload& /*msg*/) override {}
  void Broadcast(const sim::Payload& /*msg*/) override {}
  uint64_t step() const override { return now_; }

  void set_now(uint64_t now) { now_ = now; }
  uint64_t sent() const { return sent_; }

 private:
  uint64_t sent_ = 0;
  uint64_t words_ = 0;
  uint64_t now_ = 0;
};

// The pre-span wswor site (PR 1/2 code): per-item virtual dispatch, a
// std::log ratio per level lookup, and a lazy-exponential threshold
// decision per item. This is the "per-item path" of the PR's acceptance
// criterion.
class LegacyWsworSite : public sim::SiteNode {
 public:
  LegacyWsworSite(const WsworConfig& config, int site_index,
                  sim::Transport* transport, uint64_t seed)
      : config_(config),
        site_index_(site_index),
        level_base_(config.ResolvedEpochBase()),
        transport_(transport),
        rng_(seed) {}

  void OnItem(const Item& item) override {
    if (config_.withhold_heavy) {
      const int level = LevelOf(item.weight);
      const bool saturated =
          static_cast<size_t>(level) < saturated_.size() &&
          saturated_[static_cast<size_t>(level)] != 0;
      if (!saturated) {
        sim::Payload msg;
        msg.type = kWsworEarly;
        msg.a = item.id;
        msg.x = item.weight;
        msg.words = 3;
        transport_->SendToCoordinator(site_index_, msg);
        return;
      }
    }
    const double bound = threshold_ > 0.0
                             ? item.weight / threshold_
                             : std::numeric_limits<double>::infinity();
    const LazyExpDecision decision = DecideExponentialBelow(rng_, bound);
    ++keys_decided_;
    key_bits_consumed_ += static_cast<uint64_t>(decision.bits_consumed);
    if (!decision.below_bound) return;
    sim::Payload msg;
    msg.type = kWsworRegular;
    msg.a = item.id;
    msg.x = item.weight;
    msg.y = item.weight / decision.value;
    msg.words = 4;
    transport_->SendToCoordinator(site_index_, msg);
  }

  void OnMessage(const sim::Payload& msg) override {
    switch (msg.type) {
      case kWsworLevelSaturated: {
        const size_t level = static_cast<size_t>(msg.a);
        if (level >= saturated_.size()) saturated_.resize(level + 1, 0);
        saturated_[level] = 1;
        break;
      }
      case kWsworUpdateEpoch:
        if (msg.x > threshold_) threshold_ = msg.x;
        break;
      default:
        break;
    }
  }

  sim::SiteHotPathCounters HotPathCounters() const override {
    return {keys_decided_, key_bits_consumed_, 0};
  }

 private:
  int LevelOf(double weight) const {
    if (weight < level_base_) return 0;
    return static_cast<int>(
        std::floor(std::log(weight) / std::log(level_base_)));
  }

  const WsworConfig config_;
  const int site_index_;
  const double level_base_;
  sim::Transport* transport_;
  Rng rng_;
  double threshold_ = 0.0;
  std::vector<uint8_t> saturated_;
  uint64_t keys_decided_ = 0;
  uint64_t key_bits_consumed_ = 0;
};

struct RunResult {
  double items_per_sec = 0.0;
  uint64_t messages = 0;
  sim::SiteHotPathCounters counters;
};

enum class Feed { kPerItem, kBatched };

constexpr size_t kSpan = 1024;

// Runs `items` through a freshly made site; `make` receives the
// transport and returns the warmed-up endpoint. Repeats `reps` times and
// keeps the fastest run (fresh endpoint per rep — sites are stateful).
template <typename MakeSite>
RunResult Measure(const std::vector<Item>& items, Feed feed, int reps,
                  MakeSite make) {
  RunResult best;
  for (int rep = 0; rep < reps; ++rep) {
    SinkTransport sink;
    std::unique_ptr<sim::SiteNode> site = make(&sink);
    const double t0 = Now();
    // Both feeds advance the transport clock at the same kSpan
    // boundaries so clock-driven endpoints (the sliding window) process
    // the identical workload — the comparison isolates the span-API
    // cost, not a different expiry schedule.
    if (feed == Feed::kPerItem) {
      for (size_t i = 0; i < items.size(); ++i) {
        if (i % kSpan == 0) sink.set_now(i);
        site->OnItem(items[i]);
      }
    } else {
      for (size_t off = 0; off < items.size(); off += kSpan) {
        sink.set_now(off);
        site->OnItems(items.data() + off,
                      std::min(kSpan, items.size() - off));
      }
    }
    const double t1 = Now();
    const double rate = static_cast<double>(items.size()) / (t1 - t0);
    if (rate > best.items_per_sec) {
      best.items_per_sec = rate;
      best.messages = sink.sent();
      best.counters = site->HotPathCounters();
    }
  }
  return best;
}

void Report(bench::JsonBench& json, const std::string& endpoint,
            const std::string& path, const RunResult& r) {
  const double skip_rate =
      r.counters.keys_decided > 0
          ? static_cast<double>(r.counters.skips_taken) /
                static_cast<double>(r.counters.keys_decided)
          : 0.0;
  bench::Row("  %-8s %-15s %12.0f items/s  %8llu msgs  skip-rate %.4f",
             endpoint.c_str(), path.c_str(), r.items_per_sec,
             static_cast<unsigned long long>(r.messages), skip_rate);
  json.StartRow()
      .Field("endpoint", endpoint)
      .Field("path", path)
      .Field("items_per_sec", r.items_per_sec)
      .Field("messages", r.messages)
      .Field("keys_decided", r.counters.keys_decided)
      .Field("key_bits_consumed", r.counters.key_bits_consumed)
      .Field("skips_taken", r.counters.skips_taken)
      .Field("skip_rate", skip_rate);
}

sim::Payload EpochMsg(double threshold) {
  sim::Payload msg;
  msg.type = kWsworUpdateEpoch;
  msg.x = threshold;
  msg.words = 2;
  return msg;
}

int Main(bool quick) {
  const uint64_t n = quick ? 150'000 : 2'000'000;
  const int reps = quick ? 2 : 3;
  const int s = 32;

  bench::Header("E14 hot-path anatomy",
                "span (OnItems) ingestion with geometric-skip thinning "
                "lifts single-site wswor >=3x over the per-item "
                "lazy-exponential path; skipped items cost no RNG work "
                "(skip rate ~= 1 in the steady state)");
  bench::JsonBench json("hotpath");
  json.Param("items", static_cast<double>(n))
      .Param("sample_size", static_cast<double>(s))
      .Param("span", static_cast<double>(kSpan))
      .Param("weights", "zipf(alpha=1.1)")
      .Param("quick", quick ? 1.0 : 0.0);

  // Single-site Zipf item stream (the acceptance workload).
  const Workload w = bench::ZipfWorkload(1, n, /*seed=*/7);
  std::vector<Item> items;
  items.reserve(n);
  double total_weight = 0.0;
  for (uint64_t i = 0; i < w.size(); ++i) {
    items.push_back(w.event(i).item);
    total_weight += w.event(i).item.weight;
  }

  // Steady-state filter levels: the epoch threshold a coordinator would
  // announce after W total weight (s-th largest of ~W/u surviving keys),
  // with every populated level saturated.
  const double steady_threshold = total_weight / s;
  const WsworConfig wswor_config{.num_sites = 1, .sample_size = s, .seed = 5};
  const auto make_wswor = [&](sim::Transport* t) {
    auto site = std::make_unique<WsworSite>(wswor_config, 0, t, /*seed=*/11);
    for (uint64_t level = 0; level < 64; ++level) {
      sim::Payload msg;
      msg.type = kWsworLevelSaturated;
      msg.a = level;
      msg.words = 2;
      site->OnMessage(msg);
    }
    site->OnMessage(EpochMsg(steady_threshold));
    return site;
  };
  const auto make_legacy = [&](sim::Transport* t) {
    auto site =
        std::make_unique<LegacyWsworSite>(wswor_config, 0, t, /*seed=*/11);
    for (uint64_t level = 0; level < 64; ++level) {
      sim::Payload msg;
      msg.type = kWsworLevelSaturated;
      msg.a = level;
      msg.words = 2;
      site->OnMessage(msg);
    }
    site->OnMessage(EpochMsg(steady_threshold));
    return site;
  };

  const RunResult legacy =
      Measure(items, Feed::kPerItem, reps, make_legacy);
  const RunResult peritem =
      Measure(items, Feed::kPerItem, reps, make_wswor);
  const RunResult batched =
      Measure(items, Feed::kBatched, reps, make_wswor);
  Report(json, "wswor", "legacy_peritem", legacy);
  Report(json, "wswor", "peritem", peritem);
  Report(json, "wswor", "batched", batched);
  bench::Row("    -> wswor batched vs legacy per-item: %.2fx  (target >=3x)",
             batched.items_per_sec / legacy.items_per_sec);
  bench::Row("    -> wswor batched vs span-1 per-item: %.2fx",
             batched.items_per_sec / peritem.items_per_sec);

  // Naive baseline: local top-s filter, now skip-thinned against the
  // heap minimum.
  const auto make_naive = [&](sim::Transport* t) {
    return std::make_unique<NaiveWsworSite>(s, 0, t, /*seed=*/13);
  };
  Report(json, "naive", "peritem",
         Measure(items, Feed::kPerItem, reps, make_naive));
  Report(json, "naive", "batched",
         Measure(items, Feed::kBatched, reps, make_naive));

  // Unweighted substrate: uniform keys against a shrinking tau — the
  // constant-hazard case where thinning is literal geometric skipping.
  const UsworConfig uswor_config{.num_sites = 1, .sample_size = s};
  const double steady_tau =
      static_cast<double>(s) / static_cast<double>(n);
  const auto make_uswor = [&](sim::Transport* t) {
    auto site = std::make_unique<UsworSite>(uswor_config, 0, t, /*seed=*/17);
    sim::Payload msg;
    msg.type = kUsworThreshold;
    msg.x = steady_tau;
    msg.words = 2;
    site->OnMessage(msg);
    return site;
  };
  Report(json, "uswor", "peritem",
         Measure(items, Feed::kPerItem, reps, make_uswor));
  Report(json, "uswor", "batched",
         Measure(items, Feed::kBatched, reps, make_uswor));

  // L1 tracker: ell-fold duplication, first copy skip-thinned.
  const L1TrackerConfig l1_config{.num_sites = 1, .eps = 0.1, .delta = 0.1};
  const double l1_threshold =
      total_weight * static_cast<double>(l1_config.Duplication()) /
      static_cast<double>(l1_config.SampleSize());
  const auto make_l1 = [&](sim::Transport* t) {
    auto site = std::make_unique<L1Site>(l1_config, 0, t, /*seed=*/19);
    site->OnMessage(EpochMsg(l1_threshold));
    return site;
  };
  Report(json, "l1", "peritem",
         Measure(items, Feed::kPerItem, reps, make_l1));
  Report(json, "l1", "batched",
         Measure(items, Feed::kBatched, reps, make_l1));

  // Sliding window: skyline maintenance (no thinning filter; the span
  // win is hoisted clock reads and expiry scans).
  const WindowConfig window_config{
      .num_sites = 1, .sample_size = s, .window = 16384};
  const auto make_window = [&](sim::Transport* t) {
    return std::make_unique<WindowSite>(window_config, 0, t, /*seed=*/23);
  };
  Report(json, "window", "peritem",
         Measure(items, Feed::kPerItem, reps, make_window));
  Report(json, "window", "batched",
         Measure(items, Feed::kBatched, reps, make_window));

  // Heavy hitters: Misra-Gries summary with periodic shipping.
  const auto make_hh = [&](sim::Transport* t) {
    return DistributedMgHh::MakeSite(0, /*capacity=*/256,
                                     /*sync_every=*/65536, t);
  };
  Report(json, "hh", "peritem",
         Measure(items, Feed::kPerItem, reps, make_hh));
  Report(json, "hh", "batched",
         Measure(items, Feed::kBatched, reps, make_hh));

  // End-to-end single-site engine ingestion: span Push, pooled batch
  // buffers, real coordinator thread.
  {
    std::vector<std::unique_ptr<WsworSite>> sites;
    engine::Engine eng(engine::EngineConfig{
        .num_sites = 1, .batch_size = kSpan});
    Rng master(wswor_config.seed);
    sites.push_back(std::make_unique<WsworSite>(
        wswor_config, 0, &eng.transport(), master.NextU64()));
    eng.AttachSite(0, sites.back().get());
    WsworCoordinator coordinator(wswor_config, &eng.transport(),
                                 master.NextU64());
    eng.AttachCoordinator(&coordinator);
    const double t0 = Now();
    eng.Push(0, items.data(), items.size());
    eng.Flush();
    const double t1 = Now();
    RunResult engine_result;
    engine_result.items_per_sec = static_cast<double>(n) / (t1 - t0);
    engine_result.messages = eng.stats().total_messages();
    engine_result.counters = {eng.stats().keys_decided.load(),
                              eng.stats().key_bits_consumed.load(),
                              eng.stats().skips_taken.load()};
    Report(json, "wswor", "engine_e2e", engine_result);
    bench::Row("    -> engine pool: %llu recycled, %llu misses, "
               "%llu ingest stalls",
               static_cast<unsigned long long>(
                   eng.stats().batches_recycled.load()),
               static_cast<unsigned long long>(
                   eng.stats().batch_pool_misses.load()),
               static_cast<unsigned long long>(
                   eng.stats().ingest_stalls.load()));
    eng.Shutdown();
  }

  const std::string path = json.Write();
  bench::Row("wrote %s", path.c_str());
  return 0;
}

}  // namespace
}  // namespace dwrs

int main(int argc, char** argv) {
  return dwrs::Main(dwrs::bench::QuickMode(argc, argv));
}
