// E11 — Corollary 1: distributed weighted SWR message complexity
// O((k + s log s) log(W) / log(2+k/s)), with the binomial batching
// replacing per-duplicate work.

#include "bench_util.h"

int main() {
  using namespace dwrs;
  using namespace dwrs::bench;

  Header("E11: weighted SWR messages (Corollary 1)",
         "msgs = O((k + s log s) log(W)/log(2+k/s)) despite W >> n duplicates");

  Row("%s", "-- sweep W (k=16, s=16) --");
  Row("%-10s %-12s %-12s %-12s %-10s", "n", "W", "msgs", "cor1-bound",
      "ratio");
  for (uint64_t n : {4000u, 16000u, 64000u}) {
    const Workload w = WorkloadBuilder()
                           .num_sites(16)
                           .num_items(n)
                           .seed(1300 + n)
                           .weights(std::make_unique<UniformWeights>(1.0, 64.0))
                           .integer_weights(true)
                           .partitioner(std::make_unique<RandomPartitioner>())
                           .Build();
    DistributedWeightedSwr swr(16, 16, 52);
    swr.Run(w);
    const double bound = Corollary1MessageBound(16, 16, w.TotalWeight());
    Row("%-10llu %-12.3g %-12llu %-12.0f %-10.2f",
        static_cast<unsigned long long>(n), w.TotalWeight(),
        static_cast<unsigned long long>(swr.stats().total_messages()), bound,
        static_cast<double>(swr.stats().total_messages()) / bound);
  }

  Row("%s", "");
  Row("%s", "-- sweep k (s=16, n=16000) --");
  Row("%-10s %-12s %-12s %-10s", "k", "msgs", "cor1-bound", "ratio");
  for (int k : {4, 16, 64, 256}) {
    const Workload w = WorkloadBuilder()
                           .num_sites(k)
                           .num_items(16000)
                           .seed(1400 + k)
                           .weights(std::make_unique<UniformWeights>(1.0, 64.0))
                           .integer_weights(true)
                           .partitioner(std::make_unique<RandomPartitioner>())
                           .Build();
    DistributedWeightedSwr swr(k, 16, 53);
    swr.Run(w);
    const double bound = Corollary1MessageBound(k, 16, w.TotalWeight());
    Row("%-10d %-12llu %-12.0f %-10.2f", k,
        static_cast<unsigned long long>(swr.stats().total_messages()), bound,
        static_cast<double>(swr.stats().total_messages()) / bound);
  }
  return 0;
}
