// E9 — Theorem 6 accuracy: the tracker's estimate is (1 +/- eps)W at
// every time step with probability 1-delta. Measures the distribution of
// relative error across all checkpoints of the stream.

#include <cmath>

#include "bench_util.h"
#include "l1/l1_tracker.h"
#include "stats/summary.h"

int main() {
  using namespace dwrs;
  using namespace dwrs::bench;

  const int k = 16;
  const uint64_t n = 20000;
  Header("E9: L1 tracking accuracy  (k=16, uniform weights, n=20000)",
         "Theorem 6: |West - W| <= eps*W per step w.p. 1-delta");
  Row("%-8s %-8s %-12s %-12s %-12s %-12s", "eps", "delta", "median-err",
      "p95-err", "worst-err", "messages");
  for (double eps : {0.1, 0.2, 0.3}) {
    const double delta = 0.1;
    const Workload w = UniformWorkload(k, n, 1200, 8.0);
    L1Tracker tracker(L1TrackerConfig{
        .num_sites = k, .eps = eps, .delta = delta, .seed = 51});
    QuantileSketch errors;
    double true_weight = 0.0;
    for (uint64_t i = 0; i < w.size(); ++i) {
      true_weight += w.event(i).item.weight;
      tracker.Observe(w.event(i).site, w.event(i).item);
      errors.Add(std::fabs(tracker.Estimate() - true_weight) / true_weight);
    }
    Row("%-8.2f %-8.2f %-12.4f %-12.4f %-12.4f %-12llu", eps, delta,
        errors.Quantile(0.5), errors.Quantile(0.95), errors.Quantile(1.0),
        static_cast<unsigned long long>(tracker.stats().total_messages()));
  }
  Row("%s", "");
  Row("%s", "expect: p95-err <= eps for each row (the guarantee is per step");
  Row("%s", "at confidence 1-delta; the worst over 20000 steps may exceed");
  Row("%s", "eps slightly).");
  return 0;
}
