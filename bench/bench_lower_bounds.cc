// E12 — The lower-bound hard instances (Theorems 5 and 7), measured on
// our algorithms:
//   (a) geometric stream w_i ~ (1+eps)^i: any correct HH tracker must
//       change its output Omega(log(W)/eps) times — we count output
//       changes of the residual-HH tracker;
//   (b) epoch stream (k items of weight k^i per epoch): any correct
//       L1 tracker pays Omega(k log W / log k) messages — we measure all
//       three trackers against that floor.

#include <cmath>
#include <unordered_set>

#include "bench_util.h"
#include "l1/deterministic_l1.h"
#include "l1/l1_tracker.h"
#include "l1/sqrtk_l1.h"

int main() {
  using namespace dwrs;
  using namespace dwrs::bench;

  Header("E12: lower-bound hard streams (Theorems 5 and 7)",
         "sample churn Omega(log(W)/eps); messages Omega(k logW / log k)");

  {
    Row("%s", "-- (a) Theorem 5 stream: w_i = eps(1+eps)^i, eps sweep --");
    Row("%-8s %-8s %-14s %-14s %-12s", "eps", "n", "output-changes",
        "lb~ln(W)/eps", "messages");
    for (double eps : {0.05, 0.1, 0.2}) {
      // Keep (1+eps)^n within double range.
      const uint64_t n = static_cast<uint64_t>(600.0 / eps / 10.0) * 10;
      const Workload w =
          WorkloadBuilder()
              .num_sites(8)
              .num_items(n)
              .seed(1500)
              .weights(std::make_unique<GeometricGrowthWeights>(eps))
              .partitioner(std::make_unique<RoundRobinPartitioner>())
              .Build();
      ResidualHhConfig config;
      config.num_sites = 8;
      config.eps = eps;
      config.delta = 0.1;
      config.seed = 54;
      ResidualHeavyHitterTracker tracker(config);
      uint64_t changes = 0;
      std::unordered_set<uint64_t> previous;
      for (uint64_t i = 0; i < w.size(); ++i) {
        tracker.Observe(w.event(i).site, w.event(i).item);
        std::unordered_set<uint64_t> current;
        for (const Item& item : tracker.HeavyHitters()) current.insert(item.id);
        if (current != previous) {
          ++changes;
          previous = std::move(current);
        }
      }
      const double log_w = static_cast<double>(n) * std::log1p(eps);
      Row("%-8.2f %-8llu %-14llu %-14.0f %-12llu", eps,
          static_cast<unsigned long long>(n),
          static_cast<unsigned long long>(changes), log_w / eps,
          static_cast<unsigned long long>(tracker.stats().total_messages()));
    }
  }

  {
    Row("%s", "");
    Row("%s", "-- (b) Theorem 7 stream: epochs of k items with weight k^i --");
    Row("%-8s %-10s %-12s %-12s %-12s %-14s", "k", "epochs", "det-msgs",
        "hyz-msgs", "ours-msgs", "lb~k*lnW/lnk");
    for (int k : {8, 16, 32}) {
      const int epochs =
          static_cast<int>(std::floor(300.0 / std::log2(k)));  // stay finite
      const uint64_t n = static_cast<uint64_t>(k) * epochs / 4;
      const Workload w =
          WorkloadBuilder()
              .num_sites(k)
              .num_items(n)
              .seed(1600)
              .weights(std::make_unique<EpochPowerWeights>(k, k))
              .partitioner(std::make_unique<BlockPartitioner>(1))
              .Build();
      const double total = w.TotalWeight();
      const double lb = k * std::log(total) / std::log(k);
      DeterministicL1Tracker det(k, 0.25);
      det.Run(w);
      SqrtkL1Tracker hyz(k, 0.25, 55);
      hyz.Run(w);
      L1Tracker ours(L1TrackerConfig{
          .num_sites = k, .eps = 0.25, .delta = 0.2, .seed = 55});
      ours.Run(w);
      Row("%-8d %-10d %-12llu %-12llu %-12llu %-14.0f", k, epochs / 4,
          static_cast<unsigned long long>(det.stats().total_messages()),
          static_cast<unsigned long long>(hyz.stats().total_messages()),
          static_cast<unsigned long long>(ours.stats().total_messages()), lb);
    }
    Row("%s", "");
    Row("%s", "expect: (a) output changes track ln(W)/eps within a small");
    Row("%s", "factor; (b) every tracker's messages sit above ~lb/constant,");
    Row("%s", "confirming the floor is real.");
  }
  return 0;
}
