// E5 — Ablation of the level-set withholding (Definition 4 / Lemma 1).
// Claim: on adversarial heavy-hitter streams (doubling heavies followed
// by light bursts) plain precision sampling keeps paying messages for
// light items because extreme heavies depress the s-th largest key
// relative to the total weight; withholding bounds the cost. On benign
// uniform streams the two variants cost about the same.

#include "bench_util.h"
#include "util/math_util.h"

namespace {

dwrs::Workload DoublingStream(int k, uint64_t n, uint64_t burst,
                              uint64_t seed) {
  return dwrs::WorkloadBuilder()
      .num_sites(k)
      .num_items(n)
      .seed(seed)
      .weights(std::make_unique<dwrs::DoublingHeavyWeights>(burst))
      .partitioner(std::make_unique<dwrs::RandomPartitioner>())
      .Build();
}

uint64_t RunVariant(const dwrs::Workload& w, int k, int s, bool withhold,
                    uint64_t seed) {
  dwrs::DistributedWswor sampler(dwrs::WsworConfig{.num_sites = k,
                                                   .sample_size = s,
                                                   .seed = seed,
                                                   .withhold_heavy = withhold});
  sampler.Run(w);
  return sampler.stats().total_messages();
}

}  // namespace

int main() {
  using namespace dwrs;
  using namespace dwrs::bench;

  const int k = 16;
  const int s = 8;
  Header("E5: level-set withholding ablation  (k=16, s=8)",
         "withholding heavies bounds messages on adversarial streams");

  Row("%s", "-- adversarial: doubling heavies + bursts of 127 unit items --");
  Row("%-10s %-16s %-16s %-10s", "n", "with-levels", "no-levels", "ratio");
  for (uint64_t n : {2000u, 8000u, 32000u}) {
    const Workload w = DoublingStream(k, n, 127, 500 + n);
    const uint64_t with_ls = RunVariant(w, k, s, true, 46);
    const uint64_t without = RunVariant(w, k, s, false, 46);
    Row("%-10llu %-16llu %-16llu %-10.2f",
        static_cast<unsigned long long>(n),
        static_cast<unsigned long long>(with_ls),
        static_cast<unsigned long long>(without),
        static_cast<double>(without) / static_cast<double>(with_ls));
  }

  Row("%s", "");
  Row("%s", "-- benign: uniform weights in [1,16] --");
  Row("%-10s %-16s %-16s %-10s", "n", "with-levels", "no-levels", "ratio");
  for (uint64_t n : {2000u, 8000u, 32000u}) {
    const Workload w = UniformWorkload(k, n, 600 + n);
    const uint64_t with_ls = RunVariant(w, k, s, true, 47);
    const uint64_t without = RunVariant(w, k, s, false, 47);
    Row("%-10llu %-16llu %-16llu %-10.2f",
        static_cast<unsigned long long>(n),
        static_cast<unsigned long long>(with_ls),
        static_cast<unsigned long long>(without),
        static_cast<double>(without) / static_cast<double>(with_ls));
  }
  Row("%s", "");
  Row("%s", "expect: adversarial ratio GROWS with n (no-levels pays ~linear");
  Row("%s", "messages); on benign streams withholding costs only a bounded");
  Row("%s", "warm-up (<= 4rs early messages per level), so the ratio is a");
  Row("%s", "constant that does not grow with n.");
  return 0;
}
