// E10 — the scenario matrix: every protocol facade x every scenario in
// the registry (stream/scenario.h), on both execution backends, with the
// accuracy and message-cost of every cell emitted as one JSON row.
// tools/check_envelopes.py gates the rows against bench/envelopes.json in
// CI, so "the distributional guarantees and message bounds hold under
// temporal dynamics, skewed ownership, bursty arrivals, and site churn"
// is a standing regression-checked statement.
//
// Per-cell accuracy metrics (cheap enough for a matrix, exact laws):
//   wswor/naive  argmax item ~ w_i/W (chi-square) and the max key
//                ~ Frechet exp(-W/x) (KS) — both exact for weighted SWOR.
//   uswor        membership counts uniform s/n (chi-square).
//   swr          every race winner iid ~ w_i/W (chi-square over T*s draws).
//   l1           relative error of W-hat (median/max over trials).
//
// Engine rows run step-synchronous through the paced feeder
// (Engine::RunPaced with the scenario's materialized arrival schedule)
// and are gated on bit-identity with the simulator — sample, keys, and
// every traffic counter — so the accuracy measured on the sim rows
// transfers verbatim and the gate never flakes on interleavings.
//
// Site churn cells run through faults::FaultyRun (crash/resync path):
// clean trials must be chi-square-exact over the deterministic survivor
// set, lossy trials must be flagged degraded, and a clean trial whose
// sample strays outside the survivor set counts as silent_wrong — gated
// to exactly zero. naive (reliable transport required) and swr (no fault
// traits) run the reliable path on churn scenarios with churn_applied=0.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "stats/chi_square.h"
#include "stats/ks_test.h"
#include "stream/dynamics.h"
#include "stream/scenario.h"

namespace {

using namespace dwrs;
using namespace dwrs::bench;

constexpr int kSampleSize = 16;

struct CellParams {
  int trials_sim = 0;
  int trials_engine = 0;
};

// One matrix cell's measurements; -1 marks a metric the protocol does not
// produce (the field is then omitted from the row).
struct CellResult {
  double chisq_p = -1.0;
  double ks_p = -1.0;
  double rel_err_med = -1.0;
  double rel_err_max = -1.0;
  double messages_mean = 0.0;
  uint64_t messages_max = 0;
  bool churn_applied = false;
  int trials = 0;
  int clean_trials = -1;
  int degraded_trials = -1;
  int silent_wrong = -1;
  int bit_identical = -1;  // engine rows only
};

WsworConfig WsworConfigFor(const ScenarioSpec& spec, uint64_t seed) {
  return WsworConfig{.num_sites = spec.num_sites, .sample_size = kSampleSize,
                     .seed = seed};
}

UsworConfig UsworConfigFor(const ScenarioSpec& spec, uint64_t seed) {
  return UsworConfig{.num_sites = spec.num_sites, .sample_size = kSampleSize,
                     .seed = seed};
}

SlottedSwrConfig SwrConfigFor(const ScenarioSpec& spec, uint64_t seed) {
  return SlottedSwrConfig{.num_sites = spec.num_sites,
                          .sample_size = kSampleSize, .seed = seed};
}

L1TrackerConfig L1ConfigFor(const ScenarioSpec& spec, uint64_t seed) {
  return L1TrackerConfig{.num_sites = spec.num_sites, .eps = 0.25,
                         .delta = 0.2, .seed = seed};
}

uint64_t CellSeed(size_t scenario_index, size_t protocol_index, int trial) {
  return 100000 + 10000 * scenario_index + 1000 * protocol_index +
         static_cast<uint64_t>(trial);
}

// id -> dense cell index over `ids` (workload item ids are stream
// positions, but churn survivor sets are sparse subsets).
std::map<uint64_t, size_t> CellIndex(const std::vector<uint64_t>& ids) {
  std::map<uint64_t, size_t> index;
  for (uint64_t id : ids) index.emplace(id, index.size());
  return index;
}

std::vector<double> NormalizedWeights(const Workload& w,
                                      const std::vector<uint64_t>& ids) {
  std::vector<double> probs;
  probs.reserve(ids.size());
  double total = 0.0;
  for (uint64_t id : ids) {
    probs.push_back(w.event(id).item.weight);
    total += probs.back();
  }
  for (double& p : probs) p /= total;
  return probs;
}

std::vector<uint64_t> AllIds(const Workload& w) {
  std::vector<uint64_t> ids;
  ids.reserve(w.size());
  for (uint64_t i = 0; i < w.size(); ++i) ids.push_back(w.event(i).item.id);
  return ids;
}

const KeyedItem& ArgmaxEntry(const std::vector<KeyedItem>& sample) {
  DWRS_CHECK(!sample.empty());
  size_t best = 0;
  for (size_t i = 1; i < sample.size(); ++i) {
    if (sample[i].key > sample[best].key) best = i;
  }
  return sample[best];
}

void TrackMessages(CellResult& cell, uint64_t messages) {
  cell.messages_mean += static_cast<double>(messages);
  cell.messages_max = std::max(cell.messages_max, messages);
}

double FrechetKsPValue(std::vector<double> max_keys, double total_weight) {
  return KsTest(std::move(max_keys),
                [total_weight](double x) {
                  return x <= 0.0 ? 0.0 : std::exp(-total_weight / x);
                })
      .p_value;
}

void FinishMedianMax(CellResult& cell, std::vector<double>& errs) {
  std::sort(errs.begin(), errs.end());
  cell.rel_err_med = errs[errs.size() / 2];
  cell.rel_err_max = errs.back();
}

// --- reliable sim cells -----------------------------------------------

CellResult SimCellWswor(const ScenarioSpec& spec, const Workload& w,
                        size_t si, size_t pi, int trials, bool naive) {
  CellResult cell;
  cell.trials = trials;
  const auto probs = NormalizedWeights(w, AllIds(w));
  const double total = w.TotalWeight();
  std::vector<uint64_t> counts(w.size(), 0);
  std::vector<double> max_keys;
  for (int t = 0; t < trials; ++t) {
    const uint64_t seed = CellSeed(si, pi, t);
    std::vector<KeyedItem> sample;
    if (naive) {
      NaiveDistributedWswor sampler(spec.num_sites, kSampleSize, seed);
      sampler.Run(w);
      sample = sampler.Sample();
      TrackMessages(cell, sampler.stats().total_messages());
    } else {
      DistributedWswor sampler(WsworConfigFor(spec, seed));
      sampler.Run(w);
      sample = sampler.Sample();
      TrackMessages(cell, sampler.stats().total_messages());
    }
    const KeyedItem& top = ArgmaxEntry(sample);
    ++counts[top.item.id];
    max_keys.push_back(top.key);
  }
  cell.messages_mean /= trials;
  cell.chisq_p = ChiSquareAgainstProbabilities(
                     counts, probs, static_cast<uint64_t>(trials))
                     .p_value;
  cell.ks_p = FrechetKsPValue(std::move(max_keys), total);
  return cell;
}

CellResult SimCellUswor(const ScenarioSpec& spec, const Workload& w,
                        size_t si, size_t pi, int trials) {
  CellResult cell;
  cell.trials = trials;
  std::vector<uint64_t> counts(w.size(), 0);
  for (int t = 0; t < trials; ++t) {
    DistributedUnweightedSwor sampler(
        UsworConfigFor(spec, CellSeed(si, pi, t)));
    sampler.Run(w);
    for (const Item& item : sampler.Sample()) ++counts[item.id];
    TrackMessages(cell, sampler.stats().total_messages());
  }
  cell.messages_mean /= trials;
  const std::vector<double> uniform(w.size(), 1.0 / w.size());
  cell.chisq_p = ChiSquareAgainstProbabilities(
                     counts, uniform,
                     static_cast<uint64_t>(trials) * kSampleSize)
                     .p_value;
  return cell;
}

CellResult SimCellSwr(const ScenarioSpec& spec, const Workload& w,
                      size_t si, size_t pi, int trials) {
  CellResult cell;
  cell.trials = trials;
  const auto probs = NormalizedWeights(w, AllIds(w));
  std::vector<uint64_t> counts(w.size(), 0);
  for (int t = 0; t < trials; ++t) {
    DistributedSwr sampler(SwrConfigFor(spec, CellSeed(si, pi, t)));
    sampler.Run(w);
    for (const Item& item : sampler.Sample()) ++counts[item.id];
    TrackMessages(cell, sampler.stats().total_messages());
  }
  cell.messages_mean /= trials;
  cell.chisq_p = ChiSquareAgainstProbabilities(
                     counts, probs,
                     static_cast<uint64_t>(trials) * kSampleSize)
                     .p_value;
  return cell;
}

CellResult SimCellL1(const ScenarioSpec& spec, const Workload& w, size_t si,
                     size_t pi, int trials) {
  CellResult cell;
  cell.trials = trials;
  const double total = w.TotalWeight();
  std::vector<double> errs;
  for (int t = 0; t < trials; ++t) {
    L1Tracker tracker(L1ConfigFor(spec, CellSeed(si, pi, t)));
    tracker.Run(w);
    errs.push_back(std::abs(tracker.Estimate() - total) / total);
    TrackMessages(cell, tracker.stats().total_messages());
  }
  cell.messages_mean /= trials;
  FinishMedianMax(cell, errs);
  return cell;
}

// --- churn sim cells (crash/resync through the fault harness) ---------

template <typename Traits, typename Config, typename PerCleanTrial>
CellResult ChurnCell(const Workload& w, const faults::FaultConfig& churn,
                     size_t si, size_t pi, int trials,
                     const std::vector<uint64_t>& survivors,
                     const std::function<Config(uint64_t)>& make_config,
                     const PerCleanTrial& per_clean_trial) {
  CellResult cell;
  cell.trials = trials;
  cell.churn_applied = true;
  cell.clean_trials = 0;
  cell.degraded_trials = 0;
  cell.silent_wrong = 0;
  const auto survivor_index = CellIndex(survivors);
  for (int t = 0; t < trials; ++t) {
    faults::FaultyRun<Traits> run(make_config(CellSeed(si, pi, t)), churn,
                                  faults::Backend::kSim);
    run.Run(w);
    const faults::RunReport report = run.report();
    TrackMessages(cell, report.faults_forwarded);
    if (!report.clean) {
      ++cell.degraded_trials;
      continue;
    }
    ++cell.clean_trials;
    bool in_survivors = true;
    for (uint64_t id : run.SampleIds()) {
      if (!survivor_index.count(id)) in_survivors = false;
    }
    if (!in_survivors) {
      ++cell.silent_wrong;  // clean yet outside the survivor set: silent
      continue;
    }
    per_clean_trial(run, cell, survivor_index);
  }
  cell.messages_mean /= trials;
  return cell;
}

CellResult ChurnCellWswor(const ScenarioSpec& spec, const Workload& w,
                          const faults::FaultConfig& churn, size_t si,
                          size_t pi, int trials,
                          const std::vector<uint64_t>& survivors) {
  std::vector<uint64_t> counts(survivors.size(), 0);
  std::vector<double> max_keys;
  const std::function<WsworConfig(uint64_t)> make_config =
      [&](uint64_t seed) { return WsworConfigFor(spec, seed); };
  CellResult cell = ChurnCell<faults::WsworFaultTraits, WsworConfig>(
      w, churn, si, pi, trials, survivors, make_config,
      [&](const faults::FaultyWswor& run, CellResult&,
          const std::map<uint64_t, size_t>& survivor_index) {
        const std::vector<KeyedItem> sample = run.coordinator().Sample();
        const KeyedItem& top = ArgmaxEntry(sample);
        ++counts[survivor_index.at(top.item.id)];
        max_keys.push_back(top.key);
      });
  const auto probs = NormalizedWeights(w, survivors);
  double survivor_weight = 0.0;
  for (uint64_t id : survivors) survivor_weight += w.event(id).item.weight;
  cell.chisq_p = ChiSquareAgainstProbabilities(
                     counts, probs,
                     static_cast<uint64_t>(cell.clean_trials))
                     .p_value;
  cell.ks_p = FrechetKsPValue(std::move(max_keys), survivor_weight);
  return cell;
}

CellResult ChurnCellUswor(const ScenarioSpec& spec, const Workload& w,
                          const faults::FaultConfig& churn, size_t si,
                          size_t pi, int trials,
                          const std::vector<uint64_t>& survivors) {
  std::vector<uint64_t> counts(survivors.size(), 0);
  const std::function<UsworConfig(uint64_t)> make_config =
      [&](uint64_t seed) { return UsworConfigFor(spec, seed); };
  CellResult cell = ChurnCell<faults::UsworFaultTraits, UsworConfig>(
      w, churn, si, pi, trials, survivors, make_config,
      [&](const faults::FaultyUswor& run, CellResult&,
          const std::map<uint64_t, size_t>& survivor_index) {
        for (uint64_t id : run.SampleIds()) {
          ++counts[survivor_index.at(id)];
        }
      });
  const std::vector<double> uniform(survivors.size(),
                                    1.0 / survivors.size());
  cell.chisq_p =
      ChiSquareAgainstProbabilities(
          counts, uniform,
          static_cast<uint64_t>(cell.clean_trials) * kSampleSize)
          .p_value;
  return cell;
}

CellResult ChurnCellL1(const ScenarioSpec& spec, const Workload& w,
                       const faults::FaultConfig& churn, size_t si, size_t pi,
                       int trials, const std::vector<uint64_t>& survivors) {
  double survivor_weight = 0.0;
  for (uint64_t id : survivors) survivor_weight += w.event(id).item.weight;
  std::vector<double> errs;
  const L1TrackerConfig proto = L1ConfigFor(spec, 0);
  const std::function<L1TrackerConfig(uint64_t)> make_config =
      [&](uint64_t seed) { return L1ConfigFor(spec, seed); };
  CellResult cell = ChurnCell<faults::L1FaultTraits, L1TrackerConfig>(
      w, churn, si, pi, trials, survivors, make_config,
      [&](const faults::FaultyL1& run, CellResult&,
          const std::map<uint64_t, size_t>&) {
        const double estimate = L1EstimateFromThreshold(
            proto, run.coordinator().Threshold());
        errs.push_back(std::abs(estimate - survivor_weight) /
                       survivor_weight);
      });
  if (!errs.empty()) FinishMedianMax(cell, errs);
  return cell;
}

// --- engine cells: bit-identity with the simulator --------------------

bool SameStats(const sim::MessageStats& a, const sim::MessageStats& b) {
  if (a.site_to_coord != b.site_to_coord) return false;
  if (a.coord_to_site != b.coord_to_site) return false;
  if (a.words != b.words) return false;
  for (size_t i = 0; i < a.by_type.size(); ++i) {
    if (a.by_type[i] != b.by_type[i]) return false;
  }
  return true;
}

bool SameKeyedSample(const std::vector<KeyedItem>& a,
                     const std::vector<KeyedItem>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].item.id != b[i].item.id || a[i].key != b[i].key) return false;
  }
  return true;
}

bool SameItemIds(const std::vector<Item>& a, const std::vector<Item>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id) return false;
  }
  return true;
}

engine::EngineConfig StepSyncEngine(const ScenarioSpec& spec) {
  engine::EngineConfig config;
  config.num_sites = spec.num_sites;
  config.step_synchronous = true;
  return config;
}

// Each Engine*Identical builds the manual engine endpoint stack with the
// facade's exact seed derivation (master RNG: one NextU64 per site in
// index order, then the coordinator's where it takes one), replays the
// scenario through the paced feeder, and compares sample + every traffic
// counter against the sim facade.

bool EngineWsworIdentical(const ScenarioSpec& spec, const Workload& w,
                          const std::vector<uint32_t>& batches, uint64_t seed,
                          uint64_t* messages) {
  const WsworConfig config = WsworConfigFor(spec, seed);
  DistributedWswor sim_sampler(config);
  sim_sampler.Run(w);

  std::vector<std::unique_ptr<WsworSite>> sites;
  std::unique_ptr<WsworCoordinator> coordinator;
  engine::Engine eng(StepSyncEngine(spec));
  Rng master(config.seed);
  for (int i = 0; i < config.num_sites; ++i) {
    sites.push_back(std::make_unique<WsworSite>(config, i, &eng.transport(),
                                                master.NextU64()));
    eng.AttachSite(i, sites.back().get());
  }
  coordinator = std::make_unique<WsworCoordinator>(config, &eng.transport(),
                                                   master.NextU64());
  eng.AttachCoordinator(coordinator.get());
  eng.RunPaced(w, batches);
  const bool same =
      SameKeyedSample(sim_sampler.Sample(), coordinator->Sample()) &&
      SameStats(sim_sampler.stats(), eng.stats().MessageSnapshot());
  *messages = eng.stats().MessageSnapshot().total_messages();
  eng.Shutdown();
  return same;
}

bool EngineNaiveIdentical(const ScenarioSpec& spec, const Workload& w,
                          const std::vector<uint32_t>& batches, uint64_t seed,
                          uint64_t* messages) {
  NaiveDistributedWswor sim_sampler(spec.num_sites, kSampleSize, seed);
  sim_sampler.Run(w);

  std::vector<std::unique_ptr<NaiveWsworSite>> sites;
  engine::Engine eng(StepSyncEngine(spec));
  Rng master(seed);
  for (int i = 0; i < spec.num_sites; ++i) {
    sites.push_back(std::make_unique<NaiveWsworSite>(
        kSampleSize, i, &eng.transport(), master.NextU64()));
    eng.AttachSite(i, sites.back().get());
  }
  NaiveWsworCoordinator coordinator(kSampleSize);
  eng.AttachCoordinator(&coordinator);
  eng.RunPaced(w, batches);
  const bool same =
      SameKeyedSample(sim_sampler.Sample(), coordinator.Sample()) &&
      SameStats(sim_sampler.stats(), eng.stats().MessageSnapshot());
  *messages = eng.stats().MessageSnapshot().total_messages();
  eng.Shutdown();
  return same;
}

bool EngineUsworIdentical(const ScenarioSpec& spec, const Workload& w,
                          const std::vector<uint32_t>& batches, uint64_t seed,
                          uint64_t* messages) {
  const UsworConfig config = UsworConfigFor(spec, seed);
  DistributedUnweightedSwor sim_sampler(config);
  sim_sampler.Run(w);

  std::vector<std::unique_ptr<UsworSite>> sites;
  engine::Engine eng(StepSyncEngine(spec));
  Rng master(config.seed);
  for (int i = 0; i < config.num_sites; ++i) {
    sites.push_back(std::make_unique<UsworSite>(config, i, &eng.transport(),
                                                master.NextU64()));
    eng.AttachSite(i, sites.back().get());
  }
  UsworCoordinator coordinator(config, &eng.transport());
  eng.AttachCoordinator(&coordinator);
  eng.RunPaced(w, batches);
  const bool same =
      SameItemIds(sim_sampler.Sample(), coordinator.Sample()) &&
      SameStats(sim_sampler.stats(), eng.stats().MessageSnapshot());
  *messages = eng.stats().MessageSnapshot().total_messages();
  eng.Shutdown();
  return same;
}

bool EngineSwrIdentical(const ScenarioSpec& spec, const Workload& w,
                        const std::vector<uint32_t>& batches, uint64_t seed,
                        uint64_t* messages) {
  const SlottedSwrConfig config = SwrConfigFor(spec, seed);
  DistributedSwr sim_sampler(config);
  sim_sampler.Run(w);

  std::vector<std::unique_ptr<SlottedSwrSite>> sites;
  engine::Engine eng(StepSyncEngine(spec));
  Rng master(config.seed);
  for (int i = 0; i < config.num_sites; ++i) {
    sites.push_back(std::make_unique<SlottedSwrSite>(
        config, i, &eng.transport(), master.NextU64()));
    eng.AttachSite(i, sites.back().get());
  }
  SlottedSwrCoordinator coordinator(config, &eng.transport());
  eng.AttachCoordinator(&coordinator);
  eng.RunPaced(w, batches);
  const bool same =
      SameItemIds(sim_sampler.Sample(), coordinator.Sample()) &&
      SameStats(sim_sampler.stats(), eng.stats().MessageSnapshot());
  *messages = eng.stats().MessageSnapshot().total_messages();
  eng.Shutdown();
  return same;
}

bool EngineL1Identical(const ScenarioSpec& spec, const Workload& w,
                       const std::vector<uint32_t>& batches, uint64_t seed,
                       uint64_t* messages) {
  const L1TrackerConfig config = L1ConfigFor(spec, seed);
  L1Tracker sim_tracker(config);
  sim_tracker.Run(w);

  std::vector<std::unique_ptr<L1Site>> sites;
  engine::Engine eng(StepSyncEngine(spec));
  Rng master(config.seed);
  for (int i = 0; i < config.num_sites; ++i) {
    sites.push_back(std::make_unique<L1Site>(config, i, &eng.transport(),
                                             master.NextU64()));
    eng.AttachSite(i, sites.back().get());
  }
  WsworCoordinator coordinator(L1CoordinatorConfig(config), &eng.transport(),
                               master.NextU64());
  eng.AttachCoordinator(&coordinator);
  eng.RunPaced(w, batches);
  const double engine_estimate =
      L1EstimateFromThreshold(config, coordinator.Threshold());
  const bool same =
      engine_estimate == sim_tracker.Estimate() &&
      SameStats(sim_tracker.stats(), eng.stats().MessageSnapshot());
  *messages = eng.stats().MessageSnapshot().total_messages();
  eng.Shutdown();
  return same;
}

template <typename Traits, typename Config>
bool EngineChurnIdentical(const Config& config,
                          const faults::FaultConfig& churn, const Workload& w,
                          uint64_t* messages) {
  faults::FaultyRun<Traits> sim_run(config, churn, faults::Backend::kSim);
  sim_run.Run(w);
  faults::FaultyRun<Traits> engine_run(config, churn,
                                       faults::Backend::kEngine);
  engine_run.Run(w);
  const faults::RunReport a = sim_run.report();
  const faults::RunReport b = engine_run.report();
  *messages = b.faults_forwarded;
  return a.transcript_hash == b.transcript_hash &&
         a.faults_forwarded == b.faults_forwarded && a.clean == b.clean &&
         sim_run.SampleIds() == engine_run.SampleIds();
}

CellResult EngineCell(const ScenarioSpec& spec, const Workload& w,
                      const std::vector<uint32_t>& batches,
                      const faults::FaultConfig& churn,
                      const std::string& protocol, size_t si, size_t pi,
                      int trials) {
  CellResult cell;
  cell.trials = trials;
  cell.bit_identical = 1;
  const bool churn_cell =
      spec.has_churn &&
      (protocol == "wswor" || protocol == "uswor" || protocol == "l1");
  cell.churn_applied = churn_cell;
  for (int t = 0; t < trials; ++t) {
    const uint64_t seed = CellSeed(si, pi, t);
    uint64_t messages = 0;
    bool same = false;
    if (churn_cell) {
      if (protocol == "wswor") {
        same = EngineChurnIdentical<faults::WsworFaultTraits>(
            WsworConfigFor(spec, seed), churn, w, &messages);
      } else if (protocol == "uswor") {
        same = EngineChurnIdentical<faults::UsworFaultTraits>(
            UsworConfigFor(spec, seed), churn, w, &messages);
      } else {
        same = EngineChurnIdentical<faults::L1FaultTraits>(
            L1ConfigFor(spec, seed), churn, w, &messages);
      }
    } else if (protocol == "wswor") {
      same = EngineWsworIdentical(spec, w, batches, seed, &messages);
    } else if (protocol == "naive") {
      same = EngineNaiveIdentical(spec, w, batches, seed, &messages);
    } else if (protocol == "uswor") {
      same = EngineUsworIdentical(spec, w, batches, seed, &messages);
    } else if (protocol == "swr") {
      same = EngineSwrIdentical(spec, w, batches, seed, &messages);
    } else {
      same = EngineL1Identical(spec, w, batches, seed, &messages);
    }
    if (!same) cell.bit_identical = 0;
    TrackMessages(cell, messages);
  }
  cell.messages_mean /= trials;
  return cell;
}

void EmitRow(JsonBench& bench, const ScenarioSpec& spec,
             const std::string& protocol, const std::string& backend,
             uint64_t items, const CellResult& cell) {
  bench.StartRow()
      .Field("scenario", spec.name)
      .Field("protocol", protocol)
      .Field("backend", backend)
      .Field("items", items)
      .Field("sites", static_cast<uint64_t>(spec.num_sites))
      .Field("trials", static_cast<uint64_t>(cell.trials))
      .Field("churn_applied", static_cast<uint64_t>(cell.churn_applied))
      .Field("messages_mean", cell.messages_mean)
      .Field("messages_max", cell.messages_max);
  if (cell.chisq_p >= 0) bench.Field("chisq_p", cell.chisq_p);
  if (cell.ks_p >= 0) bench.Field("ks_p", cell.ks_p);
  if (cell.rel_err_med >= 0) bench.Field("rel_err_med", cell.rel_err_med);
  if (cell.rel_err_max >= 0) bench.Field("rel_err_max", cell.rel_err_max);
  if (cell.clean_trials >= 0) {
    bench.Field("clean_trials", static_cast<uint64_t>(cell.clean_trials))
        .Field("degraded_trials",
               static_cast<uint64_t>(cell.degraded_trials))
        .Field("silent_wrong", static_cast<uint64_t>(cell.silent_wrong));
  }
  if (cell.bit_identical >= 0) {
    bench.Field("bit_identical", static_cast<uint64_t>(cell.bit_identical));
  }
  Row("%-16s %-6s %-7s msgs=%-9.1f chisq_p=%-7.4f ks_p=%-7.4f "
      "rel_err_max=%-7.4f clean=%d degraded=%d silent=%d bitid=%d",
      spec.name.c_str(), protocol.c_str(), backend.c_str(),
      cell.messages_mean, cell.chisq_p, cell.ks_p, cell.rel_err_max,
      cell.clean_trials, cell.degraded_trials, cell.silent_wrong,
      cell.bit_identical);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = QuickMode(argc, argv);
  const CellParams params{.trials_sim = quick ? 150 : 400,
                          .trials_engine = quick ? 3 : 6};

  Header("E10: scenario matrix — protocols x scenarios x backends",
         "accuracy laws and message costs hold under temporal dynamics, "
         "skewed ownership, bursty arrivals, and site churn");

  JsonBench bench("scenarios");
  bench.Param("quick", quick ? 1.0 : 0.0)
      .Param("sample_size", static_cast<double>(kSampleSize))
      .Param("trials_sim", static_cast<double>(params.trials_sim))
      .Param("trials_engine", static_cast<double>(params.trials_engine));

  const std::vector<std::string> protocols = {"wswor", "naive", "uswor",
                                              "swr", "l1"};
  const auto& registry = dwrs::ScenarioRegistry();
  for (size_t si = 0; si < registry.size(); ++si) {
    const dwrs::ScenarioSpec& spec = registry[si];
    const uint64_t workload_seed = 9000 + 37 * si;
    const dwrs::Workload w =
        dwrs::BuildScenarioWorkload(spec, workload_seed, quick);
    const std::vector<uint32_t> batches =
        dwrs::BuildScenarioBatches(spec, w.size(), workload_seed);
    const dwrs::faults::FaultConfig churn =
        dwrs::ScenarioChurn(spec, workload_seed);
    std::vector<uint64_t> survivors;
    if (spec.has_churn) {
      survivors =
          dwrs::faults::SurvivingItemIds(w, dwrs::faults::FaultSchedule(churn));
    }

    for (size_t pi = 0; pi < protocols.size(); ++pi) {
      const std::string& protocol = protocols[pi];
      const bool churn_cell =
          spec.has_churn && (protocol == "wswor" || protocol == "uswor" ||
                             protocol == "l1");
      CellResult sim_cell;
      if (churn_cell && protocol == "wswor") {
        sim_cell = ChurnCellWswor(spec, w, churn, si, pi, params.trials_sim,
                                  survivors);
      } else if (churn_cell && protocol == "uswor") {
        sim_cell = ChurnCellUswor(spec, w, churn, si, pi, params.trials_sim,
                                  survivors);
      } else if (churn_cell) {
        sim_cell =
            ChurnCellL1(spec, w, churn, si, pi, params.trials_sim, survivors);
      } else if (protocol == "wswor" || protocol == "naive") {
        sim_cell = SimCellWswor(spec, w, si, pi, params.trials_sim,
                                protocol == "naive");
      } else if (protocol == "uswor") {
        sim_cell = SimCellUswor(spec, w, si, pi, params.trials_sim);
      } else if (protocol == "swr") {
        sim_cell = SimCellSwr(spec, w, si, pi, params.trials_sim);
      } else {
        sim_cell = SimCellL1(spec, w, si, pi, params.trials_sim);
      }
      EmitRow(bench, spec, protocol, "sim", w.size(), sim_cell);

      const CellResult engine_cell = EngineCell(
          spec, w, batches, churn, protocol, si, pi, params.trials_engine);
      EmitRow(bench, spec, protocol, "engine", w.size(), engine_cell);
    }
  }

  const std::string path = bench.Write();
  Row("%s", "");
  Row("wrote %s", path.c_str());
  Row("%s", "pass criteria: p-values >= 1e-3, silent_wrong == 0, "
            "bit_identical == 1, message costs within envelopes "
            "(tools/check_envelopes.py vs bench/envelopes.json).");
  return 0;
}
