// E4 — Proposition 1 / Theorem 3 correctness: the distributed sampler's
// sample-set law equals exact weighted SWOR, continuously (checked at an
// early prefix with unsaturated level sets and at the full stream).

#include <map>
#include <vector>

#include "bench_util.h"
#include "random/exponential_order_stats.h"
#include "stats/chi_square.h"

int main() {
  using namespace dwrs;
  using namespace dwrs::bench;

  Header("E4: sampling distribution goodness-of-fit",
         "sample sets follow the exact weighted SWOR law at every prefix");

  const std::vector<double> weights = {1.0, 2.0, 4.0, 1.0, 3.0,
                                       2.0, 8.0, 1.0, 5.0, 1.0};
  const int s = 3;
  const int trials = 40000;
  std::vector<WorkloadEvent> events;
  for (uint64_t i = 0; i < weights.size(); ++i) {
    events.push_back(
        WorkloadEvent{static_cast<int>(i % 4), Item{i, weights[i]}});
  }
  const Workload w(4, std::move(events));

  Row("%-10s %-10s %-12s %-12s %-8s", "prefix", "cells", "chi2", "df",
      "p-value");
  for (uint64_t prefix : {5ull, 10ull}) {
    std::vector<double> prefix_weights(weights.begin(),
                                       weights.begin() + prefix);
    const auto exact = ExactSworSetDistribution(prefix_weights, s);
    std::map<uint32_t, size_t> cell_of;
    std::vector<double> probs;
    for (const auto& [mask, p] : exact) {
      cell_of[mask] = probs.size();
      probs.push_back(p);
    }
    std::vector<uint64_t> counts(probs.size(), 0);
    for (int t = 0; t < trials; ++t) {
      DistributedWswor sampler(WsworConfig{
          .num_sites = 4, .sample_size = s,
          .seed = 10000 + static_cast<uint64_t>(t)});
      for (uint64_t i = 0; i < prefix; ++i) {
        sampler.Observe(w.event(i).site, w.event(i).item);
      }
      uint32_t mask = 0;
      for (const KeyedItem& ki : sampler.Sample()) mask |= 1u << ki.item.id;
      ++counts[cell_of.at(mask)];
    }
    const auto result = ChiSquareAgainstProbabilities(
        counts, probs, static_cast<uint64_t>(trials));
    Row("%-10llu %-10zu %-12.2f %-12.0f %-8.4f",
        static_cast<unsigned long long>(prefix), probs.size(),
        result.statistic, result.degrees_of_freedom, result.p_value);
  }
  Row("%s", "");
  Row("%s", "pass criterion: p-values not vanishingly small (>= 1e-3).");
  return 0;
}
