// E6 — The paper's motivating claim (Section 1): with replacement, a few
// heavy items dominate the sample ("such heavy items can be sampled at
// most once" only without replacement). Plant h mega-heavy items holding
// ~95% of the total weight and count distinct identifiers in each
// method's final sample.

#include <set>

#include "bench_util.h"

int main() {
  using namespace dwrs;
  using namespace dwrs::bench;

  const int k = 16;
  const int s = 64;
  const uint64_t n = 50000;
  Header("E6: SWOR vs SWR under planted heavy items  (k=16, s=64, n=50000)",
         "SWR collapses onto the h heavies; SWOR always holds s distinct");
  Row("%-10s %-16s %-16s %-12s %-12s", "heavies", "swr-distinct",
      "swor-distinct", "swr-msgs", "swor-msgs");
  for (int h : {1, 4, 16, 64}) {
    // h heavies, each carrying ~20x the entire unit-weight base.
    std::vector<uint64_t> positions;
    for (int i = 0; i < h; ++i) {
      positions.push_back(static_cast<uint64_t>(100 + 613 * i));
    }
    const double heavy_weight = 20.0 * static_cast<double>(n) /
                                static_cast<double>(h);
    const Workload w =
        WorkloadBuilder()
            .num_sites(k)
            .num_items(n)
            .seed(700 + static_cast<uint64_t>(h))
            .weights(std::make_unique<PlantedHeavyWeights>(
                std::make_unique<ConstantWeights>(1.0), positions,
                heavy_weight))
            .integer_weights(true)
            .partitioner(std::make_unique<RandomPartitioner>())
            .Build();
    DistributedWeightedSwr swr(k, s, 48);
    swr.Run(w);
    DistributedWswor swor(
        WsworConfig{.num_sites = k, .sample_size = s, .seed = 48});
    swor.Run(w);
    std::set<uint64_t> swor_ids;
    for (const auto& ki : swor.Sample()) swor_ids.insert(ki.item.id);
    Row("%-10d %-16zu %-16zu %-12llu %-12llu", h, swr.DistinctInSample(),
        swor_ids.size(),
        static_cast<unsigned long long>(swr.stats().total_messages()),
        static_cast<unsigned long long>(swor.stats().total_messages()));
  }
  Row("%s", "");
  Row("%s", "expect: swr-distinct ~ h + a few light ids (the h heavies");
  Row("%s", "absorb ~95% of every draw); swor-distinct pinned at s = 64.");
  return 0;
}
