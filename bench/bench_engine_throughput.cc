// E11 — execution backends: single-threaded step-synchronous simulator
// (sim::Runtime) vs the concurrent engine (engine::Engine) on the paper's
// weighted SWOR protocol, Zipfian workload, k ∈ {2, 4, 8, 16} sites.
//
// The protocol's O(k log W / log k + s log W) message bound is what makes
// the threaded deployment cheap: sites almost never talk, so per-site
// threads run the O(1)-per-update site work with one amortized queue
// operation per ingestion batch, while the simulator pays an O(k) channel
// scan per event. Also measured: the adversarial single-hot-site stream
// (zero parallelism available — worst case for the engine) and the
// engine's batch-size sensitivity.
//
// E12 — sharded multi-coordinator topology (engine::ShardedEngine): the
// single coordinator thread and its one MPSC inbox are the engine's
// serialization point, so the sweep that exposes them is message-HEAVY —
// the naive baseline protocol with an unsaturable local top-s (every
// item becomes an upstream message), high k, small ingestion batches.
// S ∈ {1, 2, 4} shard coordinators against the unsharded engine, plus a
// sharded row on the paper protocol's (message-light) Zipf workload,
// where sharding is expected to be ~neutral. `--shards=N` restricts the
// sweep to one shard count.
//
// E13 — live query serving (src/query/): a reader thread hammers the
// lock-free QueryService while the sharded engine ingests at full
// speed. Measured: the ingest throughput retained under continuous
// querying, the sustained query rate, and the mean query latency.
//
// E14 — site virtualization scaling: k ∈ {10^2, 10^3, 10^4, 10^5}
// logical sites multiplexed over the fixed worker pool (pool size is
// set by the machine, not by k — see engine/scheduler.h). Thread-per-
// site stops being runnable two decades before the top of this sweep.
// Throughput does decline with k, but for a protocol reason, not a
// scheduling one: at fixed n, growing k makes every item an early item
// at a nearly-empty site, so upstream messages per item approach 1 —
// the row's msgs column shows the decline tracking message volume. The
// gated expectation is the floor: k = 10^5 stays within roughly one
// order of magnitude of k = 10^2 instead of collapsing.
//
// E15 — durability tax: the fault-harness protocol stack with the
// write-ahead log + periodic checkpoints on (src/durability/) against
// the same stack with durability off, sweeping the group-commit
// interval (= the kill loss window, in steps) and the fdatasync
// cadence. The durable_c8 row (the defaults the kill/recover tests
// run) is gated IN-RUN against its own plain baseline: durable ingest
// must stay within 25% of non-durable, measured back to back in the
// same process so machine speed cancels.
//
// E16 — multi-reader query scale-out: readers ∈ {1, 4, 8} hammering the
// QueryService concurrently with ingestion, root-merge cache off vs on.
// Uncached queries redo the S-way root merge every call; cached ones
// revalidate by per-shard publish-sequence stamps and share the merged
// result, so between publishes they are O(1) and copy no snapshots.
// Gated in-run: some cached multi-reader row must reach 1e6 queries/s
// and 4x its uncached counterpart, measured back to back in the same
// process so machine speed cancels.
//
// Results are written to BENCH_engine_throughput.json (schema: name,
// params, rows[workload, backend, k, batch_size, shards, items_per_sec,
// messages, ...]; the live_query row adds queries_per_sec, query_us_mean
// and the registry histogram's query_us_p50/query_us_p99; the
// query_scale_* rows add readers, cache and the merge-cache counters).

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

#include "bench_util.h"
#include "core/sharded_sampler.h"
#include "durability/durable_shard.h"
#include "engine/engine.h"
#include "faults/harness.h"
#include "engine/sharded_engine.h"
#include "query/live.h"
#include "query/query_service.h"

namespace dwrs {
namespace {

struct BackendResult {
  double seconds = 0.0;
  double items_per_sec = 0.0;
  uint64_t messages = 0;
  // Site hot-path counters (engine rows; the sim facade reports the same
  // totals through DistributedWswor::KeysDecided for cross-checking).
  uint64_t keys_decided = 0;
  uint64_t key_bits = 0;
  uint64_t skips_taken = 0;
  uint64_t batches_recycled = 0;
  // Sharded rows: per-shard coordinator-inbox traffic, "m0|m1|...".
  std::string per_shard_messages;
};

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

BackendResult RunSim(const Workload& w, int k, int s, uint64_t seed) {
  DistributedWswor sampler(
      WsworConfig{.num_sites = k, .sample_size = s, .seed = seed});
  const double t0 = Now();
  sampler.Run(w);
  const double t1 = Now();
  BackendResult result;
  result.seconds = t1 - t0;
  result.items_per_sec = static_cast<double>(w.size()) / (t1 - t0);
  result.messages = sampler.stats().total_messages();
  result.keys_decided = sampler.KeysDecided();
  result.key_bits = sampler.KeyBitsConsumed();
  return result;
}

BackendResult RunEngine(const Workload& w, const engine::EngineConfig& econfig,
                        int s, uint64_t seed) {
  const int k = econfig.num_sites;
  const WsworConfig config{.num_sites = k, .sample_size = s, .seed = seed};
  engine::Engine eng(econfig);
  Rng master(config.seed);
  std::vector<std::unique_ptr<WsworSite>> sites;
  for (int i = 0; i < k; ++i) {
    sites.push_back(std::make_unique<WsworSite>(config, i, &eng.transport(),
                                                master.NextU64()));
    eng.AttachSite(i, sites.back().get());
  }
  WsworCoordinator coordinator(config, &eng.transport(), master.NextU64());
  eng.AttachCoordinator(&coordinator);
  const double t0 = Now();
  eng.Run(w);
  const double t1 = Now();
  BackendResult result;
  result.seconds = t1 - t0;
  result.items_per_sec = static_cast<double>(w.size()) / (t1 - t0);
  result.messages = eng.stats().total_messages();
  result.keys_decided = eng.stats().keys_decided.load();
  result.key_bits = eng.stats().key_bits_consumed.load();
  result.skips_taken = eng.stats().skips_taken.load();
  result.batches_recycled = eng.stats().batches_recycled.load();
  eng.Shutdown();
  return result;
}

BackendResult RunEngine(const Workload& w, int k, int s, uint64_t seed,
                        size_t batch_size) {
  engine::EngineConfig econfig;
  econfig.num_sites = k;
  econfig.batch_size = batch_size;
  return RunEngine(w, econfig, s, seed);
}

std::string JoinCounts(const std::vector<uint64_t>& counts) {
  std::string out;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (i != 0) out += '|';
    out += std::to_string(counts[i]);
  }
  return out;
}

// The sharded paper protocol (weighted SWOR) on the engine backend.
BackendResult RunShardedWswor(const Workload& w, int k, int shards, int s,
                              uint64_t seed, size_t batch_size) {
  const WsworConfig config{.num_sites = k, .sample_size = s, .seed = seed};
  engine::ShardedEngineConfig engine_config;
  engine_config.num_sites = k;
  engine_config.num_shards = shards;
  engine_config.shard.batch_size = batch_size;
  engine::ShardedEngine eng(engine_config);
  const ShardedWsworEndpoints endpoints = AttachShardedWswor(config, eng);
  const double t0 = Now();
  eng.Run(w);
  const double t1 = Now();
  BackendResult result;
  result.seconds = t1 - t0;
  result.items_per_sec = static_cast<double>(w.size()) / (t1 - t0);
  result.messages = eng.AggregateMessageSnapshot().total_messages();
  result.per_shard_messages = JoinCounts(eng.PerShardMessages());
  eng.Shutdown();
  return result;
}

// Message-heavy stack: the naive baseline with an unsaturable local
// top-s (s >= the per-site stream), so EVERY item crosses the
// site->coordinator channel — the workload where the coordinator inbox,
// not the sites, is the bottleneck. shards == 0 runs the plain
// single-coordinator engine::Engine (the baseline the sharded rows are
// judged against); shards >= 1 runs engine::ShardedEngine.
BackendResult RunNaiveMessageHeavy(const Workload& w, int k, int shards,
                                   int s, uint64_t seed, size_t batch_size) {
  Rng master(seed);
  std::vector<std::unique_ptr<NaiveWsworSite>> sites;
  std::vector<std::unique_ptr<NaiveWsworCoordinator>> coordinators;
  BackendResult result;
  if (shards == 0) {
    engine::Engine eng(
        engine::EngineConfig{.num_sites = k, .batch_size = batch_size});
    for (int i = 0; i < k; ++i) {
      sites.push_back(std::make_unique<NaiveWsworSite>(
          s, i, &eng.transport(), master.NextU64()));
      eng.AttachSite(i, sites.back().get());
    }
    coordinators.push_back(std::make_unique<NaiveWsworCoordinator>(s));
    eng.AttachCoordinator(coordinators.back().get());
    const double t0 = Now();
    eng.Run(w);
    const double t1 = Now();
    result.seconds = t1 - t0;
    result.items_per_sec = static_cast<double>(w.size()) / (t1 - t0);
    result.messages = eng.stats().total_messages();
    eng.Shutdown();
    return result;
  }
  engine::ShardedEngineConfig engine_config;
  engine_config.num_sites = k;
  engine_config.num_shards = shards;
  engine_config.shard.batch_size = batch_size;
  engine::ShardedEngine eng(engine_config);
  const ShardTopology& topo = eng.topology();
  for (int i = 0; i < k; ++i) {
    const int shard = topo.ShardOf(i);
    sites.push_back(std::make_unique<NaiveWsworSite>(
        s, topo.LocalOf(i), &eng.shard_transport(shard), master.NextU64()));
    eng.AttachSite(i, sites.back().get());
  }
  for (int shard = 0; shard < shards; ++shard) {
    coordinators.push_back(std::make_unique<NaiveWsworCoordinator>(s));
    eng.AttachShardCoordinator(shard, coordinators.back().get());
  }
  const double t0 = Now();
  eng.Run(w);
  const double t1 = Now();
  result.seconds = t1 - t0;
  result.items_per_sec = static_cast<double>(w.size()) / (t1 - t0);
  result.messages = eng.AggregateMessageSnapshot().total_messages();
  result.per_shard_messages = JoinCounts(eng.PerShardMessages());
  eng.Shutdown();
  return result;
}

// The live-query row: sharded engine ingesting `w` while one dedicated
// reader loops QueryService::Query() flat out. Query throughput and the
// single-reader mean latency ride along in the result.
BackendResult RunLiveQuery(const Workload& w, int k, int shards, int s,
                           uint64_t seed, size_t batch_size,
                           double* queries_per_sec, double* query_us_mean,
                           double* query_us_p50, double* query_us_p99) {
  const WsworConfig config{.num_sites = k, .sample_size = s, .seed = seed};
  engine::ShardedEngineConfig engine_config;
  engine_config.num_sites = k;
  engine_config.num_shards = shards;
  engine_config.shard.batch_size = batch_size;
  engine::ShardedEngine eng(engine_config);
  const ShardedWsworEndpoints endpoints = AttachShardedWswor(config, eng);
  const std::unique_ptr<query::LiveShardPublishers> publishers =
      query::EnableWsworLiveQueries(eng, endpoints);
  query::QueryService service(publishers->views());
  // Serve-latency histogram from the unified registry: p50/p99 ride
  // along in the row while query_us_mean (wall-clock, the gated field)
  // keeps its original definition.
  obs::LatencyHistogram latency_us(/*lo=*/0.1, /*hi=*/1e6, /*bins=*/64);
  service.set_latency_histogram(&latency_us);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries{0};
  std::thread reader([&service, &stop, &queries] {
    while (!stop.load(std::memory_order_acquire)) {
      query::QueryResult result = service.Query();
      (void)result;
      queries.fetch_add(1, std::memory_order_relaxed);
    }
  });
  const double t0 = Now();
  eng.Run(w);
  const double t1 = Now();
  stop.store(true, std::memory_order_release);
  reader.join();

  BackendResult result;
  result.seconds = t1 - t0;
  result.items_per_sec = static_cast<double>(w.size()) / (t1 - t0);
  result.messages = eng.AggregateMessageSnapshot().total_messages();
  result.per_shard_messages = JoinCounts(eng.PerShardMessages());
  const double q = static_cast<double>(queries.load());
  *queries_per_sec = q / (t1 - t0);
  *query_us_mean = q > 0.0 ? 1e6 * (t1 - t0) / q : 0.0;
  *query_us_p50 = latency_us.Quantile(0.5);
  *query_us_p99 = latency_us.Quantile(0.99);
  eng.Shutdown();
  return result;
}

// The E16 rows: `readers` threads hammer the service concurrently —
// through the root-merge cache (QueryShared) or the uncached full merge
// (Query) — while the sharded engine ingests `w`. Per-reader counts are
// thread-local and summed after the join, so the measurement itself
// adds no shared-counter contention.
BackendResult RunQueryScale(const Workload& w, int k, int shards, int s,
                            uint64_t seed, size_t batch_size, int readers,
                            bool cached, double* queries_per_sec,
                            double* query_us_mean,
                            query::QueryServiceStats* cache_stats,
                            uint64_t* snapshot_publishes) {
  const WsworConfig config{.num_sites = k, .sample_size = s, .seed = seed};
  engine::ShardedEngineConfig engine_config;
  engine_config.num_sites = k;
  engine_config.num_shards = shards;
  engine_config.shard.batch_size = batch_size;
  engine::ShardedEngine eng(engine_config);
  const ShardedWsworEndpoints endpoints = AttachShardedWswor(config, eng);
  const std::unique_ptr<query::LiveShardPublishers> publishers =
      query::EnableWsworLiveQueries(eng, endpoints);
  query::QueryService service(publishers->views());

  std::atomic<bool> stop{false};
  std::vector<uint64_t> counts(static_cast<size_t>(readers), 0);
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(readers));
  for (int r = 0; r < readers; ++r) {
    pool.emplace_back([&service, &stop, &counts, r, cached] {
      uint64_t local = 0;
      if (cached) {
        while (!stop.load(std::memory_order_acquire)) {
          const auto result = service.QueryShared();
          (void)result;
          ++local;
        }
      } else {
        while (!stop.load(std::memory_order_acquire)) {
          const query::QueryResult result = service.Query();
          (void)result;
          ++local;
        }
      }
      counts[static_cast<size_t>(r)] = local;
    });
  }
  const double t0 = Now();
  eng.Run(w);
  const double t1 = Now();
  stop.store(true, std::memory_order_release);
  for (std::thread& t : pool) t.join();

  BackendResult result;
  result.seconds = t1 - t0;
  result.items_per_sec = static_cast<double>(w.size()) / (t1 - t0);
  result.messages = eng.AggregateMessageSnapshot().total_messages();
  result.per_shard_messages = JoinCounts(eng.PerShardMessages());
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  *queries_per_sec = static_cast<double>(total) / (t1 - t0);
  // Mean latency in reader-time: `readers` reader-seconds elapse per
  // wall second, so this is what one query costs its calling thread
  // (scheduling included), comparable across reader counts.
  *query_us_mean = total > 0 ? 1e6 * static_cast<double>(readers) *
                                   (t1 - t0) / static_cast<double>(total)
                             : 0.0;
  *cache_stats = service.stats();
  *snapshot_publishes = 0;
  for (int j = 0; j < shards; ++j) {
    *snapshot_publishes +=
        eng.shard_engine(j).stats().snapshot_publishes.load(
            std::memory_order_relaxed);
  }
  eng.Shutdown();
  return result;
}

void Report(bench::JsonBench& json, const std::string& workload,
            const std::string& backend, int k, size_t batch,
            const BackendResult& r, int shards = 1) {
  bench::Row(
      "  %-14s %-8s k=%-3d S=%d batch=%-5zu %12.0f items/s  %8llu msgs%s%s",
      workload.c_str(), backend.c_str(), k, shards, batch, r.items_per_sec,
      static_cast<unsigned long long>(r.messages),
      r.per_shard_messages.empty() ? "" : "  per-shard=",
      r.per_shard_messages.c_str());
  json.StartRow()
      .Field("workload", workload)
      .Field("backend", backend)
      .Field("k", static_cast<uint64_t>(k))
      .Field("batch_size", static_cast<uint64_t>(batch))
      .Field("shards", static_cast<uint64_t>(shards))
      .Field("items_per_sec", r.items_per_sec)
      .Field("messages", r.messages)
      .Field("keys_decided", r.keys_decided)
      .Field("key_bits_consumed", r.key_bits)
      .Field("skips_taken", r.skips_taken)
      .Field("batches_recycled", r.batches_recycled);
  if (!r.per_shard_messages.empty()) {
    json.Field("per_shard_messages", r.per_shard_messages);
  }
}

int Main(bool quick, int shards_filter) {
  const uint64_t n = quick ? 60'000 : 400'000;
  const int s = 32;
  const size_t batch = 1024;

  bench::Header("E11 engine throughput",
                "the concurrent engine sustains higher ingest than the "
                "step-synchronous simulator; messages stay near the "
                "simulator's (optimal-protocol) count");
  bench::JsonBench json("engine_throughput");
  json.Param("items", static_cast<double>(n))
      .Param("sample_size", static_cast<double>(s))
      .Param("weights", "zipf(alpha=1.1)")
      .Param("quick", quick ? 1.0 : 0.0);

  for (int k : {2, 4, 8, 16}) {
    const Workload w = bench::ZipfWorkload(k, n, /*seed=*/7 + k);
    const BackendResult sim = RunSim(w, k, s, /*seed=*/101);
    const BackendResult eng = RunEngine(w, k, s, /*seed=*/101, batch);
    Report(json, "zipf", "sim", k, 1, sim);
    Report(json, "zipf", "engine", k, batch, eng);
    bench::Row("    -> engine/sim speedup at k=%d: %.2fx", k,
               eng.items_per_sec / sim.items_per_sec);
  }

  // Worst case for the engine: all items on one hot site (hopping every
  // 4096 items), self-similar bursty weights.
  {
    const int k = 8;
    const Workload w = bench::AdversarialWorkload(k, n, /*seed=*/19,
                                                  /*hop_every=*/4096);
    const BackendResult sim = RunSim(w, k, s, /*seed=*/102);
    const BackendResult eng = RunEngine(w, k, s, /*seed=*/102, batch);
    Report(json, "adversarial", "sim", k, 1, sim);
    Report(json, "adversarial", "engine", k, batch, eng);
  }

  // Batch-size sensitivity at k=8: the amortization knob.
  {
    const int k = 8;
    const Workload w = bench::ZipfWorkload(k, n, /*seed=*/7 + k);
    for (size_t b : {size_t{16}, size_t{128}, size_t{1024}, size_t{8192}}) {
      Report(json, "zipf_batch", "engine", k, b,
             RunEngine(w, k, s, /*seed=*/103, b));
    }
  }

  // E14 — site virtualization scaling: k logical sites on the fixed
  // worker pool (pool auto-sized to the machine, independent of k).
  // Small batches and a short per-site ring keep the per-site footprint
  // honest at k = 10^5. Throughput declines with k because protocol
  // traffic does (every item is an early item at a nearly-empty site —
  // see the file comment); the gate pins the k = 10^5 floor.
  {
    const uint64_t n_scale = quick ? 200'000 : 1'000'000;
    const size_t scale_batch = 256;
    for (int k : {100, 1'000, 10'000, 100'000}) {
      const Workload w = bench::ZipfWorkload(k, n_scale, /*seed=*/31);
      engine::EngineConfig econfig;
      econfig.num_sites = k;
      econfig.batch_size = scale_batch;
      econfig.item_queue_batches = 4;
      Report(json, "site_scaling", "engine", k, scale_batch,
             RunEngine(w, econfig, s, /*seed=*/104));
    }
  }

  // E12 — sharded multi-coordinator topology.
  const std::vector<int> shard_sweep =
      shards_filter > 0 ? std::vector<int>{shards_filter}
                        : std::vector<int>{1, 2, 4};

  // Message-heavy: every item crosses the coordinator channel (naive
  // protocol, unsaturable top-s), high k, small ingestion batches — the
  // configuration where the single coordinator thread serializes the
  // run and S coordinator threads (k/S producers per channel instead of
  // k) buy throughput back.
  {
    const int k = 16;
    const size_t small_batch = 64;
    const int s_heavy = static_cast<int>(2 * n / static_cast<uint64_t>(k));
    const Workload w = bench::ZipfWorkload(k, n, /*seed=*/29);
    const BackendResult single =
        RunNaiveMessageHeavy(w, k, /*shards=*/0, s_heavy, /*seed=*/211,
                             small_batch);
    Report(json, "naive_msgheavy", "engine", k, small_batch, single);
    BackendResult last;
    for (int shards : shard_sweep) {
      last = RunNaiveMessageHeavy(w, k, shards, s_heavy, /*seed=*/211,
                                  small_batch);
      Report(json, "naive_msgheavy", "sharded", k, small_batch, last, shards);
    }
    bench::Row("    -> sharded(S=%d)/single-coordinator on message-heavy: "
               "%.2fx",
               shard_sweep.back(),
               last.items_per_sec / single.items_per_sec);
  }

  // The paper protocol on the same sharded topology: message-LIGHT by
  // design, so sharding is expected to be ~neutral here — the row exists
  // to pin that sharding costs nothing when the coordinator is idle.
  {
    const int k = 16;
    const Workload w = bench::ZipfWorkload(k, n, /*seed=*/7 + k);
    for (int shards : shard_sweep) {
      Report(json, "zipf", "sharded", k, batch,
             RunShardedWswor(w, k, shards, s, /*seed=*/101, batch), shards);
    }
  }

  // E15 — durability tax: WAL + checkpoints on vs off, same protocol
  // stack (the faults harness with a zero-fault schedule), same
  // workload. Sweeps the group-commit interval; the fsync row pays a
  // real fdatasync per commit (power-loss durability — kill -9 survival
  // only needs the kernel write, which is what the other rows measure).
  int durable_gate_failures = 0;
  {
    const int k = 8;
    const Workload w = bench::ZipfWorkload(k, n, /*seed=*/7 + k);
    const WsworConfig config{.num_sites = k, .sample_size = s, .seed = 105};
    faults::FaultConfig no_faults;
    no_faults.seed = 13;

    // The fault-harness step loop runs ~3 orders of magnitude slower
    // than raw engine ingest (a session round trip per event), and its
    // per-event FlushBackend makes single-pass timings scheduler-noisy;
    // every row here is best-of-3 so the tax ratio measures durability,
    // not thread placement luck.
    constexpr int kReps = 3;
    BackendResult plain;
    for (int rep = 0; rep < kReps; ++rep) {
      faults::FaultyWswor run(config, no_faults, faults::Backend::kEngine);
      const double t0 = Now();
      run.Run(w);
      const double t1 = Now();
      const double ips = static_cast<double>(w.size()) / (t1 - t0);
      if (ips > plain.items_per_sec) {
        plain.seconds = t1 - t0;
        plain.items_per_sec = ips;
        plain.messages = run.report().delivered;
      }
    }
    Report(json, "durable_off", "engine", k, batch, plain);

    struct DurableCase {
      const char* name;
      uint64_t commit_interval;
      bool fsync;
    };
    const DurableCase cases[] = {{"durable_c1", 1, false},
                                 {"durable_c8", 8, false},
                                 {"durable_c64", 64, false},
                                 {"durable_fsync64", 64, true}};
    for (const DurableCase& c : cases) {
      BackendResult r;
      durability::WalStats wal;
      for (int rep = 0; rep < kReps; ++rep) {
        std::system("rm -rf bench_durable_state");
        durability::DurabilityOptions dopt;
        dopt.dir = "bench_durable_state";
        dopt.commit_interval_steps = c.commit_interval;
        dopt.checkpoint_interval_steps = 4096;
        dopt.fsync_commits = c.fsync;
        durability::DurableWswor run(config, no_faults,
                                     faults::Backend::kEngine, dopt);
        const double t0 = Now();
        run.Run(w);
        const double t1 = Now();
        const double ips = static_cast<double>(w.size()) / (t1 - t0);
        if (ips > r.items_per_sec) {
          r.seconds = t1 - t0;
          r.items_per_sec = ips;
          r.messages = run.report().delivered;
          wal = run.wal_stats();
        }
      }
      const double tax = plain.items_per_sec / r.items_per_sec;
      Report(json, c.name, "engine", k, batch, r);
      json.Field("commit_interval_steps", c.commit_interval)
          .Field("fsync_commits", static_cast<uint64_t>(c.fsync ? 1 : 0))
          .Field("wal_bytes_committed", wal.bytes_committed)
          .Field("wal_fsyncs", wal.fsyncs)
          .Field("durability_tax", tax);
      bench::Row("    -> %s: %.2fx the plain stack's cost "
                 "(%llu WAL bytes, %llu fsyncs)",
                 c.name, tax,
                 static_cast<unsigned long long>(wal.bytes_committed),
                 static_cast<unsigned long long>(wal.fsyncs));
      // The acceptance gate: default-cadence durable ingest within 25%
      // of non-durable (fsync rows are informational — they buy a
      // stronger guarantee and are priced separately).
      if (std::string(c.name) == "durable_c8" &&
          r.items_per_sec < 0.75 * plain.items_per_sec) {
        bench::Row("    !! durable_c8 gate FAILED: %.0f items/s < 75%% of "
                   "plain %.0f items/s",
                   r.items_per_sec, plain.items_per_sec);
        ++durable_gate_failures;
      }
    }
    std::system("rm -rf bench_durable_state");
  }

  // E13 — live query latency: continuous lock-free snapshot queries
  // against the sharded engine mid-ingestion. items_per_sec is the
  // ingest rate RETAINED while a reader queries flat out; the row also
  // records the sustained query rate and mean per-query latency.
  {
    const int k = 8, shards = 2;
    const Workload w = bench::ZipfWorkload(k, n, /*seed=*/7 + k);
    double queries_per_sec = 0.0, query_us_mean = 0.0;
    double query_us_p50 = 0.0, query_us_p99 = 0.0;
    const BackendResult live = RunLiveQuery(w, k, shards, s, /*seed=*/101,
                                            batch, &queries_per_sec,
                                            &query_us_mean, &query_us_p50,
                                            &query_us_p99);
    Report(json, "live_query", "sharded", k, batch, live, shards);
    json.Field("queries_per_sec", queries_per_sec)
        .Field("query_us_mean", query_us_mean)
        .Field("query_us_p50", query_us_p50)
        .Field("query_us_p99", query_us_p99);
    bench::Row("    -> live queries: %.0f queries/s, %.1f us mean latency "
               "(p50=%.1f us, p99=%.1f us)",
               queries_per_sec, query_us_mean, query_us_p50, query_us_p99);
  }

  // E16 — multi-reader query scale-out: readers ∈ {1, 4, 8}, root-merge
  // cache off vs on, same ingest running underneath. The uncached rows
  // are merge-bound (every query redoes the S-way root merge); the
  // cached rows revalidate by publish-sequence stamps and serve the
  // shared merged result, so repeated queries between publishes are
  // O(1). The acceptance gate rides the run's own numbers: some cached
  // multi-reader row must reach 1e6 queries/s AND 4x its uncached
  // counterpart in the same run.
  int query_gate_failures = 0;
  {
    // query_s = 64 keeps the uncached S-way merge honest: every uncached
    // query copies and merges shards * query_s entries, which is the
    // work the cache amortizes away.
    const int k = 8, shards = 2, query_s = 64;
    const Workload w = bench::ZipfWorkload(k, n, /*seed=*/7 + k);
    bool gate_met = false;
    double best_cached = 0.0, best_ratio = 0.0;
    for (const int readers : {1, 4, 8}) {
      double uncached_qps = 0.0;
      for (const bool cached : {false, true}) {
        double queries_per_sec = 0.0, query_us_mean = 0.0;
        query::QueryServiceStats cache_stats;
        uint64_t snapshot_publishes = 0;
        const BackendResult r = RunQueryScale(
            w, k, shards, query_s, /*seed=*/101, batch, readers, cached,
            &queries_per_sec, &query_us_mean, &cache_stats,
            &snapshot_publishes);
        const std::string workload =
            "query_scale_r" + std::to_string(readers) +
            (cached ? "_cached" : "_uncached");
        Report(json, workload, "sharded", k, batch, r, shards);
        const uint64_t probes =
            cache_stats.cache_hits + cache_stats.cache_misses;
        json.Field("queries_per_sec", queries_per_sec)
            .Field("query_us_mean", query_us_mean)
            .Field("readers", static_cast<uint64_t>(readers))
            .Field("cache", static_cast<uint64_t>(cached ? 1 : 0))
            .Field("cache_hits", cache_stats.cache_hits)
            .Field("cache_misses", cache_stats.cache_misses)
            .Field("cache_invalidations", cache_stats.cache_invalidations)
            .Field("snapshot_copies_avoided",
                   cache_stats.snapshot_copies_avoided)
            .Field("snapshot_publishes", snapshot_publishes);
        bench::Row("    -> r=%d %s: %.0f queries/s, %.2f us mean "
                   "(hit rate %.3f, %llu copies avoided)",
                   readers, cached ? "cached" : "uncached", queries_per_sec,
                   query_us_mean,
                   probes > 0 ? static_cast<double>(cache_stats.cache_hits) /
                                    static_cast<double>(probes)
                              : 0.0,
                   static_cast<unsigned long long>(
                       cache_stats.snapshot_copies_avoided));
        if (!cached) {
          uncached_qps = queries_per_sec;
        } else if (readers > 1) {
          const double ratio =
              uncached_qps > 0.0 ? queries_per_sec / uncached_qps : 0.0;
          if (queries_per_sec > best_cached) best_cached = queries_per_sec;
          if (ratio > best_ratio) best_ratio = ratio;
          if (queries_per_sec >= 1e6 && ratio >= 4.0) gate_met = true;
        }
      }
    }
    if (!gate_met) {
      bench::Row("    !! query-scale gate FAILED: best cached multi-reader "
                 "row %.0f queries/s (x%.1f vs uncached); need >= 1e6 "
                 "and >= 4x",
                 best_cached, best_ratio);
      ++query_gate_failures;
    }
  }

  const std::string path = json.Write();
  bench::Row("wrote %s", path.c_str());
  return durable_gate_failures + query_gate_failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace dwrs

int main(int argc, char** argv) {
  int shards_filter = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--shards=", 0) == 0) {
      shards_filter = std::atoi(arg.c_str() + 9);
    }
  }
  return dwrs::Main(dwrs::bench::QuickMode(argc, argv), shards_filter);
}
