#include <cmath>
#include <memory>
#include <set>

#include "gtest/gtest.h"
#include "stream/generators.h"
#include "stream/partitioners.h"
#include "stream/workload.h"

namespace dwrs {
namespace {

TEST(GeneratorsTest, ConstantWeights) {
  ConstantWeights gen(3.0);
  Rng rng(1);
  for (uint64_t i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(gen.WeightAt(i, rng), 3.0);
}

TEST(GeneratorsTest, UniformWeightsInRange) {
  UniformWeights gen(2.0, 9.0);
  Rng rng(2);
  for (uint64_t i = 0; i < 1000; ++i) {
    const double w = gen.WeightAt(i, rng);
    EXPECT_GE(w, 2.0);
    EXPECT_LE(w, 9.0);
  }
}

TEST(GeneratorsTest, ZipfWeightsAtLeastOne) {
  ZipfWeights gen(100000, 1.1);
  Rng rng(3);
  double max_w = 0.0;
  for (uint64_t i = 0; i < 5000; ++i) {
    const double w = gen.WeightAt(i, rng);
    EXPECT_GE(w, 1.0);
    max_w = std::max(max_w, w);
  }
  // Rank 1 should appear: weight = n^alpha.
  EXPECT_GT(max_w, 1000.0);
}

TEST(GeneratorsTest, ZipfNormalizationGoldenValues) {
  // H_{1000, 0.99} and the resulting rank probabilities, computed with
  // 30-digit decimal arithmetic; pins both the memoized free function
  // and the generator's exposed normalization against each other.
  ZipfWeights gen(1000, 0.99);
  EXPECT_NEAR(gen.normalization(), 7.7289532172847384, 1e-12);
  EXPECT_DOUBLE_EQ(gen.normalization(), ZipfNormalization(1000, 0.99));
  EXPECT_NEAR(gen.RankProbability(1), 0.12938362697857167, 1e-13);
  EXPECT_NEAR(gen.RankProbability(2), 0.065141780636270481, 1e-13);
  EXPECT_NEAR(gen.RankProbability(10), 0.013239735880303951, 1e-13);
  double total = 0.0;
  for (uint64_t rank = 1; rank <= 1000; ++rank) {
    total += gen.RankProbability(rank);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(GeneratorsTest, ZipfNormalizationMemoizedStable) {
  const double first = ZipfNormalization(500, 1.1);
  EXPECT_DOUBLE_EQ(ZipfNormalization(500, 1.1), first);  // cached
  EXPECT_NE(ZipfNormalization(500, 0.9), first);         // distinct key
  EXPECT_NE(ZipfNormalization(400, 1.1), first);
}

TEST(GeneratorsTest, SelfSimilarBModelMassFractions) {
  // levels=3, bias=0.7: weights over an aligned 8-window are the b-model
  // product measure, so each bit-half splits the window's mass 70/30.
  SelfSimilarWeights gen(0.7, 3);
  Rng rng(15);
  double total = 0.0;
  std::vector<double> w(8);
  for (uint64_t i = 0; i < 8; ++i) {
    w[i] = gen.WeightAt(i, rng);
    total += w[i];
  }
  for (int bit = 0; bit < 3; ++bit) {
    double one_half = 0.0;
    for (uint64_t i = 0; i < 8; ++i) {
      if ((i >> bit) & 1) one_half += w[i];
    }
    EXPECT_NEAR(one_half / total, 0.7, 1e-12) << " bit " << bit;
  }
  // Normalized so the minimum weight (all zero-bits) is exactly 1, and
  // deterministic: the rng is never consumed.
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_DOUBLE_EQ(*std::min_element(w.begin(), w.end()), 1.0);
  Rng rng2(99);
  for (uint64_t i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(gen.WeightAt(i, rng2), w[i]);
  }
}

TEST(GeneratorsTest, SelfSimilarDynamicRangeGrowsWithLevels) {
  SelfSimilarWeights gen(0.7, 16);
  Rng rng(16);
  // max/min = (bias / (1-bias))^levels = (7/3)^16.
  const double expected = std::pow(0.7 / 0.3, 16);
  EXPECT_NEAR(gen.WeightAt((1u << 16) - 1, rng), expected,
              1e-6 * expected);
  // Bursty at every scale: the heavy item of each aligned 2-window is
  // its odd position.
  EXPECT_GT(gen.WeightAt(3, rng), gen.WeightAt(2, rng));
  EXPECT_GT(gen.WeightAt(257, rng), gen.WeightAt(256, rng));
}

TEST(GeneratorsTest, ParetoHeavyTail) {
  ParetoWeights gen(1.5);
  Rng rng(4);
  double max_w = 0.0;
  for (uint64_t i = 0; i < 20000; ++i) {
    const double w = gen.WeightAt(i, rng);
    EXPECT_GE(w, 1.0);
    max_w = std::max(max_w, w);
  }
  EXPECT_GT(max_w, 100.0);  // heavy tail produces outliers
}

TEST(GeneratorsTest, PlantedHeavyPositions) {
  auto base = std::make_unique<ConstantWeights>(1.0);
  PlantedHeavyWeights gen(std::move(base), {3, 7}, 1000.0);
  Rng rng(5);
  EXPECT_DOUBLE_EQ(gen.WeightAt(0, rng), 1.0);
  EXPECT_DOUBLE_EQ(gen.WeightAt(3, rng), 1000.0);
  EXPECT_DOUBLE_EQ(gen.WeightAt(5, rng), 1.0);
  EXPECT_DOUBLE_EQ(gen.WeightAt(7, rng), 1000.0);
}

TEST(GeneratorsTest, GeometricGrowthFormula) {
  GeometricGrowthWeights gen(0.5);
  Rng rng(6);
  EXPECT_DOUBLE_EQ(gen.WeightAt(0, rng), 1.0);
  EXPECT_DOUBLE_EQ(gen.WeightAt(4, rng),
                   std::max(1.0, 0.5 * std::pow(1.5, 4)));
  // Every item is a constant-fraction heavy hitter of its prefix.
  double total = gen.WeightAt(0, rng);
  for (uint64_t i = 1; i < 40; ++i) {
    const double w = gen.WeightAt(i, rng);
    if (w > 1.0) {
      EXPECT_GT(w, 0.3 * total) << "at i=" << i;
    }
    total += w;
  }
}

TEST(GeneratorsTest, EpochPowers) {
  EpochPowerWeights gen(4, 3.0);
  Rng rng(7);
  EXPECT_DOUBLE_EQ(gen.WeightAt(0, rng), 1.0);
  EXPECT_DOUBLE_EQ(gen.WeightAt(3, rng), 1.0);
  EXPECT_DOUBLE_EQ(gen.WeightAt(4, rng), 3.0);
  EXPECT_DOUBLE_EQ(gen.WeightAt(11, rng), 9.0);
}

TEST(GeneratorsTest, DoublingHeavyDoublesPrefix) {
  DoublingHeavyWeights gen(9);
  Rng rng(8);
  double total = 0.0;
  for (uint64_t i = 0; i < 100; ++i) {
    const double w = gen.WeightAt(i, rng);
    if (i % 10 == 0 && i > 0) {
      EXPECT_DOUBLE_EQ(w, total) << "heavy at i=" << i;
    }
    total += w;
  }
}

TEST(GeneratorsDeathTest, DoublingHeavyEnforcesSequentialUse) {
  DoublingHeavyWeights gen(5);
  Rng rng(9);
  gen.WeightAt(0, rng);
  EXPECT_DEATH(gen.WeightAt(5, rng), "sequential");
}

TEST(GeneratorsTest, Materialize) {
  ConstantWeights gen(2.0);
  Rng rng(10);
  const auto w = MaterializeWeights(gen, 17, rng);
  EXPECT_EQ(w.size(), 17u);
}

TEST(PartitionersTest, RoundRobin) {
  RoundRobinPartitioner p;
  Rng rng(11);
  EXPECT_EQ(p.SiteFor(0, 4, rng), 0);
  EXPECT_EQ(p.SiteFor(5, 4, rng), 1);
  EXPECT_EQ(p.SiteFor(7, 4, rng), 3);
}

TEST(PartitionersTest, RandomCoversAllSites) {
  RandomPartitioner p;
  Rng rng(12);
  std::set<int> seen;
  for (uint64_t i = 0; i < 1000; ++i) {
    const int site = p.SiteFor(i, 8, rng);
    EXPECT_GE(site, 0);
    EXPECT_LT(site, 8);
    seen.insert(site);
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(PartitionersTest, SingleSite) {
  SingleSitePartitioner p(2);
  Rng rng(13);
  for (uint64_t i = 0; i < 10; ++i) EXPECT_EQ(p.SiteFor(i, 4, rng), 2);
}

TEST(PartitionersTest, AdversarialPinsToSiteZeroByDefault) {
  AdversarialPartitioner p;
  Rng rng(18);
  for (uint64_t i = 0; i < 50; ++i) EXPECT_EQ(p.SiteFor(i, 8, rng), 0);
}

TEST(PartitionersTest, AdversarialHotSiteHopsAndOwnsEvenly) {
  AdversarialPartitioner p(/*hop_every=*/97);
  Rng rng(19);
  const int k = 8;
  std::vector<uint64_t> owned(k, 0);
  int previous = 0;
  int hops = 0;
  for (uint64_t i = 0; i < 97ull * 8 * 3; ++i) {
    const int site = p.SiteFor(i, k, rng);
    ASSERT_GE(site, 0);
    ASSERT_LT(site, k);
    ++owned[static_cast<size_t>(site)];
    if (site != previous) {
      ++hops;
      EXPECT_EQ(i % 97, 0u) << " hop off-boundary at " << i;
      EXPECT_EQ(site, (previous + 1) % k) << " at " << i;
      previous = site;
    }
  }
  // Exactly one hot site at a time, sweeping all workers: over whole
  // cycles every site owns the same 97-item share.
  EXPECT_EQ(hops, 8 * 3 - 1);
  for (int site = 0; site < k; ++site) {
    EXPECT_EQ(owned[static_cast<size_t>(site)], 97u * 3) << " site " << site;
  }
}

TEST(PartitionersTest, Blocks) {
  BlockPartitioner p(3);
  Rng rng(14);
  EXPECT_EQ(p.SiteFor(0, 2, rng), 0);
  EXPECT_EQ(p.SiteFor(2, 2, rng), 0);
  EXPECT_EQ(p.SiteFor(3, 2, rng), 1);
  EXPECT_EQ(p.SiteFor(6, 2, rng), 0);
}

TEST(WorkloadTest, BuilderDeterministicFromSeed) {
  auto build = [] {
    return WorkloadBuilder()
        .num_sites(4)
        .num_items(500)
        .seed(77)
        .weights(std::make_unique<UniformWeights>(1.0, 10.0))
        .partitioner(std::make_unique<RandomPartitioner>())
        .Build();
  };
  const Workload a = build();
  const Workload b = build();
  ASSERT_EQ(a.size(), b.size());
  for (uint64_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.event(i).site, b.event(i).site);
    EXPECT_EQ(a.event(i).item.id, b.event(i).item.id);
    EXPECT_DOUBLE_EQ(a.event(i).item.weight, b.event(i).item.weight);
  }
}

TEST(WorkloadTest, DifferentSeedsDiffer) {
  auto build = [](uint64_t seed) {
    return WorkloadBuilder()
        .num_sites(4)
        .num_items(100)
        .seed(seed)
        .weights(std::make_unique<UniformWeights>(1.0, 10.0))
        .Build();
  };
  const Workload a = build(1);
  const Workload b = build(2);
  int equal = 0;
  for (uint64_t i = 0; i < a.size(); ++i) {
    equal += (a.event(i).item.weight == b.event(i).item.weight);
  }
  EXPECT_LT(equal, 5);
}

TEST(WorkloadTest, IntegerWeightsRounded) {
  const Workload w = WorkloadBuilder()
                         .num_sites(2)
                         .num_items(200)
                         .weights(std::make_unique<UniformWeights>(1.0, 5.0))
                         .integer_weights(true)
                         .Build();
  for (const auto& e : w.events()) {
    EXPECT_DOUBLE_EQ(e.item.weight, std::round(e.item.weight));
    EXPECT_GE(e.item.weight, 1.0);
  }
}

TEST(WorkloadTest, TotalAndPrefixWeights) {
  const Workload w = WorkloadBuilder()
                         .num_sites(2)
                         .num_items(10)
                         .weights(std::make_unique<ConstantWeights>(2.5))
                         .Build();
  EXPECT_DOUBLE_EQ(w.TotalWeight(), 25.0);
  EXPECT_DOUBLE_EQ(w.TotalWeight(4), 10.0);
  EXPECT_EQ(w.PrefixWeights(3).size(), 3u);
  EXPECT_EQ(w.PrefixWeights().size(), 10u);
}

TEST(WorkloadTest, IdsAreStreamPositions) {
  const Workload w = WorkloadBuilder().num_sites(3).num_items(50).Build();
  for (uint64_t i = 0; i < w.size(); ++i) EXPECT_EQ(w.event(i).item.id, i);
}

TEST(WorkloadTest, DefaultsAreSane) {
  const Workload w = WorkloadBuilder().Build();
  EXPECT_EQ(w.num_sites(), 4);
  EXPECT_EQ(w.size(), 1000u);
  for (const auto& e : w.events()) EXPECT_DOUBLE_EQ(e.item.weight, 1.0);
}

}  // namespace
}  // namespace dwrs
