// Shared helpers for statistical verification of samplers.

#ifndef DWRS_TESTS_TEST_UTIL_H_
#define DWRS_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "random/exponential_order_stats.h"
#include "stats/chi_square.h"
#include "util/check.h"

namespace dwrs::testing {

// Runs `draw_sample(trial)` `trials` times; each call must return the
// sampled item ids (indices < weights.size()) of a weighted SWOR of size
// `s` over `weights`. Returns the multinomial goodness-of-fit p-value of
// the realized sample SETS against the exact SWOR set distribution.
inline ChiSquareResult SworSetGoodnessOfFit(
    const std::vector<double>& weights, int s, int trials,
    const std::function<std::vector<uint64_t>(int)>& draw_sample) {
  const auto exact = ExactSworSetDistribution(weights, s);
  std::map<uint32_t, size_t> cell_of;
  std::vector<double> probs;
  for (const auto& [mask, p] : exact) {
    cell_of[mask] = probs.size();
    probs.push_back(p);
  }
  std::vector<uint64_t> counts(probs.size(), 0);
  for (int t = 0; t < trials; ++t) {
    const std::vector<uint64_t> ids = draw_sample(t);
    DWRS_CHECK_EQ(ids.size(), static_cast<size_t>(s));
    uint32_t mask = 0;
    for (uint64_t id : ids) {
      DWRS_CHECK_LT(id, weights.size());
      mask |= 1u << id;
    }
    DWRS_CHECK_EQ(__builtin_popcount(mask), s) << " duplicate ids in sample";
    ++counts[cell_of.at(mask)];
  }
  return ChiSquareAgainstProbabilities(counts, probs,
                                       static_cast<uint64_t>(trials));
}

// Chi-square of single-draw outcomes against probabilities w_i / W.
inline ChiSquareResult WeightedDrawGoodnessOfFit(
    const std::vector<double>& weights, int trials,
    const std::function<uint64_t(int)>& draw_one) {
  const auto probs = WeightedDrawProbabilities(weights);
  std::vector<uint64_t> counts(weights.size(), 0);
  for (int t = 0; t < trials; ++t) {
    const uint64_t id = draw_one(t);
    DWRS_CHECK_LT(id, weights.size());
    ++counts[id];
  }
  return ChiSquareAgainstProbabilities(counts, probs,
                                       static_cast<uint64_t>(trials));
}

}  // namespace dwrs::testing

#endif  // DWRS_TESTS_TEST_UTIL_H_
