// Parameterized property sweeps: structural invariants of the weighted
// SWOR protocol that must hold for every configuration, workload shape,
// and seed — the paper's correctness conditions as executable
// properties — plus the live-query transcript property: under any
// seeded random schedule (including FaultyTransport drop/dup/delay and
// crashes), the per-step query transcript served through the snapshot
// layer is identical on the step-synchronous simulator and the engine.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <set>
#include <tuple>
#include <utility>

#include "gtest/gtest.h"
#include "core/sampler.h"
#include "faults/harness.h"
#include "query/capture.h"
#include "query/query_service.h"
#include "query/snapshot.h"
#include "stream/workload.h"
#include "util/math_util.h"

namespace dwrs {
namespace {

enum class WeightShape { kConstant, kUniform, kZipf, kPareto, kGeometric };
enum class PartitionShape { kRoundRobin, kRandom, kSingle, kBlocks };

std::unique_ptr<WeightGenerator> MakeWeights(WeightShape shape) {
  switch (shape) {
    case WeightShape::kConstant:
      return std::make_unique<ConstantWeights>(1.0);
    case WeightShape::kUniform:
      return std::make_unique<UniformWeights>(1.0, 64.0);
    case WeightShape::kZipf:
      return std::make_unique<ZipfWeights>(100000, 1.4);
    case WeightShape::kPareto:
      return std::make_unique<ParetoWeights>(1.1);
    case WeightShape::kGeometric:
      return std::make_unique<GeometricGrowthWeights>(0.05);
  }
  return nullptr;
}

std::unique_ptr<Partitioner> MakePartitioner(PartitionShape shape) {
  switch (shape) {
    case PartitionShape::kRoundRobin:
      return std::make_unique<RoundRobinPartitioner>();
    case PartitionShape::kRandom:
      return std::make_unique<RandomPartitioner>();
    case PartitionShape::kSingle:
      return std::make_unique<SingleSitePartitioner>(0);
    case PartitionShape::kBlocks:
      return std::make_unique<BlockPartitioner>(17);
  }
  return nullptr;
}

using Param = std::tuple<int /*k*/, int /*s*/, WeightShape, PartitionShape,
                         int /*delay*/, bool /*jitter*/, uint64_t /*seed*/>;

class WsworPropertyTest : public ::testing::TestWithParam<Param> {};

TEST_P(WsworPropertyTest, ProtocolInvariantsHoldThroughout) {
  const auto [k, s, weight_shape, partition_shape, delay, jitter, seed] =
      GetParam();
  const uint64_t items =
      weight_shape == WeightShape::kGeometric ? 2000 : 6000;
  const Workload w = WorkloadBuilder()
                         .num_sites(k)
                         .num_items(items)
                         .seed(seed)
                         .weights(MakeWeights(weight_shape))
                         .partitioner(MakePartitioner(partition_shape))
                         .Build();
  WsworConfig config;
  config.num_sites = k;
  config.sample_size = s;
  config.seed = seed ^ 0xABCDEF;
  config.delivery_delay = delay;
  config.jitter_seed = jitter && delay > 0 ? seed ^ 0x5EED : 0;
  DistributedWswor sampler(config);

  double prev_threshold = 0.0;
  uint64_t checked = 0;
  sampler.Run(w, [&](uint64_t step) {
    // Checking every step is O(n*s log s); subsample checkpoints.
    if (step % 97 != 0 && step != w.size() && step > 64) return;
    ++checked;
    const auto sample = sampler.Sample();
    // (1) Continuous size invariant. With a delivery delay the paper's
    // per-round model is deliberately violated: messages are in flight,
    // so mid-stream the coordinator may hold fewer items (exact equality
    // is asserted after the final flush below).
    const uint64_t want = std::min<uint64_t>(step, static_cast<uint64_t>(s));
    if (delay == 0) {
      ASSERT_EQ(sample.size(), want) << "step " << step;
    } else {
      ASSERT_LE(sample.size(), want) << "step " << step;
    }
    // (2) Keys positive, sorted descending; without replacement.
    std::set<uint64_t> ids;
    for (size_t i = 0; i < sample.size(); ++i) {
      ASSERT_GT(sample[i].key, 0.0);
      if (i > 0) {
        ASSERT_GE(sample[i - 1].key, sample[i].key);
      }
      ASSERT_LT(sample[i].item.id, step);
      ids.insert(sample[i].item.id);
    }
    ASSERT_EQ(ids.size(), sample.size());
    // (3) Coordinator threshold is monotone.
    const double u = sampler.coordinator().Threshold();
    ASSERT_GE(u, prev_threshold);
    prev_threshold = u;
    // (4) O(s) coordinator space (Proposition 6).
    ASSERT_LE(sampler.coordinator().StoredEntries(),
              2 * static_cast<size_t>(s));
  });
  EXPECT_GT(checked, 0u);

  sampler.FlushNetwork();
  // (1') After the flush the full min(t, s) sample must be present.
  EXPECT_EQ(sampler.Sample().size(),
            std::min<uint64_t>(w.size(), static_cast<uint64_t>(s)));
  // (5) Message complexity within a generous constant of Theorem 3
  // (skip for the geometric hard stream where every item is heavy and
  // early messages legitimately dominate its short length).
  if (weight_shape != WeightShape::kGeometric) {
    const double bound = Theorem3MessageBound(k, s, w.TotalWeight());
    EXPECT_LT(static_cast<double>(sampler.stats().total_messages()),
              50.0 * bound + 8.0 * static_cast<double>(k) *
                                  static_cast<double>(s));
  }
  // (6) Messages cannot exceed the trivial protocol by more than the
  // level-set warmup + broadcast overhead.
  EXPECT_LT(sampler.stats().site_to_coord, 2 * items + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WsworPropertyTest,
    ::testing::Combine(
        ::testing::Values(1, 4, 32),                 // k
        ::testing::Values(1, 8, 64),                 // s
        ::testing::Values(WeightShape::kConstant, WeightShape::kUniform,
                          WeightShape::kZipf, WeightShape::kPareto,
                          WeightShape::kGeometric),  // weights
        ::testing::Values(PartitionShape::kRoundRobin,
                          PartitionShape::kRandom,
                          PartitionShape::kSingle),  // partitioning
        ::testing::Values(0, 3),                     // delivery delay
        ::testing::Values(false, true),              // network jitter
        ::testing::Values(1337u)));                  // seed

// A second, smaller sweep pinning the ablation configuration.
class AblationPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AblationPropertyTest, NoWithholdingStillSamplesCorrectSize) {
  const int s = GetParam();
  const Workload w = WorkloadBuilder()
                         .num_sites(8)
                         .num_items(3000)
                         .seed(77)
                         .weights(std::make_unique<ParetoWeights>(1.2))
                         .partitioner(std::make_unique<RandomPartitioner>())
                         .Build();
  WsworConfig config;
  config.num_sites = 8;
  config.sample_size = s;
  config.seed = 78;
  config.withhold_heavy = false;
  DistributedWswor sampler(config);
  sampler.Run(w);
  EXPECT_EQ(sampler.Sample().size(), static_cast<size_t>(s));
  std::set<uint64_t> ids;
  for (const auto& ki : sampler.Sample()) ids.insert(ki.item.id);
  EXPECT_EQ(ids.size(), static_cast<size_t>(s));
}

INSTANTIATE_TEST_SUITE_P(SampleSizes, AblationPropertyTest,
                         ::testing::Values(1, 2, 16, 128));

// Epoch-base override sweep (ablation of r).
class EpochBasePropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(EpochBasePropertyTest, AnyBaseAtLeastTwoWorks) {
  const double r = GetParam();
  const Workload w = WorkloadBuilder()
                         .num_sites(8)
                         .num_items(4000)
                         .seed(88)
                         .weights(std::make_unique<UniformWeights>(1.0, 32.0))
                         .partitioner(std::make_unique<RandomPartitioner>())
                         .Build();
  WsworConfig config;
  config.num_sites = 8;
  config.sample_size = 8;
  config.seed = 89;
  config.epoch_base = r;
  DistributedWswor sampler(config);
  sampler.Run(w);
  EXPECT_EQ(sampler.Sample().size(), 8u);
  EXPECT_LT(sampler.stats().total_messages(), w.size());
}

INSTANTIATE_TEST_SUITE_P(Bases, EpochBasePropertyTest,
                         ::testing::Values(2.0, 3.0, 8.0, 64.0));

// ---------------------------------------------------------------------
// Live-query transcript property: for a seeded random schedule — random
// workload shape, random fault mix over the FaultyTransport (drop,
// duplicate, bounded-delay reorder, occasional crash-restart) — the
// per-step QueryService transcript (stale flags, per-shard versions,
// epochs, thresholds, and the full served sample) is bit-identical
// between the step-synchronous simulator and the engine backend. The
// snapshot layer adds no backend-dependent behaviour on top of the
// delivery equivalence the fault suite pins.

// FNV-1a fold, the transcript-hash idiom of the fault harness.
struct TranscriptHash {
  uint64_t hash = 1469598103934665603ull;
  void Fold(uint64_t v) {
    for (int b = 0; b < 64; b += 8) {
      hash ^= (v >> b) & 0xffull;
      hash *= 1099511628211ull;
    }
  }
  void FoldDouble(double d) {
    uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof(bits));
    Fold(bits);
  }
};

faults::FaultConfig SweepFaults(uint64_t seed) {
  faults::FaultConfig fc;
  fc.seed = seed * 7919 + 3;
  fc.drop_prob = 0.04 * static_cast<double>(seed % 4);       // 0 .. 0.12
  fc.duplicate_prob = 0.05 * static_cast<double>(seed % 3);  // 0 .. 0.10
  fc.delay_prob = (seed % 2 == 1) ? 0.12 : 0.0;
  fc.max_delay = 2 + static_cast<int>(seed % 3);
  fc.crash_prob = (seed % 5 == 0) ? 0.01 : 0.0;
  fc.crash_down_items = 4;
  return fc;
}

Workload SweepWorkload(uint64_t seed, int k, uint64_t items) {
  WorkloadBuilder builder;
  builder.num_sites(k).num_items(items).seed(1000 + seed);
  switch (seed % 3) {
    case 0:
      builder.weights(std::make_unique<UniformWeights>(1.0, 32.0));
      break;
    case 1:
      builder.weights(std::make_unique<ZipfWeights>(100000, 1.3));
      break;
    default:
      builder.weights(std::make_unique<ParetoWeights>(1.2));
      break;
  }
  builder.partitioner(std::make_unique<RandomPartitioner>());
  return builder.Build();
}

struct QueryTranscript {
  uint64_t hash = 0;
  uint64_t stale_steps = 0;
  uint64_t delivered = 0;
  uint64_t crashes = 0;
  std::vector<uint64_t> final_sample;
};

QueryTranscript RunQueryTranscript(const WsworConfig& config,
                                   const faults::FaultConfig& fault_config,
                                   const Workload& workload,
                                   faults::Backend backend) {
  faults::FaultyWswor run(config, fault_config, backend);
  query::SnapshotPublisher publisher;
  publisher.Publish(query::CaptureSessionSnapshot(run.coordinator_session()));
  query::QueryService service({&publisher});
  TranscriptHash t;
  QueryTranscript out;
  run.Run(workload, [&](uint64_t step) {
    publisher.Publish(
        query::CaptureSessionSnapshot(run.coordinator_session()));
    const query::QueryResult result = service.Query();
    const query::ShardSnapshot& snap = result.shards[0];
    t.Fold(step);
    t.Fold(result.any_stale ? 1 : 0);
    t.Fold(snap.state_version);
    t.Fold(snap.session_epoch);
    t.FoldDouble(snap.threshold);
    if (result.any_stale) ++out.stale_steps;
    for (const KeyedItem& ki : result.merged.TopEntries()) {
      t.Fold(ki.item.id);
      t.FoldDouble(ki.key);
    }
  });
  out.hash = t.hash;
  const faults::RunReport report = run.report();
  out.delivered = report.delivered;
  out.crashes = report.crashes;
  out.final_sample = run.SampleIds();
  return out;
}

class QueryTranscriptPropertyTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QueryTranscriptPropertyTest, SimAndEngineTranscriptsIdentical) {
  const uint64_t seed = GetParam();
  const int k = 4;
  const Workload w = SweepWorkload(seed, k, /*items=*/800);
  WsworConfig config;
  config.num_sites = k;
  config.sample_size = 8;
  config.seed = 0xC0FFEE + seed;
  const faults::FaultConfig fc = SweepFaults(seed);

  const QueryTranscript sim =
      RunQueryTranscript(config, fc, w, faults::Backend::kSim);
  const QueryTranscript engine =
      RunQueryTranscript(config, fc, w, faults::Backend::kEngine);
  EXPECT_EQ(sim.hash, engine.hash) << " seed " << seed;
  EXPECT_EQ(sim.stale_steps, engine.stale_steps) << " seed " << seed;
  EXPECT_EQ(sim.delivered, engine.delivered) << " seed " << seed;
  EXPECT_EQ(sim.crashes, engine.crashes) << " seed " << seed;
  EXPECT_EQ(sim.final_sample, engine.final_sample) << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryTranscriptPropertyTest,
                         ::testing::Range(uint64_t{0}, uint64_t{50}));

}  // namespace
}  // namespace dwrs
