// Tests of the durability subsystem (src/durability/): the CRC-framed
// WAL and its torn-tail semantics, the record and checkpoint codecs, and
// — the headline guarantee — that a shard killed mid-ingestion (kill -9
// semantics: every volatile byte gone) recovers from checkpoint + WAL
// replay to a state transcript-identical to a never-crashed shard, on
// both execution backends. The corruption fuzz at the end pins the
// never-silently-wrong contract: seeded bit flips, truncations and
// deletions over the durable files always yield either a correct
// recovery or a flagged one, never an unflagged wrong sample.
//
// Run under -fsanitize=thread in CI (the engine-backed runs exercise the
// WAL append path from the coordinator worker thread).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "durability/checkpoint.h"
#include "durability/durable_shard.h"
#include "durability/records.h"
#include "durability/wal.h"
#include "faults/fault_schedule.h"
#include "faults/harness.h"
#include "random/rng.h"
#include "stream/generators.h"
#include "stream/partitioners.h"
#include "stream/workload.h"

namespace dwrs {
namespace {

using durability::Crc32;
using durability::DecodeCheckpoint;
using durability::DecodeWalRecord;
using durability::DurabilityOptions;
using durability::DurableWswor;
using durability::EncodeCheckpoint;
using durability::EncodeWalRecord;
using durability::LoadLatestCheckpoint;
using durability::ProbeState;
using durability::ReadWalFile;
using durability::ShardCheckpoint;
using durability::ShardedDurableWswor;
using durability::WalReadResult;
using durability::WalRecord;
using durability::WalRecordType;
using durability::WalWriter;
using durability::WalWriterOptions;
using faults::Backend;
using faults::FaultConfig;
using faults::RunReport;

// Recursive rm -rf for the small test directories.
void RemoveAll(const std::string& dir) {
  const std::string cmd = "rm -rf '" + dir + "'";
  [[maybe_unused]] const int rc = std::system(cmd.c_str());
}

std::string TempDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "dwrs_durability_" + tag;
  RemoveAll(dir);  // stale state from an earlier run must not leak in
  return dir;
}

std::vector<uint8_t> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------------------
// WAL framing.

TEST(Crc32Test, MatchesTheClassicCheckVector) {
  const char* s = "123456789";
  EXPECT_EQ(Crc32(reinterpret_cast<const uint8_t*>(s), 9), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

TEST(WalTest, RoundtripsFramesThroughCommitAndReopen) {
  const std::string dir = TempDir("wal_roundtrip");
  ASSERT_TRUE(durability::EnsureDir(dir));
  const std::string path = dir + "/wal-0.log";
  std::vector<std::vector<uint8_t>> payloads = {
      {1, 2, 3}, {}, std::vector<uint8_t>(1000, 0xAB), {0xFF}};
  {
    WalWriter writer(path, WalWriterOptions{});
    ASSERT_TRUE(writer.ok()) << writer.error();
    for (const auto& p : payloads) writer.Append(p);
    EXPECT_GT(writer.pending_bytes(), 0u);
    ASSERT_TRUE(writer.Commit());
    EXPECT_EQ(writer.pending_bytes(), 0u);
    ASSERT_TRUE(writer.Close());
    EXPECT_EQ(writer.stats().appends, payloads.size());
    EXPECT_GE(writer.stats().fsyncs, 1u);  // Close always syncs
  }
  const WalReadResult r = ReadWalFile(path);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.truncated_tail);
  EXPECT_EQ(r.payloads, payloads);
  // Append-reopen continues the segment.
  {
    WalWriter writer(path, WalWriterOptions{}, /*truncate=*/false);
    ASSERT_TRUE(writer.ok()) << writer.error();
    writer.Append({9, 9});
    ASSERT_TRUE(writer.Close());
  }
  const WalReadResult r2 = ReadWalFile(path);
  ASSERT_TRUE(r2.ok);
  ASSERT_EQ(r2.payloads.size(), payloads.size() + 1);
  EXPECT_EQ(r2.payloads.back(), (std::vector<uint8_t>{9, 9}));
  RemoveAll(dir);
}

TEST(WalTest, AbandonPendingDropsUncommittedBytes) {
  const std::string dir = TempDir("wal_abandon");
  ASSERT_TRUE(durability::EnsureDir(dir));
  const std::string path = dir + "/wal-0.log";
  WalWriter writer(path, WalWriterOptions{});
  ASSERT_TRUE(writer.ok());
  writer.Append({1});
  ASSERT_TRUE(writer.Commit());
  writer.Append({2});  // never committed: dies with the "process"
  writer.AbandonPending();
  ASSERT_TRUE(writer.Close());
  const WalReadResult r = ReadWalFile(path);
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.payloads.size(), 1u);
  EXPECT_EQ(r.payloads[0], (std::vector<uint8_t>{1}));
  RemoveAll(dir);
}

TEST(WalTest, RejectsUnsupportedFormatVersion) {
  const std::string dir = TempDir("wal_version");
  ASSERT_TRUE(durability::EnsureDir(dir));
  const std::string path = dir + "/wal-0.log";
  {
    WalWriter writer(path, WalWriterOptions{});
    ASSERT_TRUE(writer.ok());
    writer.Append({1, 2});
    ASSERT_TRUE(writer.Close());
  }
  std::vector<uint8_t> bytes = ReadAll(path);
  ASSERT_GE(bytes.size(), durability::kWalHeaderSize);
  bytes[4] = durability::kWalFormatVersion + 1;  // future version byte
  WriteAll(path, bytes);
  const WalReadResult r = ReadWalFile(path);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("version"), std::string::npos) << r.error;
  RemoveAll(dir);
}

TEST(WalTest, TruncatesAtFirstBadFrameAndNeverResynchronizes) {
  const std::string dir = TempDir("wal_torn");
  ASSERT_TRUE(durability::EnsureDir(dir));
  const std::string path = dir + "/wal-0.log";
  {
    WalWriter writer(path, WalWriterOptions{});
    ASSERT_TRUE(writer.ok());
    for (uint8_t i = 0; i < 4; ++i) writer.Append({i, i, i});
    ASSERT_TRUE(writer.Close());
  }
  const std::vector<uint8_t> clean = ReadAll(path);
  const uint64_t frame = 3 + durability::kWalFrameOverhead;

  // Torn tail: the last frame is half-written.
  std::vector<uint8_t> torn(clean.begin(), clean.end() - 4);
  WriteAll(path, torn);
  WalReadResult r = ReadWalFile(path);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.payloads.size(), 3u);
  EXPECT_TRUE(r.truncated_tail);
  EXPECT_EQ(r.valid_bytes, durability::kWalHeaderSize + 3 * frame);

  // Corrupt an EARLY frame's payload: everything from it on is dropped,
  // including the still-CRC-valid frames behind it — a valid-looking
  // record past garbage cannot be trusted.
  std::vector<uint8_t> flipped = clean;
  flipped[durability::kWalHeaderSize + frame + durability::kWalFrameOverhead] ^=
      0x01;
  WriteAll(path, flipped);
  r = ReadWalFile(path);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.payloads.size(), 1u);
  EXPECT_TRUE(r.truncated_tail);

  // Trailing garbage after a clean log.
  std::vector<uint8_t> garbage = clean;
  for (int i = 0; i < 5; ++i) garbage.push_back(0xEE);
  WriteAll(path, garbage);
  r = ReadWalFile(path);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.payloads.size(), 4u);
  EXPECT_TRUE(r.truncated_tail);
  RemoveAll(dir);
}

// ---------------------------------------------------------------------
// Record codec.

TEST(WalRecordTest, RoundtripsEveryRecordType) {
  std::vector<WalRecord> records;
  WalRecord m;
  m.type = WalRecordType::kMessage;
  m.site = 3;
  m.msg.type = kWsworRegular;
  m.msg.a = 42;
  m.msg.x = 7.5;
  m.msg.y = 0.125;
  m.msg.seq = 17;
  m.msg.epoch = 2;
  records.push_back(m);
  WalRecord t;
  t.type = WalRecordType::kThresholdBump;
  t.threshold = 123.456;
  records.push_back(t);
  WalRecord e;
  e.type = WalRecordType::kEpochChange;
  e.epoch = -1;
  records.push_back(e);
  WalRecord d;
  d.type = WalRecordType::kSampleDelta;
  d.added = KeyedItem{Item{99, 4.0}, 17.25};
  d.evicted_valid = true;
  d.evicted_id = 7;
  records.push_back(d);
  WalRecord d2 = d;
  d2.evicted_valid = false;
  d2.evicted_id = 0;
  records.push_back(d2);
  WalRecord s;
  s.type = WalRecordType::kStepMark;
  s.step = 1234567;
  records.push_back(s);
  WalRecord c;
  c.type = WalRecordType::kCheckpointMark;
  c.step = 3;
  records.push_back(c);

  for (const WalRecord& record : records) {
    const std::vector<uint8_t> bytes = EncodeWalRecord(record);
    const auto back = DecodeWalRecord(bytes);
    ASSERT_TRUE(back.has_value())
        << durability::WalRecordTypeName(record.type);
    EXPECT_EQ(back->type, record.type);
    EXPECT_EQ(back->site, record.site);
    EXPECT_EQ(back->msg.type, record.msg.type);
    EXPECT_EQ(back->msg.a, record.msg.a);
    EXPECT_EQ(back->msg.x, record.msg.x);
    EXPECT_EQ(back->msg.seq, record.msg.seq);
    EXPECT_EQ(back->threshold, record.threshold);
    EXPECT_EQ(back->epoch, record.epoch);
    EXPECT_EQ(back->added.item.id, record.added.item.id);
    EXPECT_EQ(back->added.key, record.added.key);
    EXPECT_EQ(back->evicted_valid, record.evicted_valid);
    EXPECT_EQ(back->evicted_id, record.evicted_id);
    EXPECT_EQ(back->step, record.step);
    // Trailing byte rejected (no silent over-read).
    std::vector<uint8_t> extra = bytes;
    extra.push_back(0);
    EXPECT_FALSE(DecodeWalRecord(extra).has_value());
    // Truncations rejected.
    for (size_t n = 0; n < bytes.size(); ++n) {
      const std::vector<uint8_t> cut(bytes.begin(),
                                     bytes.begin() + static_cast<long>(n));
      EXPECT_FALSE(DecodeWalRecord(cut).has_value());
    }
  }
  EXPECT_FALSE(DecodeWalRecord({0x77}).has_value());  // unknown type
}

// ---------------------------------------------------------------------
// Checkpoint codec + atomic write / fallback lifecycle.

ShardCheckpoint SampleCheckpoint() {
  ShardCheckpoint c;
  c.checkpoint_seq = 5;
  c.step = 321;
  c.wal_records_logged = 777;
  c.snapshot.publish_seq = 5;
  c.snapshot.state_version = 40;
  c.snapshot.steps = 321;
  c.snapshot.session_epoch = 1;
  c.snapshot.stale = false;
  c.snapshot.sample.kind = SampleKind::kTopKey;
  c.snapshot.sample.target_size = 4;
  c.snapshot.sample.state_version = 40;
  c.snapshot.sample.entries = {KeyedItem{Item{1, 2.0}, 9.5},
                               KeyedItem{Item{2, 1.0}, 3.25}};
  c.snapshot.threshold = 3.25;
  c.coordinator.rng[0] = 11;
  c.coordinator.rng[3] = 44;
  c.coordinator.announced_epoch = 2;
  c.coordinator.early_received = 10;
  c.coordinator.regular_received = 20;
  c.coordinator.state_version = 40;
  c.coordinator.summary = c.snapshot.sample;
  c.coordinator.saturated_levels = {0, 3};
  c.session.peers = {{1, 7, 7, 0}, {0, 3, 5, 3}};
  c.session.transcript_hash = 0xDEADBEEFull;
  c.session.delivered = 9;
  c.site_valid = {1, 0};
  c.site_sessions.resize(2);
  c.site_sessions[0].epoch = 1;
  c.site_sessions[0].next_seq = 8;
  sim::Payload unacked;
  unacked.type = kWsworRegular;
  unacked.a = 5;
  unacked.x = 2.0;
  unacked.seq = 7;
  unacked.epoch = 1;
  c.site_sessions[0].unacked = {unacked};
  c.site_sessions[1].down = true;
  c.site_sessions[1].down_remaining = 3;
  c.sites.resize(1);
  c.sites[0].rng[1] = 99;
  c.sites[0].filter.has_pending = true;
  c.sites[0].filter.pending = 0.75;
  c.sites[0].threshold = 3.25;
  c.sites[0].saturated = {1, 0, 1};
  c.transport.channels.resize(4);
  c.transport.channels[2].next_index = 6;
  c.transport.channels[2].held = {{9, unacked}};
  c.transport.forwarded = 100;
  c.transport.dropped = 3;
  c.kills_done = 1;
  c.last_kill_step = 200;
  return c;
}

TEST(CheckpointTest, EncodeDecodeIsBitExact) {
  const ShardCheckpoint c = SampleCheckpoint();
  const std::vector<uint8_t> bytes = EncodeCheckpoint(c);
  const auto back = DecodeCheckpoint(bytes);
  ASSERT_TRUE(back.has_value());
  // Bit-exactness via re-encode: the codec is canonical (no optional
  // representations), so equal bytes iff equal state.
  EXPECT_EQ(EncodeCheckpoint(*back), bytes);
  EXPECT_EQ(back->checkpoint_seq, c.checkpoint_seq);
  EXPECT_EQ(back->step, c.step);
  EXPECT_EQ(back->snapshot.sample.entries.size(), 2u);
  EXPECT_EQ(back->snapshot.sample.entries[0].key, 9.5);
  EXPECT_EQ(back->session.peers.size(), 2u);
  EXPECT_EQ(back->site_sessions[0].unacked.size(), 1u);
  EXPECT_EQ(back->transport.channels[2].held.size(), 1u);
  EXPECT_EQ(back->kills_done, 1u);
  // Any single truncation fails loudly.
  for (size_t n : {size_t{0}, size_t{4}, bytes.size() / 2, bytes.size() - 1}) {
    const std::vector<uint8_t> cut(bytes.begin(),
                                   bytes.begin() + static_cast<long>(n));
    EXPECT_FALSE(DecodeCheckpoint(cut).has_value()) << n;
  }
}

TEST(CheckpointTest, LoadFallsBackWhenNewestGenerationIsCorrupt) {
  const std::string dir = TempDir("ckpt_fallback");
  ASSERT_TRUE(durability::EnsureDir(dir));
  ShardCheckpoint older = SampleCheckpoint();
  older.checkpoint_seq = 6;
  ShardCheckpoint newer = SampleCheckpoint();
  newer.checkpoint_seq = 7;
  newer.step = 400;
  std::string error;
  ASSERT_TRUE(durability::WriteCheckpointFile(dir, older, &error)) << error;
  ASSERT_TRUE(durability::WriteCheckpointFile(dir, newer, &error)) << error;
  auto loaded = LoadLatestCheckpoint(dir);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->checkpoint_seq, 7u);

  // Corrupt the newest: one body bit flip breaks the CRC.
  const std::string newest = durability::CheckpointPath(dir, 7);
  std::vector<uint8_t> bytes = ReadAll(newest);
  bytes[bytes.size() / 2] ^= 0x10;
  WriteAll(newest, bytes);
  loaded = LoadLatestCheckpoint(dir);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->checkpoint_seq, 6u);
  EXPECT_EQ(loaded->step, 321u);
  RemoveAll(dir);
}

// ---------------------------------------------------------------------
// The recovery guarantee.

Workload DurabilityWorkload(int k, uint64_t n, uint64_t seed) {
  return WorkloadBuilder()
      .num_sites(k)
      .num_items(n)
      .seed(seed)
      .weights(std::make_unique<UniformWeights>(1.0, 32.0))
      .partitioner(std::make_unique<RandomPartitioner>())
      .Build();
}

DurabilityOptions Opts(const std::string& dir) {
  DurabilityOptions options;
  options.dir = dir;
  options.commit_interval_steps = 4;
  options.checkpoint_interval_steps = 32;
  return options;
}

// A durable run with kills disabled is bit-identical to the plain fault
// harness: the WAL/checkpoint machinery must be an observer, never a
// participant.
TEST(DurableShardTest, NoKillRunMatchesFaultyRunBitForBit) {
  const WsworConfig config{.num_sites = 3, .sample_size = 6, .seed = 21};
  const Workload w = DurabilityWorkload(3, 200, /*seed=*/5);
  FaultConfig faults;
  faults.seed = 77;
  faults.drop_prob = 0.05;
  faults.delay_prob = 0.1;
  faults.max_delay = 2;
  for (Backend backend : {Backend::kSim, Backend::kEngine}) {
    faults::FaultyWswor reference(config, faults, backend);
    reference.Run(w);
    const std::string dir = TempDir(backend == Backend::kSim ? "nokill_sim"
                                                             : "nokill_eng");
    {
      DurableWswor durable(config, faults, backend, Opts(dir));
      durable.Run(w);
      const RunReport r = durable.report();
      const RunReport ref = reference.report();
      EXPECT_EQ(r.transcript_hash, ref.transcript_hash);
      EXPECT_EQ(r.delivered, ref.delivered);
      EXPECT_EQ(durable.SampleIds(), reference.SampleIds());
      EXPECT_EQ(r.process_kills, 0u);
      EXPECT_EQ(r.recoveries, 0u);
      EXPECT_GT(r.wal_records_logged, 0u);
      EXPECT_GT(r.checkpoints_written, 0u);
      EXPECT_TRUE(r.recovery_consistent);
    }
    RemoveAll(dir);
  }
}

// Kill-only schedules: the recovered run's final state is bit-identical
// to an uninterrupted run's, for every seed, on both backends.
TEST(DurableShardTest, KillAndRecoverIsTranscriptIdenticalAcrossSeeds) {
  const WsworConfig config{.num_sites = 3, .sample_size = 6, .seed = 33};
  const Workload w = DurabilityWorkload(3, 260, /*seed=*/9);
  for (uint64_t fault_seed = 1; fault_seed <= 10; ++fault_seed) {
    FaultConfig kills;
    kills.seed = fault_seed;
    kills.process_kill_prob = 0.02;
    kills.max_process_kills = 2;
    FaultConfig none;
    none.seed = fault_seed;
    for (Backend backend : {Backend::kSim, Backend::kEngine}) {
      faults::FaultyWswor reference(config, none, backend);
      reference.Run(w);
      const std::string dir =
          TempDir("kill_" + std::to_string(fault_seed) +
                  (backend == Backend::kSim ? "_sim" : "_eng"));
      {
        DurableWswor durable(config, kills, backend, Opts(dir));
        durable.Run(w);
        const RunReport r = durable.report();
        const RunReport ref = reference.report();
        EXPECT_EQ(r.transcript_hash, ref.transcript_hash)
            << "fault seed " << fault_seed;
        EXPECT_EQ(r.delivered, ref.delivered) << "fault seed " << fault_seed;
        EXPECT_EQ(durable.SampleIds(), reference.SampleIds())
            << "fault seed " << fault_seed;
        EXPECT_TRUE(r.recovery_consistent) << "fault seed " << fault_seed;
        EXPECT_EQ(r.process_kills, r.recoveries);
        if (r.process_kills > 0) {
          EXPECT_GT(r.wal_records_replayed, 0u)
              << "fault seed " << fault_seed;
          EXPECT_LE(durable.last_recovery().checkpoint_step,
                    durable.last_recovery().durable_step);
        }
        EXPECT_TRUE(r.clean);
      }
      RemoveAll(dir);
    }
  }
}

// Cold resume from disk in a fresh harness object (the CLI's --resume
// path): tear the harness down mid-stream at an arbitrary point, rebuild
// from the directory alone, finish, and match the uninterrupted run.
TEST(DurableShardTest, ColdResumeFromDiskFinishesIdentically) {
  const WsworConfig config{.num_sites = 4, .sample_size = 8, .seed = 55};
  const Workload w = DurabilityWorkload(4, 240, /*seed=*/11);
  FaultConfig none;
  none.seed = 3;
  faults::FaultyWswor reference(config, none, Backend::kSim);
  reference.Run(w);

  const std::string dir = TempDir("cold_resume");
  {
    // First incarnation: feed a prefix, commit/checkpoint on the
    // harness cadence, then die abruptly (uncommitted bytes dropped by
    // the destructor-with-abandon path below).
    DurableWswor first(config, none, Backend::kSim, Opts(dir));
    Workload prefix(w.num_sites(),
                    std::vector<WorkloadEvent>(w.events().begin(),
                                               w.events().begin() + 150));
    first.Run(prefix);
  }
  {
    DurableWswor resumed(config, none, Backend::kSim, Opts(dir));
    EXPECT_EQ(resumed.resume_step(), 150u);
    EXPECT_GE(resumed.recoveries(), 1u);
    resumed.Run(w);
    EXPECT_EQ(resumed.SampleIds(), reference.SampleIds());
    EXPECT_EQ(resumed.report().transcript_hash,
              reference.report().transcript_hash);
    EXPECT_TRUE(resumed.report().recovery_consistent);
  }
  RemoveAll(dir);
}

// Sharded composition: kills in one shard never perturb another, and
// the merged sample matches the non-durable sharded harness's.
TEST(DurableShardTest, ShardedKillsMatchShardedFaultyMerge) {
  const WsworConfig config{.num_sites = 6, .sample_size = 6, .seed = 70};
  const Workload w = DurabilityWorkload(6, 300, /*seed=*/13);
  std::vector<FaultConfig> durable_faults(2);
  durable_faults[0].seed = 5;
  durable_faults[0].process_kill_prob = 0.03;  // shard 0 gets killed
  durable_faults[1].seed = 6;
  std::vector<FaultConfig> plain_faults(2);
  plain_faults[0].seed = 5;
  plain_faults[1].seed = 6;
  faults::ShardedFaultyWswor reference(config, plain_faults, Backend::kSim);
  reference.Run(w);
  const std::string dir = TempDir("sharded");
  {
    ShardedDurableWswor durable(config, durable_faults, Backend::kSim,
                                Opts(dir));
    durable.Run(w);
    EXPECT_EQ(durable.MergedSampleIds(), reference.MergedSampleIds());
    EXPECT_EQ(durable.report().transcript_hash,
              reference.report().transcript_hash);
    EXPECT_GE(durable.shard(0).process_kills(), 0u);
    EXPECT_EQ(durable.shard(1).process_kills(), 0u);
    EXPECT_TRUE(durable.report().recovery_consistent);
  }
  RemoveAll(dir);
}

// Kills layered over active message faults: the sim and engine backends
// must still agree bit for bit on the killed-and-recovered run, and the
// run must never be silently wrong (consistent flag + clean accounting).
TEST(DurableShardTest, KillsUnderMessageFaultsAgreeAcrossBackends) {
  const WsworConfig config{.num_sites = 3, .sample_size = 6, .seed = 41};
  const Workload w = DurabilityWorkload(3, 220, /*seed=*/15);
  for (uint64_t fault_seed = 1; fault_seed <= 5; ++fault_seed) {
    FaultConfig faults;
    faults.seed = fault_seed;
    faults.drop_prob = 0.05;
    faults.duplicate_prob = 0.05;
    faults.delay_prob = 0.05;
    faults.max_delay = 2;
    faults.process_kill_prob = 0.02;
    faults.max_process_kills = 2;
    std::vector<ProbeState> probes;
    std::vector<RunReport> reports;
    for (Backend backend : {Backend::kSim, Backend::kEngine}) {
      const std::string dir =
          TempDir("mixed_" + std::to_string(fault_seed) +
                  (backend == Backend::kSim ? "_sim" : "_eng"));
      DurableWswor durable(config, faults, backend, Opts(dir));
      durable.Run(w);
      probes.push_back(durable.Probe());
      reports.push_back(durable.report());
      RemoveAll(dir);
    }
    EXPECT_EQ(probes[0], probes[1]) << "fault seed " << fault_seed;
    EXPECT_EQ(reports[0].transcript_hash, reports[1].transcript_hash)
        << "fault seed " << fault_seed;
    EXPECT_EQ(reports[0].process_kills, reports[1].process_kills);
    EXPECT_TRUE(reports[0].recovery_consistent) << "seed " << fault_seed;
    EXPECT_TRUE(reports[1].recovery_consistent) << "seed " << fault_seed;
  }
}

// ---------------------------------------------------------------------
// Corruption fuzz: never silently wrong.

TEST(DurabilityFuzzTest, CorruptedDurableStateRecoversCorrectlyOrFlagged) {
  const WsworConfig config{.num_sites = 3, .sample_size = 6, .seed = 91};
  const Workload w = DurabilityWorkload(3, 160, /*seed=*/17);
  FaultConfig none;
  none.seed = 1;
  faults::FaultyWswor reference(config, none, Backend::kSim);
  reference.Run(w);
  const std::vector<uint64_t> expected = reference.SampleIds();

  for (uint64_t fuzz_seed = 1; fuzz_seed <= 30; ++fuzz_seed) {
    const std::string dir = TempDir("fuzz_" + std::to_string(fuzz_seed));
    {
      // Interrupted run: a durable prefix is on disk, uncommitted tail
      // records and the partial step are lost with the teardown.
      DurableWswor first(config, none, Backend::kSim, Opts(dir));
      Workload prefix(w.num_sites(),
                      std::vector<WorkloadEvent>(
                          w.events().begin(),
                          w.events().begin() + 90 +
                              static_cast<long>(fuzz_seed % 23)));
      first.Run(prefix);
    }
    // Seeded corruption over the durable files: bit flip, truncation,
    // or deletion.
    Rng rng(fuzz_seed * 7919);
    std::vector<std::string> files;
    for (uint64_t seq = 0; seq < 32; ++seq) {
      for (const std::string& path :
           {durability::WalSegmentPath(dir, seq),
            durability::CheckpointPath(dir, seq)}) {
        if (!ReadAll(path).empty()) files.push_back(path);
      }
    }
    ASSERT_FALSE(files.empty());
    const int mutations = 1 + static_cast<int>(rng.NextBounded(3));
    for (int m = 0; m < mutations; ++m) {
      const std::string& victim =
          files[rng.NextBounded(static_cast<uint64_t>(files.size()))];
      std::vector<uint8_t> bytes = ReadAll(victim);
      if (bytes.empty()) continue;
      switch (rng.NextBounded(3)) {
        case 0: {  // bit flip
          const uint64_t at = rng.NextBounded(bytes.size());
          bytes[at] ^= static_cast<uint8_t>(1u << rng.NextBounded(8));
          WriteAll(victim, bytes);
          break;
        }
        case 1: {  // truncation (torn write)
          bytes.resize(rng.NextBounded(bytes.size()));
          WriteAll(victim, bytes);
          break;
        }
        default:  // deletion
          std::remove(victim.c_str());
          break;
      }
    }
    // Recover from whatever survived and finish the stream. The
    // contract: either the final sample matches the uninterrupted
    // reference, or the run is FLAGGED (inconsistent replay cross-check
    // or un-clean report) — never an unflagged wrong answer.
    {
      DurableWswor resumed(config, none, Backend::kSim, Opts(dir));
      resumed.Run(w);
      const RunReport r = resumed.report();
      if (r.recovery_consistent && r.clean) {
        EXPECT_EQ(resumed.SampleIds(), expected)
            << "silently wrong sample, fuzz seed " << fuzz_seed;
        EXPECT_EQ(r.transcript_hash, reference.report().transcript_hash)
            << "silently wrong transcript, fuzz seed " << fuzz_seed;
      }
    }
    RemoveAll(dir);
  }
}

}  // namespace
}  // namespace dwrs
