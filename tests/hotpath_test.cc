// Span-ingestion (OnItems) hot-path tests: for every endpoint the span
// path must be message-for-message identical to the per-item OnItem path
// for every batching of the stream — the randomized filters are
// partition-invariant by construction (random/geometric_skip.h), so this
// holds exactly, not just distributionally. Also covered: the fault
// session's span splitting across crash windows, the engine's batch
// buffer recycling, and hot-path counter surfacing through engine::Stats.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"

#include "core/config.h"
#include "core/coordinator.h"
#include "core/naive.h"
#include "core/site.h"
#include "engine/engine.h"
#include "faults/fault_schedule.h"
#include "faults/harness.h"
#include "faults/session.h"
#include "hh/misra_gries.h"
#include "l1/deterministic_l1.h"
#include "l1/l1_tracker.h"
#include "l1/sqrtk_l1.h"
#include "random/rng.h"
#include "sampling/keyed_item.h"
#include "sim/message.h"
#include "sim/node.h"
#include "stream/generators.h"
#include "stream/partitioners.h"
#include "stream/workload.h"
#include "unweighted/distributed_swor.h"
#include "unweighted/distributed_swr.h"
#include "window/distributed_window.h"

namespace dwrs {
namespace {

// Records a FNV-1a hash of every outbound message (direction, site and
// full payload including session stamps): two runs produced identical
// transcripts iff hash and count agree.
class HashingTransport : public sim::Transport {
 public:
  void SendToCoordinator(int site, const sim::Payload& msg) override {
    Fold(0, site, msg);
  }
  void SendToSite(int site, const sim::Payload& msg) override {
    Fold(1, site, msg);
  }
  void Broadcast(const sim::Payload& msg) override { Fold(2, -1, msg); }
  uint64_t step() const override { return now_; }

  void set_now(uint64_t now) { now_ = now; }
  uint64_t hash() const { return hash_; }
  uint64_t count() const { return count_; }

 private:
  void Fold(uint64_t direction, int site, const sim::Payload& msg) {
    const auto fold = [this](uint64_t v) {
      hash_ ^= v;
      hash_ *= 1099511628211ull;
    };
    fold(direction);
    fold(static_cast<uint64_t>(static_cast<int64_t>(site)));
    fold(msg.type);
    fold(msg.a);
    fold(msg.seq);
    fold(msg.epoch);
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(msg.x));
    std::memcpy(&bits, &msg.x, sizeof(bits));
    fold(bits);
    std::memcpy(&bits, &msg.y, sizeof(bits));
    fold(bits);
    fold(msg.words);
    ++count_;
  }

  uint64_t hash_ = 1469598103934665603ull;
  uint64_t count_ = 0;
  uint64_t now_ = 0;
};

// Control messages are applied only at stream positions that are span
// boundaries for every batching under test (1, 7 and 64 all divide 448),
// mirroring the backend contract that OnMessage never lands inside a
// span.
constexpr size_t kAligned = 448;
constexpr size_t kSpanSizes[] = {0 /* per-item OnItem */, 1, 7, 64};

std::vector<Item> ZipfItems(size_t n, uint64_t seed) {
  Workload w = WorkloadBuilder()
                   .num_sites(1)
                   .num_items(n)
                   .seed(seed)
                   .weights(std::make_unique<ZipfWeights>(uint64_t{1} << 16, 1.2))
                   .partitioner(std::make_unique<SingleSitePartitioner>())
                   .Build();
  std::vector<Item> items;
  items.reserve(n);
  for (uint64_t i = 0; i < w.size(); ++i) items.push_back(w.event(i).item);
  return items;
}

// Feeds the stream in spans of `span` items (0 = per-item OnItem calls),
// invoking `control` at every kAligned boundary.
template <typename Control>
void Feed(sim::SiteNode* site, HashingTransport* transport,
          const std::vector<Item>& items, size_t span, Control&& control) {
  const size_t n = items.size();
  size_t pos = 0;
  while (pos < n) {
    if (pos % kAligned == 0) {
      transport->set_now(pos);
      control(site, pos / kAligned);
    }
    if (span == 0) {
      site->OnItem(items[pos]);
      ++pos;
      continue;
    }
    const size_t chunk =
        std::min({span, kAligned - pos % kAligned, n - pos});
    site->OnItems(items.data() + pos, chunk);
    pos += chunk;
  }
}

// Runs the stream through a fresh endpoint per span size and expects all
// transcripts to be bit-identical.
template <typename MakeSite, typename Control>
void ExpectSpanInvariantTranscript(const std::string& label,
                                   const std::vector<Item>& items,
                                   MakeSite&& make, Control&& control) {
  uint64_t ref_hash = 0;
  uint64_t ref_count = 0;
  bool first = true;
  for (size_t span : kSpanSizes) {
    HashingTransport transport;
    auto site = make(&transport);
    Feed(site.get(), &transport, items, span, control);
    if (first) {
      ref_hash = transport.hash();
      ref_count = transport.count();
      ASSERT_GT(ref_count, 0u) << label << ": silent endpoint, vacuous test";
      first = false;
    } else {
      EXPECT_EQ(transport.hash(), ref_hash) << label << " span=" << span;
      EXPECT_EQ(transport.count(), ref_count) << label << " span=" << span;
    }
  }
}

sim::Payload Msg(uint32_t type, uint64_t a, double x) {
  sim::Payload msg;
  msg.type = type;
  msg.a = a;
  msg.x = x;
  msg.words = 2;
  return msg;
}

TEST(SpanTranscriptTest, WsworSite) {
  const std::vector<Item> items = ZipfItems(2240, /*seed=*/3);
  const WsworConfig config{.num_sites = 1, .sample_size = 8};
  ExpectSpanInvariantTranscript(
      "wswor", items,
      [&](sim::Transport* t) {
        return std::make_unique<WsworSite>(config, 0, t, /*seed=*/99);
      },
      [](sim::SiteNode* site, size_t block) {
        // Saturate levels one by one and grow the epoch threshold — the
        // full filter state machine, exercised mid-stream.
        site->OnMessage(Msg(kWsworLevelSaturated, block % 8, 0.0));
        if (block > 0) {
          site->OnMessage(
              Msg(kWsworUpdateEpoch, 0, std::pow(2.0, block)));
        }
      });
}

TEST(SpanTranscriptTest, NaiveSite) {
  const std::vector<Item> items = ZipfItems(2240, /*seed=*/4);
  ExpectSpanInvariantTranscript(
      "naive", items,
      [&](sim::Transport* t) {
        return std::make_unique<NaiveWsworSite>(/*sample_size=*/8, 0, t,
                                                /*seed=*/98);
      },
      [](sim::SiteNode*, size_t) {});
}

TEST(SpanTranscriptTest, UsworSite) {
  const std::vector<Item> items = ZipfItems(2240, /*seed=*/5);
  const UsworConfig config{.num_sites = 1, .sample_size = 8};
  ExpectSpanInvariantTranscript(
      "uswor", items,
      [&](sim::Transport* t) {
        return std::make_unique<UsworSite>(config, 0, t, /*seed=*/97);
      },
      [](sim::SiteNode* site, size_t block) {
        site->OnMessage(
            Msg(kUsworThreshold, 0, std::pow(0.6, static_cast<double>(block))));
      });
}

TEST(SpanTranscriptTest, L1Site) {
  const std::vector<Item> items = ZipfItems(2240, /*seed=*/6);
  const L1TrackerConfig config{.num_sites = 1, .eps = 0.4, .delta = 0.2};
  ExpectSpanInvariantTranscript(
      "l1", items,
      [&](sim::Transport* t) {
        return std::make_unique<L1Site>(config, 0, t, /*seed=*/96);
      },
      [](sim::SiteNode* site, size_t block) {
        if (block > 0) {
          site->OnMessage(
              Msg(kWsworUpdateEpoch, 0, 10.0 * std::pow(2.0, block)));
        }
      });
}

TEST(SpanTranscriptTest, SqrtkL1Site) {
  const std::vector<Item> items = ZipfItems(2240, /*seed=*/7);
  ExpectSpanInvariantTranscript(
      "sqrtk_l1", items,
      [&](sim::Transport* t) {
        return std::make_unique<SqrtkL1Site>(0, t, /*seed=*/95);
      },
      [](sim::SiteNode* site, size_t block) {
        site->OnMessage(
            Msg(kSqrtkNewPhase, 0, std::pow(0.5, static_cast<double>(block))));
      });
}

TEST(SpanTranscriptTest, DetL1Site) {
  const std::vector<Item> items = ZipfItems(2240, /*seed=*/8);
  ExpectSpanInvariantTranscript(
      "det_l1", items,
      [&](sim::Transport* t) {
        return std::make_unique<DetL1Site>(/*eps=*/0.1, 0, t);
      },
      [](sim::SiteNode*, size_t) {});
}

TEST(SpanTranscriptTest, WindowSite) {
  const std::vector<Item> items = ZipfItems(2240, /*seed=*/9);
  const WindowConfig config{
      .num_sites = 1, .sample_size = 8, .window = 600};
  ExpectSpanInvariantTranscript(
      "window", items,
      [&](sim::Transport* t) {
        return std::make_unique<WindowSite>(config, 0, t, /*seed=*/94);
      },
      // The control hook's only effect is the aligned step bump performed
      // by Feed itself; entries age out as the clock jumps, exercising
      // expiry-driven promotions identically for every span size.
      [](sim::SiteNode*, size_t) {});
}

TEST(SpanTranscriptTest, MisraGriesSite) {
  const std::vector<Item> items = ZipfItems(2240, /*seed=*/10);
  ExpectSpanInvariantTranscript(
      "mg_hh", items,
      [&](sim::Transport* t) {
        // sync_every deliberately coprime to every span size so Ship()
        // fires mid-span.
        return DistributedMgHh::MakeSite(0, /*capacity=*/16,
                                         /*sync_every=*/97, t);
      },
      [](sim::SiteNode*, size_t) {});
}

TEST(SpanTranscriptTest, SlottedSwrSite) {
  const std::vector<Item> items = ZipfItems(2240, /*seed=*/11);
  const SlottedSwrConfig config{.num_sites = 1, .sample_size = 8};
  ExpectSpanInvariantTranscript(
      "swr", items,
      [&](sim::Transport* t) {
        return std::make_unique<SlottedSwrSite>(config, 0, t, /*seed=*/93);
      },
      [](sim::SiteNode* site, size_t block) {
        site->OnMessage(
            Msg(kSwrThreshold, 0, std::pow(0.7, static_cast<double>(block))));
      });
}

// Under fault injection the session layer splits spans at crash/restart
// boundaries; the stamped upstream transcript (seq/epoch included) must
// still be independent of the batching, crashes, lost items, epochs and
// all.
TEST(SpanTranscriptTest, FaultSessionSpansMatchPerItem) {
  const std::vector<Item> items = ZipfItems(2240, /*seed=*/12);
  const WsworConfig config{.num_sites = 1, .sample_size = 8};
  faults::FaultConfig fault_config;
  fault_config.seed = 77;
  fault_config.crash_prob = 0.01;
  fault_config.crash_down_items = 16;
  const faults::FaultSchedule schedule(fault_config);

  uint64_t ref_hash = 0;
  uint64_t ref_count = 0;
  uint64_t ref_crashes = 0;
  bool first = true;
  for (size_t span : kSpanSizes) {
    HashingTransport transport;
    faults::SiteSession session(
        0, &transport, &schedule,
        [&config](sim::Transport* upper, uint32_t epoch) {
          return std::make_unique<WsworSite>(
              config, 0, upper, faults::RestartSeed(91, epoch));
        });
    Feed(&session, &transport, items, span,
         [&](sim::SiteNode* site, size_t block) {
           site->OnMessage(Msg(kWsworLevelSaturated, block % 8, 0.0));
           if (block > 0) {
             site->OnMessage(
                 Msg(kWsworUpdateEpoch, 0, std::pow(2.0, block)));
           }
           if (block == 3) {
             // A nack for the current epoch: the deferred go-back-N
             // replay must fire at the head of the next live run
             // identically for every batching.
             sim::Payload nack = Msg(faults::kSessionNack, 1, 0.0);
             nack.epoch = session.epoch();
             site->OnMessage(nack);
           }
         });
    if (first) {
      ref_hash = transport.hash();
      ref_count = transport.count();
      ref_crashes = session.crashes();
      ASSERT_GT(ref_count, 0u);
      ASSERT_GT(ref_crashes, 0u)
          << "schedule produced no crash; raise crash_prob";
      first = false;
    } else {
      EXPECT_EQ(transport.hash(), ref_hash) << "span=" << span;
      EXPECT_EQ(transport.count(), ref_count) << "span=" << span;
      EXPECT_EQ(session.crashes(), ref_crashes) << "span=" << span;
    }
  }
}

// The base-class OnItems default must loop over OnItem for endpoints
// that do not override the span path.
TEST(SpanApiTest, DefaultOnItemsLoopsOverOnItem) {
  struct Recorder : sim::SiteNode {
    void OnItem(const Item& item) override { ids.push_back(item.id); }
    void OnMessage(const sim::Payload&) override {}
    std::vector<uint64_t> ids;
  };
  Recorder recorder;
  const std::vector<Item> items = {{1, 1.0}, {2, 2.0}, {3, 3.0}};
  recorder.OnItems(items.data(), items.size());
  EXPECT_EQ(recorder.ids, (std::vector<uint64_t>{1, 2, 3}));
}

// Engine integration: the batch-buffer pool recycles in the steady state
// and the site hot-path counters surface through engine::Stats.
TEST(EngineHotPathTest, RecyclesBatchBuffersAndSurfacesCounters) {
  const WsworConfig config{.num_sites = 2, .sample_size = 8, .seed = 21};
  std::vector<std::unique_ptr<WsworSite>> sites;
  engine::Engine eng(engine::EngineConfig{
      .num_sites = 2, .batch_size = 64, .item_queue_batches = 4});
  Rng master(config.seed);
  for (int i = 0; i < 2; ++i) {
    sites.push_back(std::make_unique<WsworSite>(config, i, &eng.transport(),
                                                master.NextU64()));
    eng.AttachSite(i, sites.back().get());
  }
  WsworCoordinator coordinator(config, &eng.transport(), master.NextU64());
  eng.AttachCoordinator(&coordinator);

  const std::vector<Item> items = ZipfItems(20000, /*seed=*/22);
  Rng partition(5);
  for (const Item& item : items) {
    eng.Push(static_cast<int>(partition.NextBounded(2)), item);
  }
  eng.Flush();

  const auto& stats = eng.stats();
  EXPECT_GT(stats.batches_recycled.load(), 0u);
  // Misses are a cold-start artifact (the pool warms to the queue depth);
  // steady-state ingestion must run overwhelmingly on recycled buffers.
  EXPECT_LT(stats.batch_pool_misses.load(),
            stats.batches_ingested.load() / 4);
  sim::SiteHotPathCounters expected;
  for (const auto& site : sites) expected += site->HotPathCounters();
  EXPECT_EQ(stats.keys_decided.load(), expected.keys_decided);
  EXPECT_EQ(stats.key_bits_consumed.load(), expected.key_bits_consumed);
  EXPECT_EQ(stats.skips_taken.load(), expected.skips_taken);
  EXPECT_GT(expected.skips_taken, 0u);
  eng.Shutdown();
}

// Span ingestion through the engine's span Push overload must agree with
// per-item Push: same batch boundaries, same spans at the worker, same
// RNG stream at the site. The naive protocol is used because it has no
// downstream control traffic, which makes even the throughput-mode run
// fully deterministic for a single site.
TEST(EngineHotPathTest, SpanPushMatchesPerItemPush) {
  const std::vector<Item> items = ZipfItems(3000, /*seed=*/32);

  const auto run = [&](bool span_push) {
    std::vector<std::unique_ptr<NaiveWsworSite>> sites;
    engine::Engine eng(engine::EngineConfig{.num_sites = 1, .batch_size = 32});
    Rng master(31);
    sites.push_back(std::make_unique<NaiveWsworSite>(
        /*sample_size=*/8, 0, &eng.transport(), master.NextU64()));
    eng.AttachSite(0, sites.back().get());
    NaiveWsworCoordinator coordinator(/*sample_size=*/8);
    eng.AttachCoordinator(&coordinator);
    if (span_push) {
      eng.Push(0, items.data(), items.size());
    } else {
      for (const Item& item : items) eng.Push(0, item);
    }
    eng.Flush();
    std::vector<uint64_t> ids;
    for (const KeyedItem& ki : coordinator.Sample()) ids.push_back(ki.item.id);
    const uint64_t messages = eng.stats().total_messages();
    eng.Shutdown();
    return std::make_pair(ids, messages);
  };

  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace dwrs
