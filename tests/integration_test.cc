// Cross-module scenarios: the full monitoring pipeline over one shared
// workload, agreement between the distributed sampler and the
// centralized reference, and end-to-end reproducibility.

#include <cmath>
#include <memory>
#include <set>
#include <unordered_set>

#include "gtest/gtest.h"
#include "dwrs.h"
#include "random/exponential_order_stats.h"
#include "stats/chi_square.h"
#include "util/math_util.h"

namespace dwrs {
namespace {

TEST(IntegrationTest, FullPipelineOnSharedWorkload) {
  const int k = 16;
  const Workload w = WorkloadBuilder()
                         .num_sites(k)
                         .num_items(20000)
                         .seed(1001)
                         .weights(std::make_unique<ZipfWeights>(100000, 1.3))
                         .integer_weights(true)
                         .partitioner(std::make_unique<RandomPartitioner>())
                         .Build();

  DistributedWswor sampler(
      WsworConfig{.num_sites = k, .sample_size = 64, .seed = 2});
  ResidualHeavyHitterTracker hh(
      ResidualHhConfig{.num_sites = k, .eps = 0.1, .delta = 0.1, .seed = 3});
  L1Tracker l1(
      L1TrackerConfig{.num_sites = k, .eps = 0.2, .delta = 0.2, .seed = 4});

  double true_weight = 0.0;
  for (uint64_t i = 0; i < w.size(); ++i) {
    const auto& e = w.event(i);
    true_weight += e.item.weight;
    sampler.Observe(e.site, e.item);
    hh.Observe(e.site, e.item);
    l1.Observe(e.site, e.item);
  }

  // Sample is full and valid.
  EXPECT_EQ(sampler.Sample().size(), 64u);
  // L1 estimate close to the truth.
  EXPECT_NEAR(l1.Estimate(), true_weight, 0.5 * true_weight);
  // The HH report covers all exact residual heavy hitters.
  const auto exact = ExactResidualHeavyHitters(w.PrefixWeights(), 0.1);
  std::unordered_set<uint64_t> reported;
  for (const Item& item : hh.HeavyHitters()) reported.insert(item.id);
  for (uint64_t id : exact) EXPECT_TRUE(reported.count(id)) << id;
  // Everything stayed well below "ship every item" messaging.
  EXPECT_LT(sampler.stats().total_messages(), w.size());
}

TEST(IntegrationTest, RepeatedQueriesAreConsistent) {
  DistributedWswor sampler(
      WsworConfig{.num_sites = 4, .sample_size = 8, .seed = 5});
  const Workload w = WorkloadBuilder()
                         .num_sites(4)
                         .num_items(500)
                         .seed(6)
                         .weights(std::make_unique<UniformWeights>(1.0, 99.0))
                         .Build();
  sampler.Run(w);
  const auto a = sampler.Sample();
  const auto b = sampler.Sample();  // query twice, no state change
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].item.id, b[i].item.id);
    EXPECT_DOUBLE_EQ(a[i].key, b[i].key);
  }
}

TEST(IntegrationTest, DistributedMatchesCentralizedReference) {
  // Same small universe: the distributed sampler and the centralized
  // Efraimidis-Spirakis sampler must realize the same set law. Compare
  // their set frequencies to each other via the exact distribution.
  const std::vector<double> weights = {2.0, 2.0, 8.0, 1.0, 4.0, 1.0, 6.0};
  const int s = 3;
  std::vector<WorkloadEvent> events;
  for (uint64_t i = 0; i < weights.size(); ++i) {
    events.push_back(
        WorkloadEvent{static_cast<int>(i % 3), Item{i, weights[i]}});
  }
  const Workload w(3, std::move(events));

  const auto exact = ExactSworSetDistribution(weights, s);
  std::map<uint32_t, size_t> cell_of;
  std::vector<double> probs;
  for (const auto& [mask, p] : exact) {
    cell_of[mask] = probs.size();
    probs.push_back(p);
  }
  std::vector<uint64_t> distributed_counts(probs.size(), 0);
  std::vector<uint64_t> centralized_counts(probs.size(), 0);
  const int trials = 12000;
  for (int t = 0; t < trials; ++t) {
    DistributedWswor sampler(WsworConfig{
        .num_sites = 3, .sample_size = s,
        .seed = 500000 + static_cast<uint64_t>(t)});
    sampler.Run(w);
    uint32_t mask = 0;
    for (const KeyedItem& ki : sampler.Sample()) {
      mask |= 1u << ki.item.id;
    }
    ++distributed_counts[cell_of.at(mask)];

    CentralizedWswor reference(s, 700000 + static_cast<uint64_t>(t));
    for (uint64_t i = 0; i < weights.size(); ++i) {
      reference.Add(Item{i, weights[i]});
    }
    mask = 0;
    for (const KeyedItem& ki : reference.Sample()) mask |= 1u << ki.item.id;
    ++centralized_counts[cell_of.at(mask)];
  }
  EXPECT_GT(ChiSquareAgainstProbabilities(distributed_counts, probs, trials)
                .p_value,
            1e-4);
  EXPECT_GT(ChiSquareAgainstProbabilities(centralized_counts, probs, trials)
                .p_value,
            1e-4);
}

TEST(IntegrationTest, AllPartitionersProduceValidSamples) {
  std::vector<std::unique_ptr<Partitioner>> partitioners;
  partitioners.push_back(std::make_unique<RoundRobinPartitioner>());
  partitioners.push_back(std::make_unique<RandomPartitioner>());
  partitioners.push_back(std::make_unique<SingleSitePartitioner>(1));
  partitioners.push_back(std::make_unique<BlockPartitioner>(64));
  for (auto& p : partitioners) {
    const Workload w = WorkloadBuilder()
                           .num_sites(4)
                           .num_items(3000)
                           .seed(7)
                           .weights(std::make_unique<ParetoWeights>(1.3))
                           .partitioner(std::move(p))
                           .Build();
    DistributedWswor sampler(
        WsworConfig{.num_sites = 4, .sample_size = 16, .seed = 8});
    sampler.Run(w);
    const auto sample = sampler.Sample();
    EXPECT_EQ(sample.size(), 16u);
    std::set<uint64_t> ids;
    for (const auto& ki : sample) ids.insert(ki.item.id);
    EXPECT_EQ(ids.size(), 16u);
  }
}

TEST(IntegrationTest, HardStreamsFromLowerBounds) {
  // The Theorem 5 geometric stream and the Theorem 7 epoch stream are the
  // adversarial instances; the sampler must stay correct (size, no dup)
  // and within its message bound.
  {
    const Workload w = WorkloadBuilder()
                           .num_sites(8)
                           .num_items(2000)  // (1+eps)^i overflows beyond
                           .seed(9)
                           .weights(std::make_unique<GeometricGrowthWeights>(0.02))
                           .partitioner(std::make_unique<RandomPartitioner>())
                           .Build();
    DistributedWswor sampler(
        WsworConfig{.num_sites = 8, .sample_size = 8, .seed = 10});
    sampler.Run(w);
    EXPECT_EQ(sampler.Sample().size(), 8u);
  }
  {
    const Workload w = WorkloadBuilder()
                           .num_sites(8)
                           .num_items(8 * 18)
                           .seed(11)
                           .weights(std::make_unique<EpochPowerWeights>(8, 8.0))
                           .partitioner(std::make_unique<BlockPartitioner>(1))
                           .Build();
    DistributedWswor sampler(
        WsworConfig{.num_sites = 8, .sample_size = 4, .seed = 12});
    sampler.Run(w);
    EXPECT_EQ(sampler.Sample().size(), 4u);
  }
}

TEST(IntegrationTest, UnweightedSpecialCaseAgreesAcrossStacks) {
  // All-unit weights: the weighted sampler, the unweighted substrate, and
  // plain reservoir sampling all sample uniformly; check inclusion of one
  // fixed item across many trials for all three.
  const int n = 40;
  const int s = 4;
  const Workload w = WorkloadBuilder()
                         .num_sites(4)
                         .num_items(n)
                         .seed(13)
                         .partitioner(std::make_unique<RandomPartitioner>())
                         .Build();
  const int trials = 8000;
  uint64_t weighted_hits = 0, unweighted_hits = 0, reservoir_hits = 0;
  for (int t = 0; t < trials; ++t) {
    DistributedWswor ws(WsworConfig{
        .num_sites = 4, .sample_size = s,
        .seed = 800000 + static_cast<uint64_t>(t)});
    ws.Run(w);
    for (const auto& ki : ws.Sample()) weighted_hits += (ki.item.id == 17);

    UsworConfig uc;
    uc.num_sites = 4;
    uc.sample_size = s;
    uc.seed = 900000 + static_cast<uint64_t>(t);
    DistributedUnweightedSwor us(uc);
    us.Run(w);
    for (const auto& item : us.Sample()) unweighted_hits += (item.id == 17);

    ReservoirSampler r(s, 950000 + static_cast<uint64_t>(t));
    for (const auto& e : w.events()) r.Add(e.item);
    for (const auto& item : r.sample()) reservoir_hits += (item.id == 17);
  }
  const double p = static_cast<double>(s) / n;
  EXPECT_GT(BinomialTwoSidedPValue(weighted_hits, trials, p), 1e-4);
  EXPECT_GT(BinomialTwoSidedPValue(unweighted_hits, trials, p), 1e-4);
  EXPECT_GT(BinomialTwoSidedPValue(reservoir_hits, trials, p), 1e-4);
}

}  // namespace
}  // namespace dwrs
