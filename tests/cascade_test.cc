#include <cmath>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "hh/misra_gries.h"
#include "sampling/cascade.h"
#include "stream/workload.h"
#include "test_util.h"

namespace dwrs {
namespace {

// ---------------------------------------------------------------------------
// Cascade sampler ([7]).

TEST(CascadeTest, HoldsTopKeysInStageOrder) {
  CascadeSampler cascade(4, 1);
  for (uint64_t i = 0; i < 100; ++i) cascade.Add(Item{i, 1.0 + (i % 5)});
  const auto sample = cascade.Sample();
  ASSERT_EQ(sample.size(), 4u);
  for (size_t i = 1; i < sample.size(); ++i) {
    EXPECT_GT(sample[i - 1].key, sample[i].key);
  }
  std::set<uint64_t> ids;
  for (const auto& ki : sample) ids.insert(ki.item.id);
  EXPECT_EQ(ids.size(), 4u);
}

TEST(CascadeTest, FewerItemsThanStages) {
  CascadeSampler cascade(8, 2);
  cascade.Add(Item{0, 1.0});
  cascade.Add(Item{1, 2.0});
  EXPECT_EQ(cascade.Sample().size(), 2u);
}

TEST(CascadeTest, ExactSetDistribution) {
  const std::vector<double> weights = {1.0, 5.0, 2.0, 3.0, 1.0, 8.0};
  const int s = 2;
  const auto result = testing::SworSetGoodnessOfFit(
      weights, s, 20000, [&](int t) {
        CascadeSampler cascade(s, 7000 + static_cast<uint64_t>(t));
        for (uint64_t i = 0; i < weights.size(); ++i) {
          cascade.Add(Item{i, weights[i]});
        }
        std::vector<uint64_t> ids;
        for (const auto& ki : cascade.Sample()) ids.push_back(ki.item.id);
        return ids;
      });
  EXPECT_GT(result.p_value, 1e-4) << "chi2=" << result.statistic;
}

TEST(CascadeTest, AmortizedHopsLogarithmic) {
  const int s = 16;
  CascadeSampler cascade(s, 3);
  const uint64_t n = 100000;
  Rng rng(4);
  for (uint64_t i = 0; i < n; ++i) {
    cascade.Add(Item{i, 1.0 + rng.NextDouble() * 9.0});
  }
  // Expected chain entries ~ s * ln(n/s); each costs <= s hops.
  const double entries_bound = s * std::log(static_cast<double>(n));
  EXPECT_LT(cascade.cascade_hops(),
            static_cast<uint64_t>(4.0 * s * entries_bound) + 10 * s);
}

// ---------------------------------------------------------------------------
// Misra-Gries.

TEST(MisraGriesTest, ExactBelowCapacity) {
  MisraGries mg(8);
  mg.Add(1, 5.0);
  mg.Add(2, 3.0);
  mg.Add(1, 2.0);
  EXPECT_DOUBLE_EQ(mg.EstimateOf(1), 7.0);
  EXPECT_DOUBLE_EQ(mg.EstimateOf(2), 3.0);
  EXPECT_DOUBLE_EQ(mg.error_bound(), 0.0);
}

TEST(MisraGriesTest, UnderestimatesWithinBound) {
  MisraGries mg(9);
  std::vector<double> truth(200, 0.0);
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t id = rng.NextBounded(200);
    const double w = 1.0 + static_cast<double>(rng.NextBounded(3));
    truth[id] += w;
    mg.Add(id, w);
  }
  // MG guarantee: true - W/(c+1) <= estimate <= true.
  for (uint64_t id = 0; id < 200; ++id) {
    const double est = mg.EstimateOf(id);
    EXPECT_LE(est, truth[id] + 1e-9);
    EXPECT_GE(est, truth[id] - mg.total_weight() / 10.0 - 1e-9);
  }
  EXPECT_LE(mg.error_bound(), mg.total_weight() / 10.0 + 1e-9);
}

TEST(MisraGriesTest, FindsDominantItem) {
  MisraGries mg(4);
  Rng rng(6);
  for (int i = 0; i < 3000; ++i) {
    mg.Add(rng.NextBounded(500), 1.0);
    mg.Add(31337, 2.0);
  }
  ASSERT_FALSE(mg.Entries().empty());
  EXPECT_EQ(mg.Entries()[0].id, 31337u);
}

TEST(MisraGriesTest, MergePreservesGuarantee) {
  MisraGries a(8), b(8);
  std::vector<double> truth(100, 0.0);
  Rng rng(7);
  for (int i = 0; i < 4000; ++i) {
    const uint64_t id = rng.NextBounded(100);
    truth[id] += 1.0;
    (i % 2 == 0 ? a : b).Add(id, 1.0);
  }
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.total_weight(), 4000.0);
  for (uint64_t id = 0; id < 100; ++id) {
    EXPECT_LE(a.EstimateOf(id), truth[id] + 1e-9);
    EXPECT_GE(a.EstimateOf(id), truth[id] - a.error_bound() - 1e-9);
  }
}

TEST(DistributedMgHhTest, FindsHeavyHittersWithPeriodicSync) {
  // Repeating ids so aggregation matters: id = index % 50, with id 7
  // receiving 10x weight.
  std::vector<WorkloadEvent> events;
  Rng rng(8);
  for (uint64_t i = 0; i < 20000; ++i) {
    const uint64_t id = i % 50;
    events.push_back(WorkloadEvent{
        static_cast<int>(rng.NextBounded(4)),
        Item{id, id == 7 ? 50.0 : 1.0}});
  }
  const Workload w(4, std::move(events));
  DistributedMgHh tracker(4, /*capacity=*/20, /*sync_every=*/500);
  tracker.Run(w);
  const auto hh = tracker.HeavyHitters(0.1);
  ASSERT_FALSE(hh.empty());
  EXPECT_EQ(hh[0].id, 7u);
  // Message cost: (n / sync_every) * (capacity + 1) per site roughly.
  EXPECT_LT(tracker.stats().total_messages(), 20000u / 10u);
}

TEST(DistributedMgHhTest, NoSyncNoReport) {
  DistributedMgHh tracker(2, 8, /*sync_every=*/1000000);
  tracker.Observe(0, Item{1, 100.0});
  EXPECT_TRUE(tracker.HeavyHitters(0.5).empty());
  EXPECT_EQ(tracker.stats().total_messages(), 0u);
}

}  // namespace
}  // namespace dwrs
