#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "random/rng.h"
#include "stats/chi_square.h"
#include "stats/histogram.h"
#include "stats/ks_test.h"
#include "stats/special_functions.h"
#include "stats/summary.h"

namespace dwrs {
namespace {

TEST(LogGammaTest, KnownValues) {
  EXPECT_NEAR(LogGamma(1.0), 0.0, 1e-10);
  EXPECT_NEAR(LogGamma(2.0), 0.0, 1e-10);
  EXPECT_NEAR(LogGamma(3.0), std::log(2.0), 1e-10);
  EXPECT_NEAR(LogGamma(6.0), std::log(120.0), 1e-9);
  EXPECT_NEAR(LogGamma(0.5), 0.5 * std::log(M_PI), 1e-10);
  EXPECT_NEAR(LogGamma(10.5), 13.940625219403763, 1e-8);
}

TEST(RegularizedGammaTest, ExponentialSpecialCase) {
  // P(1, x) = 1 - e^-x.
  for (double x : {0.1, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x), -std::expm1(-x), 1e-10);
    EXPECT_NEAR(RegularizedGammaQ(1.0, x), std::exp(-x), 1e-10);
  }
}

TEST(RegularizedGammaTest, Complementarity) {
  for (double a : {0.5, 2.0, 7.5}) {
    for (double x : {0.2, 1.0, 5.0, 20.0}) {
      EXPECT_NEAR(RegularizedGammaP(a, x) + RegularizedGammaQ(a, x), 1.0,
                  1e-10);
    }
  }
}

TEST(ChiSquareSurvivalTest, TwoDegrees) {
  // Chi-square with df=2 is Exp(1/2): survival = e^{-x/2}.
  for (double x : {0.5, 2.0, 10.0}) {
    EXPECT_NEAR(ChiSquareSurvival(x, 2.0), std::exp(-x / 2.0), 1e-10);
  }
}

TEST(ChiSquareSurvivalTest, KnownQuantiles) {
  // 95th percentile of chi-square(1) is 3.841; (5) is 11.07.
  EXPECT_NEAR(ChiSquareSurvival(3.841, 1.0), 0.05, 0.002);
  EXPECT_NEAR(ChiSquareSurvival(11.07, 5.0), 0.05, 0.002);
}

TEST(KolmogorovTest, Extremes) {
  EXPECT_NEAR(KolmogorovSurvival(0.1), 1.0, 1e-6);
  EXPECT_LT(KolmogorovSurvival(2.5), 1e-4);
  // K(1.36) ~ 0.049 (the classic 5% critical value).
  EXPECT_NEAR(KolmogorovSurvival(1.36), 0.049, 0.003);
}

TEST(NormalCdfTest, Values) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(NormalCdf(-1.96), 0.025, 1e-3);
}

TEST(SummaryTest, MeanVarianceMinMax) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SummaryTest, MergeEqualsCombined) {
  Rng rng(1);
  Summary all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble() * 10.0;
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SummaryTest, MergeWithEmpty) {
  Summary a, b;
  a.Add(1.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.Merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(QuantileSketchTest, Quantiles) {
  QuantileSketch q;
  for (int i = 100; i >= 1; --i) q.Add(i);  // 1..100 reversed
  EXPECT_DOUBLE_EQ(q.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q.Quantile(1.0), 100.0);
  EXPECT_NEAR(q.Quantile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(q.Quantile(0.25), 25.75, 1e-9);
}

TEST(HistogramTest, LinearBinning) {
  Histogram h = Histogram::Linear(0.0, 10.0, 5);
  h.Add(0.5);
  h.Add(3.0);
  h.Add(9.9);
  h.Add(-1.0);   // clamped to first
  h.Add(100.0);  // clamped to last
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lower(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_upper(4), 10.0);
}

TEST(HistogramTest, LogBinning) {
  Histogram h = Histogram::Logarithmic(1.0, 1024.0, 10);
  h.Add(1.5);
  h.Add(512.0);
  EXPECT_EQ(h.BinFor(1.5), 0);
  EXPECT_EQ(h.BinFor(512.0), 9);
  EXPECT_NEAR(h.bin_lower(5), 32.0, 1e-9);
}

TEST(HistogramTest, RendersBars) {
  Histogram h = Histogram::Linear(0.0, 1.0, 2);
  h.Add(0.1);
  h.Add(0.9);
  const std::string s = h.ToString();
  EXPECT_NE(s.find('#'), std::string::npos);
}

TEST(ChiSquareGofTest, AcceptsFairDie) {
  Rng rng(5);
  std::vector<uint64_t> counts(6, 0);
  const uint64_t trials = 60000;
  for (uint64_t i = 0; i < trials; ++i) ++counts[rng.NextBounded(6)];
  std::vector<double> probs(6, 1.0 / 6.0);
  EXPECT_GT(ChiSquareAgainstProbabilities(counts, probs, trials).p_value,
            1e-3);
}

TEST(ChiSquareGofTest, RejectsBiasedDie) {
  // Simulated counts from a die that favors face 0.
  const std::vector<uint64_t> counts = {14000, 9200, 9200, 9200, 9200, 9200};
  std::vector<double> probs(6, 1.0 / 6.0);
  EXPECT_LT(ChiSquareAgainstProbabilities(counts, probs, 60000).p_value,
            1e-6);
}

TEST(ChiSquareGofTest, PoolsSparseCells) {
  // Expected counts of 0.5 per cell must be pooled, not divided by.
  std::vector<uint64_t> observed(100, 0);
  std::vector<double> expected(100, 0.5);
  observed[0] = 50;
  const auto result = ChiSquareGoodnessOfFit(observed, expected);
  EXPECT_GE(result.degrees_of_freedom, 1.0);
  EXPECT_TRUE(std::isfinite(result.statistic));
}

TEST(KsTestTest, AcceptsUniform) {
  Rng rng(6);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) samples.push_back(rng.NextDouble());
  EXPECT_GT(KsTest(samples, UniformCdf).p_value, 1e-3);
}

TEST(KsTestTest, RejectsWrongDistribution) {
  Rng rng(7);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) {
    samples.push_back(std::sqrt(rng.NextDouble()));  // Beta(2,1), not uniform
  }
  EXPECT_LT(KsTest(samples, UniformCdf).p_value, 1e-6);
}

TEST(BinomialPValueTest, Calibration) {
  EXPECT_GT(BinomialTwoSidedPValue(500, 1000, 0.5), 0.9);
  EXPECT_LT(BinomialTwoSidedPValue(600, 1000, 0.5), 1e-6);
  EXPECT_GT(BinomialTwoSidedPValue(0, 10, 0.0), 0.99);
}

}  // namespace
}  // namespace dwrs
