#include <cmath>

#include "gtest/gtest.h"
#include "util/check.h"
#include "util/math_util.h"

namespace dwrs {
namespace {

TEST(CheckTest, PassingCheckDoesNothing) {
  DWRS_CHECK(true);
  DWRS_CHECK_EQ(1, 1);
  DWRS_CHECK_GE(2.0, 1.0);
  SUCCEED();
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(DWRS_CHECK(false) << "boom", "DWRS_CHECK failed");
}

TEST(CheckDeathTest, FailingComparisonAborts) {
  EXPECT_DEATH(DWRS_CHECK_LT(3, 2), "DWRS_CHECK failed");
}

TEST(FloorLogBaseTest, PowersOfTwo) {
  EXPECT_EQ(FloorLogBase(1.0, 2.0), 0);
  EXPECT_EQ(FloorLogBase(1.9, 2.0), 0);
  EXPECT_EQ(FloorLogBase(2.0, 2.0), 1);
  EXPECT_EQ(FloorLogBase(3.999, 2.0), 1);
  EXPECT_EQ(FloorLogBase(4.0, 2.0), 2);
  EXPECT_EQ(FloorLogBase(1024.0, 2.0), 10);
}

TEST(FloorLogBaseTest, SubUnitWeightsClampToLevelZero) {
  EXPECT_EQ(FloorLogBase(0.5, 2.0), 0);
  EXPECT_EQ(FloorLogBase(1e-9, 2.0), 0);
}

TEST(FloorLogBaseTest, NonIntegerBase) {
  const double r = 2.5;
  for (int j = 0; j < 20; ++j) {
    const double x = PowInt(r, j);
    EXPECT_EQ(FloorLogBase(x, r), j) << "at j=" << j;
    EXPECT_EQ(FloorLogBase(x * 1.0001, r), j);
    if (j > 0) {
      EXPECT_EQ(FloorLogBase(x * 0.9999, r), j - 1);
    }
  }
}

TEST(FloorLogBaseTest, BoundaryConsistentWithPowInt) {
  // The definition requires base^j <= x < base^(j+1).
  for (double base : {2.0, 3.0, 2.5, 7.5}) {
    for (double x : {1.0, 1.5, 2.0, 10.0, 1e6, 3.14159e12}) {
      const int j = FloorLogBase(x, base);
      EXPECT_LE(PowInt(base, j), x);
      EXPECT_GT(PowInt(base, j + 1), x);
    }
  }
}

TEST(PowIntTest, MatchesStdPow) {
  for (double base : {2.0, 2.5, 3.0, 10.0}) {
    for (int j : {0, 1, 2, 7, 20}) {
      EXPECT_NEAR(PowInt(base, j), std::pow(base, j),
                  1e-9 * std::pow(base, j));
    }
  }
}

TEST(FloorLog2U64Test, Values) {
  EXPECT_EQ(FloorLog2U64(0), 0);
  EXPECT_EQ(FloorLog2U64(1), 0);
  EXPECT_EQ(FloorLog2U64(2), 1);
  EXPECT_EQ(FloorLog2U64(3), 1);
  EXPECT_EQ(FloorLog2U64(1ull << 40), 40);
  EXPECT_EQ(FloorLog2U64(UINT64_MAX), 63);
}

TEST(ClampTest, Basics) {
  EXPECT_EQ(Clamp(5.0, 0.0, 10.0), 5.0);
  EXPECT_EQ(Clamp(-5.0, 0.0, 10.0), 0.0);
  EXPECT_EQ(Clamp(15.0, 0.0, 10.0), 10.0);
}

TEST(AlmostEqualTest, RelativeTolerance) {
  EXPECT_TRUE(AlmostEqual(1.0, 1.0 + 1e-12, 1e-9));
  EXPECT_FALSE(AlmostEqual(1.0, 1.1, 1e-9));
  EXPECT_TRUE(AlmostEqual(1e12, 1e12 + 1.0, 1e-9));
}

TEST(EpochBaseTest, PaperFormula) {
  EXPECT_DOUBLE_EQ(EpochBase(4, 16), 2.0);    // k/s < 2 -> 2
  EXPECT_DOUBLE_EQ(EpochBase(64, 16), 4.0);   // k/s = 4
  EXPECT_DOUBLE_EQ(EpochBase(100, 10), 10.0); // k/s = 10
}

TEST(MessageBoundTest, Theorem3Monotonicity) {
  // Bound grows with W and with k.
  EXPECT_LT(Theorem3MessageBound(16, 8, 1e4),
            Theorem3MessageBound(16, 8, 1e8));
  EXPECT_LT(Theorem3MessageBound(16, 8, 1e6),
            Theorem3MessageBound(256, 8, 1e6));
  EXPECT_GT(Theorem3MessageBound(16, 8, 1e6), 0.0);
}

TEST(MessageBoundTest, NaiveDominatesTheorem3) {
  for (int k : {8, 64, 512}) {
    for (double w : {1e4, 1e6, 1e9}) {
      EXPECT_GT(NaiveMessageBound(k, 16, w), Theorem3MessageBound(k, 16, w));
    }
  }
}

}  // namespace
}  // namespace dwrs
