#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "gtest/gtest.h"
#include "bench_util.h"
#include "random/rng.h"
#include "util/check.h"
#include "util/math_util.h"

namespace dwrs {
namespace {

TEST(CheckTest, PassingCheckDoesNothing) {
  DWRS_CHECK(true);
  DWRS_CHECK_EQ(1, 1);
  DWRS_CHECK_GE(2.0, 1.0);
  SUCCEED();
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(DWRS_CHECK(false) << "boom", "DWRS_CHECK failed");
}

TEST(CheckDeathTest, FailingComparisonAborts) {
  EXPECT_DEATH(DWRS_CHECK_LT(3, 2), "DWRS_CHECK failed");
}

TEST(FloorLogBaseTest, PowersOfTwo) {
  EXPECT_EQ(FloorLogBase(1.0, 2.0), 0);
  EXPECT_EQ(FloorLogBase(1.9, 2.0), 0);
  EXPECT_EQ(FloorLogBase(2.0, 2.0), 1);
  EXPECT_EQ(FloorLogBase(3.999, 2.0), 1);
  EXPECT_EQ(FloorLogBase(4.0, 2.0), 2);
  EXPECT_EQ(FloorLogBase(1024.0, 2.0), 10);
}

TEST(FloorLogBaseTest, SubUnitWeightsClampToLevelZero) {
  EXPECT_EQ(FloorLogBase(0.5, 2.0), 0);
  EXPECT_EQ(FloorLogBase(1e-9, 2.0), 0);
}

TEST(FloorLogBaseTest, NonIntegerBase) {
  const double r = 2.5;
  for (int j = 0; j < 20; ++j) {
    const double x = PowInt(r, j);
    EXPECT_EQ(FloorLogBase(x, r), j) << "at j=" << j;
    EXPECT_EQ(FloorLogBase(x * 1.0001, r), j);
    if (j > 0) {
      EXPECT_EQ(FloorLogBase(x * 0.9999, r), j - 1);
    }
  }
}

// Golden boundary pins for the exponent-extraction fast path: weights
// exactly at a level boundary base^j must land on level j, one ulp below
// on level j-1, for power-of-two bases across the whole exponent range.
TEST(FloorLogBaseTest, GoldenPowerOfTwoBoundariesExact) {
  for (double base : {2.0, 4.0, 8.0, 1024.0}) {
    const int m = static_cast<int>(std::log2(base));
    for (int j = 1; m * j < 1020; j *= 3) {
      const double x = std::ldexp(1.0, m * j);  // base^j exactly
      ASSERT_EQ(FloorLogBase(x, base), j) << "base=" << base << " j=" << j;
      ASSERT_EQ(FloorLogBase(std::nextafter(x, 0.0), base), j - 1)
          << "base=" << base << " j=" << j;
      ASSERT_EQ(FloorLogBase(std::nextafter(x, 1e308), base), j)
          << "base=" << base << " j=" << j;
    }
  }
  // Full-range sanity: the top of the double range.
  EXPECT_EQ(FloorLogBase(std::ldexp(1.0, 1000), 2.0), 1000);
  EXPECT_EQ(FloorLogBase(std::numeric_limits<double>::max(), 2.0), 1023);
}

TEST(FloorLogBaseTest, GoldenNonPowerOfTwoBoundariesExact) {
  // The transcendental fallback still pins boundaries exactly via the
  // PowInt fix-up loops.
  for (double base : {2.5, 3.0, 6.0}) {
    for (int j = 1; j < 60; j += 7) {
      const double x = PowInt(base, j);
      ASSERT_EQ(FloorLogBase(x, base), j) << "base=" << base << " j=" << j;
      ASSERT_EQ(FloorLogBase(std::nextafter(x, 0.0), base), j - 1)
          << "base=" << base << " j=" << j;
    }
  }
}

TEST(PowerOfTwoExponentTest, DiscriminatesExactPowers) {
  EXPECT_EQ(PowerOfTwoExponent(2.0), 1);
  EXPECT_EQ(PowerOfTwoExponent(4.0), 2);
  EXPECT_EQ(PowerOfTwoExponent(1024.0), 10);
  EXPECT_EQ(PowerOfTwoExponent(3.0), 0);
  EXPECT_EQ(PowerOfTwoExponent(2.5), 0);
  EXPECT_EQ(PowerOfTwoExponent(1.0), 0);   // base 1 is not a usable level base
  EXPECT_EQ(PowerOfTwoExponent(0.5), 0);   // and neither is anything below 2
}

TEST(LevelIndexerTest, MatchesFloorLogBase) {
  Rng rng(71);
  for (double base : {2.0, 2.5, 4.0, 3.0}) {
    const LevelIndexer indexer(base);
    for (int i = 0; i < 2000; ++i) {
      const double x = std::exp(rng.NextDouble() * 40.0 - 2.0);
      ASSERT_EQ(indexer(x), FloorLogBase(x, base)) << "x=" << x
                                                   << " base=" << base;
    }
  }
}

TEST(FloorLogBaseTest, BoundaryConsistentWithPowInt) {
  // The definition requires base^j <= x < base^(j+1).
  for (double base : {2.0, 3.0, 2.5, 7.5}) {
    for (double x : {1.0, 1.5, 2.0, 10.0, 1e6, 3.14159e12}) {
      const int j = FloorLogBase(x, base);
      EXPECT_LE(PowInt(base, j), x);
      EXPECT_GT(PowInt(base, j + 1), x);
    }
  }
}

TEST(PowIntTest, MatchesStdPow) {
  for (double base : {2.0, 2.5, 3.0, 10.0}) {
    for (int j : {0, 1, 2, 7, 20}) {
      EXPECT_NEAR(PowInt(base, j), std::pow(base, j),
                  1e-9 * std::pow(base, j));
    }
  }
}

TEST(FloorLog2U64Test, Values) {
  EXPECT_EQ(FloorLog2U64(0), 0);
  EXPECT_EQ(FloorLog2U64(1), 0);
  EXPECT_EQ(FloorLog2U64(2), 1);
  EXPECT_EQ(FloorLog2U64(3), 1);
  EXPECT_EQ(FloorLog2U64(1ull << 40), 40);
  EXPECT_EQ(FloorLog2U64(UINT64_MAX), 63);
}

TEST(ClampTest, Basics) {
  EXPECT_EQ(Clamp(5.0, 0.0, 10.0), 5.0);
  EXPECT_EQ(Clamp(-5.0, 0.0, 10.0), 0.0);
  EXPECT_EQ(Clamp(15.0, 0.0, 10.0), 10.0);
}

TEST(AlmostEqualTest, RelativeTolerance) {
  EXPECT_TRUE(AlmostEqual(1.0, 1.0 + 1e-12, 1e-9));
  EXPECT_FALSE(AlmostEqual(1.0, 1.1, 1e-9));
  EXPECT_TRUE(AlmostEqual(1e12, 1e12 + 1.0, 1e-9));
}

TEST(EpochBaseTest, PaperFormula) {
  EXPECT_DOUBLE_EQ(EpochBase(4, 16), 2.0);    // k/s < 2 -> 2
  EXPECT_DOUBLE_EQ(EpochBase(64, 16), 4.0);   // k/s = 4
  EXPECT_DOUBLE_EQ(EpochBase(100, 10), 10.0); // k/s = 10
}

TEST(MessageBoundTest, Theorem3Monotonicity) {
  // Bound grows with W and with k.
  EXPECT_LT(Theorem3MessageBound(16, 8, 1e4),
            Theorem3MessageBound(16, 8, 1e8));
  EXPECT_LT(Theorem3MessageBound(16, 8, 1e6),
            Theorem3MessageBound(256, 8, 1e6));
  EXPECT_GT(Theorem3MessageBound(16, 8, 1e6), 0.0);
}

TEST(MessageBoundTest, NaiveDominatesTheorem3) {
  for (int k : {8, 64, 512}) {
    for (double w : {1e4, 1e6, 1e9}) {
      EXPECT_GT(NaiveMessageBound(k, 16, w), Theorem3MessageBound(k, 16, w));
    }
  }
}

// ---------------------------------------------------------------------
// Bench JSON emission (bench/bench_util.h): the BENCH_*.json files are
// parsed by downstream tooling, so non-finite numbers and unescaped
// strings are silent corruption.

TEST(JsonNumberTest, FiniteValuesUseCompactDecimal) {
  EXPECT_EQ(bench::JsonNumber(0.0), "0");
  EXPECT_EQ(bench::JsonNumber(2.5), "2.5");
  EXPECT_EQ(bench::JsonNumber(-1e-9), "-1e-09");
  EXPECT_EQ(bench::JsonNumber(1234567890.0), "1234567890");
}

TEST(JsonNumberTest, NonFiniteBecomesNull) {
  EXPECT_EQ(bench::JsonNumber(std::numeric_limits<double>::quiet_NaN()),
            "null");
  EXPECT_EQ(bench::JsonNumber(std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(bench::JsonNumber(-std::numeric_limits<double>::infinity()),
            "null");
}

TEST(JsonQuoteTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(bench::JsonQuote("plain"), "\"plain\"");
  EXPECT_EQ(bench::JsonQuote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(bench::JsonQuote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(bench::JsonQuote("tab\there"), "\"tab\\there\"");
  EXPECT_EQ(bench::JsonQuote("line\nbreak\r"), "\"line\\nbreak\\r\"");
  EXPECT_EQ(bench::JsonQuote(std::string("nul\x01") + "\x1f"),
            "\"nul\\u0001\\u001f\"");
  // Non-ASCII bytes pass through untouched (UTF-8 is legal in JSON).
  EXPECT_EQ(bench::JsonQuote("\xC3\xA9"), "\"\xC3\xA9\"");
}

TEST(JsonBenchTest, WriteEmitsWellFormedJsonUnderHostileValues) {
  bench::JsonBench out("util_test_hostile");
  out.Param("workload", "zipf \"skewed\"\n")
      .Param("alpha", std::numeric_limits<double>::infinity());
  out.StartRow()
      .Field("backend", "sim\\runtime")
      .Field("items_per_sec", std::numeric_limits<double>::quiet_NaN())
      .Field("messages", uint64_t{42});
  const std::string path = out.Write();
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"alpha\": null"), std::string::npos);
  EXPECT_NE(json.find("\"items_per_sec\": null"), std::string::npos);
  EXPECT_NE(json.find("zipf \\\"skewed\\\"\\n"), std::string::npos);
  EXPECT_NE(json.find("sim\\\\runtime"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
  // No raw control characters anywhere in the emitted file.
  for (char c : json) {
    EXPECT_TRUE(static_cast<unsigned char>(c) >= 0x20 || c == '\n') << (int)c;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dwrs
