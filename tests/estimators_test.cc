#include <cmath>
#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "core/sharded_sampler.h"
#include "estimators/swor_estimators.h"
#include "query/live.h"
#include "query/query_service.h"
#include "random/rng.h"
#include "sampling/efraimidis_spirakis.h"
#include "sim/sharded_runtime.h"
#include "stats/summary.h"
#include "stream/workload.h"

namespace dwrs {
namespace {

ThresholdedSample DrawSample(const std::vector<double>& weights, int s,
                             uint64_t seed) {
  // Keep s+1 keys; split into sample + threshold.
  CentralizedWswor sampler(s + 1, seed);
  for (uint64_t i = 0; i < weights.size(); ++i) {
    sampler.Add(Item{i, weights[i]});
  }
  return MakeThresholdedSample(sampler.Sample());
}

TEST(EstimatorsTest, InclusionProbabilityBasics) {
  EXPECT_DOUBLE_EQ(InclusionProbability(5.0, 0.0), 1.0);
  EXPECT_NEAR(InclusionProbability(1.0, 1.0), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_GT(InclusionProbability(10.0, 1.0), InclusionProbability(1.0, 1.0));
  EXPECT_NEAR(InclusionProbability(1e9, 1.0), 1.0, 1e-12);
}

TEST(EstimatorsTest, ExactWhenSampleCoversEverything) {
  // tau = 0 (the caller knows the sample covers the whole stream):
  // estimates degenerate to exact sums.
  ThresholdedSample full;
  full.tau = 0.0;
  full.top = {{Item{0, 3.0}, 5.0}, {Item{1, 7.0}, 4.0}};
  EXPECT_DOUBLE_EQ(EstimateTotalWeight(full), 10.0);
  EXPECT_DOUBLE_EQ(
      EstimateSubsetCount(full, [](const Item&) { return true; }), 2.0);
}

TEST(EstimatorsTest, TotalWeightUnbiased) {
  std::vector<double> weights;
  double truth = 0.0;
  for (int i = 0; i < 200; ++i) {
    weights.push_back(1.0 + (i * 31 % 17));
    truth += weights.back();
  }
  Summary estimates;
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    estimates.Add(EstimateTotalWeight(DrawSample(weights, 32, 500 + t)));
  }
  EXPECT_NEAR(estimates.mean(), truth,
              5.0 * estimates.stddev() / std::sqrt(trials));
  // And reasonably concentrated.
  EXPECT_LT(estimates.stddev() / truth, 0.35);
}

TEST(EstimatorsTest, SubsetSumUnbiased) {
  std::vector<double> weights;
  double even_truth = 0.0;
  for (int i = 0; i < 150; ++i) {
    weights.push_back(1.0 + (i % 9));
    if (i % 2 == 0) even_truth += weights.back();
  }
  Summary estimates;
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    const auto ts = DrawSample(weights, 24, 900 + t);
    estimates.Add(EstimateSubsetSum(
        ts, [](const Item& item) { return item.id % 2 == 0; }));
  }
  EXPECT_NEAR(estimates.mean(), even_truth,
              5.0 * estimates.stddev() / std::sqrt(trials));
}

TEST(EstimatorsTest, SubsetCountUnbiased) {
  std::vector<double> weights(100, 0.0);
  for (int i = 0; i < 100; ++i) weights[i] = (i < 10) ? 50.0 : 1.0;
  Summary estimates;
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    const auto ts = DrawSample(weights, 20, 1300 + t);
    // Count the light items (ids >= 10): truth is 90.
    estimates.Add(EstimateSubsetCount(
        ts, [](const Item& item) { return item.id >= 10; }));
  }
  EXPECT_NEAR(estimates.mean(), 90.0,
              5.0 * estimates.stddev() / std::sqrt(trials));
}

TEST(EstimatorsTest, HeavyItemsEstimatedNearExactly) {
  // Items far above tau have inclusion probability ~1 and contribute
  // their exact weight.
  std::vector<double> weights(64, 1.0);
  weights[7] = 1e6;
  const auto ts = DrawSample(weights, 16, 42);
  const double heavy = EstimateSubsetSum(
      ts, [](const Item& item) { return item.id == 7; });
  EXPECT_NEAR(heavy, 1e6, 1.0);
}

TEST(EstimatorsDeathTest, RejectsUnsortedSample) {
  std::vector<KeyedItem> bad = {{Item{0, 1.0}, 1.0}, {Item{1, 1.0}, 2.0}};
  EXPECT_DEATH(MakeThresholdedSample(bad), "descending");
}

// ---------------------------------------------------------------------
// Subset-sum estimation served through live QueryService snapshots
// (src/query/): the merged shard summaries condition on the s-th
// largest merged key, so the live path must be unbiased, must agree
// bit for bit with the direct post-quiesce computation at quiesce
// points, and mid-stream answers must concentrate within the
// estimator's bound.

namespace {

Workload FixedWeightsWorkload(const std::vector<double>& weights, int sites,
                              uint64_t seed) {
  std::vector<WorkloadEvent> events;
  Rng rng(seed);
  for (uint64_t i = 0; i < weights.size(); ++i) {
    events.push_back(WorkloadEvent{
        static_cast<int>(rng.NextBounded(static_cast<uint64_t>(sites))),
        Item{i, weights[i]}});
  }
  return Workload(sites, std::move(events));
}

// One sharded sim deployment with live publishers; runs `workload` and
// leaves the final quiesce-point snapshots published.
struct LiveSimRun {
  LiveSimRun(const WsworConfig& config, int shards, const Workload& workload)
      : runtime(config.num_sites, shards),
        endpoints(AttachShardedWswor(config, runtime)),
        publishers(shards),
        service(publishers.views()) {
    query::PublishWsworSnapshots(runtime, endpoints, publishers);
    runtime.Run(workload);
    query::PublishWsworSnapshots(runtime, endpoints, publishers);
  }

  sim::ShardedRuntime runtime;
  ShardedWsworEndpoints endpoints;
  query::LiveShardPublishers publishers;
  query::QueryService service;
};

}  // namespace

TEST(EstimatorsTest, SubsetSumThroughLiveSnapshotsUnbiased) {
  const int k = 4, s = 16, shards = 2;
  std::vector<double> weights;
  double pred_truth = 0.0;
  for (int i = 0; i < 60; ++i) {
    weights.push_back(1.0 + (i * 17 % 11));
    if (i % 3 == 0) pred_truth += weights.back();
  }
  const auto pred = [](const Item& item) { return item.id % 3 == 0; };

  Summary estimates;
  Summary counts;
  const int trials = 1500;
  for (int t = 0; t < trials; ++t) {
    const uint64_t trial = static_cast<uint64_t>(t);
    WsworConfig config;
    config.num_sites = k;
    config.sample_size = s;
    config.seed = 40000 + trial;
    LiveSimRun run(config, shards,
                   FixedWeightsWorkload(weights, k, /*seed=*/600 + trial));
    estimates.Add(run.service.SubsetSum(pred));
    counts.Add(run.service.SubsetCount(pred));
  }
  EXPECT_NEAR(estimates.mean(), pred_truth,
              5.0 * estimates.stddev() / std::sqrt(trials));
  EXPECT_NEAR(counts.mean(), 20.0, 5.0 * counts.stddev() / std::sqrt(trials));
}

TEST(EstimatorsTest, LiveAnswerEqualsPostQuiesceAnswerAtQuiescePoints) {
  // At a quiesce point the live path must serve EXACTLY the estimate the
  // direct root-merge computation produces — same sample, same tau, bit
  // for bit.
  const int k = 4, s = 12, shards = 2;
  std::vector<double> weights;
  for (int i = 0; i < 80; ++i) weights.push_back(1.0 + (i % 7));
  const WsworConfig config{.num_sites = k, .sample_size = s, .seed = 91};
  LiveSimRun run(config, shards, FixedWeightsWorkload(weights, k, 17));

  const auto pred = [](const Item& item) { return item.id % 2 == 0; };
  const ThresholdedSample direct =
      MakeThresholdedSample(run.runtime.MergedSample().TopEntries());
  EXPECT_DOUBLE_EQ(run.service.SubsetSum(pred),
                   EstimateSubsetSum(direct, pred));
  EXPECT_DOUBLE_EQ(run.service.TotalWeight(), EstimateTotalWeight(direct));
  // tau is the s-th largest merged key, positive once s candidates
  // exist.
  EXPECT_GT(run.service.EstimatorSample().tau, 0.0);
  EXPECT_EQ(run.service.EstimatorSample().top.size(),
            static_cast<size_t>(s - 1));
}

TEST(EstimatorsTest, MidStreamLiveEstimateWithinPaperBound) {
  // Query the live total-weight estimate mid-stream (step-synchronous,
  // prefix pinned): unbiased for the prefix truth, with relative
  // standard deviation within the estimator's O(1/sqrt(s)) bound.
  const int k = 4, s = 16, shards = 2;
  std::vector<double> weights;
  for (int i = 0; i < 64; ++i) weights.push_back(1.0 + (i * 13 % 9));
  const uint64_t prefix = 40;
  double prefix_truth = 0.0;

  Summary estimates;
  const int trials = 1500;
  for (int t = 0; t < trials; ++t) {
    const Workload w =
        FixedWeightsWorkload(weights, k, /*seed=*/300);  // fixed arrivals
    if (t == 0) {
      for (uint64_t i = 0; i < prefix; ++i) {
        prefix_truth += w.event(i).item.weight;
      }
    }
    WsworConfig config;
    config.num_sites = k;
    config.sample_size = s;
    config.seed = 50000 + static_cast<uint64_t>(t);
    sim::ShardedRuntime runtime(k, shards);
    const ShardedWsworEndpoints endpoints = AttachShardedWswor(config, runtime);
    query::LiveShardPublishers publishers(shards);
    query::PublishWsworSnapshots(runtime, endpoints, publishers);
    query::QueryService service(publishers.views());
    double live = 0.0;
    runtime.Run(w, [&](uint64_t step) {
      query::PublishWsworSnapshots(runtime, endpoints, publishers);
      if (step == prefix) live = service.TotalWeight();
    });
    estimates.Add(live);
  }
  EXPECT_NEAR(estimates.mean(), prefix_truth,
              5.0 * estimates.stddev() / std::sqrt(trials));
  // Paper-bound concentration: relative stddev of the (s-1)-sample
  // threshold estimator is O(1/sqrt(s)); 3/sqrt(s) is a generous
  // constant.
  EXPECT_LT(estimates.stddev() / prefix_truth, 3.0 / std::sqrt(double(s)));
}

}  // namespace
}  // namespace dwrs
