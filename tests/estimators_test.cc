#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "estimators/swor_estimators.h"
#include "sampling/efraimidis_spirakis.h"
#include "stats/summary.h"

namespace dwrs {
namespace {

ThresholdedSample DrawSample(const std::vector<double>& weights, int s,
                             uint64_t seed) {
  // Keep s+1 keys; split into sample + threshold.
  CentralizedWswor sampler(s + 1, seed);
  for (uint64_t i = 0; i < weights.size(); ++i) {
    sampler.Add(Item{i, weights[i]});
  }
  return MakeThresholdedSample(sampler.Sample());
}

TEST(EstimatorsTest, InclusionProbabilityBasics) {
  EXPECT_DOUBLE_EQ(InclusionProbability(5.0, 0.0), 1.0);
  EXPECT_NEAR(InclusionProbability(1.0, 1.0), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_GT(InclusionProbability(10.0, 1.0), InclusionProbability(1.0, 1.0));
  EXPECT_NEAR(InclusionProbability(1e9, 1.0), 1.0, 1e-12);
}

TEST(EstimatorsTest, ExactWhenSampleCoversEverything) {
  // tau = 0 (the caller knows the sample covers the whole stream):
  // estimates degenerate to exact sums.
  ThresholdedSample full;
  full.tau = 0.0;
  full.top = {{Item{0, 3.0}, 5.0}, {Item{1, 7.0}, 4.0}};
  EXPECT_DOUBLE_EQ(EstimateTotalWeight(full), 10.0);
  EXPECT_DOUBLE_EQ(
      EstimateSubsetCount(full, [](const Item&) { return true; }), 2.0);
}

TEST(EstimatorsTest, TotalWeightUnbiased) {
  std::vector<double> weights;
  double truth = 0.0;
  for (int i = 0; i < 200; ++i) {
    weights.push_back(1.0 + (i * 31 % 17));
    truth += weights.back();
  }
  Summary estimates;
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    estimates.Add(EstimateTotalWeight(DrawSample(weights, 32, 500 + t)));
  }
  EXPECT_NEAR(estimates.mean(), truth,
              5.0 * estimates.stddev() / std::sqrt(trials));
  // And reasonably concentrated.
  EXPECT_LT(estimates.stddev() / truth, 0.35);
}

TEST(EstimatorsTest, SubsetSumUnbiased) {
  std::vector<double> weights;
  double even_truth = 0.0;
  for (int i = 0; i < 150; ++i) {
    weights.push_back(1.0 + (i % 9));
    if (i % 2 == 0) even_truth += weights.back();
  }
  Summary estimates;
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    const auto ts = DrawSample(weights, 24, 900 + t);
    estimates.Add(EstimateSubsetSum(
        ts, [](const Item& item) { return item.id % 2 == 0; }));
  }
  EXPECT_NEAR(estimates.mean(), even_truth,
              5.0 * estimates.stddev() / std::sqrt(trials));
}

TEST(EstimatorsTest, SubsetCountUnbiased) {
  std::vector<double> weights(100, 0.0);
  for (int i = 0; i < 100; ++i) weights[i] = (i < 10) ? 50.0 : 1.0;
  Summary estimates;
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    const auto ts = DrawSample(weights, 20, 1300 + t);
    // Count the light items (ids >= 10): truth is 90.
    estimates.Add(EstimateSubsetCount(
        ts, [](const Item& item) { return item.id >= 10; }));
  }
  EXPECT_NEAR(estimates.mean(), 90.0,
              5.0 * estimates.stddev() / std::sqrt(trials));
}

TEST(EstimatorsTest, HeavyItemsEstimatedNearExactly) {
  // Items far above tau have inclusion probability ~1 and contribute
  // their exact weight.
  std::vector<double> weights(64, 1.0);
  weights[7] = 1e6;
  const auto ts = DrawSample(weights, 16, 42);
  const double heavy = EstimateSubsetSum(
      ts, [](const Item& item) { return item.id == 7; });
  EXPECT_NEAR(heavy, 1e6, 1.0);
}

TEST(EstimatorsDeathTest, RejectsUnsortedSample) {
  std::vector<KeyedItem> bad = {{Item{0, 1.0}, 1.0}, {Item{1, 1.0}, 2.0}};
  EXPECT_DEATH(MakeThresholdedSample(bad), "descending");
}

}  // namespace
}  // namespace dwrs
