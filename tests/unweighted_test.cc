#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "stats/chi_square.h"
#include "stream/workload.h"
#include "unweighted/distributed_swor.h"
#include "unweighted/distributed_swr.h"
#include "util/math_util.h"

namespace dwrs {
namespace {

Workload UnitWorkload(int sites, uint64_t items, uint64_t seed) {
  return WorkloadBuilder()
      .num_sites(sites)
      .num_items(items)
      .seed(seed)
      .partitioner(std::make_unique<RandomPartitioner>())
      .Build();
}

TEST(UnweightedSworTest, SampleSizeIsMinTs) {
  UsworConfig config;
  config.num_sites = 4;
  config.sample_size = 10;
  DistributedUnweightedSwor swor(config);
  const Workload w = UnitWorkload(4, 25, 1);
  for (uint64_t i = 0; i < w.size(); ++i) {
    swor.Observe(w.event(i).site, w.event(i).item);
    EXPECT_EQ(swor.Sample().size(), std::min<uint64_t>(i + 1, 10));
  }
}

TEST(UnweightedSworTest, UniformInclusion) {
  const int n = 12;
  const int s = 3;
  const int trials = 15000;
  std::vector<uint64_t> counts(n, 0);
  const Workload w = UnitWorkload(3, n, 2);
  for (int t = 0; t < trials; ++t) {
    UsworConfig config;
    config.num_sites = 3;
    config.sample_size = s;
    config.seed = 10000 + static_cast<uint64_t>(t);
    DistributedUnweightedSwor swor(config);
    swor.Run(w);
    for (const Item& item : swor.Sample()) ++counts[item.id];
  }
  for (int i = 0; i < n; ++i) {
    EXPECT_GT(BinomialTwoSidedPValue(counts[i], trials,
                                     static_cast<double>(s) / n),
              1e-5)
        << "item " << i << " count " << counts[i];
  }
}

TEST(UnweightedSworTest, MessageComplexityScalesLogarithmically) {
  // Doubling n adds ~constant messages once past the warmup; messages
  // stay well under the naive "send everything" count.
  UsworConfig config;
  config.num_sites = 16;
  config.sample_size = 8;
  config.seed = 3;
  uint64_t prev_msgs = 0;
  for (uint64_t n : {2000u, 8000u, 32000u}) {
    DistributedUnweightedSwor swor(config);
    swor.Run(UnitWorkload(16, n, 4));
    const uint64_t msgs = swor.stats().total_messages();
    EXPECT_LT(msgs, n / 4) << "n=" << n;
    const double bound =
        Theorem3MessageBound(16, 8, static_cast<double>(n));
    EXPECT_LT(static_cast<double>(msgs), 25.0 * bound) << "n=" << n;
    if (prev_msgs > 0) {
      // Far from linear growth: 16x the items < 3x the messages.
      EXPECT_LT(msgs, prev_msgs * 3) << "n=" << n;
    }
    prev_msgs = msgs;
  }
}

TEST(UnweightedSworTest, ThresholdOnlyShrinks) {
  UsworConfig config;
  config.num_sites = 4;
  config.sample_size = 4;
  DistributedUnweightedSwor swor(config);
  const Workload w = UnitWorkload(4, 2000, 5);
  // The announced threshold is not directly observable step to step via
  // the facade; validate the end state instead: it dropped below 1.
  swor.Run(w);
  EXPECT_EQ(swor.Sample().size(), 4u);
}

TEST(UnweightedSworTest, WorksWithDeliveryDelay) {
  UsworConfig config;
  config.num_sites = 4;
  config.sample_size = 6;
  config.delivery_delay = 7;
  DistributedUnweightedSwor swor(config);
  swor.Run(UnitWorkload(4, 500, 6));
  EXPECT_EQ(swor.Sample().size(), 6u);
}

TEST(SlottedSwrTest, EveryRaceFilled) {
  SlottedSwrConfig config;
  config.num_sites = 4;
  config.sample_size = 9;
  config.weighted = false;
  DistributedSwr swr(config);
  swr.Run(UnitWorkload(4, 100, 7));
  EXPECT_EQ(swr.Sample().size(), 9u);
}

TEST(SlottedSwrTest, UnweightedRaceIsUniform) {
  const int n = 10;
  const int trials = 20000;
  std::vector<uint64_t> counts(n, 0);
  const Workload w = UnitWorkload(2, n, 8);
  for (int t = 0; t < trials; ++t) {
    SlottedSwrConfig config;
    config.num_sites = 2;
    config.sample_size = 1;
    config.weighted = false;
    config.seed = 20000 + static_cast<uint64_t>(t);
    DistributedSwr swr(config);
    swr.Run(w);
    ++counts[swr.Sample()[0].id];
  }
  std::vector<double> probs(n, 1.0 / n);
  const auto result = ChiSquareAgainstProbabilities(
      counts, probs, static_cast<uint64_t>(trials));
  EXPECT_GT(result.p_value, 1e-4) << "chi2=" << result.statistic;
}

TEST(SlottedSwrTest, RacesAreIndependent) {
  // With 2 races over 2 items, P(both races pick item 0) = 1/4.
  const int trials = 20000;
  int both = 0;
  const Workload w = UnitWorkload(2, 2, 9);
  for (int t = 0; t < trials; ++t) {
    SlottedSwrConfig config;
    config.num_sites = 2;
    config.sample_size = 2;
    config.weighted = false;
    config.seed = 40000 + static_cast<uint64_t>(t);
    DistributedSwr swr(config);
    swr.Run(w);
    const auto sample = swr.Sample();
    both += (sample[0].id == 0 && sample[1].id == 0);
  }
  EXPECT_GT(BinomialTwoSidedPValue(static_cast<uint64_t>(both), trials, 0.25),
            1e-4);
}

TEST(SlottedSwrTest, MessagesSublinearInStreamLength) {
  SlottedSwrConfig config;
  config.num_sites = 8;
  config.sample_size = 4;
  config.weighted = false;
  config.seed = 10;
  uint64_t prev = 0;
  for (uint64_t n : {4000u, 16000u, 64000u}) {
    DistributedSwr swr(config);
    swr.Run(UnitWorkload(8, n, 11));
    const uint64_t msgs = swr.stats().total_messages();
    EXPECT_LT(msgs, n / 2) << "n=" << n;
    if (prev > 0) {
      EXPECT_LT(msgs, prev * 3) << "n=" << n;
    }
    prev = msgs;
  }
}

}  // namespace
}  // namespace dwrs
