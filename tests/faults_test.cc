// Tests of the fault-injection subsystem (src/faults/): the seeded
// deterministic FaultSchedule, the FaultyTransport decorator, the
// seq/epoch reliability sessions, and — the headline guarantees — that
// (a) the same fault seed replays a bit-identical run on both execution
// backends, and (b) the hardened protocols under drop/duplicate/delay/
// crash-restart schedules still produce statistically exact samples, or
// a detectably degraded state; never a silently wrong sample.
//
// Run under -fsanitize=thread in CI (the engine-backed runs exercise the
// session layer from worker threads).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "durability/durable_shard.h"
#include "faults/fault_schedule.h"
#include "faults/faulty_transport.h"
#include "faults/harness.h"
#include "faults/session.h"
#include "l1/l1_tracker.h"
#include "random/rng.h"
#include "sim/message.h"
#include "sim/node.h"
#include "stream/workload.h"
#include "test_util.h"

namespace dwrs {
namespace {

using faults::Backend;
using faults::CoordinatorSession;
using faults::FaultConfig;
using faults::FaultSchedule;
using faults::FaultyL1;
using faults::FaultyTransport;
using faults::FaultyUswor;
using faults::FaultyWswor;
using faults::kSessionAck;
using faults::kSessionHello;
using faults::kSessionNack;
using faults::RunReport;
using faults::SiteSession;

// ---------------------------------------------------------------------
// Small fakes for session-layer unit tests.

struct RecordingTransport : sim::Transport {
  std::vector<std::pair<int, sim::Payload>> up;    // SendToCoordinator
  std::vector<std::pair<int, sim::Payload>> down;  // SendToSite
  void SendToCoordinator(int site, const sim::Payload& msg) override {
    up.emplace_back(site, msg);
  }
  void SendToSite(int site, const sim::Payload& msg) override {
    down.emplace_back(site, msg);
  }
  void Broadcast(const sim::Payload& msg) override {
    down.emplace_back(-1, msg);
  }
  uint64_t step() const override { return 0; }
};

struct RecordingCoordinator : sim::CoordinatorNode {
  std::vector<std::pair<int, sim::Payload>> delivered;
  void OnMessage(int site, const sim::Payload& msg) override {
    delivered.emplace_back(site, msg);
  }
};

// A site endpoint that forwards every item as one type-7 message.
struct EchoSite : sim::SiteNode {
  EchoSite(int site, sim::Transport* transport)
      : site_(site), transport_(transport) {}
  void OnItem(const Item& item) override {
    sim::Payload msg;
    msg.type = 7;
    msg.a = item.id;
    msg.x = item.weight;
    msg.words = 3;
    transport_->SendToCoordinator(site_, msg);
  }
  void OnMessage(const sim::Payload& msg) override {
    received.push_back(msg);
  }
  std::vector<sim::Payload> received;
  int site_;
  sim::Transport* transport_;
};

sim::Payload Stamped(uint32_t type, uint32_t seq, uint32_t epoch,
                     uint64_t a = 0) {
  sim::Payload msg;
  msg.type = type;
  msg.a = a;
  msg.seq = seq;
  msg.epoch = epoch;
  return msg;
}

// ---------------------------------------------------------------------
// FaultSchedule.

TEST(FaultScheduleTest, DeterministicAndSeedSensitive) {
  FaultConfig config;
  config.seed = 7;
  config.drop_prob = 0.3;
  config.duplicate_prob = 0.2;
  config.delay_prob = 0.2;
  config.max_delay = 5;
  config.crash_prob = 0.1;
  const FaultSchedule a(config);
  const FaultSchedule b(config);
  config.seed = 8;
  const FaultSchedule c(config);
  int differing = 0;
  for (uint32_t channel = 0; channel < 4; ++channel) {
    for (uint64_t index = 0; index < 200; ++index) {
      const auto fa = a.OnSend(channel, index);
      const auto fb = b.OnSend(channel, index);
      EXPECT_EQ(fa.drop, fb.drop);
      EXPECT_EQ(fa.duplicate, fb.duplicate);
      EXPECT_EQ(fa.delay, fb.delay);
      EXPECT_EQ(a.CrashesAt(static_cast<int>(channel), index),
                b.CrashesAt(static_cast<int>(channel), index));
      const auto fc = c.OnSend(channel, index);
      if (fa.drop != fc.drop || fa.delay != fc.delay) ++differing;
    }
  }
  EXPECT_GT(differing, 50);  // a different seed is a different schedule
}

TEST(FaultScheduleTest, ProbabilitiesRealized) {
  FaultConfig config;
  config.seed = 12;
  config.drop_prob = 0.25;
  const FaultSchedule schedule(config);
  uint64_t drops = 0;
  const uint64_t n = 40000;
  for (uint64_t i = 0; i < n; ++i) {
    if (schedule.OnSend(0, i).drop) ++drops;
  }
  const double rate = static_cast<double>(drops) / static_cast<double>(n);
  EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(FaultScheduleTest, ZeroProbabilitiesAreFaultFree) {
  const FaultSchedule schedule(FaultConfig{});
  for (uint64_t i = 0; i < 1000; ++i) {
    const auto f = schedule.OnSend(3, i);
    EXPECT_FALSE(f.drop);
    EXPECT_FALSE(f.duplicate);
    EXPECT_EQ(f.delay, 0);
    EXPECT_FALSE(schedule.CrashesAt(0, i));
  }
}

// ---------------------------------------------------------------------
// FaultyTransport.

TEST(FaultyTransportTest, NoFaultsPassThrough) {
  RecordingTransport inner;
  const FaultSchedule schedule(FaultConfig{});
  FaultyTransport faulty(&inner, &schedule, 2);
  faulty.SendToCoordinator(0, Stamped(1, 1, 0));
  faulty.SendToSite(1, Stamped(2, 1, 0));
  faulty.Broadcast(Stamped(3, 2, 0));
  EXPECT_EQ(inner.up.size(), 1u);
  // Broadcast decomposes into per-site sends under the fault model.
  EXPECT_EQ(inner.down.size(), 3u);
  EXPECT_EQ(faulty.counters().forwarded.load(), 4u);
  EXPECT_EQ(faulty.counters().dropped.load(), 0u);
}

TEST(FaultyTransportTest, DropEverythingUpstreamOnly) {
  RecordingTransport inner;
  FaultConfig config;
  config.drop_prob = 1.0;
  config.fault_downstream = false;
  const FaultSchedule schedule(config);
  FaultyTransport faulty(&inner, &schedule, 2);
  for (int i = 0; i < 10; ++i) faulty.SendToCoordinator(0, Stamped(1, 1, 0));
  faulty.SendToSite(0, Stamped(2, 1, 0));
  EXPECT_TRUE(inner.up.empty());
  EXPECT_EQ(inner.down.size(), 1u);
  EXPECT_EQ(faulty.counters().dropped.load(), 10u);
}

TEST(FaultyTransportTest, DelayedMessagesReleasedInOrderAndOnFlush) {
  RecordingTransport inner;
  FaultConfig config;
  config.delay_prob = 1.0;
  config.max_delay = 1;  // every message overtaken by exactly nothing:
                         // held one send, so order is preserved shifted
  const FaultSchedule schedule(config);
  FaultyTransport faulty(&inner, &schedule, 1);
  for (uint32_t i = 1; i <= 3; ++i) {
    faulty.SendToCoordinator(0, Stamped(1, i, 0));
  }
  // msg1 released during send of msg2, msg2 during send of msg3.
  ASSERT_EQ(inner.up.size(), 2u);
  EXPECT_EQ(inner.up[0].second.seq, 1u);
  EXPECT_EQ(inner.up[1].second.seq, 2u);
  faulty.FlushDelayed();
  ASSERT_EQ(inner.up.size(), 3u);
  EXPECT_EQ(inner.up[2].second.seq, 3u);
  EXPECT_EQ(faulty.counters().delayed.load(), 3u);
}

TEST(FaultyTransportTest, DisabledTransportIsTransparent) {
  RecordingTransport inner;
  FaultConfig config;
  config.drop_prob = 1.0;
  const FaultSchedule schedule(config);
  FaultyTransport faulty(&inner, &schedule, 1);
  faulty.set_enabled(false);
  for (int i = 0; i < 5; ++i) faulty.SendToCoordinator(0, Stamped(1, 1, 0));
  EXPECT_EQ(inner.up.size(), 5u);
}

// ---------------------------------------------------------------------
// CoordinatorSession.

TEST(CoordinatorSessionTest, InOrderDeliveryWithCumulativeAcks) {
  RecordingTransport lower;
  RecordingCoordinator inner;
  CoordinatorSession session(2, &inner, &lower, nullptr);
  session.OnMessage(0, Stamped(7, 1, 0, 100));
  session.OnMessage(0, Stamped(7, 2, 0, 101));
  session.OnMessage(1, Stamped(7, 1, 0, 200));
  ASSERT_EQ(inner.delivered.size(), 3u);
  EXPECT_EQ(inner.delivered[0].second.a, 100u);
  EXPECT_EQ(inner.delivered[2].first, 1);
  ASSERT_EQ(lower.down.size(), 3u);
  EXPECT_EQ(lower.down[1].second.type, static_cast<uint32_t>(kSessionAck));
  EXPECT_EQ(lower.down[1].second.a, 2u);  // cumulative
  EXPECT_EQ(session.delivered(), 3u);
  EXPECT_TRUE(session.AllGapsResolved());
}

TEST(CoordinatorSessionTest, DuplicatesSuppressedAndReAcked) {
  RecordingTransport lower;
  RecordingCoordinator inner;
  CoordinatorSession session(1, &inner, &lower, nullptr);
  session.OnMessage(0, Stamped(7, 1, 0));
  session.OnMessage(0, Stamped(7, 1, 0));  // network duplicate
  EXPECT_EQ(inner.delivered.size(), 1u);
  EXPECT_EQ(session.duplicates_dropped(), 1u);
  // Both the delivery and the duplicate draw an ack.
  EXPECT_EQ(lower.down.size(), 2u);
  EXPECT_EQ(lower.down[1].second.a, 1u);
}

TEST(CoordinatorSessionTest, GapNackedOncePerPositionThenRecovered) {
  RecordingTransport lower;
  RecordingCoordinator inner;
  CoordinatorSession session(1, &inner, &lower, nullptr);
  session.OnMessage(0, Stamped(7, 1, 0));
  session.OnMessage(0, Stamped(7, 3, 0));  // 2 missing
  session.OnMessage(0, Stamped(7, 4, 0));  // still missing: no second nack
  EXPECT_EQ(session.gaps_detected(), 2u);
  EXPECT_EQ(session.nacks_sent(), 1u);
  EXPECT_FALSE(session.AllGapsResolved());
  int nacks = 0;
  for (const auto& [site, msg] : lower.down) {
    if (msg.type == kSessionNack) {
      ++nacks;
      EXPECT_EQ(msg.a, 2u);
    }
  }
  EXPECT_EQ(nacks, 1);
  // Go-back-N retransmission arrives: 2, 3, 4 in order.
  session.OnMessage(0, Stamped(7, 2, 0));
  session.OnMessage(0, Stamped(7, 3, 0));
  session.OnMessage(0, Stamped(7, 4, 0));
  EXPECT_EQ(inner.delivered.size(), 4u);
  EXPECT_TRUE(session.AllGapsResolved());
}

TEST(CoordinatorSessionTest, EpochBumpDetectsCrashAndResyncs) {
  RecordingTransport lower;
  RecordingCoordinator inner;
  int resync_calls = 0;
  CoordinatorSession session(1, &inner, &lower, [&resync_calls] {
    ++resync_calls;
    sim::Payload state;
    state.type = 4;
    state.x = 8.0;
    return std::vector<sim::Payload>{state};
  });
  session.OnMessage(0, Stamped(7, 1, 0));
  session.OnMessage(0, Stamped(kSessionHello, 1, 1));
  EXPECT_EQ(session.crash_detections(), 1u);
  EXPECT_EQ(resync_calls, 1);
  EXPECT_EQ(session.resyncs_sent(), 1u);
  // The hello is session-internal: not handed to the protocol endpoint.
  EXPECT_EQ(inner.delivered.size(), 1u);
  // Leftover traffic from the dead incarnation is dropped.
  session.OnMessage(0, Stamped(7, 2, 0));
  EXPECT_EQ(session.stale_epoch_dropped(), 1u);
  EXPECT_EQ(inner.delivered.size(), 1u);
  // Post-restart traffic flows normally.
  session.OnMessage(0, Stamped(7, 2, 1, 300));
  EXPECT_EQ(inner.delivered.size(), 2u);
  EXPECT_EQ(inner.delivered[1].second.a, 300u);
}

TEST(CoordinatorSessionTest, ImplicitHelloWhenHelloLost) {
  RecordingTransport lower;
  RecordingCoordinator inner;
  CoordinatorSession session(1, &inner, &lower, nullptr);
  // First thing seen from the site is a post-restart message with seq 2
  // (the hello with seq 1 was dropped): the epoch bump itself announces
  // the restart, and the gap machinery recovers the hello.
  session.OnMessage(0, Stamped(7, 2, 1));
  EXPECT_EQ(session.crash_detections(), 1u);
  EXPECT_EQ(session.gaps_detected(), 1u);
  EXPECT_EQ(session.nacks_sent(), 1u);
  session.OnMessage(0, Stamped(kSessionHello, 1, 1));
  session.OnMessage(0, Stamped(7, 2, 1));
  EXPECT_EQ(inner.delivered.size(), 1u);
  EXPECT_TRUE(session.AllGapsResolved());
}

// ---------------------------------------------------------------------
// SiteSession.

TEST(SiteSessionTest, StampsMonotonicallyAndClearsOnAck) {
  RecordingTransport lower;
  const FaultSchedule schedule(FaultConfig{});
  SiteSession session(0, &lower, &schedule,
                      [](sim::Transport* upper, uint32_t) {
                        return std::make_unique<EchoSite>(0, upper);
                      });
  session.OnItem(Item{10, 1.0});
  session.OnItem(Item{11, 2.0});
  ASSERT_EQ(lower.up.size(), 2u);
  EXPECT_EQ(lower.up[0].second.seq, 1u);
  EXPECT_EQ(lower.up[1].second.seq, 2u);
  EXPECT_EQ(lower.up[0].second.epoch, 0u);
  EXPECT_EQ(session.unacked_size(), 2u);
  session.OnMessage(Stamped(kSessionAck, 0, 0, /*a=*/1));
  EXPECT_EQ(session.unacked_size(), 1u);
  session.OnMessage(Stamped(kSessionAck, 0, 0, /*a=*/2));
  EXPECT_EQ(session.unacked_size(), 0u);
}

TEST(SiteSessionTest, NackTriggersByteIdenticalGoBackN) {
  RecordingTransport lower;
  const FaultSchedule schedule(FaultConfig{});
  SiteSession session(0, &lower, &schedule,
                      [](sim::Transport* upper, uint32_t) {
                        return std::make_unique<EchoSite>(0, upper);
                      });
  for (uint64_t i = 0; i < 4; ++i) session.OnItem(Item{i, 1.0});
  lower.up.clear();
  session.OnMessage(Stamped(kSessionNack, 0, 0, /*a=*/2));
  // Replay is deferred to the site's own next step (see session.h), so
  // the nack alone sends nothing.
  EXPECT_TRUE(session.retransmit_pending());
  EXPECT_TRUE(lower.up.empty());
  session.OnItem(Item{4, 1.0});
  ASSERT_EQ(lower.up.size(), 4u);  // 2, 3, 4 replayed, then the new 5
  EXPECT_EQ(lower.up[0].second.seq, 2u);
  EXPECT_EQ(lower.up[0].second.a, 1u);  // same payload bytes
  EXPECT_EQ(lower.up[2].second.seq, 4u);
  EXPECT_EQ(lower.up[3].second.seq, 5u);
  EXPECT_FALSE(session.retransmit_pending());
}

TEST(SiteSessionTest, CrashWipesStateAndRestartBumpsEpoch) {
  RecordingTransport lower;
  FaultConfig config;
  config.seed = 3;
  config.crash_prob = 1.0;  // crash on the very first arrival
  config.crash_down_items = 2;
  const FaultSchedule schedule(config);
  SiteSession session(0, &lower, &schedule,
                      [](sim::Transport* upper, uint32_t) {
                        return std::make_unique<EchoSite>(0, upper);
                      });
  session.OnItem(Item{0, 1.0});  // crash; lost
  EXPECT_TRUE(session.down());
  EXPECT_EQ(session.crashes(), 1u);
  session.OnMessage(Stamped(4, 1, 0));  // dead processes drop mail
  EXPECT_EQ(session.messages_dropped_down(), 1u);
  session.OnItem(Item{1, 1.0});  // lost; down window ends; restart
  EXPECT_FALSE(session.down());
  EXPECT_EQ(session.epoch(), 1u);
  EXPECT_EQ(session.items_lost(), 2u);
  // The restart announces itself: a stamped hello, seq 1 of epoch 1.
  ASSERT_EQ(lower.up.size(), 1u);
  EXPECT_EQ(lower.up[0].second.type, static_cast<uint32_t>(kSessionHello));
  EXPECT_EQ(lower.up[0].second.seq, 1u);
  EXPECT_EQ(lower.up[0].second.epoch, 1u);
}

// ---------------------------------------------------------------------
// Seed-sweep determinism + cross-backend bit-identity.

Workload SmallWeighted(const std::vector<double>& weights, int sites,
                       uint64_t seed) {
  std::vector<WorkloadEvent> events;
  Rng rng(seed);
  for (uint64_t i = 0; i < weights.size(); ++i) {
    events.push_back(WorkloadEvent{
        static_cast<int>(rng.NextBounded(static_cast<uint64_t>(sites))),
        Item{i, weights[i]}});
  }
  return Workload(sites, std::move(events));
}

Workload SweepWorkload(int k, uint64_t n, uint64_t seed) {
  return WorkloadBuilder()
      .num_sites(k)
      .num_items(n)
      .seed(seed)
      .weights(std::make_unique<UniformWeights>(1.0, 32.0))
      .partitioner(std::make_unique<RandomPartitioner>())
      .Build();
}

// A mixed fault schedule whose intensities vary with the seed, so the
// sweep covers drop-heavy, delay-heavy, and crashy regimes.
FaultConfig MixedFaults(uint64_t fault_seed) {
  FaultConfig config;
  config.seed = fault_seed;
  config.drop_prob = 0.05 + 0.05 * static_cast<double>(fault_seed % 3);
  config.duplicate_prob = 0.05 * static_cast<double>(fault_seed % 2);
  config.delay_prob = 0.10;
  config.max_delay = 3;
  config.crash_prob = (fault_seed % 4 == 0) ? 0.01 : 0.0;
  config.crash_down_items = 5;
  return config;
}

struct Transcript {
  uint64_t hash = 0;
  uint64_t delivered = 0;
  std::vector<uint64_t> sample;
  uint64_t crashes = 0;
  uint64_t lost_unacked = 0;
};

template <typename Harness, typename Config>
Transcript RunOnce(const Config& config, const FaultConfig& fault_config,
                   const Workload& workload, Backend backend) {
  Harness run(config, fault_config, backend);
  run.Run(workload);
  const RunReport report = run.report();
  return Transcript{report.transcript_hash, report.delivered,
                    run.SampleIds(), report.crashes, report.lost_unacked};
}

void ExpectSameTranscript(const Transcript& a, const Transcript& b,
                          uint64_t fault_seed, const char* what) {
  EXPECT_EQ(a.hash, b.hash) << what << " fault seed " << fault_seed;
  EXPECT_EQ(a.delivered, b.delivered) << what << " fault seed " << fault_seed;
  EXPECT_EQ(a.sample, b.sample) << what << " fault seed " << fault_seed;
  EXPECT_EQ(a.crashes, b.crashes) << what << " fault seed " << fault_seed;
  EXPECT_EQ(a.lost_unacked, b.lost_unacked)
      << what << " fault seed " << fault_seed;
}

TEST(FaultSweepTest, WsworReplaysBitIdenticallyOnBothBackendsAcross50Seeds) {
  const Workload w = SweepWorkload(4, 400, /*seed=*/17);
  const WsworConfig config{.num_sites = 4, .sample_size = 8, .seed = 99};
  int runs_with_faults = 0;
  for (uint64_t fault_seed = 0; fault_seed < 50; ++fault_seed) {
    const FaultConfig fc = MixedFaults(fault_seed);
    const Transcript sim_a =
        RunOnce<FaultyWswor>(config, fc, w, Backend::kSim);
    const Transcript sim_b =
        RunOnce<FaultyWswor>(config, fc, w, Backend::kSim);
    ExpectSameTranscript(sim_a, sim_b, fault_seed, "sim replay");
    const Transcript eng =
        RunOnce<FaultyWswor>(config, fc, w, Backend::kEngine);
    ExpectSameTranscript(sim_a, eng, fault_seed, "sim vs engine");
    if (sim_a.delivered > 0) ++runs_with_faults;
    EXPECT_EQ(sim_a.sample.size(), 8u) << " fault seed " << fault_seed;
  }
  EXPECT_EQ(runs_with_faults, 50);
}

TEST(FaultSweepTest, UnweightedAndL1ReplayDeterministically) {
  const Workload w = SweepWorkload(3, 300, /*seed=*/23);
  for (uint64_t fault_seed = 100; fault_seed < 112; ++fault_seed) {
    const FaultConfig fc = MixedFaults(fault_seed);
    const UsworConfig config{.num_sites = 3, .sample_size = 6, .seed = 5};
    const Transcript sim_a =
        RunOnce<FaultyUswor>(config, fc, w, Backend::kSim);
    const Transcript sim_b =
        RunOnce<FaultyUswor>(config, fc, w, Backend::kSim);
    ExpectSameTranscript(sim_a, sim_b, fault_seed, "uswor sim replay");
    const Transcript eng =
        RunOnce<FaultyUswor>(config, fc, w, Backend::kEngine);
    ExpectSameTranscript(sim_a, eng, fault_seed, "uswor sim vs engine");
  }
  const Workload wl1 = SweepWorkload(3, 150, /*seed=*/29);
  for (uint64_t fault_seed = 200; fault_seed < 206; ++fault_seed) {
    const FaultConfig fc = MixedFaults(fault_seed);
    L1TrackerConfig config;
    config.num_sites = 3;
    config.eps = 0.3;
    config.delta = 0.2;
    config.seed = 31;
    const Transcript sim_a = RunOnce<FaultyL1>(config, fc, wl1, Backend::kSim);
    const Transcript sim_b = RunOnce<FaultyL1>(config, fc, wl1, Backend::kSim);
    ExpectSameTranscript(sim_a, sim_b, fault_seed, "l1 sim replay");
    const Transcript eng =
        RunOnce<FaultyL1>(config, fc, wl1, Backend::kEngine);
    ExpectSameTranscript(sim_a, eng, fault_seed, "l1 sim vs engine");
  }
}

// ---------------------------------------------------------------------
// Distributional exactness under faults. The reliability layer turns the
// lossy transport back into exactly-once delivery, so the sample-set
// distribution must match the exact SWOR law — verified by chi-square
// over the full set distribution, exactly as in the reliable tests.

TEST(FaultDistributionTest, WsworExactUnderDropDuplicateDelay) {
  const std::vector<double> weights = {1.0, 2.0, 4.0, 1.0, 3.0, 2.0};
  const int s = 2;
  const Workload w = SmallWeighted(weights, 3, 11);
  FaultConfig fc;
  fc.seed = 77;
  fc.drop_prob = 0.15;
  fc.duplicate_prob = 0.10;
  fc.delay_prob = 0.15;
  fc.max_delay = 3;
  uint64_t faults_seen = 0;
  const auto result = testing::SworSetGoodnessOfFit(
      weights, s, 4000, [&](int t) {
        WsworConfig config;
        config.num_sites = 3;
        config.sample_size = s;
        config.seed = 50000 + static_cast<uint64_t>(t);
        FaultConfig trial_fc = fc;
        trial_fc.seed = 77 + static_cast<uint64_t>(t % 5);
        FaultyWswor run(config, trial_fc, Backend::kSim);
        run.Run(w);
        const RunReport report = run.report();
        EXPECT_TRUE(report.clean) << " trial " << t;
        const auto& counters = run.faulty_transport().counters();
        faults_seen += counters.dropped.load() + counters.delayed.load() +
                       counters.duplicated.load();
        return run.SampleIds();
      });
  EXPECT_GT(faults_seen, 1000u);  // the schedule actually bit
  EXPECT_GT(result.p_value, 1e-4) << "chi2=" << result.statistic;
}

TEST(FaultDistributionTest, WsworExactOverSurvivorsUnderCrashRestart) {
  // Crash-only schedule: the set of items that reach a live site is a
  // pure function of (fault seed, workload), so across protocol seeds
  // the sample must be an exact SWOR over exactly those survivors.
  const std::vector<double> weights = {1.0, 2.0, 4.0, 1.0, 3.0, 2.0,
                                       5.0, 1.0, 2.0, 3.0};
  const Workload w = SmallWeighted(weights, 3, 19);
  FaultConfig fc;
  fc.seed = 47;  // chosen so the schedule loses 3 of the 10 items
  fc.crash_prob = 0.10;
  fc.crash_down_items = 2;
  const FaultSchedule schedule(fc);
  const std::vector<uint64_t> survivors =
      faults::SurvivingItemIds(w, schedule);
  ASSERT_LT(survivors.size(), weights.size());  // the schedule crashes
  ASSERT_GE(survivors.size(), 4u);
  std::map<uint64_t, uint64_t> survivor_index;
  std::vector<double> survivor_weights;
  for (uint64_t id : survivors) {
    survivor_index[id] = survivor_weights.size();
    survivor_weights.push_back(weights[id]);
  }
  const int s = 2;
  uint64_t crashes_seen = 0;
  const auto result = testing::SworSetGoodnessOfFit(
      survivor_weights, s, 4000, [&](int t) {
        WsworConfig config;
        config.num_sites = 3;
        config.sample_size = s;
        config.seed = 300000 + static_cast<uint64_t>(t);
        FaultyWswor run(config, fc, Backend::kSim);
        run.Run(w);
        const RunReport report = run.report();
        EXPECT_TRUE(report.clean) << " trial " << t;
        crashes_seen += report.crashes;
        std::vector<uint64_t> remapped;
        for (uint64_t id : run.SampleIds()) {
          auto it = survivor_index.find(id);
          // Sampling a dead site's lost item would be a silent wrong
          // answer — the exact failure mode this subsystem exists to
          // prevent.
          EXPECT_TRUE(it != survivor_index.end())
              << " sampled item " << id << " was lost in a crash";
          remapped.push_back(it->second);
        }
        return remapped;
      });
  EXPECT_GT(crashes_seen, 0u);
  EXPECT_GT(result.p_value, 1e-4) << "chi2=" << result.statistic;
}

TEST(FaultDistributionTest, UnweightedExactUnderDrops) {
  const std::vector<double> weights(6, 1.0);
  const int s = 2;
  const Workload w = SmallWeighted(weights, 3, 13);
  const auto result = testing::SworSetGoodnessOfFit(
      weights, s, 3000, [&](int t) {
        UsworConfig config;
        config.num_sites = 3;
        config.sample_size = s;
        config.seed = 70000 + static_cast<uint64_t>(t);
        FaultConfig fc;
        fc.seed = 900 + static_cast<uint64_t>(t % 7);
        fc.drop_prob = 0.2;
        fc.delay_prob = 0.1;
        fc.max_delay = 2;
        FaultyUswor run(config, fc, Backend::kSim);
        run.Run(w);
        EXPECT_TRUE(run.report().clean) << " trial " << t;
        return run.SampleIds();
      });
  EXPECT_GT(result.p_value, 1e-4) << "chi2=" << result.statistic;
}

TEST(FaultDistributionTest, L1EstimateAccurateUnderDropDuplicateDelay) {
  const int k = 4;
  const Workload w = SweepWorkload(k, 400, /*seed=*/37);
  L1TrackerConfig config;
  config.num_sites = k;
  config.eps = 0.25;
  config.delta = 0.15;
  const double true_weight = w.TotalWeight();
  std::vector<double> errors;
  for (uint64_t trial = 0; trial < 8; ++trial) {
    config.seed = 400 + trial;
    FaultConfig fc;
    fc.seed = 4000 + trial;
    fc.drop_prob = 0.15;
    fc.duplicate_prob = 0.10;
    fc.delay_prob = 0.10;
    fc.max_delay = 3;
    FaultyL1 run(config, fc, Backend::kSim);
    run.Run(w);
    ASSERT_TRUE(run.report().clean) << " trial " << trial;
    const double estimate =
        L1EstimateFromThreshold(config, run.coordinator().Threshold());
    errors.push_back(std::fabs(estimate - true_weight) / true_weight);
  }
  std::sort(errors.begin(), errors.end());
  EXPECT_LT(errors[errors.size() / 2], config.eps);    // median within eps
  EXPECT_LT(errors.back(), 2.5 * config.eps);          // all within margin
}

// ---------------------------------------------------------------------
// Never silently wrong: every run either reconstructs exactly-once
// delivery (clean) or reports which counters degraded it.

TEST(FaultRecoveryTest, CrashWithLossIsAlwaysDetectedNeverSilent) {
  const Workload w = SweepWorkload(4, 500, /*seed=*/43);
  const FaultSchedule probe(FaultConfig{});
  int clean_runs = 0, degraded_runs = 0, crashy_runs = 0;
  for (uint64_t fault_seed = 0; fault_seed < 30; ++fault_seed) {
    FaultConfig fc;
    fc.seed = fault_seed;
    fc.drop_prob = 0.15;
    fc.delay_prob = 0.10;
    fc.max_delay = 4;
    // A third of the schedules crash sites; with ~15% message drop a
    // crash almost always wipes in-flight data, so the sweep covers both
    // clean and detectably-degraded outcomes.
    fc.crash_prob = (fault_seed % 3 == 0) ? 0.02 : 0.0;
    fc.crash_down_items = 6;
    const WsworConfig config{.num_sites = 4, .sample_size = 8,
                             .seed = 7 + fault_seed};
    FaultyWswor run(config, fc, Backend::kSim);
    run.Run(w);
    const RunReport report = run.report();
    if (report.crashes > 0) ++crashy_runs;

    // The sample may never contain an item that only a dead site saw.
    const FaultSchedule schedule(fc);
    const std::vector<uint64_t> survivors =
        faults::SurvivingItemIds(w, schedule);
    const std::set<uint64_t> survivor_set(survivors.begin(), survivors.end());
    for (uint64_t id : run.SampleIds()) {
      EXPECT_TRUE(survivor_set.count(id) != 0)
          << " sampled crashed-away item " << id << " at fault seed "
          << fault_seed;
    }

    if (report.clean) {
      ++clean_runs;
      // Clean means every stamped message (hellos included) arrived, so
      // the coordinator saw every restart.
      uint64_t restarts = 0;
      for (int i = 0; i < run.num_sites(); ++i) {
        restarts += run.site_session(i).epoch();
      }
      EXPECT_EQ(report.crash_detections, restarts)
          << " at fault seed " << fault_seed;
    } else {
      ++degraded_runs;
      // Degradation is always attributable: a crash wiped in-flight data.
      EXPECT_GT(report.lost_unacked, 0u) << " at fault seed " << fault_seed;
      EXPECT_GT(report.crashes, 0u) << " at fault seed " << fault_seed;
    }
  }
  EXPECT_GT(crashy_runs, 5);
  EXPECT_GT(clean_runs, 0);
}

// ---------------------------------------------------------------------
// Process kills alongside the softer fault kinds: a 50-seed sweep in
// which shards are killed outright (recover-from-disk, durability/)
// next to sites crashing (resync-from-live-peers, this subsystem). The
// killed-and-recovered run must replay bit-identically on both
// execution backends for every seed, stay flagged-consistent, and — on
// the kill-only schedules — match the never-killed reference exactly.

FaultConfig KillSweepFaults(uint64_t fault_seed) {
  FaultConfig config;
  config.seed = fault_seed;
  config.process_kill_prob = 0.03;
  config.max_process_kills = 2;
  // Every third schedule also crashes sites, so kill→recover-from-disk
  // and crash→resync exercise the same run; the rest stay kill-only so
  // the sweep also pins exact equality with an uninterrupted run.
  config.crash_prob = (fault_seed % 3 == 0) ? 0.01 : 0.0;
  config.crash_down_items = 5;
  return config;
}

TEST(FaultSweepTest, KillAndRecoverReplaysBitIdenticallyAcross50Seeds) {
  const Workload w = SweepWorkload(3, 300, /*seed=*/23);
  const WsworConfig config{.num_sites = 3, .sample_size = 8, .seed = 77};
  const std::string root =
      ::testing::TempDir() + "dwrs_faults_kill_sweep";
  [[maybe_unused]] const int rc =
      std::system(("rm -rf '" + root + "'").c_str());
  ASSERT_TRUE(durability::EnsureDir(root));  // EnsureDir is single-level
  uint64_t killed_runs = 0;
  for (uint64_t fault_seed = 0; fault_seed < 50; ++fault_seed) {
    const FaultConfig fc = KillSweepFaults(fault_seed);
    durability::DurabilityOptions options;
    options.commit_interval_steps = 4;
    options.checkpoint_interval_steps = 32;

    options.dir = root + "/s" + std::to_string(fault_seed) + "-sim";
    durability::DurableWswor sim_run(config, fc, Backend::kSim, options);
    sim_run.Run(w);
    options.dir = root + "/s" + std::to_string(fault_seed) + "-eng";
    durability::DurableWswor eng_run(config, fc, Backend::kEngine, options);
    eng_run.Run(w);

    // Cross-backend bit identity of the killed-and-recovered runs.
    EXPECT_EQ(sim_run.Probe(), eng_run.Probe())
        << "fault seed " << fault_seed;
    const RunReport sim_report = sim_run.report();
    const RunReport eng_report = eng_run.report();
    EXPECT_EQ(sim_report.transcript_hash, eng_report.transcript_hash)
        << "fault seed " << fault_seed;
    EXPECT_EQ(sim_report.process_kills, eng_report.process_kills)
        << "fault seed " << fault_seed;
    EXPECT_EQ(sim_report.crashes, eng_report.crashes)
        << "fault seed " << fault_seed;

    // Recovery is never silently wrong: the replay cross-check holds on
    // every seed, and kill bookkeeping is coherent.
    EXPECT_TRUE(sim_report.recovery_consistent) << "seed " << fault_seed;
    EXPECT_TRUE(eng_report.recovery_consistent) << "seed " << fault_seed;
    // A kill that lands before anything is durable re-runs from genesis
    // rather than recovering, so recoveries can trail kills — but never
    // exceed them, and both backends must agree.
    EXPECT_LE(sim_report.recoveries, sim_report.process_kills);
    EXPECT_EQ(sim_report.recoveries, eng_report.recoveries)
        << "fault seed " << fault_seed;
    killed_runs += sim_report.process_kills > 0 ? 1 : 0;

    if (fc.crash_prob == 0.0) {
      // Kill-only: recover-from-disk must be invisible in the final
      // state — identical to a run that was never killed.
      FaultConfig none;
      none.seed = fault_seed;
      FaultyWswor reference(config, none, Backend::kSim);
      reference.Run(w);
      EXPECT_EQ(sim_run.SampleIds(), reference.SampleIds())
          << "fault seed " << fault_seed;
      EXPECT_EQ(sim_report.transcript_hash,
                reference.report().transcript_hash)
          << "fault seed " << fault_seed;
      EXPECT_TRUE(sim_report.clean) << "fault seed " << fault_seed;
    }
  }
  // The sweep must actually exercise the kill path, not skate past it.
  EXPECT_GT(killed_runs, 25u);
  [[maybe_unused]] const int rc2 =
      std::system(("rm -rf '" + root + "'").c_str());
}

TEST(FaultRecoveryTest, RestartedSiteIsResynced) {
  // A long-ish stream with crashes after the threshold is announced: the
  // coordinator must replay filter state to reborn sites.
  const Workload w = SweepWorkload(4, 800, /*seed=*/53);
  FaultConfig fc;
  fc.seed = 6;
  fc.crash_prob = 0.01;
  fc.crash_down_items = 4;
  const WsworConfig config{.num_sites = 4, .sample_size = 8, .seed = 3};
  FaultyWswor run(config, fc, Backend::kSim);
  run.Run(w);
  const RunReport report = run.report();
  ASSERT_GT(report.crashes, 0u);
  EXPECT_GT(report.crash_detections, 0u);
  EXPECT_GT(report.resyncs_sent, 0u);
  EXPECT_TRUE(report.clean);
  EXPECT_EQ(run.SampleIds().size(), 8u);
}

}  // namespace
}  // namespace dwrs
