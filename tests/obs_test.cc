// Observability layer tests: the unified snapshot schema is bit-exact
// against the legacy counter structs at quiesce, the registry's
// instruments and collectors export through the same path, the flight
// recorder's rings wrap without losing the newest events, the
// step-synchronous canonical event transcript is deterministic per seed
// across the sim and engine backends, concurrent tracing from every
// engine thread is race-free (this file runs under TSan in CI), the
// disabled path makes no allocations, and the acceptance scenario — a
// seeded faulty sharded run — yields a trace whose per-message
// causality and event counts reconcile with the RunReport.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <new>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "gtest/gtest.h"
#include "core/sharded_sampler.h"
#include "engine/sharded_engine.h"
#include "faults/harness.h"
#include "obs/metrics.h"
#include "obs/schema.h"
#include "obs/trace.h"
#include "query/live.h"
#include "query/query_service.h"
#include "core/sampler.h"
#include "random/rng.h"
#include "stream/workload.h"
#include "test_util.h"

// --- allocation counter for the disabled-cost test --------------------
// Overriding global new/delete counts every heap allocation in the
// process; tests read the counter delta around the region under test
// (single-threaded there, so the relaxed counter is exact).
//
// GCC's mismatched-new-delete analysis treats the counting operator new
// as an unknown allocator and flags every inlined delete, although both
// sides consistently end in malloc/free.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }

namespace dwrs {
namespace {

using engine::Engine;
using engine::EngineConfig;
using engine::ShardedEngine;
using engine::ShardedEngineConfig;
using faults::Backend;
using faults::FaultConfig;
using faults::FaultyWswor;
using faults::RunReport;
using faults::ShardedFaultyWswor;
using obs::EventType;
using obs::FlightRecorder;
using obs::Snapshot;
using obs::TraceEvent;
using query::LiveShardPublishers;
using query::QueryService;

Workload UniformWorkload(int k, uint64_t n, uint64_t seed) {
  return WorkloadBuilder()
      .num_sites(k)
      .num_items(n)
      .seed(seed)
      .weights(std::make_unique<UniformWeights>(1.0, 16.0))
      .partitioner(std::make_unique<RandomPartitioner>())
      .Build();
}

uint64_t Uint(const Snapshot& snap, const std::string& name) {
  const obs::SnapshotValue* v = snap.Find(name);
  EXPECT_NE(v, nullptr) << name << " missing from snapshot";
  if (v == nullptr) return ~uint64_t{0};
  EXPECT_EQ(v->kind, obs::SnapshotValue::Kind::kUint) << name;
  return v->u;
}

// ---------------------------------------------------------------------
// Snapshot schema: bit-equal against the legacy counter structs.

TEST(SchemaTest, MessageStatsSnapshotIsBitEqual) {
  DistributedWswor sampler(
      WsworConfig{.num_sites = 8, .sample_size = 16, .seed = 3});
  sampler.Run(UniformWorkload(8, 20000, /*seed=*/5));
  const sim::MessageStats& stats = sampler.stats();

  Snapshot snap;
  AppendMessageStats(stats, "", &snap);
  EXPECT_EQ(Uint(snap, "messages"), stats.total_messages());
  EXPECT_EQ(Uint(snap, "site_to_coord"), stats.site_to_coord);
  EXPECT_EQ(Uint(snap, "coord_to_site"), stats.coord_to_site);
  EXPECT_EQ(Uint(snap, "broadcast_events"), stats.broadcast_events);
  EXPECT_EQ(Uint(snap, "words"), stats.words);
  for (size_t i = 0; i < stats.by_type.size(); ++i) {
    if (stats.by_type[i] == 0) continue;
    EXPECT_EQ(Uint(snap, "by_type/" + std::to_string(i)), stats.by_type[i]);
  }
  // The legacy ToString is the snapshot's text rendering — one schema,
  // zero drift.
  EXPECT_EQ(stats.ToString(), snap.ToText());
}

TEST(SchemaTest, EngineStatsSnapshotIsBitEqualAtQuiesce) {
  const WsworConfig config{.num_sites = 4, .sample_size = 8, .seed = 11};
  Rng master(config.seed);
  std::vector<std::unique_ptr<WsworSite>> sites;
  std::unique_ptr<WsworCoordinator> coordinator;
  Engine eng(EngineConfig{.num_sites = 4});
  for (int i = 0; i < config.num_sites; ++i) {
    sites.push_back(std::make_unique<WsworSite>(config, i, &eng.transport(),
                                                master.NextU64()));
    eng.AttachSite(i, sites.back().get());
  }
  coordinator = std::make_unique<WsworCoordinator>(config, &eng.transport(),
                                                   master.NextU64());
  eng.AttachCoordinator(coordinator.get());
  eng.Run(UniformWorkload(4, 30000, /*seed=*/13));  // ends quiescent

  const engine::EngineStats& stats = eng.stats();
  Snapshot snap;
  AppendEngineStats(stats, "engine", &snap);
  const auto get = [](const std::atomic<uint64_t>& v) {
    return v.load(std::memory_order_relaxed);
  };
  EXPECT_EQ(Uint(snap, "engine/messages"), stats.total_messages());
  EXPECT_EQ(Uint(snap, "engine/site_to_coord"), get(stats.site_to_coord));
  EXPECT_EQ(Uint(snap, "engine/words"), get(stats.words));
  EXPECT_EQ(Uint(snap, "engine/items_ingested"), get(stats.items_ingested));
  EXPECT_EQ(Uint(snap, "engine/batches_ingested"),
            get(stats.batches_ingested));
  EXPECT_EQ(Uint(snap, "engine/quiesces"), get(stats.quiesces));
  EXPECT_EQ(Uint(snap, "engine/keys_decided"), get(stats.keys_decided));
  EXPECT_EQ(get(stats.items_ingested), 30000u);

  // Registry collector path: identical entries, just collected through
  // Registry::Collect.
  obs::Registry registry;
  registry.AddCollector([&stats](Snapshot* out) {
    AppendEngineStats(stats, "engine", out);
  });
  const Snapshot collected = registry.Collect();
  ASSERT_EQ(collected.entries().size(), snap.entries().size());
  for (size_t i = 0; i < snap.entries().size(); ++i) {
    EXPECT_EQ(collected.entries()[i].first, snap.entries()[i].first);
    EXPECT_EQ(collected.entries()[i].second.u, snap.entries()[i].second.u);
  }
  // ToString routes through the same schema with no prefix.
  Snapshot bare;
  AppendEngineStats(stats, "", &bare);
  EXPECT_EQ(stats.ToString(), bare.ToText());
}

TEST(SchemaTest, QueryServiceStatsSnapshotIsBitEqual) {
  query::SnapshotPublisher publisher;
  query::ShardSnapshot snap_in;
  snap_in.state_version = 1;
  snap_in.sample.kind = SampleKind::kTopKey;
  snap_in.sample.target_size = 2;
  publisher.Publish(std::move(snap_in));

  QueryService service({&publisher});
  (void)service.QueryShared();  // miss, fills the merge cache
  (void)service.QueryShared();  // hit
  (void)service.Query(query::QueryOptions{
      .min_version = 99, .max_staleness = std::chrono::nanoseconds{0}});

  const query::QueryServiceStats stats = service.stats();
  Snapshot snap;
  AppendQueryServiceStats(stats, "query", &snap);
  EXPECT_EQ(Uint(snap, "query/cache_hits"), stats.cache_hits);
  EXPECT_EQ(Uint(snap, "query/cache_misses"), stats.cache_misses);
  EXPECT_EQ(Uint(snap, "query/cache_invalidations"),
            stats.cache_invalidations);
  EXPECT_EQ(Uint(snap, "query/snapshot_copies_avoided"),
            stats.snapshot_copies_avoided);
  EXPECT_EQ(Uint(snap, "query/slo_waits"), stats.slo_waits);
  EXPECT_EQ(Uint(snap, "query/slo_timeouts"), stats.slo_timeouts);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.snapshot_copies_avoided, 1u);
  EXPECT_EQ(stats.slo_timeouts, 1u);
}

TEST(RegistryTest, HandlesAreIdempotentAndHistogramQuantilesOrder) {
  obs::Registry registry;
  obs::Counter* c = registry.GetCounter("query/served");
  EXPECT_EQ(c, registry.GetCounter("query/served"));
  c->Inc(41);
  c->Inc();
  registry.GetGauge("engine/threshold")->Set(0.25);
  obs::LatencyHistogram* h =
      registry.GetHistogram("query/latency_us", 0.1, 1e6, 48);
  EXPECT_EQ(h, registry.GetHistogram("query/latency_us"));
  for (int i = 1; i <= 1000; ++i) h->Record(static_cast<double>(i));
  EXPECT_EQ(h->count(), 1000u);
  EXPECT_LE(h->Quantile(0.5), h->Quantile(0.99));

  const Snapshot snap = registry.Collect();
  EXPECT_EQ(Uint(snap, "query/served"), 42u);
  const obs::SnapshotValue* gauge = snap.Find("engine/threshold");
  ASSERT_NE(gauge, nullptr);
  EXPECT_DOUBLE_EQ(gauge->d, 0.25);
  EXPECT_EQ(Uint(snap, "query/latency_us/count"), 1000u);
  EXPECT_NE(snap.ToJson().find("\"query/served\": 42"), std::string::npos);
}

// ---------------------------------------------------------------------
// Flight recorder mechanics.

TEST(FlightRecorderTest, RingWraparoundKeepsNewestAndCountsDropped) {
  FlightRecorder& recorder = FlightRecorder::Get();
  recorder.Enable(/*ring_capacity=*/16, /*deterministic=*/true);
  if (!obs::TracingEnabled()) GTEST_SKIP() << "tracing compiled out";
  for (uint64_t i = 0; i < 100; ++i) {
    TraceEvent event;
    event.type = EventType::kItemSpan;
    event.a = i;
    obs::Emit(event);
  }
  recorder.Disable();
  const std::vector<TraceEvent> events = recorder.Collect();
  ASSERT_EQ(events.size(), 16u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, 84 + i);  // oldest surviving first
  }
  EXPECT_EQ(recorder.dropped(), 84u);
  EXPECT_EQ(recorder.ring_count(), 1u);
}

TEST(FlightRecorderTest, ChromeExportIsValidJsonShape) {
  FlightRecorder& recorder = FlightRecorder::Get();
  recorder.Enable(/*ring_capacity=*/64, /*deterministic=*/true);
  if (!obs::TracingEnabled()) GTEST_SKIP() << "tracing compiled out";
  TraceEvent span;
  span.type = EventType::kQueryServe;
  span.dur_ns = 1500;
  obs::Emit(span);
  TraceEvent instant;
  instant.type = EventType::kMsgSend;
  instant.seq = 7;
  obs::Emit(instant);
  recorder.Disable();
  const std::string json = recorder.ExportChromeTrace();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"query_serve\", \"ph\": \"X\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\": \"msg_send\", \"ph\": \"i\""),
            std::string::npos);
  EXPECT_NE(json.find("\"seq\": 7"), std::string::npos);
}

TEST(FlightRecorderTest, DisabledTracingMakesNoAllocations) {
  FlightRecorder& recorder = FlightRecorder::Get();
  recorder.Enable(/*ring_capacity=*/16, /*deterministic=*/true);
  recorder.Disable();
  ASSERT_FALSE(obs::TracingEnabled());
  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    // The instrumentation idiom everywhere in the tree: guard, then
    // Emit. Disabled, neither side may touch the heap.
    if (obs::TracingEnabled()) {
      TraceEvent event;
      event.type = EventType::kItemSpan;
      obs::Emit(event);
    }
    TraceEvent event;  // and Emit's own early-out allocates nothing
    event.type = EventType::kMsgSend;
    obs::Emit(event);
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before);
}

// ---------------------------------------------------------------------
// Determinism: canonical transcript per seed, across backends.

std::vector<TraceEvent> RecordFaultyTranscript(Backend backend) {
  const WsworConfig config{.num_sites = 6, .sample_size = 8, .seed = 21};
  FaultConfig faults;
  faults.seed = 9;
  faults.drop_prob = 0.05;
  faults.duplicate_prob = 0.05;
  faults.crash_prob = 0.002;
  FlightRecorder& recorder = FlightRecorder::Get();
  recorder.Enable(/*ring_capacity=*/1 << 17, /*deterministic=*/true);
  {
    FaultyWswor run(config, faults, backend);
    run.Run(UniformWorkload(6, 8000, /*seed=*/23));
  }
  recorder.Disable();
  EXPECT_EQ(recorder.dropped(), 0u);
  return CanonicalTranscript(recorder.Collect());
}

TEST(FlightRecorderTest, CanonicalTranscriptDeterministicAcrossBackends) {
  FlightRecorder::Get().Enable(16, true);
  if (!obs::TracingEnabled()) {
    FlightRecorder::Get().Disable();
    GTEST_SKIP() << "tracing compiled out";
  }
  const std::vector<TraceEvent> sim1 = RecordFaultyTranscript(Backend::kSim);
  const std::vector<TraceEvent> sim2 = RecordFaultyTranscript(Backend::kSim);
  const std::vector<TraceEvent> eng = RecordFaultyTranscript(Backend::kEngine);
  ASSERT_FALSE(sim1.empty());
  ASSERT_EQ(sim1.size(), sim2.size());
  ASSERT_EQ(sim1.size(), eng.size());
  for (size_t i = 0; i < sim1.size(); ++i) {
    EXPECT_TRUE(CanonicalEquals(sim1[i], sim2[i])) << " position " << i;
    EXPECT_TRUE(CanonicalEquals(sim1[i], eng[i])) << " position " << i;
  }
}

// ---------------------------------------------------------------------
// Concurrent tracing: every engine thread (sites, coordinators, query
// readers) records at once. Run under TSan in CI.

TEST(FlightRecorderTest, ConcurrentEngineAndQueryTracingIsClean) {
  FlightRecorder& recorder = FlightRecorder::Get();
  recorder.Enable(/*ring_capacity=*/1 << 15, /*deterministic=*/false);
  if (!obs::TracingEnabled()) {
    recorder.Disable();
    GTEST_SKIP() << "tracing compiled out";
  }
  const int k = 8;
  WsworConfig config;
  config.num_sites = k;
  config.sample_size = 16;
  config.seed = 33;
  ShardedEngineConfig engine_config;
  engine_config.num_sites = k;
  engine_config.num_shards = 2;
  engine_config.shard.batch_size = 64;
  ShardedEngine eng(engine_config);
  const ShardedWsworEndpoints endpoints = AttachShardedWswor(config, eng);
  const std::unique_ptr<LiveShardPublishers> publishers =
      query::EnableWsworLiveQueries(eng, endpoints);
  QueryService service(publishers->views());

  std::atomic<bool> stop{false};
  std::thread reader([&service, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)service.Query();
    }
  });
  eng.Run(UniformWorkload(k, 40000, /*seed=*/35));
  stop.store(true, std::memory_order_release);
  reader.join();
  recorder.Disable();

  std::set<EventType> types;
  for (const TraceEvent& e : recorder.Collect()) types.insert(e.type);
  EXPECT_TRUE(types.count(EventType::kItemSpan));
  EXPECT_TRUE(types.count(EventType::kThresholdBump));
  EXPECT_TRUE(types.count(EventType::kSnapshotPublish));
  EXPECT_TRUE(types.count(EventType::kQueryServe));
  EXPECT_GE(recorder.ring_count(), 2u);
}

// ---------------------------------------------------------------------
// Acceptance: seeded faulty sharded run — the trace reconstructs
// per-message causality and reconciles with the RunReport.

TEST(FaultTraceAcceptanceTest, ShardedCausalityMatchesRunReport) {
  FlightRecorder& recorder = FlightRecorder::Get();
  recorder.Enable(/*ring_capacity=*/1 << 17, /*deterministic=*/false);
  if (!obs::TracingEnabled()) {
    recorder.Disable();
    GTEST_SKIP() << "tracing compiled out";
  }
  const int kShards = 4;
  const WsworConfig config{.num_sites = 8, .sample_size = 16, .seed = 41};
  std::vector<FaultConfig> shard_faults;
  for (int j = 0; j < kShards; ++j) {
    FaultConfig fc;
    fc.seed = 70 + static_cast<uint64_t>(j);
    fc.drop_prob = 0.05;
    fc.duplicate_prob = 0.05;
    fc.crash_prob = 0.002;
    shard_faults.push_back(fc);
  }
  ShardedFaultyWswor run(config, shard_faults, Backend::kEngine);
  run.Run(UniformWorkload(8, 30000, /*seed=*/43));
  const RunReport report = run.report();
  recorder.Disable();
  ASSERT_EQ(recorder.dropped(), 0u) << "grow the test's ring capacity";
  const std::vector<TraceEvent> events = recorder.Collect();

  std::map<EventType, uint64_t> counts;
  for (const TraceEvent& e : events) ++counts[e.type];
  // One trace event per counter increment: the report is reconstructible
  // from the trace alone.
  EXPECT_EQ(counts[EventType::kMsgDeliver], report.delivered);
  EXPECT_EQ(counts[EventType::kDupDrop], report.duplicates_dropped);
  EXPECT_EQ(counts[EventType::kCrash], report.crashes);
  EXPECT_EQ(counts[EventType::kEpochBump], report.crash_detections);
  EXPECT_EQ(counts[EventType::kResyncSend], report.resyncs_sent);
  EXPECT_EQ(counts[EventType::kGapNack], report.nacks_sent);
  EXPECT_EQ(counts[EventType::kRetransmit], report.retransmits_sent);
  EXPECT_EQ(counts[EventType::kStaleEpochDrop], report.stale_epoch_dropped);
  EXPECT_EQ(counts[EventType::kFaultDrop], report.faults_dropped);
  EXPECT_EQ(counts[EventType::kFaultDup], report.faults_duplicated);
  EXPECT_EQ(counts[EventType::kFaultDelay], report.faults_delayed);
  EXPECT_GT(report.crashes, 0u);
  EXPECT_GT(report.duplicates_dropped, 0u);

  // Per-message causality: every in-order delivery carries a
  // (shard, site, epoch, seq) stamp that some recorded upstream send
  // produced, and no stamp is delivered twice.
  using Stamp = std::tuple<int16_t, int16_t, uint32_t, uint32_t>;
  std::set<Stamp> sends;
  for (const TraceEvent& e : events) {
    if (e.type == EventType::kMsgSend && e.dir == 1 && e.seq > 0) {
      sends.insert({e.shard, e.site, e.epoch, e.seq});
    }
  }
  std::set<Stamp> delivered;
  for (const TraceEvent& e : events) {
    if (e.type != EventType::kMsgDeliver) continue;
    const Stamp stamp{e.shard, e.site, e.epoch, e.seq};
    EXPECT_TRUE(delivered.insert(stamp).second)
        << "stamp delivered twice: shard " << e.shard << " site " << e.site
        << " epoch " << e.epoch << " seq " << e.seq;
    if (e.seq > 0) {
      EXPECT_TRUE(sends.count(stamp))
          << "delivery without recorded send: shard " << e.shard << " site "
          << e.site << " epoch " << e.epoch << " seq " << e.seq;
    }
  }
  EXPECT_EQ(delivered.size(), report.delivered);

  // The registry export of the same report round-trips its fields.
  Snapshot snap;
  AppendFaultReport(report, "faults", &snap);
  EXPECT_EQ(Uint(snap, "faults/delivered"), report.delivered);
  EXPECT_EQ(Uint(snap, "faults/retransmits_sent"), report.retransmits_sent);
  EXPECT_EQ(Uint(snap, "faults/faults_dropped"), report.faults_dropped);
  EXPECT_EQ(Uint(snap, "faults/transcript_hash"), report.transcript_hash);
}

}  // namespace
}  // namespace dwrs
