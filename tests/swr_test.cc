#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "stats/chi_square.h"
#include "stream/workload.h"
#include "swr/distributed_weighted_swr.h"
#include "test_util.h"

namespace dwrs {
namespace {

Workload SmallWeighted(const std::vector<double>& weights, int sites,
                       uint64_t seed) {
  std::vector<WorkloadEvent> events;
  Rng rng(seed);
  for (uint64_t i = 0; i < weights.size(); ++i) {
    events.push_back(WorkloadEvent{
        static_cast<int>(rng.NextBounded(static_cast<uint64_t>(sites))),
        Item{i, weights[i]}});
  }
  return Workload(sites, std::move(events));
}

TEST(DistributedWeightedSwrTest, PerRaceWeightedDraw) {
  const std::vector<double> weights = {1.0, 2.0, 5.0, 4.0};
  const Workload w = SmallWeighted(weights, 3, 1);
  const auto result = testing::WeightedDrawGoodnessOfFit(
      weights, 25000, [&](int t) {
        DistributedWeightedSwr swr(3, 1, 50000 + static_cast<uint64_t>(t));
        swr.Run(w);
        return swr.Sample()[0].id;
      });
  EXPECT_GT(result.p_value, 1e-4) << "chi2=" << result.statistic;
}

TEST(DistributedWeightedSwrTest, MatchesCorollary1MessageShape) {
  // Messages grow ~log W for fixed k, s.
  uint64_t prev = 0;
  for (uint64_t n : {2000u, 8000u, 32000u}) {
    const Workload w = WorkloadBuilder()
                           .num_sites(8)
                           .num_items(n)
                           .seed(7)
                           .weights(std::make_unique<UniformWeights>(1.0, 9.0))
                           .integer_weights(true)
                           .Build();
    DistributedWeightedSwr swr(8, 8, 3);
    swr.Run(w);
    const uint64_t msgs = swr.stats().total_messages();
    const double bound = Corollary1MessageBound(8, 8, w.TotalWeight());
    EXPECT_LT(static_cast<double>(msgs), 25.0 * bound) << "n=" << n;
    if (prev > 0) {
      EXPECT_LT(msgs, 3 * prev);
    }
    prev = msgs;
  }
}

TEST(DistributedWeightedSwrTest, HeavyItemDominatesSample) {
  // One item with ~99% of the weight appears in almost every race —
  // the motivating failure of SWR for heavy-hitter streams (Section 1).
  const int s = 50;
  DistributedWeightedSwr swr(4, s, 5);
  Workload w = SmallWeighted({9900.0, 25.0, 25.0, 25.0, 25.0}, 4, 2);
  swr.Run(w);
  int heavy = 0;
  for (const Item& item : swr.Sample()) heavy += (item.id == 0);
  EXPECT_GT(heavy, s * 8 / 10);
  EXPECT_LT(swr.DistinctInSample(), 6u);
}

TEST(DistributedWeightedSwrTest, IntegerWeightOne) {
  // Weight-1 items reduce exactly to the unweighted sampler.
  const std::vector<double> weights(6, 1.0);
  const Workload w = SmallWeighted(weights, 2, 3);
  std::vector<uint64_t> counts(6, 0);
  const int trials = 15000;
  for (int t = 0; t < trials; ++t) {
    DistributedWeightedSwr swr(2, 1, 70000 + static_cast<uint64_t>(t));
    swr.Run(w);
    ++counts[swr.Sample()[0].id];
  }
  std::vector<double> probs(6, 1.0 / 6.0);
  EXPECT_GT(ChiSquareAgainstProbabilities(counts, probs, trials).p_value,
            1e-4);
}

TEST(DistributedWeightedSwrTest, DeliveryDelayStillCorrectSize) {
  DistributedWeightedSwr swr(4, 12, 9, /*delivery_delay=*/5);
  const Workload w = WorkloadBuilder()
                         .num_sites(4)
                         .num_items(400)
                         .seed(10)
                         .weights(std::make_unique<UniformWeights>(1.0, 4.0))
                         .integer_weights(true)
                         .Build();
  swr.Run(w);
  EXPECT_EQ(swr.Sample().size(), 12u);
}

TEST(Corollary1BoundTest, GrowsWithParameters) {
  EXPECT_LT(Corollary1MessageBound(8, 8, 1e4),
            Corollary1MessageBound(8, 8, 1e8));
  EXPECT_LT(Corollary1MessageBound(8, 8, 1e6),
            Corollary1MessageBound(8, 64, 1e6));
}

}  // namespace
}  // namespace dwrs
