#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "sim/network.h"
#include "sim/runtime.h"

namespace dwrs {
namespace {

using sim::Network;
using sim::Payload;

Payload Msg(uint32_t type, uint64_t a = 0, uint32_t words = 2) {
  Payload p;
  p.type = type;
  p.a = a;
  p.words = words;
  return p;
}

TEST(NetworkTest, CountsMessagesAndWords) {
  Network net(3);
  net.SendToCoordinator(0, Msg(1, 0, 3));
  net.SendToCoordinator(1, Msg(1, 0, 3));
  net.SendToSite(2, Msg(2, 0, 2));
  EXPECT_EQ(net.stats().site_to_coord, 2u);
  EXPECT_EQ(net.stats().coord_to_site, 1u);
  EXPECT_EQ(net.stats().words, 8u);
  EXPECT_EQ(net.stats().total_messages(), 3u);
  EXPECT_EQ(net.stats().by_type[1], 2u);
  EXPECT_EQ(net.stats().by_type[2], 1u);
}

TEST(NetworkTest, BroadcastCountsKMessages) {
  Network net(5);
  net.Broadcast(Msg(3));
  EXPECT_EQ(net.stats().coord_to_site, 5u);
  EXPECT_EQ(net.stats().broadcast_events, 1u);
}

TEST(NetworkTest, FifoPerChannelAndGlobalOrder) {
  Network net(2);
  net.SendToCoordinator(0, Msg(1, 100));
  net.SendToCoordinator(1, Msg(1, 200));
  net.SendToCoordinator(0, Msg(1, 101));
  std::vector<uint64_t> order;
  Network::Delivery d;
  while (net.PopDue(&d)) order.push_back(d.msg.a);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 100u);
  EXPECT_EQ(order[1], 200u);
  EXPECT_EQ(order[2], 101u);
}

TEST(NetworkTest, DeliveryDelayHoldsMessages) {
  Network net(1, /*delivery_delay=*/2);
  net.SendToCoordinator(0, Msg(1, 7));
  Network::Delivery d;
  EXPECT_FALSE(net.PopDue(&d));
  net.AdvanceStep();
  EXPECT_FALSE(net.PopDue(&d));
  net.AdvanceStep();
  EXPECT_TRUE(net.PopDue(&d));
  EXPECT_EQ(d.msg.a, 7u);
}

TEST(NetworkTest, ForcedPopIgnoresDelay) {
  Network net(1, /*delivery_delay=*/100);
  net.SendToSite(0, Msg(2, 9));
  Network::Delivery d;
  EXPECT_FALSE(net.PopDue(&d));
  EXPECT_TRUE(net.PopDue(&d, /*force=*/true));
  EXPECT_EQ(d.msg.a, 9u);
  EXPECT_FALSE(net.HasPending());
}

// A toy protocol: sites forward every item id; the coordinator echoes
// every 3rd message back to the sender; sites count echoes.
class EchoSite : public sim::SiteNode {
 public:
  EchoSite(int index, Network* net) : index_(index), net_(net) {}

  void OnItem(const Item& item) override {
    net_->SendToCoordinator(index_, Msg(1, item.id));
  }
  void OnMessage(const Payload& msg) override {
    EXPECT_EQ(msg.type, 2u);
    ++echoes_;
  }

  int echoes() const { return echoes_; }

 private:
  int index_;
  Network* net_;
  int echoes_ = 0;
};

class EchoCoordinator : public sim::CoordinatorNode {
 public:
  explicit EchoCoordinator(Network* net) : net_(net) {}

  void OnMessage(int site, const Payload& msg) override {
    EXPECT_EQ(msg.type, 1u);
    ++received_;
    if (received_ % 3 == 0) net_->SendToSite(site, Msg(2, msg.a));
  }

  int received() const { return received_; }

 private:
  Network* net_;
  int received_ = 0;
};

TEST(RuntimeTest, DrivesWorkloadThroughProtocol) {
  const Workload workload = WorkloadBuilder().num_sites(3).num_items(9).Build();
  sim::Runtime runtime(3);
  std::vector<std::unique_ptr<EchoSite>> sites;
  for (int i = 0; i < 3; ++i) {
    sites.push_back(std::make_unique<EchoSite>(i, &runtime.network()));
    runtime.AttachSite(i, sites[i].get());
  }
  EchoCoordinator coordinator(&runtime.network());
  runtime.AttachCoordinator(&coordinator);

  uint64_t steps_seen = 0;
  runtime.Run(workload, [&](uint64_t step) {
    EXPECT_EQ(step, steps_seen + 1);
    ++steps_seen;
  });
  EXPECT_EQ(steps_seen, 9u);
  EXPECT_EQ(coordinator.received(), 9);
  int echoes = 0;
  for (const auto& s : sites) echoes += s->echoes();
  EXPECT_EQ(echoes, 3);  // every 3rd of 9
  EXPECT_EQ(runtime.stats().site_to_coord, 9u);
  EXPECT_EQ(runtime.stats().coord_to_site, 3u);
}

TEST(RuntimeTest, DelayedDeliveryNeedsFlush) {
  const Workload workload = WorkloadBuilder().num_sites(2).num_items(4).Build();
  sim::Runtime runtime(2, /*delivery_delay=*/10);
  std::vector<std::unique_ptr<EchoSite>> sites;
  for (int i = 0; i < 2; ++i) {
    sites.push_back(std::make_unique<EchoSite>(i, &runtime.network()));
    runtime.AttachSite(i, sites[i].get());
  }
  EchoCoordinator coordinator(&runtime.network());
  runtime.AttachCoordinator(&coordinator);
  runtime.Run(workload);
  // Messages still in flight: the coordinator saw nothing yet.
  EXPECT_EQ(coordinator.received(), 0);
  runtime.Flush();
  EXPECT_EQ(coordinator.received(), 4);
}

TEST(NetworkTest, JitterPreservesPerChannelFifo) {
  Network net(2, /*delivery_delay=*/5, /*jitter_seed=*/99);
  for (uint64_t i = 0; i < 50; ++i) {
    net.SendToCoordinator(0, Msg(1, i));
    net.SendToCoordinator(1, Msg(1, 1000 + i));
    net.AdvanceStep();
  }
  for (int i = 0; i < 10; ++i) net.AdvanceStep();
  uint64_t last0 = 0, last1 = 0;
  bool first0 = true, first1 = true;
  Network::Delivery d;
  int delivered = 0;
  while (net.PopDue(&d)) {
    ++delivered;
    if (d.msg.a < 1000) {
      if (!first0) EXPECT_GT(d.msg.a, last0);
      last0 = d.msg.a;
      first0 = false;
    } else {
      if (!first1) EXPECT_GT(d.msg.a, last1);
      last1 = d.msg.a;
      first1 = false;
    }
  }
  EXPECT_EQ(delivered, 100);
}

TEST(NetworkTest, JitterVariesDelays) {
  Network net(1, /*delivery_delay=*/8, /*jitter_seed=*/5);
  // Space the sends out so the FIFO floor does not flatten the jitter.
  std::set<uint64_t> latencies;
  for (int i = 0; i < 30; ++i) {
    net.SendToCoordinator(0, Msg(1, static_cast<uint64_t>(i)));
    const uint64_t sent_at = net.step();
    Network::Delivery d;
    uint64_t waited = 0;
    while (!net.PopDue(&d)) {
      net.AdvanceStep();
      ++waited;
      ASSERT_LT(waited, 20u);
    }
    latencies.insert(net.step() - sent_at);
  }
  EXPECT_GT(latencies.size(), 2u) << "jitter should vary the delay";
}

TEST(RuntimeTest, StatsStringIsReadable) {
  Network net(2);
  net.SendToCoordinator(0, Msg(1));
  const std::string s = net.stats().ToString();
  EXPECT_NE(s.find("messages=1"), std::string::npos);
}

}  // namespace
}  // namespace dwrs
