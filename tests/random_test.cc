#include <algorithm>
#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "random/distributions.h"
#include "random/exponential_order_stats.h"
#include "random/geometric_skip.h"
#include "random/lazy_exponential.h"
#include "random/rng.h"
#include "stats/chi_square.h"
#include "stats/ks_test.h"
#include "stats/summary.h"

namespace dwrs {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.NextU64() == b.NextU64());
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(7);
  Rng b = a.Fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.NextU64() == b.NextU64());
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleOpenLeftNeverZero) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDoubleOpenLeft();
    EXPECT_GT(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
}

TEST(RngTest, NextDoubleUniformKs) {
  Rng rng(99);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.NextDouble());
  const KsResult ks = KsTest(samples, UniformCdf);
  EXPECT_GT(ks.p_value, 1e-4) << "D=" << ks.statistic;
}

TEST(RngTest, NextBoundedUniform) {
  Rng rng(17);
  const uint64_t bound = 7;
  std::vector<uint64_t> counts(bound, 0);
  const uint64_t trials = 70000;
  for (uint64_t i = 0; i < trials; ++i) ++counts[rng.NextBounded(bound)];
  std::vector<double> probs(bound, 1.0 / static_cast<double>(bound));
  const auto result = ChiSquareAgainstProbabilities(counts, probs, trials);
  EXPECT_GT(result.p_value, 1e-4);
}

TEST(RngTest, NextBoundedOne) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(ExponentialTest, MeanAndKs) {
  Rng rng(21);
  std::vector<double> samples;
  Summary summary;
  for (int i = 0; i < 30000; ++i) {
    const double x = Exponential(rng);
    EXPECT_GT(x, 0.0);
    samples.push_back(x);
    summary.Add(x);
  }
  EXPECT_NEAR(summary.mean(), 1.0, 0.03);
  EXPECT_GT(KsTest(samples, ExponentialCdf).p_value, 1e-4);
}

TEST(ExponentialTest, RateScales) {
  Rng rng(22);
  Summary summary;
  for (int i = 0; i < 20000; ++i) summary.Add(ExponentialRate(rng, 4.0));
  EXPECT_NEAR(summary.mean(), 0.25, 0.01);
}

TEST(TruncatedExponentialTest, StaysInsideBound) {
  Rng rng(23);
  for (double bound : {0.01, 0.5, 3.0, 40.0}) {
    for (int i = 0; i < 2000; ++i) {
      const double x = TruncatedExponential(rng, bound);
      EXPECT_GT(x, 0.0);
      EXPECT_LT(x, bound);
    }
  }
}

TEST(TruncatedExponentialTest, MatchesConditionalLaw) {
  Rng rng(24);
  const double bound = 1.5;
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    samples.push_back(TruncatedExponential(rng, bound));
  }
  const double denom = -std::expm1(-bound);
  const KsResult ks = KsTest(samples, [&](double x) {
    if (x <= 0.0) return 0.0;
    if (x >= bound) return 1.0;
    return -std::expm1(-x) / denom;
  });
  EXPECT_GT(ks.p_value, 1e-4);
}

TEST(GeometricTrialsTest, MeanMatches) {
  Rng rng(25);
  for (double p : {0.5, 0.1, 0.01}) {
    Summary summary;
    for (int i = 0; i < 30000; ++i) {
      summary.Add(static_cast<double>(GeometricTrials(rng, p)));
    }
    EXPECT_NEAR(summary.mean(), 1.0 / p, 4.0 * summary.stddev() / 170.0)
        << "p=" << p;
  }
}

TEST(GeometricTrialsTest, CertainSuccess) {
  Rng rng(26);
  EXPECT_EQ(GeometricTrials(rng, 1.0), 1u);
}

TEST(NormalTest, MomentsAndSymmetry) {
  Rng rng(27);
  Summary summary;
  for (int i = 0; i < 40000; ++i) summary.Add(Normal(rng));
  EXPECT_NEAR(summary.mean(), 0.0, 0.02);
  EXPECT_NEAR(summary.variance(), 1.0, 0.05);
}

TEST(GammaTest, MeanEqualsShape) {
  Rng rng(28);
  for (double shape : {0.5, 1.0, 2.5, 10.0}) {
    Summary summary;
    for (int i = 0; i < 20000; ++i) summary.Add(Gamma(rng, shape));
    EXPECT_NEAR(summary.mean(), shape, 0.05 * std::max(1.0, shape))
        << "shape=" << shape;
  }
}

TEST(BetaTest, RangeAndMean) {
  Rng rng(29);
  Summary summary;
  for (int i = 0; i < 20000; ++i) {
    const double x = Beta(rng, 3.0, 5.0);
    EXPECT_GT(x, 0.0);
    EXPECT_LT(x, 1.0);
    summary.Add(x);
  }
  EXPECT_NEAR(summary.mean(), 3.0 / 8.0, 0.01);
}

struct BinomialCase {
  uint64_t n;
  double p;
};

class BinomialTest : public ::testing::TestWithParam<BinomialCase> {};

TEST_P(BinomialTest, MeanAndVariance) {
  const auto [n, p] = GetParam();
  Rng rng(1000 + n);
  Summary summary;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const uint64_t x = Binomial(rng, n, p);
    EXPECT_LE(x, n);
    summary.Add(static_cast<double>(x));
  }
  const double mean = static_cast<double>(n) * p;
  const double var = mean * (1.0 - p);
  EXPECT_NEAR(summary.mean(), mean, 5.0 * std::sqrt(var / trials) + 1e-9)
      << "n=" << n << " p=" << p;
  if (var > 0.1) {
    EXPECT_NEAR(summary.variance(), var, 0.12 * var) << "n=" << n << " p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRegimes, BinomialTest,
    ::testing::Values(BinomialCase{1, 0.3},        // trivial
                      BinomialCase{20, 0.2},       // skip path
                      BinomialCase{50, 0.5},       // inversion path
                      BinomialCase{1000, 0.1},     // inversion path
                      BinomialCase{100000, 0.001}, // inversion (np=100)
                      BinomialCase{100000, 0.3},   // beta-split path
                      BinomialCase{1000000, 0.9},  // complement + split
                      BinomialCase{64, 0.0},       // p=0
                      BinomialCase{64, 1.0}));     // p=1

TEST(BinomialChiSquareTest, SmallCaseExactPmf) {
  Rng rng(31);
  const uint64_t n = 6;
  const double p = 0.35;
  std::vector<uint64_t> counts(n + 1, 0);
  const uint64_t trials = 60000;
  for (uint64_t i = 0; i < trials; ++i) ++counts[Binomial(rng, n, p)];
  std::vector<double> probs(n + 1);
  for (uint64_t k = 0; k <= n; ++k) {
    double c = 1.0;
    for (uint64_t j = 0; j < k; ++j) {
      c *= static_cast<double>(n - j) / static_cast<double>(j + 1);
    }
    probs[k] = c * std::pow(p, static_cast<double>(k)) *
               std::pow(1.0 - p, static_cast<double>(n - k));
  }
  const auto result = ChiSquareAgainstProbabilities(counts, probs, trials);
  EXPECT_GT(result.p_value, 1e-4) << "chi2=" << result.statistic;
}

TEST(ZipfTest, DistributionSmallN) {
  const uint64_t n = 8;
  const double alpha = 1.3;
  ZipfSampler zipf(n, alpha);
  Rng rng(33);
  std::vector<uint64_t> counts(n, 0);
  const uint64_t trials = 80000;
  for (uint64_t i = 0; i < trials; ++i) ++counts[zipf.Next(rng) - 1];
  std::vector<double> probs(n);
  double z = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    z += std::pow(static_cast<double>(i), -alpha);
  }
  for (uint64_t i = 1; i <= n; ++i) {
    probs[i - 1] = std::pow(static_cast<double>(i), -alpha) / z;
  }
  const auto result = ChiSquareAgainstProbabilities(counts, probs, trials);
  EXPECT_GT(result.p_value, 1e-4) << "chi2=" << result.statistic;
}

TEST(ZipfTest, AlphaOneSpecialCase) {
  ZipfSampler zipf(100, 1.0);
  Rng rng(34);
  Summary ranks;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t r = zipf.Next(rng);
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 100u);
    ranks.Add(static_cast<double>(r));
  }
  // Mean of Zipf(1) over [1,100] is 100/H_100 ~ 19.28.
  EXPECT_NEAR(ranks.mean(), 100.0 / 5.187377, 1.0);
}

TEST(ZipfTest, SingleRank) {
  ZipfSampler zipf(1, 2.0);
  Rng rng(35);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Next(rng), 1u);
}

TEST(MinUniformTest, ProbabilityFormula) {
  EXPECT_NEAR(MinUniformBelowProb(1.0, 0.25), 0.25, 1e-12);
  EXPECT_NEAR(MinUniformBelowProb(2.0, 0.5), 0.75, 1e-12);
  EXPECT_NEAR(MinUniformBelowProb(10.0, 1.0), 1.0, 1e-12);
  EXPECT_NEAR(MinUniformBelowProb(3.0, 0.0), 0.0, 1e-12);
  // Stable for tiny tau * large w.
  EXPECT_NEAR(MinUniformBelowProb(1e6, 1e-9), -std::expm1(1e6 * std::log1p(-1e-9)),
              1e-15);
}

TEST(MinUniformTest, TruncatedSamplesMatchLaw) {
  Rng rng(36);
  const double w = 5.0;
  const double tau = 0.3;
  const double alpha = MinUniformBelowProb(w, tau);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    const double x = TruncatedMinUniform(rng, w, tau);
    EXPECT_GT(x, 0.0);
    EXPECT_LT(x, tau);
    samples.push_back(x);
  }
  const KsResult ks = KsTest(samples, [&](double x) {
    if (x <= 0.0) return 0.0;
    if (x >= tau) return 1.0;
    return -std::expm1(w * std::log1p(-x)) / alpha;
  });
  EXPECT_GT(ks.p_value, 1e-4);
}

TEST(LazyExponentialTest, DecisionProbability) {
  Rng rng(37);
  for (double bound : {0.1, 0.7, 2.0}) {
    uint64_t below = 0;
    const uint64_t trials = 40000;
    for (uint64_t i = 0; i < trials; ++i) {
      below += DecideExponentialBelow(rng, bound).below_bound;
    }
    const double p = -std::expm1(-bound);
    EXPECT_GT(BinomialTwoSidedPValue(below, trials, p), 1e-4)
        << "bound=" << bound;
  }
}

TEST(LazyExponentialTest, ValueIsExponentialOverall) {
  Rng rng(38);
  std::vector<double> samples;
  for (int i = 0; i < 30000; ++i) {
    samples.push_back(DecideExponentialBelow(rng, 0.8).value);
  }
  EXPECT_GT(KsTest(samples, ExponentialCdf).p_value, 1e-4);
}

TEST(LazyExponentialTest, DecisionAgreesWithValue) {
  Rng rng(39);
  for (int i = 0; i < 20000; ++i) {
    const double bound = 0.01 + 3.0 * rng.NextDouble();
    const LazyExpDecision d = DecideExponentialBelow(rng, bound);
    EXPECT_EQ(d.below_bound, d.value < bound);
    EXPECT_GT(d.value, 0.0);
  }
}

TEST(LazyExponentialTest, ExpectedBitsIsConstant) {
  Rng rng(40);
  Summary bits;
  for (int i = 0; i < 20000; ++i) {
    bits.Add(DecideExponentialBelow(rng, 1.0).bits_consumed);
  }
  // Interval halves per bit: expected bits to separate from a fixed
  // threshold is exactly 2.
  EXPECT_LT(bits.mean(), 3.0);
  EXPECT_GT(bits.mean(), 1.0);
}

TEST(LazyExponentialTest, DegenerateBounds) {
  Rng rng(41);
  const auto zero = DecideExponentialBelow(rng, 0.0);
  EXPECT_FALSE(zero.below_bound);
  EXPECT_EQ(zero.bits_consumed, 0);
  const auto inf = DecideExponentialBelow(
      rng, std::numeric_limits<double>::infinity());
  EXPECT_TRUE(inf.below_bound);
}

TEST(OrderStatsTest, SmallestExponentialsAscending) {
  Rng rng(43);
  const auto xs = SmallestExponentials(rng, 100, 10);
  ASSERT_EQ(xs.size(), 10u);
  for (size_t i = 1; i < xs.size(); ++i) EXPECT_GT(xs[i], xs[i - 1]);
}

TEST(OrderStatsTest, MinimumOfNIsExponentialRateN) {
  Rng rng(44);
  const uint64_t n = 50;
  std::vector<double> mins;
  for (int i = 0; i < 20000; ++i) {
    mins.push_back(SmallestExponentials(rng, n, 1)[0] * n);
  }
  EXPECT_GT(KsTest(mins, ExponentialCdf).p_value, 1e-4);
}

TEST(OrderStatsTest, TopDuplicateKeysDescending) {
  Rng rng(45);
  const auto keys = TopDuplicateKeys(rng, 7.0, 1000, 8);
  ASSERT_EQ(keys.size(), 8u);
  for (size_t i = 1; i < keys.size(); ++i) EXPECT_LT(keys[i], keys[i - 1]);
  for (double k : keys) EXPECT_GT(k, 0.0);
}

TEST(ExactSworTest, UniformWeightsGiveUniformInclusion) {
  const std::vector<double> w(6, 2.0);
  const auto probs = ExactSworInclusionProbabilities(w, 2);
  for (double p : probs) EXPECT_NEAR(p, 2.0 / 6.0, 1e-12);
}

TEST(ExactSworTest, InclusionSumsToSampleSize) {
  const std::vector<double> w = {1.0, 5.0, 2.0, 8.0, 1.0};
  for (int s = 1; s <= 5; ++s) {
    const auto probs = ExactSworInclusionProbabilities(w, s);
    double sum = 0.0;
    for (double p : probs) sum += p;
    EXPECT_NEAR(sum, s, 1e-9) << "s=" << s;
  }
}

TEST(ExactSworTest, HandComputedTwoOfThree) {
  // Weights 1, 2, 3; s = 1: inclusion = w/6.
  const std::vector<double> w = {1.0, 2.0, 3.0};
  const auto p1 = ExactSworInclusionProbabilities(w, 1);
  EXPECT_NEAR(p1[0], 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(p1[1], 2.0 / 6.0, 1e-12);
  EXPECT_NEAR(p1[2], 3.0 / 6.0, 1e-12);
  // s = 2: P(1 excluded) = P(2 then 3) + P(3 then 2)
  //      = (2/6)(3/4) + (3/6)(2/3) = 1/4 + 1/3 = 7/12.
  const auto p2 = ExactSworInclusionProbabilities(w, 2);
  EXPECT_NEAR(p2[0], 1.0 - 7.0 / 12.0, 1e-12);
}

TEST(ExactSworTest, SampleLargerThanUniverse) {
  const std::vector<double> w = {1.0, 2.0};
  const auto probs = ExactSworInclusionProbabilities(w, 5);
  EXPECT_NEAR(probs[0], 1.0, 1e-12);
  EXPECT_NEAR(probs[1], 1.0, 1e-12);
}

TEST(ExactSworTest, SetDistributionSumsToOne) {
  const std::vector<double> w = {1.0, 4.0, 2.0, 2.0, 6.0};
  const auto sets = ExactSworSetDistribution(w, 3);
  EXPECT_EQ(sets.size(), 10u);  // C(5,3)
  double sum = 0.0;
  for (const auto& [mask, p] : sets) {
    EXPECT_EQ(__builtin_popcount(mask), 3);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(WeightedDrawTest, Normalizes) {
  const auto p = WeightedDrawProbabilities({1.0, 3.0});
  EXPECT_NEAR(p[0], 0.25, 1e-12);
  EXPECT_NEAR(p[1], 0.75, 1e-12);
}

// ---------------------------------------------------------------------------
// Geometric-skip thinning (the batched threshold-filter hot path).

TEST(GeometricSkipTest, AcceptanceProbabilityMatchesHazard) {
  Rng rng(61);
  for (double hazard : {0.05, 0.7, 2.0}) {
    GeometricSkipFilter filter;
    uint64_t accepted = 0;
    const uint64_t trials = 40000;
    for (uint64_t i = 0; i < trials; ++i) {
      accepted += filter.Admit(rng, hazard);
    }
    const double p = -std::expm1(-hazard);
    EXPECT_GT(BinomialTwoSidedPValue(accepted, trials, p), 1e-4)
        << "hazard=" << hazard;
  }
}

TEST(GeometricSkipTest, AcceptedValueHasTruncatedExponentialLaw) {
  Rng rng(62);
  GeometricSkipFilter filter;
  const double hazard = 0.8;
  const double scale = -std::expm1(-hazard);
  std::vector<double> samples;
  while (samples.size() < 20000) {
    if (filter.Admit(rng, hazard)) {
      EXPECT_GT(filter.value(), 0.0);
      EXPECT_LT(filter.value(), hazard);
      samples.push_back(filter.value());
    }
  }
  const KsResult ks = KsTest(samples, [&](double x) {
    if (x <= 0.0) return 0.0;
    if (x >= hazard) return 1.0;
    return -std::expm1(-x) / scale;
  });
  EXPECT_GT(ks.p_value, 1e-4);
}

TEST(GeometricSkipTest, MixedHazardsStayPerItemExact) {
  // A repeating hazard pattern: each position's acceptance frequency must
  // match its own probability even though all positions share one filter
  // (memorylessness of the residual budget = exact rejection correction).
  const std::vector<double> hazards = {0.02, 1.5, 0.3};
  std::vector<uint64_t> accepted(hazards.size(), 0);
  Rng rng(63);
  GeometricSkipFilter filter;
  const uint64_t rounds = 30000;
  for (uint64_t r = 0; r < rounds; ++r) {
    for (size_t i = 0; i < hazards.size(); ++i) {
      accepted[i] += filter.Admit(rng, hazards[i]);
    }
  }
  for (size_t i = 0; i < hazards.size(); ++i) {
    EXPECT_GT(BinomialTwoSidedPValue(accepted[i], rounds,
                                     -std::expm1(-hazards[i])),
              1e-4)
        << "position " << i;
  }
}

TEST(GeometricSkipTest, SkipsConsumeNoRandomness) {
  Rng rng(64);
  GeometricSkipFilter filter;
  const uint64_t decisions = 100000;
  for (uint64_t i = 0; i < decisions; ++i) {
    filter.Admit(rng, 1e-4);  // p ~ 1e-4: skips dominate
  }
  EXPECT_EQ(filter.decisions(), decisions);
  EXPECT_EQ(filter.accepts() + filter.skips_taken(), decisions);
  // One draw per accept plus at most one pending draw outstanding.
  EXPECT_LE(filter.draws(), filter.accepts() + 1);
  EXPECT_EQ(filter.bits_consumed(), filter.draws() * 64);
  EXPECT_GT(filter.skips_taken(), decisions * 99 / 100);
}

TEST(GeometricSkipTest, DegenerateHazards) {
  Rng rng(65);
  GeometricSkipFilter filter;
  EXPECT_FALSE(filter.Admit(rng, 0.0));
  EXPECT_FALSE(filter.Admit(rng, -1.0));
  EXPECT_EQ(filter.draws(), 0u);  // free rejections
  EXPECT_TRUE(
      filter.Admit(rng, std::numeric_limits<double>::infinity()));
  EXPECT_GT(filter.value(), 0.0);
}

TEST(GeometricSkipTest, ConstantHazardGapsAreGeometric) {
  // With equal hazards the distance between accepts is Geometric(p):
  // check the mean matches 1/p (the literal "skip length" of the name).
  Rng rng(66);
  GeometricSkipFilter filter;
  const double hazard = 0.1;
  const double p = -std::expm1(-hazard);
  const uint64_t accept_target = 20000;
  uint64_t decisions = 0;
  uint64_t accepted = 0;
  while (accepted < accept_target) {
    ++decisions;
    accepted += filter.Admit(rng, hazard);
  }
  const double mean_gap =
      static_cast<double>(decisions) / static_cast<double>(accept_target);
  EXPECT_NEAR(mean_gap, 1.0 / p, 0.05 * (1.0 / p));
}

}  // namespace
}  // namespace dwrs
