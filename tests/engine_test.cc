// Tests of the concurrent execution engine (src/engine/): channel
// primitives, exact step-synchronous equivalence with sim::Runtime for
// the weighted SWOR / naive / unweighted protocols, distributional
// correctness in full throughput mode (chi-square over sample sets, KS
// over the max key), and backpressure under the adversarial single-hot-
// site stream. The whole file is run under -fsanitize=thread in CI.

#include <algorithm>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "core/naive.h"
#include "core/sampler.h"
#include "engine/channels.h"
#include "engine/engine.h"
#include "stats/ks_test.h"
#include "stream/workload.h"
#include "test_util.h"
#include "unweighted/distributed_swor.h"

namespace dwrs {
namespace {

using engine::Channel;
using engine::Engine;
using engine::EngineConfig;
using engine::SpscRing;

// ---------------------------------------------------------------------
// Channel primitives.

TEST(SpscRingTest, FifoOrderAndCapacity) {
  SpscRing<int> ring(3);  // rounds up to 4
  EXPECT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 4; ++i) {
    int v = i;
    EXPECT_TRUE(ring.TryPush(v));
  }
  int v = 99;
  EXPECT_FALSE(ring.TryPush(v));
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.TryPop(&out));
  EXPECT_TRUE(ring.Empty());
}

TEST(SpscRingTest, ConcurrentTransferPreservesSequence) {
  constexpr int kCount = 100000;
  SpscRing<int> ring(8);
  std::thread producer([&ring] {
    for (int i = 0; i < kCount; ++i) {
      int v = i;
      while (!ring.TryPush(v)) std::this_thread::yield();
    }
  });
  long long sum = 0;
  for (int i = 0; i < kCount; ++i) {
    int out = -1;
    while (!ring.TryPop(&out)) std::this_thread::yield();
    ASSERT_EQ(out, i);
    sum += out;
  }
  producer.join();
  EXPECT_EQ(sum, static_cast<long long>(kCount) * (kCount - 1) / 2);
}

TEST(ChannelTest, BoundedChannelTransfersUnderContention) {
  constexpr int kPerProducer = 5000;
  Channel<int> channel(4);
  std::thread p1([&channel] {
    for (int i = 0; i < kPerProducer; ++i) EXPECT_TRUE(channel.Push(i));
  });
  std::thread p2([&channel] {
    for (int i = 0; i < kPerProducer; ++i) EXPECT_TRUE(channel.Push(i));
  });
  long long sum = 0;
  for (int got = 0; got < 2 * kPerProducer;) {
    int out;
    if (channel.TryPop(&out)) {
      sum += out;
      ++got;
    } else {
      std::this_thread::yield();
    }
  }
  p1.join();
  p2.join();
  EXPECT_EQ(sum, 2LL * kPerProducer * (kPerProducer - 1) / 2);
}

TEST(ChannelTest, StallCounterCountsEpisodesNotWakeups) {
  // Two producers block on a capacity-1 channel; the consumer then pops
  // twice. Each pop wakes every waiter (notify_all), so the producer
  // that loses the race re-checks "full" and waits again — under the old
  // per-wakeup counting that re-check inflated the counter to 3+. One
  // blocking episode per producer must count exactly once.
  Channel<int> channel(1);
  std::atomic<uint64_t> stalls{0};
  ASSERT_TRUE(channel.Push(0));  // fill; no stall
  EXPECT_EQ(stalls.load(), 0u);

  std::thread p1([&] { EXPECT_TRUE(channel.Push(1, &stalls)); });
  std::thread p2([&] { EXPECT_TRUE(channel.Push(2, &stalls)); });
  // Both producers are parked once both episodes are counted.
  while (stalls.load() < 2) std::this_thread::yield();

  int out;
  ASSERT_TRUE(channel.TryPop(&out));  // wakes both; one re-waits
  while (channel.SizeApprox() != 1) std::this_thread::yield();
  ASSERT_TRUE(channel.TryPop(&out));
  p1.join();
  p2.join();
  while (channel.TryPop(&out)) {
  }
  EXPECT_EQ(stalls.load(), 2u);  // episodes, not wakeups
}

TEST(ChannelTest, CloseUnblocksAFullProducer) {
  Channel<int> channel(1);
  ASSERT_TRUE(channel.Push(0));
  std::atomic<bool> push_returned{false};
  std::thread producer([&] {
    EXPECT_FALSE(channel.Push(1));  // full, then closed
    push_returned.store(true);
  });
  while (channel.SizeApprox() != 1) std::this_thread::yield();
  channel.Close();
  producer.join();
  EXPECT_TRUE(push_returned.load());
}

// ---------------------------------------------------------------------
// Engine-backed protocol harnesses mirroring the sim facades' seed
// derivation exactly (master RNG: one NextU64 per site, then one for the
// coordinator where it takes a seed).

struct EngineWswor {
  EngineWswor(const WsworConfig& config, const EngineConfig& engine_config)
      : eng(engine_config) {
    Rng master(config.seed);
    for (int i = 0; i < config.num_sites; ++i) {
      sites.push_back(std::make_unique<WsworSite>(config, i, &eng.transport(),
                                                  master.NextU64()));
      eng.AttachSite(i, sites.back().get());
    }
    coordinator = std::make_unique<WsworCoordinator>(config, &eng.transport(),
                                                     master.NextU64());
    eng.AttachCoordinator(coordinator.get());
  }
  // Endpoints declared before the engine: destruction joins the worker
  // threads first, making teardown safe even mid-stream (see the teardown
  // contract in engine/engine.h).
  std::vector<std::unique_ptr<WsworSite>> sites;
  std::unique_ptr<WsworCoordinator> coordinator;
  Engine eng;
};

Workload ZipfWorkload(int k, uint64_t n, uint64_t seed) {
  return WorkloadBuilder()
      .num_sites(k)
      .num_items(n)
      .seed(seed)
      .weights(std::make_unique<ZipfWeights>(uint64_t{1} << 16, 1.2))
      .partitioner(std::make_unique<RandomPartitioner>())
      .Build();
}

void ExpectSameSample(const std::vector<KeyedItem>& a,
                      const std::vector<KeyedItem>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].item.id, b[i].item.id) << " position " << i;
    EXPECT_EQ(a[i].item.weight, b[i].item.weight) << " position " << i;
    EXPECT_EQ(a[i].key, b[i].key) << " position " << i;
  }
}

void ExpectSameStats(const sim::MessageStats& a, const sim::MessageStats& b) {
  EXPECT_EQ(a.site_to_coord, b.site_to_coord);
  EXPECT_EQ(a.coord_to_site, b.coord_to_site);
  EXPECT_EQ(a.broadcast_events, b.broadcast_events);
  EXPECT_EQ(a.words, b.words);
  for (size_t i = 0; i < a.by_type.size(); ++i) {
    EXPECT_EQ(a.by_type[i], b.by_type[i]) << " message type " << i;
  }
}

// ---------------------------------------------------------------------
// Step-synchronous equivalence: identical callbacks in identical order
// with identical RNG draws must reproduce the simulator bit for bit —
// sample contents, keys, and every traffic counter.

TEST(EngineEquivalenceTest, StepSyncWsworMatchesSimExactly) {
  const WsworConfig config{.num_sites = 4, .sample_size = 8, .seed = 42};
  const Workload w = ZipfWorkload(4, 3000, /*seed=*/5);

  DistributedWswor sim_sampler(config);
  sim_sampler.Run(w);

  EngineWswor es(config,
                 EngineConfig{.num_sites = 4, .step_synchronous = true});
  es.eng.Run(w);

  ExpectSameSample(sim_sampler.Sample(), es.coordinator->Sample());
  ExpectSameStats(sim_sampler.stats(), es.eng.stats().MessageSnapshot());
  EXPECT_EQ(sim_sampler.coordinator().announced_epoch(),
            es.coordinator->announced_epoch());
}

TEST(EngineEquivalenceTest, SingleSiteDeterminism) {
  // The degenerate single-site stream: the engine pipeline collapses to
  // one producer/consumer pair and must still replay the simulator.
  const WsworConfig config{.num_sites = 1, .sample_size = 16, .seed = 9};
  const Workload w = WorkloadBuilder()
                         .num_sites(1)
                         .num_items(5000)
                         .seed(11)
                         .weights(std::make_unique<SelfSimilarWeights>())
                         .partitioner(std::make_unique<SingleSitePartitioner>())
                         .Build();

  DistributedWswor sim_sampler(config);
  sim_sampler.Run(w);

  EngineWswor es(config,
                 EngineConfig{.num_sites = 1, .step_synchronous = true});
  es.eng.Run(w);
  es.eng.Flush();

  ExpectSameSample(sim_sampler.Sample(), es.coordinator->Sample());
  ExpectSameStats(sim_sampler.stats(), es.eng.stats().MessageSnapshot());
}

TEST(EngineEquivalenceTest, StepSyncNaiveMatchesSim) {
  const int k = 3, s = 8;
  const Workload w = ZipfWorkload(k, 2000, /*seed=*/21);

  NaiveDistributedWswor sim_sampler(k, s, /*seed=*/77);
  sim_sampler.Run(w);

  Engine eng(EngineConfig{.num_sites = k, .step_synchronous = true});
  Rng master(77);
  std::vector<std::unique_ptr<NaiveWsworSite>> sites;
  for (int i = 0; i < k; ++i) {
    sites.push_back(std::make_unique<NaiveWsworSite>(s, i, &eng.transport(),
                                                     master.NextU64()));
    eng.AttachSite(i, sites.back().get());
  }
  NaiveWsworCoordinator coordinator(s);
  eng.AttachCoordinator(&coordinator);
  eng.Run(w);

  ExpectSameSample(sim_sampler.Sample(), coordinator.Sample());
  ExpectSameStats(sim_sampler.stats(), eng.stats().MessageSnapshot());
}

TEST(EngineEquivalenceTest, StepSyncUnweightedSubstrateMatchesSim) {
  const UsworConfig config{.num_sites = 3, .sample_size = 5, .seed = 13};
  const Workload w = WorkloadBuilder()
                         .num_sites(3)
                         .num_items(4000)
                         .seed(29)
                         .weights(std::make_unique<ConstantWeights>(1.0))
                         .partitioner(std::make_unique<RoundRobinPartitioner>())
                         .Build();

  DistributedUnweightedSwor sim_sampler(config);
  sim_sampler.Run(w);

  Engine eng(EngineConfig{.num_sites = 3, .step_synchronous = true});
  Rng master(config.seed);
  std::vector<std::unique_ptr<UsworSite>> sites;
  for (int i = 0; i < 3; ++i) {
    sites.push_back(std::make_unique<UsworSite>(config, i, &eng.transport(),
                                                master.NextU64()));
    eng.AttachSite(i, sites.back().get());
  }
  UsworCoordinator coordinator(config, &eng.transport());
  eng.AttachCoordinator(&coordinator);
  eng.Run(w);

  const std::vector<Item> a = sim_sampler.Sample();
  const std::vector<Item> b = coordinator.Sample();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].id, b[i].id);
  ExpectSameStats(sim_sampler.stats(), eng.stats().MessageSnapshot());
}

TEST(EngineEquivalenceTest, OnStepHookQueriesEveryPrefix) {
  // An on_step hook forces per-event quiesce, so the continuous-query
  // discipline of sim::Runtime::Run carries over: the engine-side sample
  // size trajectory must match the simulator's exactly.
  const WsworConfig config{.num_sites = 2, .sample_size = 8, .seed = 3};
  const Workload w = ZipfWorkload(2, 300, /*seed=*/31);

  std::vector<size_t> sim_sizes;
  DistributedWswor sim_sampler(config);
  sim_sampler.Run(w, [&](uint64_t) {
    sim_sizes.push_back(sim_sampler.Sample().size());
  });

  std::vector<size_t> engine_sizes;
  EngineWswor es(config, EngineConfig{.num_sites = 2});
  es.eng.Run(w, [&](uint64_t) {
    engine_sizes.push_back(es.coordinator->Sample().size());
  });

  EXPECT_EQ(sim_sizes, engine_sizes);
}

// ---------------------------------------------------------------------
// Full-throughput (pipelined) mode: execution is nondeterministic, but
// the protocol is robust to in-flight messages, so the output must still
// be an exact weighted SWOR. Verified distributionally.

std::vector<uint64_t> EngineTrialSample(const std::vector<double>& weights,
                                        int k, int s, int trial) {
  const WsworConfig config{.num_sites = k, .sample_size = s,
                           .seed = 1000 + static_cast<uint64_t>(trial)};
  EngineWswor es(config, EngineConfig{.num_sites = k,
                                      .batch_size = 2,
                                      .item_queue_batches = 2,
                                      .message_queue_capacity = 4});
  Rng partition(77 + static_cast<uint64_t>(trial));
  for (uint64_t i = 0; i < weights.size(); ++i) {
    es.eng.Push(static_cast<int>(partition.NextBounded(
                    static_cast<uint64_t>(k))),
                Item{i, weights[i]});
  }
  es.eng.Flush();
  std::vector<uint64_t> ids;
  for (const KeyedItem& ki : es.coordinator->Sample()) {
    ids.push_back(ki.item.id);
  }
  return ids;
}

TEST(EngineDistributionTest, ThroughputModeSampleSetsChiSquare) {
  const std::vector<double> weights{1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  const int s = 2, k = 3, trials = 2500;
  const ChiSquareResult result = testing::SworSetGoodnessOfFit(
      weights, s, trials,
      [&](int t) { return EngineTrialSample(weights, k, s, t); });
  EXPECT_GT(result.p_value, 1e-3)
      << "chi2=" << result.statistic << " df=" << result.degrees_of_freedom;
}

TEST(EngineDistributionTest, ThroughputModeMaxKeyKsTest) {
  // With unit weights the largest delivered key is the max of n iid
  // Exp-derived keys: P(max <= x) = exp(-n/x). KS over engine runs.
  const int k = 3, s = 4, trials = 400;
  const uint64_t n = 200;
  std::vector<double> max_keys;
  for (int t = 0; t < trials; ++t) {
    const WsworConfig config{.num_sites = k, .sample_size = s,
                             .seed = 5000 + static_cast<uint64_t>(t)};
    EngineWswor es(config, EngineConfig{.num_sites = k, .batch_size = 16});
    const Workload w =
        WorkloadBuilder()
            .num_sites(k)
            .num_items(n)
            .seed(9000 + static_cast<uint64_t>(t))
            .weights(std::make_unique<ConstantWeights>(1.0))
            .partitioner(std::make_unique<RandomPartitioner>())
            .Build();
    es.eng.Run(w);
    const std::vector<KeyedItem> sample = es.coordinator->Sample();
    ASSERT_FALSE(sample.empty());
    max_keys.push_back(sample.front().key);
  }
  const KsResult result = KsTest(max_keys, [n](double x) {
    return x <= 0.0 ? 0.0 : std::exp(-static_cast<double>(n) / x);
  });
  EXPECT_GT(result.p_value, 1e-3) << "D=" << result.statistic;
}

// ---------------------------------------------------------------------
// Stress and lifecycle.

TEST(EngineStressTest, AdversarialHotSiteWithTinyQueuesCompletes) {
  // Everything lands on one (hopping) hot site; queues are sized to force
  // constant backpressure on every channel. The run must complete with a
  // valid sample — the deadlock-freedom regression test.
  const int k = 4, s = 16;
  const uint64_t n = 20000;
  const Workload w = WorkloadBuilder()
                         .num_sites(k)
                         .num_items(n)
                         .seed(3)
                         .weights(std::make_unique<SelfSimilarWeights>())
                         .partitioner(std::make_unique<AdversarialPartitioner>(
                             /*hop_every=*/64))
                         .Build();
  const WsworConfig config{.num_sites = k, .sample_size = s, .seed = 7};
  EngineWswor es(config, EngineConfig{.num_sites = k,
                                      .batch_size = 8,
                                      .item_queue_batches = 1,
                                      .message_queue_capacity = 2});
  es.eng.Run(w);

  EXPECT_EQ(es.eng.stats().items_ingested.load(), n);
  EXPECT_EQ(es.eng.step(), n);
  const std::vector<KeyedItem> sample = es.coordinator->Sample();
  ASSERT_EQ(sample.size(), static_cast<size_t>(s));
  std::vector<uint64_t> ids;
  for (const KeyedItem& ki : sample) ids.push_back(ki.item.id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
}

TEST(EngineTest, FlushIsAReusableQuiescePoint) {
  const WsworConfig config{.num_sites = 2, .sample_size = 4, .seed = 1};
  EngineWswor es(config, EngineConfig{.num_sites = 2, .batch_size = 8});
  Rng rng(6);
  uint64_t id = 0;
  for (int i = 0; i < 100; ++i) {
    es.eng.Push(static_cast<int>(rng.NextBounded(2)),
                Item{id++, 1.0 + rng.NextDouble() * 7.0});
  }
  es.eng.Flush();
  EXPECT_EQ(es.eng.step(), 100u);
  EXPECT_EQ(es.coordinator->Sample().size(), 4u);
  const double threshold_after_100 = es.coordinator->Threshold();

  for (int i = 0; i < 900; ++i) {
    es.eng.Push(static_cast<int>(rng.NextBounded(2)),
                Item{id++, 1.0 + rng.NextDouble() * 7.0});
  }
  es.eng.Flush();
  es.eng.Flush();  // idempotent
  EXPECT_EQ(es.eng.step(), 1000u);
  EXPECT_GE(es.coordinator->Threshold(), threshold_after_100);
  es.eng.Shutdown();
  es.eng.Shutdown();  // idempotent
}

}  // namespace
}  // namespace dwrs
