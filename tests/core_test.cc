#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "core/coordinator.h"
#include "core/level_sets.h"
#include "core/site.h"
#include "core/naive.h"
#include "core/sampler.h"
#include "stats/chi_square.h"
#include "stream/workload.h"
#include "test_util.h"
#include "util/math_util.h"

namespace dwrs {
namespace {

Workload SmallWeighted(const std::vector<double>& weights, int sites,
                       uint64_t seed) {
  std::vector<WorkloadEvent> events;
  Rng rng(seed);
  for (uint64_t i = 0; i < weights.size(); ++i) {
    events.push_back(WorkloadEvent{
        static_cast<int>(rng.NextBounded(static_cast<uint64_t>(sites))),
        Item{i, weights[i]}});
  }
  return Workload(sites, std::move(events));
}

// ---------------------------------------------------------------------------
// Level set manager unit tests.

TEST(LevelSetManagerTest, LevelsFollowDefinition4) {
  LevelSetManager levels(2.0, 8, 4);
  EXPECT_EQ(levels.LevelOf(0.5), 0);
  EXPECT_EQ(levels.LevelOf(1.0), 0);
  EXPECT_EQ(levels.LevelOf(1.99), 0);
  EXPECT_EQ(levels.LevelOf(2.0), 1);
  EXPECT_EQ(levels.LevelOf(1024.0), 10);
}

TEST(LevelSetManagerTest, SaturatesAtCapacityAndReleases) {
  LevelSetManager levels(2.0, 3, 10);
  int saturated = -1;
  EXPECT_TRUE(levels.AddEarly(Item{0, 1.0}, 5.0, &saturated).empty());
  EXPECT_EQ(saturated, -1);
  EXPECT_TRUE(levels.AddEarly(Item{1, 1.5}, 3.0, &saturated).empty());
  const auto released = levels.AddEarly(Item{2, 1.2}, 4.0, &saturated);
  EXPECT_EQ(saturated, 0);
  EXPECT_EQ(released.size(), 3u);
  EXPECT_TRUE(levels.IsSaturated(0));
  EXPECT_FALSE(levels.IsSaturated(1));
}

TEST(LevelSetManagerTest, LateEarlyItemPassesThroughAfterSaturation) {
  LevelSetManager levels(2.0, 2, 10);
  int saturated = -1;
  levels.AddEarly(Item{0, 1.0}, 1.0, &saturated);
  levels.AddEarly(Item{1, 1.0}, 2.0, &saturated);
  EXPECT_EQ(saturated, 0);
  // A straggler early message for the now-saturated level is released
  // immediately with its key.
  const auto released = levels.AddEarly(Item{2, 1.0}, 9.0, &saturated);
  EXPECT_EQ(saturated, -1);
  ASSERT_EQ(released.size(), 1u);
  EXPECT_DOUBLE_EQ(released[0].key, 9.0);
}

TEST(LevelSetManagerTest, DistinctLevelsIndependent) {
  LevelSetManager levels(2.0, 2, 10);
  int saturated = -1;
  levels.AddEarly(Item{0, 1.0}, 1.0, &saturated);    // level 0
  levels.AddEarly(Item{1, 100.0}, 2.0, &saturated);  // level 6
  EXPECT_EQ(levels.CountInLevel(0), 1u);
  EXPECT_EQ(levels.CountInLevel(6), 1u);
  EXPECT_FALSE(levels.IsSaturated(0));
  const auto released = levels.AddEarly(Item{2, 120.0}, 3.0, &saturated);
  EXPECT_EQ(saturated, 6);
  EXPECT_EQ(released.size(), 2u);
}

TEST(LevelSetManagerTest, CompactionKeepsTopKeysOnly) {
  // top_keys = 2: only the 2 best withheld keys are stored even though
  // counts keep growing (Proposition 6).
  LevelSetManager levels(2.0, 100, 2);
  int saturated = -1;
  for (uint64_t i = 0; i < 50; ++i) {
    levels.AddEarly(Item{i, 1.0}, static_cast<double>(i), &saturated);
  }
  EXPECT_EQ(levels.CountInLevel(0), 50u);
  EXPECT_LE(levels.StoredEntries(), 2u);
  const auto withheld = levels.WithheldEntries();
  ASSERT_EQ(withheld.size(), 2u);
  // The two largest keys (48, 49) survived.
  EXPECT_GE(std::min(withheld[0].key, withheld[1].key), 48.0);
}

// ---------------------------------------------------------------------------
// End-to-end sampler behaviour.

TEST(DistributedWsworTest, SampleSizeIsMinTsAtEveryStep) {
  WsworConfig config;
  config.num_sites = 4;
  config.sample_size = 8;
  config.seed = 1;
  DistributedWswor sampler(config);
  const Workload w = WorkloadBuilder()
                         .num_sites(4)
                         .num_items(30)
                         .seed(2)
                         .weights(std::make_unique<UniformWeights>(1.0, 100.0))
                         .Build();
  for (uint64_t i = 0; i < w.size(); ++i) {
    sampler.Observe(w.event(i).site, w.event(i).item);
    EXPECT_EQ(sampler.Sample().size(), std::min<uint64_t>(i + 1, 8))
        << "at step " << i + 1;
  }
}

TEST(DistributedWsworTest, ExactSetDistribution) {
  const std::vector<double> weights = {1.0, 2.0, 4.0, 1.0, 3.0, 2.0};
  const int s = 2;
  const Workload w = SmallWeighted(weights, 3, 11);
  const auto result = testing::SworSetGoodnessOfFit(
      weights, s, 15000, [&](int t) {
        WsworConfig config;
        config.num_sites = 3;
        config.sample_size = s;
        config.seed = 90000 + static_cast<uint64_t>(t);
        DistributedWswor sampler(config);
        sampler.Run(w);
        std::vector<uint64_t> ids;
        for (const KeyedItem& ki : sampler.Sample()) ids.push_back(ki.item.id);
        return ids;
      });
  EXPECT_GT(result.p_value, 1e-4) << "chi2=" << result.statistic;
}

TEST(DistributedWsworTest, ExactSetDistributionWithHeavySkew) {
  // Heavy items exercise the level-set withholding path: most items stay
  // withheld (levels unsaturated), so the sample must come from D.
  const std::vector<double> weights = {100.0, 1.0, 50.0, 1.0, 200.0};
  const int s = 2;
  const Workload w = SmallWeighted(weights, 2, 12);
  const auto result = testing::SworSetGoodnessOfFit(
      weights, s, 15000, [&](int t) {
        WsworConfig config;
        config.num_sites = 2;
        config.sample_size = s;
        config.seed = 130000 + static_cast<uint64_t>(t);
        DistributedWswor sampler(config);
        sampler.Run(w);
        std::vector<uint64_t> ids;
        for (const KeyedItem& ki : sampler.Sample()) ids.push_back(ki.item.id);
        return ids;
      });
  EXPECT_GT(result.p_value, 1e-4) << "chi2=" << result.statistic;
}

TEST(DistributedWsworTest, AblationNoWithholdingSameDistribution) {
  const std::vector<double> weights = {10.0, 1.0, 5.0, 2.0, 7.0};
  const int s = 2;
  const Workload w = SmallWeighted(weights, 2, 13);
  const auto result = testing::SworSetGoodnessOfFit(
      weights, s, 15000, [&](int t) {
        WsworConfig config;
        config.num_sites = 2;
        config.sample_size = s;
        config.seed = 170000 + static_cast<uint64_t>(t);
        config.withhold_heavy = false;
        DistributedWswor sampler(config);
        sampler.Run(w);
        std::vector<uint64_t> ids;
        for (const KeyedItem& ki : sampler.Sample()) ids.push_back(ki.item.id);
        return ids;
      });
  EXPECT_GT(result.p_value, 1e-4) << "chi2=" << result.statistic;
}

TEST(DistributedWsworTest, DeliveryDelayPreservesDistribution) {
  const std::vector<double> weights = {1.0, 6.0, 2.0, 3.0};
  const int s = 2;
  const Workload w = SmallWeighted(weights, 2, 14);
  const auto result = testing::SworSetGoodnessOfFit(
      weights, s, 15000, [&](int t) {
        WsworConfig config;
        config.num_sites = 2;
        config.sample_size = s;
        config.seed = 210000 + static_cast<uint64_t>(t);
        config.delivery_delay = 3;
        DistributedWswor sampler(config);
        sampler.Run(w);
        sampler.FlushNetwork();
        std::vector<uint64_t> ids;
        for (const KeyedItem& ki : sampler.Sample()) ids.push_back(ki.item.id);
        return ids;
      });
  EXPECT_GT(result.p_value, 1e-4) << "chi2=" << result.statistic;
}

TEST(DistributedWsworTest, JitteredNetworkPreservesDistribution) {
  const std::vector<double> weights = {1.0, 6.0, 2.0, 3.0};
  const int s = 2;
  const Workload w = SmallWeighted(weights, 2, 15);
  const auto result = testing::SworSetGoodnessOfFit(
      weights, s, 15000, [&](int t) {
        WsworConfig config;
        config.num_sites = 2;
        config.sample_size = s;
        config.seed = 250000 + static_cast<uint64_t>(t);
        config.delivery_delay = 4;
        config.jitter_seed = 77 + static_cast<uint64_t>(t);
        DistributedWswor sampler(config);
        sampler.Run(w);
        sampler.FlushNetwork();
        std::vector<uint64_t> ids;
        for (const KeyedItem& ki : sampler.Sample()) ids.push_back(ki.item.id);
        return ids;
      });
  EXPECT_GT(result.p_value, 1e-4) << "chi2=" << result.statistic;
}

TEST(DistributedWsworTest, SampleEntriesAreValid) {
  WsworConfig config;
  config.num_sites = 8;
  config.sample_size = 16;
  config.seed = 5;
  DistributedWswor sampler(config);
  const Workload w = WorkloadBuilder()
                         .num_sites(8)
                         .num_items(5000)
                         .seed(6)
                         .weights(std::make_unique<ZipfWeights>(10000, 1.2))
                         .partitioner(std::make_unique<RandomPartitioner>())
                         .Build();
  sampler.Run(w);
  const auto sample = sampler.Sample();
  ASSERT_EQ(sample.size(), 16u);
  std::set<uint64_t> ids;
  for (size_t i = 0; i < sample.size(); ++i) {
    EXPECT_GT(sample[i].key, 0.0);
    if (i > 0) {
      EXPECT_GE(sample[i - 1].key, sample[i].key);
    }
    EXPECT_LT(sample[i].item.id, 5000u);
    ids.insert(sample[i].item.id);
  }
  EXPECT_EQ(ids.size(), 16u) << "sample must be without replacement";
}

TEST(DistributedWsworTest, DeterministicGivenSeed) {
  const Workload w = WorkloadBuilder()
                         .num_sites(4)
                         .num_items(2000)
                         .seed(7)
                         .weights(std::make_unique<UniformWeights>(1.0, 50.0))
                         .Build();
  auto run = [&] {
    WsworConfig config;
    config.num_sites = 4;
    config.sample_size = 8;
    config.seed = 99;
    DistributedWswor sampler(config);
    sampler.Run(w);
    return std::make_pair(sampler.Sample(), sampler.stats().total_messages());
  };
  const auto [sample_a, msgs_a] = run();
  const auto [sample_b, msgs_b] = run();
  EXPECT_EQ(msgs_a, msgs_b);
  ASSERT_EQ(sample_a.size(), sample_b.size());
  for (size_t i = 0; i < sample_a.size(); ++i) {
    EXPECT_EQ(sample_a[i].item.id, sample_b[i].item.id);
    EXPECT_DOUBLE_EQ(sample_a[i].key, sample_b[i].key);
  }
}

TEST(DistributedWsworTest, MessageComplexityWithinTheorem3Bound) {
  for (int k : {4, 16, 64}) {
    for (int s : {4, 32}) {
      const Workload w =
          WorkloadBuilder()
              .num_sites(k)
              .num_items(20000)
              .seed(8)
              .weights(std::make_unique<UniformWeights>(1.0, 20.0))
              .partitioner(std::make_unique<RandomPartitioner>())
              .Build();
      WsworConfig config;
      config.num_sites = k;
      config.sample_size = s;
      config.seed = 17;
      DistributedWswor sampler(config);
      sampler.Run(w);
      const double bound = Theorem3MessageBound(k, s, w.TotalWeight());
      EXPECT_LT(static_cast<double>(sampler.stats().total_messages()),
                30.0 * bound)
          << "k=" << k << " s=" << s;
    }
  }
}

TEST(DistributedWsworTest, MessagesGrowLogarithmicallyInW) {
  WsworConfig config;
  config.num_sites = 16;
  config.sample_size = 8;
  config.seed = 21;
  uint64_t prev = 0;
  for (uint64_t n : {4000u, 16000u, 64000u}) {
    DistributedWswor sampler(config);
    const Workload w = WorkloadBuilder()
                           .num_sites(16)
                           .num_items(n)
                           .seed(22)
                           .partitioner(std::make_unique<RandomPartitioner>())
                           .Build();
    sampler.Run(w);
    const uint64_t msgs = sampler.stats().total_messages();
    EXPECT_LT(msgs, n / 2);
    if (prev > 0) {
      EXPECT_LT(msgs, 3 * prev) << "n=" << n;
    }
    prev = msgs;
  }
}

TEST(DistributedWsworTest, CoordinatorSpaceIsOrderS) {
  WsworConfig config;
  config.num_sites = 16;
  config.sample_size = 32;
  config.seed = 23;
  DistributedWswor sampler(config);
  const Workload w = WorkloadBuilder()
                         .num_sites(16)
                         .num_items(30000)
                         .seed(24)
                         .weights(std::make_unique<ParetoWeights>(1.1))
                         .partitioner(std::make_unique<RandomPartitioner>())
                         .Build();
  uint64_t max_entries = 0;
  sampler.Run(w, [&](uint64_t) {
    max_entries =
        std::max(max_entries,
                 static_cast<uint64_t>(sampler.coordinator().StoredEntries()));
  });
  // Proposition 6: sample (s) + compacted level storage (s) = 2s.
  EXPECT_LE(max_entries, 2u * 32u);
}

TEST(DistributedWsworTest, ThresholdAndEpochMonotone) {
  WsworConfig config;
  config.num_sites = 8;
  config.sample_size = 8;
  config.seed = 25;
  DistributedWswor sampler(config);
  const Workload w = WorkloadBuilder()
                         .num_sites(8)
                         .num_items(20000)
                         .seed(26)
                         .weights(std::make_unique<UniformWeights>(1.0, 8.0))
                         .partitioner(std::make_unique<RandomPartitioner>())
                         .Build();
  double prev_u = 0.0;
  int prev_epoch = -1;
  sampler.Run(w, [&](uint64_t) {
    const double u = sampler.coordinator().Threshold();
    const int epoch = sampler.coordinator().announced_epoch();
    EXPECT_GE(u, prev_u);
    EXPECT_GE(epoch, prev_epoch);
    prev_u = u;
    prev_epoch = epoch;
  });
  EXPECT_GT(prev_u, 0.0);
  EXPECT_GE(prev_epoch, 0);
}

TEST(DistributedWsworTest, Lemma1ReleasedItemsAreLight) {
  // Stream-side check of Lemma 1: replay the deterministic level-set
  // saturation logic and assert every item released to the sampler weighs
  // at most 1/(4s) of the weight released so far.
  const int k = 8;
  const int s = 8;
  const Workload w = WorkloadBuilder()
                         .num_sites(k)
                         .num_items(50000)
                         .seed(27)
                         .weights(std::make_unique<ParetoWeights>(1.05))
                         .partitioner(std::make_unique<RandomPartitioner>())
                         .Build();
  WsworConfig config;
  config.num_sites = k;
  config.sample_size = s;
  const double r = config.ResolvedEpochBase();
  const uint64_t cap = config.LevelCapacity();

  std::vector<std::vector<double>> pending;  // per level
  std::vector<bool> saturated;
  double released_weight = 0.0;
  double max_ratio = 0.0;
  auto release = [&](double weight) {
    released_weight += weight;
    max_ratio = std::max(max_ratio, weight / released_weight);
  };
  for (const auto& e : w.events()) {
    const int level = FloorLogBase(e.item.weight, r);
    if (static_cast<size_t>(level) >= pending.size()) {
      pending.resize(static_cast<size_t>(level) + 1);
      saturated.resize(static_cast<size_t>(level) + 1, false);
    }
    if (saturated[static_cast<size_t>(level)]) {
      release(e.item.weight);
      continue;
    }
    pending[static_cast<size_t>(level)].push_back(e.item.weight);
    if (pending[static_cast<size_t>(level)].size() >= cap) {
      // Weight of the whole batch counts as released before the ratio of
      // its members is evaluated (they join simultaneously).
      for (double batch_w : pending[static_cast<size_t>(level)]) {
        released_weight += batch_w;
      }
      for (double batch_w : pending[static_cast<size_t>(level)]) {
        max_ratio = std::max(max_ratio, batch_w / released_weight);
      }
      pending[static_cast<size_t>(level)].clear();
      saturated[static_cast<size_t>(level)] = true;
    }
  }
  if (released_weight > 0.0) {
    EXPECT_LE(max_ratio, 1.0 / (4.0 * s) + 1e-12);
  }
}

TEST(DistributedWsworTest, ConstantWeightsMatchUniformInclusion) {
  const int n = 10;
  const int s = 3;
  const int trials = 10000;
  const Workload w = WorkloadBuilder().num_sites(2).num_items(n).seed(31).Build();
  std::vector<uint64_t> counts(n, 0);
  for (int t = 0; t < trials; ++t) {
    WsworConfig config;
    config.num_sites = 2;
    config.sample_size = s;
    config.seed = 300000 + static_cast<uint64_t>(t);
    DistributedWswor sampler(config);
    sampler.Run(w);
    for (const KeyedItem& ki : sampler.Sample()) ++counts[ki.item.id];
  }
  for (int i = 0; i < n; ++i) {
    EXPECT_GT(BinomialTwoSidedPValue(counts[i], trials,
                                     static_cast<double>(s) / n),
              1e-5)
        << "item " << i;
  }
}

TEST(DistributedWsworTest, KeyBitsPerDecisionIsConstant) {
  WsworConfig config;
  config.num_sites = 8;
  config.sample_size = 8;
  config.seed = 33;
  DistributedWswor sampler(config);
  const Workload w = WorkloadBuilder()
                         .num_sites(8)
                         .num_items(30000)
                         .seed(34)
                         .partitioner(std::make_unique<RandomPartitioner>())
                         .Build();
  sampler.Run(w);
  ASSERT_GT(sampler.KeysDecided(), 0u);
  const double bits_per_key =
      static_cast<double>(sampler.KeyBitsConsumed()) /
      static_cast<double>(sampler.KeysDecided());
  EXPECT_LT(bits_per_key, 4.0);  // Proposition 7: O(1) expected
}

// ---------------------------------------------------------------------------
// Naive baseline.

TEST(NaiveWsworTest, ExactSetDistribution) {
  const std::vector<double> weights = {3.0, 1.0, 2.0, 6.0, 2.0};
  const int s = 2;
  const Workload w = SmallWeighted(weights, 3, 41);
  const auto result = testing::SworSetGoodnessOfFit(
      weights, s, 15000, [&](int t) {
        NaiveDistributedWswor sampler(3, s, 400000 + static_cast<uint64_t>(t));
        sampler.Run(w);
        std::vector<uint64_t> ids;
        for (const KeyedItem& ki : sampler.Sample()) ids.push_back(ki.item.id);
        return ids;
      });
  EXPECT_GT(result.p_value, 1e-4) << "chi2=" << result.statistic;
}

// ---------------------------------------------------------------------------
// Failure injection: malformed protocol traffic must trip invariant
// checks rather than corrupt state.

TEST(ProtocolFailureDeathTest, CoordinatorRejectsUnknownMessageType) {
  WsworConfig config;
  config.num_sites = 2;
  config.sample_size = 4;
  sim::Network network(2);
  WsworCoordinator coordinator(config, &network, /*seed=*/1);
  sim::Payload bogus;
  bogus.type = 77;
  EXPECT_DEATH(coordinator.OnMessage(0, bogus), "unexpected message type");
}

TEST(ProtocolFailureDeathTest, SiteRejectsUnknownMessageType) {
  WsworConfig config;
  config.num_sites = 2;
  config.sample_size = 4;
  sim::Network network(2);
  WsworSite site(config, 0, &network, /*seed=*/1);
  sim::Payload bogus;
  bogus.type = 99;
  EXPECT_DEATH(site.OnMessage(bogus), "unexpected message type");
}

TEST(ProtocolFailureDeathTest, NonPositiveWeightRejected) {
  DistributedWswor sampler(
      WsworConfig{.num_sites = 2, .sample_size = 4, .seed = 1});
  EXPECT_DEATH(sampler.Observe(0, Item{1, 0.0}), "DWRS_CHECK");
  EXPECT_DEATH(sampler.Observe(0, Item{1, -3.0}), "DWRS_CHECK");
}

TEST(ProtocolFailureDeathTest, OutOfRangeSiteRejected) {
  DistributedWswor sampler(
      WsworConfig{.num_sites = 2, .sample_size = 4, .seed = 1});
  EXPECT_DEATH(sampler.Observe(5, Item{1, 1.0}), "DWRS_CHECK");
}

TEST(NaiveWsworTest, SendsMoreMessagesThanOptimal) {
  // Scale where the asymptotic gap dominates warm-up constants: the naive
  // baseline pays ~k*s*ln(n/k) while ours pays ~k*log(W/s)/log(1+k/s)
  // plus an O(k*s) level-set warm-up.
  const Workload w = WorkloadBuilder()
                         .num_sites(64)
                         .num_items(300000)
                         .seed(42)
                         .weights(std::make_unique<UniformWeights>(1.0, 2.0))
                         .partitioner(std::make_unique<RandomPartitioner>())
                         .Build();
  NaiveDistributedWswor naive(64, 64, 43);
  naive.Run(w);
  WsworConfig config;
  config.num_sites = 64;
  config.sample_size = 64;
  config.seed = 43;
  DistributedWswor ours(config);
  ours.Run(w);
  EXPECT_GT(naive.stats().total_messages(),
            3 * ours.stats().total_messages());
}

}  // namespace
}  // namespace dwrs
