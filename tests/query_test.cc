// Live query serving: the lock-free snapshot publisher, the QueryService
// merge, and the consistency harness the tentpole demands — concurrent
// readers hammering the service mid-ingestion while a referee checks
// that every returned snapshot is a valid quiesce-point state (monotone
// publish/state versions, per-shard epoch coherence, sample invariants,
// O(s) space), plus chi-square exactness of served samples at
// S ∈ {1, 2, 4}, bit-for-bit equivalence of the engine's coordinator-
// thread publication against the step-synchronous simulator reference,
// and crashed/gapped-shard staleness semantics (last clean epoch,
// flagged, never silently merged).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "core/sharded_sampler.h"
#include "engine/sharded_engine.h"
#include "faults/harness.h"
#include "l1/l1_tracker.h"
#include "query/capture.h"
#include "query/live.h"
#include "query/query_service.h"
#include "query/snapshot.h"
#include "random/rng.h"
#include "sim/sharded_runtime.h"
#include "stream/workload.h"
#include "test_util.h"

namespace dwrs {
namespace {

using engine::ShardedEngine;
using engine::ShardedEngineConfig;
using faults::Backend;
using faults::FaultConfig;
using faults::FaultyWswor;
using faults::RunReport;
using faults::ShardedFaultyWswor;
using query::LiveShardPublishers;
using query::QueryResult;
using query::QueryService;
using query::ShardSnapshot;
using query::SnapshotPublisher;

Workload ZipfWorkload(int k, uint64_t n, uint64_t seed) {
  return WorkloadBuilder()
      .num_sites(k)
      .num_items(n)
      .seed(seed)
      .weights(std::make_unique<ZipfWeights>(uint64_t{1} << 16, 1.2))
      .partitioner(std::make_unique<RandomPartitioner>())
      .Build();
}

Workload SmallWeighted(const std::vector<double>& weights, int sites,
                       uint64_t seed) {
  std::vector<WorkloadEvent> events;
  Rng rng(seed);
  for (uint64_t i = 0; i < weights.size(); ++i) {
    events.push_back(WorkloadEvent{
        static_cast<int>(rng.NextBounded(static_cast<uint64_t>(sites))),
        Item{i, weights[i]}});
  }
  return Workload(sites, std::move(events));
}

std::vector<uint64_t> Ids(const std::vector<KeyedItem>& entries) {
  std::vector<uint64_t> out;
  for (const KeyedItem& ki : entries) out.push_back(ki.item.id);
  return out;
}

KeyedItem KI(uint64_t id, double weight, double key) {
  return KeyedItem{Item{id, weight}, key};
}

ShardSnapshot TopKeySnapshot(uint64_t version, size_t s,
                             std::vector<KeyedItem> entries) {
  ShardSnapshot snap;
  snap.state_version = version;
  snap.sample.kind = SampleKind::kTopKey;
  snap.sample.target_size = s;
  snap.sample.state_version = version;
  snap.sample.entries = std::move(entries);
  return snap;
}

// ---------------------------------------------------------------------
// SnapshotPublisher mechanics.

TEST(SnapshotPublisherTest, ReadReturnsFalseBeforeFirstPublish) {
  SnapshotPublisher publisher;
  ShardSnapshot snap;
  EXPECT_FALSE(publisher.Read(&snap));
  EXPECT_EQ(publisher.publish_count(), 0u);
}

TEST(SnapshotPublisherTest, PublishAssignsMonotoneSequence) {
  SnapshotPublisher publisher;
  for (uint64_t v = 1; v <= 5; ++v) {
    publisher.Publish(TopKeySnapshot(v, 2, {KI(v, 1.0, double(v))}));
    ShardSnapshot snap;
    ASSERT_TRUE(publisher.Read(&snap));
    EXPECT_EQ(snap.publish_seq, v);
    EXPECT_EQ(snap.state_version, v);
    ASSERT_EQ(snap.sample.entries.size(), 1u);
    EXPECT_EQ(snap.sample.entries[0].item.id, v);
  }
  EXPECT_EQ(publisher.publish_count(), 5u);
}

TEST(SnapshotPublisherTest, DegradedPublishFreezesContentAtLastClean) {
  SnapshotPublisher publisher;
  ShardSnapshot clean = TopKeySnapshot(7, 2, {KI(1, 1.0, 9.0)});
  clean.threshold = 3.5;
  clean.steps = 100;
  publisher.Publish(clean);

  // Degraded capture with newer content: the published snapshot must
  // carry the LAST CLEAN content (version 7, id 1, threshold 3.5) under
  // the stale flag, with the degraded capture's coherence stamps.
  ShardSnapshot degraded = TopKeySnapshot(9, 2, {KI(2, 1.0, 1.0)});
  degraded.stale = true;
  degraded.threshold = 4.0;
  degraded.steps = 140;
  degraded.session_epoch = 2;
  publisher.Publish(degraded);

  ShardSnapshot snap;
  ASSERT_TRUE(publisher.Read(&snap));
  EXPECT_TRUE(snap.stale);
  EXPECT_EQ(snap.publish_seq, 2u);
  EXPECT_EQ(snap.state_version, 7u);
  EXPECT_DOUBLE_EQ(snap.threshold, 3.5);
  ASSERT_EQ(snap.sample.entries.size(), 1u);
  EXPECT_EQ(snap.sample.entries[0].item.id, 1u);
  // Liveness stamps stay the caller's.
  EXPECT_EQ(snap.steps, 140u);
  EXPECT_EQ(snap.session_epoch, 2u);

  // A clean publish resumes normal serving.
  publisher.Publish(TopKeySnapshot(11, 2, {KI(3, 1.0, 2.0)}));
  ASSERT_TRUE(publisher.Read(&snap));
  EXPECT_FALSE(snap.stale);
  EXPECT_EQ(snap.state_version, 11u);
}

TEST(SnapshotPublisherTest, FirstPublishMayBeStale) {
  // No clean state to fall back on: content is kept, flag raised.
  SnapshotPublisher publisher;
  ShardSnapshot snap = TopKeySnapshot(3, 2, {KI(5, 1.0, 1.0)});
  snap.stale = true;
  publisher.Publish(snap);
  ShardSnapshot out;
  ASSERT_TRUE(publisher.Read(&out));
  EXPECT_TRUE(out.stale);
  EXPECT_EQ(out.state_version, 3u);
  ASSERT_EQ(out.sample.entries.size(), 1u);
  EXPECT_EQ(out.sample.entries[0].item.id, 5u);
}

// The lock-free core under contention: one writer republishing
// self-consistent snapshots, several readers validating that every copy
// is coherent (all fields from ONE publish) and versions never go
// backwards. Run under TSan in CI.
TEST(SnapshotPublisherTest, ConcurrentReadersSeeCoherentSnapshots) {
  SnapshotPublisher publisher;
  constexpr uint64_t kMinPublishes = 20000;
  constexpr uint64_t kMinReadsEach = 50;
  constexpr int kReaders = 4;

  std::atomic<bool> stop{false};
  std::vector<std::string> errors(kReaders);
  std::vector<std::atomic<uint64_t>> reads(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&publisher, &stop, &errors, &reads, r] {
      uint64_t last_seq = 0;
      ShardSnapshot snap;
      while (!stop.load(std::memory_order_acquire)) {
        if (!publisher.Read(&snap)) continue;
        reads[static_cast<size_t>(r)].fetch_add(1,
                                                std::memory_order_relaxed);
        std::ostringstream err;
        const uint64_t v = snap.state_version;
        // Coherence: every field must come from the same publish.
        if (snap.threshold != static_cast<double>(v) ||
            snap.steps != 3 * v || snap.sample.state_version != v ||
            snap.sample.entries.size() != 1 + (v % 3) ||
            (snap.sample.entries.size() > 1 &&
             snap.sample.entries[0].item.id != v)) {
          err << "torn snapshot at version " << v << "; ";
        }
        if (snap.publish_seq < last_seq) {
          err << "publish_seq regressed " << last_seq << " -> "
              << snap.publish_seq << "; ";
        }
        last_seq = snap.publish_seq;
        errors[static_cast<size_t>(r)] += err.str();
      }
    });
  }

  // Publish at least kMinPublishes, then keep the writer going (with
  // yields, so a single-core box schedules the readers) until every
  // reader has seen a healthy number of snapshots.
  const auto slowest_reads = [&reads] {
    uint64_t slowest = ~uint64_t{0};
    for (const auto& r : reads) {
      slowest = std::min(slowest, r.load(std::memory_order_relaxed));
    }
    return slowest;
  };
  for (uint64_t v = 1; v <= kMinPublishes || slowest_reads() < kMinReadsEach;
       ++v) {
    ShardSnapshot snap;
    snap.state_version = v;
    snap.threshold = static_cast<double>(v);
    snap.steps = 3 * v;
    snap.sample.kind = SampleKind::kTopKey;
    snap.sample.target_size = 4;
    snap.sample.state_version = v;
    for (uint64_t e = 0; e < 1 + (v % 3); ++e) {
      snap.sample.entries.push_back(
          KI(v, 1.0, static_cast<double>(2 * v - e)));
    }
    publisher.Publish(std::move(snap));
    if (v % 64 == 0) std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  for (int r = 0; r < kReaders; ++r) {
    EXPECT_EQ(errors[static_cast<size_t>(r)], "") << " reader " << r;
    EXPECT_GE(reads[static_cast<size_t>(r)].load(), kMinReadsEach)
        << " reader " << r;
  }
}

// ---------------------------------------------------------------------
// Snapshot ring: time-travel reads and eviction semantics.

TEST(SnapshotRingTest, ReadAsOfServesNewestRetainedAtOrBelowVersion) {
  SnapshotPublisher publisher(/*ring_depth=*/4);
  for (uint64_t v : {10, 20, 30, 40, 50, 60}) {
    publisher.Publish(TopKeySnapshot(v, 2, {KI(v, 1.0, double(v))}));
  }
  // Retained: versions 30, 40, 50, 60 (10 and 20 evicted).
  ShardSnapshot snap;
  ASSERT_TRUE(publisher.ReadAsOf(1000, &snap));
  EXPECT_EQ(snap.state_version, 60u);
  ASSERT_TRUE(publisher.ReadAsOf(60, &snap));
  EXPECT_EQ(snap.state_version, 60u);
  ASSERT_TRUE(publisher.ReadAsOf(59, &snap));
  EXPECT_EQ(snap.state_version, 50u);
  ASSERT_TRUE(publisher.ReadAsOf(35, &snap));
  EXPECT_EQ(snap.state_version, 30u);
  EXPECT_EQ(snap.sample.entries[0].item.id, 30u);
  // Exactly the oldest retained version is still servable...
  ASSERT_TRUE(publisher.ReadAsOf(30, &snap));
  EXPECT_EQ(snap.state_version, 30u);
  // ...but one below it is history beyond the ring depth: eviction is a
  // hard miss, never an approximation by a newer snapshot.
  EXPECT_FALSE(publisher.ReadAsOf(29, &snap));
  EXPECT_FALSE(publisher.ReadAsOf(0, &snap));
}

TEST(SnapshotRingTest, DefaultDepthDegeneratesToLatestOnly) {
  SnapshotPublisher publisher;  // ring_depth = 1
  EXPECT_EQ(publisher.ring_depth(), 1);
  ShardSnapshot snap;
  EXPECT_FALSE(publisher.ReadAsOf(100, &snap));
  publisher.Publish(TopKeySnapshot(5, 2, {KI(1, 1.0, 1.0)}));
  publisher.Publish(TopKeySnapshot(9, 2, {KI(2, 1.0, 2.0)}));
  ASSERT_TRUE(publisher.ReadAsOf(9, &snap));
  EXPECT_EQ(snap.state_version, 9u);
  // Version 5 was the previous publish — already evicted at depth 1.
  EXPECT_FALSE(publisher.ReadAsOf(8, &snap));
}

TEST(SnapshotRingTest, DegradedPublishesKeepVersionsNondecreasing) {
  // Stale publishes freeze at the last clean version, so the ring can
  // hold duplicate versions; ReadAsOf must pick the newest publish.
  SnapshotPublisher publisher(/*ring_depth=*/4);
  publisher.Publish(TopKeySnapshot(7, 2, {KI(1, 1.0, 5.0)}));
  ShardSnapshot degraded = TopKeySnapshot(9, 2, {KI(2, 1.0, 1.0)});
  degraded.stale = true;
  publisher.Publish(degraded);
  ShardSnapshot snap;
  ASSERT_TRUE(publisher.ReadAsOf(7, &snap));
  EXPECT_EQ(snap.state_version, 7u);
  EXPECT_EQ(snap.publish_seq, 2u);  // the (frozen) stale republish
  EXPECT_TRUE(snap.stale);          // the flag rides along — never silent
}

// The ring under contention: one writer rotating slots, readers doing
// time-travel reads at random version bounds. Every returned copy must
// be coherent (all fields from one publish) and satisfy its bound. Run
// under TSan in CI.
TEST(SnapshotRingTest, ConcurrentTimeTravelReadersSeeCoherentSnapshots) {
  constexpr int kReaders = 4;
  constexpr int kRingDepth = 8;
  constexpr uint64_t kMinPublishes = 15000;
  constexpr uint64_t kMinReadsEach = 50;
  SnapshotPublisher publisher(kRingDepth);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> published_version{0};
  std::vector<std::string> errors(kReaders);
  std::vector<std::atomic<uint64_t>> reads(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&publisher, &stop, &errors, &reads,
                          &published_version, r] {
      Rng rng(1000 + static_cast<uint64_t>(r));
      ShardSnapshot snap;
      while (!stop.load(std::memory_order_acquire)) {
        // Bound near the write frontier so hits and evictions both occur.
        const uint64_t frontier =
            published_version.load(std::memory_order_acquire);
        const uint64_t bound =
            frontier <= 1 ? 1 : frontier - rng.NextBounded(2 * kRingDepth);
        if (!publisher.ReadAsOf(bound, &snap)) continue;
        reads[static_cast<size_t>(r)].fetch_add(1,
                                                std::memory_order_relaxed);
        std::ostringstream err;
        const uint64_t v = snap.state_version;
        if (v > bound) err << "bound " << bound << " violated by " << v << "; ";
        // Coherence: every field must come from the same publish.
        if (snap.threshold != static_cast<double>(v) || snap.steps != 3 * v ||
            snap.sample.state_version != v ||
            snap.sample.entries.size() != 1 + (v % 3)) {
          err << "torn snapshot at version " << v << "; ";
        }
        errors[static_cast<size_t>(r)] += err.str();
      }
    });
  }

  const auto slowest_reads = [&reads] {
    uint64_t slowest = ~uint64_t{0};
    for (const auto& r : reads) {
      slowest = std::min(slowest, r.load(std::memory_order_relaxed));
    }
    return slowest;
  };
  for (uint64_t v = 1; v <= kMinPublishes || slowest_reads() < kMinReadsEach;
       ++v) {
    ShardSnapshot snap;
    snap.state_version = v;
    snap.threshold = static_cast<double>(v);
    snap.steps = 3 * v;
    snap.sample.kind = SampleKind::kTopKey;
    snap.sample.target_size = 4;
    snap.sample.state_version = v;
    for (uint64_t e = 0; e < 1 + (v % 3); ++e) {
      snap.sample.entries.push_back(KI(v, 1.0, static_cast<double>(2 * v - e)));
    }
    publisher.Publish(std::move(snap));
    published_version.store(v, std::memory_order_release);
    if (v % 64 == 0) std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  for (int r = 0; r < kReaders; ++r) {
    EXPECT_EQ(errors[static_cast<size_t>(r)], "") << " reader " << r;
    EXPECT_GE(reads[static_cast<size_t>(r)].load(), kMinReadsEach)
        << " reader " << r;
  }
}

// ---------------------------------------------------------------------
// QueryService merge semantics.

TEST(QueryServiceTest, IncompleteUntilEveryShardPublishes) {
  SnapshotPublisher a, b;
  QueryService service({&a, &b});
  EXPECT_FALSE(service.Query().complete);

  a.Publish(TopKeySnapshot(1, 2, {KI(1, 1.0, 5.0)}));
  QueryResult partial = service.Query();
  EXPECT_FALSE(partial.complete);
  // The published shard's slice is still served (flagged incomplete).
  EXPECT_EQ(Ids(partial.merged.TopEntries()), std::vector<uint64_t>{1});
  EXPECT_EQ(partial.shards[1].publish_seq, 0u);

  b.Publish(TopKeySnapshot(1, 2, {KI(2, 1.0, 7.0)}));
  QueryResult full = service.Query();
  EXPECT_TRUE(full.complete);
  EXPECT_EQ(Ids(full.merged.TopEntries()), (std::vector<uint64_t>{2, 1}));
}

TEST(QueryServiceTest, FlagsStaleShardsAndSumsScalars) {
  SnapshotPublisher a, b;
  ShardSnapshot sa = TopKeySnapshot(4, 2, {KI(1, 1.0, 5.0)});
  sa.l1_estimate = 10.0;
  sa.steps = 100;
  a.Publish(sa);
  ShardSnapshot clean_b = TopKeySnapshot(2, 2, {KI(2, 1.0, 3.0)});
  clean_b.l1_estimate = 4.0;
  clean_b.steps = 50;
  b.Publish(clean_b);
  ShardSnapshot stale_b = clean_b;
  stale_b.stale = true;
  stale_b.session_epoch = 1;
  b.Publish(stale_b);

  QueryService service({&a, &b});
  const QueryResult result = service.Query();
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.any_stale);
  EXPECT_EQ(result.stale_shards, std::vector<int>{1});
  EXPECT_FALSE(result.shards[0].stale);
  EXPECT_TRUE(result.shards[1].stale);
  EXPECT_DOUBLE_EQ(result.l1_estimate, 14.0);
  EXPECT_EQ(result.steps, 150u);
  EXPECT_EQ(Ids(result.merged.TopEntries()), (std::vector<uint64_t>{1, 2}));
}

TEST(QueryServiceTest, EstimatorServesExactSumsBeforeSampleFills) {
  // Fewer merged candidates than s: no shard can have announced a
  // threshold, so the estimator must serve the complete candidate set
  // with tau = 0 (exact sums) instead of peeling an entry off as tau.
  SnapshotPublisher publisher;
  publisher.Publish(
      TopKeySnapshot(2, /*s=*/4, {KI(0, 3.0, 9.0), KI(1, 7.0, 5.0)}));
  QueryService service({&publisher});
  const ThresholdedSample ts = service.EstimatorSample();
  EXPECT_DOUBLE_EQ(ts.tau, 0.0);
  EXPECT_EQ(ts.top.size(), 2u);
  EXPECT_DOUBLE_EQ(service.TotalWeight(), 10.0);
  EXPECT_DOUBLE_EQ(
      service.SubsetCount([](const Item&) { return true; }), 2.0);

  // Once the s-th candidate exists the threshold conditioning kicks in.
  publisher.Publish(TopKeySnapshot(
      4, /*s=*/4,
      {KI(0, 3.0, 9.0), KI(1, 7.0, 5.0), KI(2, 1.0, 4.0), KI(3, 2.0, 2.0)}));
  const ThresholdedSample full = service.EstimatorSample();
  EXPECT_DOUBLE_EQ(full.tau, 2.0);
  EXPECT_EQ(full.top.size(), 3u);
}

// ---------------------------------------------------------------------
// The root-merge cache.

TEST(MergeCacheTest, HitsUntilAnyShardPublishes) {
  SnapshotPublisher a, b;
  a.Publish(TopKeySnapshot(1, 2, {KI(1, 1.0, 5.0)}));
  b.Publish(TopKeySnapshot(1, 2, {KI(2, 1.0, 7.0)}));
  QueryService service({&a, &b});

  const auto first = service.QueryShared();
  ASSERT_TRUE(first->complete);
  EXPECT_EQ(Ids(first->merged.TopEntries()), (std::vector<uint64_t>{2, 1}));
  const auto second = service.QueryShared();
  // A hit serves the very same cached object — O(1), no re-merge, no
  // per-shard snapshot copies.
  EXPECT_EQ(first.get(), second.get());

  auto stats = service.stats();
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_invalidations, 0u);
  EXPECT_EQ(stats.snapshot_copies_avoided, 2u);  // hits * shards

  // Any shard's publish invalidates: the next query re-merges.
  b.Publish(TopKeySnapshot(2, 2, {KI(3, 1.0, 9.0)}));
  const auto third = service.QueryShared();
  EXPECT_NE(first.get(), third.get());
  // Shard b's new snapshot replaced its old one: the merge now sees
  // {3} from b and {1} from a.
  EXPECT_EQ(Ids(third->merged.TopEntries()), (std::vector<uint64_t>{3, 1}));
  stats = service.stats();
  EXPECT_EQ(stats.cache_misses, 2u);
  EXPECT_EQ(stats.cache_invalidations, 1u);

  // The invalidated result a reader still holds stays valid and
  // unchanged — invalidation swaps the cache, it never mutates a
  // served entry.
  EXPECT_EQ(Ids(first->merged.TopEntries()), (std::vector<uint64_t>{2, 1}));
  EXPECT_EQ(first->shards[1].state_version, 1u);
}

TEST(MergeCacheTest, CachedAndUncachedAnswersAgree) {
  SnapshotPublisher a, b;
  a.Publish(TopKeySnapshot(3, 4, {KI(1, 2.0, 8.0), KI(4, 1.0, 2.0)}));
  b.Publish(TopKeySnapshot(5, 4, {KI(2, 1.0, 7.0), KI(3, 3.0, 4.0)}));
  QueryService service({&a, &b});
  const QueryResult uncached = service.Query();
  const auto cached = service.QueryShared();
  EXPECT_EQ(Ids(cached->merged.TopEntries()),
            Ids(uncached.merged.TopEntries()));
  EXPECT_EQ(cached->complete, uncached.complete);
  EXPECT_EQ(cached->steps, uncached.steps);
  ASSERT_EQ(cached->shards.size(), uncached.shards.size());
  for (size_t j = 0; j < cached->shards.size(); ++j) {
    EXPECT_EQ(cached->shards[j].publish_seq, uncached.shards[j].publish_seq);
    EXPECT_EQ(cached->shards[j].state_version,
              uncached.shards[j].state_version);
  }
}

// The invalidation race: publishes landing while concurrent readers
// serve from and rebuild the cache. Every served result must be
// coherent (all fields of each shard's slice from one publish, the key
// vector matching the slices) and per-reader monotone. Run under TSan
// in CI — this is the torn-sequence-vector check.
TEST(MergeCacheTest, ConcurrentCachedReadersDuringPublishes) {
  constexpr int kReaders = 4;
  constexpr int kShards = 2;
  constexpr uint64_t kMinPublishes = 15000;
  constexpr uint64_t kMinReadsEach = 50;
  SnapshotPublisher publishers[kShards];
  QueryService service({&publishers[0], &publishers[1]});

  std::atomic<bool> stop{false};
  std::vector<std::string> errors(kReaders);
  std::vector<std::atomic<uint64_t>> reads(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&service, &stop, &errors, &reads, r] {
      std::vector<uint64_t> last_seq(kShards, 0);
      while (!stop.load(std::memory_order_acquire)) {
        const auto result = service.QueryShared();
        if (!result->complete) continue;
        reads[static_cast<size_t>(r)].fetch_add(1,
                                                std::memory_order_relaxed);
        std::ostringstream err;
        for (int j = 0; j < kShards; ++j) {
          const ShardSnapshot& snap = result->shards[static_cast<size_t>(j)];
          const uint64_t v = snap.state_version;
          // Per-slice coherence (same self-consistent stamps as the
          // publisher stress tests).
          if (snap.threshold != static_cast<double>(v) ||
              snap.steps != 3 * v + static_cast<uint64_t>(j) ||
              snap.sample.state_version != v) {
            err << "torn shard " << j << " slice at version " << v << "; ";
          }
          if (snap.publish_seq < last_seq[static_cast<size_t>(j)]) {
            err << "shard " << j << " publish_seq regressed; ";
          }
          last_seq[static_cast<size_t>(j)] = snap.publish_seq;
        }
        errors[static_cast<size_t>(r)] += err.str();
      }
    });
  }

  const auto slowest_reads = [&reads] {
    uint64_t slowest = ~uint64_t{0};
    for (const auto& r : reads) {
      slowest = std::min(slowest, r.load(std::memory_order_relaxed));
    }
    return slowest;
  };
  Rng rng(4242);
  for (uint64_t v = 1; v <= kMinPublishes || slowest_reads() < kMinReadsEach;
       ++v) {
    // Publish to a random shard so the cache key vector advances
    // unevenly — the torn-vector hazard the double check must kill.
    const int j = static_cast<int>(rng.NextBounded(kShards));
    ShardSnapshot snap;
    snap.state_version = v;
    snap.threshold = static_cast<double>(v);
    snap.steps = 3 * v + static_cast<uint64_t>(j);
    snap.sample.kind = SampleKind::kTopKey;
    snap.sample.target_size = 4;
    snap.sample.state_version = v;
    snap.sample.entries.push_back(KI(v, 1.0, static_cast<double>(v)));
    publishers[j].Publish(std::move(snap));
    if (v % 64 == 0) std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  for (int r = 0; r < kReaders; ++r) {
    EXPECT_EQ(errors[static_cast<size_t>(r)], "") << " reader " << r;
    EXPECT_GE(reads[static_cast<size_t>(r)].load(), kMinReadsEach)
        << " reader " << r;
  }
  const auto stats = service.stats();
  EXPECT_GT(stats.cache_misses, 0u);
  EXPECT_EQ(stats.snapshot_copies_avoided, stats.cache_hits * kShards);
}

// ---------------------------------------------------------------------
// Freshness SLOs.

TEST(FreshnessSloTest, AlreadyFreshServesWithoutWaiting) {
  SnapshotPublisher publisher;
  publisher.Publish(TopKeySnapshot(10, 2, {KI(1, 1.0, 5.0)}));
  QueryService service({&publisher});
  query::QueryOptions options;
  options.min_version = 10;
  options.max_staleness = std::chrono::seconds(10);
  const QueryResult result = service.Query(options);
  EXPECT_TRUE(result.version_satisfied);
  EXPECT_TRUE(result.lagging_shards.empty());
  EXPECT_EQ(result.shards[0].state_version, 10u);
  const auto stats = service.stats();
  EXPECT_EQ(stats.slo_waits, 0u);
  EXPECT_EQ(stats.slo_timeouts, 0u);
}

TEST(FreshnessSloTest, TimeoutServesFlaggedNotStaleMerged) {
  SnapshotPublisher a, b;
  a.Publish(TopKeySnapshot(5, 2, {KI(1, 1.0, 5.0)}));
  b.Publish(TopKeySnapshot(50, 2, {KI(2, 1.0, 7.0)}));
  QueryService service({&a, &b});
  query::QueryOptions options;
  options.min_version = 50;  // shard 0 will never get there
  options.max_staleness = std::chrono::milliseconds(20);
  const QueryResult result = service.Query(options);
  // Served, flagged, with the lagging shard listed — and the merged
  // content is the real current state, not silently dropped or frozen.
  EXPECT_FALSE(result.version_satisfied);
  EXPECT_EQ(result.lagging_shards, std::vector<int>{0});
  EXPECT_TRUE(result.complete);
  EXPECT_FALSE(result.any_stale);  // SLO lag is not fault staleness
  EXPECT_EQ(Ids(result.merged.TopEntries()), (std::vector<uint64_t>{2, 1}));
  const auto stats = service.stats();
  EXPECT_EQ(stats.slo_waits, 1u);
  EXPECT_EQ(stats.slo_timeouts, 1u);
}

TEST(FreshnessSloTest, WaitIsSatisfiedByConcurrentPublish) {
  SnapshotPublisher publisher;
  publisher.Publish(TopKeySnapshot(1, 2, {KI(1, 1.0, 5.0)}));
  QueryService service({&publisher});
  std::thread writer([&publisher] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    publisher.Publish(TopKeySnapshot(7, 2, {KI(2, 1.0, 9.0)}));
  });
  query::QueryOptions options;
  options.min_version = 7;
  options.max_staleness = std::chrono::seconds(30);
  const QueryResult result = service.Query(options);
  writer.join();
  EXPECT_TRUE(result.version_satisfied);
  EXPECT_TRUE(result.lagging_shards.empty());
  EXPECT_GE(result.shards[0].state_version, 7u);
  // The version-7 publish replaced the shard's snapshot wholesale.
  EXPECT_EQ(Ids(result.merged.TopEntries()), std::vector<uint64_t>{2});
  const auto stats = service.stats();
  EXPECT_EQ(stats.slo_waits, 1u);
  EXPECT_EQ(stats.slo_timeouts, 0u);
}

TEST(FreshnessSloTest, WaitForStateVersionDirectly) {
  SnapshotPublisher publisher;
  publisher.Publish(TopKeySnapshot(3, 2, {KI(1, 1.0, 5.0)}));
  EXPECT_TRUE(publisher.WaitForStateVersion(3, std::chrono::nanoseconds(0)));
  EXPECT_FALSE(
      publisher.WaitForStateVersion(4, std::chrono::milliseconds(5)));
  publisher.Publish(TopKeySnapshot(4, 2, {KI(2, 1.0, 6.0)}));
  EXPECT_TRUE(publisher.WaitForStateVersion(4, std::chrono::nanoseconds(0)));
}

// ---------------------------------------------------------------------
// The concurrent reader/writer stress harness.

// Accumulates referee verdicts off-thread (gtest assertions are not
// thread-safe on failure); the main thread asserts after joining.
struct RefereeState {
  explicit RefereeState(int num_shards)
      : publish_seq(static_cast<size_t>(num_shards), 0),
        state_version(static_cast<size_t>(num_shards), 0),
        steps(static_cast<size_t>(num_shards), 0),
        session_epoch(static_cast<size_t>(num_shards), 0),
        threshold(static_cast<size_t>(num_shards), 0.0) {}

  std::vector<uint64_t> publish_seq;
  std::vector<uint64_t> state_version;
  std::vector<uint64_t> steps;
  std::vector<uint64_t> session_epoch;
  std::vector<double> threshold;
  size_t merged_size = 0;
  uint64_t reads = 0;
  std::string errors;
};

// The quiesce-point-validity referee: every query result must look like
// a state the protocol could legally be in at some prefix — versions,
// steps, epochs and thresholds only move forward per shard, the merged
// sample is a well-formed weighted SWOR answer, and per-shard summaries
// respect the paper's O(s) space bound.
void Referee(const QueryResult& result, size_t s, uint64_t max_items,
             bool expect_clean, RefereeState& st) {
  ++st.reads;
  std::ostringstream err;
  const size_t num_shards = st.publish_seq.size();
  if (result.shards.size() != num_shards) {
    err << "shard count " << result.shards.size() << " != " << num_shards
        << "; ";
  }
  for (size_t j = 0; j < result.shards.size() && j < num_shards; ++j) {
    const ShardSnapshot& snap = result.shards[j];
    if (snap.publish_seq == 0) continue;  // not published yet
    if (snap.publish_seq < st.publish_seq[j]) {
      err << "shard " << j << " publish_seq regressed; ";
    }
    if (snap.state_version < st.state_version[j]) {
      err << "shard " << j << " state_version regressed; ";
    }
    if (snap.steps < st.steps[j]) err << "shard " << j << " steps regressed; ";
    if (snap.session_epoch < st.session_epoch[j]) {
      err << "shard " << j << " session epoch regressed; ";
    }
    if (snap.threshold + 1e-12 < st.threshold[j]) {
      err << "shard " << j << " threshold regressed; ";
    }
    if (expect_clean && snap.stale) err << "shard " << j << " stale; ";
    // Proposition 6 space audit on the exported summary.
    if (snap.sample.entries.size() > s) {
      err << "shard " << j << " exports " << snap.sample.entries.size()
          << " > s entries; ";
    }
    if (snap.sample.withheld.size() > s) {
      err << "shard " << j << " exports " << snap.sample.withheld.size()
          << " > s withheld; ";
    }
    st.publish_seq[j] = snap.publish_seq;
    st.state_version[j] = snap.state_version;
    st.steps[j] = snap.steps;
    st.session_epoch[j] = snap.session_epoch;
    st.threshold[j] = snap.threshold;
  }
  const std::vector<KeyedItem> top = result.merged.TopEntries();
  if (top.size() > s) err << "merged sample larger than s; ";
  if (result.complete && top.size() < st.merged_size) {
    err << "merged sample shrank " << st.merged_size << " -> " << top.size()
        << "; ";
  }
  std::set<uint64_t> ids;
  for (size_t i = 0; i < top.size(); ++i) {
    if (!(top[i].key > 0.0)) err << "non-positive key; ";
    if (i > 0 && top[i - 1].key < top[i].key) err << "keys not descending; ";
    if (top[i].item.id >= max_items) err << "id out of range; ";
    ids.insert(top[i].item.id);
  }
  if (ids.size() != top.size()) err << "duplicate ids in merged sample; ";
  if (result.complete) st.merged_size = top.size();
  st.errors += err.str();
}

TEST(LiveQueryStressTest, ConcurrentReadersDuringIngestion) {
  constexpr int kReaders = 4;
  constexpr int k = 8;
  constexpr int s = 16;
  constexpr uint64_t n = 25000;
  for (int shards : {1, 2, 4}) {
    WsworConfig config;
    config.num_sites = k;
    config.sample_size = s;
    config.seed = 90 + static_cast<uint64_t>(shards);
    const Workload w = ZipfWorkload(k, n, /*seed=*/31);

    ShardedEngineConfig engine_config;
    engine_config.num_sites = k;
    engine_config.num_shards = shards;
    engine_config.shard.batch_size = 16;  // many handoffs -> live traffic
    engine_config.shard.item_queue_batches = 4;
    engine_config.shard.message_queue_capacity = 256;
    ShardedEngine eng(engine_config);
    const ShardedWsworEndpoints endpoints = AttachShardedWswor(config, eng);
    const std::unique_ptr<LiveShardPublishers> publishers =
        query::EnableWsworLiveQueries(eng, endpoints);
    QueryService service(publishers->views());

    std::atomic<bool> stop{false};
    std::vector<std::unique_ptr<RefereeState>> states;
    std::vector<std::thread> readers;
    for (int r = 0; r < kReaders; ++r) {
      states.push_back(std::make_unique<RefereeState>(shards));
      RefereeState* st = states.back().get();
      readers.emplace_back([&service, &stop, st, s = size_t{s}] {
        while (!stop.load(std::memory_order_acquire)) {
          Referee(service.Query(), s, n, /*expect_clean=*/true, *st);
        }
      });
    }

    eng.Run(w);  // pipelined; ends quiescent

    // One more referee pass per reader after full quiesce, then stop.
    stop.store(true, std::memory_order_release);
    for (std::thread& t : readers) t.join();

    // Final answer must coincide with the stop-the-world root merge.
    const QueryResult final_result = service.Query();
    EXPECT_TRUE(final_result.complete);
    EXPECT_FALSE(final_result.any_stale);
    const std::vector<KeyedItem> live = final_result.merged.TopEntries();
    const std::vector<KeyedItem> direct = eng.MergedSample().TopEntries();
    ASSERT_EQ(live.size(), direct.size());
    for (size_t i = 0; i < live.size(); ++i) {
      EXPECT_EQ(live[i].item.id, direct[i].item.id) << " position " << i;
      EXPECT_EQ(live[i].key, direct[i].key) << " position " << i;
    }
    for (int j = 0; j < shards; ++j) {
      EXPECT_EQ(final_result.shards[static_cast<size_t>(j)].state_version,
                endpoints.coordinators[static_cast<size_t>(j)]->StateVersion())
          << " shard " << j;
    }

    for (int r = 0; r < kReaders; ++r) {
      EXPECT_EQ(states[static_cast<size_t>(r)]->errors, "")
          << " S=" << shards << " reader " << r;
      EXPECT_GT(states[static_cast<size_t>(r)]->reads, 0u)
          << " S=" << shards << " reader " << r;
    }
    eng.Shutdown();
  }
}

// ---------------------------------------------------------------------
// Distribution exactness of live-served samples at S ∈ {1, 2, 4}.

TEST(LiveQueryDistributionTest, ServedSampleChiSquareAcrossShardCounts) {
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  const int k = 4, s = 2, trials = 2000;
  for (int shards : {1, 2, 4}) {
    const auto result = testing::SworSetGoodnessOfFit(
        weights, s, trials, [&](int t) {
          WsworConfig config;
          config.num_sites = k;
          config.sample_size = s;
          config.seed = 220000 * static_cast<uint64_t>(shards) +
                        static_cast<uint64_t>(t);
          ShardedEngineConfig engine_config;
          engine_config.num_sites = k;
          engine_config.num_shards = shards;
          engine_config.shard.batch_size = 2;
          engine_config.shard.item_queue_batches = 2;
          ShardedEngine eng(engine_config);
          const ShardedWsworEndpoints endpoints =
              AttachShardedWswor(config, eng);
          const std::unique_ptr<LiveShardPublishers> publishers =
              query::EnableWsworLiveQueries(eng, endpoints);
          QueryService service(publishers->views());
          eng.Run(SmallWeighted(weights, k,
                                /*seed=*/411 + static_cast<uint64_t>(t)));
          const std::vector<uint64_t> ids = Ids(service.Sample());
          eng.Shutdown();
          return ids;
        });
    EXPECT_GT(result.p_value, 1e-3)
        << "S=" << shards << " chi2=" << result.statistic;
  }
}

TEST(LiveQueryDistributionTest, MidStreamSnapshotIsExactSworOfPrefix) {
  // Query a LIVE snapshot mid-stream (step-synchronous, so the prefix is
  // pinned) and chi-square it against the exact SWOR distribution over
  // that prefix: a served snapshot is a real sample, not merely a
  // well-formed one.
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0, 2.0,
                                       1.0, 5.0, 1.0, 3.0, 2.0};
  const int k = 4, s = 2, shards = 2, trials = 1500;
  const uint64_t prefix = 6;
  const Workload w = SmallWeighted(weights, k, /*seed=*/77);
  const std::vector<double> prefix_weights(weights.begin(),
                                           weights.begin() + prefix);
  const auto result = testing::SworSetGoodnessOfFit(
      prefix_weights, s, trials, [&](int t) {
        WsworConfig config;
        config.num_sites = k;
        config.sample_size = s;
        config.seed = 660000 + static_cast<uint64_t>(t);
        ShardedEngineConfig engine_config;
        engine_config.num_sites = k;
        engine_config.num_shards = shards;
        ShardedEngine eng(engine_config);
        const ShardedWsworEndpoints endpoints =
            AttachShardedWswor(config, eng);
        const std::unique_ptr<LiveShardPublishers> publishers =
            query::EnableWsworLiveQueries(eng, endpoints);
        QueryService service(publishers->views());
        std::vector<uint64_t> ids;
        eng.Run(w, [&](uint64_t step) {
          if (step == prefix) ids = Ids(service.Sample());
        });
        eng.Shutdown();
        return ids;
      });
  EXPECT_GT(result.p_value, 1e-3) << "chi2=" << result.statistic;
}

// ---------------------------------------------------------------------
// Engine publication vs the step-synchronous simulator reference.

TEST(LiveQueryEquivalenceTest, EngineStepSyncMatchesSimReference) {
  const int k = 4, shards = 2;
  const WsworConfig config{.num_sites = k, .sample_size = 8, .seed = 131};
  const Workload w = ZipfWorkload(k, 1500, /*seed=*/47);

  // Reference transcript: simulator backend, per-step publication.
  sim::ShardedRuntime runtime(k, shards);
  const ShardedWsworEndpoints sim_endpoints =
      AttachShardedWswor(config, runtime);
  LiveShardPublishers sim_publishers(shards);
  query::PublishWsworSnapshots(runtime, sim_endpoints, sim_publishers);
  QueryService sim_service(sim_publishers.views());
  std::vector<QueryResult> reference;
  reference.reserve(w.size());
  runtime.Run(w, [&](uint64_t) {
    query::PublishWsworSnapshots(runtime, sim_endpoints, sim_publishers);
    reference.push_back(sim_service.Query());
  });

  // Engine transcript: coordinator-thread publication, step-synchronous.
  ShardedEngineConfig engine_config;
  engine_config.num_sites = k;
  engine_config.num_shards = shards;
  ShardedEngine eng(engine_config);
  const ShardedWsworEndpoints eng_endpoints = AttachShardedWswor(config, eng);
  const std::unique_ptr<LiveShardPublishers> eng_publishers =
      query::EnableWsworLiveQueries(eng, eng_endpoints);
  QueryService eng_service(eng_publishers->views());
  uint64_t mismatches = 0;
  eng.Run(w, [&](uint64_t step) {
    const QueryResult live = eng_service.Query();
    const QueryResult& ref = reference[step - 1];
    ASSERT_TRUE(live.complete);
    ASSERT_TRUE(ref.complete);
    bool equal = live.any_stale == ref.any_stale;
    for (int j = 0; j < shards && equal; ++j) {
      const ShardSnapshot& a = live.shards[static_cast<size_t>(j)];
      const ShardSnapshot& b = ref.shards[static_cast<size_t>(j)];
      equal = a.state_version == b.state_version && a.steps == b.steps &&
              a.threshold == b.threshold &&
              a.session_epoch == b.session_epoch &&
              a.messages.site_to_coord == b.messages.site_to_coord &&
              a.messages.coord_to_site == b.messages.coord_to_site &&
              a.messages.words == b.messages.words;
    }
    const std::vector<KeyedItem> la = live.merged.TopEntries();
    const std::vector<KeyedItem> lb = ref.merged.TopEntries();
    equal = equal && la.size() == lb.size();
    for (size_t i = 0; equal && i < la.size(); ++i) {
      equal = la[i].item.id == lb[i].item.id && la[i].key == lb[i].key;
    }
    if (!equal) {
      ++mismatches;
      ASSERT_LT(mismatches, 5u) << " first divergence at step " << step;
    }
  });
  EXPECT_EQ(mismatches, 0u);
  eng.Shutdown();
}

// Time-travel bit-identity: after a full engine run with a ring deep
// enough to retain every publish, ReadAsOf at each step-boundary state
// version must reproduce the simulator reference's snapshot for that
// step bit for bit — the engine's per-message publication history
// contains the reference's per-step history as a subsequence, and the
// as-of read finds exactly the right element of it.
TEST(LiveQueryEquivalenceTest, RingAsOfMatchesSimReferenceAtStepBoundaries) {
  const int k = 4, shards = 2;
  const WsworConfig config{.num_sites = k, .sample_size = 8, .seed = 131};
  const Workload w = ZipfWorkload(k, 800, /*seed=*/47);

  // Reference transcript: simulator backend, per-step publication.
  sim::ShardedRuntime runtime(k, shards);
  const ShardedWsworEndpoints sim_endpoints =
      AttachShardedWswor(config, runtime);
  LiveShardPublishers sim_publishers(shards);
  query::PublishWsworSnapshots(runtime, sim_endpoints, sim_publishers);
  QueryService sim_service(sim_publishers.views());
  std::vector<QueryResult> reference;
  reference.reserve(w.size());
  runtime.Run(w, [&](uint64_t) {
    query::PublishWsworSnapshots(runtime, sim_endpoints, sim_publishers);
    reference.push_back(sim_service.Query());
  });

  // Engine run, step-synchronous, with an evict-nothing ring.
  ShardedEngineConfig engine_config;
  engine_config.num_sites = k;
  engine_config.num_shards = shards;
  ShardedEngine eng(engine_config);
  const ShardedWsworEndpoints eng_endpoints = AttachShardedWswor(config, eng);
  const std::unique_ptr<LiveShardPublishers> eng_publishers =
      query::EnableWsworLiveQueries(eng, eng_endpoints,
                                    /*ring_depth=*/1 << 14);
  eng.Run(w, [](uint64_t) {});  // on_step forces step-synchronous mode

  for (int j = 0; j < shards; ++j) {
    ASSERT_LE(eng_publishers->shard(j).publish_count(), uint64_t{1} << 14)
        << " ring too shallow for this run; test premise broken";
  }
  for (size_t step = 0; step < reference.size(); ++step) {
    for (int j = 0; j < shards; ++j) {
      const ShardSnapshot& ref = reference[step].shards[static_cast<size_t>(j)];
      ShardSnapshot live;
      ASSERT_TRUE(
          eng_publishers->shard(j).ReadAsOf(ref.state_version, &live))
          << " step " << step + 1 << " shard " << j;
      EXPECT_EQ(live.state_version, ref.state_version)
          << " step " << step + 1 << " shard " << j;
      EXPECT_EQ(live.steps, ref.steps) << " step " << step + 1;
      EXPECT_EQ(live.threshold, ref.threshold) << " step " << step + 1;
      EXPECT_EQ(live.session_epoch, ref.session_epoch) << " step " << step + 1;
      EXPECT_EQ(live.messages.site_to_coord, ref.messages.site_to_coord)
          << " step " << step + 1;
      EXPECT_EQ(live.messages.coord_to_site, ref.messages.coord_to_site)
          << " step " << step + 1;
      EXPECT_EQ(live.messages.words, ref.messages.words) << " step "
                                                         << step + 1;
      const std::vector<KeyedItem> la = live.sample.TopEntries();
      const std::vector<KeyedItem> lb = ref.sample.TopEntries();
      ASSERT_EQ(la.size(), lb.size()) << " step " << step + 1 << " shard "
                                      << j;
      for (size_t i = 0; i < la.size(); ++i) {
        EXPECT_EQ(la[i].item.id, lb[i].item.id)
            << " step " << step + 1 << " shard " << j << " position " << i;
        EXPECT_EQ(la[i].key, lb[i].key)
            << " step " << step + 1 << " shard " << j << " position " << i;
      }
    }
  }
  eng.Shutdown();
}

// ---------------------------------------------------------------------
// Fault semantics: last clean epoch, flagged, never silently merged.

TEST(LiveQueryFaultsTest, GapWindowsServeLastCleanStateFlagged) {
  const WsworConfig config{.num_sites = 4, .sample_size = 8, .seed = 17};
  FaultConfig faults;
  faults.seed = 23;
  faults.drop_prob = 0.2;
  faults.delay_prob = 0.1;
  faults.max_delay = 3;
  const Workload w = ZipfWorkload(4, 1200, /*seed=*/53);

  FaultyWswor run(config, faults, Backend::kSim);
  SnapshotPublisher publisher;
  publisher.Publish(query::CaptureSessionSnapshot(run.coordinator_session()));
  QueryService service({&publisher});

  uint64_t stale_reads = 0, clean_reads = 0;
  ShardSnapshot last_clean;
  run.Run(w, [&](uint64_t step) {
    publisher.Publish(
        query::CaptureSessionSnapshot(run.coordinator_session()));
    const QueryResult result = service.Query();
    const ShardSnapshot& snap = result.shards[0];
    if (result.any_stale) {
      ++stale_reads;
      // Frozen at the last clean state: version and content pinned.
      EXPECT_EQ(snap.state_version, last_clean.state_version)
          << " step " << step;
      EXPECT_EQ(Ids(result.merged.TopEntries()),
                Ids(last_clean.sample.TopEntries()))
          << " step " << step;
      EXPECT_EQ(result.stale_shards, std::vector<int>{0});
    } else {
      ++clean_reads;
      last_clean = snap;
    }
  });
  // The schedule must actually have produced both regimes.
  EXPECT_GT(stale_reads, 0u);
  EXPECT_GT(clean_reads, 0u);

  // After the end-of-stream reconcile the network healed and every gap
  // resolved: the shard serves fresh, unflagged state again.
  publisher.Publish(query::CaptureSessionSnapshot(run.coordinator_session()));
  const QueryResult final_result = service.Query();
  EXPECT_FALSE(final_result.any_stale);
  EXPECT_TRUE(run.report().clean);
  EXPECT_EQ(Ids(final_result.merged.TopEntries()), run.SampleIds());
}

TEST(LiveQueryFaultsTest, ShardWithIrrecoverableLossStaysFlagged) {
  // Find a fault seed whose crash schedule wipes un-acked data on shard
  // 0 (a non-clean run); shard 1 stays clean. The merged query must
  // flag shard 0 and only shard 0 — degraded data is never silently
  // merged, even after reconcile.
  const int k = 4, s = 4;
  const Workload w = ZipfWorkload(k, 600, /*seed=*/71);
  FaultConfig crashy;
  // Crashes alone lose nothing on a zero-delay network (acks return
  // within the step, so the unacked buffer is empty between items);
  // in-flight delayed/dropped messages are what a crash wipes.
  crashy.crash_prob = 0.05;
  crashy.crash_down_items = 4;
  crashy.drop_prob = 0.25;
  crashy.delay_prob = 0.3;
  crashy.max_delay = 6;
  bool found = false;
  for (uint64_t fault_seed = 1; fault_seed <= 40 && !found; ++fault_seed) {
    crashy.seed = fault_seed;
    WsworConfig config;
    config.num_sites = k;
    config.sample_size = s;
    config.seed = 7000 + fault_seed;
    ShardedFaultyWswor run(config, {crashy, FaultConfig{}}, Backend::kSim);
    run.Run(w);
    if (run.shard(0).report().clean) continue;
    found = true;

    LiveShardPublishers publishers(2);
    for (int j = 0; j < 2; ++j) {
      publishers.shard(j).Publish(query::CaptureSessionSnapshot(
          run.shard(j).coordinator_session(),
          /*force_stale=*/!run.shard(j).report().clean));
    }
    QueryService service(publishers.views());
    const QueryResult result = service.Query();
    EXPECT_TRUE(result.complete);
    EXPECT_TRUE(result.any_stale);
    EXPECT_EQ(result.stale_shards, std::vector<int>{0});
    // The served answer is still the exact root merge over what was
    // delivered — the flag, not a silent content swap, carries the
    // degradation.
    EXPECT_EQ(Ids(result.merged.TopEntries()), run.MergedSampleIds());
  }
  EXPECT_TRUE(found) << " no fault seed in range produced data loss";
}

// ---------------------------------------------------------------------
// L1 serving through the same path.

TEST(LiveQueryL1Test, L1EstimateMatchesShardedEstimateExactly) {
  const int k = 4, shards = 2;
  const ShardTopology topo(k, shards);
  L1TrackerConfig config;
  config.num_sites = k;
  config.eps = 0.15;
  config.delta = 0.1;
  config.seed = 29;

  const Workload w = WorkloadBuilder()
                         .num_sites(k)
                         .num_items(600)
                         .seed(37)
                         .weights(std::make_unique<UniformWeights>(1.0, 16.0))
                         .partitioner(std::make_unique<RandomPartitioner>())
                         .Build();

  sim::ShardedRuntime runtime(k, shards);
  std::vector<std::unique_ptr<L1Site>> sites;
  std::vector<std::unique_ptr<WsworCoordinator>> coords;
  std::vector<L1TrackerConfig> shard_configs;
  for (int j = 0; j < shards; ++j) {
    L1TrackerConfig shard_config = config;
    shard_config.num_sites = topo.SiteCount(j);
    shard_config.seed = ShardSeed(config.seed, j);
    shard_configs.push_back(shard_config);
  }
  Rng master(config.seed);
  for (int i = 0; i < k; ++i) {
    const int j = topo.ShardOf(i);
    sites.push_back(std::make_unique<L1Site>(
        shard_configs[static_cast<size_t>(j)], topo.LocalOf(i),
        &runtime.shard_network(j), master.NextU64()));
    runtime.AttachSite(i, sites.back().get());
  }
  for (int j = 0; j < shards; ++j) {
    coords.push_back(std::make_unique<WsworCoordinator>(
        L1CoordinatorConfig(shard_configs[static_cast<size_t>(j)]),
        &runtime.shard_network(j), master.NextU64()));
    runtime.AttachShardCoordinator(j, coords.back().get());
  }
  runtime.Run(w);

  LiveShardPublishers publishers(shards);
  for (int j = 0; j < shards; ++j) {
    query::ShardSnapshot snap = query::CaptureL1Snapshot(
        shard_configs[static_cast<size_t>(j)], *coords[static_cast<size_t>(j)]);
    snap.steps = runtime.shard_runtime(j).steps();
    publishers.shard(j).Publish(std::move(snap));
  }
  QueryService service(publishers.views());

  std::vector<const WsworCoordinator*> coordinator_ptrs;
  for (const auto& c : coords) coordinator_ptrs.push_back(c.get());
  const double direct = ShardedL1Estimate(config, coordinator_ptrs);
  EXPECT_DOUBLE_EQ(service.L1Estimate(), direct);
  const double truth = w.TotalWeight();
  EXPECT_LT(std::abs(service.L1Estimate() - truth) / truth, config.eps);
  // The merged scalar summary agrees with the summed per-shard field.
  const QueryResult result = service.Query();
  EXPECT_EQ(result.merged.kind, SampleKind::kScalarSum);
  EXPECT_DOUBLE_EQ(result.merged.scalar, result.l1_estimate);
}

}  // namespace
}  // namespace dwrs
