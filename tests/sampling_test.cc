#include <algorithm>
#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "random/exponential_order_stats.h"
#include "sampling/efraimidis_spirakis.h"
#include "sampling/priority_sampling.h"
#include "sampling/reservoir.h"
#include "sampling/top_key_heap.h"
#include "sampling/weighted_swr.h"
#include "stats/chi_square.h"
#include "stats/summary.h"
#include "test_util.h"

namespace dwrs {
namespace {

TEST(TopKeyHeapTest, KeepsLargestKeys) {
  TopKeyHeap<int> heap(3);
  EXPECT_FALSE(heap.full());
  EXPECT_DOUBLE_EQ(heap.ThresholdOrZero(), 0.0);
  heap.Offer(5.0, 50);
  heap.Offer(1.0, 10);
  heap.Offer(3.0, 30);
  EXPECT_TRUE(heap.full());
  EXPECT_DOUBLE_EQ(heap.MinKey(), 1.0);
  // 2.0 beats 1.0.
  TopKeyHeap<int>::Entry evicted{0.0, 0};
  EXPECT_TRUE(heap.Offer(2.0, 20, &evicted));
  EXPECT_EQ(evicted.value, 10);
  EXPECT_DOUBLE_EQ(heap.MinKey(), 2.0);
  // 1.5 loses.
  EXPECT_FALSE(heap.Offer(1.5, 15));
  const auto sorted = heap.SortedDescending();
  EXPECT_DOUBLE_EQ(sorted[0].key, 5.0);
  EXPECT_DOUBLE_EQ(sorted[1].key, 3.0);
  EXPECT_DOUBLE_EQ(sorted[2].key, 2.0);
}

TEST(TopKeyHeapTest, ExtractIfRemovesMatching) {
  TopKeyHeap<int> heap(5);
  for (int i = 1; i <= 5; ++i) heap.Offer(i, i);
  const auto evens = heap.ExtractIf(
      [](const TopKeyHeap<int>::Entry& e) { return e.value % 2 == 0; });
  EXPECT_EQ(evens.size(), 2u);
  EXPECT_EQ(heap.size(), 3u);
  EXPECT_DOUBLE_EQ(heap.MinKey(), 1.0);
  heap.Offer(0.5, 0);
  EXPECT_EQ(heap.size(), 4u);
}

TEST(TopKeyHeapTest, ThresholdSemantics) {
  TopKeyHeap<int> heap(2);
  heap.Offer(10.0, 1);
  EXPECT_DOUBLE_EQ(heap.ThresholdOrZero(), 0.0);  // not full yet
  heap.Offer(20.0, 2);
  EXPECT_DOUBLE_EQ(heap.ThresholdOrZero(), 10.0);
}

TEST(ReservoirTest, SampleSizeIsMinTs) {
  ReservoirSampler r(5, 1);
  for (uint64_t i = 0; i < 3; ++i) r.Add(Item{i, 1.0});
  EXPECT_EQ(r.sample().size(), 3u);
  for (uint64_t i = 3; i < 100; ++i) r.Add(Item{i, 1.0});
  EXPECT_EQ(r.sample().size(), 5u);
}

TEST(ReservoirTest, UniformInclusion) {
  const int n = 9;
  const int s = 3;
  const int trials = 30000;
  std::vector<uint64_t> counts(n, 0);
  for (int t = 0; t < trials; ++t) {
    ReservoirSampler r(s, 1000 + t);
    for (uint64_t i = 0; i < n; ++i) r.Add(Item{i, 1.0});
    for (const Item& item : r.sample()) ++counts[item.id];
  }
  // Each inclusion is Binomial(trials, s/n); Bonferroni over n items.
  for (int i = 0; i < n; ++i) {
    EXPECT_GT(BinomialTwoSidedPValue(counts[i], trials,
                                     static_cast<double>(s) / n),
              1e-5)
        << "item " << i << " count " << counts[i];
  }
}

TEST(SkipReservoirTest, MatchesAlgorithmRDistribution) {
  const int n = 50;
  const int s = 5;
  const int trials = 20000;
  std::vector<uint64_t> counts(n, 0);
  for (int t = 0; t < trials; ++t) {
    SkipReservoirSampler r(s, 2000 + t);
    for (uint64_t i = 0; i < n; ++i) r.Add(Item{i, 1.0});
    for (const Item& item : r.sample()) ++counts[item.id];
  }
  for (int i = 0; i < n; ++i) {
    EXPECT_GT(BinomialTwoSidedPValue(counts[i], trials,
                                     static_cast<double>(s) / n),
              1e-6)
        << "item " << i;
  }
}

TEST(CentralizedWsworTest, SampleSizeAndOrder) {
  CentralizedWswor sampler(4, 1);
  for (uint64_t i = 0; i < 10; ++i) sampler.Add(Item{i, 1.0 + i});
  const auto sample = sampler.Sample();
  ASSERT_EQ(sample.size(), 4u);
  for (size_t i = 1; i < sample.size(); ++i) {
    EXPECT_GE(sample[i - 1].key, sample[i].key);
  }
  EXPECT_GT(sampler.Threshold(), 0.0);
}

TEST(CentralizedWsworTest, ExactSetDistribution) {
  const std::vector<double> weights = {1.0, 2.0, 4.0, 1.0, 3.0, 2.0};
  const int s = 2;
  const auto result = testing::SworSetGoodnessOfFit(
      weights, s, 20000, [&](int t) {
        CentralizedWswor sampler(s, 5000 + t);
        for (uint64_t i = 0; i < weights.size(); ++i) {
          sampler.Add(Item{i, weights[i]});
        }
        std::vector<uint64_t> ids;
        for (const KeyedItem& ki : sampler.Sample()) ids.push_back(ki.item.id);
        return ids;
      });
  EXPECT_GT(result.p_value, 1e-4) << "chi2=" << result.statistic;
}

TEST(CentralizedWsworSkipTest, MatchesExactSetDistribution) {
  const std::vector<double> weights = {5.0, 1.0, 1.0, 2.0, 7.0};
  const int s = 2;
  const auto result = testing::SworSetGoodnessOfFit(
      weights, s, 20000, [&](int t) {
        CentralizedWsworSkip sampler(s, 6000 + t);
        for (uint64_t i = 0; i < weights.size(); ++i) {
          sampler.Add(Item{i, weights[i]});
        }
        std::vector<uint64_t> ids;
        for (const KeyedItem& ki : sampler.Sample()) ids.push_back(ki.item.id);
        return ids;
      });
  EXPECT_GT(result.p_value, 1e-4) << "chi2=" << result.statistic;
}

TEST(CentralizedWsworSkipTest, AgreesWithHeapVariantOnLongStream) {
  // Same distribution on a longer stream: compare inclusion counts of a
  // specific heavy item between the two implementations.
  const int s = 8;
  const int trials = 4000;
  int heap_count = 0, skip_count = 0;
  for (int t = 0; t < trials; ++t) {
    CentralizedWswor a(s, 100 + t);
    CentralizedWsworSkip b2(s, 900000 + t);
    for (uint64_t i = 0; i < 300; ++i) {
      const double w = (i == 150) ? 200.0 : 1.0;
      a.Add(Item{i, w});
      b2.Add(Item{i, w});
    }
    for (const auto& ki : a.Sample()) heap_count += (ki.item.id == 150);
    for (const auto& ki : b2.Sample()) skip_count += (ki.item.id == 150);
  }
  // Both should include the heavy item nearly always; agree within noise.
  EXPECT_GT(heap_count, trials * 9 / 10);
  EXPECT_GT(skip_count, trials * 9 / 10);
  EXPECT_NEAR(static_cast<double>(heap_count), static_cast<double>(skip_count),
              5.0 * std::sqrt(static_cast<double>(trials)));
}

TEST(WeightedSwrTest, PerSlotDrawDistribution) {
  const std::vector<double> weights = {1.0, 3.0, 6.0, 2.0};
  const auto result = testing::WeightedDrawGoodnessOfFit(
      weights, 30000, [&](int t) {
        CentralizedWeightedSwr swr(1, 7000 + t);
        for (uint64_t i = 0; i < weights.size(); ++i) {
          swr.Add(Item{i, weights[i]});
        }
        return swr.Sample()[0].id;
      });
  EXPECT_GT(result.p_value, 1e-4) << "chi2=" << result.statistic;
}

TEST(WeightedSwrTest, HeavySkewCollapsesDistinct) {
  // One item with 99% of the weight: SWR sample is almost all that item.
  CentralizedWeightedSwr swr(64, 3);
  swr.Add(Item{0, 990000.0});
  for (uint64_t i = 1; i <= 100; ++i) swr.Add(Item{i, 100.0});
  EXPECT_LT(swr.DistinctInSample(), 15u);
}

TEST(WeightedSwrTest, SampleHasOneEntryPerSlot) {
  CentralizedWeightedSwr swr(7, 4);
  swr.Add(Item{1, 2.0});
  EXPECT_EQ(swr.Sample().size(), 7u);
}

TEST(PrioritySamplingTest, SubsetSumUnbiased) {
  // Estimate the total weight of even ids; average over trials must
  // approach the truth (unbiasedness of priority sampling).
  const int n = 60;
  std::vector<double> weights(n);
  double even_total = 0.0;
  for (int i = 0; i < n; ++i) {
    weights[i] = 1.0 + (i * 37 % 11);
    if (i % 2 == 0) even_total += weights[i];
  }
  Summary estimates;
  for (int t = 0; t < 4000; ++t) {
    PrioritySampler sampler(12, 8000 + t);
    for (int i = 0; i < n; ++i) {
      sampler.Add(Item{static_cast<uint64_t>(i), weights[i]});
    }
    estimates.Add(sampler.EstimateSubsetSum(
        [](const Item& item) { return item.id % 2 == 0; }));
  }
  EXPECT_NEAR(estimates.mean(), even_total,
              5.0 * estimates.stddev() / std::sqrt(4000.0));
}

TEST(PrioritySamplingTest, SampleSizeCapped) {
  PrioritySampler sampler(5, 9);
  for (uint64_t i = 0; i < 100; ++i) sampler.Add(Item{i, 1.0 + i});
  EXPECT_EQ(sampler.Sample().size(), 5u);
  EXPECT_GT(sampler.Threshold(), 0.0);
}

TEST(PrioritySamplingTest, ExactBelowCapacity) {
  PrioritySampler sampler(10, 9);
  sampler.Add(Item{0, 5.0});
  sampler.Add(Item{1, 7.0});
  // tau = 0: estimator returns exact sums.
  EXPECT_DOUBLE_EQ(sampler.EstimateSubsetSum([](const Item&) { return true; }),
                   12.0);
}

}  // namespace
}  // namespace dwrs
