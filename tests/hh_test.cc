#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_set>
#include <vector>

#include "gtest/gtest.h"
#include "hh/exact_hh.h"
#include "hh/residual_hh.h"
#include "hh/space_saving.h"
#include "hh/swr_hh.h"
#include "stream/workload.h"

namespace dwrs {
namespace {

// ---------------------------------------------------------------------------
// Exact oracles.

TEST(ExactHhTest, ResidualWeight) {
  const std::vector<double> w = {10.0, 1.0, 5.0, 2.0};
  EXPECT_DOUBLE_EQ(ResidualWeight(w, 0), 18.0);
  EXPECT_DOUBLE_EQ(ResidualWeight(w, 1), 8.0);
  EXPECT_DOUBLE_EQ(ResidualWeight(w, 2), 3.0);
  EXPECT_DOUBLE_EQ(ResidualWeight(w, 4), 0.0);
  EXPECT_DOUBLE_EQ(ResidualWeight(w, 10), 0.0);
}

TEST(ExactHhTest, PlainHeavyHitters) {
  const std::vector<double> w = {50.0, 1.0, 30.0, 19.0};  // total 100
  const auto hh = ExactHeavyHitters(w, 0.2);
  EXPECT_EQ(hh, (std::vector<uint64_t>{0, 2}));
}

TEST(ExactHhTest, ResidualHeavyHittersStricter) {
  // One mega item of 1000 masking eleven 10s over fifty 1s; eps = 0.1.
  // tail(10) removes the mega and nine 10s -> residual = 70, threshold 7.
  std::vector<double> w = {1000.0};
  for (int i = 0; i < 11; ++i) w.push_back(10.0);
  for (int i = 0; i < 50; ++i) w.push_back(1.0);
  const auto plain = ExactHeavyHitters(w, 0.1);
  const auto residual = ExactResidualHeavyHitters(w, 0.1);
  // Plain eps-HH only finds the mega item; residual also finds the 5s.
  EXPECT_EQ(plain.size(), 1u);
  EXPECT_GT(residual.size(), 5u);
  for (uint64_t id : plain) {
    EXPECT_TRUE(std::find(residual.begin(), residual.end(), id) !=
                residual.end())
        << "residual guarantee must subsume the plain one";
  }
}

TEST(ExactHhTest, ResidualDegenerateAllHeavy) {
  const std::vector<double> w = {5.0, 6.0};
  const auto residual = ExactResidualHeavyHitters(w, 0.5);
  EXPECT_TRUE(residual.empty());  // tail(2) is empty
}

// ---------------------------------------------------------------------------
// SpaceSaving.

TEST(SpaceSavingTest, ExactBelowCapacity) {
  SpaceSaving ss(10);
  ss.Add(1, 5.0);
  ss.Add(2, 3.0);
  ss.Add(1, 2.0);
  EXPECT_DOUBLE_EQ(ss.EstimateOf(1), 7.0);
  EXPECT_DOUBLE_EQ(ss.EstimateOf(2), 3.0);
  const auto entries = ss.Entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].id, 1u);
}

TEST(SpaceSavingTest, OverestimatesNeverUnder) {
  SpaceSaving ss(4);
  std::vector<double> truth(50, 0.0);
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t id = rng.NextBounded(50);
    const double w = 1.0 + static_cast<double>(rng.NextBounded(4));
    truth[id] += w;
    ss.Add(id, w);
  }
  for (const auto& e : ss.Entries()) {
    EXPECT_GE(e.count + 1e-9, truth[e.id]);
    EXPECT_LE(e.count - e.error - 1e-9, truth[e.id]);
  }
}

TEST(SpaceSavingTest, ErrorBoundedByWOverCapacity) {
  SpaceSaving ss(8);
  Rng rng(6);
  for (int i = 0; i < 3000; ++i) ss.Add(rng.NextBounded(100), 1.0);
  for (const auto& e : ss.Entries()) {
    EXPECT_LE(e.error, ss.total_weight() / 8.0 + 1e-9);
  }
}

TEST(SpaceSavingTest, FindsDominantItem) {
  SpaceSaving ss(4);
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    ss.Add(rng.NextBounded(1000), 1.0);
    if (i % 2 == 0) ss.Add(7777, 3.0);
  }
  EXPECT_EQ(ss.Entries()[0].id, 7777u);
}

// ---------------------------------------------------------------------------
// Residual heavy hitter tracker (Theorem 4).

TEST(ResidualHhTest, RequiredSampleSizeFormula) {
  const int s = ResidualHeavyHitterTracker::RequiredSampleSize(0.1, 0.1);
  EXPECT_GE(s, static_cast<int>(6.0 * std::log(100.0) / 0.1));
  EXPECT_LE(s, static_cast<int>(6.0 * std::log(100.0) / 0.1) + 1);
}

// A stream where 3 mega-heavy items mask 8 residual heavy hitters.
Workload MaskedResidualStream(int sites, uint64_t seed) {
  std::vector<uint64_t> mega;
  std::vector<uint64_t> residual;
  for (uint64_t i = 0; i < 3; ++i) mega.push_back(100 + 917 * i);
  for (uint64_t i = 0; i < 8; ++i) residual.push_back(900 + 1013 * i);
  auto base = std::make_unique<ConstantWeights>(1.0);
  auto with_residual = std::make_unique<PlantedHeavyWeights>(
      std::move(base), residual, 2000.0);  // ~17% of the ~12k residual each
  auto gen = std::make_unique<PlantedHeavyWeights>(std::move(with_residual),
                                                   mega, 2000000.0);
  return WorkloadBuilder()
      .num_sites(sites)
      .num_items(10000)
      .seed(seed)
      .weights(std::move(gen))
      .partitioner(std::make_unique<RandomPartitioner>())
      .Build();
}

TEST(ResidualHhTest, PerfectRecallOnPlantedStream) {
  const Workload w = MaskedResidualStream(8, 51);
  const auto exact = ExactResidualHeavyHitters(w.PrefixWeights(), 0.1);
  ASSERT_GE(exact.size(), 8u);
  ResidualHhConfig config;
  config.num_sites = 8;
  config.eps = 0.1;
  config.delta = 0.05;
  config.seed = 52;
  ResidualHeavyHitterTracker tracker(config);
  tracker.Run(w);
  std::unordered_set<uint64_t> reported;
  for (const Item& item : tracker.HeavyHitters()) reported.insert(item.id);
  for (uint64_t id : exact) {
    EXPECT_TRUE(reported.count(id)) << "missed residual HH " << id;
  }
}

TEST(ResidualHhTest, ReportSizeIsBounded) {
  const Workload w = MaskedResidualStream(4, 53);
  ResidualHhConfig config;
  config.num_sites = 4;
  config.eps = 0.1;
  config.delta = 0.1;
  config.seed = 54;
  ResidualHeavyHitterTracker tracker(config);
  tracker.Run(w);
  EXPECT_LE(tracker.HeavyHitters().size(),
            static_cast<size_t>(std::ceil(2.0 / 0.1)));
}

TEST(ResidualHhTest, MessageCostWithinTheorem4Bound) {
  const Workload w = MaskedResidualStream(16, 55);
  ResidualHhConfig config;
  config.num_sites = 16;
  config.eps = 0.1;
  config.delta = 0.1;
  config.seed = 56;
  ResidualHeavyHitterTracker tracker(config);
  tracker.Run(w);
  const double bound =
      Theorem4MessageBound(16, 0.1, 0.1, w.TotalWeight());
  EXPECT_LT(static_cast<double>(tracker.stats().total_messages()),
            40.0 * bound);
}

TEST(ResidualHhTest, BeatsSwrBaselineOnMaskedStream) {
  // Averaged over trials, the SWOR tracker recalls residual HHs that the
  // SWR tracker misses (its draws collapse onto the mega items).
  int swor_hits = 0, swr_hits = 0, exact_total = 0;
  for (int t = 0; t < 5; ++t) {
    const Workload w = MaskedResidualStream(8, 60 + t);
    const auto exact = ExactResidualHeavyHitters(w.PrefixWeights(), 0.1);
    exact_total += static_cast<int>(exact.size());

    ResidualHhConfig config;
    config.num_sites = 8;
    config.eps = 0.1;
    config.delta = 0.1;
    config.seed = 70 + t;
    ResidualHeavyHitterTracker swor(config);
    swor.Run(w);
    std::unordered_set<uint64_t> swor_ids;
    for (const Item& item : swor.HeavyHitters()) swor_ids.insert(item.id);

    SwrHeavyHitterTracker swr(8, 0.1, 0.1, 70 + t);
    swr.Run(w);
    std::unordered_set<uint64_t> swr_ids;
    for (const Item& item : swr.HeavyHitters()) swr_ids.insert(item.id);

    for (uint64_t id : exact) {
      swor_hits += swor_ids.count(id);
      swr_hits += swr_ids.count(id);
    }
  }
  ASSERT_GT(exact_total, 0);
  EXPECT_EQ(swor_hits, exact_total) << "Theorem 4 tracker must not miss";
  EXPECT_LT(swr_hits, exact_total) << "SWR baseline should demonstrably miss";
}

TEST(SwrHhTest, StillFindsPlainHeavyHitters) {
  // On a stream without mega-maskers, SWR-based tracking works fine.
  const Workload w = WorkloadBuilder()
                         .num_sites(4)
                         .num_items(5000)
                         .seed(81)
                         .weights(std::make_unique<PlantedHeavyWeights>(
                             std::make_unique<ConstantWeights>(1.0),
                             std::vector<uint64_t>{123}, 3000.0))
                         .integer_weights(true)
                         .partitioner(std::make_unique<RandomPartitioner>())
                         .Build();
  SwrHeavyHitterTracker swr(4, 0.2, 0.05, 82);
  swr.Run(w);
  bool found = false;
  for (const Item& item : swr.HeavyHitters()) found |= (item.id == 123);
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace dwrs
