// Tests of the work-stealing scheduler (engine/scheduler.h) that
// virtualizes sites over a fixed worker pool: exact step-synchronous
// equivalence with sim::Runtime at small and large k, a deterministic
// work-stealing scenario (a dry worker must steal a site homed to a busy
// sibling), skewed-load draining in both scheduling modes, quiesce under
// flush churn, the batches_dropped_on_shutdown accounting, and a
// 100k-logical-site smoke run on a bounded pool. The whole file is run
// under -fsanitize=thread in CI.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "core/sampler.h"
#include "engine/channels.h"
#include "engine/engine.h"
#include "engine/scheduler.h"
#include "obs/trace.h"
#include "random/rng.h"
#include "stream/workload.h"

namespace dwrs {
namespace {

using engine::Engine;
using engine::EngineConfig;
using engine::EngineStats;
using engine::ItemBatch;
using engine::QuiesceBus;
using engine::Scheduler;

// ---------------------------------------------------------------------
// Fake endpoints for scheduler-level tests.

// Counts what it sees. Counters are atomic only so the test thread can
// poll them mid-run; the scheduler itself upholds the single-threaded
// endpoint contract.
struct CountingSite : sim::SiteNode {
  void OnItem(const Item& item) override {
    items.fetch_add(1);
    id_sum.fetch_add(item.id);
  }
  void OnMessage(const sim::Payload&) override { messages.fetch_add(1); }
  std::atomic<uint64_t> items{0};
  std::atomic<uint64_t> id_sum{0};
  std::atomic<uint64_t> messages{0};
};

// Parks the worker that runs it until the gate opens (sticky), so tests
// can pin a pool worker inside an endpoint callback deterministically.
struct GateSite : sim::SiteNode {
  void OnItem(const Item&) override {}
  void OnItems(const Item* /*items*/, size_t n) override {
    entered.fetch_add(1);
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [this] { return open; });
    items.fetch_add(n);
  }
  void OnMessage(const sim::Payload&) override {}
  void Open() {
    std::lock_guard<std::mutex> lock(mutex);
    open = true;
    cv.notify_all();
  }
  std::mutex mutex;
  std::condition_variable cv;
  bool open = false;
  std::atomic<int> entered{0};
  std::atomic<uint64_t> items{0};
};

struct NullCoordinator : sim::CoordinatorNode {
  void OnMessage(int, const sim::Payload&) override {}
};

ItemBatch MakeBatch(uint64_t first_id, size_t n) {
  ItemBatch batch;
  for (size_t i = 0; i < n; ++i) {
    batch.push_back(Item{first_id + i, 1.0});
  }
  return batch;
}

void SpinUntil(const std::function<bool()>& pred) {
  while (!pred()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// ---------------------------------------------------------------------
// Step-synchronous bit-identity vs sim::Runtime. The scheduler changes
// who runs a site's callbacks, not what runs: per-event quiesce must
// reproduce the simulator exactly — sample contents, keys, and every
// traffic counter — at both a small k and a k well past any plausible
// worker-pool size.

struct EngineWswor {
  EngineWswor(const WsworConfig& config, const EngineConfig& engine_config)
      : eng(engine_config) {
    Rng master(config.seed);
    for (int i = 0; i < config.num_sites; ++i) {
      sites.push_back(std::make_unique<WsworSite>(config, i, &eng.transport(),
                                                  master.NextU64()));
      eng.AttachSite(i, sites.back().get());
    }
    coordinator = std::make_unique<WsworCoordinator>(config, &eng.transport(),
                                                     master.NextU64());
    eng.AttachCoordinator(coordinator.get());
  }
  // Endpoints declared before the engine: destruction joins the pool
  // first (see the teardown contract in engine/engine.h).
  std::vector<std::unique_ptr<WsworSite>> sites;
  std::unique_ptr<WsworCoordinator> coordinator;
  Engine eng;
};

void ExpectStepSyncMatchesSim(int k, uint64_t n, const EngineConfig& config) {
  const WsworConfig wswor{.num_sites = k, .sample_size = 16, .seed = 42};
  const Workload w = WorkloadBuilder()
                         .num_sites(k)
                         .num_items(n)
                         .seed(7)
                         .weights(std::make_unique<ZipfWeights>(
                             uint64_t{1} << 16, 1.2))
                         .partitioner(std::make_unique<RandomPartitioner>())
                         .Build();

  DistributedWswor sim_sampler(wswor);
  sim_sampler.Run(w);

  EngineWswor es(wswor, config);
  es.eng.Run(w);

  const std::vector<KeyedItem> a = sim_sampler.Sample();
  const std::vector<KeyedItem> b = es.coordinator->Sample();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].item.id, b[i].item.id) << " position " << i;
    EXPECT_EQ(a[i].key, b[i].key) << " position " << i;
  }
  const sim::MessageStats sim_stats = sim_sampler.stats();
  const sim::MessageStats eng_stats = es.eng.stats().MessageSnapshot();
  EXPECT_EQ(sim_stats.site_to_coord, eng_stats.site_to_coord);
  EXPECT_EQ(sim_stats.coord_to_site, eng_stats.coord_to_site);
  EXPECT_EQ(sim_stats.words, eng_stats.words);
}

TEST(SchedulerEquivalenceTest, StepSyncMatchesSimAtSmallK) {
  ExpectStepSyncMatchesSim(
      /*k=*/16, /*n=*/2000,
      EngineConfig{.num_sites = 16, .step_synchronous = true});
}

TEST(SchedulerEquivalenceTest, StepSyncMatchesSimAtKPastPoolSize) {
  // k = 1000 logical sites over a pool of (at most) a few dozen workers:
  // every dispatch multiplexes many sites per worker, and the replay
  // must still be bit-identical.
  ExpectStepSyncMatchesSim(
      /*k=*/1000, /*n=*/3000,
      EngineConfig{.num_sites = 1000, .step_synchronous = true});
}

TEST(SchedulerEquivalenceTest, StepSyncMatchesSimWithTinyForcedPool) {
  // Two workers for 16 sites, stealing on: maximal consumer-role
  // migration between dispatches.
  ExpectStepSyncMatchesSim(/*k=*/16, /*n=*/2000,
                           EngineConfig{.num_sites = 16,
                                        .num_workers = 2,
                                        .step_synchronous = true});
}

// ---------------------------------------------------------------------
// Deterministic work stealing. Two workers, four sites: sites 0 and 1
// gate whichever worker runs them; sites 2 and 3 (homed to workers 0 and
// 1 respectively) are pushed while both workers are gated. Opening one
// gate frees exactly one worker, which must drain its own victim AND
// steal the one homed to the still-gated sibling — a steal is the only
// way both counting sites can drain.

TEST(SchedulerStealTest, DryWorkerStealsSiteHomedToBusySibling) {
  EngineConfig config;
  config.num_sites = 4;
  config.num_workers = 2;
  config.work_stealing = true;
  QuiesceBus bus;
  EngineStats stats;
  GateSite gate_a, gate_b;
  CountingSite victim_even, victim_odd;  // homed to worker 0 / worker 1
  Scheduler sched(config, &bus, &stats);
  sched.AttachSite(0, &gate_a);
  sched.AttachSite(1, &gate_b);
  sched.AttachSite(2, &victim_even);
  sched.AttachSite(3, &victim_odd);
  sched.Start();

  ItemBatch b0 = MakeBatch(0, 3), b1 = MakeBatch(10, 3);
  sched.PushBatch(0, std::move(b0), nullptr);
  sched.PushBatch(1, std::move(b1), nullptr);
  SpinUntil([&] {
    return gate_a.entered.load() + gate_b.entered.load() == 2;
  });

  ItemBatch b2 = MakeBatch(100, 5), b3 = MakeBatch(200, 7);
  sched.PushBatch(2, std::move(b2), nullptr);
  sched.PushBatch(3, std::move(b3), nullptr);

  gate_a.Open();
  SpinUntil([&] {
    return victim_even.items.load() == 5 && victim_odd.items.load() == 7;
  });
  EXPECT_GE(stats.steals.load(), 1u);

  gate_b.Open();
  bus.WaitUntil([&] { return sched.Idle(); });
  EXPECT_EQ(gate_a.items.load() + gate_b.items.load(), 6u);
  EXPECT_EQ(victim_even.id_sum.load(), 100u * 5 + (0 + 1 + 2 + 3 + 4));
  EXPECT_EQ(victim_odd.id_sum.load(), 200u * 7 + (0 + 1 + 2 + 3 + 4 + 5 + 6));
  EXPECT_GE(stats.sites_scheduled.load(), 4u);
  sched.RequestStop();
  sched.Join();
}

// ---------------------------------------------------------------------
// Skewed per-site load: one hot site carrying most of the stream plus a
// long tail. Every site must drain exactly its slice — under stealing
// (the hot site's home queue overflows onto the pool) and with stealing
// off (home-only execution) — and the engine's accounting must
// reconcile.

void RunSkewedLoad(bool work_stealing) {
  constexpr int kSites = 64;
  constexpr uint64_t kHotItems = 40000;
  constexpr uint64_t kTailItems = 250;
  EngineConfig config;
  config.num_sites = kSites;
  config.num_workers = 4;
  config.work_stealing = work_stealing;
  config.batch_size = 64;
  config.item_queue_batches = 2;  // tiny queues: exercise backpressure

  std::vector<std::unique_ptr<CountingSite>> sites;
  NullCoordinator coordinator;
  Engine eng(config);
  for (int i = 0; i < kSites; ++i) {
    sites.push_back(std::make_unique<CountingSite>());
    eng.AttachSite(i, sites.back().get());
  }
  eng.AttachCoordinator(&coordinator);

  uint64_t id = 0;
  for (uint64_t i = 0; i < kHotItems; ++i) eng.Push(0, Item{id++, 1.0});
  for (int site = 1; site < kSites; ++site) {
    for (uint64_t i = 0; i < kTailItems; ++i) eng.Push(site, Item{id++, 1.0});
  }
  eng.Flush();

  EXPECT_EQ(sites[0]->items.load(), kHotItems);
  for (int site = 1; site < kSites; ++site) {
    EXPECT_EQ(sites[site]->items.load(), kTailItems) << " site " << site;
  }
  const EngineStats& stats = eng.stats();
  EXPECT_EQ(stats.items_ingested.load(), id);
  EXPECT_GE(stats.sites_scheduled.load(), uint64_t{kSites});
  EXPECT_EQ(stats.batches_dropped_on_shutdown.load(), 0u);
  if (!work_stealing) {
    EXPECT_EQ(stats.steals.load(), 0u);
  }
  eng.Shutdown();
}

TEST(SchedulerStressTest, SkewedLoadDrainsAllSitesWithStealing) {
  RunSkewedLoad(/*work_stealing=*/true);
}

TEST(SchedulerStressTest, SkewedLoadDrainsAllSitesHomeOnly) {
  RunSkewedLoad(/*work_stealing=*/false);
}

// ---------------------------------------------------------------------
// Quiesce under churn: interleave ingestion with frequent Flush() calls
// (each a full quiesce) and mid-stream queries while the real protocol
// generates site⇄coordinator traffic. Every quiesce must observe a
// consistent drained state; the final sample must be a legal SWOR.

TEST(SchedulerQuiesceTest, FlushChurnWithProtocolTraffic) {
  constexpr int k = 50;
  constexpr uint64_t n = 20000;
  const WsworConfig wswor{.num_sites = k, .sample_size = 32, .seed = 5};
  EngineWswor es(wswor, EngineConfig{.num_sites = k,
                                     .num_workers = 3,
                                     .batch_size = 16,
                                     .item_queue_batches = 2,
                                     .message_queue_capacity = 8});
  Rng partition(99);
  size_t last_sample = 0;
  for (uint64_t i = 0; i < n; ++i) {
    es.eng.Push(
        static_cast<int>(partition.NextBounded(static_cast<uint64_t>(k))),
        Item{i, 1.0 + static_cast<double>(i % 7)});
    if ((i + 1) % 1000 == 0) {
      es.eng.Flush();
      // Quiesce point: querying is legal; sample size is monotone up to s.
      const size_t size = es.coordinator->Sample().size();
      EXPECT_GE(size, last_sample);
      EXPECT_LE(size, 32u);
      last_sample = size;
    }
  }
  es.eng.Flush();
  EXPECT_EQ(es.coordinator->Sample().size(), 32u);
  EXPECT_EQ(es.eng.stats().items_ingested.load(), n);
  EXPECT_GE(es.eng.stats().quiesces.load(), n / 1000);
}

// ---------------------------------------------------------------------
// Shutdown mid-stream with the feeder blocked on a full site ring: the
// in-flight batch is dropped, and the drop must be counted — silent loss
// was the old engine's bug.

TEST(SchedulerShutdownTest, MidStreamStopCountsDroppedBatches) {
  GateSite gate;  // declared before the engine (teardown contract)
  NullCoordinator coordinator;
  EngineConfig config;
  config.num_sites = 1;
  config.num_workers = 1;
  config.batch_size = 1;        // every Push hands off immediately
  config.item_queue_batches = 1;  // ring holds a single batch
  Engine eng(config);
  eng.AttachSite(0, &gate);
  eng.AttachCoordinator(&coordinator);

  // First push from this thread: it starts the engine, so the spawned
  // threads below see fully-constructed workers (Shutdown from a second
  // thread is only safe after Start happened-before it).
  eng.Push(0, Item{0, 1.0});  // taken by the worker, which gates
  SpinUntil([&] { return gate.entered.load() == 1; });
  std::thread feeder([&] {
    eng.Push(0, Item{1, 1.0});  // fills the ring
    eng.Push(0, Item{2, 1.0});  // blocks: ring full, worker gated
  });
  SpinUntil([&] { return eng.stats().ingest_stalls.load() >= 1; });

  std::thread stopper([&] { eng.Shutdown(); });
  feeder.join();  // returns only once the blocked push gave up
  EXPECT_EQ(eng.stats().batches_dropped_on_shutdown.load(), 1u);
  gate.Open();  // let the gated worker finish so Shutdown can join
  stopper.join();
  // Accounting reconciles: 3 ingested, 1 visibly dropped, 2 either
  // processed or still queued at stop — but never silently lost.
  EXPECT_EQ(eng.stats().items_ingested.load(), 3u);
}

// ---------------------------------------------------------------------
// The tentpole's scale point: 100k logical sites on a worker pool
// bounded by hardware_concurrency. Thread-per-site would need 100k
// threads; the scheduler needs 100k * O(bytes) of site state.

TEST(SchedulerScaleTest, HundredThousandLogicalSitesOnBoundedPool) {
  constexpr int kSites = 100000;
  constexpr uint64_t kItems = 200000;
  EngineConfig config;
  config.num_sites = kSites;
  config.batch_size = 64;
  config.item_queue_batches = 2;

  std::vector<std::unique_ptr<CountingSite>> sites;
  NullCoordinator coordinator;
  Engine eng(config);
  EXPECT_LE(eng.num_workers(),
            static_cast<int>(std::thread::hardware_concurrency()));
  for (int i = 0; i < kSites; ++i) {
    sites.push_back(std::make_unique<CountingSite>());
    eng.AttachSite(i, sites.back().get());
  }
  eng.AttachCoordinator(&coordinator);

  Rng rng(123);
  for (uint64_t i = 0; i < kItems; ++i) {
    eng.Push(static_cast<int>(rng.NextBounded(uint64_t{kSites})),
             Item{i, 1.0});
  }
  eng.Flush();

  uint64_t total = 0;
  for (const auto& site : sites) total += site->items.load();
  EXPECT_EQ(total, kItems);
  EXPECT_EQ(eng.stats().items_ingested.load(), kItems);
  eng.Shutdown();
}

// ---------------------------------------------------------------------
// Trace site ids must survive the virtualized-site regime: int16 wrapped
// negative past 32767 sites.

TEST(SchedulerTraceTest, TraceSiteIdsSurvivePastInt16) {
  obs::FlightRecorder::Get().Enable(/*ring_capacity=*/64,
                                    /*deterministic=*/true);
  obs::TraceEvent event;
  event.type = obs::EventType::kSiteScheduled;
  event.site = 100000;
  obs::Emit(event);
  obs::FlightRecorder::Get().Disable();
  const std::vector<obs::TraceEvent> events =
      obs::FlightRecorder::Get().Collect();
  bool found = false;
  for (const obs::TraceEvent& e : events) {
    if (e.type == obs::EventType::kSiteScheduled) {
      EXPECT_EQ(e.site, 100000);
      EXPECT_GE(e.site, 0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace dwrs
