#include <algorithm>
#include <tuple>
#include <memory>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "stats/chi_square.h"
#include "stream/workload.h"
#include "test_util.h"
#include "window/distributed_window.h"
#include "window/skyline.h"
#include "window/sliding_window_swor.h"

namespace dwrs {
namespace {

// ---------------------------------------------------------------------------
// KeySkyline unit tests.

TEST(KeySkylineTest, DiscardsOnceBeatenSTimes) {
  KeySkyline sky(2, 100);
  sky.Add(1, Item{1, 1.0}, 5.0);
  sky.Add(2, Item{2, 1.0}, 7.0);  // beats item 1 once
  EXPECT_EQ(sky.size(), 2u);
  sky.Add(3, Item{3, 1.0}, 6.0);  // beats item 1 twice -> discard
  EXPECT_EQ(sky.size(), 2u);
  std::set<uint64_t> ids;
  for (const auto& e : sky.entries()) ids.insert(e.item.id);
  EXPECT_FALSE(ids.contains(1));
}

TEST(KeySkylineTest, SmallerKeysDoNotBeat) {
  KeySkyline sky(1, 100);
  sky.Add(1, Item{1, 1.0}, 9.0);
  sky.Add(2, Item{2, 1.0}, 1.0);  // smaller key: item 1 stays, item 2 beaten 0
  EXPECT_EQ(sky.size(), 2u);
  sky.Add(3, Item{3, 1.0}, 2.0);  // beats item 2 (s=1) -> discard item 2
  std::set<uint64_t> ids;
  for (const auto& e : sky.entries()) ids.insert(e.item.id);
  EXPECT_TRUE(ids.contains(1));
  EXPECT_FALSE(ids.contains(2));
  EXPECT_TRUE(ids.contains(3));
}

TEST(KeySkylineTest, ExpiryRemovesOldEntries) {
  KeySkyline sky(2, 10);
  sky.Add(1, Item{1, 1.0}, 5.0);
  sky.Add(5, Item{5, 1.0}, 4.0);
  sky.ExpireUpTo(11);  // window (1, 11]: step 1 is out
  EXPECT_EQ(sky.size(), 1u);
  EXPECT_EQ(sky.entries()[0].item.id, 5u);
}

TEST(KeySkylineTest, SampleRespectsWindow) {
  KeySkyline sky(3, 4);
  for (uint64_t t = 1; t <= 8; ++t) {
    sky.Add(t, Item{t, 1.0}, static_cast<double>(100 - t));  // older = bigger
  }
  // At now=8, window covers steps 5..8; the biggest in-window key is 95.
  const auto sample = sky.Sample(8);
  ASSERT_EQ(sample.size(), 3u);
  for (const auto& ki : sample) {
    EXPECT_GE(ki.item.id, 5u);
  }
  EXPECT_DOUBLE_EQ(sample[0].key, 95.0);
}

TEST(KeySkylineTest, OutOfOrderInsertCountsBeatersBothWays) {
  KeySkyline sky(1, 100);
  sky.Add(5, Item{5, 1.0}, 10.0);
  // An older item with a smaller key is dead on arrival (s=1).
  sky.Add(2, Item{2, 1.0}, 3.0);
  EXPECT_EQ(sky.size(), 1u);
  // An older item with a larger key survives and beats nobody newer.
  sky.Add(3, Item{3, 1.0}, 20.0);
  EXPECT_EQ(sky.size(), 2u);
  EXPECT_EQ(sky.entries()[0].item.id, 3u);  // sorted by step
  EXPECT_EQ(sky.entries()[1].item.id, 5u);
}

// ---------------------------------------------------------------------------
// Centralized sliding-window sampler.

TEST(SlidingWindowWsworTest, SampleSizeTracksWindowFill) {
  SlidingWindowWswor sampler(4, 10, 1);
  for (uint64_t i = 0; i < 3; ++i) sampler.Add(Item{i, 1.0});
  EXPECT_EQ(sampler.Sample().size(), 3u);
  for (uint64_t i = 3; i < 50; ++i) sampler.Add(Item{i, 1.0});
  EXPECT_EQ(sampler.Sample().size(), 4u);
}

TEST(SlidingWindowWsworTest, NeverSamplesExpiredItems) {
  SlidingWindowWswor sampler(4, 8, 2);
  for (uint64_t i = 0; i < 100; ++i) {
    sampler.Add(Item{i, 1.0 + static_cast<double>(i % 7)});
    for (const auto& ki : sampler.Sample()) {
      EXPECT_GT(ki.item.id + 8, i) << "expired item sampled at step " << i;
    }
  }
}

TEST(SlidingWindowWsworTest, WindowDistributionIsExactSwor) {
  // Window of 6 over a 10-item stream: the sample at the end must be a
  // weighted SWOR of items 4..9.
  const std::vector<double> all = {9.0, 9.0, 9.0, 9.0, 1.0,
                                   2.0, 4.0, 1.0, 3.0, 2.0};
  const std::vector<double> window_weights(all.begin() + 4, all.end());
  const int s = 2;
  const auto result = testing::SworSetGoodnessOfFit(
      window_weights, s, 20000, [&](int t) {
        SlidingWindowWswor sampler(s, 6, 40000 + static_cast<uint64_t>(t));
        for (uint64_t i = 0; i < all.size(); ++i) {
          sampler.Add(Item{i, all[i]});
        }
        std::vector<uint64_t> ids;
        for (const auto& ki : sampler.Sample()) ids.push_back(ki.item.id - 4);
        return ids;
      });
  EXPECT_GT(result.p_value, 1e-4) << "chi2=" << result.statistic;
}

TEST(SlidingWindowWsworTest, SkylineStaysSmall) {
  SlidingWindowWswor sampler(8, 1024, 3);
  Rng rng(4);
  size_t max_size = 0;
  for (uint64_t i = 0; i < 20000; ++i) {
    sampler.Add(Item{i, 1.0 + rng.NextDouble() * 9.0});
    max_size = std::max(max_size, sampler.SkylineSize());
  }
  // Expected O(s * log(window/s)); allow a generous constant.
  EXPECT_LT(max_size, 8u * 12u * 4u);
}

// ---------------------------------------------------------------------------
// Distributed sliding-window sampler.

TEST(DistributedWindowTest, SampleSizeAndWindowMembership) {
  WindowConfig config;
  config.num_sites = 4;
  config.sample_size = 8;
  config.window = 64;
  config.seed = 5;
  DistributedWindowWswor sampler(config);
  const Workload w = WorkloadBuilder()
                         .num_sites(4)
                         .num_items(2000)
                         .seed(6)
                         .weights(std::make_unique<UniformWeights>(1.0, 30.0))
                         .partitioner(std::make_unique<RandomPartitioner>())
                         .Build();
  sampler.Run(w, [&](uint64_t step) {
    const auto sample = sampler.Sample();
    const uint64_t expect =
        std::min<uint64_t>(std::min<uint64_t>(step, 64), 8);
    ASSERT_EQ(sample.size(), expect) << "step " << step;
    std::set<uint64_t> ids;
    for (const auto& ki : sample) {
      // Items are delivered at step = their index + 1.
      EXPECT_GT(ki.item.id + 1 + 64, step) << "expired item at " << step;
      EXPECT_LT(ki.item.id, step);
      ids.insert(ki.item.id);
    }
    ASSERT_EQ(ids.size(), sample.size());
  });
}

TEST(DistributedWindowTest, WindowDistributionIsExactSwor) {
  const std::vector<double> all = {50.0, 50.0, 1.0, 2.0, 4.0,
                                   1.0,  3.0,  2.0, 6.0, 1.0};
  // window 8 at the end covers items 2..9.
  const std::vector<double> window_weights(all.begin() + 2, all.end());
  std::vector<WorkloadEvent> events;
  for (uint64_t i = 0; i < all.size(); ++i) {
    events.push_back(
        WorkloadEvent{static_cast<int>(i % 3), Item{i, all[i]}});
  }
  const Workload w(3, std::move(events));
  const int s = 2;
  const auto result = testing::SworSetGoodnessOfFit(
      window_weights, s, 20000, [&](int t) {
        WindowConfig config;
        config.num_sites = 3;
        config.sample_size = s;
        config.window = 8;
        config.seed = 60000 + static_cast<uint64_t>(t);
        DistributedWindowWswor sampler(config);
        sampler.Run(w);
        std::vector<uint64_t> ids;
        for (const auto& ki : sampler.Sample()) ids.push_back(ki.item.id - 2);
        return ids;
      });
  EXPECT_GT(result.p_value, 1e-4) << "chi2=" << result.statistic;
}

TEST(DistributedWindowTest, PromotionAfterExpiryIsForwarded) {
  // Site 0 receives a big item then nothing; once the big item expires,
  // site 0's smaller retained item becomes a candidate and must be
  // forwarded even though site 0 receives no further items.
  WindowConfig config;
  config.num_sites = 2;
  config.sample_size = 1;
  config.window = 4;
  config.seed = 7;
  DistributedWindowWswor sampler(config);
  sampler.Observe(0, Item{100, 1000000.0});  // step 1: may dominate
  sampler.Observe(0, Item{101, 900000.0});   // step 2: possibly shadowed
  // Steps 3..5 go to site 1 with tiny weights; at step 5 item 100 has
  // expired (window 4) while 101 is still in the window. If 101 was
  // locally shadowed by 100, its promotion at step 5 must have been
  // forwarded by the round tick even though site 0 saw no more items.
  for (uint64_t i = 0; i < 3; ++i) {
    sampler.Observe(1, Item{200 + i, 1.0});
  }
  const auto sample = sampler.Sample();
  ASSERT_EQ(sample.size(), 1u);
  // Item 101 is ~9e5 of the ~9e5+3 window weight: sampled w.p. > 0.999.
  EXPECT_EQ(sample[0].item.id, 101u);
}

TEST(DistributedWindowTest, MessagesSublinearOnStableStream) {
  WindowConfig config;
  config.num_sites = 8;
  config.sample_size = 8;
  config.window = 4096;
  config.seed = 8;
  DistributedWindowWswor sampler(config);
  const Workload w = WorkloadBuilder()
                         .num_sites(8)
                         .num_items(40000)
                         .seed(9)
                         .weights(std::make_unique<UniformWeights>(1.0, 8.0))
                         .partitioner(std::make_unique<RandomPartitioner>())
                         .Build();
  sampler.Run(w);
  EXPECT_LT(sampler.stats().total_messages(), w.size() / 3);
  // Space audit: skylines stay near s log(window).
  EXPECT_LT(sampler.MaxSiteSkyline(), 8u * 13u * 4u);
  EXPECT_LT(sampler.CoordinatorSkyline(), 8u * 13u * 4u);
}

// Parameterized sweep: invariants across (window, s) combinations.
class WindowPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(WindowPropertyTest, InvariantsAcrossConfigs) {
  const auto [window, s] = GetParam();
  WindowConfig config;
  config.num_sites = 4;
  config.sample_size = s;
  config.window = window;
  config.seed = 11 + window + static_cast<uint64_t>(s);
  DistributedWindowWswor sampler(config);
  const Workload w = WorkloadBuilder()
                         .num_sites(4)
                         .num_items(3000)
                         .seed(12)
                         .weights(std::make_unique<ParetoWeights>(1.2))
                         .partitioner(std::make_unique<RandomPartitioner>())
                         .Build();
  sampler.Run(w, [&](uint64_t step) {
    if (step % 61 != 0 && step != w.size()) return;
    const auto sample = sampler.Sample();
    const uint64_t in_window = std::min<uint64_t>(step, window);
    ASSERT_EQ(sample.size(),
              std::min<uint64_t>(in_window, static_cast<uint64_t>(s)))
        << "step " << step;
    std::set<uint64_t> ids;
    for (size_t i = 0; i < sample.size(); ++i) {
      ASSERT_GT(sample[i].key, 0.0);
      if (i > 0) {
        ASSERT_GE(sample[i - 1].key, sample[i].key);
      }
      // In-window membership: item idx arrives at step idx+1.
      ASSERT_GT(sample[i].item.id + 1 + window, step);
      ids.insert(sample[i].item.id);
    }
    ASSERT_EQ(ids.size(), sample.size());
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WindowPropertyTest,
    ::testing::Combine(::testing::Values(16u, 128u, 1024u),  // window
                       ::testing::Values(1, 4, 32)));        // s

}  // namespace
}  // namespace dwrs
