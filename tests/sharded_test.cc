// Tests of the sharded multi-coordinator topology: the ShardTopology
// partition, the MergeableSample merge algebra, the exactness of the
// root merge (bit-identical at S = 1, chi-square-exact at S ∈ {1, 2, 4}),
// cross-backend replay (sim::ShardedRuntime vs engine::ShardedEngine in
// step-synchronous mode), per-shard fault isolation, and the
// summation-composed sharded L1 estimate.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "core/sampler.h"
#include "core/sharded_sampler.h"
#include "engine/sharded_engine.h"
#include "faults/harness.h"
#include "l1/l1_tracker.h"
#include "random/rng.h"
#include "sampling/mergeable_sample.h"
#include "sim/sharded_runtime.h"
#include "stream/sharding.h"
#include "stream/workload.h"
#include "test_util.h"
#include "unweighted/distributed_swor.h"
#include "unweighted/distributed_swr.h"

namespace dwrs {
namespace {

using engine::ShardedEngine;
using engine::ShardedEngineConfig;
using faults::Backend;
using faults::FaultConfig;
using faults::FaultSchedule;
using faults::RunReport;
using faults::ShardedFaultyWswor;

Workload SmallWeighted(const std::vector<double>& weights, int sites,
                       uint64_t seed) {
  std::vector<WorkloadEvent> events;
  Rng rng(seed);
  for (uint64_t i = 0; i < weights.size(); ++i) {
    events.push_back(WorkloadEvent{
        static_cast<int>(rng.NextBounded(static_cast<uint64_t>(sites))),
        Item{i, weights[i]}});
  }
  return Workload(sites, std::move(events));
}

Workload ZipfWorkload(int k, uint64_t n, uint64_t seed) {
  return WorkloadBuilder()
      .num_sites(k)
      .num_items(n)
      .seed(seed)
      .weights(std::make_unique<ZipfWeights>(uint64_t{1} << 16, 1.2))
      .partitioner(std::make_unique<RandomPartitioner>())
      .Build();
}

KeyedItem KI(uint64_t id, double weight, double key) {
  return KeyedItem{Item{id, weight}, key};
}

// ---------------------------------------------------------------------
// ShardTopology.

TEST(ShardTopologyTest, BlockPartitionInvariants) {
  const std::pair<int, int> cases[] = {{4, 1}, {4, 2}, {4, 4}, {7, 3},
                                       {16, 4}, {5, 5}, {9, 2}};
  for (const auto& [k, shards] : cases) {
    const ShardTopology topo(k, shards);
    EXPECT_EQ(topo.Begin(0), 0);
    EXPECT_EQ(topo.Begin(shards), k);
    int covered = 0;
    for (int j = 0; j < shards; ++j) {
      EXPECT_GE(topo.SiteCount(j), 1);
      // Blocks differ by at most one site (balanced partition).
      EXPECT_LE(topo.SiteCount(0) - topo.SiteCount(j), 1);
      covered += topo.SiteCount(j);
    }
    EXPECT_EQ(covered, k);
    for (int site = 0; site < k; ++site) {
      const int shard = topo.ShardOf(site);
      const int local = topo.LocalOf(site);
      EXPECT_TRUE(shard >= 0 && shard < shards);
      EXPECT_TRUE(local >= 0 && local < topo.SiteCount(shard));
      EXPECT_EQ(topo.GlobalOf(shard, local), site);
    }
  }
}

TEST(ShardTopologyTest, SplitPreservesPerShardOrderWithLocalIndices) {
  const std::vector<double> weights = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const Workload w = SmallWeighted(weights, 5, /*seed=*/3);
  const ShardTopology topo(5, 2);
  const std::vector<Workload> splits = SplitByShard(w, topo);
  ASSERT_EQ(splits.size(), 2u);
  uint64_t total = 0;
  for (int j = 0; j < 2; ++j) {
    total += splits[static_cast<size_t>(j)].size();
    EXPECT_EQ(splits[static_cast<size_t>(j)].num_sites(), topo.SiteCount(j));
    uint64_t last_id = 0;
    for (const WorkloadEvent& e : splits[static_cast<size_t>(j)].events()) {
      EXPECT_LT(e.site, topo.SiteCount(j));
      // Item ids are the global arrival order here, so per-shard order
      // preserved == ids strictly increasing within the split.
      EXPECT_TRUE(last_id == 0 || e.item.id > last_id);
      last_id = e.item.id;
    }
  }
  EXPECT_EQ(total, w.size());
}

// ---------------------------------------------------------------------
// MergeableSample algebra.

TEST(MergeableSampleTest, TopKeyMergeKeepsGlobalTopEntries) {
  MergeableSample a;
  a.kind = SampleKind::kTopKey;
  a.target_size = 3;
  a.entries = {KI(1, 1.0, 9.0), KI(2, 1.0, 5.0), KI(3, 1.0, 1.0)};
  MergeableSample b;
  b.kind = SampleKind::kTopKey;
  b.target_size = 3;
  b.entries = {KI(4, 1.0, 8.0), KI(5, 1.0, 2.0)};

  const MergeableSample merged = MergeShardSamples({a, b});
  const std::vector<KeyedItem> top = merged.TopEntries();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].item.id, 1u);
  EXPECT_EQ(top[1].item.id, 4u);
  EXPECT_EQ(top[2].item.id, 2u);
  // The merged summary itself stays O(s).
  EXPECT_LE(merged.entries.size(), 3u);
}

TEST(MergeableSampleTest, MergeIsAssociative) {
  std::vector<MergeableSample> shards(3);
  Rng rng(11);
  for (size_t j = 0; j < shards.size(); ++j) {
    shards[j].kind = SampleKind::kTopKey;
    shards[j].target_size = 4;
    for (int i = 0; i < 6; ++i) {
      shards[j].entries.push_back(
          KI(100 * j + static_cast<uint64_t>(i), 1.0, rng.NextDouble()));
    }
  }
  const MergeableSample all = MergeShardSamples(shards);
  const MergeableSample left =
      MergeShardSamples({MergeShardSamples({shards[0], shards[1]}), shards[2]});
  const MergeableSample right =
      MergeShardSamples({shards[0], MergeShardSamples({shards[1], shards[2]})});
  const auto ids = [](const MergeableSample& s) {
    std::vector<uint64_t> out;
    for (const KeyedItem& ki : s.TopEntries()) out.push_back(ki.item.id);
    return out;
  };
  EXPECT_EQ(ids(all), ids(left));
  EXPECT_EQ(ids(all), ids(right));
}

TEST(MergeableSampleTest, WithheldMergesByLevelThenRethins) {
  MergeableSample a;
  a.kind = SampleKind::kTopKey;
  a.target_size = 2;
  a.withheld = {LeveledKeyedItem{KI(1, 4.0, 7.0), 2},
                LeveledKeyedItem{KI(2, 4.0, 3.0), 2}};
  a.level_counts = {LevelCount{2, 5}};
  MergeableSample b;
  b.kind = SampleKind::kTopKey;
  b.target_size = 2;
  b.withheld = {LeveledKeyedItem{KI(3, 4.0, 5.0), 2},
                LeveledKeyedItem{KI(4, 8.0, 1.0), 3}};
  b.level_counts = {LevelCount{2, 4}, LevelCount{3, 1}};

  const MergeableSample merged = MergeShardSamples({a, b});
  // Per-level counts compose by summation.
  EXPECT_EQ(merged.LevelCountOf(2), 9u);
  EXPECT_EQ(merged.LevelCountOf(3), 1u);
  EXPECT_EQ(merged.LevelCountOf(7), 0u);
  // Withheld entries re-thin to the global top-target_size (cross-shard
  // Proposition 6): of keys {7, 3, 5, 1} only {7, 5} can ever matter.
  ASSERT_EQ(merged.withheld.size(), 2u);
  EXPECT_EQ(merged.withheld[0].entry.item.id, 1u);
  EXPECT_EQ(merged.withheld[1].entry.item.id, 3u);
  const std::vector<KeyedItem> top = merged.TopEntries();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].item.id, 1u);
  EXPECT_EQ(top[1].item.id, 3u);
}

TEST(MergeableSampleTest, SlotMinTakesPerRaceMinimum) {
  MergeableSample a;
  a.kind = SampleKind::kSlotMin;
  a.target_size = 3;
  a.slots.resize(3);
  a.slots[0] = MergeableSample::Slot{true, 0.4, Item{1, 2.0}};
  a.slots[2] = MergeableSample::Slot{true, 0.9, Item{2, 1.0}};
  MergeableSample b;
  b.kind = SampleKind::kSlotMin;
  b.target_size = 3;
  b.slots.resize(3);
  b.slots[0] = MergeableSample::Slot{true, 0.2, Item{3, 1.0}};
  b.slots[1] = MergeableSample::Slot{true, 0.7, Item{4, 3.0}};

  const MergeableSample merged = MergeShardSamples({a, b});
  ASSERT_EQ(merged.slots.size(), 3u);
  EXPECT_EQ(merged.slots[0].item.id, 3u);  // 0.2 beats 0.4
  EXPECT_EQ(merged.slots[1].item.id, 4u);  // only contender
  EXPECT_EQ(merged.slots[2].item.id, 2u);
  EXPECT_EQ(merged.TopEntries().size(), 3u);
}

TEST(MergeableSampleTest, ScalarSumsAndEmptyIsIdentity) {
  MergeableSample a;
  a.kind = SampleKind::kScalarSum;
  a.scalar = 2.5;
  MergeableSample b;
  b.kind = SampleKind::kScalarSum;
  b.scalar = 4.0;
  const MergeableSample merged = MergeShardSamples({a, MergeableSample{}, b});
  EXPECT_EQ(merged.kind, SampleKind::kScalarSum);
  EXPECT_DOUBLE_EQ(merged.scalar, 6.5);

  const MergeableSample none = MergeShardSamples({{}, {}});
  EXPECT_EQ(none.kind, SampleKind::kEmpty);
  EXPECT_TRUE(none.TopEntries().empty());
}

// ---------------------------------------------------------------------
// Sharded weighted SWOR: S = 1 is the unsharded protocol bit for bit.

TEST(ShardedWsworTest, SingleShardBitIdenticalToUnsharded) {
  const WsworConfig config{.num_sites = 4, .sample_size = 8, .seed = 42};
  const Workload w = ZipfWorkload(4, 3000, /*seed=*/5);

  DistributedWswor unsharded(config);
  unsharded.Run(w);

  ShardedWswor sharded(config, /*num_shards=*/1);
  sharded.Run(w);

  const std::vector<KeyedItem> a = unsharded.Sample();
  const std::vector<KeyedItem> b = sharded.Sample();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].item.id, b[i].item.id) << " position " << i;
    EXPECT_EQ(a[i].key, b[i].key) << " position " << i;
  }
  const sim::MessageStats& sa = unsharded.stats();
  const sim::MessageStats sb = sharded.stats();
  EXPECT_EQ(sa.site_to_coord, sb.site_to_coord);
  EXPECT_EQ(sa.coord_to_site, sb.coord_to_site);
  EXPECT_EQ(sa.words, sb.words);
}

TEST(ShardedWsworTest, SingleShardBitIdenticalUnderDelayAndJitter) {
  // Shard 0 takes the jitter seed raw, so the bit-identity contract
  // holds on a jittered delaying network too, not just the zero-delay
  // case.
  const WsworConfig config{.num_sites = 3,
                           .sample_size = 8,
                           .seed = 11,
                           .delivery_delay = 3,
                           .jitter_seed = 5};
  const Workload w = ZipfWorkload(3, 1500, /*seed=*/23);

  DistributedWswor unsharded(config);
  unsharded.Run(w);
  unsharded.FlushNetwork();

  ShardedWswor sharded(config, /*num_shards=*/1);
  sharded.Run(w);
  sharded.FlushNetwork();

  const std::vector<KeyedItem> a = unsharded.Sample();
  const std::vector<KeyedItem> b = sharded.Sample();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].item.id, b[i].item.id) << " position " << i;
    EXPECT_EQ(a[i].key, b[i].key) << " position " << i;
  }
  EXPECT_EQ(unsharded.stats().site_to_coord, sharded.stats().site_to_coord);
}

// ---------------------------------------------------------------------
// Distribution exactness of the merged global sample at S ∈ {1, 2, 4}.

TEST(ShardedDistributionTest, MergedSampleSetsChiSquareAcrossShardCounts) {
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  const int k = 4, s = 2, trials = 2000;
  for (int shards : {1, 2, 4}) {
    const auto result = testing::SworSetGoodnessOfFit(
        weights, s, trials, [&](int t) {
          const WsworConfig config{
              .num_sites = k,
              .sample_size = s,
              .seed = 10000 * static_cast<uint64_t>(shards) +
                      static_cast<uint64_t>(t)};
          ShardedWswor sampler(config, shards);
          sampler.Run(SmallWeighted(weights, k,
                                    /*seed=*/777 + static_cast<uint64_t>(t)));
          std::vector<uint64_t> ids;
          for (const KeyedItem& ki : sampler.Sample()) ids.push_back(ki.item.id);
          return ids;
        });
    EXPECT_GT(result.p_value, 1e-3)
        << "S=" << shards << " chi2=" << result.statistic
        << " df=" << result.degrees_of_freedom;
  }
}

TEST(ShardedDistributionTest, UnweightedMinKeyMergeChiSquare) {
  // The unweighted substrate's min-key merge (negated-key kTopKey): the
  // merged sample must be a uniform SWOR of the union stream.
  const std::vector<double> weights(6, 1.0);
  const int k = 4, s = 2, shards = 2, trials = 2000;
  const ShardTopology topo(k, shards);
  const auto result = testing::SworSetGoodnessOfFit(
      weights, s, trials, [&](int t) {
        sim::ShardedRuntime runtime(k, shards);
        std::vector<std::unique_ptr<UsworSite>> sites;
        std::vector<std::unique_ptr<UsworCoordinator>> coords;
        Rng master(40000 + static_cast<uint64_t>(t));
        std::vector<UsworConfig> shard_configs;
        for (int j = 0; j < shards; ++j) {
          UsworConfig config;
          config.num_sites = topo.SiteCount(j);
          config.sample_size = s;
          shard_configs.push_back(config);
        }
        for (int i = 0; i < k; ++i) {
          const int j = topo.ShardOf(i);
          sites.push_back(std::make_unique<UsworSite>(
              shard_configs[static_cast<size_t>(j)], topo.LocalOf(i),
              &runtime.shard_network(j), master.NextU64()));
          runtime.AttachSite(i, sites.back().get());
        }
        for (int j = 0; j < shards; ++j) {
          coords.push_back(std::make_unique<UsworCoordinator>(
              shard_configs[static_cast<size_t>(j)],
              &runtime.shard_network(j)));
          runtime.AttachShardCoordinator(j, coords.back().get());
        }
        runtime.Run(SmallWeighted(weights, k,
                                  /*seed=*/555 + static_cast<uint64_t>(t)));
        std::vector<uint64_t> ids;
        for (const Item& item : UsworSampleFromMerged(runtime.MergedSample())) {
          ids.push_back(item.id);
        }
        return ids;
      });
  EXPECT_GT(result.p_value, 1e-3) << "chi2=" << result.statistic;
}

TEST(ShardedDistributionTest, SwrSlotMergeRaceWinnerIsWeightedDraw) {
  // Sharded SWR: every race's merged winner (min of per-shard minima)
  // must be a fresh weighted draw over the whole stream.
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  const int k = 2, s = 4, shards = 2, trials = 1500;
  const ShardTopology topo(k, shards);
  const auto result = testing::WeightedDrawGoodnessOfFit(
      weights, trials, [&](int t) {
        sim::ShardedRuntime runtime(k, shards);
        std::vector<std::unique_ptr<SlottedSwrSite>> sites;
        std::vector<std::unique_ptr<SlottedSwrCoordinator>> coords;
        Rng master(60000 + static_cast<uint64_t>(t));
        SlottedSwrConfig config;
        config.num_sites = 1;  // per shard
        config.sample_size = s;
        for (int i = 0; i < k; ++i) {
          const int j = topo.ShardOf(i);
          sites.push_back(std::make_unique<SlottedSwrSite>(
              config, topo.LocalOf(i), &runtime.shard_network(j),
              master.NextU64()));
          runtime.AttachSite(i, sites.back().get());
        }
        for (int j = 0; j < shards; ++j) {
          coords.push_back(std::make_unique<SlottedSwrCoordinator>(
              config, &runtime.shard_network(j)));
          runtime.AttachShardCoordinator(j, coords.back().get());
        }
        runtime.Run(SmallWeighted(weights, k,
                                  /*seed=*/888 + static_cast<uint64_t>(t)));
        const MergeableSample merged = runtime.MergedSample();
        EXPECT_EQ(merged.kind, SampleKind::kSlotMin);
        EXPECT_TRUE(merged.slots[0].filled);
        return merged.slots[0].item.id;
      });
  EXPECT_GT(result.p_value, 1e-3) << "chi2=" << result.statistic;
}

// ---------------------------------------------------------------------
// Cross-backend replay: engine::ShardedEngine in step-synchronous mode
// is bit-identical to sim::ShardedRuntime — merged sample and per-shard
// traffic alike.

TEST(ShardedEquivalenceTest, EngineStepSyncMatchesShardedRuntime) {
  const WsworConfig config{.num_sites = 4, .sample_size = 8, .seed = 13};
  const int shards = 2;
  const Workload w = ZipfWorkload(4, 2500, /*seed=*/7);

  ShardedWswor sim_sampler(config, shards);
  sim_sampler.Run(w);

  ShardedEngineConfig engine_config;
  engine_config.num_sites = 4;
  engine_config.num_shards = shards;
  engine_config.shard.step_synchronous = true;
  ShardedEngine eng(engine_config);
  const ShardedWsworEndpoints endpoints = AttachShardedWswor(config, eng);
  eng.Run(w);

  const std::vector<KeyedItem> a = sim_sampler.Sample();
  const std::vector<KeyedItem> b = eng.MergedSample().TopEntries();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].item.id, b[i].item.id) << " position " << i;
    EXPECT_EQ(a[i].key, b[i].key) << " position " << i;
  }
  for (int j = 0; j < shards; ++j) {
    const sim::MessageStats& sa = sim_sampler.shard_stats(j);
    const sim::MessageStats sb = eng.shard_engine(j).stats().MessageSnapshot();
    EXPECT_EQ(sa.site_to_coord, sb.site_to_coord) << " shard " << j;
    EXPECT_EQ(sa.coord_to_site, sb.coord_to_site) << " shard " << j;
    EXPECT_EQ(sa.words, sb.words) << " shard " << j;
  }
  eng.Shutdown();
}

// ---------------------------------------------------------------------
// Full-throughput sharded engine: nondeterministic interleaving, still
// an exact weighted SWOR after the root merge.

TEST(ShardedEngineTest, PipelinedMergedSampleChiSquare) {
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  const int k = 4, s = 2, shards = 2, trials = 2000;
  const auto result = testing::SworSetGoodnessOfFit(
      weights, s, trials, [&](int t) {
        const WsworConfig config{
            .num_sites = k, .sample_size = s,
            .seed = 70000 + static_cast<uint64_t>(t)};
        ShardedEngineConfig engine_config;
        engine_config.num_sites = k;
        engine_config.num_shards = shards;
        engine_config.shard.batch_size = 2;
        engine_config.shard.item_queue_batches = 2;
        engine_config.shard.message_queue_capacity = 4;
        ShardedEngine eng(engine_config);
        const ShardedWsworEndpoints endpoints =
            AttachShardedWswor(config, eng);
        Rng partition(99 + static_cast<uint64_t>(t));
        for (uint64_t i = 0; i < weights.size(); ++i) {
          eng.Push(static_cast<int>(
                       partition.NextBounded(static_cast<uint64_t>(k))),
                   Item{i, weights[i]});
        }
        eng.Flush();
        std::vector<uint64_t> ids;
        for (const KeyedItem& ki : eng.MergedSample().TopEntries()) {
          ids.push_back(ki.item.id);
        }
        eng.Shutdown();
        return ids;
      });
  EXPECT_GT(result.p_value, 1e-3) << "chi2=" << result.statistic;
}

TEST(ShardedEngineTest, PerShardMessageCountsSumToAggregate) {
  const WsworConfig config{.num_sites = 6, .sample_size = 8, .seed = 5};
  ShardedEngineConfig engine_config;
  engine_config.num_sites = 6;
  engine_config.num_shards = 3;
  ShardedEngine eng(engine_config);
  const ShardedWsworEndpoints endpoints = AttachShardedWswor(config, eng);
  eng.Run(ZipfWorkload(6, 4000, /*seed=*/17));

  const std::vector<uint64_t> per_shard = eng.PerShardMessages();
  ASSERT_EQ(per_shard.size(), 3u);
  uint64_t sum = 0;
  for (uint64_t m : per_shard) sum += m;
  EXPECT_EQ(sum, eng.AggregateMessageSnapshot().total_messages());
  EXPECT_GT(sum, 0u);
  EXPECT_EQ(eng.steps(), 4000u);
  eng.Shutdown();
}

// ---------------------------------------------------------------------
// Fault injection with per-shard sessions: a crash schedule confined to
// one shard degrades only that shard's slice; the merged sample is an
// exact SWOR over the surviving items and never contains a lost one.

TEST(ShardedFaultsTest, CrashedShardIsExactOverSurvivorsAndIsolated) {
  const std::vector<double> weights = {1.0, 2.0, 4.0, 1.0, 3.0,
                                       2.0, 5.0, 1.0, 2.0, 3.0};
  const int k = 4, s = 2, shards = 2;
  const ShardTopology topo(k, shards);
  const Workload w = SmallWeighted(weights, k, /*seed=*/19);

  FaultConfig crashy;
  crashy.seed = 31;  // chosen so the schedule actually loses items
  crashy.crash_prob = 0.25;
  crashy.crash_down_items = 2;
  const FaultConfig clean;  // shard 1: no faults
  const std::vector<FaultConfig> shard_faults = {crashy, clean};

  // Ground truth: shard 0's survivors under its own schedule, all of
  // shard 1's items — the merged sample must be an exact SWOR of these.
  const std::vector<Workload> splits = SplitByShard(w, topo);
  std::set<uint64_t> survivors;
  for (uint64_t id :
       faults::SurvivingItemIds(splits[0], FaultSchedule(crashy))) {
    survivors.insert(id);
  }
  for (const WorkloadEvent& e : splits[1].events()) survivors.insert(e.item.id);
  ASSERT_LT(survivors.size(), weights.size());  // the schedule bit
  ASSERT_GE(survivors.size(), 4u);

  std::map<uint64_t, uint64_t> survivor_index;
  std::vector<double> survivor_weights;
  for (uint64_t id : survivors) {
    survivor_index[id] = survivor_weights.size();
    survivor_weights.push_back(weights[id]);
  }

  uint64_t crashes_seen = 0;
  const auto result = testing::SworSetGoodnessOfFit(
      survivor_weights, s, 3000, [&](int t) {
        WsworConfig config;
        config.num_sites = k;
        config.sample_size = s;
        config.seed = 500000 + static_cast<uint64_t>(t);
        ShardedFaultyWswor run(config, shard_faults, Backend::kSim);
        run.Run(w);
        const RunReport report = run.report();
        EXPECT_TRUE(report.clean) << " trial " << t;
        crashes_seen += report.crashes;
        // Fault isolation: all crashes live in shard 0.
        EXPECT_EQ(run.shard(1).report().crashes, 0u);
        std::vector<uint64_t> remapped;
        for (uint64_t id : run.MergedSampleIds()) {
          auto it = survivor_index.find(id);
          EXPECT_TRUE(it != survivor_index.end())
              << " sampled item " << id << " was lost in a crash";
          remapped.push_back(it->second);
        }
        return remapped;
      });
  EXPECT_GT(crashes_seen, 0u);
  EXPECT_GT(result.p_value, 1e-4) << "chi2=" << result.statistic;
}

// ---------------------------------------------------------------------
// Sharded L1: per-shard W-hat estimates compose by summation.

TEST(ShardedL1Test, SummedShardEstimatesTrackTotalWeight) {
  const int k = 4, shards = 2;
  const ShardTopology topo(k, shards);
  L1TrackerConfig config;
  config.num_sites = k;
  config.eps = 0.15;
  config.delta = 0.1;
  config.seed = 21;

  const Workload w = WorkloadBuilder()
                         .num_sites(k)
                         .num_items(600)
                         .seed(33)
                         .weights(std::make_unique<UniformWeights>(1.0, 16.0))
                         .partitioner(std::make_unique<RandomPartitioner>())
                         .Build();

  sim::ShardedRuntime runtime(k, shards);
  std::vector<std::unique_ptr<L1Site>> sites;
  std::vector<std::unique_ptr<WsworCoordinator>> coords;
  std::vector<L1TrackerConfig> shard_configs;
  for (int j = 0; j < shards; ++j) {
    L1TrackerConfig shard_config = config;
    shard_config.num_sites = topo.SiteCount(j);
    shard_config.seed = ShardSeed(config.seed, j);
    shard_configs.push_back(shard_config);
  }
  Rng master(config.seed);
  for (int i = 0; i < k; ++i) {
    const int j = topo.ShardOf(i);
    sites.push_back(std::make_unique<L1Site>(
        shard_configs[static_cast<size_t>(j)], topo.LocalOf(i),
        &runtime.shard_network(j), master.NextU64()));
    runtime.AttachSite(i, sites.back().get());
  }
  for (int j = 0; j < shards; ++j) {
    coords.push_back(std::make_unique<WsworCoordinator>(
        L1CoordinatorConfig(shard_configs[static_cast<size_t>(j)]),
        &runtime.shard_network(j), master.NextU64()));
    runtime.AttachShardCoordinator(j, coords.back().get());
  }
  runtime.Run(w);

  std::vector<const WsworCoordinator*> coordinator_ptrs;
  for (const auto& c : coords) coordinator_ptrs.push_back(c.get());
  const double estimate = ShardedL1Estimate(config, coordinator_ptrs);
  const double truth = w.TotalWeight();
  EXPECT_GT(estimate, 0.0);
  EXPECT_LT(std::abs(estimate - truth) / truth, config.eps)
      << " estimate=" << estimate << " W=" << truth;

  // The scalar summaries really do merge by summation.
  const double direct =
      L1EstimateFromThreshold(config, coords[0]->Threshold()) +
      L1EstimateFromThreshold(config, coords[1]->Threshold());
  EXPECT_DOUBLE_EQ(estimate, direct);
}

}  // namespace
}  // namespace dwrs
