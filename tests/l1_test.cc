#include <cmath>
#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "l1/deterministic_l1.h"
#include "l1/l1_tracker.h"
#include "l1/sqrtk_l1.h"
#include "stream/workload.h"

namespace dwrs {
namespace {

Workload UniformStream(int sites, uint64_t items, uint64_t seed) {
  return WorkloadBuilder()
      .num_sites(sites)
      .num_items(items)
      .seed(seed)
      .weights(std::make_unique<UniformWeights>(1.0, 20.0))
      .partitioner(std::make_unique<RandomPartitioner>())
      .Build();
}

TEST(L1ConfigTest, SampleSizeAndDuplication) {
  L1TrackerConfig config;
  config.eps = 0.2;
  config.delta = 0.1;
  const int s = config.SampleSize();
  EXPECT_EQ(s, static_cast<int>(std::ceil(10.0 * std::log(10.0) / 0.04)));
  EXPECT_EQ(config.Duplication(),
            static_cast<uint64_t>(std::ceil(s / 0.4)));
  EXPECT_GE(config.Duplication(), static_cast<uint64_t>(s));
}

TEST(L1TrackerTest, TracksWithinEpsilonThroughout) {
  const int k = 8;
  L1TrackerConfig config;
  config.num_sites = k;
  config.eps = 0.2;
  config.delta = 0.1;
  config.seed = 3;
  L1Tracker tracker(config);
  const Workload w = UniformStream(k, 4000, 4);
  double true_weight = 0.0;
  double worst = 0.0;
  for (uint64_t i = 0; i < w.size(); ++i) {
    true_weight += w.event(i).item.weight;
    tracker.Observe(w.event(i).site, w.event(i).item);
    const double rel =
        std::fabs(tracker.Estimate() - true_weight) / true_weight;
    worst = std::max(worst, rel);
  }
  // Per-time-step guarantee is eps w.p. 1-delta; the observed worst over
  // all steps stays within a small multiple for this fixed seed.
  EXPECT_LT(worst, 2.0 * config.eps);
}

TEST(L1TrackerTest, FirstItemEstimatedImmediately) {
  L1TrackerConfig config;
  config.num_sites = 2;
  config.eps = 0.2;
  config.delta = 0.2;
  config.seed = 5;
  L1Tracker tracker(config);
  EXPECT_DOUBLE_EQ(tracker.Estimate(), 0.0);
  tracker.Observe(0, Item{0, 10.0});
  // After a single item the duplicated sample is already full and the
  // estimate concentrates around that item's weight.
  EXPECT_NEAR(tracker.Estimate(), 10.0, 10.0 * 0.5);
}

TEST(L1TrackerTest, SkewedStreamStillTracks) {
  const int k = 4;
  L1TrackerConfig config;
  config.num_sites = k;
  config.eps = 0.25;
  config.delta = 0.1;
  config.seed = 7;
  L1Tracker tracker(config);
  const Workload w = WorkloadBuilder()
                         .num_sites(k)
                         .num_items(2000)
                         .seed(8)
                         .weights(std::make_unique<ParetoWeights>(1.2))
                         .partitioner(std::make_unique<RandomPartitioner>())
                         .Build();
  double true_weight = 0.0;
  double worst = 0.0;
  for (uint64_t i = 0; i < w.size(); ++i) {
    true_weight += w.event(i).item.weight;
    tracker.Observe(w.event(i).site, w.event(i).item);
    worst = std::max(
        worst, std::fabs(tracker.Estimate() - true_weight) / true_weight);
  }
  EXPECT_LT(worst, 3.0 * config.eps);
}

TEST(L1TrackerTest, MessagesWithinTheorem6Bound) {
  const int k = 16;
  L1TrackerConfig config;
  config.num_sites = k;
  config.eps = 0.25;
  config.delta = 0.2;
  config.seed = 9;
  L1Tracker tracker(config);
  const Workload w = UniformStream(k, 20000, 10);
  tracker.Run(w);
  const double bound =
      Theorem6MessageBound(k, 0.25, 0.2, w.TotalWeight());
  EXPECT_LT(static_cast<double>(tracker.stats().total_messages()),
            60.0 * bound);
}

TEST(DeterministicL1Test, NeverExceedsEpsilon) {
  const int k = 8;
  const double eps = 0.1;
  DeterministicL1Tracker tracker(k, eps);
  const Workload w = UniformStream(k, 5000, 11);
  double true_weight = 0.0;
  for (uint64_t i = 0; i < w.size(); ++i) {
    true_weight += w.event(i).item.weight;
    tracker.Observe(w.event(i).site, w.event(i).item);
    const double rel =
        std::fabs(tracker.Estimate() - true_weight) / true_weight;
    EXPECT_LE(rel, eps + 1e-9) << "at step " << i + 1;
  }
}

TEST(DeterministicL1Test, MessageCountScalesWithKOverEps) {
  const Workload w = UniformStream(8, 20000, 12);
  DeterministicL1Tracker fine(8, 0.05);
  DeterministicL1Tracker coarse(8, 0.4);
  fine.Run(w);
  coarse.Run(w);
  EXPECT_GT(fine.stats().total_messages(),
            3 * coarse.stats().total_messages());
  // ~ k * ln(W_local) / eps messages overall.
  const double expected =
      8.0 * std::log(w.TotalWeight() / 8.0) / 0.05;
  EXPECT_LT(static_cast<double>(fine.stats().total_messages()),
            3.0 * expected);
}

TEST(SqrtkL1Test, TracksWithinFewEpsilon) {
  // Inside the [23] regime k <= 1/eps^2, where the randomized drift
  // correction is valid.
  const int k = 4;
  const double eps = 0.2;
  SqrtkL1Tracker tracker(k, eps, /*seed=*/13);
  const Workload w = UniformStream(k, 10000, 14);
  double true_weight = 0.0;
  double worst_late = 0.0;
  for (uint64_t i = 0; i < w.size(); ++i) {
    true_weight += w.event(i).item.weight;
    tracker.Observe(w.event(i).site, w.event(i).item);
    if (i > w.size() / 10) {
      worst_late = std::max(
          worst_late,
          std::fabs(tracker.Estimate() - true_weight) / true_weight);
    }
  }
  EXPECT_LT(worst_late, 4.0 * eps);
}

TEST(SqrtkL1Test, CheaperThanDeterministicForLargeK) {
  const int k = 256;
  const double eps = 0.05;
  const Workload w = UniformStream(k, 30000, 15);
  SqrtkL1Tracker randomized(k, eps, /*seed=*/16);
  DeterministicL1Tracker deterministic(k, eps);
  randomized.Run(w);
  deterministic.Run(w);
  EXPECT_LT(randomized.stats().total_messages(),
            deterministic.stats().total_messages());
}

TEST(L1ComparisonTest, OursCheaperThanDeterministicForLargeK) {
  // The headline claim: for k >= 1/eps^2 the SWOR-based tracker sends
  // fewer messages than the deterministic baseline.
  const int k = 2048;
  const double eps = 0.3;  // 1/eps^2 ~ 11 << k
  const Workload w = UniformStream(k, 120000, 17);
  L1TrackerConfig config;
  config.num_sites = k;
  config.eps = eps;
  config.delta = 0.3;
  config.seed = 18;
  L1Tracker ours(config);
  DeterministicL1Tracker det(k, eps);
  ours.Run(w);
  det.Run(w);
  EXPECT_LT(ours.stats().total_messages(), det.stats().total_messages());
}

TEST(L1TrackerDeathTest, RejectsHugeEps) {
  L1TrackerConfig config;
  config.eps = 0.7;
  EXPECT_DEATH(config.SampleSize(), "DWRS_CHECK");
}

}  // namespace
}  // namespace dwrs
