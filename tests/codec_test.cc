#include <vector>

#include "gtest/gtest.h"
#include "core/config.h"
#include "durability/records.h"
#include "durability/wal.h"
#include "faults/session.h"
#include "random/rng.h"
#include "sim/codec.h"
#include "unweighted/distributed_swor.h"

namespace dwrs {
namespace {

using sim::DecodePayload;
using sim::EncodePayload;
using sim::GetVarint;
using sim::Payload;
using sim::PutVarint;

TEST(VarintTest, RoundTripSmallAndLarge) {
  const std::vector<uint64_t> cases = {
      0, 1, 127, 128, 300, 1ull << 20, 1ull << 40, UINT64_MAX};
  for (uint64_t x : cases) {
    std::vector<uint8_t> buf;
    PutVarint(&buf, x);
    size_t pos = 0;
    const auto decoded = GetVarint(buf, &pos);
    ASSERT_TRUE(decoded.has_value()) << x;
    EXPECT_EQ(*decoded, x);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(VarintTest, SmallValuesAreOneByte) {
  std::vector<uint8_t> buf;
  PutVarint(&buf, 42);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(VarintTest, TruncationDetected) {
  std::vector<uint8_t> buf;
  PutVarint(&buf, 1ull << 40);
  buf.pop_back();
  size_t pos = 0;
  EXPECT_FALSE(GetVarint(buf, &pos).has_value());
}

TEST(VarintTest, OverlongEncodingRejected) {
  std::vector<uint8_t> buf(11, 0x80);  // 11 continuation bytes
  size_t pos = 0;
  EXPECT_FALSE(GetVarint(buf, &pos).has_value());
}

TEST(CodecTest, PayloadRoundTrip) {
  Payload msg;
  msg.type = 3;
  msg.a = 123456789;
  msg.x = 2.5;
  msg.y = 3.14159e12;
  const auto bytes = EncodePayload(msg);
  const auto decoded = DecodePayload(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, msg.type);
  EXPECT_EQ(decoded->a, msg.a);
  EXPECT_DOUBLE_EQ(decoded->x, msg.x);
  EXPECT_DOUBLE_EQ(decoded->y, msg.y);
}

TEST(CodecTest, OmitsZeroDoubles) {
  Payload epoch_update;
  epoch_update.type = 4;
  epoch_update.a = 0;
  epoch_update.x = 0.0;
  epoch_update.y = 0.0;
  // type + a + flags = 3 bytes only.
  EXPECT_EQ(EncodePayload(epoch_update).size(), 3u);
  Payload with_x = epoch_update;
  with_x.x = 8.0;
  EXPECT_EQ(EncodePayload(with_x).size(), 11u);
}

TEST(CodecTest, EncodedSizeWithinWordAccounting) {
  // The paper counts <= 4 machine words per message; the wire encoding
  // must fit in that budget (32 bytes) for every protocol message shape.
  for (uint32_t type : {1u, 2u, 3u, 4u}) {
    Payload msg;
    msg.type = type;
    msg.a = (1ull << 40) - 1;
    msg.x = 1.7976931348623157e308;
    msg.y = 4.9e-324;
    EXPECT_LE(sim::EncodedSize(msg), 32u);
  }
}

// ---------------------------------------------------------------------
// Golden wire-format values: one pinned byte sequence per protocol
// message shape (including the session layer's seq/epoch reliability
// header). A failure here means the wire format silently drifted —
// update the goldens only for a deliberate, versioned format change.

void ExpectGolden(const Payload& msg, const std::vector<uint8_t>& golden) {
  EXPECT_EQ(EncodePayload(msg), golden);
  const auto decoded = DecodePayload(golden);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, msg.type);
  EXPECT_EQ(decoded->a, msg.a);
  EXPECT_EQ(decoded->seq, msg.seq);
  EXPECT_EQ(decoded->epoch, msg.epoch);
  EXPECT_DOUBLE_EQ(decoded->x, msg.x);
  EXPECT_DOUBLE_EQ(decoded->y, msg.y);
}

TEST(CodecGoldenTest, WsworEarly) {
  Payload msg;
  msg.type = kWsworEarly;
  msg.a = 7;     // item id
  msg.x = 3.0;   // weight
  ExpectGolden(msg, {0x01, 0x07, 0x01,  // type, a, flags: x only
                     0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x08, 0x40});
}

TEST(CodecGoldenTest, WsworRegular) {
  Payload msg;
  msg.type = kWsworRegular;
  msg.a = 300;
  msg.x = 2.5;  // weight
  msg.y = 1.5;  // key
  ExpectGolden(msg, {0x02, 0xAC, 0x02, 0x03,  // type, varint a, flags: x|y
                     0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x04, 0x40,
                     0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xF8, 0x3F});
}

TEST(CodecGoldenTest, WsworLevelSaturated) {
  Payload msg;
  msg.type = kWsworLevelSaturated;
  msg.a = 5;  // level index
  ExpectGolden(msg, {0x03, 0x05, 0x00});
}

TEST(CodecGoldenTest, WsworUpdateEpoch) {
  Payload msg;
  msg.type = kWsworUpdateEpoch;
  msg.x = 8.0;  // threshold r^j
  ExpectGolden(msg, {0x04, 0x00, 0x01,
                     0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x20, 0x40});
}

TEST(CodecGoldenTest, UsworCandidateWithReliabilityHeader) {
  // An unweighted candidate as stamped by the session layer: every
  // optional field present, exercising the full flags byte.
  Payload msg;
  msg.type = kUsworCandidate;
  msg.a = 9;
  msg.x = 1.0;   // weight (carried for interface parity)
  msg.y = 0.25;  // uniform key
  msg.seq = 130;
  msg.epoch = 2;
  ExpectGolden(msg, {0x01, 0x09, 0x0F,        // flags: x|y|seq|epoch
                     0x82, 0x01,              // varint seq 130
                     0x02,                    // varint epoch 2
                     0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xF0, 0x3F,
                     0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xD0, 0x3F});
}

TEST(CodecGoldenTest, UsworThreshold) {
  Payload msg;
  msg.type = kUsworThreshold;
  msg.x = 0.25;  // tau-hat
  ExpectGolden(msg, {0x02, 0x00, 0x01,
                     0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xD0, 0x3F});
}

TEST(CodecGoldenTest, SessionAck) {
  Payload msg;
  msg.type = faults::kSessionAck;
  msg.a = 41;  // cumulative seq
  msg.epoch = 3;
  ExpectGolden(msg, {0x18, 0x29, 0x08, 0x03});
}

TEST(CodecGoldenTest, SessionNack) {
  Payload msg;
  msg.type = faults::kSessionNack;
  msg.a = 2;  // retransmit-from seq
  msg.epoch = 1;
  ExpectGolden(msg, {0x19, 0x02, 0x08, 0x01});
}

TEST(CodecGoldenTest, SessionHello) {
  // First stamped message of a restarted site's epoch.
  Payload msg;
  msg.type = faults::kSessionHello;
  msg.seq = 1;
  msg.epoch = 1;
  ExpectGolden(msg, {0x1A, 0x00, 0x0C, 0x01, 0x01});
}

// --- WAL record golden vectors ----------------------------------------
//
// The durability WAL (src/durability/records.h) persists these to disk;
// the byte layout is a compatibility surface exactly like the message
// wire format above. One golden per record type, asserting encode AND
// decode against pinned bytes.

void ExpectWalGolden(const durability::WalRecord& record,
                     const std::vector<uint8_t>& golden) {
  EXPECT_EQ(durability::EncodeWalRecord(record), golden)
      << durability::WalRecordTypeName(record.type);
  const auto decoded = durability::DecodeWalRecord(golden);
  ASSERT_TRUE(decoded.has_value())
      << durability::WalRecordTypeName(record.type);
  EXPECT_EQ(durability::EncodeWalRecord(*decoded), golden);
}

TEST(WalRecordGoldenTest, Message) {
  // A kWsworRegular arrival wrapped in a WAL record: type, site varint,
  // wire length varint, then the message codec's bytes verbatim.
  durability::WalRecord record;
  record.type = durability::WalRecordType::kMessage;
  record.site = 2;
  record.msg.type = kWsworRegular;
  record.msg.a = 300;
  record.msg.x = 2.5;
  record.msg.y = 1.5;
  ExpectWalGolden(record,
                  {0x01, 0x02, 0x14,              // type, site, wire len
                   0x02, 0xAC, 0x02, 0x03,        // inner: type, a, flags
                   0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x04, 0x40,
                   0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xF8, 0x3F});
}

TEST(WalRecordGoldenTest, ThresholdBump) {
  durability::WalRecord record;
  record.type = durability::WalRecordType::kThresholdBump;
  record.threshold = 8.0;
  ExpectWalGolden(record, {0x02,
                           0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x20, 0x40});
}

TEST(WalRecordGoldenTest, EpochChange) {
  durability::WalRecord record;
  record.type = durability::WalRecordType::kEpochChange;
  record.epoch = 3;
  ExpectWalGolden(record, {0x03, 0x06});  // zigzag(3) = 6
  record.epoch = -1;
  ExpectWalGolden(record, {0x03, 0x01});  // zigzag(-1) = 1
}

TEST(WalRecordGoldenTest, SampleDelta) {
  durability::WalRecord record;
  record.type = durability::WalRecordType::kSampleDelta;
  record.added = KeyedItem{Item{7, 3.0}, 1.5};
  record.evicted_valid = true;
  record.evicted_id = 300;
  ExpectWalGolden(record,
                  {0x04, 0x07,  // type, added id
                   0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x08, 0x40,  // weight
                   0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xF8, 0x3F,  // key
                   0x01, 0xAC, 0x02});  // evicted flag + id varint
  record.evicted_valid = false;
  record.evicted_id = 0;
  ExpectWalGolden(record,
                  {0x04, 0x07,
                   0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x08, 0x40,
                   0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xF8, 0x3F,
                   0x00});  // no eviction: flag only
}

TEST(WalRecordGoldenTest, StepAndCheckpointMarks) {
  durability::WalRecord record;
  record.type = durability::WalRecordType::kStepMark;
  record.step = 300;
  ExpectWalGolden(record, {0x05, 0xAC, 0x02});
  record.type = durability::WalRecordType::kCheckpointMark;
  record.step = 5;
  ExpectWalGolden(record, {0x06, 0x05});
}

TEST(WalRecordGoldenTest, WalFileFraming) {
  // A whole one-record segment, byte for byte: "DWAL" magic, version 1,
  // then frame = u32 payload length LE | u32 CRC32(payload) LE | payload
  // for a kStepMark(1) record.
  const std::vector<uint8_t> golden = {
      'D', 'W', 'A', 'L', 0x01,       // header (kWalHeaderSize = 5)
      0x02, 0x00, 0x00, 0x00,         // payload length
      0x2C, 0xD6, 0xA9, 0x4B,         // CRC32({0x05, 0x01}) = 0x4BA9D62C
      0x05, 0x01};                    // payload
  const std::vector<uint8_t> payload = {0x05, 0x01};
  EXPECT_EQ(durability::Crc32(payload.data(), payload.size()), 0x4BA9D62Cu);
  EXPECT_EQ(golden[4], durability::kWalFormatVersion);
  EXPECT_EQ(golden.size(),
            durability::kWalHeaderSize + durability::kWalFrameOverhead +
                payload.size());
}

TEST(CodecTest, UnstampedEncodingIsUnchangedByHeaderFields) {
  // A zero seq/epoch (reliable network) must cost zero wire bytes — the
  // pre-fault-model encoding, byte for byte.
  Payload msg;
  msg.type = 3;
  msg.a = 123456789;
  msg.x = 2.5;
  const auto bytes = EncodePayload(msg);
  Payload stamped = msg;
  stamped.seq = 6;
  stamped.epoch = 1;
  EXPECT_GT(EncodePayload(stamped).size(), bytes.size());
  EXPECT_EQ(sim::EncodedSize(msg), bytes.size());
}

TEST(CodecTest, RejectsZeroedHeaderFieldsWithFlagsSet) {
  // flags claim a seq/epoch but encode 0 — non-canonical, rejected.
  EXPECT_FALSE(DecodePayload({0x01, 0x02, 0x04, 0x00}).has_value());
  EXPECT_FALSE(DecodePayload({0x01, 0x02, 0x08, 0x00}).has_value());
  // Truncated seq varint.
  EXPECT_FALSE(DecodePayload({0x01, 0x02, 0x04}).has_value());
}

TEST(CodecTest, RejectsMalformedInputs) {
  EXPECT_FALSE(DecodePayload({}).has_value());
  EXPECT_FALSE(DecodePayload({0x01}).has_value());           // missing a
  EXPECT_FALSE(DecodePayload({0x01, 0x02}).has_value());     // missing flags
  EXPECT_FALSE(DecodePayload({0x01, 0x02, 0x04}).has_value());  // bad flags
  EXPECT_FALSE(
      DecodePayload({0x01, 0x02, 0x01, 0xAA}).has_value());  // short double
  // Trailing garbage after a valid message.
  Payload msg;
  msg.type = 1;
  msg.a = 7;
  auto bytes = EncodePayload(msg);
  bytes.push_back(0x00);
  EXPECT_FALSE(DecodePayload(bytes).has_value());
}

TEST(CodecTest, FuzzRoundTrip) {
  Rng rng(77);
  for (int i = 0; i < 5000; ++i) {
    Payload msg;
    msg.type = static_cast<uint32_t>(rng.NextBounded(16));
    msg.a = rng.NextU64() >> static_cast<int>(rng.NextBounded(64));
    msg.x = rng.NextBit() ? rng.NextDouble() * 1e9 : 0.0;
    msg.y = rng.NextBit() ? rng.NextDouble() : 0.0;
    msg.seq = rng.NextBit()
                  ? static_cast<uint32_t>(1 + rng.NextBounded(UINT32_MAX))
                  : 0;
    msg.epoch =
        rng.NextBit() ? static_cast<uint32_t>(1 + rng.NextBounded(1000)) : 0;
    const auto decoded = DecodePayload(EncodePayload(msg));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->type, msg.type);
    EXPECT_EQ(decoded->a, msg.a);
    EXPECT_EQ(decoded->seq, msg.seq);
    EXPECT_EQ(decoded->epoch, msg.epoch);
    EXPECT_DOUBLE_EQ(decoded->x, msg.x);
    EXPECT_DOUBLE_EQ(decoded->y, msg.y);
  }
}

TEST(CodecTest, FuzzDecodeNeverCrashes) {
  Rng rng(78);
  for (int i = 0; i < 20000; ++i) {
    std::vector<uint8_t> bytes(rng.NextBounded(24));
    for (auto& b : bytes) b = static_cast<uint8_t>(rng.NextU64());
    (void)DecodePayload(bytes);  // must not crash or UB; result optional
  }
}

}  // namespace
}  // namespace dwrs
