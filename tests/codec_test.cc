#include <vector>

#include "gtest/gtest.h"
#include "random/rng.h"
#include "sim/codec.h"

namespace dwrs {
namespace {

using sim::DecodePayload;
using sim::EncodePayload;
using sim::GetVarint;
using sim::Payload;
using sim::PutVarint;

TEST(VarintTest, RoundTripSmallAndLarge) {
  const std::vector<uint64_t> cases = {
      0, 1, 127, 128, 300, 1ull << 20, 1ull << 40, UINT64_MAX};
  for (uint64_t x : cases) {
    std::vector<uint8_t> buf;
    PutVarint(&buf, x);
    size_t pos = 0;
    const auto decoded = GetVarint(buf, &pos);
    ASSERT_TRUE(decoded.has_value()) << x;
    EXPECT_EQ(*decoded, x);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(VarintTest, SmallValuesAreOneByte) {
  std::vector<uint8_t> buf;
  PutVarint(&buf, 42);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(VarintTest, TruncationDetected) {
  std::vector<uint8_t> buf;
  PutVarint(&buf, 1ull << 40);
  buf.pop_back();
  size_t pos = 0;
  EXPECT_FALSE(GetVarint(buf, &pos).has_value());
}

TEST(VarintTest, OverlongEncodingRejected) {
  std::vector<uint8_t> buf(11, 0x80);  // 11 continuation bytes
  size_t pos = 0;
  EXPECT_FALSE(GetVarint(buf, &pos).has_value());
}

TEST(CodecTest, PayloadRoundTrip) {
  Payload msg;
  msg.type = 3;
  msg.a = 123456789;
  msg.x = 2.5;
  msg.y = 3.14159e12;
  const auto bytes = EncodePayload(msg);
  const auto decoded = DecodePayload(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, msg.type);
  EXPECT_EQ(decoded->a, msg.a);
  EXPECT_DOUBLE_EQ(decoded->x, msg.x);
  EXPECT_DOUBLE_EQ(decoded->y, msg.y);
}

TEST(CodecTest, OmitsZeroDoubles) {
  Payload epoch_update;
  epoch_update.type = 4;
  epoch_update.a = 0;
  epoch_update.x = 0.0;
  epoch_update.y = 0.0;
  // type + a + flags = 3 bytes only.
  EXPECT_EQ(EncodePayload(epoch_update).size(), 3u);
  Payload with_x = epoch_update;
  with_x.x = 8.0;
  EXPECT_EQ(EncodePayload(with_x).size(), 11u);
}

TEST(CodecTest, EncodedSizeWithinWordAccounting) {
  // The paper counts <= 4 machine words per message; the wire encoding
  // must fit in that budget (32 bytes) for every protocol message shape.
  for (uint32_t type : {1u, 2u, 3u, 4u}) {
    Payload msg;
    msg.type = type;
    msg.a = (1ull << 40) - 1;
    msg.x = 1.7976931348623157e308;
    msg.y = 4.9e-324;
    EXPECT_LE(sim::EncodedSize(msg), 32u);
  }
}

TEST(CodecTest, RejectsMalformedInputs) {
  EXPECT_FALSE(DecodePayload({}).has_value());
  EXPECT_FALSE(DecodePayload({0x01}).has_value());           // missing a
  EXPECT_FALSE(DecodePayload({0x01, 0x02}).has_value());     // missing flags
  EXPECT_FALSE(DecodePayload({0x01, 0x02, 0x04}).has_value());  // bad flags
  EXPECT_FALSE(
      DecodePayload({0x01, 0x02, 0x01, 0xAA}).has_value());  // short double
  // Trailing garbage after a valid message.
  Payload msg;
  msg.type = 1;
  msg.a = 7;
  auto bytes = EncodePayload(msg);
  bytes.push_back(0x00);
  EXPECT_FALSE(DecodePayload(bytes).has_value());
}

TEST(CodecTest, FuzzRoundTrip) {
  Rng rng(77);
  for (int i = 0; i < 5000; ++i) {
    Payload msg;
    msg.type = static_cast<uint32_t>(rng.NextBounded(16));
    msg.a = rng.NextU64() >> static_cast<int>(rng.NextBounded(64));
    msg.x = rng.NextBit() ? rng.NextDouble() * 1e9 : 0.0;
    msg.y = rng.NextBit() ? rng.NextDouble() : 0.0;
    const auto decoded = DecodePayload(EncodePayload(msg));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->type, msg.type);
    EXPECT_EQ(decoded->a, msg.a);
    EXPECT_DOUBLE_EQ(decoded->x, msg.x);
    EXPECT_DOUBLE_EQ(decoded->y, msg.y);
  }
}

TEST(CodecTest, FuzzDecodeNeverCrashes) {
  Rng rng(78);
  for (int i = 0; i < 20000; ++i) {
    std::vector<uint8_t> bytes(rng.NextBounded(24));
    for (auto& b : bytes) b = static_cast<uint8_t>(rng.NextU64());
    (void)DecodePayload(bytes);  // must not crash or UB; result optional
  }
}

}  // namespace
}  // namespace dwrs
