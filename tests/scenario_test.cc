// Tests for the scenario layer (stream/scenario.h) and its temporal
// dynamics (stream/dynamics.h): registry shape, seed-determinism of
// every generator / arrival process / churn schedule, sim <-> engine
// bit-identity of every scenario through the paced feeder, chi-square
// exactness of merged samples under hot-key drift and site churn at
// S in {1, 4}, and a 25-seed churn-with-loss sweep asserting degraded
// runs are always flagged, never silently wrong.

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/sampler.h"
#include "engine/engine.h"
#include "faults/harness.h"
#include "gtest/gtest.h"
#include "sampling/mergeable_sample.h"
#include "stats/chi_square.h"
#include "stream/scenario.h"
#include "stream/sharding.h"
#include "test_util.h"

namespace dwrs {
namespace {

using faults::Backend;
using faults::FaultConfig;
using faults::FaultSchedule;
using faults::FaultyWswor;
using faults::RunReport;
using faults::ShardedFaultyWswor;

// ---------------------------------------------------------------------
// Registry shape.

TEST(ScenarioRegistryTest, CatalogShape) {
  const auto& registry = ScenarioRegistry();
  EXPECT_GE(registry.size(), 6u);
  std::set<std::string> names;
  for (const ScenarioSpec& s : registry) {
    EXPECT_FALSE(s.name.empty());
    EXPECT_FALSE(s.description.empty());
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate " << s.name;
    EXPECT_GT(s.num_sites, 0);
    EXPECT_GT(s.items_quick, 0u);
    EXPECT_GT(s.items_full, s.items_quick);
    ASSERT_TRUE(s.make_weights != nullptr) << s.name;
    ASSERT_TRUE(s.make_partitioner != nullptr) << s.name;
    ASSERT_TRUE(s.make_arrivals != nullptr) << s.name;
  }
  // The dynamics the matrix exists to cover must stay in the catalog.
  for (const char* required :
       {"steady_uniform", "zipf_sweep", "hot_key_drift", "site_churn"}) {
    EXPECT_NE(FindScenario(required), nullptr) << required;
  }
}

TEST(ScenarioRegistryTest, FindScenarioRoundTrips) {
  for (const ScenarioSpec& s : ScenarioRegistry()) {
    const ScenarioSpec* found = FindScenario(s.name);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found, &s);  // pointer into the registry, not a copy
  }
  EXPECT_EQ(FindScenario("no_such_scenario"), nullptr);
}

TEST(ScenarioRegistryTest, OnlyChurnScenariosCarryChurn) {
  for (const ScenarioSpec& s : ScenarioRegistry()) {
    if (s.has_churn) {
      EXPECT_GT(s.churn.crash_prob, 0.0) << s.name;
    } else {
      EXPECT_EQ(s.churn.crash_prob, 0.0) << s.name;
      EXPECT_EQ(s.churn.drop_prob, 0.0) << s.name;
    }
  }
}

// ---------------------------------------------------------------------
// Seed determinism of every scenario product.

TEST(ScenarioDeterminismTest, WorkloadReplaysBitForBit) {
  for (const ScenarioSpec& s : ScenarioRegistry()) {
    const Workload a = BuildScenarioWorkload(s, /*seed=*/42, /*quick=*/true);
    const Workload b = BuildScenarioWorkload(s, /*seed=*/42, /*quick=*/true);
    ASSERT_EQ(a.size(), s.items_quick) << s.name;
    ASSERT_EQ(a.size(), b.size()) << s.name;
    EXPECT_EQ(a.num_sites(), s.num_sites) << s.name;
    for (uint64_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a.event(i).site, b.event(i).site) << s.name << " @" << i;
      ASSERT_EQ(a.event(i).item.id, i) << s.name << " @" << i;
      ASSERT_EQ(a.event(i).item.weight, b.event(i).item.weight)
          << s.name << " @" << i;
    }
  }
}

TEST(ScenarioDeterminismTest, DifferentSeedsProduceDifferentWeights) {
  const ScenarioSpec* s = FindScenario("steady_uniform");
  ASSERT_NE(s, nullptr);
  const Workload a = BuildScenarioWorkload(*s, 1, /*quick=*/true);
  const Workload b = BuildScenarioWorkload(*s, 2, /*quick=*/true);
  uint64_t equal = 0;
  for (uint64_t i = 0; i < a.size(); ++i) {
    equal += (a.event(i).item.weight == b.event(i).item.weight);
  }
  EXPECT_LT(equal, a.size() / 20);
}

TEST(ScenarioDeterminismTest, BatchesSumExactAndReplay) {
  for (const ScenarioSpec& s : ScenarioRegistry()) {
    const auto a = BuildScenarioBatches(s, s.items_quick, /*seed=*/42);
    const auto b = BuildScenarioBatches(s, s.items_quick, /*seed=*/42);
    EXPECT_EQ(a, b) << s.name;
    uint64_t total = 0;
    for (uint32_t batch : a) {
      EXPECT_GE(batch, 1u) << s.name;
      total += batch;
    }
    EXPECT_EQ(total, s.items_quick) << s.name;
  }
}

TEST(ScenarioDeterminismTest, BatchScheduleIndependentOfWeightDraws) {
  // Batches derive from a decorrelated RNG stream: two scenarios sharing
  // an arrival process produce the same schedule for the same seed even
  // though their weight generators consume different amounts of
  // randomness.
  const ScenarioSpec* steady = FindScenario("steady_uniform");
  const ScenarioSpec* churn = FindScenario("site_churn");
  ASSERT_NE(steady, nullptr);
  ASSERT_NE(churn, nullptr);
  EXPECT_EQ(BuildScenarioBatches(*steady, 600, 9),
            BuildScenarioBatches(*churn, 600, 9));
}

TEST(ScenarioDeterminismTest, ChurnMixesRunSeedPreservingSchedule) {
  const ScenarioSpec* s = FindScenario("site_churn");
  ASSERT_NE(s, nullptr);
  const FaultConfig a = ScenarioChurn(*s, 42);
  const FaultConfig b = ScenarioChurn(*s, 42);
  const FaultConfig c = ScenarioChurn(*s, 43);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_NE(a.seed, c.seed);
  EXPECT_NE(a.seed, 42u);  // mixed, not passed through
  EXPECT_EQ(a.crash_prob, s->churn.crash_prob);
  EXPECT_EQ(a.crash_down_items, s->churn.crash_down_items);
  EXPECT_EQ(a.drop_prob, 0.0);
}

// ---------------------------------------------------------------------
// Dynamics units: hot-key drift.

TEST(HotKeyDriftTest, HotWindowMatchesWeights) {
  HotKeyDriftWeights gen(std::make_unique<ConstantWeights>(1.0),
                         /*period=*/8, /*hot_count=*/2,
                         /*heavy_weight=*/50.0, /*rotate_every=*/16);
  Rng rng(3);
  for (uint64_t i = 0; i < 200; ++i) {
    const double w = gen.WeightAt(i, rng);
    EXPECT_DOUBLE_EQ(w, gen.IsHot(i) ? 50.0 : 1.0) << " at " << i;
  }
}

TEST(HotKeyDriftTest, HotFractionIsHotCountOverPeriod) {
  HotKeyDriftWeights gen(std::make_unique<ConstantWeights>(1.0),
                         /*period=*/8, /*hot_count=*/2,
                         /*heavy_weight=*/50.0, /*rotate_every=*/16);
  for (uint64_t phase = 0; phase < 10; ++phase) {
    uint64_t hot = 0;
    for (uint64_t i = phase * 16; i < (phase + 1) * 16; ++i) {
      hot += gen.IsHot(i);
    }
    EXPECT_EQ(hot, 4u) << " phase " << phase;  // 2 of every 8 positions
  }
}

TEST(HotKeyDriftTest, HotResiduesRotateEveryPhase) {
  HotKeyDriftWeights gen(std::make_unique<ConstantWeights>(1.0),
                         /*period=*/8, /*hot_count=*/2,
                         /*heavy_weight=*/50.0, /*rotate_every=*/64);
  std::set<uint64_t> offsets;
  for (uint64_t phase = 0; phase < 8; ++phase) {
    const uint64_t offset = gen.HotOffset(phase);
    EXPECT_LT(offset, 8u);
    offsets.insert(offset);
    EXPECT_NE(offset, gen.HotOffset(phase + 1)) << " phase " << phase;
  }
  // The odd stride is coprime with the power-of-two period, so eight
  // phases visit all eight residue classes.
  EXPECT_EQ(offsets.size(), 8u);
}

TEST(HotKeyDriftTest, ColdWeightsIndependentOfRotationSchedule) {
  // The base generator draws for hot positions too, so the cold weights
  // must be identical across different rotation parameters.
  HotKeyDriftWeights a(std::make_unique<UniformWeights>(1.0, 4.0),
                       /*period=*/8, /*hot_count=*/2, 50.0,
                       /*rotate_every=*/16);
  HotKeyDriftWeights b(std::make_unique<UniformWeights>(1.0, 4.0),
                       /*period=*/8, /*hot_count=*/4, 50.0,
                       /*rotate_every=*/32);
  Rng rng_a(7);
  Rng rng_b(7);
  for (uint64_t i = 0; i < 300; ++i) {
    const double wa = a.WeightAt(i, rng_a);
    const double wb = b.WeightAt(i, rng_b);
    if (!a.IsHot(i) && !b.IsHot(i)) {
      EXPECT_DOUBLE_EQ(wa, wb) << " at " << i;
    }
  }
}

// ---------------------------------------------------------------------
// Dynamics units: Zipf sweep.

TEST(ZipfSweepTest, YcsbScheduleAndPhaseBoundaries) {
  const std::vector<double> expected = {0.5, 0.7, 0.9, 0.99};
  EXPECT_EQ(ZipfSweepWeights::YcsbThetas(), expected);
  ZipfSweepWeights gen(100, ZipfSweepWeights::YcsbThetas(),
                       /*phase_len=*/10);
  EXPECT_DOUBLE_EQ(gen.ThetaAt(0), 0.5);
  EXPECT_DOUBLE_EQ(gen.ThetaAt(9), 0.5);
  EXPECT_DOUBLE_EQ(gen.ThetaAt(10), 0.7);
  EXPECT_DOUBLE_EQ(gen.ThetaAt(29), 0.9);
  EXPECT_DOUBLE_EQ(gen.ThetaAt(39), 0.99);
  EXPECT_DOUBLE_EQ(gen.ThetaAt(40), 0.5);  // schedule cycles
}

TEST(ZipfSweepTest, WeightsAtLeastOneAndSkewGrowsWithTheta) {
  ZipfSweepWeights gen(1000, ZipfSweepWeights::YcsbThetas(),
                       /*phase_len=*/4000);
  Rng rng(11);
  double sum_first = 0.0, sum_last = 0.0;
  // The scaled minimum weight n^theta * n^-theta is 1 up to one ulp of
  // pow(), hence the epsilon.
  for (uint64_t i = 0; i < 4000; ++i) {
    const double w = gen.WeightAt(i, rng);
    EXPECT_GE(w, 1.0 - 1e-9);
    sum_first += w;
  }
  for (uint64_t i = 12000; i < 16000; ++i) {
    const double w = gen.WeightAt(i, rng);
    EXPECT_GE(w, 1.0 - 1e-9);
    sum_last += w;
  }
  // theta=0.99 concentrates mass on low ranks, whose weights are scaled
  // to n^theta — the skewed phase carries much more total weight.
  EXPECT_GT(sum_last, 2.0 * sum_first);
}

// ---------------------------------------------------------------------
// Dynamics units: arrival processes.

TEST(ArrivalsTest, DiurnalOscillatesAroundMeanDeterministically) {
  DiurnalArrivals proc(/*mean=*/8.0, /*amplitude=*/0.75, /*period=*/50);
  Rng rng(1);
  uint64_t lo = ~0ull, hi = 0, total = 0;
  for (uint64_t step = 0; step < 100; ++step) {
    const uint64_t b = proc.BatchAt(step, rng);
    EXPECT_GE(b, 1u);
    lo = std::min(lo, b);
    hi = std::max(hi, b);
    total += b;
    EXPECT_EQ(b, proc.BatchAt(step, rng));  // deterministic, re-entrant
  }
  EXPECT_EQ(proc.BatchAt(0, rng), 8u);  // sin(0) = 0 -> the mean
  EXPECT_LE(lo, 3u);                    // night trough: 8 * 0.25 = 2
  EXPECT_GE(hi, 13u);                   // day peak: 8 * 1.75 = 14
  EXPECT_NEAR(static_cast<double>(total) / 100.0, 8.0, 1.0);
}

TEST(ArrivalsTest, BurstyEmitsFullBurstsAtBurstRate) {
  BurstyArrivals proc(/*base=*/2, /*burst=*/32, /*burst_prob=*/0.05,
                      /*burst_len=*/5);
  Rng rng(4);
  std::vector<uint64_t> sizes;
  for (uint64_t step = 0; step < 4000; ++step) {
    sizes.push_back(proc.BatchAt(step, rng));
  }
  uint64_t bursts = 0;
  for (size_t i = 0; i < sizes.size(); ++i) {
    ASSERT_TRUE(sizes[i] == 2 || sizes[i] == 32) << " at " << i;
    if (sizes[i] == 32 && (i == 0 || sizes[i - 1] == 2)) {
      ++bursts;
      // A burst runs for exactly burst_len steps (unless truncated by
      // the horizon) before the process may fall idle again.
      for (size_t j = i; j < std::min(i + 5, sizes.size()); ++j) {
        EXPECT_EQ(sizes[j], 32u) << " burst at " << i << " step " << j;
      }
    }
  }
  // ~0.05 entry probability per idle step: far more than a handful of
  // bursts in 4000 steps, with plenty of idle stretches left.
  EXPECT_GT(bursts, 10u);
  EXPECT_LT(bursts, 400u);
}

TEST(ArrivalsDeathTest, BurstyEnforcesSequentialUse) {
  BurstyArrivals proc(2, 32, 0.05, 5);
  Rng rng(5);
  proc.BatchAt(0, rng);
  EXPECT_DEATH(proc.BatchAt(2, rng), "sequential");
}

TEST(ArrivalsTest, MaterializeBatchesTruncatesFinalBatch) {
  DiurnalArrivals proc(8.0, 0.75, 50);
  Rng rng(6);
  const auto batches = MaterializeBatches(proc, /*total_items=*/1003, rng);
  uint64_t total = 0;
  for (uint32_t b : batches) {
    EXPECT_GE(b, 1u);
    total += b;
  }
  EXPECT_EQ(total, 1003u);
}

// ---------------------------------------------------------------------
// Dynamics units: skewed site ownership.

TEST(SkewedSitePartitionerTest, ProbabilitiesAreNormalizedZipf) {
  const auto probs = SkewedSitePartitioner::SiteProbabilities(8, 1.0);
  ASSERT_EQ(probs.size(), 8u);
  double total = 0.0;
  for (size_t i = 0; i + 1 < probs.size(); ++i) {
    EXPECT_GT(probs[i], probs[i + 1]);  // site 0 is hottest
  }
  for (double p : probs) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
  // p_0 = 1 / H_8 with H_8 = 2.717857142857... (the ~37% hot share).
  EXPECT_NEAR(probs[0], 0.36793692509855453, 1e-12);
  EXPECT_NEAR(probs[7], probs[0] / 8.0, 1e-12);
}

TEST(SkewedSitePartitionerTest, OwnershipFractionsMatchChiSquare) {
  SkewedSitePartitioner p(1.0);
  Rng rng(21);
  std::vector<uint64_t> counts(8, 0);
  const uint64_t draws = 20000;
  for (uint64_t i = 0; i < draws; ++i) {
    const int site = p.SiteFor(i, 8, rng);
    ASSERT_GE(site, 0);
    ASSERT_LT(site, 8);
    ++counts[static_cast<size_t>(site)];
  }
  const auto result = ChiSquareAgainstProbabilities(
      counts, SkewedSitePartitioner::SiteProbabilities(8, 1.0), draws);
  EXPECT_GT(result.p_value, 1e-3) << "chi2=" << result.statistic;
}

TEST(SkewedSitePartitionerDeathTest, RejectsVaryingSiteCount) {
  SkewedSitePartitioner p(1.0);
  Rng rng(22);
  p.SiteFor(0, 8, rng);
  EXPECT_DEATH(p.SiteFor(1, 4, rng), "varying k");
}

// ---------------------------------------------------------------------
// Sim <-> engine bit-identity: every scenario, through the paced feeder.

bool SameKeyedSample(const std::vector<KeyedItem>& a,
                     const std::vector<KeyedItem>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].item.id != b[i].item.id || a[i].key != b[i].key) return false;
  }
  return true;
}

TEST(ScenarioEngineTest, EveryScenarioReplaysBitIdenticallyOnEngine) {
  for (const ScenarioSpec& s : ScenarioRegistry()) {
    const uint64_t seed = 1234;
    const Workload w = BuildScenarioWorkload(s, seed, /*quick=*/true);
    const auto batches = BuildScenarioBatches(s, w.size(), seed);

    WsworConfig config;
    config.num_sites = s.num_sites;
    config.sample_size = 8;
    config.seed = seed;
    DistributedWswor sim_sampler(config);
    sim_sampler.Run(w);

    engine::EngineConfig engine_config;
    engine_config.num_sites = s.num_sites;
    engine_config.step_synchronous = true;
    engine::Engine eng(engine_config);
    // The facade's exact seed derivation: one master draw per site in
    // index order, then the coordinator's.
    Rng master(config.seed);
    std::vector<std::unique_ptr<WsworSite>> sites;
    for (int i = 0; i < config.num_sites; ++i) {
      sites.push_back(std::make_unique<WsworSite>(config, i, &eng.transport(),
                                                  master.NextU64()));
      eng.AttachSite(i, sites.back().get());
    }
    WsworCoordinator coordinator(config, &eng.transport(), master.NextU64());
    eng.AttachCoordinator(&coordinator);
    eng.RunPaced(w, batches);

    EXPECT_TRUE(SameKeyedSample(sim_sampler.Sample(), coordinator.Sample()))
        << s.name;
    const sim::MessageStats sim_stats = sim_sampler.stats();
    const sim::MessageStats eng_stats = eng.stats().MessageSnapshot();
    EXPECT_EQ(sim_stats.site_to_coord, eng_stats.site_to_coord) << s.name;
    EXPECT_EQ(sim_stats.coord_to_site, eng_stats.coord_to_site) << s.name;
    EXPECT_EQ(sim_stats.words, eng_stats.words) << s.name;
    eng.Shutdown();
  }
}

TEST(ScenarioEngineTest, PacedRunMatchesPlainRunStepSynchronously) {
  // With step_synchronous the arrival pacing must change nothing
  // observable: RunPaced under the bursty schedule equals plain Run.
  const ScenarioSpec* s = FindScenario("bursty_hotsite");
  ASSERT_NE(s, nullptr);
  const Workload w = BuildScenarioWorkload(*s, 77, /*quick=*/true);
  const auto batches = BuildScenarioBatches(*s, w.size(), 77);

  WsworConfig config;
  config.num_sites = s->num_sites;
  config.sample_size = 8;
  config.seed = 77;

  auto run = [&](bool paced) {
    engine::EngineConfig engine_config;
    engine_config.num_sites = s->num_sites;
    engine_config.step_synchronous = true;
    engine::Engine eng(engine_config);
    Rng master(config.seed);
    std::vector<std::unique_ptr<WsworSite>> sites;
    for (int i = 0; i < config.num_sites; ++i) {
      sites.push_back(std::make_unique<WsworSite>(
          config, i, &eng.transport(), master.NextU64()));
      eng.AttachSite(i, sites.back().get());
    }
    WsworCoordinator coordinator(config, &eng.transport(), master.NextU64());
    eng.AttachCoordinator(&coordinator);
    if (paced) {
      eng.RunPaced(w, batches);
    } else {
      eng.Run(w);
    }
    auto sample = coordinator.Sample();
    eng.Shutdown();
    return sample;
  };
  EXPECT_TRUE(SameKeyedSample(run(/*paced=*/true), run(/*paced=*/false)));
}

TEST(ScenarioEngineTest, ChurnScenarioTranscriptIdenticalAcrossBackends) {
  const ScenarioSpec* s = FindScenario("site_churn");
  ASSERT_NE(s, nullptr);
  const uint64_t seed = 31;
  const Workload w = BuildScenarioWorkload(*s, seed, /*quick=*/true);
  const FaultConfig churn = ScenarioChurn(*s, seed);
  WsworConfig config;
  config.num_sites = s->num_sites;
  config.sample_size = 8;
  config.seed = seed;

  FaultyWswor sim_run(config, churn, Backend::kSim);
  sim_run.Run(w);
  FaultyWswor eng_run(config, churn, Backend::kEngine);
  eng_run.Run(w);

  const RunReport a = sim_run.report();
  const RunReport b = eng_run.report();
  EXPECT_EQ(a.transcript_hash, b.transcript_hash);
  EXPECT_EQ(a.faults_forwarded, b.faults_forwarded);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.clean, b.clean);
  EXPECT_EQ(sim_run.SampleIds(), eng_run.SampleIds());
}

// ---------------------------------------------------------------------
// Chi-square exactness of merged samples under drift and churn,
// S in {1, 4} coordinator shards.

// A 12-item hot-key-drift stream small enough for the exact SWOR set
// distribution: period 4, one hot residue, rotating every 6 items.
Workload DriftWorkload(int num_sites, uint64_t seed) {
  auto drift = std::make_unique<HotKeyDriftWeights>(
      std::make_unique<UniformWeights>(1.0, 3.0), /*period=*/4,
      /*hot_count=*/1, /*heavy_weight=*/20.0, /*rotate_every=*/6);
  return WorkloadBuilder()
      .num_sites(num_sites)
      .num_items(12)
      .seed(seed)
      .weights(std::move(drift))
      .partitioner(std::make_unique<RoundRobinPartitioner>())
      .Build();
}

TEST(ScenarioMergedSampleTest, DriftExactAtOneAndFourShards) {
  const Workload w = DriftWorkload(/*num_sites=*/4, /*seed=*/19);
  std::vector<double> weights;
  for (const auto& e : w.events()) weights.push_back(e.item.weight);
  const int s = 2;
  for (int num_shards : {1, 4}) {
    const std::vector<FaultConfig> no_faults(
        static_cast<size_t>(num_shards));
    const auto result = testing::SworSetGoodnessOfFit(
        weights, s, 4000, [&](int t) {
          WsworConfig config;
          config.num_sites = 4;
          config.sample_size = s;
          config.seed = 400000 + static_cast<uint64_t>(t);
          ShardedFaultyWswor run(config, no_faults, Backend::kSim);
          run.Run(w);
          EXPECT_TRUE(run.report().clean) << " trial " << t;
          return run.MergedSampleIds();
        });
    EXPECT_GT(result.p_value, 1e-4)
        << "S=" << num_shards << " chi2=" << result.statistic;
  }
}

TEST(ScenarioMergedSampleTest, ChurnExactOverSurvivorsAtOneAndFourShards) {
  const Workload w = DriftWorkload(/*num_sites=*/4, /*seed=*/23);
  std::vector<double> weights;
  for (const auto& e : w.events()) weights.push_back(e.item.weight);
  const int s = 2;
  for (int num_shards : {1, 4}) {
    // Fixed crash-only schedules (one per shard): the survivor set is a
    // pure function of (fault seeds, workload), so across protocol seeds
    // the merged sample must be an exact SWOR over exactly the union of
    // per-shard survivors.
    std::vector<FaultConfig> shard_faults(static_cast<size_t>(num_shards));
    for (int j = 0; j < num_shards; ++j) {
      auto& fc = shard_faults[static_cast<size_t>(j)];
      fc.seed = 51 + static_cast<uint64_t>(j);
      fc.crash_prob = 0.12;
      fc.crash_down_items = 2;
    }
    const ShardTopology topology(4, num_shards);
    const std::vector<Workload> splits = SplitByShard(w, topology);
    std::map<uint64_t, uint64_t> survivor_index;
    std::vector<double> survivor_weights;
    for (int j = 0; j < num_shards; ++j) {
      const FaultSchedule schedule(shard_faults[static_cast<size_t>(j)]);
      for (uint64_t id : faults::SurvivingItemIds(
               splits[static_cast<size_t>(j)], schedule)) {
        survivor_index[id] = survivor_weights.size();
        survivor_weights.push_back(weights[id]);
      }
    }
    ASSERT_LT(survivor_weights.size(), weights.size())
        << "S=" << num_shards << ": schedule crashed nothing";
    ASSERT_GE(survivor_weights.size(), 4u) << "S=" << num_shards;

    uint64_t crashes_seen = 0;
    const auto result = testing::SworSetGoodnessOfFit(
        survivor_weights, s, 4000, [&](int t) {
          WsworConfig config;
          config.num_sites = 4;
          config.sample_size = s;
          config.seed = 500000 + static_cast<uint64_t>(t);
          ShardedFaultyWswor run(config, shard_faults, Backend::kSim);
          run.Run(w);
          const RunReport report = run.report();
          EXPECT_TRUE(report.clean) << " trial " << t;
          crashes_seen += report.crashes;
          std::vector<uint64_t> remapped;
          for (uint64_t id : run.MergedSampleIds()) {
            auto it = survivor_index.find(id);
            // Sampling a crashed-away item would be a silent wrong
            // answer — the failure mode the churn scenarios gate.
            EXPECT_TRUE(it != survivor_index.end())
                << " sampled lost item " << id << " trial " << t;
            remapped.push_back(it->second);
          }
          return remapped;
        });
    EXPECT_GT(crashes_seen, 0u) << "S=" << num_shards;
    EXPECT_GT(result.p_value, 1e-4)
        << "S=" << num_shards << " chi2=" << result.statistic;
  }
}

// ---------------------------------------------------------------------
// 25-seed churn sweep with message loss: degraded runs are flagged,
// never silently wrong.

TEST(ScenarioChurnSweepTest, DegradedRunsFlaggedNeverSilentlyWrong) {
  const ScenarioSpec* spec = FindScenario("site_churn");
  ASSERT_NE(spec, nullptr);
  const Workload w = BuildScenarioWorkload(*spec, /*seed=*/8, /*quick=*/true);
  int clean_runs = 0, degraded_runs = 0;
  for (uint64_t sweep_seed = 0; sweep_seed < 25; ++sweep_seed) {
    // The scenario's churn schedule, intensified with message loss so a
    // crash can wipe in-flight state. A third of the seeds crash sites
    // (boosted above the scenario's rarity — with ~15% drop a crash
    // almost always wipes something); the rest are crash-free, so the
    // sweep covers clean and detectably-degraded outcomes.
    FaultConfig fc = ScenarioChurn(*spec, sweep_seed);
    fc.crash_prob = (sweep_seed % 3 == 0) ? 0.01 : 0.0;
    fc.drop_prob = 0.15;
    fc.delay_prob = 0.10;

    WsworConfig config;
    config.num_sites = spec->num_sites;
    config.sample_size = 8;
    config.seed = 700 + sweep_seed;
    FaultyWswor run(config, fc, Backend::kSim);
    run.Run(w);
    const RunReport report = run.report();

    // Never silently wrong: the sample may not contain an item only a
    // dead site saw, whether or not the run degraded.
    const FaultSchedule schedule(fc);
    const std::vector<uint64_t> survivors =
        faults::SurvivingItemIds(w, schedule);
    const std::set<uint64_t> survivor_set(survivors.begin(),
                                          survivors.end());
    for (uint64_t id : run.SampleIds()) {
      EXPECT_TRUE(survivor_set.count(id) != 0)
          << " sampled crashed-away item " << id << " at sweep seed "
          << sweep_seed;
    }

    if (report.clean) {
      ++clean_runs;
    } else {
      ++degraded_runs;
      // Degradation is always attributable to counted loss.
      EXPECT_GT(report.lost_unacked, 0u) << " sweep seed " << sweep_seed;
      EXPECT_GT(report.crashes, 0u) << " sweep seed " << sweep_seed;
    }
  }
  // The sweep must exercise both outcomes to have teeth.
  EXPECT_GT(clean_runs, 0);
  EXPECT_GT(degraded_runs, 0);
}

}  // namespace
}  // namespace dwrs
