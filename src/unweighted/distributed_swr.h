// Distributed sampling WITH replacement as s independent single-sample
// "races" (Theorem 1, [14]): per race every item receives an independent
// Uniform(0,1) key — or, for weight w, the MIN of w iid uniforms, which
// realizes the duplication reduction of Corollary 1 without materializing
// duplicates — and the coordinator keeps the key-minimizing item of each
// race. Sites batch the s races into one Binomial draw per item (the
// speedup described in the proof of Corollary 1).
//
// With unit weights this is exactly the unweighted SWR of [14]; the
// weighted facade lives in swr/distributed_weighted_swr.h.

#ifndef DWRS_UNWEIGHTED_DISTRIBUTED_SWR_H_
#define DWRS_UNWEIGHTED_DISTRIBUTED_SWR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "random/rng.h"
#include "sim/runtime.h"
#include "stream/workload.h"

namespace dwrs {

enum SwrMessageType : uint32_t {
  kSwrCandidate = 1,  // site -> coord: (race index, id, weight, key)
  kSwrThreshold = 2,  // coord -> all sites: (tau_hat)
};

struct SlottedSwrConfig {
  int num_sites = 4;
  int sample_size = 16;  // number of independent races s
  uint64_t seed = 1;
  // Threshold shrink base; 0 selects 2 + k/s (Theorem 1's log(2+k/s)).
  double round_base = 0.0;
  int delivery_delay = 0;
  // When false, item weights are ignored (unweighted SWR).
  bool weighted = true;

  double ResolvedRoundBase() const;
};

class SlottedSwrSite : public sim::SiteNode {
 public:
  SlottedSwrSite(const SlottedSwrConfig& config, int site_index,
                 sim::Transport* transport, uint64_t seed);

  void OnItem(const Item& item) override;
  void OnItems(const Item* items, size_t n) override;
  void OnMessage(const sim::Payload& msg) override;

 private:
  const SlottedSwrConfig config_;
  int site_index_;
  sim::Transport* transport_;
  Rng rng_;
  double tau_hat_ = 1.0;
  std::vector<uint64_t> races_;  // reused scratch: zero-alloc hot path
};

class SlottedSwrCoordinator : public sim::CoordinatorNode {
 public:
  SlottedSwrCoordinator(const SlottedSwrConfig& config, sim::Transport* transport);

  void OnMessage(int site, const sim::Payload& msg) override;

  // Mergeable shard summary: one slot per race holding the shard's
  // current race minimum; merging takes the slot-wise minimum, which is
  // exactly the global per-race winner (min of mins). Stamped with
  // StateVersion().
  MergeableSample ShardSample() const override;

  uint64_t StateVersion() const override { return state_version_; }

  // One item per race; empty until the first item arrives.
  std::vector<Item> Sample() const;

  size_t DistinctInSample() const;

 private:
  struct Race {
    double min_key = 2.0;  // > any Uniform(0,1) key
    Item item;
    bool filled = false;
  };

  void MaybeAnnounce();

  const SlottedSwrConfig config_;
  const double base_;
  sim::Transport* transport_;
  std::vector<Race> races_;
  double tau_hat_ = 1.0;
  uint64_t state_version_ = 0;
};

// Facade running the s races over the simulated network.
class DistributedSwr {
 public:
  explicit DistributedSwr(const SlottedSwrConfig& config);

  void Observe(int site, const Item& item);
  void Run(const Workload& workload,
           const std::function<void(uint64_t)>& on_step = nullptr);

  std::vector<Item> Sample() const { return coordinator_->Sample(); }
  size_t DistinctInSample() const { return coordinator_->DistinctInSample(); }
  const sim::MessageStats& stats() const { return runtime_.stats(); }

 private:
  SlottedSwrConfig config_;
  sim::Runtime runtime_;
  std::vector<std::unique_ptr<SlottedSwrSite>> sites_;
  std::unique_ptr<SlottedSwrCoordinator> coordinator_;
};

}  // namespace dwrs

#endif  // DWRS_UNWEIGHTED_DISTRIBUTED_SWR_H_
