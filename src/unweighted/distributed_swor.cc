#include "unweighted/distributed_swor.h"

#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/math_util.h"

namespace dwrs {

double UsworConfig::ResolvedEpochBase() const {
  if (epoch_base > 0.0) {
    DWRS_CHECK_GE(epoch_base, 2.0);
    return epoch_base;
  }
  return EpochBase(num_sites, sample_size);
}

UsworSite::UsworSite(const UsworConfig& config, int site_index,
                     sim::Transport* transport, uint64_t seed)
    : site_index_(site_index), transport_(transport), rng_(seed) {
  DWRS_CHECK(site_index >= 0 && site_index < config.num_sites);
  DWRS_CHECK(transport != nullptr);
}

void UsworSite::OnItem(const Item& item) { OnItems(&item, 1); }

void UsworSite::OnItems(const Item* items, size_t n) {
  // A uniform key lands below tau_hat iff Exp(1) < -log(1 - tau_hat), so
  // the per-item coin is run through the geometric-skip filter: the gap
  // between sends is Geometric(tau_hat) and the items in between cost no
  // RNG work. On a hit, mapping the conditioned exponential through
  // 1 - e^{-t} recovers the key's conditional law Uniform(0, tau_hat).
  const double tau = tau_hat_;
  const double hazard = hazard_;
  for (size_t i = 0; i < n; ++i) {
    if (!filter_.Admit(rng_, hazard)) continue;
    double key = -std::expm1(-filter_.value());
    if (key >= tau) key = std::nextafter(tau, 0.0);  // fp agreement guard
    if (key <= 0.0) key = std::numeric_limits<double>::min();
    sim::Payload msg;
    msg.type = kUsworCandidate;
    msg.a = items[i].id;
    msg.x = items[i].weight;  // carried through for interface parity
    msg.y = key;
    msg.words = 3;
    transport_->SendToCoordinator(site_index_, msg);
  }
}

void UsworSite::OnMessage(const sim::Payload& msg) {
  DWRS_CHECK_EQ(msg.type, static_cast<uint32_t>(kUsworThreshold));
  // Thresholds only shrink; ignore stale announcements.
  if (msg.x < tau_hat_) {
    tau_hat_ = msg.x;
    hazard_ = msg.x < 1.0 ? -std::log1p(-msg.x)
                          : std::numeric_limits<double>::infinity();
  }
}

UsworCoordinator::UsworCoordinator(const UsworConfig& config,
                                   sim::Transport* transport)
    : config_(config),
      base_(config.ResolvedEpochBase()),
      transport_(transport),
      smallest_(static_cast<size_t>(config.sample_size)) {
  DWRS_CHECK(transport != nullptr);
}

void UsworCoordinator::OnMessage(int /*site*/, const sim::Payload& msg) {
  DWRS_CHECK_EQ(msg.type, static_cast<uint32_t>(kUsworCandidate));
  ++state_version_;
  // Keep the s smallest uniform keys by storing negated keys in the
  // top-key (max side) heap.
  smallest_.Offer(-msg.y, Item{msg.a, msg.x});
  if (!smallest_.full()) return;
  const double tau = -smallest_.MinKey();  // s-th smallest key
  // Announce the next power r^-j with r^-j >= tau when it shrank below
  // the previous announcement by at least a factor of r.
  if (tau >= tau_hat_ / base_) return;
  const int j = FloorLogBase(1.0 / tau, base_);
  const double next = 1.0 / PowInt(base_, j);
  DWRS_CHECK_GE(next, tau);
  if (next >= tau_hat_) return;
  tau_hat_ = next;
  sim::Payload out;
  out.type = kUsworThreshold;
  out.x = tau_hat_;
  out.words = 2;
  transport_->Broadcast(out);
}

std::vector<sim::Payload> UsworCoordinator::ResyncMessages() const {
  std::vector<sim::Payload> out;
  if (tau_hat_ < 1.0) {
    sim::Payload msg;
    msg.type = kUsworThreshold;
    msg.x = tau_hat_;
    msg.words = 2;
    out.push_back(msg);
  }
  return out;
}

std::vector<Item> UsworCoordinator::Sample() const {
  std::vector<Item> out;
  for (const auto& e : smallest_.SortedDescending()) out.push_back(e.value);
  return out;
}

MergeableSample UsworCoordinator::ShardSample() const {
  MergeableSample out;
  out.kind = SampleKind::kTopKey;
  out.target_size = static_cast<size_t>(config_.sample_size);
  out.state_version = state_version_;
  out.entries.reserve(smallest_.size());
  // Stored keys are already negated uniforms; exporting them unchanged
  // makes the max-order merge a min-key merge on the true keys.
  for (const auto& e : smallest_.entries()) {
    out.entries.push_back(KeyedItem{e.value, e.key});
  }
  return out;
}

std::vector<Item> UsworSampleFromMerged(const MergeableSample& merged) {
  std::vector<Item> out;
  // TopEntries sorts stored (negated) keys descending = true keys
  // ascending, matching UsworCoordinator::Sample's order.
  for (const KeyedItem& ki : merged.TopEntries()) out.push_back(ki.item);
  return out;
}

DistributedUnweightedSwor::DistributedUnweightedSwor(const UsworConfig& config)
    : config_(config), runtime_(config.num_sites, config.delivery_delay) {
  Rng master(config.seed);
  for (int i = 0; i < config.num_sites; ++i) {
    sites_.push_back(std::make_unique<UsworSite>(config_, i,
                                                 &runtime_.network(),
                                                 master.NextU64()));
    runtime_.AttachSite(i, sites_.back().get());
  }
  coordinator_ =
      std::make_unique<UsworCoordinator>(config_, &runtime_.network());
  runtime_.AttachCoordinator(coordinator_.get());
}

void DistributedUnweightedSwor::Observe(int site, const Item& item) {
  runtime_.Deliver(WorkloadEvent{site, item});
}

void DistributedUnweightedSwor::Run(
    const Workload& workload, const std::function<void(uint64_t)>& on_step) {
  for (uint64_t i = 0; i < workload.size(); ++i) {
    Observe(workload.event(i).site, workload.event(i).item);
    if (on_step) on_step(i + 1);
  }
}

}  // namespace dwrs
