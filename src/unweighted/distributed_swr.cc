#include "unweighted/distributed_swr.h"

#include <algorithm>
#include <unordered_set>

#include "random/distributions.h"
#include "util/check.h"
#include "util/math_util.h"

namespace dwrs {

double SlottedSwrConfig::ResolvedRoundBase() const {
  if (round_base > 0.0) {
    DWRS_CHECK_GE(round_base, 2.0);
    return round_base;
  }
  return 2.0 + static_cast<double>(num_sites) / sample_size;
}

SlottedSwrSite::SlottedSwrSite(const SlottedSwrConfig& config, int site_index,
                               sim::Transport* transport, uint64_t seed)
    : config_(config), site_index_(site_index), transport_(transport), rng_(seed) {
  DWRS_CHECK(transport != nullptr);
}

void SlottedSwrSite::OnItem(const Item& item) { OnItems(&item, 1); }

void SlottedSwrSite::OnItems(const Item* items, size_t n) {
  const bool weighted = config_.weighted;
  const double tau = tau_hat_;
  const uint64_t s = static_cast<uint64_t>(config_.sample_size);
  for (size_t idx = 0; idx < n; ++idx) {
    const Item& item = items[idx];
    const double w = weighted ? item.weight : 1.0;
    DWRS_CHECK_GE(w, 1.0);
    // Number of races whose key (min of w uniforms) lands below the
    // filter: one Binomial draw replaces s independent Bernoulli(alpha)
    // flips.
    const double alpha = MinUniformBelowProb(w, tau);
    const uint64_t hits = Binomial(rng_, s, alpha);
    if (hits == 0) continue;
    // Choose which races fired: a uniform random subset of size `hits`
    // (partial Fisher-Yates over race indices, in the reused scratch
    // buffer — no allocation on the hot path).
    races_.resize(s);
    for (uint64_t i = 0; i < s; ++i) races_[i] = i;
    for (uint64_t i = 0; i < hits; ++i) {
      const uint64_t j = i + rng_.NextBounded(s - i);
      std::swap(races_[i], races_[j]);
      // Conditional key below the filter.
      const double key = TruncatedMinUniform(rng_, w, tau);
      sim::Payload msg;
      msg.type = kSwrCandidate;
      msg.a = (races_[i] << 40) | (item.id & ((1ull << 40) - 1));
      msg.x = item.weight;
      msg.y = key;
      msg.words = 4;
      transport_->SendToCoordinator(site_index_, msg);
    }
  }
}

void SlottedSwrSite::OnMessage(const sim::Payload& msg) {
  DWRS_CHECK_EQ(msg.type, static_cast<uint32_t>(kSwrThreshold));
  if (msg.x < tau_hat_) tau_hat_ = msg.x;
}

SlottedSwrCoordinator::SlottedSwrCoordinator(const SlottedSwrConfig& config,
                                             sim::Transport* transport)
    : config_(config),
      base_(config.ResolvedRoundBase()),
      transport_(transport),
      races_(static_cast<size_t>(config.sample_size)) {
  DWRS_CHECK(transport != nullptr);
}

void SlottedSwrCoordinator::MaybeAnnounce() {
  // The filter must stay >= every race's current minimum so that no
  // potential winner is dropped at a site.
  double max_min = 0.0;
  for (const Race& race : races_) {
    if (!race.filled) return;  // cannot lower the filter yet
    max_min = std::max(max_min, race.min_key);
  }
  if (max_min >= tau_hat_ / base_) return;
  const int j = FloorLogBase(1.0 / max_min, base_);
  const double next = 1.0 / PowInt(base_, j);
  DWRS_CHECK_GE(next, max_min);
  if (next >= tau_hat_) return;
  tau_hat_ = next;
  sim::Payload out;
  out.type = kSwrThreshold;
  out.x = tau_hat_;
  out.words = 2;
  transport_->Broadcast(out);
}

void SlottedSwrCoordinator::OnMessage(int /*site*/, const sim::Payload& msg) {
  DWRS_CHECK_EQ(msg.type, static_cast<uint32_t>(kSwrCandidate));
  ++state_version_;
  const uint64_t race_index = msg.a >> 40;
  const uint64_t id = msg.a & ((1ull << 40) - 1);
  DWRS_CHECK_LT(race_index, races_.size());
  Race& race = races_[race_index];
  if (msg.y < race.min_key) {
    race.min_key = msg.y;
    race.item = Item{id, msg.x};
    race.filled = true;
    MaybeAnnounce();
  }
}

MergeableSample SlottedSwrCoordinator::ShardSample() const {
  MergeableSample out;
  out.kind = SampleKind::kSlotMin;
  out.target_size = races_.size();
  out.state_version = state_version_;
  out.slots.resize(races_.size());
  for (size_t i = 0; i < races_.size(); ++i) {
    const Race& race = races_[i];
    if (!race.filled) continue;
    out.slots[i] = MergeableSample::Slot{true, race.min_key, race.item};
  }
  return out;
}

std::vector<Item> SlottedSwrCoordinator::Sample() const {
  std::vector<Item> out;
  for (const Race& race : races_) {
    if (race.filled) out.push_back(race.item);
  }
  return out;
}

size_t SlottedSwrCoordinator::DistinctInSample() const {
  std::unordered_set<uint64_t> ids;
  for (const Item& item : Sample()) ids.insert(item.id);
  return ids.size();
}

DistributedSwr::DistributedSwr(const SlottedSwrConfig& config)
    : config_(config), runtime_(config.num_sites, config.delivery_delay) {
  Rng master(config.seed);
  for (int i = 0; i < config.num_sites; ++i) {
    sites_.push_back(std::make_unique<SlottedSwrSite>(
        config_, i, &runtime_.network(), master.NextU64()));
    runtime_.AttachSite(i, sites_.back().get());
  }
  coordinator_ =
      std::make_unique<SlottedSwrCoordinator>(config_, &runtime_.network());
  runtime_.AttachCoordinator(coordinator_.get());
}

void DistributedSwr::Observe(int site, const Item& item) {
  runtime_.Deliver(WorkloadEvent{site, item});
}

void DistributedSwr::Run(const Workload& workload,
                         const std::function<void(uint64_t)>& on_step) {
  for (uint64_t i = 0; i < workload.size(); ++i) {
    Observe(workload.event(i).site, workload.event(i).item);
    if (on_step) on_step(i + 1);
  }
}

}  // namespace dwrs
