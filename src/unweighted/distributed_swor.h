// Distributed UNWEIGHTED sampling without replacement — the classic
// algorithm of Cormode–Muthukrishnan–Yi–Zhang [14] / Tirthapura–Woodruff
// [31] / Chung–Tirthapura–Woodruff [11] in its simple key-based form:
// every item gets a Uniform(0,1) key, the coordinator keeps the s
// SMALLEST keys, and sites filter against a geometrically decreasing
// broadcast threshold. Message complexity O(k log(n/s)/log(1+k/s)).
//
// This is an independent implementation (uniform keys, min side) used as
// the substrate the paper builds on and as a cross-check of the weighted
// sampler in the all-weights-equal case.

#ifndef DWRS_UNWEIGHTED_DISTRIBUTED_SWOR_H_
#define DWRS_UNWEIGHTED_DISTRIBUTED_SWOR_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "random/geometric_skip.h"
#include "random/rng.h"
#include "sampling/top_key_heap.h"
#include "sim/runtime.h"
#include "stream/workload.h"

namespace dwrs {

enum UsworMessageType : uint32_t {
  kUsworCandidate = 1,  // site -> coord: (id, key)
  kUsworThreshold = 2,  // coord -> all sites: (tau_hat)
};

struct UsworConfig {
  int num_sites = 4;
  int sample_size = 16;
  uint64_t seed = 1;
  // Threshold shrink base; 0 selects max{2, k/s} as in the paper.
  double epoch_base = 0.0;
  int delivery_delay = 0;

  double ResolvedEpochBase() const;
};

class UsworSite : public sim::SiteNode {
 public:
  UsworSite(const UsworConfig& config, int site_index, sim::Transport* transport,
            uint64_t seed);

  void OnItem(const Item& item) override;
  void OnItems(const Item* items, size_t n) override;
  void OnMessage(const sim::Payload& msg) override;
  sim::SiteHotPathCounters HotPathCounters() const override {
    return {filter_.decisions(), filter_.bits_consumed(),
            filter_.skips_taken()};
  }

 private:
  int site_index_;
  sim::Transport* transport_;
  Rng rng_;
  GeometricSkipFilter filter_;
  double tau_hat_ = 1.0;  // announced filter; keys >= tau_hat are dropped
  // -log(1 - tau_hat): the filter hazard equivalent of "uniform key below
  // tau_hat" (P(Exp(1) < h) = tau_hat); +inf while tau_hat = 1, cached so
  // the hot loop pays no transcendental. All items share this hazard, so
  // the thinning here is literal geometric skipping.
  double hazard_ = std::numeric_limits<double>::infinity();
};

class UsworCoordinator : public sim::CoordinatorNode {
 public:
  UsworCoordinator(const UsworConfig& config, sim::Transport* transport);

  void OnMessage(int site, const sim::Payload& msg) override;

  // Mergeable shard summary. Keys are stored NEGATED (key' = -u), so the
  // max-order kTopKey merge keeps the s SMALLEST uniform keys — the
  // min-key merge this protocol needs. Extract items via
  // UsworSampleFromMerged. Stamped with StateVersion().
  MergeableSample ShardSample() const override;

  uint64_t StateVersion() const override { return state_version_; }

  // Current unweighted SWOR (size min(t, s)).
  std::vector<Item> Sample() const;

  double announced_tau() const { return tau_hat_; }

  // Resync state for a restarted site: the current threshold (if any was
  // announced). Monotone (thresholds only shrink), so safe to replay.
  std::vector<sim::Payload> ResyncMessages() const;

 private:
  const UsworConfig config_;
  const double base_;
  sim::Transport* transport_;
  // Max-heap on (1 - key) == keep the s smallest keys: store key' = -key.
  TopKeyHeap<Item> smallest_;  // keyed by -u so the heap keeps min keys
  double tau_hat_ = 1.0;
  uint64_t state_version_ = 0;
};

// Items of a merged unweighted shard summary, ascending by true uniform
// key (the order UsworCoordinator::Sample reports).
std::vector<Item> UsworSampleFromMerged(const MergeableSample& merged);

class DistributedUnweightedSwor {
 public:
  explicit DistributedUnweightedSwor(const UsworConfig& config);

  void Observe(int site, const Item& item);
  void Run(const Workload& workload,
           const std::function<void(uint64_t)>& on_step = nullptr);

  std::vector<Item> Sample() const { return coordinator_->Sample(); }
  const sim::MessageStats& stats() const { return runtime_.stats(); }

 private:
  UsworConfig config_;
  sim::Runtime runtime_;
  std::vector<std::unique_ptr<UsworSite>> sites_;
  std::unique_ptr<UsworCoordinator> coordinator_;
};

}  // namespace dwrs

#endif  // DWRS_UNWEIGHTED_DISTRIBUTED_SWOR_H_
