#include "hh/exact_hh.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace dwrs {

double ResidualWeight(const std::vector<double>& weights, uint64_t drop_top) {
  if (drop_top >= weights.size()) return 0.0;
  std::vector<double> sorted = weights;
  std::nth_element(sorted.begin(), sorted.begin() + static_cast<long>(drop_top),
                   sorted.end(), std::greater<double>());
  double residual = 0.0;
  for (size_t i = drop_top; i < sorted.size(); ++i) residual += sorted[i];
  return residual;
}

std::vector<uint64_t> ExactHeavyHitters(const std::vector<double>& weights,
                                        double eps) {
  DWRS_CHECK_GT(eps, 0.0);
  const double total =
      std::accumulate(weights.begin(), weights.end(), 0.0);
  const double threshold = eps * total;
  std::vector<uint64_t> out;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] >= threshold) out.push_back(i);
  }
  return out;
}

std::vector<uint64_t> ExactResidualHeavyHitters(
    const std::vector<double>& weights, double eps) {
  DWRS_CHECK_GT(eps, 0.0);
  const uint64_t drop = static_cast<uint64_t>(std::ceil(1.0 / eps));
  const double residual = ResidualWeight(weights, drop);
  const double threshold = eps * residual;
  std::vector<uint64_t> out;
  if (residual == 0.0) {
    // Degenerate: everything outside the top-1/eps is zero; only the
    // dropped coordinates themselves exceed any positive threshold.
    return out;
  }
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] >= threshold) out.push_back(i);
  }
  return out;
}

}  // namespace dwrs
