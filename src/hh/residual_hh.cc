#include "hh/residual_hh.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace dwrs {
namespace {

WsworConfig MakeSamplerConfig(const ResidualHhConfig& config,
                              int sample_size) {
  WsworConfig out;
  out.num_sites = config.num_sites;
  out.sample_size = sample_size;
  out.seed = config.seed;
  out.delivery_delay = config.delivery_delay;
  return out;
}

}  // namespace

int ResidualHeavyHitterTracker::RequiredSampleSize(double eps, double delta) {
  DWRS_CHECK(eps > 0.0 && eps < 1.0);
  DWRS_CHECK(delta > 0.0 && delta < 1.0);
  const double s = std::ceil(6.0 * std::log(1.0 / (eps * delta)) / eps);
  return std::max(1, static_cast<int>(s));
}

ResidualHeavyHitterTracker::ResidualHeavyHitterTracker(
    const ResidualHhConfig& config)
    : config_(config),
      sample_size_(RequiredSampleSize(config.eps, config.delta)),
      sampler_(MakeSamplerConfig(config, sample_size_)) {}

std::vector<Item> ResidualHeavyHitterTracker::HeavyHitters() const {
  std::vector<KeyedItem> sample = sampler_.Sample();
  std::sort(sample.begin(), sample.end(),
            [](const KeyedItem& a, const KeyedItem& b) {
              return a.item.weight > b.item.weight;
            });
  const size_t limit =
      static_cast<size_t>(std::ceil(2.0 / config_.eps));
  std::vector<Item> out;
  out.reserve(std::min(limit, sample.size()));
  for (size_t i = 0; i < sample.size() && i < limit; ++i) {
    out.push_back(sample[i].item);
  }
  return out;
}

double Theorem4MessageBound(int num_sites, double eps, double delta,
                            double total_weight) {
  const double k = num_sites;
  const double log_w = std::log(std::max(2.0, eps * total_weight));
  return (k / std::log(std::max(2.0, k)) +
          std::log(1.0 / (eps * delta)) / eps) *
         log_w;
}

}  // namespace dwrs
