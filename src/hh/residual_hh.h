// Continuous tracking of heavy hitters WITH RESIDUAL ERROR (Theorem 4):
// run the distributed weighted SWOR with sample size
// s = ceil(6 * ln(1/(eps*delta)) / eps) and report the top O(1/eps)
// sampled items by weight. With probability 1-delta the report contains
// every i with w_i >= eps * ||x_tail(1/eps)||_1 — a strictly stronger
// guarantee than plain L1 heavy hitters.

#ifndef DWRS_HH_RESIDUAL_HH_H_
#define DWRS_HH_RESIDUAL_HH_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/sampler.h"
#include "stream/workload.h"

namespace dwrs {

struct ResidualHhConfig {
  int num_sites = 4;
  double eps = 0.1;
  double delta = 0.1;
  uint64_t seed = 1;
  int delivery_delay = 0;
};

class ResidualHeavyHitterTracker {
 public:
  explicit ResidualHeavyHitterTracker(const ResidualHhConfig& config);

  // Theorem 4's sample size: ceil(6 ln(1/(eps*delta)) / eps).
  static int RequiredSampleSize(double eps, double delta);

  void Observe(int site, const Item& item) { sampler_.Observe(site, item); }
  void Run(const Workload& workload,
           const std::function<void(uint64_t)>& on_step = nullptr) {
    sampler_.Run(workload, on_step);
  }

  // The report: top ceil(2/eps) sampled items by weight, descending.
  std::vector<Item> HeavyHitters() const;

  const sim::MessageStats& stats() const { return sampler_.stats(); }
  const DistributedWswor& sampler() const { return sampler_; }
  int sample_size() const { return sample_size_; }

 private:
  ResidualHhConfig config_;
  int sample_size_;
  DistributedWswor sampler_;
};

// Theorem 4 bound (up to constants):
// (k/log k + log(1/(eps*delta))/eps) * log(eps*W).
double Theorem4MessageBound(int num_sites, double eps, double delta,
                            double total_weight);

}  // namespace dwrs

#endif  // DWRS_HH_RESIDUAL_HH_H_
