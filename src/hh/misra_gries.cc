#include "hh/misra_gries.h"

#include <algorithm>

#include "util/check.h"

namespace dwrs {

MisraGries::MisraGries(size_t capacity) : capacity_(capacity) {
  DWRS_CHECK_GT(capacity, 0u);
}

void MisraGries::Add(uint64_t id, double weight) {
  DWRS_CHECK_GT(weight, 0.0);
  total_weight_ += weight;
  counters_[id] += weight;
  if (counters_.size() > capacity_) CompactToCapacity();
}

void MisraGries::CompactToCapacity() {
  if (counters_.size() <= capacity_) return;
  // Subtract the (capacity+1)-st largest count from everything; at most
  // `capacity` strictly positive counters survive.
  std::vector<double> counts;
  counts.reserve(counters_.size());
  for (const auto& [id, c] : counters_) counts.push_back(c);
  const size_t drop_rank = counters_.size() - capacity_ - 1;
  std::nth_element(counts.begin(), counts.begin() + static_cast<long>(drop_rank),
                   counts.end());
  const double m = counts[drop_rank];
  decremented_ += m;
  for (auto it = counters_.begin(); it != counters_.end();) {
    it->second -= m;
    if (it->second <= 0.0) {
      it = counters_.erase(it);
    } else {
      ++it;
    }
  }
}

void MisraGries::Merge(const MisraGries& other) {
  total_weight_ += other.total_weight_;
  decremented_ += other.decremented_;
  for (const auto& [id, c] : other.counters_) counters_[id] += c;
  CompactToCapacity();
}

double MisraGries::EstimateOf(uint64_t id) const {
  auto it = counters_.find(id);
  return it == counters_.end() ? 0.0 : it->second;
}

std::vector<MisraGries::Entry> MisraGries::Entries() const {
  std::vector<Entry> out;
  out.reserve(counters_.size());
  for (const auto& [id, c] : counters_) out.push_back(Entry{id, c});
  std::sort(out.begin(), out.end(),
            [](const Entry& a, const Entry& b) { return a.count > b.count; });
  return out;
}

// ---------------------------------------------------------------------------

namespace {

enum MgMessageType : uint32_t {
  kMgEntry = 1,  // site -> coord: (id, count)
  kMgSync = 2,   // site -> coord: (entry count, local total)
};

}  // namespace

class DistributedMgHh::Site : public sim::SiteNode {
 public:
  Site(int index, size_t capacity, uint64_t sync_every, sim::Transport* transport)
      : index_(index),
        sync_every_(sync_every),
        transport_(transport),
        summary_(capacity) {
    // Guarded here (not only in DistributedMgHh) since MakeSite exposes
    // Site construction directly; 0 would wedge the OnItems chunk loop.
    DWRS_CHECK_GT(sync_every, 0u);
  }

  void OnItem(const Item& item) override { OnItems(&item, 1); }

  void OnItems(const Item* items, size_t n) override {
    // Chunk the span at sync boundaries so the summary-Add loop runs
    // branch-light; identical to the per-item path by construction.
    size_t i = 0;
    while (i < n) {
      const size_t until_sync = static_cast<size_t>(sync_every_ - since_sync_);
      const size_t chunk = std::min(n - i, until_sync);
      for (size_t j = 0; j < chunk; ++j) {
        summary_.Add(items[i + j].id, items[i + j].weight);
      }
      i += chunk;
      since_sync_ += chunk;
      if (since_sync_ >= sync_every_) {
        Ship();
        since_sync_ = 0;
      }
    }
  }

  void OnMessage(const sim::Payload& msg) override {
    DWRS_CHECK(false) << " MG sites receive no messages, got " << msg.type;
  }

 private:
  void Ship() {
    const auto entries = summary_.Entries();
    for (const auto& e : entries) {
      sim::Payload msg;
      msg.type = kMgEntry;
      msg.a = e.id;
      msg.x = e.count;
      msg.words = 3;
      transport_->SendToCoordinator(index_, msg);
    }
    sim::Payload done;
    done.type = kMgSync;
    done.a = entries.size();
    done.x = summary_.total_weight();
    done.words = 3;
    transport_->SendToCoordinator(index_, done);
  }

  int index_;
  uint64_t sync_every_;
  uint64_t since_sync_ = 0;
  sim::Transport* transport_;
  MisraGries summary_;
};

class DistributedMgHh::Coordinator : public sim::CoordinatorNode {
 public:
  explicit Coordinator(int num_sites)
      : pending_(static_cast<size_t>(num_sites)),
        summaries_(static_cast<size_t>(num_sites)),
        totals_(static_cast<size_t>(num_sites), 0.0) {}

  void OnMessage(int site, const sim::Payload& msg) override {
    const size_t idx = static_cast<size_t>(site);
    switch (msg.type) {
      case kMgEntry:
        pending_[idx].push_back(MisraGries::Entry{msg.a, msg.x});
        break;
      case kMgSync:
        DWRS_CHECK_EQ(pending_[idx].size(), static_cast<size_t>(msg.a));
        summaries_[idx] = std::move(pending_[idx]);
        pending_[idx].clear();
        totals_[idx] = msg.x;
        break;
      default:
        DWRS_CHECK(false) << " unexpected MG message " << msg.type;
    }
  }

  std::vector<Item> HeavyHitters(double eps) const {
    DWRS_CHECK_GT(eps, 0.0);
    double total = 0.0;
    std::unordered_map<uint64_t, double> merged;
    for (size_t i = 0; i < summaries_.size(); ++i) {
      total += totals_[i];
      for (const auto& e : summaries_[i]) merged[e.id] += e.count;
    }
    std::vector<Item> out;
    for (const auto& [id, count] : merged) {
      if (count >= eps * total) out.push_back(Item{id, count});
    }
    std::sort(out.begin(), out.end(), [](const Item& a, const Item& b) {
      return a.weight > b.weight;
    });
    return out;
  }

 private:
  std::vector<std::vector<MisraGries::Entry>> pending_;
  std::vector<std::vector<MisraGries::Entry>> summaries_;
  std::vector<double> totals_;
};

std::unique_ptr<sim::SiteNode> DistributedMgHh::MakeSite(
    int index, size_t capacity, uint64_t sync_every,
    sim::Transport* transport) {
  return std::make_unique<Site>(index, capacity, sync_every, transport);
}

DistributedMgHh::DistributedMgHh(int num_sites, size_t capacity,
                                 uint64_t sync_every)
    : runtime_(num_sites) {
  DWRS_CHECK_GT(sync_every, 0u);
  for (int i = 0; i < num_sites; ++i) {
    sites_.push_back(std::make_unique<Site>(i, capacity, sync_every,
                                            &runtime_.network()));
    runtime_.AttachSite(i, sites_.back().get());
  }
  coordinator_ = std::make_unique<Coordinator>(num_sites);
  runtime_.AttachCoordinator(coordinator_.get());
}

DistributedMgHh::~DistributedMgHh() = default;

void DistributedMgHh::Observe(int site, const Item& item) {
  runtime_.Deliver(WorkloadEvent{site, item});
}

void DistributedMgHh::Run(const Workload& workload,
                          const std::function<void(uint64_t)>& on_step) {
  for (uint64_t i = 0; i < workload.size(); ++i) {
    Observe(workload.event(i).site, workload.event(i).item);
    if (on_step) on_step(i + 1);
  }
}

std::vector<Item> DistributedMgHh::HeavyHitters(double eps) const {
  return coordinator_->HeavyHitters(eps);
}

}  // namespace dwrs
