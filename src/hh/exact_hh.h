// Offline oracles for the heavy-hitter definitions of Section 4: exact
// epsilon-heavy hitters (Definition 5) and exact residual heavy hitters
// (Definition 6), computed from the full weight vector. Ground truth for
// tests and benches.

#ifndef DWRS_HH_EXACT_HH_H_
#define DWRS_HH_EXACT_HH_H_

#include <cstdint>
#include <vector>

namespace dwrs {

// ||x_tail(t)||_1: total weight with the t largest coordinates removed.
double ResidualWeight(const std::vector<double>& weights, uint64_t drop_top);

// Indices i with w_i >= eps * ||x||_1 (Definition 5).
std::vector<uint64_t> ExactHeavyHitters(const std::vector<double>& weights,
                                        double eps);

// Indices i with w_i >= eps * ||x_tail(1/eps)||_1 (Definition 6).
std::vector<uint64_t> ExactResidualHeavyHitters(
    const std::vector<double>& weights, double eps);

}  // namespace dwrs

#endif  // DWRS_HH_EXACT_HH_H_
