// Weighted SpaceSaving (Metwally et al.), the standard centralized
// heavy-hitter summary. Used by the search-queries example as the
// classical comparison point that lacks a residual-error guarantee.

#ifndef DWRS_HH_SPACE_SAVING_H_
#define DWRS_HH_SPACE_SAVING_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace dwrs {

class SpaceSaving {
 public:
  explicit SpaceSaving(size_t capacity);

  // Adds weight w to identifier id (ids may repeat across the stream).
  void Add(uint64_t id, double weight);

  struct Estimate {
    uint64_t id = 0;
    double count = 0.0;  // upper bound on the true weight
    double error = 0.0;  // max overestimation
  };

  // Monitored identifiers sorted by estimated count descending.
  std::vector<Estimate> Entries() const;

  // Upper-bound estimate for an id (0 if untracked... then min counter).
  double EstimateOf(uint64_t id) const;

  double total_weight() const { return total_weight_; }
  size_t capacity() const { return capacity_; }

 private:
  struct Counter {
    double count = 0.0;
    double error = 0.0;
  };

  size_t capacity_;
  double total_weight_ = 0.0;
  std::unordered_map<uint64_t, Counter> counters_;
  // count -> ids with that count (multimap as a priority index).
  std::multimap<double, uint64_t> by_count_;
  std::unordered_map<uint64_t, std::multimap<double, uint64_t>::iterator>
      index_;

  void Reinsert(uint64_t id, Counter counter);
};

}  // namespace dwrs

#endif  // DWRS_HH_SPACE_SAVING_H_
