// Weighted Misra-Gries summary and a periodic-merge distributed heavy
// hitter baseline. Misra-Gries(c) underestimates each id's weight by at
// most W/(c+1) and summaries merge by counter addition + decrement —
// the classical deterministic alternative that E7 compares against
// (deterministic, but no residual guarantee and message cost linear in
// the number of synchronization rounds).

#ifndef DWRS_HH_MISRA_GRIES_H_
#define DWRS_HH_MISRA_GRIES_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/runtime.h"
#include "stream/workload.h"

namespace dwrs {

class MisraGries {
 public:
  explicit MisraGries(size_t capacity);

  void Add(uint64_t id, double weight);

  // Merges another summary into this one (counter addition followed by
  // re-compaction to capacity).
  void Merge(const MisraGries& other);

  // Lower-bound estimate (0 if untracked).
  double EstimateOf(uint64_t id) const;

  // Max underestimation of any id.
  double error_bound() const { return decremented_; }

  struct Entry {
    uint64_t id;
    double count;
  };
  // Entries sorted by count descending.
  std::vector<Entry> Entries() const;

  size_t capacity() const { return capacity_; }
  double total_weight() const { return total_weight_; }

 private:
  void CompactToCapacity();

  size_t capacity_;
  double total_weight_ = 0.0;
  double decremented_ = 0.0;  // cumulative decrement = max underestimate
  std::unordered_map<uint64_t, double> counters_;
};

// Distributed heavy hitters by periodic Misra-Gries merging: every site
// keeps a local MG summary and ships it to the coordinator every
// `sync_every` local items (message cost = capacity words per sync).
class DistributedMgHh {
 public:
  DistributedMgHh(int num_sites, size_t capacity, uint64_t sync_every);
  ~DistributedMgHh();  // out-of-line: Site/Coordinator are incomplete here

  void Observe(int site, const Item& item);
  void Run(const Workload& workload,
           const std::function<void(uint64_t)>& on_step = nullptr);

  // Ids whose merged estimate is >= eps * (coordinator's known weight).
  std::vector<Item> HeavyHitters(double eps) const;

  const sim::MessageStats& stats() const { return runtime_.stats(); }

  // A standalone MG site endpoint (local summary + periodic ship),
  // exposed for the hot-path bench and the span transcript tests.
  static std::unique_ptr<sim::SiteNode> MakeSite(int index, size_t capacity,
                                                 uint64_t sync_every,
                                                 sim::Transport* transport);

 private:
  class Site;
  class Coordinator;

  sim::Runtime runtime_;
  std::vector<std::unique_ptr<Site>> sites_;
  std::unique_ptr<Coordinator> coordinator_;
};

}  // namespace dwrs

#endif  // DWRS_HH_MISRA_GRIES_H_
