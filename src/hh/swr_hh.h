// Baseline heavy-hitter tracker via sampling WITH replacement: the
// coupon-collector argument gives plain eps-heavy hitters from
// O(log(1/(eps*delta))/eps) SWR samples, but NOT residual heavy hitters —
// a few mega-heavy items absorb almost every draw (Section 1.2, Section
// 4). Bench E7 measures exactly that failure.

#ifndef DWRS_HH_SWR_HH_H_
#define DWRS_HH_SWR_HH_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "swr/distributed_weighted_swr.h"

namespace dwrs {

class SwrHeavyHitterTracker {
 public:
  SwrHeavyHitterTracker(int num_sites, double eps, double delta,
                        uint64_t seed);

  static int RequiredSampleSize(double eps, double delta);

  void Observe(int site, const Item& item) { swr_.Observe(site, item); }
  void Run(const Workload& workload,
           const std::function<void(uint64_t)>& on_step = nullptr) {
    swr_.Run(workload, on_step);
  }

  // Distinct sampled identifiers, by weight descending, top ceil(2/eps).
  std::vector<Item> HeavyHitters() const;

  const sim::MessageStats& stats() const { return swr_.stats(); }

 private:
  double eps_;
  DistributedWeightedSwr swr_;
};

}  // namespace dwrs

#endif  // DWRS_HH_SWR_HH_H_
