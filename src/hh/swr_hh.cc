#include "hh/swr_hh.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/check.h"

namespace dwrs {

int SwrHeavyHitterTracker::RequiredSampleSize(double eps, double delta) {
  DWRS_CHECK(eps > 0.0 && eps < 1.0);
  DWRS_CHECK(delta > 0.0 && delta < 1.0);
  // Coupon collector: O(log(1/(eps delta))/eps) draws with replacement.
  const double s = std::ceil(6.0 * std::log(1.0 / (eps * delta)) / eps);
  return std::max(1, static_cast<int>(s));
}

SwrHeavyHitterTracker::SwrHeavyHitterTracker(int num_sites, double eps,
                                             double delta, uint64_t seed)
    : eps_(eps),
      swr_(num_sites, RequiredSampleSize(eps, delta), seed) {}

std::vector<Item> SwrHeavyHitterTracker::HeavyHitters() const {
  std::vector<Item> sample = swr_.Sample();
  std::sort(sample.begin(), sample.end(), [](const Item& a, const Item& b) {
    return a.weight > b.weight;
  });
  std::unordered_set<uint64_t> seen;
  std::vector<Item> out;
  const size_t limit = static_cast<size_t>(std::ceil(2.0 / eps_));
  for (const Item& item : sample) {
    if (out.size() >= limit) break;
    if (seen.insert(item.id).second) out.push_back(item);
  }
  return out;
}

}  // namespace dwrs
