#include "hh/space_saving.h"

#include <algorithm>

#include "util/check.h"

namespace dwrs {

SpaceSaving::SpaceSaving(size_t capacity) : capacity_(capacity) {
  DWRS_CHECK_GT(capacity, 0u);
}

void SpaceSaving::Reinsert(uint64_t id, Counter counter) {
  counters_[id] = counter;
  index_[id] = by_count_.emplace(counter.count, id);
}

void SpaceSaving::Add(uint64_t id, double weight) {
  DWRS_CHECK_GT(weight, 0.0);
  total_weight_ += weight;
  auto it = counters_.find(id);
  if (it != counters_.end()) {
    Counter c = it->second;
    by_count_.erase(index_[id]);
    c.count += weight;
    Reinsert(id, c);
    return;
  }
  if (counters_.size() < capacity_) {
    Reinsert(id, Counter{weight, 0.0});
    return;
  }
  // Evict the minimum counter; the newcomer inherits its count as error.
  auto min_it = by_count_.begin();
  const uint64_t victim = min_it->second;
  const double min_count = min_it->first;
  by_count_.erase(min_it);
  counters_.erase(victim);
  index_.erase(victim);
  Reinsert(id, Counter{min_count + weight, min_count});
}

std::vector<SpaceSaving::Estimate> SpaceSaving::Entries() const {
  std::vector<Estimate> out;
  out.reserve(counters_.size());
  for (const auto& [id, c] : counters_) {
    out.push_back(Estimate{id, c.count, c.error});
  }
  std::sort(out.begin(), out.end(), [](const Estimate& a, const Estimate& b) {
    return a.count > b.count;
  });
  return out;
}

double SpaceSaving::EstimateOf(uint64_t id) const {
  auto it = counters_.find(id);
  if (it != counters_.end()) return it->second.count;
  if (by_count_.empty()) return 0.0;
  return by_count_.begin()->first;  // anything untracked is below the min
}

}  // namespace dwrs
