// Deterministic L1 tracking baseline ([14] + folklore, the
// O((k/eps) log W) row of the Section 5 table): each site reports its
// exact local total whenever it grows by a (1+eps) factor since the last
// report; the coordinator sums the last reports. Zero failure
// probability, error at most eps relative, k log(W)/eps messages.

#ifndef DWRS_L1_DETERMINISTIC_L1_H_
#define DWRS_L1_DETERMINISTIC_L1_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/runtime.h"
#include "stream/workload.h"

namespace dwrs {

enum DetL1MessageType : uint32_t {
  kDetL1Report = 1,  // site -> coord: (local total)
};

class DetL1Site : public sim::SiteNode {
 public:
  DetL1Site(double eps, int site_index, sim::Transport* transport);

  void OnItem(const Item& item) override;
  void OnItems(const Item* items, size_t n) override;
  void OnMessage(const sim::Payload& msg) override;

 private:
  void Report();

  double eps_;
  int site_index_;
  sim::Transport* transport_;
  double local_total_ = 0.0;
  double last_reported_ = 0.0;
  double report_at_ = 0.0;  // cached last_reported_ * (1 + eps_)
};

class DetL1Coordinator : public sim::CoordinatorNode {
 public:
  explicit DetL1Coordinator(int num_sites);

  void OnMessage(int site, const sim::Payload& msg) override;

  double Estimate() const { return total_; }

 private:
  std::vector<double> last_report_;
  double total_ = 0.0;
};

class DeterministicL1Tracker {
 public:
  DeterministicL1Tracker(int num_sites, double eps, int delivery_delay = 0);

  void Observe(int site, const Item& item);
  void Run(const Workload& workload,
           const std::function<void(uint64_t)>& on_step = nullptr);

  double Estimate() const { return coordinator_->Estimate(); }
  const sim::MessageStats& stats() const { return runtime_.stats(); }

 private:
  sim::Runtime runtime_;
  std::vector<std::unique_ptr<DetL1Site>> sites_;
  std::unique_ptr<DetL1Coordinator> coordinator_;
};

}  // namespace dwrs

#endif  // DWRS_L1_DETERMINISTIC_L1_H_
