#include "l1/deterministic_l1.h"

#include "util/check.h"

namespace dwrs {

DetL1Site::DetL1Site(double eps, int site_index, sim::Transport* transport)
    : eps_(eps), site_index_(site_index), transport_(transport) {
  DWRS_CHECK(eps > 0.0 && eps < 1.0);
  DWRS_CHECK(transport != nullptr);
}

void DetL1Site::Report() {
  last_reported_ = local_total_;
  report_at_ = local_total_ * (1.0 + eps_);
  sim::Payload msg;
  msg.type = kDetL1Report;
  msg.x = local_total_;
  msg.words = 2;
  transport_->SendToCoordinator(site_index_, msg);
}

void DetL1Site::OnItem(const Item& item) { OnItems(&item, 1); }

void DetL1Site::OnItems(const Item* items, size_t n) {
  // The no-report steady state is one add and one compare per item
  // against the cached (1+eps) trigger point.
  for (size_t i = 0; i < n; ++i) {
    DWRS_CHECK_GT(items[i].weight, 0.0);
    local_total_ += items[i].weight;
    if (last_reported_ > 0.0 && local_total_ < report_at_) continue;
    Report();
  }
}

void DetL1Site::OnMessage(const sim::Payload& msg) {
  DWRS_CHECK(false) << " deterministic L1 sites receive no messages, got "
                    << msg.type;
}

DetL1Coordinator::DetL1Coordinator(int num_sites)
    : last_report_(static_cast<size_t>(num_sites), 0.0) {}

void DetL1Coordinator::OnMessage(int site, const sim::Payload& msg) {
  DWRS_CHECK_EQ(msg.type, static_cast<uint32_t>(kDetL1Report));
  total_ += msg.x - last_report_[static_cast<size_t>(site)];
  last_report_[static_cast<size_t>(site)] = msg.x;
}

DeterministicL1Tracker::DeterministicL1Tracker(int num_sites, double eps,
                                               int delivery_delay)
    : runtime_(num_sites, delivery_delay) {
  for (int i = 0; i < num_sites; ++i) {
    sites_.push_back(
        std::make_unique<DetL1Site>(eps, i, &runtime_.network()));
    runtime_.AttachSite(i, sites_.back().get());
  }
  coordinator_ = std::make_unique<DetL1Coordinator>(num_sites);
  runtime_.AttachCoordinator(coordinator_.get());
}

void DeterministicL1Tracker::Observe(int site, const Item& item) {
  runtime_.Deliver(WorkloadEvent{site, item});
}

void DeterministicL1Tracker::Run(
    const Workload& workload, const std::function<void(uint64_t)>& on_step) {
  for (uint64_t i = 0; i < workload.size(); ++i) {
    Observe(workload.event(i).site, workload.event(i).item);
    if (on_step) on_step(i + 1);
  }
}

}  // namespace dwrs
