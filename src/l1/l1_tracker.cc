#include "l1/l1_tracker.h"

#include <cmath>
#include <limits>

#include "random/distributions.h"
#include "util/check.h"

namespace dwrs {

int L1TrackerConfig::SampleSize() const {
  DWRS_CHECK(eps > 0.0 && eps < 0.5);
  DWRS_CHECK(delta > 0.0 && delta < 1.0);
  return static_cast<int>(
      std::ceil(10.0 * std::log(1.0 / delta) / (eps * eps)));
}

uint64_t L1TrackerConfig::Duplication() const {
  return static_cast<uint64_t>(
      std::ceil(static_cast<double>(SampleSize()) / (2.0 * eps)));
}

L1Site::L1Site(const L1TrackerConfig& config, int site_index,
               sim::Transport* transport, uint64_t seed)
    : config_(config),
      ell_(config.Duplication()),
      max_batch_(config.SampleSize()),
      site_index_(site_index),
      transport_(transport),
      rng_(seed) {
  DWRS_CHECK(transport != nullptr);
  DWRS_CHECK_GE(ell_, static_cast<uint64_t>(max_batch_));
}

void L1Site::OnItem(const Item& item) { OnItems(&item, 1); }

void L1Site::OnItems(const Item* items, size_t n) {
  // Keys of the ell conceptual copies are w/t_1, ..., w/t_ell with t_j iid
  // Exp(1). The largest keys correspond to the smallest t_j, generated
  // ascending via spacings; we stop at the first t >= w/u (its key — and
  // every later one — misses the threshold) or after s copies (anything
  // beyond the batch's own top-s is evicted by its siblings immediately).
  //
  // The first spacing is t_1 = Exp(1)/ell, so "no copy beats the
  // threshold" is exactly "Exp(1) >= ell * w/u" — thinned through the
  // geometric-skip filter so the (steady-state-dominant) all-miss items
  // cost no RNG work. On a hit the filter's conditioned variate IS the
  // first spacing's numerator; later spacings are drawn as before.
  const double threshold = threshold_;
  const double inv_threshold = threshold > 0.0 ? 1.0 / threshold : 0.0;
  const double ell = static_cast<double>(ell_);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (size_t idx = 0; idx < n; ++idx) {
    const Item& item = items[idx];
    DWRS_CHECK_GT(item.weight, 0.0);
    const double bound =
        threshold > 0.0 ? item.weight * inv_threshold : kInf;
    if (!filter_.Admit(rng_, std::isinf(bound) ? kInf : ell * bound)) {
      continue;
    }
    double t = filter_.value() / ell;
    for (int i = 0; i < max_batch_; ++i) {
      if (i > 0) {
        t += Exponential(rng_) /
             static_cast<double>(ell_ - static_cast<uint64_t>(i));
        if (t >= bound) break;
      }
      sim::Payload msg;
      msg.type = kWsworRegular;
      msg.a = item.id;
      msg.x = item.weight;
      msg.y = item.weight / t;
      msg.words = 4;
      transport_->SendToCoordinator(site_index_, msg);
    }
  }
}

void L1Site::OnMessage(const sim::Payload& msg) {
  DWRS_CHECK_EQ(msg.type, static_cast<uint32_t>(kWsworUpdateEpoch));
  if (msg.x > threshold_) threshold_ = msg.x;
}

WsworConfig L1CoordinatorConfig(const L1TrackerConfig& config) {
  WsworConfig out;
  out.num_sites = config.num_sites;
  out.sample_size = config.SampleSize();
  out.seed = config.seed;
  out.withhold_heavy = false;  // duplication replaces level sets (§5)
  out.delivery_delay = config.delivery_delay;
  return out;
}

L1Tracker::L1Tracker(const L1TrackerConfig& config)
    : config_(config), runtime_(config.num_sites, config.delivery_delay) {
  Rng master(config.seed);
  for (int i = 0; i < config.num_sites; ++i) {
    sites_.push_back(std::make_unique<L1Site>(config_, i, &runtime_.network(),
                                              master.NextU64()));
    runtime_.AttachSite(i, sites_.back().get());
  }
  coordinator_ = std::make_unique<WsworCoordinator>(
      L1CoordinatorConfig(config_), &runtime_.network(), master.NextU64());
  runtime_.AttachCoordinator(coordinator_.get());
}

void L1Tracker::Observe(int site, const Item& item) {
  runtime_.Deliver(WorkloadEvent{site, item});
}

void L1Tracker::Run(const Workload& workload,
                    const std::function<void(uint64_t)>& on_step) {
  for (uint64_t i = 0; i < workload.size(); ++i) {
    Observe(workload.event(i).site, workload.event(i).item);
    if (on_step) on_step(i + 1);
  }
}

double L1Tracker::Estimate() const {
  return L1EstimateFromThreshold(config_, coordinator_->Threshold());
}

double L1EstimateFromThreshold(const L1TrackerConfig& config, double u) {
  if (u <= 0.0) return 0.0;
  return static_cast<double>(config.SampleSize()) * u /
         static_cast<double>(config.Duplication());
}

MergeableSample L1ShardEstimate(const L1TrackerConfig& config,
                                const WsworCoordinator& coordinator) {
  MergeableSample out;
  out.kind = SampleKind::kScalarSum;
  out.scalar = L1EstimateFromThreshold(config, coordinator.Threshold());
  return out;
}

double ShardedL1Estimate(const L1TrackerConfig& config,
                         const std::vector<const WsworCoordinator*>& shards) {
  std::vector<MergeableSample> summaries;
  summaries.reserve(shards.size());
  for (const WsworCoordinator* coordinator : shards) {
    DWRS_CHECK(coordinator != nullptr);
    summaries.push_back(L1ShardEstimate(config, *coordinator));
  }
  return MergeShardSamples(summaries).scalar;
}

double Theorem6MessageBound(int num_sites, double eps, double delta,
                            double total_weight) {
  const double k = num_sites;
  const double log_w = std::log(std::max(2.0, eps * total_weight));
  return (k / std::log(std::max(2.0, k)) +
          std::log(1.0 / delta) / (eps * eps)) *
         log_w;
}

}  // namespace dwrs
