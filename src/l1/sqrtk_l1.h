// Randomized L1 tracking baseline in the style of Huang–Yi–Zhang [23]
// (the O((k + sqrt(k)/eps) log W) row of the Section 5 table).
//
// Phases are driven by the coordinator's lower bound L = sum of the
// exact local totals carried by the reports themselves. Within a phase
// of scale N each site reports its exact local total with probability q
// per unit weight,
// q = min(1, sqrt(k)/(eps*N)): unreported per-site drift is geometric
// with mean ~1/q = eps*N/sqrt(k), so the summed correction has standard
// deviation ~sqrt(k)/q = eps*N. Expected messages per phase:
// q * N ~ sqrt(k)/eps, plus a k-message broadcast per phase. The
// accuracy guarantee holds in [23]'s regime k <= 1/eps^2.

#ifndef DWRS_L1_SQRTK_L1_H_
#define DWRS_L1_SQRTK_L1_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "random/geometric_skip.h"
#include "random/rng.h"
#include "sim/runtime.h"
#include "stream/workload.h"

namespace dwrs {

enum SqrtkL1MessageType : uint32_t {
  kSqrtkReport = 1,    // site -> coord: (local total)
  kSqrtkNewPhase = 2,  // coord -> all sites: (q)
};

class SqrtkL1Site : public sim::SiteNode {
 public:
  SqrtkL1Site(int site_index, sim::Transport* transport, uint64_t seed);

  void OnItem(const Item& item) override;
  void OnItems(const Item* items, size_t n) override;
  void OnMessage(const sim::Payload& msg) override;
  sim::SiteHotPathCounters HotPathCounters() const override {
    return {filter_.decisions(), filter_.bits_consumed(),
            filter_.skips_taken()};
  }

 private:
  void Report();

  int site_index_;
  sim::Transport* transport_;
  Rng rng_;
  GeometricSkipFilter filter_;
  // -log(1 - min(q, 1-1e-15)): hazard per unit weight, cached whenever q
  // changes so the per-item report coin is hazard = w * neg_log1p_q_.
  static double UnitHazard(double q);

  double q_ = 1.0;  // per-unit-weight reporting probability
  double neg_log1p_q_ = 0.0;  // set from q_ in the constructor
  double local_total_ = 0.0;
  double unreported_ = 0.0;  // weight since the last report
  bool ever_reported_ = false;
};

class SqrtkL1Coordinator : public sim::CoordinatorNode {
 public:
  SqrtkL1Coordinator(int num_sites, double eps, sim::Transport* transport);

  void OnMessage(int site, const sim::Payload& msg) override;

  // Sum of last reports plus the expected-drift correction.
  double Estimate() const;

  double current_q() const { return q_; }

 private:
  void MaybeAdvancePhase();

  int num_sites_;
  double eps_;
  sim::Transport* transport_;
  std::vector<double> last_report_;
  std::vector<uint8_t> active_;
  double sum_reports_ = 0.0;
  int active_count_ = 0;
  double scale_ = 1.0;  // N
  double q_ = 1.0;
};

class SqrtkL1Tracker {
 public:
  SqrtkL1Tracker(int num_sites, double eps, uint64_t seed,
                 int delivery_delay = 0);

  void Observe(int site, const Item& item);
  void Run(const Workload& workload,
           const std::function<void(uint64_t)>& on_step = nullptr);

  double Estimate() const { return coordinator_->Estimate(); }
  const sim::MessageStats& stats() const { return runtime_.stats(); }

 private:
  sim::Runtime runtime_;
  std::vector<std::unique_ptr<SqrtkL1Site>> sites_;
  std::unique_ptr<SqrtkL1Coordinator> coordinator_;
};

// [23]'s bound for k <= 1/eps^2 (up to constants): (sqrt(k)/eps) log W.
double HyzMessageBound(int num_sites, double eps, double total_weight);

}  // namespace dwrs

#endif  // DWRS_L1_SQRTK_L1_H_
