#include "l1/sqrtk_l1.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace dwrs {

double SqrtkL1Site::UnitHazard(double q) {
  return -std::log1p(-std::min(q, 1.0 - 1e-15));
}

SqrtkL1Site::SqrtkL1Site(int site_index, sim::Transport* transport, uint64_t seed)
    : site_index_(site_index), transport_(transport), rng_(seed) {
  DWRS_CHECK(transport != nullptr);
  neg_log1p_q_ = UnitHazard(q_);
}

void SqrtkL1Site::Report() {
  ever_reported_ = true;
  unreported_ = 0.0;
  sim::Payload msg;
  msg.type = kSqrtkReport;
  msg.x = local_total_;
  msg.words = 2;
  transport_->SendToCoordinator(site_index_, msg);
}

void SqrtkL1Site::OnItem(const Item& item) { OnItems(&item, 1); }

void SqrtkL1Site::OnItems(const Item* items, size_t n) {
  const double q = q_;
  const double unit_hazard = neg_log1p_q_;
  const double cap = q < 1.0 ? 3.0 / q : 0.0;
  for (size_t i = 0; i < n; ++i) {
    const Item& item = items[i];
    DWRS_CHECK_GT(item.weight, 0.0);
    local_total_ += item.weight;
    unreported_ += item.weight;
    if (!ever_reported_) {
      // First local item always reported (it may be the global first, and
      // any correct tracker must register it — cf. Theorem 7's argument).
      Report();
      continue;
    }
    // Deterministic cap: never let unreported drift exceed a few expected
    // inter-report gaps (bounds the coordinator's correction bias without
    // changing the message asymptotics).
    if (cap > 0.0 && unreported_ >= cap) {
      Report();
      continue;
    }
    // Report with probability 1 - (1-q)^w, i.e. hazard w * -log(1-q) —
    // the geometric-skip filter makes the (dominant) no-report outcome
    // free of RNG work.
    if (filter_.Admit(rng_, item.weight * unit_hazard)) Report();
  }
}

void SqrtkL1Site::OnMessage(const sim::Payload& msg) {
  DWRS_CHECK_EQ(msg.type, static_cast<uint32_t>(kSqrtkNewPhase));
  if (msg.x < q_) {
    q_ = msg.x;
    neg_log1p_q_ = UnitHazard(q_);
  }
}

SqrtkL1Coordinator::SqrtkL1Coordinator(int num_sites, double eps,
                                       sim::Transport* transport)
    : num_sites_(num_sites),
      eps_(eps),
      transport_(transport),
      last_report_(static_cast<size_t>(num_sites), 0.0),
      active_(static_cast<size_t>(num_sites), 0) {
  DWRS_CHECK(eps > 0.0 && eps < 1.0);
  DWRS_CHECK(transport != nullptr);
}

double SqrtkL1Coordinator::Estimate() const {
  if (q_ >= 1.0) return sum_reports_;
  // Unreported drift per active site is geometric with mean ~(1-q)/q,
  // clamped by the doubling-backbone invariant: a site's unreported
  // weight never exceeds its last reported local total.
  const double mean_gap = (1.0 - q_) / q_;
  double correction = 0.0;
  for (size_t i = 0; i < last_report_.size(); ++i) {
    if (active_[i] != 0) {
      // Expected age of a geometric reporting clock truncated at the
      // site's own observed scale (a site cannot have drifted by much
      // more than it has ever reported).
      const double scale = last_report_[i];
      correction += mean_gap * -std::expm1(-scale / mean_gap);
    }
  }
  return sum_reports_ + correction;
}

void SqrtkL1Coordinator::MaybeAdvancePhase() {
  // Phases are driven by the deterministic lower bound (sum of actual
  // reports), never by the corrected estimate — feeding the correction
  // back into the phase schedule would compound it.
  if (sum_reports_ < 2.0 * scale_) return;
  scale_ = sum_reports_;
  const double next_q = std::min(
      1.0, std::sqrt(static_cast<double>(num_sites_)) / (eps_ * scale_));
  if (next_q >= q_) return;
  q_ = next_q;
  sim::Payload msg;
  msg.type = kSqrtkNewPhase;
  msg.x = q_;
  msg.words = 2;
  transport_->Broadcast(msg);
}

void SqrtkL1Coordinator::OnMessage(int site, const sim::Payload& msg) {
  DWRS_CHECK_EQ(msg.type, static_cast<uint32_t>(kSqrtkReport));
  const size_t idx = static_cast<size_t>(site);
  if (active_[idx] == 0) {
    active_[idx] = 1;
    ++active_count_;
  }
  sum_reports_ += msg.x - last_report_[idx];
  last_report_[idx] = msg.x;
  MaybeAdvancePhase();
}

SqrtkL1Tracker::SqrtkL1Tracker(int num_sites, double eps, uint64_t seed,
                               int delivery_delay)
    : runtime_(num_sites, delivery_delay) {
  Rng master(seed);
  for (int i = 0; i < num_sites; ++i) {
    sites_.push_back(std::make_unique<SqrtkL1Site>(i, &runtime_.network(),
                                                   master.NextU64()));
    runtime_.AttachSite(i, sites_.back().get());
  }
  coordinator_ = std::make_unique<SqrtkL1Coordinator>(num_sites, eps,
                                                      &runtime_.network());
  runtime_.AttachCoordinator(coordinator_.get());
}

void SqrtkL1Tracker::Observe(int site, const Item& item) {
  runtime_.Deliver(WorkloadEvent{site, item});
}

void SqrtkL1Tracker::Run(const Workload& workload,
                         const std::function<void(uint64_t)>& on_step) {
  for (uint64_t i = 0; i < workload.size(); ++i) {
    Observe(workload.event(i).site, workload.event(i).item);
    if (on_step) on_step(i + 1);
  }
}

double HyzMessageBound(int num_sites, double eps, double total_weight) {
  return std::sqrt(static_cast<double>(num_sites)) / eps *
         std::log(std::max(2.0, total_weight));
}

}  // namespace dwrs
