// Distributed L1 (count) tracking via weighted SWOR (Section 5,
// Algorithm "Tracking L1" + Theorem 6).
//
// Every arriving item (e, w) is conceptually duplicated ell = s/(2*eps)
// times and fed to the weighted SWOR sampler P with s = 10 ln(1/delta) /
// eps^2; the coordinator's s-th largest key u then concentrates so that
// W-hat = s * u / ell = (1 +/- eps) W.
//
// Duplication removes heavy hitters without level sets (each copy is at
// most a 1/(2s)-fraction of the duplicated prefix), so the sampler runs
// with withholding disabled. Sites never materialize the ell copies:
// only the copies whose keys beat the epoch threshold matter, and only
// the best s of those can enter the sample, so the site draws the
// smallest exponentials of the batch directly via order-statistic
// spacings and stops at the first one that misses the threshold —
// expected O(1) work per item in the steady state.

#ifndef DWRS_L1_L1_TRACKER_H_
#define DWRS_L1_L1_TRACKER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/config.h"
#include "core/coordinator.h"
#include "random/geometric_skip.h"
#include "random/rng.h"
#include "sim/runtime.h"
#include "stream/workload.h"

namespace dwrs {

struct L1TrackerConfig {
  int num_sites = 4;
  double eps = 0.1;
  double delta = 0.1;
  uint64_t seed = 1;
  int delivery_delay = 0;

  // s = ceil(10 ln(1/delta) / eps^2).
  int SampleSize() const;
  // ell = ceil(s / (2 eps)).
  uint64_t Duplication() const;
};

// Site protocol: batched duplication into the precision sampler.
class L1Site : public sim::SiteNode {
 public:
  L1Site(const L1TrackerConfig& config, int site_index, sim::Transport* transport,
         uint64_t seed);

  void OnItem(const Item& item) override;
  void OnItems(const Item* items, size_t n) override;
  void OnMessage(const sim::Payload& msg) override;
  sim::SiteHotPathCounters HotPathCounters() const override {
    return {filter_.decisions(), filter_.bits_consumed(),
            filter_.skips_taken()};
  }

 private:
  const L1TrackerConfig config_;
  const uint64_t ell_;
  const int max_batch_;  // s: more copies than this can never matter
  int site_index_;
  sim::Transport* transport_;
  Rng rng_;
  // Thins the first (smallest-t) conceptual copy: in the steady state
  // the overwhelmingly common outcome is "none of the ell copies beats
  // the threshold", decided here at O(1) amortized RNG cost.
  GeometricSkipFilter filter_;
  double threshold_ = 0.0;
};

class L1Tracker {
 public:
  explicit L1Tracker(const L1TrackerConfig& config);

  void Observe(int site, const Item& item);
  void Run(const Workload& workload,
           const std::function<void(uint64_t)>& on_step = nullptr);

  // W-hat = s * u / ell; 0 before any item arrived.
  double Estimate() const;

  const sim::MessageStats& stats() const { return runtime_.stats(); }
  const L1TrackerConfig& config() const { return config_; }

 private:
  L1TrackerConfig config_;
  sim::Runtime runtime_;
  std::vector<std::unique_ptr<L1Site>> sites_;
  std::unique_ptr<WsworCoordinator> coordinator_;
};

// W-hat = s * u / ell given the coordinator's s-th largest key u (0 while
// u == 0). Shared by L1Tracker::Estimate and the fault harness, which
// runs the L1 site/coordinator stack over a faulty transport.
double L1EstimateFromThreshold(const L1TrackerConfig& config, double u);

// The weighted-SWOR coordinator configuration the L1 reduction runs on
// (withholding off — duplication replaces level sets, Section 5). The
// single source of truth for L1Tracker and the fault harness.
WsworConfig L1CoordinatorConfig(const L1TrackerConfig& config);

// Sharded L1: a shard's mergeable summary is its scalar estimate
// W-hat_j = s * u_j / ell over its own site subset, and shard estimates
// compose by SUMMATION — each shard errs by at most eps * W_j on its
// share of the mass, so the sum is a (1 +/- eps) estimate of the global
// W. (The per-shard u is NOT mergeable into a global u: shards duplicate
// independently, so their key populations estimate disjoint masses.)
MergeableSample L1ShardEstimate(const L1TrackerConfig& config,
                                const WsworCoordinator& coordinator);

// Convenience: merge the per-shard summaries and return the summed W-hat.
double ShardedL1Estimate(const L1TrackerConfig& config,
                         const std::vector<const WsworCoordinator*>& shards);

// This work's Theorem 6 bound (up to constants):
// (k/log k + log(1/delta)/eps^2) * log(eps*W).
double Theorem6MessageBound(int num_sites, double eps, double delta,
                            double total_weight);

}  // namespace dwrs

#endif  // DWRS_L1_L1_TRACKER_H_
