#include "random/rng.h"

#include "util/check.h"

namespace dwrs {
namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextDoubleOpenLeft() {
  // (x + 1) / 2^53 over x in [0, 2^53): uniform on (0, 1].
  return static_cast<double>((NextU64() >> 11) + 1) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  DWRS_CHECK_GT(bound, 0u);
  // Lemire's nearly-divisionless method.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

bool Rng::NextBit() { return (NextU64() >> 63) != 0; }

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace dwrs
