// Bit-lazy exponential threshold decisions (paper Proposition 7).
//
// A site holding an item of weight w in epoch threshold u must decide
// whether the key v = w / t (t ~ Exp(1)) exceeds u, i.e. whether t < w/u.
// Since t = -ln(U) for U uniform, this is "is U > e^{-w/u}?", which can be
// answered by generating the bits of U lazily: each generated bit halves
// the candidate interval, so the decision consumes O(1) bits in
// expectation and O(log W) bits with high probability — this is how the
// paper argues O(1) machine words per message.

#ifndef DWRS_RANDOM_LAZY_EXPONENTIAL_H_
#define DWRS_RANDOM_LAZY_EXPONENTIAL_H_

#include "random/rng.h"

namespace dwrs {

struct LazyExpDecision {
  bool below_bound = false;  // t < bound, i.e. the key beats the threshold
  int bits_consumed = 0;     // bits of U generated before deciding
  double value = 0.0;        // the completed exponential variate t
};

// Decides whether an Exp(1) variate t is < bound, generating the bits of
// the underlying uniform lazily; afterwards completes t exactly (the
// conditional completion preserves the Exp(1) law). bound <= 0 decides
// false immediately (0 bits); bound = +inf decides true (0 bits).
LazyExpDecision DecideExponentialBelow(Rng& rng, double bound);

}  // namespace dwrs

#endif  // DWRS_RANDOM_LAZY_EXPONENTIAL_H_
