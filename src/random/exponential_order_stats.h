// Order statistics of exponential keys and exact small-instance laws of
// weighted sampling without replacement. Used by the batched L1-tracker
// site (top-s keys of many duplicated copies in O(s)) and by statistical
// tests that compare samplers against the exact inclusion probabilities.

#ifndef DWRS_RANDOM_EXPONENTIAL_ORDER_STATS_H_
#define DWRS_RANDOM_EXPONENTIAL_ORDER_STATS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "random/rng.h"

namespace dwrs {

// The k smallest of n iid Exp(1) variates, ascending, generated directly in
// O(k) via the memoryless spacing representation:
//   E_(1) = Exp/n,  E_(i+1) = E_(i) + Exp/(n-i).
std::vector<double> SmallestExponentials(Rng& rng, uint64_t n, uint64_t k);

// The k largest keys w/t over n iid copies of an item with weight w,
// descending. Equivalent to w divided by the k smallest exponentials.
std::vector<double> TopDuplicateKeys(Rng& rng, double weight, uint64_t n,
                                     uint64_t k);

// Exact inclusion probabilities of a weighted SWOR of size s over the given
// weights (paper Definition 1), via bitmask dynamic programming. Intended
// for small instances (weights.size() <= ~16) inside tests.
std::vector<double> ExactSworInclusionProbabilities(
    const std::vector<double>& weights, int s);

// Exact single-draw weighted probabilities w_i / W (the SWR per-draw law).
std::vector<double> WeightedDrawProbabilities(const std::vector<double>& weights);

// Exact probability of every size-s sample SET (as a bitmask over item
// indices) under weighted SWOR. Enables true multinomial goodness-of-fit
// tests of samplers. Small instances only (weights.size() <= ~16).
std::vector<std::pair<uint32_t, double>> ExactSworSetDistribution(
    const std::vector<double>& weights, int s);

}  // namespace dwrs

#endif  // DWRS_RANDOM_EXPONENTIAL_ORDER_STATS_H_
