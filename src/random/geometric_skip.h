// Exact geometric-skip thinning — the batched hot path of every
// threshold-filtering sampler site.
//
// A site must decide per item whether an Exp(1) key variate t_i falls
// below a per-item hazard h_i (for the wswor filter h_i = w_i/u, so the
// item is forwarded with probability p_i = 1 - e^{-h_i}). Deciding
// naively costs one fresh variate per item even though, in the steady
// state, almost every item loses. The filter instead maintains a single
// pending exponential E ~ Exp(1) — the skip budget — and consumes h_i
// from it per item:
//
//   E <  h_i  ->  item i is ACCEPTED, and E is exactly an Exp(1) variate
//                 conditioned on being < h_i (use it as the item's t_i;
//                 a fresh budget is drawn for the next decision);
//   E >= h_i  ->  item i is REJECTED, and by memorylessness E - h_i is
//                 again Exp(1), independent of everything so far.
//
// Over a run of items with equal hazard h this is literally geometric
// skipping: the number of rejected items ahead of the next send is
// floor(E/h) ~ Geometric(p) with p = 1 - e^{-h} — one RNG draw per
// accepted item, O(1) amortized work for everything that cannot send.
// With mixed weights, consuming each item's own h_i is the exact
// per-item rejection correction fused into the skip (a lighter item
// eats less budget, so it is proportionally less likely to exhaust it):
// the decisions are independent Bernoulli(p_i) and the accepted variate
// carries the correct conditional law, so the sampled distribution is
// exactly the paper's.
//
// The walk is partition-invariant: the residual budget carries across
// calls, so feeding items one at a time or in arbitrary spans yields
// identical decisions from identical RNG state — this is what keeps the
// SiteNode::OnItems span path transcript-identical to the per-item
// OnItem path for every batch size. Hazards may change arbitrarily
// between items (epoch thresholds tighten mid-stream) without biasing
// the law: each decision only needs E to be Exp(1) at that instant.

#ifndef DWRS_RANDOM_GEOMETRIC_SKIP_H_
#define DWRS_RANDOM_GEOMETRIC_SKIP_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "random/rng.h"

namespace dwrs {

class GeometricSkipFilter {
 public:
  // Decides the item with acceptance hazard `hazard` (accept probability
  // 1 - e^{-hazard}). hazard <= 0 rejects for free; hazard = +inf always
  // accepts (the pre-first-epoch state where every key qualifies). After
  // an accepting call, value() is the conditioned Exp(1) variate.
  bool Admit(Rng& rng, double hazard) {
    ++decisions_;
    if (!(hazard > 0.0)) {  // p = 0 (also absorbs NaN defensively)
      ++skips_taken_;
      return false;
    }
    if (!has_pending_) {
      pending_ = Exp1(rng);
      has_pending_ = true;
    }
    if (pending_ < hazard) {
      value_ = pending_;
      if (value_ <= 0.0) value_ = MinValue(hazard);
      has_pending_ = false;
      ++accepts_;
      return true;
    }
    ++skips_taken_;
    pending_ -= hazard;  // memoryless residual: still Exp(1)
    // A residual of exactly 0 (measure-zero floating-point tie) would
    // otherwise accept the next item with t = 0 and an infinite key.
    if (pending_ <= 0.0) has_pending_ = false;
    return false;
  }

  // The Exp(1) variate conditioned below the accepted hazard; valid only
  // after an Admit that returned true, until the next Admit.
  double value() const { return value_; }

  // --- instrumentation (Proposition 7 accounting) ----------------------
  // Admit calls; = items that went through the threshold filter.
  uint64_t decisions() const { return decisions_; }
  uint64_t accepts() const { return accepts_; }
  // Rejections absorbed into the residual budget at zero RNG cost.
  uint64_t skips_taken() const { return skips_taken_; }
  // Fresh exponentials drawn; each consumes one 64-bit RNG word, so the
  // amortized random bits per decision is 64 * draws / decisions.
  uint64_t draws() const { return draws_; }
  uint64_t bits_consumed() const { return draws_ * 64; }

  // Durable-checkpoint surface: the residual skip budget is part of a
  // site's sampling state — restoring it (together with the RNG state)
  // resumes the walk with bit-identical decisions (src/durability/).
  struct State {
    bool has_pending = false;
    double pending = 0.0;
    double value = 0.0;
    uint64_t decisions = 0;
    uint64_t accepts = 0;
    uint64_t skips_taken = 0;
    uint64_t draws = 0;
  };
  State SaveState() const {
    return State{has_pending_, pending_, value_, decisions_,
                 accepts_,     skips_taken_, draws_};
  }
  void RestoreState(const State& s) {
    has_pending_ = s.has_pending;
    pending_ = s.pending;
    value_ = s.value;
    decisions_ = s.decisions;
    accepts_ = s.accepts;
    skips_taken_ = s.skips_taken;
    draws_ = s.draws;
  }

 private:
  double Exp1(Rng& rng) {
    ++draws_;
    return -std::log(rng.NextDoubleOpenLeft());
  }
  // Floor for a degenerate accepted variate (the uniform landed exactly
  // on 1): 2^-53 mirrors the uniform's resolution so keys w/t stay
  // finite, and staying below the accepted hazard keeps the decision and
  // the value in agreement.
  static double MinValue(double hazard) {
    constexpr double kResolutionFloor = 0x1p-53;
    return std::min(kResolutionFloor, 0.5 * hazard);
  }

  bool has_pending_ = false;
  double pending_ = 0.0;
  double value_ = 0.0;
  uint64_t decisions_ = 0;
  uint64_t accepts_ = 0;
  uint64_t skips_taken_ = 0;
  uint64_t draws_ = 0;
};

}  // namespace dwrs

#endif  // DWRS_RANDOM_GEOMETRIC_SKIP_H_
