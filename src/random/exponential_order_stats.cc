#include "random/exponential_order_stats.h"

#include <algorithm>
#include <numeric>

#include "random/distributions.h"
#include "util/check.h"

namespace dwrs {

std::vector<double> SmallestExponentials(Rng& rng, uint64_t n, uint64_t k) {
  DWRS_CHECK_GE(n, k);
  std::vector<double> out;
  out.reserve(k);
  double current = 0.0;
  for (uint64_t i = 0; i < k; ++i) {
    current += Exponential(rng) / static_cast<double>(n - i);
    out.push_back(current);
  }
  return out;
}

std::vector<double> TopDuplicateKeys(Rng& rng, double weight, uint64_t n,
                                     uint64_t k) {
  DWRS_CHECK_GT(weight, 0.0);
  std::vector<double> spacings = SmallestExponentials(rng, n, k);
  for (double& t : spacings) t = weight / t;
  return spacings;  // descending: smallest t first => largest key first
}

std::vector<double> ExactSworInclusionProbabilities(
    const std::vector<double>& weights, int s) {
  const int n = static_cast<int>(weights.size());
  DWRS_CHECK_LE(n, 20);
  DWRS_CHECK_GE(s, 0);
  const int sample = std::min(s, n);
  const double total =
      std::accumulate(weights.begin(), weights.end(), 0.0);
  DWRS_CHECK_GT(total, 0.0);

  // g[mask] = probability that the first popcount(mask) draws (in any
  // order) are exactly the items in mask.
  const uint32_t limit = 1u << n;
  std::vector<double> g(limit, 0.0);
  std::vector<double> mask_weight(limit, 0.0);
  g[0] = 1.0;
  for (uint32_t mask = 1; mask < limit; ++mask) {
    mask_weight[mask] =
        mask_weight[mask & (mask - 1)] + weights[__builtin_ctz(mask)];
  }
  std::vector<double> inclusion(n, 0.0);
  for (uint32_t mask = 1; mask < limit; ++mask) {
    const int size = __builtin_popcount(mask);
    if (size > sample) continue;
    double prob = 0.0;
    for (int j = 0; j < n; ++j) {
      if (!(mask & (1u << j))) continue;
      const uint32_t prev = mask & ~(1u << j);
      const double remaining = total - mask_weight[prev];
      prob += g[prev] * (weights[j] / remaining);
    }
    g[mask] = prob;
    if (size == sample) {
      for (int j = 0; j < n; ++j) {
        if (mask & (1u << j)) inclusion[j] += prob;
      }
    }
  }
  return inclusion;
}

std::vector<std::pair<uint32_t, double>> ExactSworSetDistribution(
    const std::vector<double>& weights, int s) {
  const int n = static_cast<int>(weights.size());
  DWRS_CHECK_LE(n, 20);
  const int sample = std::min(s, n);
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  DWRS_CHECK_GT(total, 0.0);

  const uint32_t limit = 1u << n;
  std::vector<double> g(limit, 0.0);
  std::vector<double> mask_weight(limit, 0.0);
  g[0] = 1.0;
  for (uint32_t mask = 1; mask < limit; ++mask) {
    mask_weight[mask] =
        mask_weight[mask & (mask - 1)] + weights[__builtin_ctz(mask)];
  }
  std::vector<std::pair<uint32_t, double>> out;
  for (uint32_t mask = 1; mask < limit; ++mask) {
    const int size = __builtin_popcount(mask);
    if (size > sample) continue;
    double prob = 0.0;
    for (int j = 0; j < n; ++j) {
      if (!(mask & (1u << j))) continue;
      const uint32_t prev = mask & ~(1u << j);
      const double remaining = total - mask_weight[prev];
      prob += g[prev] * (weights[j] / remaining);
    }
    g[mask] = prob;
    if (size == sample) out.emplace_back(mask, prob);
  }
  return out;
}

std::vector<double> WeightedDrawProbabilities(
    const std::vector<double>& weights) {
  const double total =
      std::accumulate(weights.begin(), weights.end(), 0.0);
  DWRS_CHECK_GT(total, 0.0);
  std::vector<double> out(weights.size());
  for (size_t i = 0; i < weights.size(); ++i) out[i] = weights[i] / total;
  return out;
}

}  // namespace dwrs
