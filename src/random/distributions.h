// Random variate generation used throughout the samplers.
//
// All generators are deterministic functions of the supplied Rng so that
// every simulation is exactly reproducible from its seed.

#ifndef DWRS_RANDOM_DISTRIBUTIONS_H_
#define DWRS_RANDOM_DISTRIBUTIONS_H_

#include <cstdint>

#include "random/rng.h"

namespace dwrs {

// Exponential(rate = 1) variate; strictly positive.
double Exponential(Rng& rng);

// Exponential(rate) variate.
double ExponentialRate(Rng& rng, double rate);

// Exponential(1) conditioned on being < bound (bound > 0), via inverse CDF.
// Used to generate the key of an item already known to pass a threshold.
double TruncatedExponential(Rng& rng, double bound);

// Geometric over {1, 2, ...}: number of Bernoulli(p) trials up to and
// including the first success. Used for skip-based samplers.
uint64_t GeometricTrials(Rng& rng, double p);

// Binomial(n, p). Exact inversion for small n*p; BTRS rejection
// (Hormann 1993) otherwise. Used to batch s independent coin flips in the
// SWR reduction of Corollary 1 into one draw.
uint64_t Binomial(Rng& rng, uint64_t n, double p);

// Zipf over ranks {1..n} with exponent alpha > 0 via rejection-inversion
// (Hormann & Derflinger). P(rank = i) proportional to i^-alpha.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double alpha);

  uint64_t Next(Rng& rng) const;

  uint64_t n() const { return n_; }
  double alpha() const { return alpha_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double alpha_;
  double h_x1_;
  double h_n_;
  double s_;
};

// Standard normal variate (Box-Muller).
double Normal(Rng& rng);

// Gamma(shape, 1) for shape >= 1 via Marsaglia-Tsang; shape < 1 via the
// boost to shape+1 with the U^(1/shape) correction.
double Gamma(Rng& rng, double shape);

// Beta(a, b) via two Gamma draws.
double Beta(Rng& rng, double a, double b);

// P(min of `w` iid Uniform(0,1) keys < tau) = 1 - (1-tau)^w, computed
// stably; this is alpha(w, j) from Corollary 1 with tau = 2^-j.
double MinUniformBelowProb(double weight, double tau);

// Samples the min of `w` iid Uniform(0,1) draws conditioned to be < tau.
double TruncatedMinUniform(Rng& rng, double weight, double tau);

}  // namespace dwrs

#endif  // DWRS_RANDOM_DISTRIBUTIONS_H_
