#include "random/lazy_exponential.h"

#include <cmath>
#include <limits>

namespace dwrs {

LazyExpDecision DecideExponentialBelow(Rng& rng, double bound) {
  LazyExpDecision out;
  if (bound <= 0.0) {
    out.below_bound = false;
    out.value = -std::log(rng.NextDoubleOpenLeft());
    return out;
  }
  if (std::isinf(bound)) {
    out.below_bound = true;
    out.value = -std::log(rng.NextDoubleOpenLeft());
    return out;
  }

  // t = -ln(U) < bound  <=>  U > e^{-bound} =: threshold.
  const double threshold = std::exp(-bound);
  double lo = 0.0;
  double hi = 1.0;
  // Refine [lo, hi) until it no longer straddles the threshold. Each bit
  // halves the interval, so the expected number of iterations is < 2.
  while (lo < threshold && threshold < hi) {
    const double mid = 0.5 * (lo + hi);
    if (mid == lo || mid == hi) break;  // hit double resolution
    if (rng.NextBit()) {
      lo = mid;
    } else {
      hi = mid;
    }
    ++out.bits_consumed;
  }
  // Complete U uniformly inside the final interval; this is exactly the
  // conditional distribution of the remaining bits.
  double u = lo + rng.NextDouble() * (hi - lo);
  if (u <= 0.0) u = std::numeric_limits<double>::min();
  out.below_bound = u > threshold;
  out.value = -std::log(u);
  // Floating point guard: make the decision and the value agree.
  if (out.below_bound && out.value >= bound) {
    out.value = std::nextafter(bound, 0.0);
  } else if (!out.below_bound && out.value < bound) {
    out.value = bound;
  }
  return out;
}

}  // namespace dwrs
