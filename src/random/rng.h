// Deterministic, seedable pseudo-random number generator.
//
// The generator is xoshiro256++ seeded through SplitMix64, which is fast,
// high quality, and has a tiny state — one per simulated site keeps the
// distributed protocols reproducible regardless of interleaving.

#ifndef DWRS_RANDOM_RNG_H_
#define DWRS_RANDOM_RNG_H_

#include <cstdint>

namespace dwrs {

class Rng {
 public:
  // Seeds the state via SplitMix64 so that any 64-bit seed (including 0)
  // produces a well-mixed state.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  // Next raw 64 random bits.
  uint64_t NextU64();

  // Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  // Uniform double in (0, 1]; never returns 0 (safe for log()).
  double NextDoubleOpenLeft();

  // Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  uint64_t NextBounded(uint64_t bound);

  // Single random bit.
  bool NextBit();

  // Derives an independent generator; used to hand each simulated site its
  // own stream of randomness from one master seed.
  Rng Fork();

  // Raw xoshiro256++ state words, for durable checkpoints: a generator
  // restored from a saved state resumes the exact same stream, which is
  // what makes crash recovery bit-identical (src/durability/).
  void SaveState(uint64_t out[4]) const {
    for (int i = 0; i < 4; ++i) out[i] = state_[i];
  }
  void RestoreState(const uint64_t in[4]) {
    for (int i = 0; i < 4; ++i) state_[i] = in[i];
  }

 private:
  uint64_t state_[4];
};

// SplitMix64 step, exposed for seeding-related tests.
uint64_t SplitMix64(uint64_t* state);

}  // namespace dwrs

#endif  // DWRS_RANDOM_RNG_H_
