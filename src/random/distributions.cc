#include "random/distributions.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace dwrs {

double Exponential(Rng& rng) { return -std::log(rng.NextDoubleOpenLeft()); }

double ExponentialRate(Rng& rng, double rate) {
  DWRS_CHECK_GT(rate, 0.0);
  return Exponential(rng) / rate;
}

double TruncatedExponential(Rng& rng, double bound) {
  DWRS_CHECK_GT(bound, 0.0);
  // Inverse CDF of Exp(1) | X < bound:  F(x) = (1 - e^-x) / (1 - e^-bound).
  double u = rng.NextDouble();  // [0, 1)
  double scale = -std::expm1(-bound);
  double x = -std::log1p(-u * scale);
  // Clamp for floating point safety; x must stay strictly inside (0, bound).
  if (x <= 0.0) x = std::numeric_limits<double>::min();
  if (x >= bound) x = std::nextafter(bound, 0.0);
  return x;
}

uint64_t GeometricTrials(Rng& rng, double p) {
  DWRS_CHECK_GT(p, 0.0);
  if (p >= 1.0) return 1;
  double u = rng.NextDoubleOpenLeft();
  double g = std::floor(std::log(u) / std::log1p(-p));
  if (g >= 9.0e18) return UINT64_MAX;
  return static_cast<uint64_t>(g) + 1;
}

double Normal(Rng& rng) {
  // Box-Muller; one variate per call keeps the generator stateless.
  double u1 = rng.NextDoubleOpenLeft();
  double u2 = rng.NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586477 * u2);
}

double Gamma(Rng& rng, double shape) {
  DWRS_CHECK_GT(shape, 0.0);
  if (shape < 1.0) {
    // Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
    double u = rng.NextDoubleOpenLeft();
    return Gamma(rng, shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia & Tsang (2000).
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x = Normal(rng);
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    double u = rng.NextDoubleOpenLeft();
    double x2 = x * x;
    if (u < 1.0 - 0.0331 * x2 * x2) return d * v;
    if (std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v))) return d * v;
  }
}

double Beta(Rng& rng, double a, double b) {
  double ga = Gamma(rng, a);
  double gb = Gamma(rng, b);
  double r = ga / (ga + gb);
  // Keep strictly inside (0,1) so callers can divide by r and 1-r.
  if (r <= 0.0) r = std::numeric_limits<double>::min();
  if (r >= 1.0) r = std::nextafter(1.0, 0.0);
  return r;
}

namespace {

// Exact O(np)-expected counting of successes via geometric skips.
uint64_t BinomialBySkips(Rng& rng, uint64_t n, double p) {
  uint64_t successes = 0;
  uint64_t consumed = 0;
  while (true) {
    uint64_t g = GeometricTrials(rng, p);
    if (g > n - consumed) break;
    consumed += g;
    ++successes;
    if (consumed == n) break;
  }
  return successes;
}

// Classic BINV inversion along the pmf recurrence; valid while (1-p)^n does
// not underflow. Expected time O(np).
uint64_t BinomialByInversion(Rng& rng, uint64_t n, double p) {
  const double q = 1.0 - p;
  double f = std::exp(static_cast<double>(n) * std::log(q));
  DWRS_CHECK_GT(f, 0.0);
  double u = rng.NextDouble();
  const double odds = p / q;
  uint64_t k = 0;
  while (u > f && k < n) {
    u -= f;
    ++k;
    f *= odds * (static_cast<double>(n - k + 1) / static_cast<double>(k));
  }
  return k;
}

}  // namespace

uint64_t Binomial(Rng& rng, uint64_t n, double p) {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  if (p > 0.5) return n - Binomial(rng, n, 1.0 - p);

  const double np = static_cast<double>(n) * p;
  if (np < 10.0) return BinomialBySkips(rng, n, p);
  if (np <= 500.0 && static_cast<double>(n) * std::log1p(-p) > -700.0) {
    return BinomialByInversion(rng, n, p);
  }
  // Exact divide and conquer via the (m+1)-st uniform order statistic
  // U ~ Beta(m+1, n-m): conditioned on U=u the draws below u are m iid
  // uniforms on (0,u) and the ones above are n-m-1 iid uniforms on (u,1).
  const uint64_t m = n / 2;
  const double u = Beta(rng, static_cast<double>(m) + 1.0,
                        static_cast<double>(n - m));
  if (p < u) return Binomial(rng, m, p / u);
  return m + 1 + Binomial(rng, n - m - 1, (p - u) / (1.0 - u));
}

// ---------------------------------------------------------------------------
// Zipf via rejection-inversion (Hormann & Derflinger 1996).

ZipfSampler::ZipfSampler(uint64_t n, double alpha) : n_(n), alpha_(alpha) {
  DWRS_CHECK_GE(n, 1u);
  DWRS_CHECK_GT(alpha, 0.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  s_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -alpha));
}

double ZipfSampler::H(double x) const {
  const double log_x = std::log(x);
  if (std::fabs(alpha_ - 1.0) < 1e-12) return log_x;
  return std::expm1((1.0 - alpha_) * log_x) / (1.0 - alpha_);
}

double ZipfSampler::HInverse(double x) const {
  if (std::fabs(alpha_ - 1.0) < 1e-12) return std::exp(x);
  return std::exp(std::log1p(x * (1.0 - alpha_)) / (1.0 - alpha_));
}

uint64_t ZipfSampler::Next(Rng& rng) const {
  if (n_ == 1) return 1;
  while (true) {
    const double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double kd = static_cast<double>(k);
    if (kd - x <= s_) return k;
    if (u >= H(kd + 0.5) - std::pow(kd, -alpha_)) return k;
  }
}

double MinUniformBelowProb(double weight, double tau) {
  DWRS_CHECK_GT(weight, 0.0);
  if (tau <= 0.0) return 0.0;
  if (tau >= 1.0) return 1.0;
  return -std::expm1(weight * std::log1p(-tau));
}

double TruncatedMinUniform(Rng& rng, double weight, double tau) {
  DWRS_CHECK_GT(weight, 0.0);
  DWRS_CHECK_GT(tau, 0.0);
  const double alpha = MinUniformBelowProb(weight, tau);
  const double u = rng.NextDouble();
  // Inverse CDF of (min of `weight` uniforms | min < tau).
  double x = -std::expm1(std::log1p(-u * alpha) / weight);
  if (x <= 0.0) x = std::numeric_limits<double>::min();
  if (x >= tau) x = std::nextafter(tau, 0.0);
  return x;
}

}  // namespace dwrs
