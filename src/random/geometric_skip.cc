// GeometricSkipFilter is header-only (every member is on a sampler hot
// path); this translation unit compiles the header standalone and
// anchors the module in the build.

#include "random/geometric_skip.h"

namespace dwrs {}  // namespace dwrs
