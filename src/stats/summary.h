// Streaming summary statistics (Welford) and empirical quantiles.

#ifndef DWRS_STATS_SUMMARY_H_
#define DWRS_STATS_SUMMARY_H_

#include <cstdint>
#include <vector>

namespace dwrs {

// Numerically stable running mean/variance/min/max accumulator.
class Summary {
 public:
  void Add(double x);
  void Merge(const Summary& other);

  uint64_t count() const { return count_; }
  double mean() const;
  double variance() const;  // sample variance (n-1 denominator)
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Stores samples and answers arbitrary quantile queries by sorting on
// demand. Fine for benchmark/test sized data.
class QuantileSketch {
 public:
  void Add(double x);
  // q in [0, 1]; linear interpolation between order statistics.
  double Quantile(double q) const;
  uint64_t count() const { return values_.size(); }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
};

}  // namespace dwrs

#endif  // DWRS_STATS_SUMMARY_H_
