#include "stats/ks_test.h"

#include <algorithm>
#include <cmath>

#include "stats/special_functions.h"
#include "util/check.h"

namespace dwrs {

KsResult KsTest(std::vector<double> samples,
                const std::function<double(double)>& cdf) {
  DWRS_CHECK(!samples.empty());
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  double d = 0.0;
  for (size_t i = 0; i < samples.size(); ++i) {
    const double f = cdf(samples[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max({d, std::fabs(f - lo), std::fabs(hi - f)});
  }
  KsResult result;
  result.statistic = d;
  // Asymptotic with the Stephens small-sample correction.
  const double sqrt_n = std::sqrt(n);
  const double t = d * (sqrt_n + 0.12 + 0.11 / sqrt_n);
  result.p_value = KolmogorovSurvival(t);
  return result;
}

double ExponentialCdf(double x) { return x <= 0.0 ? 0.0 : -std::expm1(-x); }

double UniformCdf(double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  return x;
}

}  // namespace dwrs
