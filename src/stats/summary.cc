#include "stats/summary.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace dwrs {

void Summary::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Summary::Merge(const Summary& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const double total = static_cast<double>(count_ + other.count_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ += delta * static_cast<double>(other.count_) / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double Summary::mean() const { return mean_; }

double Summary::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::min() const {
  DWRS_CHECK_GT(count_, 0u);
  return min_;
}

double Summary::max() const {
  DWRS_CHECK_GT(count_, 0u);
  return max_;
}

void QuantileSketch::Add(double x) {
  values_.push_back(x);
  sorted_ = false;
}

double QuantileSketch::Quantile(double q) const {
  DWRS_CHECK(!values_.empty());
  DWRS_CHECK(q >= 0.0 && q <= 1.0);
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  const double pos = q * static_cast<double>(values_.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

}  // namespace dwrs
