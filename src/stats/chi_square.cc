#include "stats/chi_square.h"

#include <algorithm>
#include <cmath>

#include "stats/special_functions.h"
#include "util/check.h"

namespace dwrs {

ChiSquareResult ChiSquareGoodnessOfFit(const std::vector<uint64_t>& observed,
                                       const std::vector<double>& expected,
                                       double min_expected) {
  DWRS_CHECK_EQ(observed.size(), expected.size());
  DWRS_CHECK(!observed.empty());

  // Pool adjacent cells until every pooled cell has expected >=
  // min_expected (standard validity requirement).
  std::vector<double> pooled_expected;
  std::vector<double> pooled_observed;
  double acc_e = 0.0;
  double acc_o = 0.0;
  for (size_t i = 0; i < observed.size(); ++i) {
    acc_e += expected[i];
    acc_o += static_cast<double>(observed[i]);
    if (acc_e >= min_expected) {
      pooled_expected.push_back(acc_e);
      pooled_observed.push_back(acc_o);
      acc_e = acc_o = 0.0;
    }
  }
  if (acc_e > 0.0 || acc_o > 0.0) {
    if (pooled_expected.empty()) {
      pooled_expected.push_back(acc_e);
      pooled_observed.push_back(acc_o);
    } else {
      pooled_expected.back() += acc_e;
      pooled_observed.back() += acc_o;
    }
  }

  ChiSquareResult result;
  if (pooled_expected.size() < 2) {
    // No resolution left after pooling; treat as a non-rejection.
    result.degrees_of_freedom = 0.0;
    result.p_value = 1.0;
    return result;
  }
  for (size_t i = 0; i < pooled_expected.size(); ++i) {
    const double diff = pooled_observed[i] - pooled_expected[i];
    result.statistic += diff * diff / pooled_expected[i];
  }
  result.degrees_of_freedom = static_cast<double>(pooled_expected.size() - 1);
  result.p_value =
      ChiSquareSurvival(result.statistic, result.degrees_of_freedom);
  return result;
}

ChiSquareResult ChiSquareAgainstProbabilities(
    const std::vector<uint64_t>& observed, const std::vector<double>& probs,
    uint64_t trials, double min_expected) {
  DWRS_CHECK_EQ(observed.size(), probs.size());
  std::vector<double> expected(probs.size());
  for (size_t i = 0; i < probs.size(); ++i) {
    expected[i] = probs[i] * static_cast<double>(trials);
  }
  return ChiSquareGoodnessOfFit(observed, expected, min_expected);
}

double BinomialTwoSidedPValue(uint64_t successes, uint64_t trials, double p) {
  DWRS_CHECK_GT(trials, 0u);
  DWRS_CHECK(p >= 0.0 && p <= 1.0);
  const double n = static_cast<double>(trials);
  const double mean = n * p;
  const double var = n * p * (1.0 - p);
  if (var == 0.0) {
    return (static_cast<double>(successes) == mean) ? 1.0 : 0.0;
  }
  // Normal approximation with continuity correction.
  const double diff = std::fabs(static_cast<double>(successes) - mean);
  const double z = std::max(0.0, diff - 0.5) / std::sqrt(var);
  return 2.0 * (1.0 - NormalCdf(z));
}

}  // namespace dwrs
