// Special functions needed for goodness-of-fit p-values.
//
// Self-contained implementations (Lanczos log-gamma, regularized
// incomplete gamma via series / continued fraction, Kolmogorov asymptotic
// distribution) so the statistical tests have no external dependencies.

#ifndef DWRS_STATS_SPECIAL_FUNCTIONS_H_
#define DWRS_STATS_SPECIAL_FUNCTIONS_H_

namespace dwrs {

// ln Gamma(x) for x > 0.
double LogGamma(double x);

// Regularized lower incomplete gamma P(a, x) = gamma(a,x)/Gamma(a).
double RegularizedGammaP(double a, double x);

// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double RegularizedGammaQ(double a, double x);

// Survival function of the chi-square distribution with df degrees of
// freedom: P(X >= x).
double ChiSquareSurvival(double x, double df);

// Kolmogorov distribution survival: P(sqrt(n) * D_n >= t) asymptotically,
// via the alternating theta-series.
double KolmogorovSurvival(double t);

// Standard normal CDF.
double NormalCdf(double x);

}  // namespace dwrs

#endif  // DWRS_STATS_SPECIAL_FUNCTIONS_H_
