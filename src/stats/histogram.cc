#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"

namespace dwrs {

Histogram::Histogram(double lo, double hi, int bins, bool log_scale)
    : lo_(lo), hi_(hi), log_scale_(log_scale), counts_(bins, 0) {
  DWRS_CHECK_GT(bins, 0);
  DWRS_CHECK_LT(lo, hi);
  if (log_scale) DWRS_CHECK_GT(lo, 0.0);
}

Histogram Histogram::Linear(double lo, double hi, int bins) {
  return Histogram(lo, hi, bins, /*log_scale=*/false);
}

Histogram Histogram::Logarithmic(double lo, double hi, int bins) {
  return Histogram(lo, hi, bins, /*log_scale=*/true);
}

int Histogram::BinFor(double x) const {
  const int bins = bin_count();
  double pos;
  if (log_scale_) {
    if (x <= lo_) return 0;
    pos = (std::log(x) - std::log(lo_)) / (std::log(hi_) - std::log(lo_));
  } else {
    pos = (x - lo_) / (hi_ - lo_);
  }
  int bin = static_cast<int>(pos * bins);
  return std::clamp(bin, 0, bins - 1);
}

void Histogram::Add(double x) {
  ++counts_[BinFor(x)];
  ++total_;
}

double Histogram::bin_lower(int bin) const {
  DWRS_CHECK(bin >= 0 && bin < bin_count());
  const double f = static_cast<double>(bin) / bin_count();
  if (log_scale_) {
    return std::exp(std::log(lo_) + f * (std::log(hi_) - std::log(lo_)));
  }
  return lo_ + f * (hi_ - lo_);
}

double Histogram::bin_upper(int bin) const {
  DWRS_CHECK(bin >= 0 && bin < bin_count());
  const double f = static_cast<double>(bin + 1) / bin_count();
  if (log_scale_) {
    return std::exp(std::log(lo_) + f * (std::log(hi_) - std::log(lo_)));
  }
  return lo_ + f * (hi_ - lo_);
}

std::string Histogram::ToString(int width) const {
  std::ostringstream out;
  uint64_t max_count = 1;
  for (uint64_t c : counts_) max_count = std::max(max_count, c);
  for (int b = 0; b < bin_count(); ++b) {
    const int bar =
        static_cast<int>(static_cast<double>(counts_[b]) / max_count * width);
    out << "[" << bin_lower(b) << ", " << bin_upper(b) << ") "
        << std::string(bar, '#') << " " << counts_[b] << "\n";
  }
  return out.str();
}

}  // namespace dwrs
