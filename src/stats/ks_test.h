// One-sample Kolmogorov-Smirnov test against an arbitrary CDF.

#ifndef DWRS_STATS_KS_TEST_H_
#define DWRS_STATS_KS_TEST_H_

#include <functional>
#include <vector>

namespace dwrs {

struct KsResult {
  double statistic = 0.0;  // sup |F_n - F|
  double p_value = 1.0;    // asymptotic Kolmogorov p-value
};

// `samples` may be unsorted; `cdf` must be the continuous target CDF.
KsResult KsTest(std::vector<double> samples,
                const std::function<double(double)>& cdf);

// Convenience CDFs.
double ExponentialCdf(double x);          // rate 1
double UniformCdf(double x);              // on [0,1]

}  // namespace dwrs

#endif  // DWRS_STATS_KS_TEST_H_
