#include "stats/special_functions.h"

#include <cmath>

#include "util/check.h"

namespace dwrs {
namespace {

// Series expansion of P(a, x); converges fast for x < a + 1.
double GammaPSeries(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int i = 0; i < 1000; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * 1e-16) break;
  }
  return sum * std::exp(-x + a * std::log(x) - LogGamma(a));
}

// Continued fraction for Q(a, x); converges fast for x > a + 1.
double GammaQContinuedFraction(double a, double x) {
  const double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 1000; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-16) break;
  }
  return std::exp(-x + a * std::log(x) - LogGamma(a)) * h;
}

}  // namespace

double LogGamma(double x) {
  DWRS_CHECK_GT(x, 0.0);
  // Lanczos approximation, g = 7, n = 9.
  static const double kCoefficients[] = {
      0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
      771.32342877765313,   -176.61502916214059, 12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula.
    return std::log(M_PI / std::sin(M_PI * x)) - LogGamma(1.0 - x);
  }
  const double z = x - 1.0;
  double sum = kCoefficients[0];
  for (int i = 1; i < 9; ++i) sum += kCoefficients[i] / (z + i);
  const double t = z + 7.5;
  return 0.5 * std::log(2.0 * M_PI) + (z + 0.5) * std::log(t) - t +
         std::log(sum);
}

double RegularizedGammaP(double a, double x) {
  DWRS_CHECK_GT(a, 0.0);
  DWRS_CHECK_GE(x, 0.0);
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  DWRS_CHECK_GT(a, 0.0);
  DWRS_CHECK_GE(x, 0.0);
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

double ChiSquareSurvival(double x, double df) {
  DWRS_CHECK_GT(df, 0.0);
  if (x <= 0.0) return 1.0;
  return RegularizedGammaQ(df / 2.0, x / 2.0);
}

double KolmogorovSurvival(double t) {
  if (t <= 0.0) return 1.0;
  if (t < 0.3) return 1.0;  // numerically 1 this far left
  double sum = 0.0;
  for (int j = 1; j <= 100; ++j) {
    const double sign = (j % 2 == 1) ? 1.0 : -1.0;
    const double term = sign * std::exp(-2.0 * j * j * t * t);
    sum += term;
    if (std::fabs(term) < 1e-16) break;
  }
  double q = 2.0 * sum;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  return q;
}

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

}  // namespace dwrs
