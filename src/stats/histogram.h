// Fixed-bin histogram with linear or logarithmic bins; used by benches to
// report message / error distributions.

#ifndef DWRS_STATS_HISTOGRAM_H_
#define DWRS_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dwrs {

class Histogram {
 public:
  // Linear bins over [lo, hi); values outside are clamped into the first /
  // last bin.
  static Histogram Linear(double lo, double hi, int bins);
  // Log-spaced bins over [lo, hi), lo > 0.
  static Histogram Logarithmic(double lo, double hi, int bins);

  void Add(double x);

  int bin_count() const { return static_cast<int>(counts_.size()); }
  uint64_t count(int bin) const { return counts_[bin]; }
  uint64_t total() const { return total_; }
  // Inclusive lower edge of a bin.
  double bin_lower(int bin) const;
  double bin_upper(int bin) const;
  int BinFor(double x) const;

  // Multi-line textual rendering for bench output.
  std::string ToString(int width = 40) const;

 private:
  Histogram(double lo, double hi, int bins, bool log_scale);

  double lo_;
  double hi_;
  bool log_scale_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace dwrs

#endif  // DWRS_STATS_HISTOGRAM_H_
