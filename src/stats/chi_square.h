// Chi-square goodness of fit, used to verify that samplers realize their
// claimed inclusion / draw probabilities.

#ifndef DWRS_STATS_CHI_SQUARE_H_
#define DWRS_STATS_CHI_SQUARE_H_

#include <cstdint>
#include <vector>

namespace dwrs {

struct ChiSquareResult {
  double statistic = 0.0;
  double degrees_of_freedom = 0.0;
  double p_value = 1.0;
};

// Goodness-of-fit of observed counts against expected counts (same total).
// Cells with expected < min_expected are pooled into their neighbor.
ChiSquareResult ChiSquareGoodnessOfFit(const std::vector<uint64_t>& observed,
                                       const std::vector<double>& expected,
                                       double min_expected = 5.0);

// Convenience: observed counts vs a probability vector and total trials.
ChiSquareResult ChiSquareAgainstProbabilities(
    const std::vector<uint64_t>& observed, const std::vector<double>& probs,
    uint64_t trials, double min_expected = 5.0);

// Binomial-proportion z-test p-value (two sided): observed successes out of
// trials against probability p.
double BinomialTwoSidedPValue(uint64_t successes, uint64_t trials, double p);

}  // namespace dwrs

#endif  // DWRS_STATS_CHI_SQUARE_H_
