// Umbrella header for the dwrs library: distributed weighted reservoir
// sampling (Jayaram, Sharma, Tirthapura, Woodruff — PODS 2019) and its
// applications.
//
//   DistributedWswor          — message-optimal weighted SWOR (Theorem 3)
//   NaiveDistributedWswor     — Θ(ks log W) baseline (Section 1.2)
//   DistributedWeightedSwr    — weighted SWR via duplication (Corollary 1)
//   DistributedUnweightedSwor — unweighted substrate ([11,14,31])
//   ResidualHeavyHitterTracker— residual heavy hitters (Theorem 4)
//   L1Tracker                 — count tracking (Theorem 6)
//   DeterministicL1Tracker / SqrtkL1Tracker — baselines (Section 5 table)
//   SlidingWindowWswor / DistributedWindowWswor — sliding windows (§6)
//   CascadeSampler            — [7]'s chained SWOR
//   swor estimators           — subset sums from the coordinator sample
//   engine::Engine            — concurrent execution backend (threaded
//                               sites, batched ingestion; src/engine/)
//   engine::ShardedEngine     — sharded multi-coordinator topology with
//   ShardedWswor                exact sample merge (MergeableSample)
//   faults::FaultyRun         — deterministic fault injection + crash/
//   faults::ShardedFaultyRun    loss-tolerant session layer (src/faults/)

#ifndef DWRS_DWRS_H_
#define DWRS_DWRS_H_

#include "core/naive.h"
#include "core/sharded_sampler.h"
#include "engine/engine.h"
#include "engine/sharded_engine.h"
#include "core/sampler.h"
#include "estimators/swor_estimators.h"
#include "faults/harness.h"
#include "hh/exact_hh.h"
#include "hh/misra_gries.h"
#include "hh/residual_hh.h"
#include "hh/space_saving.h"
#include "hh/swr_hh.h"
#include "l1/deterministic_l1.h"
#include "l1/l1_tracker.h"
#include "l1/sqrtk_l1.h"
#include "sampling/cascade.h"
#include "sampling/efraimidis_spirakis.h"
#include "sampling/priority_sampling.h"
#include "sampling/reservoir.h"
#include "sampling/weighted_swr.h"
#include "stream/workload.h"
#include "swr/distributed_weighted_swr.h"
#include "unweighted/distributed_swor.h"
#include "window/distributed_window.h"
#include "window/sliding_window_swor.h"

#endif  // DWRS_DWRS_H_
