// Distributed weighted sampling with replacement (Corollary 1): the
// duplication reduction to unweighted SWR, realized without materializing
// duplicates — an item of weight w plays the min of w iid uniforms in
// each of the s races, and the per-item work is a single Binomial draw
// plus one message per winning race.

#ifndef DWRS_SWR_DISTRIBUTED_WEIGHTED_SWR_H_
#define DWRS_SWR_DISTRIBUTED_WEIGHTED_SWR_H_

#include <cstdint>

#include "unweighted/distributed_swr.h"

namespace dwrs {

class DistributedWeightedSwr {
 public:
  // Weights must be >= 1 and are conceptually integer (the reduction
  // duplicates an item w times); the race mathematics extend to real
  // w >= 1 unchanged.
  DistributedWeightedSwr(int num_sites, int sample_size, uint64_t seed,
                         int delivery_delay = 0);

  void Observe(int site, const Item& item) { impl_.Observe(site, item); }
  void Run(const Workload& workload,
           const std::function<void(uint64_t)>& on_step = nullptr) {
    impl_.Run(workload, on_step);
  }

  std::vector<Item> Sample() const { return impl_.Sample(); }
  size_t DistinctInSample() const { return impl_.DistinctInSample(); }
  const sim::MessageStats& stats() const { return impl_.stats(); }

 private:
  DistributedSwr impl_;
};

// Corollary 1 bound (up to constants): (k + s log s) log(W) / log(2+k/s).
double Corollary1MessageBound(int num_sites, int sample_size,
                              double total_weight);

}  // namespace dwrs

#endif  // DWRS_SWR_DISTRIBUTED_WEIGHTED_SWR_H_
