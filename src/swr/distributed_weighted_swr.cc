#include "swr/distributed_weighted_swr.h"

#include <cmath>

namespace dwrs {
namespace {

SlottedSwrConfig MakeConfig(int num_sites, int sample_size, uint64_t seed,
                            int delivery_delay) {
  SlottedSwrConfig config;
  config.num_sites = num_sites;
  config.sample_size = sample_size;
  config.seed = seed;
  config.delivery_delay = delivery_delay;
  config.weighted = true;
  return config;
}

}  // namespace

DistributedWeightedSwr::DistributedWeightedSwr(int num_sites, int sample_size,
                                               uint64_t seed,
                                               int delivery_delay)
    : impl_(MakeConfig(num_sites, sample_size, seed, delivery_delay)) {}

double Corollary1MessageBound(int num_sites, int sample_size,
                              double total_weight) {
  const double k = num_sites;
  const double s = sample_size;
  return (k + s * std::log(std::max(2.0, s))) *
         std::log(std::max(2.0, total_weight)) / std::log(2.0 + k / s);
}

}  // namespace dwrs
