// THE naming schema: every counter struct in the tree exports to an
// obs::Snapshot through exactly one function here, so field names can
// never drift between layers again (sim::MessageStats::ToString,
// engine::EngineStats::ToString, bench JSON rows, dwrs_cli stats and
// the registry all emit from these).
//
// Naming convention: bare canonical leaf names (matching the struct
// fields), hierarchical '/' prefixes supplied by the caller when two
// layers meet in one snapshot ("engine", "faults", "query"). A uint64
// counter stays uint64 end to end — the snapshot is bit-exact against
// the struct it was built from, which is what the registry-vs-legacy
// equality test pins.

#ifndef DWRS_OBS_SCHEMA_H_
#define DWRS_OBS_SCHEMA_H_

#include <string>

#include "obs/metrics.h"

namespace dwrs::sim {
struct MessageStats;
struct SiteHotPathCounters;
}  // namespace dwrs::sim

namespace dwrs::engine {
struct EngineStats;
}  // namespace dwrs::engine

namespace dwrs::faults {
struct RunReport;
struct FaultCounters;
}  // namespace dwrs::faults

namespace dwrs::query {
struct QueryServiceStats;
}  // namespace dwrs::query

namespace dwrs::obs {

// messages, site_to_coord, coord_to_site, broadcast_events, words, plus
// by_type/<i> for nonzero slots.
void AppendMessageStats(const sim::MessageStats& stats,
                        const std::string& prefix, Snapshot* out);

// keys_decided, key_bits_consumed, skips_taken.
void AppendHotPathCounters(const sim::SiteHotPathCounters& counters,
                           const std::string& prefix, Snapshot* out);

// The message fields above, then items_ingested, batches_ingested,
// ingest_stalls, upstream_stalls, quiesces, batches_recycled,
// batch_pool_misses and the hot-path counters. Quiesce points only
// (relaxed reads, like EngineStats itself).
void AppendEngineStats(const engine::EngineStats& stats,
                       const std::string& prefix, Snapshot* out);

// cache_hits, cache_misses, cache_invalidations,
// snapshot_copies_avoided, slo_waits, slo_timeouts (the merge-cache /
// freshness-SLO counters of query::QueryService).
void AppendQueryServiceStats(const query::QueryServiceStats& stats,
                             const std::string& prefix, Snapshot* out);

// Every RunReport field (transcript_hash, delivered, crashes, session
// and fault-transport counters, clean as 0/1).
void AppendFaultReport(const faults::RunReport& report,
                       const std::string& prefix, Snapshot* out);

// forwarded, dropped, duplicated, delayed.
void AppendFaultCounters(const faults::FaultCounters& counters,
                         const std::string& prefix, Snapshot* out);

}  // namespace dwrs::obs

#endif  // DWRS_OBS_SCHEMA_H_
