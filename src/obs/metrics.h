// Unified metrics registry: named counters, gauges and latency
// histograms with pre-registered handles, plus the Snapshot value type
// every layer's counters are exported through.
//
// Hot-path contract: a handle obtained from Registry::GetCounter /
// GetGauge / GetHistogram is a stable pointer for the registry's
// lifetime; updating through it is a relaxed atomic operation with zero
// allocation. Registration (name lookup) takes a mutex and may
// allocate — do it once at setup, never per event.
//
// Snapshot is the single export path: an ordered list of
// (hierarchical name, value) pairs where uint64 counters stay uint64
// (bit-exact against the legacy counter structs — the equality the obs
// tests pin) and derived rates/latencies are doubles. One snapshot
// serializes to JSON (dwrs_cli stats, bench rows) or to the "k=v"
// text every ToString in the tree now routes through (obs/schema.h).

#ifndef DWRS_OBS_METRICS_H_
#define DWRS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "stats/histogram.h"

namespace dwrs::obs {

// --- snapshot ---------------------------------------------------------

struct SnapshotValue {
  enum class Kind { kUint, kDouble };
  Kind kind = Kind::kUint;
  uint64_t u = 0;
  double d = 0.0;
};

// Ordered (name, value) export. Names are hierarchical with '/'
// separators: "messages/site_to_coord", "engine/ingest_stalls",
// "faults/retransmits_sent", "query/latency_us/p99".
class Snapshot {
 public:
  void Append(const std::string& name, uint64_t value) {
    SnapshotValue v;
    v.kind = SnapshotValue::Kind::kUint;
    v.u = value;
    entries_.emplace_back(name, v);
  }
  void Append(const std::string& name, double value) {
    SnapshotValue v;
    v.kind = SnapshotValue::Kind::kDouble;
    v.d = value;
    entries_.emplace_back(name, v);
  }

  const std::vector<std::pair<std::string, SnapshotValue>>& entries() const {
    return entries_;
  }

  // nullptr when absent.
  const SnapshotValue* Find(const std::string& name) const;

  // {"name": value, ...} with insertion order preserved; uint64 values
  // are emitted as integers (no double rounding).
  std::string ToJson() const;

  // "name=value name=value ..." — the human-readable form the legacy
  // ToString methods now produce via obs/schema.h.
  std::string ToText() const;

 private:
  std::vector<std::pair<std::string, SnapshotValue>> entries_;
};

// --- instruments ------------------------------------------------------

class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Set(uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Log-spaced latency histogram with relaxed atomic bins. The bin layout
// is delegated to stats/histogram (the same edges its text renderer and
// quantile logic use); only the mutation path is atomic. Record() is
// wait-free: one BinFor computation plus three relaxed RMWs.
class LatencyHistogram {
 public:
  // [lo, hi) in the caller's unit (the registry convention is
  // microseconds for "*_us" names); values outside clamp to the edge
  // bins.
  LatencyHistogram(double lo, double hi, int bins);

  void Record(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    const uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  // Upper edge of the bin holding the q-quantile (0 when empty).
  double Quantile(double q) const;

  // Appends count/sum/mean/p50/p99/max-bin under `prefix`.
  void AppendTo(const std::string& prefix, Snapshot* out) const;

 private:
  const Histogram layout_;  // bin-edge math only; its counts stay zero
  std::vector<std::atomic<uint64_t>> bins_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// --- registry ---------------------------------------------------------

// Owns instruments by hierarchical name; handles stay valid for the
// registry's lifetime. Collectors let layers whose counters live in
// their own structs (EngineStats, RunReport, MessageStats) contribute to
// the registry's snapshot without double bookkeeping on their hot
// paths: a collector runs at Collect() time and appends through
// obs/schema.h.
class Registry {
 public:
  // Process-wide instance (the CLI's and benches' default); independent
  // registries can be constructed for tests.
  static Registry& Global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Idempotent by name: the second Get for a name returns the first
  // handle (histogram layout parameters are ignored on rebind).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  LatencyHistogram* GetHistogram(const std::string& name, double lo = 1.0,
                                 double hi = 1e6, int bins = 48);

  using CollectorFn = std::function<void(Snapshot*)>;
  void AddCollector(CollectorFn fn);
  void ClearCollectors();

  // Registered instruments (registration order), then collectors (added
  // order). Safe to call from any thread; the values themselves are
  // exact only at quiesce points, like every relaxed counter in the
  // tree.
  Snapshot Collect() const;
  std::string ToJson() const { return Collect().ToJson(); }

 private:
  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> gauges_;
  std::vector<std::pair<std::string, std::unique_ptr<LatencyHistogram>>>
      histograms_;
  std::vector<CollectorFn> collectors_;
};

}  // namespace dwrs::obs

#endif  // DWRS_OBS_METRICS_H_
