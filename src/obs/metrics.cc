#include "obs/metrics.h"

#include "util/check.h"
#include "util/json.h"

namespace dwrs::obs {

// --- Snapshot ---------------------------------------------------------

const SnapshotValue* Snapshot::Find(const std::string& name) const {
  for (const auto& [entry_name, value] : entries_) {
    if (entry_name == name) return &value;
  }
  return nullptr;
}

std::string Snapshot::ToJson() const {
  std::string out = "{";
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (i != 0) out += ", ";
    out += util::JsonQuote(entries_[i].first);
    out += ": ";
    const SnapshotValue& v = entries_[i].second;
    out += v.kind == SnapshotValue::Kind::kUint ? std::to_string(v.u)
                                                : util::JsonNumber(v.d);
  }
  out += "}";
  return out;
}

std::string Snapshot::ToText() const {
  std::string out;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (i != 0) out += ' ';
    out += entries_[i].first;
    out += '=';
    const SnapshotValue& v = entries_[i].second;
    out += v.kind == SnapshotValue::Kind::kUint ? std::to_string(v.u)
                                                : util::JsonNumber(v.d);
  }
  return out;
}

// --- LatencyHistogram -------------------------------------------------

LatencyHistogram::LatencyHistogram(double lo, double hi, int bins)
    : layout_(Histogram::Logarithmic(lo, hi, bins)),
      bins_(static_cast<size_t>(bins)) {}

void LatencyHistogram::Record(double value) {
  bins_[static_cast<size_t>(layout_.BinFor(value))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

double LatencyHistogram::Quantile(double q) const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  const uint64_t rank =
      static_cast<uint64_t>(q * static_cast<double>(n - 1)) + 1;
  uint64_t seen = 0;
  for (size_t b = 0; b < bins_.size(); ++b) {
    seen += bins_[b].load(std::memory_order_relaxed);
    if (seen >= rank) return layout_.bin_upper(static_cast<int>(b));
  }
  return layout_.bin_upper(static_cast<int>(bins_.size()) - 1);
}

void LatencyHistogram::AppendTo(const std::string& prefix,
                                Snapshot* out) const {
  out->Append(prefix + "/count", count());
  out->Append(prefix + "/sum", sum());
  out->Append(prefix + "/mean", mean());
  out->Append(prefix + "/p50", Quantile(0.50));
  out->Append(prefix + "/p99", Quantile(0.99));
}

// --- Registry ---------------------------------------------------------

Registry& Registry::Global() {
  static Registry* registry = new Registry();
  return *registry;
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [n, c] : counters_) {
    if (n == name) return c.get();
  }
  counters_.emplace_back(name, std::make_unique<Counter>());
  return counters_.back().second.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [n, g] : gauges_) {
    if (n == name) return g.get();
  }
  gauges_.emplace_back(name, std::make_unique<Gauge>());
  return gauges_.back().second.get();
}

LatencyHistogram* Registry::GetHistogram(const std::string& name, double lo,
                                         double hi, int bins) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [n, h] : histograms_) {
    if (n == name) return h.get();
  }
  histograms_.emplace_back(name,
                           std::make_unique<LatencyHistogram>(lo, hi, bins));
  return histograms_.back().second.get();
}

void Registry::AddCollector(CollectorFn fn) {
  DWRS_CHECK(fn != nullptr);
  std::lock_guard<std::mutex> lock(mutex_);
  collectors_.push_back(std::move(fn));
}

void Registry::ClearCollectors() {
  std::lock_guard<std::mutex> lock(mutex_);
  collectors_.clear();
}

Snapshot Registry::Collect() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot out;
  for (const auto& [name, counter] : counters_) {
    out.Append(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    out.Append(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    histogram->AppendTo(name, &out);
  }
  for (const CollectorFn& fn : collectors_) fn(&out);
  return out;
}

}  // namespace dwrs::obs
