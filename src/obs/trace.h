// Flight recorder: per-thread lock-free ring buffers of compact trace
// events, drained at quiesce points and exportable as Chrome
// `trace_event` JSON (chrome://tracing, Perfetto).
//
// Design constraints, in order:
//   1. Disabled tracing must cost nothing measurable on the gated hot
//      paths: every instrumentation site is `if (TracingEnabled())
//      Emit(...)` — one relaxed atomic load and a predictable branch,
//      no allocation, no TLS touch. Compiling with -DDWRS_TRACING=OFF
//      turns TracingEnabled() into `false` and the whole site folds
//      away.
//   2. Enabled tracing must not serialize the engine's threads: each
//      thread records into its own fixed-capacity ring (registered on
//      first use per enable-generation, guarded by a mutex taken once
//      per thread per generation). The slot write is plain, the head
//      advance is a release store; rings are overwritten on wrap with a
//      per-ring dropped count, never resized, never freed while the
//      process lives — which is what makes the drain safe without
//      hazard pointers.
//   3. The event stream must be deterministic per seed under the
//      step-synchronous backends: deterministic mode zeroes wall-clock
//      timestamps at record time, and CanonicalTranscript() reduces a
//      collected trace to the protocol-level event multiset (sorted on
//      every payload field, timestamps and thread interleaving
//      excluded) that the sim and engine backends must agree on.
//
// Threading contract: Record/Emit may run from any thread at any time
// while enabled. Enable/Disable/Collect/Reset/ExportChromeTrace are
// quiesce-point operations — the caller must guarantee no thread is
// concurrently recording (engine flushed or shut down, simulator
// between steps). The engine's pushed/done quiesce handshake provides
// the happens-before edge that makes the drained ring contents (and the
// relaxed drop counters) visible, mirroring EngineStats.

#ifndef DWRS_OBS_TRACE_H_
#define DWRS_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dwrs::obs {

// Every instrumented occurrence in the stack. Values are stable across
// runs (they participate in the canonical transcript ordering); append
// new types at the end.
enum class EventType : uint16_t {
  kItemSpan = 1,        // engine site worker: one ingestion batch drained
  kMsgSend = 2,         // session/protocol send entering the transport
  kMsgRecv = 3,         // session layer received (pre-dedup/gap check)
  kMsgDeliver = 4,      // coordinator session delivered in order
  kDupDrop = 5,         // duplicate suppressed by the coordinator session
  kStaleEpochDrop = 6,  // pre-crash leftover suppressed
  kGapNack = 7,         // gap detected, nack sent
  kThresholdBump = 8,   // coordinator announced a higher epoch threshold
  kBackpressureStall = 9,  // site worker blocked on the coordinator inbox
  kIngestStall = 10,       // feeder blocked on a full site item queue
  kSnapshotPublish = 11,   // live-query snapshot published
  kQueryServe = 12,        // QueryService::Query served
  kFaultDrop = 13,         // fault layer dropped a message
  kFaultDup = 14,          // fault layer duplicated a message
  kFaultDelay = 15,        // fault layer withheld a message
  kCrash = 16,             // site crashed (volatile state wiped)
  kRestart = 17,           // site restarted (new epoch)
  kRetransmit = 18,        // go-back-N retransmission of an unacked message
  kEpochBump = 19,         // coordinator session detected a site restart
  kResyncSend = 20,        // one resync message sent to a reborn site
  kSiteScheduled = 21,     // scheduler dispatched a logical site (a=worker)
  kSteal = 22,             // worker stole a runnable site (a=thief worker)
  kWorkerPark = 23,        // pool worker parked, nothing runnable (a=worker)
  kWalAppend = 24,         // durability: one record framed into the WAL
  kWalFsync = 25,          // durability: group commit flushed (a=bytes)
  kCheckpointWrite = 26,   // durability: checkpoint file written (a=seq)
  kRecoveryReplay = 27,    // durability: WAL tail replayed (a=records)
  kQueryWait = 28,         // freshness-SLO wait (a=min_version, dir=timeout)
};

const char* EventTypeName(EventType type);

// Fixed-layout record; every field is optional except `type`. The
// convention mirrors sim::Payload: `a` carries an id/count/level, `x` a
// weight/threshold/latency, seq/epoch the reliability stamps.
struct TraceEvent {
  int64_t ts_ns = 0;   // since Enable(); 0 in deterministic mode
  uint64_t a = 0;      // item id, batch size, publish seq, worker id
  double x = 0.0;      // weight, threshold, latency in us
  uint64_t step = 0;   // backend step clock when cheaply available
  uint32_t dur_ns = 0;  // span duration (kItemSpan, kQueryServe)
  uint32_t seq = 0;
  uint32_t epoch = 0;
  // int32: site ids must cover the virtualized-site regime (k = 10^5..
  // 10^6), which overflowed the old int16 field into negative ids.
  int32_t site = -1;  // -1: coordinator/global scope
  EventType type = EventType::kItemSpan;
  uint16_t msg_type = 0;  // sim::Payload::type
  int16_t shard = 0;
  uint8_t dir = 0;  // 0 none, 1 site->coord, 2 coord->site
};

// The record is written per item batch and per message on every hot
// path; keep it one cache line pair.
static_assert(sizeof(TraceEvent) == 56, "TraceEvent grew past 56 bytes");

namespace detail {
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

// The disabled-path cost of every instrumentation site. With tracing
// compiled out this is constant-false and the site disappears.
inline bool TracingEnabled() {
#ifdef DWRS_TRACING_DISABLED
  return false;
#else
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
#endif
}

// Records `event` into the calling thread's ring, stamping ts_ns (unless
// deterministic mode). Call only under a TracingEnabled() check — the
// recorder re-checks, but the caller's check is what keeps the disabled
// path free.
void Emit(TraceEvent event);

class FlightRecorder {
 public:
  static FlightRecorder& Get();

  // Quiesce-point control surface (see the threading contract above).
  // `ring_capacity` is per thread, in events; `deterministic` zeroes
  // timestamps so two same-seed step-synchronous runs record identical
  // events. Enable resets previously collected state and starts a new
  // ring generation.
  void Enable(size_t ring_capacity = 1 << 14, bool deterministic = false);
  void Disable();

  bool deterministic() const {
    return deterministic_.load(std::memory_order_relaxed);
  }

  // Drains every ring (oldest surviving event first per ring, rings in
  // registration order) without disturbing them; callable repeatedly.
  std::vector<TraceEvent> Collect() const;

  // Events overwritten on ring wrap since Enable, summed over rings.
  uint64_t dropped() const;
  size_t ring_count() const;

  // The full collected trace as Chrome trace_event JSON
  // ({"traceEvents": [...]}): spans (kItemSpan, kQueryServe) as "X"
  // events, everything else as instants; pid = shard, tid = ring index.
  // In deterministic mode a per-ring event counter stands in for the
  // zeroed wall clock so viewers still order events.
  std::string ExportChromeTrace() const;

  // Implementation detail, public only for the thread-local cache in
  // trace.cc. Not part of the API.
  struct Ring {
    explicit Ring(size_t capacity) : slots(capacity) {}
    std::vector<TraceEvent> slots;
    // Monotone write index; slot (head % capacity) is written plainly,
    // then head advances with a release store the quiesce-point reader's
    // acquire load pairs with.
    std::atomic<uint64_t> head{0};
  };

 private:
  friend void Emit(TraceEvent event);

  FlightRecorder() = default;
  Ring* RingForThisThread();

  mutable std::mutex mutex_;  // ring registration + control surface
  std::vector<std::unique_ptr<Ring>> rings_;
  // Rings of previous enable-generations: kept alive (never freed) so a
  // thread-local pointer cached by a thread that outlived a Disable can
  // never dangle; the generation check keeps it from being written.
  std::vector<std::unique_ptr<Ring>> retired_;
  // Read by Emit without the mutex (relaxed — recording threads are
  // started, or handshaken with, after Enable by contract).
  std::atomic<uint64_t> generation_{0};
  std::atomic<bool> deterministic_{false};
  std::atomic<int64_t> epoch_ns_{0};  // Enable() wall-clock origin
  size_t ring_capacity_ = 1 << 14;
};

// Protocol-level event multiset for determinism checks: keeps only the
// event types whose occurrence is a function of (seeds, workload) on a
// step-synchronous backend — session and fault-layer events plus
// threshold bumps — and sorts them on every payload field with ts_ns,
// step, dur_ns and thread interleaving excluded. Two same-seed runs on
// the sim and step-synchronous engine backends produce equal canonical
// transcripts.
std::vector<TraceEvent> CanonicalTranscript(std::vector<TraceEvent> events);

// Field-wise equality on the canonical fields (everything except ts_ns,
// step, dur_ns).
bool CanonicalEquals(const TraceEvent& a, const TraceEvent& b);

}  // namespace dwrs::obs

#endif  // DWRS_OBS_TRACE_H_
