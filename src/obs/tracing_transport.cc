#include "obs/tracing_transport.h"

#include "util/check.h"

namespace dwrs::obs {

TracingTransport::TracingTransport(sim::Transport* inner, int shard)
    : inner_(inner), shard_(shard) {
  DWRS_CHECK(inner != nullptr);
}

void TracingTransport::Record(int site, uint8_t dir, const sim::Payload& msg) {
  TraceEvent event;
  event.type = EventType::kMsgSend;
  event.shard = static_cast<int16_t>(shard_);
  event.site = site;
  event.dir = dir;
  event.msg_type = static_cast<uint16_t>(msg.type);
  event.seq = msg.seq;
  event.epoch = msg.epoch;
  event.a = msg.a;
  event.x = msg.x;
  event.step = inner_->step();
  Emit(event);
}

void TracingTransport::SendToCoordinator(int site, const sim::Payload& msg) {
  if (TracingEnabled()) Record(site, /*dir=*/1, msg);
  inner_->SendToCoordinator(site, msg);
}

void TracingTransport::SendToSite(int site, const sim::Payload& msg) {
  if (TracingEnabled()) Record(site, /*dir=*/2, msg);
  inner_->SendToSite(site, msg);
}

void TracingTransport::Broadcast(const sim::Payload& msg) {
  if (TracingEnabled()) Record(/*site=*/-1, /*dir=*/2, msg);
  inner_->Broadcast(msg);
}

}  // namespace dwrs::obs
