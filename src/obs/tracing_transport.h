// TracingTransport: a sim::Transport decorator that records a kMsgSend
// flight-recorder event for every message passing through, then
// forwards unchanged. Composes with FaultyTransport — the fault harness
// stacks sessions -> TracingTransport -> FaultyTransport -> backend, so
// the trace shows each message entering the network BEFORE the fault
// layer's verdict (whose own kFaultDrop/kFaultDup/kFaultDelay events
// complete the causality chain send -> [faults] -> recv).
//
// Cost: one relaxed load per send while tracing is disabled (the
// decorator is always in the stack under the fault harness; only the
// recording is conditional).

#ifndef DWRS_OBS_TRACING_TRANSPORT_H_
#define DWRS_OBS_TRACING_TRANSPORT_H_

#include "obs/trace.h"
#include "sim/message.h"
#include "sim/node.h"

namespace dwrs::obs {

class TracingTransport : public sim::Transport {
 public:
  explicit TracingTransport(sim::Transport* inner, int shard = 0);

  void SendToCoordinator(int site, const sim::Payload& msg) override;
  void SendToSite(int site, const sim::Payload& msg) override;
  void Broadcast(const sim::Payload& msg) override;
  uint64_t step() const override { return inner_->step(); }

  void set_shard(int shard) { shard_ = shard; }

 private:
  void Record(int site, uint8_t dir, const sim::Payload& msg);

  sim::Transport* const inner_;
  int shard_;
};

}  // namespace dwrs::obs

#endif  // DWRS_OBS_TRACING_TRANSPORT_H_
