#include "obs/trace.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <tuple>

#include "util/check.h"
#include "util/json.h"

namespace dwrs::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Thread-local ring cache. `generation` ties the cached pointer to one
// Enable() call: a stale cache (from before the latest Enable) is
// ignored and re-registered, and the pointed-to ring of a previous
// generation is retired but never freed, so the stale pointer itself is
// always safe to hold.
struct ThreadRingCache {
  FlightRecorder::Ring* ring = nullptr;
  uint64_t generation = 0;
};
thread_local ThreadRingCache t_ring_cache;

// Fields that define an event's identity for determinism comparisons —
// everything except ts_ns, step and dur_ns (wall clock and batching
// artifacts that legitimately differ across backends).
auto CanonicalKey(const TraceEvent& e) {
  return std::make_tuple(static_cast<uint16_t>(e.type), e.shard, e.site,
                         e.dir, e.msg_type, e.epoch, e.seq, e.a,
                         std::bit_cast<uint64_t>(e.x));
}

}  // namespace

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kItemSpan: return "item_span";
    case EventType::kMsgSend: return "msg_send";
    case EventType::kMsgRecv: return "msg_recv";
    case EventType::kMsgDeliver: return "msg_deliver";
    case EventType::kDupDrop: return "dup_drop";
    case EventType::kStaleEpochDrop: return "stale_epoch_drop";
    case EventType::kGapNack: return "gap_nack";
    case EventType::kThresholdBump: return "threshold_bump";
    case EventType::kBackpressureStall: return "backpressure_stall";
    case EventType::kIngestStall: return "ingest_stall";
    case EventType::kSnapshotPublish: return "snapshot_publish";
    case EventType::kQueryServe: return "query_serve";
    case EventType::kFaultDrop: return "fault_drop";
    case EventType::kFaultDup: return "fault_dup";
    case EventType::kFaultDelay: return "fault_delay";
    case EventType::kCrash: return "crash";
    case EventType::kRestart: return "restart";
    case EventType::kRetransmit: return "retransmit";
    case EventType::kEpochBump: return "epoch_bump";
    case EventType::kResyncSend: return "resync_send";
    case EventType::kSiteScheduled: return "site_scheduled";
    case EventType::kSteal: return "steal";
    case EventType::kWorkerPark: return "worker_park";
    case EventType::kWalAppend: return "wal_append";
    case EventType::kWalFsync: return "wal_fsync";
    case EventType::kCheckpointWrite: return "checkpoint_write";
    case EventType::kRecoveryReplay: return "recovery_replay";
    case EventType::kQueryWait: return "query_wait";
  }
  return "unknown";
}

FlightRecorder& FlightRecorder::Get() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

void FlightRecorder::Enable(size_t ring_capacity, bool deterministic) {
  DWRS_CHECK_GT(ring_capacity, 0u);
  std::lock_guard<std::mutex> lock(mutex_);
  // Retire (but keep alive) the previous generation's rings: a thread
  // still holding a cached pointer sees its generation mismatch and
  // re-registers before touching anything.
  for (auto& ring : rings_) retired_.push_back(std::move(ring));
  rings_.clear();
  generation_.fetch_add(1, std::memory_order_relaxed);
  ring_capacity_ = ring_capacity;
  deterministic_.store(deterministic, std::memory_order_relaxed);
  epoch_ns_.store(NowNs(), std::memory_order_relaxed);
  detail::g_trace_enabled.store(true, std::memory_order_release);
}

void FlightRecorder::Disable() {
  detail::g_trace_enabled.store(false, std::memory_order_release);
}

FlightRecorder::Ring* FlightRecorder::RingForThisThread() {
  std::lock_guard<std::mutex> lock(mutex_);
  rings_.push_back(std::make_unique<Ring>(ring_capacity_));
  t_ring_cache.ring = rings_.back().get();
  t_ring_cache.generation = generation_.load(std::memory_order_relaxed);
  return t_ring_cache.ring;
}

void Emit(TraceEvent event) {
  if (!TracingEnabled()) return;
  FlightRecorder& recorder = FlightRecorder::Get();
  FlightRecorder::Ring* ring = t_ring_cache.ring;
  if (ring == nullptr ||
      t_ring_cache.generation !=
          recorder.generation_.load(std::memory_order_relaxed)) {
    // First event from this thread this generation: one mutex
    // acquisition, then lock-free forever after.
    ring = recorder.RingForThisThread();
  }
  if (!recorder.deterministic_.load(std::memory_order_relaxed)) {
    event.ts_ns = NowNs() - recorder.epoch_ns_.load(std::memory_order_relaxed);
  }
  const uint64_t head = ring->head.load(std::memory_order_relaxed);
  ring->slots[head % ring->slots.size()] = event;
  ring->head.store(head + 1, std::memory_order_release);
}

std::vector<TraceEvent> FlightRecorder::Collect() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out;
  for (const auto& ring : rings_) {
    const uint64_t head = ring->head.load(std::memory_order_acquire);
    const uint64_t cap = ring->slots.size();
    const uint64_t first = head > cap ? head - cap : 0;
    for (uint64_t i = first; i < head; ++i) {
      out.push_back(ring->slots[i % cap]);
    }
  }
  return out;
}

uint64_t FlightRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t total = 0;
  for (const auto& ring : rings_) {
    const uint64_t head = ring->head.load(std::memory_order_acquire);
    const uint64_t cap = ring->slots.size();
    if (head > cap) total += head - cap;
  }
  return total;
}

size_t FlightRecorder::ring_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rings_.size();
}

std::string FlightRecorder::ExportChromeTrace() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"traceEvents\": [";
  bool first_event = true;
  char buf[256];
  for (size_t tid = 0; tid < rings_.size(); ++tid) {
    const Ring& ring = *rings_[tid];
    const uint64_t head = ring.head.load(std::memory_order_acquire);
    const uint64_t cap = ring.slots.size();
    const uint64_t first = head > cap ? head - cap : 0;
    for (uint64_t i = first; i < head; ++i) {
      const TraceEvent& e = ring.slots[i % cap];
      // Deterministic mode has no wall clock; a per-ring sequence number
      // keeps the viewer's ordering sane.
      const double ts_us = deterministic_.load(std::memory_order_relaxed)
                               ? static_cast<double>(i - first)
                               : static_cast<double>(e.ts_ns) / 1000.0;
      const bool span = e.dur_ns > 0;
      const double dur_us = static_cast<double>(e.dur_ns) / 1000.0;
      if (!first_event) out += ",";
      first_event = false;
      std::snprintf(buf, sizeof(buf),
                    "\n {\"name\": \"%s\", \"ph\": \"%s\", \"pid\": %d, "
                    "\"tid\": %zu, \"ts\": %.3f",
                    EventTypeName(e.type), span ? "X" : "i",
                    static_cast<int>(e.shard), tid, ts_us);
      out += buf;
      if (span) {
        std::snprintf(buf, sizeof(buf), ", \"dur\": %.3f", dur_us);
        out += buf;
      } else {
        out += ", \"s\": \"t\"";
      }
      std::snprintf(
          buf, sizeof(buf),
          ", \"args\": {\"shard\": %d, \"site\": %d, \"dir\": %u, "
          "\"msg_type\": %u, \"seq\": %u, \"epoch\": %u, \"step\": %llu, "
          "\"a\": %llu, \"x\": %s}}",
          static_cast<int>(e.shard), static_cast<int>(e.site),
          static_cast<unsigned>(e.dir), static_cast<unsigned>(e.msg_type),
          e.seq, e.epoch, static_cast<unsigned long long>(e.step),
          static_cast<unsigned long long>(e.a),
          util::JsonNumber(e.x).c_str());
      out += buf;
    }
  }
  out += "\n]}\n";
  return out;
}

std::vector<TraceEvent> CanonicalTranscript(std::vector<TraceEvent> events) {
  // Deterministic-per-seed types only: session, fault and protocol
  // control events. Execution artifacts (spans, stalls, publishes,
  // queries) depend on batching and thread timing and are excluded.
  auto keep = [](const TraceEvent& e) {
    switch (e.type) {
      case EventType::kMsgSend:
      case EventType::kMsgRecv:
      case EventType::kMsgDeliver:
      case EventType::kDupDrop:
      case EventType::kStaleEpochDrop:
      case EventType::kGapNack:
      case EventType::kThresholdBump:
      case EventType::kFaultDrop:
      case EventType::kFaultDup:
      case EventType::kFaultDelay:
      case EventType::kCrash:
      case EventType::kRestart:
      case EventType::kRetransmit:
      case EventType::kEpochBump:
      case EventType::kResyncSend:
        return true;
      default:
        return false;
    }
  };
  events.erase(std::remove_if(events.begin(), events.end(),
                              [&](const TraceEvent& e) { return !keep(e); }),
               events.end());
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return CanonicalKey(a) < CanonicalKey(b);
            });
  return events;
}

bool CanonicalEquals(const TraceEvent& a, const TraceEvent& b) {
  return CanonicalKey(a) == CanonicalKey(b);
}

}  // namespace dwrs::obs
