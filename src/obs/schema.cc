#include "obs/schema.h"

#include <atomic>

#include "engine/stats.h"
#include "faults/faulty_transport.h"
#include "faults/harness.h"
#include "query/query_service.h"
#include "sim/message.h"
#include "sim/node.h"

namespace dwrs::obs {

namespace {

std::string Join(const std::string& prefix, const char* leaf) {
  if (prefix.empty()) return leaf;
  return prefix + "/" + leaf;
}

}  // namespace

void AppendMessageStats(const sim::MessageStats& stats,
                        const std::string& prefix, Snapshot* out) {
  out->Append(Join(prefix, "messages"), stats.total_messages());
  out->Append(Join(prefix, "site_to_coord"), stats.site_to_coord);
  out->Append(Join(prefix, "coord_to_site"), stats.coord_to_site);
  out->Append(Join(prefix, "broadcast_events"), stats.broadcast_events);
  out->Append(Join(prefix, "words"), stats.words);
  for (size_t i = 0; i < stats.by_type.size(); ++i) {
    if (stats.by_type[i] == 0) continue;
    out->Append(Join(prefix, ("by_type/" + std::to_string(i)).c_str()),
                stats.by_type[i]);
  }
}

void AppendHotPathCounters(const sim::SiteHotPathCounters& counters,
                           const std::string& prefix, Snapshot* out) {
  out->Append(Join(prefix, "keys_decided"), counters.keys_decided);
  out->Append(Join(prefix, "key_bits_consumed"), counters.key_bits_consumed);
  out->Append(Join(prefix, "skips_taken"), counters.skips_taken);
}

void AppendEngineStats(const engine::EngineStats& stats,
                       const std::string& prefix, Snapshot* out) {
  const auto get = [](const std::atomic<uint64_t>& v) {
    return v.load(std::memory_order_relaxed);
  };
  AppendMessageStats(stats.MessageSnapshot(), prefix, out);
  out->Append(Join(prefix, "items_ingested"), get(stats.items_ingested));
  out->Append(Join(prefix, "batches_ingested"), get(stats.batches_ingested));
  out->Append(Join(prefix, "ingest_stalls"), get(stats.ingest_stalls));
  out->Append(Join(prefix, "upstream_stalls"), get(stats.upstream_stalls));
  out->Append(Join(prefix, "quiesces"), get(stats.quiesces));
  out->Append(Join(prefix, "batches_recycled"), get(stats.batches_recycled));
  out->Append(Join(prefix, "batch_pool_misses"), get(stats.batch_pool_misses));
  out->Append(Join(prefix, "sites_scheduled"), get(stats.sites_scheduled));
  out->Append(Join(prefix, "steals"), get(stats.steals));
  out->Append(Join(prefix, "worker_parks"), get(stats.worker_parks));
  out->Append(Join(prefix, "batches_dropped_on_shutdown"),
              get(stats.batches_dropped_on_shutdown));
  out->Append(Join(prefix, "snapshot_publishes"),
              get(stats.snapshot_publishes));
  sim::SiteHotPathCounters hot;
  hot.keys_decided = get(stats.keys_decided);
  hot.key_bits_consumed = get(stats.key_bits_consumed);
  hot.skips_taken = get(stats.skips_taken);
  AppendHotPathCounters(hot, prefix, out);
}

void AppendQueryServiceStats(const query::QueryServiceStats& stats,
                             const std::string& prefix, Snapshot* out) {
  out->Append(Join(prefix, "cache_hits"), stats.cache_hits);
  out->Append(Join(prefix, "cache_misses"), stats.cache_misses);
  out->Append(Join(prefix, "cache_invalidations"), stats.cache_invalidations);
  out->Append(Join(prefix, "snapshot_copies_avoided"),
              stats.snapshot_copies_avoided);
  out->Append(Join(prefix, "slo_waits"), stats.slo_waits);
  out->Append(Join(prefix, "slo_timeouts"), stats.slo_timeouts);
}

void AppendFaultReport(const faults::RunReport& report,
                       const std::string& prefix, Snapshot* out) {
  out->Append(Join(prefix, "transcript_hash"), report.transcript_hash);
  out->Append(Join(prefix, "delivered"), report.delivered);
  out->Append(Join(prefix, "crashes"), report.crashes);
  out->Append(Join(prefix, "crash_detections"), report.crash_detections);
  out->Append(Join(prefix, "resyncs_sent"), report.resyncs_sent);
  out->Append(Join(prefix, "lost_unacked"), report.lost_unacked);
  out->Append(Join(prefix, "items_lost"), report.items_lost);
  out->Append(Join(prefix, "duplicates_dropped"), report.duplicates_dropped);
  out->Append(Join(prefix, "gaps_detected"), report.gaps_detected);
  out->Append(Join(prefix, "nacks_sent"), report.nacks_sent);
  out->Append(Join(prefix, "retransmits_sent"), report.retransmits_sent);
  out->Append(Join(prefix, "stale_epoch_dropped"), report.stale_epoch_dropped);
  out->Append(Join(prefix, "messages_dropped_down"),
              report.messages_dropped_down);
  out->Append(Join(prefix, "faults_forwarded"), report.faults_forwarded);
  out->Append(Join(prefix, "faults_dropped"), report.faults_dropped);
  out->Append(Join(prefix, "faults_duplicated"), report.faults_duplicated);
  out->Append(Join(prefix, "faults_delayed"), report.faults_delayed);
  out->Append(Join(prefix, "process_kills"), report.process_kills);
  out->Append(Join(prefix, "recoveries"), report.recoveries);
  out->Append(Join(prefix, "wal_records_logged"), report.wal_records_logged);
  out->Append(Join(prefix, "wal_records_replayed"),
              report.wal_records_replayed);
  out->Append(Join(prefix, "checkpoints_written"), report.checkpoints_written);
  out->Append(Join(prefix, "recovery_consistent"),
              static_cast<uint64_t>(report.recovery_consistent ? 1 : 0));
  out->Append(Join(prefix, "clean"),
              static_cast<uint64_t>(report.clean ? 1 : 0));
}

void AppendFaultCounters(const faults::FaultCounters& counters,
                         const std::string& prefix, Snapshot* out) {
  const auto get = [](const std::atomic<uint64_t>& v) {
    return v.load(std::memory_order_relaxed);
  };
  out->Append(Join(prefix, "forwarded"), get(counters.forwarded));
  out->Append(Join(prefix, "dropped"), get(counters.dropped));
  out->Append(Join(prefix, "duplicated"), get(counters.duplicated));
  out->Append(Join(prefix, "delayed"), get(counters.delayed));
}

}  // namespace dwrs::obs
