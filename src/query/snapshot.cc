#include "query/snapshot.h"

#include <utility>

#include "obs/trace.h"
#include "util/check.h"

namespace dwrs::query {

namespace {
// Two spares beyond the live node cover the common case (one node being
// read, one being written) without growing the pool.
constexpr size_t kInitialPoolSize = 3;
}  // namespace

SnapshotPublisher::SnapshotPublisher() {
  pool_.reserve(kInitialPoolSize);
  for (size_t i = 0; i < kInitialPoolSize; ++i) {
    pool_.push_back(std::make_unique<Node>());
  }
}

SnapshotPublisher::~SnapshotPublisher() {
  // Contract: readers are gone by destruction time (they hold references
  // to the publisher itself). A pinned node here means a reader is still
  // alive and about to use freed memory — fail loudly instead.
  for (const auto& node : pool_) {
    DWRS_CHECK_EQ(node->refs.load(), 0u)
        << " SnapshotPublisher destroyed while a reader is mid-copy";
  }
}

SnapshotPublisher::Node* SnapshotPublisher::AcquireFreeNode() {
  Node* live = latest_.load(std::memory_order_relaxed);
  for (const auto& node : pool_) {
    if (node.get() == live) continue;
    // seq_cst pairs with the readers' pin/validate sequence: a reader
    // whose increment is not visible here is guaranteed to fail its
    // latest-pointer validation and back off without touching the
    // content (see Read()).
    if (node->refs.load(std::memory_order_seq_cst) == 0) return node.get();
  }
  // Every spare node is pinned by a reader right now. Grow instead of
  // waiting: the writer is the coordinator thread and must not block on
  // the query path.
  pool_.push_back(std::make_unique<Node>());
  return pool_.back().get();
}

void SnapshotPublisher::Publish(ShardSnapshot snap) {
  snap.publish_seq = ++next_seq_;
  if (snap.stale && have_clean_) {
    // Freeze the content at the last clean state; keep the caller's
    // coherence stamps so observers still see the shard's liveness.
    ShardSnapshot frozen = last_clean_;
    frozen.publish_seq = snap.publish_seq;
    frozen.stale = true;
    frozen.steps = snap.steps;
    frozen.session_epoch = snap.session_epoch;
    frozen.messages = snap.messages;
    snap = std::move(frozen);
  } else if (!snap.stale) {
    last_clean_ = snap;
    have_clean_ = true;
  }
  published_state_version_ = snap.state_version;
  if (obs::TracingEnabled()) {
    obs::TraceEvent event;
    event.type = obs::EventType::kSnapshotPublish;
    event.shard = static_cast<int16_t>(trace_shard_);
    event.a = snap.publish_seq;
    event.epoch = static_cast<uint32_t>(snap.session_epoch);
    event.step = snap.steps;
    event.x = snap.threshold;
    event.dir = snap.stale ? 1 : 0;
    obs::Emit(event);
  }
  Node* node = AcquireFreeNode();
  node->snap = std::move(snap);
  latest_.store(node, std::memory_order_seq_cst);
  publish_count_.fetch_add(1, std::memory_order_release);
}

bool SnapshotPublisher::Read(ShardSnapshot* out) const {
  for (;;) {
    Node* node = latest_.load(std::memory_order_seq_cst);
    if (node == nullptr) return false;
    node->refs.fetch_add(1, std::memory_order_seq_cst);
    if (latest_.load(std::memory_order_seq_cst) == node) {
      // The node was (still) live after our pin: the writer's content
      // write happened before the seq_cst publish this load read from,
      // and the writer cannot reclaim the node until the release
      // decrement below.
      *out = node->snap;
      node->refs.fetch_sub(1, std::memory_order_release);
      return true;
    }
    // The writer swapped concurrently; our pin may be on a node it is
    // about to rewrite. Back off without touching the content.
    node->refs.fetch_sub(1, std::memory_order_release);
  }
}

}  // namespace dwrs::query
