#include "query/snapshot.h"

#include <algorithm>
#include <utility>

#include "obs/trace.h"
#include "util/check.h"

namespace dwrs::query {

SnapshotPublisher::SnapshotPublisher(int ring_depth)
    : ring_(static_cast<size_t>(ring_depth > 0 ? ring_depth : 1)) {
  for (auto& slot : ring_) slot.store(nullptr, std::memory_order_relaxed);
  ring_mirror_.assign(ring_.size(), nullptr);
  // Seed a few nodes; AcquireFreeNode grows the pool on demand, so a
  // deep ring only pays for the slots it actually fills. Steady state
  // settles at ring_depth + 1 + (concurrently pinned spares).
  const size_t initial = std::min(ring_.size() + 2, size_t{4});
  pool_.reserve(ring_.size() + 2);
  for (size_t i = 0; i < initial; ++i) {
    pool_.push_back(std::make_unique<Node>());
  }
}

SnapshotPublisher::~SnapshotPublisher() {
  // Contract: readers are gone by destruction time (they hold references
  // to the publisher itself). A pinned node here means a reader is still
  // alive and about to use freed memory — fail loudly instead.
  for (const auto& node : pool_) {
    DWRS_CHECK_EQ(node->refs.load(), 0u)
        << " SnapshotPublisher destroyed while a reader is mid-copy";
  }
}

SnapshotPublisher::Node* SnapshotPublisher::AcquireFreeNode() {
  for (const auto& node : pool_) {
    // in_ring is writer-owned: live nodes (any ring slot, including
    // latest) are never recycled.
    if (node->in_ring) continue;
    // seq_cst pairs with the readers' pin/validate sequence: a reader
    // whose increment is not visible here is guaranteed to fail its
    // slot-pointer validation and back off without touching the
    // content (see Read()/ReadAsOf()).
    if (node->refs.load(std::memory_order_seq_cst) == 0) return node.get();
  }
  // Every spare node is pinned by a reader right now. Grow instead of
  // waiting: the writer is the coordinator thread and must not block on
  // the query path.
  pool_.push_back(std::make_unique<Node>());
  return pool_.back().get();
}

void SnapshotPublisher::Publish(ShardSnapshot snap) {
  snap.publish_seq = ++next_seq_;
  if (snap.stale && have_clean_) {
    // Freeze the content at the last clean state; keep the caller's
    // coherence stamps so observers still see the shard's liveness.
    ShardSnapshot frozen = last_clean_;
    frozen.publish_seq = snap.publish_seq;
    frozen.stale = true;
    frozen.steps = snap.steps;
    frozen.session_epoch = snap.session_epoch;
    frozen.messages = snap.messages;
    snap = std::move(frozen);
  } else if (!snap.stale) {
    last_clean_ = snap;
    have_clean_ = true;
  }
  published_state_version_ = snap.state_version;
  if (obs::TracingEnabled()) {
    obs::TraceEvent event;
    event.type = obs::EventType::kSnapshotPublish;
    event.shard = static_cast<int16_t>(trace_shard_);
    event.a = snap.publish_seq;
    event.epoch = static_cast<uint32_t>(snap.session_epoch);
    event.step = snap.steps;
    event.x = snap.threshold;
    event.dir = snap.stale ? 1 : 0;
    obs::Emit(event);
  }
  const uint64_t seq = snap.publish_seq;
  const uint64_t version = snap.state_version;
  Node* node = AcquireFreeNode();
  node->snap = std::move(snap);
  const size_t slot = static_cast<size_t>((seq - 1) % ring_.size());
  Node* evicted = ring_mirror_[slot];
  node->in_ring = true;
  ring_[slot].store(node, std::memory_order_seq_cst);
  if (evicted != nullptr) evicted->in_ring = false;
  ring_mirror_[slot] = node;
  latest_.store(node, std::memory_order_seq_cst);
  // Stored after the slot/latest swaps: cache probes may lag the ring by
  // one in-flight publish (a spurious cache miss, never a wrong hit).
  latest_seq_.store(seq, std::memory_order_seq_cst);
  latest_version_.store(version, std::memory_order_seq_cst);
  publish_count_.fetch_add(1, std::memory_order_release);
  // Freshness-SLO waiters: only touch the mutex when somebody is
  // actually waiting. The seq_cst version store above pairs with the
  // waiter's seq_cst registration: either the waiter sees the new
  // version on its pre-wait check, or this load sees its registration.
  if (waiters_.load(std::memory_order_seq_cst) != 0) {
    std::lock_guard<std::mutex> lock(wait_mutex_);
    wait_cv_.notify_all();
  }
}

bool SnapshotPublisher::Read(ShardSnapshot* out) const {
  for (;;) {
    Node* node = latest_.load(std::memory_order_seq_cst);
    if (node == nullptr) return false;
    node->refs.fetch_add(1, std::memory_order_seq_cst);
    if (latest_.load(std::memory_order_seq_cst) == node) {
      // The node was (still) live after our pin: the writer's content
      // write happened before the seq_cst publish this load read from,
      // and the writer cannot reclaim the node until the release
      // decrement below.
      *out = node->snap;
      node->refs.fetch_sub(1, std::memory_order_release);
      return true;
    }
    // The writer swapped concurrently; our pin may be on a node it is
    // about to rewrite. Back off without touching the content.
    node->refs.fetch_sub(1, std::memory_order_release);
  }
}

bool SnapshotPublisher::ReadAsOf(uint64_t max_state_version,
                                 ShardSnapshot* out) const {
  // Scan every slot with the same pin/validate protocol Read() uses and
  // keep the newest coherent copy that satisfies the version bound. A
  // slot that rotates under us is re-read (each retry means a fresh
  // publish landed); a slot whose content turns out newer than the
  // bound is simply not a candidate. Slot ABA (see header) only ever
  // yields a coherent, newer snapshot — the stamps in the copy are what
  // we filter on, so it is indistinguishable from reading the slot
  // after the rotation.
  bool found = false;
  for (const auto& slot : ring_) {
    for (;;) {
      Node* node = slot.load(std::memory_order_seq_cst);
      if (node == nullptr) break;
      node->refs.fetch_add(1, std::memory_order_seq_cst);
      if (slot.load(std::memory_order_seq_cst) != node) {
        node->refs.fetch_sub(1, std::memory_order_release);
        continue;  // the writer rotated this slot; re-read it
      }
      if (node->snap.state_version <= max_state_version &&
          (!found || node->snap.publish_seq > out->publish_seq)) {
        *out = node->snap;
        found = true;
      }
      node->refs.fetch_sub(1, std::memory_order_release);
      break;
    }
  }
  return found;
}

bool SnapshotPublisher::WaitForStateVersion(
    uint64_t version, std::chrono::nanoseconds timeout) const {
  if (latest_version_.load(std::memory_order_seq_cst) >= version) return true;
  if (timeout <= std::chrono::nanoseconds::zero()) return false;
  // Register BEFORE the predicate check inside the wait: the publisher
  // checks waiters_ after storing the version (both seq_cst), so either
  // it sees our registration and notifies under the lock, or our
  // predicate load sees its version store — no lost wakeup.
  waiters_.fetch_add(1, std::memory_order_seq_cst);
  bool reached;
  {
    std::unique_lock<std::mutex> lock(wait_mutex_);
    reached = wait_cv_.wait_for(lock, timeout, [&] {
      return latest_version_.load(std::memory_order_seq_cst) >= version;
    });
  }
  waiters_.fetch_sub(1, std::memory_order_release);
  return reached;
}

}  // namespace dwrs::query
