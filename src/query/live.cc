#include "query/live.h"

#include "query/capture.h"
#include "util/check.h"

namespace dwrs::query {

LiveShardPublishers::LiveShardPublishers(int num_shards, int ring_depth) {
  DWRS_CHECK_GT(num_shards, 0);
  DWRS_CHECK_GT(ring_depth, 0);
  publishers_.reserve(static_cast<size_t>(num_shards));
  for (int j = 0; j < num_shards; ++j) {
    publishers_.push_back(std::make_unique<SnapshotPublisher>(ring_depth));
    publishers_.back()->set_trace_shard(j);
  }
}

size_t LiveShardPublishers::Index(int j) const {
  DWRS_CHECK(j >= 0 && j < num_shards());
  return static_cast<size_t>(j);
}

std::vector<const SnapshotPublisher*> LiveShardPublishers::views() const {
  std::vector<const SnapshotPublisher*> out;
  out.reserve(publishers_.size());
  for (const auto& publisher : publishers_) out.push_back(publisher.get());
  return out;
}

namespace {

// One shard's capture+publish, shared by the engine hook (coordinator
// thread) and the simulator reference (driving thread) so both paths
// publish bit-identical snapshots at the same coordinator state.
void CaptureAndPublish(const WsworCoordinator& coordinator, uint64_t steps,
                       const sim::MessageStats& stats,
                       SnapshotPublisher& publisher) {
  ShardSnapshot snap = CaptureSnapshot(coordinator);
  snap.steps = steps;
  snap.messages = stats;
  publisher.Publish(std::move(snap));
}

}  // namespace

std::unique_ptr<LiveShardPublishers> EnableWsworLiveQueries(
    engine::ShardedEngine& eng, const ShardedWsworEndpoints& endpoints,
    int ring_depth) {
  DWRS_CHECK_EQ(endpoints.coordinators.size(),
                static_cast<size_t>(eng.num_shards()));
  auto publishers =
      std::make_unique<LiveShardPublishers>(eng.num_shards(), ring_depth);
  for (int j = 0; j < eng.num_shards(); ++j) {
    const WsworCoordinator* coordinator =
        endpoints.coordinators[static_cast<size_t>(j)].get();
    engine::Engine* shard_engine = &eng.shard_engine(j);
    SnapshotPublisher* publisher = &publishers->shard(j);
    eng.SetShardSnapshotHook(j, [coordinator, shard_engine, publisher] {
      CaptureAndPublish(*coordinator, shard_engine->step(),
                        shard_engine->stats().MessageSnapshot(), *publisher);
      shard_engine->stats_mutable().snapshot_publishes.fetch_add(
          1, std::memory_order_relaxed);
    });
    // Initial state, published from this (pre-ingestion) thread so a
    // reader that races the first message still finds a snapshot.
    CaptureAndPublish(*coordinator, 0, sim::MessageStats{}, *publisher);
    shard_engine->stats_mutable().snapshot_publishes.fetch_add(
        1, std::memory_order_relaxed);
  }
  return publishers;
}

void PublishWsworSnapshots(const sim::ShardedRuntime& runtime,
                           const ShardedWsworEndpoints& endpoints,
                           LiveShardPublishers& publishers) {
  DWRS_CHECK_EQ(endpoints.coordinators.size(),
                static_cast<size_t>(publishers.num_shards()));
  for (int j = 0; j < publishers.num_shards(); ++j) {
    const WsworCoordinator& coordinator =
        *endpoints.coordinators[static_cast<size_t>(j)];
    // Publish only when the shard's state advanced since the last
    // publish — mirroring the engine, whose hook fires exactly once per
    // processed message. The latest snapshots of the two backends (steps
    // and traffic stamps included) then coincide at every step boundary;
    // without the skip, an event that produces no message for a shard
    // would advance the reference's `steps` stamp but not the engine's.
    SnapshotPublisher& publisher = publishers.shard(j);
    if (publisher.publish_count() > 0 &&
        publisher.published_state_version() == coordinator.StateVersion()) {
      continue;
    }
    const sim::Runtime& shard = runtime.shard_runtime(j);
    CaptureAndPublish(coordinator, shard.steps(), shard.stats(), publisher);
  }
}

}  // namespace dwrs::query
