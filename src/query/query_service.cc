#include "query/query_service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/trace.h"
#include "util/check.h"

namespace dwrs::query {

QueryService::QueryService(std::vector<const SnapshotPublisher*> shards)
    : shards_(std::move(shards)) {
  DWRS_CHECK(!shards_.empty());
  for (const SnapshotPublisher* shard : shards_) {
    DWRS_CHECK(shard != nullptr);
  }
}

QueryResult QueryService::Query() const {
  // Timing only when someone observes it: tracing or a histogram. The
  // untimed fast path costs one relaxed load and one null check.
  const bool timed = latency_us_ != nullptr || obs::TracingEnabled();
  std::chrono::steady_clock::time_point start;
  if (timed) start = std::chrono::steady_clock::now();
  QueryResult out;
  out.complete = true;
  out.shards.resize(shards_.size());
  std::vector<MergeableSample> summaries;
  summaries.reserve(shards_.size());
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    ShardSnapshot& snap = out.shards[shard];
    if (!shards_[shard]->Read(&snap) ||
        snap.sample.kind == SampleKind::kEmpty) {
      // Not published yet (or the coordinator exports no mergeable
      // state): folding the kEmpty identity would silently drop this
      // shard's slice, so report incompleteness instead. The positional
      // entry stays default-initialized (publish_seq == 0).
      out.complete = false;
      continue;
    }
    if (snap.stale) {
      out.any_stale = true;
      out.stale_shards.push_back(static_cast<int>(shard));
    }
    out.l1_estimate += snap.l1_estimate;
    out.messages += snap.messages;
    out.steps += snap.steps;
    summaries.push_back(snap.sample);
  }
  out.merged = MergeShardSamples(summaries);
  if (timed) {
    const auto dur_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    if (latency_us_ != nullptr) {
      latency_us_->Record(static_cast<double>(dur_ns) / 1000.0);
    }
    if (obs::TracingEnabled()) {
      obs::TraceEvent event;
      event.type = obs::EventType::kQueryServe;
      event.a = summaries.size();  // shards merged into this answer
      event.step = out.steps;
      event.dir = out.any_stale ? 1 : 0;
      event.dur_ns = dur_ns > 0 ? static_cast<uint32_t>(std::min<int64_t>(
                                      dur_ns, UINT32_MAX))
                                : 1;
      obs::Emit(event);
    }
  }
  return out;
}

std::vector<KeyedItem> QueryService::Sample() const {
  return Query().merged.TopEntries();
}

double QueryService::L1Estimate() const { return Query().l1_estimate; }

ThresholdedSample QueryService::EstimatorSample() const {
  const QueryResult result = Query();
  std::vector<KeyedItem> top = result.merged.TopEntries();
  if (top.size() < result.merged.target_size) {
    // Fewer candidates than s anywhere: no shard has filled its sample,
    // so no threshold was ever announced and every delivered item is in
    // hand — exact-sum mode (tau = 0), nothing peeled off.
    ThresholdedSample out;
    out.top = std::move(top);
    return out;
  }
  // Conditioning on the s-th largest merged key: MakeThresholdedSample
  // peels the last (smallest) entry off as tau, leaving the top s-1 as
  // the estimation sample — every quantity exactly known from the
  // merged summary, no discarded key needed.
  return MakeThresholdedSample(std::move(top));
}

double QueryService::SubsetSum(
    const std::function<bool(const Item&)>& pred) const {
  return EstimateSubsetSum(EstimatorSample(), pred);
}

double QueryService::SubsetCount(
    const std::function<bool(const Item&)>& pred) const {
  return EstimateSubsetCount(EstimatorSample(), pred);
}

double QueryService::TotalWeight() const {
  return EstimateTotalWeight(EstimatorSample());
}

}  // namespace dwrs::query
