#include "query/query_service.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <utility>

#include "obs/trace.h"
#include "util/check.h"

namespace dwrs::query {

namespace {

// Shared shard-read + merge loop: `read(shard, &snap)` fills the
// positional entry (Read for live queries, ReadAsOf for time travel).
template <typename ReadFn>
void MergeShardReads(const std::vector<const SnapshotPublisher*>& shards,
                     ReadFn&& read, QueryResult* out) {
  out->complete = true;
  out->shards.resize(shards.size());
  std::vector<MergeableSample> summaries;
  summaries.reserve(shards.size());
  for (size_t shard = 0; shard < shards.size(); ++shard) {
    ShardSnapshot& snap = out->shards[shard];
    if (!read(shard, &snap) || snap.sample.kind == SampleKind::kEmpty) {
      // Not published yet (or the coordinator exports no mergeable
      // state): folding the kEmpty identity would silently drop this
      // shard's slice, so report incompleteness instead. The positional
      // entry stays default-initialized (publish_seq == 0).
      out->complete = false;
      continue;
    }
    if (snap.stale) {
      out->any_stale = true;
      out->stale_shards.push_back(static_cast<int>(shard));
    }
    out->l1_estimate += snap.l1_estimate;
    out->messages += snap.messages;
    out->steps += snap.steps;
    summaries.push_back(snap.sample);
  }
  out->merged = MergeShardSamples(summaries);
}

uint64_t SeqSum(const std::vector<uint64_t>& seqs) {
  return std::accumulate(seqs.begin(), seqs.end(), uint64_t{0});
}

}  // namespace

QueryService::QueryService(std::vector<const SnapshotPublisher*> shards)
    : shards_(std::move(shards)) {
  DWRS_CHECK(!shards_.empty());
  for (const SnapshotPublisher* shard : shards_) {
    DWRS_CHECK(shard != nullptr);
  }
}

QueryResult QueryService::Query() const {
  // Timing only when someone observes it: tracing or a histogram. The
  // untimed fast path costs one relaxed load and one null check.
  const bool timed = latency_us_ != nullptr || obs::TracingEnabled();
  std::chrono::steady_clock::time_point start;
  if (timed) start = std::chrono::steady_clock::now();
  QueryResult out;
  MergeShardReads(
      shards_,
      [this](size_t shard, ShardSnapshot* snap) {
        return shards_[shard]->Read(snap);
      },
      &out);
  if (timed) {
    const auto dur_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    if (latency_us_ != nullptr) {
      latency_us_->Record(static_cast<double>(dur_ns) / 1000.0);
    }
    if (obs::TracingEnabled()) {
      obs::TraceEvent event;
      event.type = obs::EventType::kQueryServe;
      // shards merged into this answer
      event.a = out.shards.size() -
                static_cast<size_t>(std::count_if(
                    out.shards.begin(), out.shards.end(),
                    [](const ShardSnapshot& s) { return s.publish_seq == 0; }));
      event.step = out.steps;
      event.dir = out.any_stale ? 1 : 0;
      event.dur_ns = dur_ns > 0 ? static_cast<uint32_t>(std::min<int64_t>(
                                      dur_ns, UINT32_MAX))
                                : 1;
      obs::Emit(event);
    }
  }
  return out;
}

std::shared_ptr<const QueryResult> QueryService::QueryShared() const {
  std::shared_ptr<const CachedQuery> entry =
      cache_.load(std::memory_order_acquire);
  if (entry != nullptr) {
    // Revalidate by sequence stamp alone: S cheap probes instead of S
    // full ShardSnapshot copies. A probe that lags its ring by one
    // in-flight publish only turns a hit into a miss.
    bool hit = true;
    for (size_t shard = 0; shard < shards_.size(); ++shard) {
      if (shards_[shard]->latest_seq() != entry->seqs[shard]) {
        hit = false;
        break;
      }
    }
    if (hit) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      copies_avoided_.fetch_add(shards_.size(), std::memory_order_relaxed);
      // Aliasing pointer: pins the whole entry, so the result stays
      // valid even after a publish swaps the cache to a newer entry.
      const QueryResult* result = &entry->result;
      return std::shared_ptr<const QueryResult>(std::move(entry), result);
    }
    cache_invalidations_.fetch_add(1, std::memory_order_relaxed);
  }
  cache_misses_.fetch_add(1, std::memory_order_relaxed);
  auto fresh = std::make_shared<CachedQuery>();
  fresh->result = Query();
  fresh->seqs.resize(shards_.size());
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    // Key = the stamps of the snapshots actually merged (coherent per
    // shard by the pin/validate protocol) — NOT a separate probe, so
    // the key can never be torn against the result it describes.
    fresh->seqs[shard] = fresh->result.shards[shard].publish_seq;
  }
  // Install unless a concurrent reader already installed a cut at least
  // as new. Per-shard sequences are monotone, so the sum orders cuts;
  // losing the race to a newer entry just means serving our own (still
  // coherent) result without caching it.
  const uint64_t fresh_sum = SeqSum(fresh->seqs);
  std::shared_ptr<const CachedQuery> cur =
      cache_.load(std::memory_order_acquire);
  while (cur == nullptr || SeqSum(cur->seqs) < fresh_sum) {
    if (cache_.compare_exchange_weak(cur, fresh, std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
      break;
    }
  }
  return std::shared_ptr<const QueryResult>(fresh, &fresh->result);
}

QueryResult QueryService::Query(const QueryOptions& options) const {
  bool waited = false;
  std::chrono::steady_clock::time_point wait_start;
  if (options.min_version > 0) {
    const auto deadline =
        std::chrono::steady_clock::now() + options.max_staleness;
    for (const SnapshotPublisher* shard : shards_) {
      if (shard->latest_state_version() >= options.min_version) continue;
      if (!waited) {
        waited = true;
        wait_start = std::chrono::steady_clock::now();
        slo_waits_.fetch_add(1, std::memory_order_relaxed);
      }
      const auto remaining = deadline - std::chrono::steady_clock::now();
      shard->WaitForStateVersion(
          options.min_version,
          std::chrono::duration_cast<std::chrono::nanoseconds>(remaining));
    }
  }
  QueryResult out = Query();
  if (options.min_version > 0) {
    for (size_t shard = 0; shard < out.shards.size(); ++shard) {
      if (out.shards[shard].state_version < options.min_version) {
        out.version_satisfied = false;
        out.lagging_shards.push_back(static_cast<int>(shard));
      }
    }
    if (!out.version_satisfied) {
      slo_timeouts_.fetch_add(1, std::memory_order_relaxed);
    }
    if (waited && obs::TracingEnabled()) {
      const auto wait_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - wait_start)
              .count();
      obs::TraceEvent event;
      event.type = obs::EventType::kQueryWait;
      event.a = options.min_version;
      event.step = out.steps;
      event.dir = out.version_satisfied ? 0 : 1;
      event.dur_ns = wait_ns > 0 ? static_cast<uint32_t>(std::min<int64_t>(
                                       wait_ns, UINT32_MAX))
                                 : 1;
      obs::Emit(event);
    }
  }
  return out;
}

QueryResult QueryService::QueryAsOf(uint64_t max_state_version) const {
  QueryResult out;
  MergeShardReads(
      shards_,
      [this, max_state_version](size_t shard, ShardSnapshot* snap) {
        return shards_[shard]->ReadAsOf(max_state_version, snap);
      },
      &out);
  return out;
}

std::vector<KeyedItem> QueryService::Sample() const {
  return Query().merged.TopEntries();
}

double QueryService::L1Estimate() const { return Query().l1_estimate; }

ThresholdedSample QueryService::EstimatorSample() const {
  const QueryResult result = Query();
  std::vector<KeyedItem> top = result.merged.TopEntries();
  if (top.size() < result.merged.target_size) {
    // Fewer candidates than s anywhere: no shard has filled its sample,
    // so no threshold was ever announced and every delivered item is in
    // hand — exact-sum mode (tau = 0), nothing peeled off.
    ThresholdedSample out;
    out.top = std::move(top);
    return out;
  }
  // Conditioning on the s-th largest merged key: MakeThresholdedSample
  // peels the last (smallest) entry off as tau, leaving the top s-1 as
  // the estimation sample — every quantity exactly known from the
  // merged summary, no discarded key needed.
  return MakeThresholdedSample(std::move(top));
}

double QueryService::SubsetSum(
    const std::function<bool(const Item&)>& pred) const {
  return EstimateSubsetSum(EstimatorSample(), pred);
}

double QueryService::SubsetCount(
    const std::function<bool(const Item&)>& pred) const {
  return EstimateSubsetCount(EstimatorSample(), pred);
}

double QueryService::TotalWeight() const {
  return EstimateTotalWeight(EstimatorSample());
}

QueryServiceStats QueryService::stats() const {
  QueryServiceStats out;
  out.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  out.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  out.cache_invalidations =
      cache_invalidations_.load(std::memory_order_relaxed);
  out.snapshot_copies_avoided =
      copies_avoided_.load(std::memory_order_relaxed);
  out.slo_waits = slo_waits_.load(std::memory_order_relaxed);
  out.slo_timeouts = slo_timeouts_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace dwrs::query
