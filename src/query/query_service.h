// QueryService: the always-available read path. Merges the per-shard
// snapshots published at shard-local quiesce points into one global
// answer — sample, L1 estimate, subset-sum estimators — while the
// ingestion side keeps running at full speed.
//
// Consistency model. Each shard snapshot is a valid quiesce-point state
// of that shard's delivered-message prefix (published between
// coordinator OnMessage calls), so a query result is the EXACT answer
// over the union of S per-shard prefixes: every sampled item's key was
// drawn exactly once at exactly one shard, and the merge algebra
// (sampling/mergeable_sample.h) composes the per-shard summaries
// distribution-exactly. What a live result is NOT is a single global
// stream prefix — shards advance independently — but each shard's slice
// is exact for its own prefix, versions and thresholds only move
// forward, and at any whole-system quiesce point (engine Flush, end of
// stream) the result coincides bit for bit with the stop-the-world
// answer. Staleness is bounded by the coordinator inbox: a shard's
// snapshot lags its true state by at most the messages currently queued
// to its coordinator (zero at shard quiesce).
//
// Root-merge cache. Between publishes every query redoes the identical
// S-way merge, so the merge — not the lock-free reads — bounds the
// query rate. QueryShared() caches one merged result keyed by the
// vector of per-shard publish sequences. The key is built from the
// publish_seq stamps of the snapshots that were actually pinned, read
// and merged (each individually coherent under the publisher's
// pin/validate protocol), and a hit requires EVERY shard's current
// latest_seq() probe to equal the cached key — the double check that
// guarantees no reader ever serves a merge whose key vector was torn
// across a publish. Any shard's publish changes its sequence and thus
// misses the cache; the next query rebuilds and reinstalls. Hits cost
// S sequence probes and zero snapshot copies (the probe replaces the
// full ShardSnapshot copy Read() would make) — O(1) in sample size.
//
// Time travel. QueryAsOf(v) asks each shard for its newest retained
// snapshot with state_version <= v (the publisher keeps a ring of the
// last R publishes). A cross-shard as-of cut is exact for the same
// reason a live cut is. A shard whose ring no longer retains any
// snapshot <= v (evicted past the ring depth) makes the result
// incomplete — history is gone, never approximated.
//
// Freshness SLOs. Query(QueryOptions{min_version, max_staleness})
// blocks on the publishers' version waiters — which the engine's
// publish hook feeds at every coordinator quiesce point — until every
// shard has published state_version >= min_version, or the staleness
// budget runs out. On timeout the result is SERVED but flagged
// (version_satisfied == false, lagging_shards listed), mirroring the
// any_stale convention: never silently stale.
//
// Fault semantics: a shard whose session layer reports degradation
// publishes its last clean state flagged stale (query/snapshot.h). The
// merge NEVER silently folds such a shard: the result carries the stale
// shard list and an any_stale bit alongside the merged sample.
//
// Estimator queries condition on the s-th largest merged key: the top
// s-1 entries plus that key as tau form an exactly-known thresholded
// sample (estimators/swor_estimators.h), giving unbiased
// Horvitz-Thompson subset sums from live snapshots with no access to
// discarded keys.

#ifndef DWRS_QUERY_QUERY_SERVICE_H_
#define DWRS_QUERY_QUERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "estimators/swor_estimators.h"
#include "obs/metrics.h"
#include "query/snapshot.h"
#include "sampling/keyed_item.h"
#include "sampling/mergeable_sample.h"
#include "sim/message.h"

namespace dwrs::query {

struct QueryResult {
  // True iff every shard has published at least one snapshot with
  // mergeable content. While false the remaining fields cover only the
  // shards that have (merged stays kEmpty when none have).
  bool complete = false;

  // Fault visibility: shards whose snapshot content is frozen at their
  // last clean state. Never silently merged — always surfaced here.
  bool any_stale = false;
  std::vector<int> stale_shards;

  // Freshness-SLO visibility (Query(QueryOptions) only; plain queries
  // leave the defaults). False means the staleness budget expired
  // before every shard passed min_version; the shards still behind are
  // listed — the result is flagged, never silently stale.
  bool version_satisfied = true;
  std::vector<int> lagging_shards;

  // Root merge of the shard summaries (exact; see the header comment).
  MergeableSample merged;

  // Sum of the shard scalars: L1 W-hat estimates compose by summation
  // (l1/l1_tracker.h); 0 for deployments that do not serve L1.
  double l1_estimate = 0.0;

  // Aggregates across shards.
  sim::MessageStats messages;
  uint64_t steps = 0;

  // The raw per-shard snapshots backing this result, positional (one
  // entry per shard; a shard that has not published yet keeps a
  // default-initialized entry with publish_seq == 0) — what the
  // consistency referee audits (monotone publish_seq / state_version /
  // threshold / session_epoch per shard).
  std::vector<ShardSnapshot> shards;
};

// Per-query freshness SLO (see header comment).
struct QueryOptions {
  // Serve only state at or past this coordinator state version on every
  // shard; 0 disables the wait (plain Query semantics).
  uint64_t min_version = 0;
  // How long the query may block waiting for publishes to catch up. On
  // expiry the result is served flagged (version_satisfied == false).
  std::chrono::nanoseconds max_staleness = std::chrono::nanoseconds::zero();
};

// Cache / SLO counters, exported through obs/schema.cc under the
// "query/" prefix. snapshot_copies_avoided counts the per-shard
// ShardSnapshot copies the sequence-stamp revalidation saved (hits * S).
struct QueryServiceStats {
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_invalidations = 0;
  uint64_t snapshot_copies_avoided = 0;
  uint64_t slo_waits = 0;
  uint64_t slo_timeouts = 0;
};

class QueryService {
 public:
  // Non-owning views of the per-shard publishers, in shard order. The
  // publishers (and their writers' endpoints) must outlive the service's
  // last query.
  explicit QueryService(std::vector<const SnapshotPublisher*> shards);

  int num_shards() const { return static_cast<int>(shards_.size()); }

  // One lock-free read per shard plus an O(S * s log s) merge; safe from
  // any number of threads concurrently with ingestion. Always rebuilds
  // the merge (the uncached path); see QueryShared() for the cached one.
  QueryResult Query() const;

  // Cached query: returns a shared view of the root merge for the
  // current per-shard publish-sequence vector, rebuilding only when
  // some shard has published since the cached entry was installed
  // (see the header comment for the coherence argument). The returned
  // pointer stays valid after invalidation — it pins the entry it was
  // served from.
  std::shared_ptr<const QueryResult> QueryShared() const;

  // Freshness-SLO query: waits (bounded by options.max_staleness) until
  // every shard's published state_version reaches options.min_version,
  // then serves. On timeout serves anyway with version_satisfied ==
  // false and the lagging shards listed.
  QueryResult Query(const QueryOptions& options) const;

  // Time-travel query: each shard contributes its newest retained
  // snapshot with state_version <= max_state_version. Shards whose ring
  // evicted all such snapshots (or never published) leave their
  // positional entry default-initialized and make the result
  // incomplete.
  QueryResult QueryAsOf(uint64_t max_state_version) const;

  // The merged global sample of Query() (empty while incomplete).
  std::vector<KeyedItem> Sample() const;

  // Summed shard L1 estimates (0.0 while incomplete).
  double L1Estimate() const;

  // Thresholded sample for Horvitz-Thompson estimation: top s-1 merged
  // entries + the s-th largest key as tau. While fewer than s merged
  // candidates exist no shard has announced a threshold, so every
  // delivered item is in hand and the full candidate set is served with
  // tau = 0 (exact-sum mode).
  ThresholdedSample EstimatorSample() const;

  // Subset-sum / count / total-weight estimates over a live snapshot.
  // Each call takes its own snapshot; to compose coherent estimates
  // (e.g. a sum/count ratio) capture EstimatorSample() once and apply
  // estimators/swor_estimators.h to it directly.
  double SubsetSum(const std::function<bool(const Item&)>& pred) const;
  double SubsetCount(const std::function<bool(const Item&)>& pred) const;
  double TotalWeight() const;

  // Point-in-time copy of the cache / SLO counters (relaxed reads; each
  // counter individually exact).
  QueryServiceStats stats() const;

  // Optional serve-latency histogram (microseconds). When set, every
  // Query() records its wall-clock duration; the histogram's Record is
  // wait-free, so concurrent query threads stay lock-free. Set before
  // the first query; the histogram must outlive the service.
  void set_latency_histogram(obs::LatencyHistogram* histogram) {
    latency_us_ = histogram;
  }

 private:
  // A cached root merge plus the publish-sequence vector it was built
  // from (the stamps of the snapshots actually merged — never probed
  // separately, so the key can never be torn against its result).
  struct CachedQuery {
    std::vector<uint64_t> seqs;
    QueryResult result;
  };

  std::vector<const SnapshotPublisher*> shards_;
  obs::LatencyHistogram* latency_us_ = nullptr;

  mutable std::atomic<std::shared_ptr<const CachedQuery>> cache_;
  mutable std::atomic<uint64_t> cache_hits_{0};
  mutable std::atomic<uint64_t> cache_misses_{0};
  mutable std::atomic<uint64_t> cache_invalidations_{0};
  mutable std::atomic<uint64_t> copies_avoided_{0};
  mutable std::atomic<uint64_t> slo_waits_{0};
  mutable std::atomic<uint64_t> slo_timeouts_{0};
};

}  // namespace dwrs::query

#endif  // DWRS_QUERY_QUERY_SERVICE_H_
