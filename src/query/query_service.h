// QueryService: the always-available read path. Merges the per-shard
// snapshots published at shard-local quiesce points into one global
// answer — sample, L1 estimate, subset-sum estimators — while the
// ingestion side keeps running at full speed.
//
// Consistency model. Each shard snapshot is a valid quiesce-point state
// of that shard's delivered-message prefix (published between
// coordinator OnMessage calls), so a query result is the EXACT answer
// over the union of S per-shard prefixes: every sampled item's key was
// drawn exactly once at exactly one shard, and the merge algebra
// (sampling/mergeable_sample.h) composes the per-shard summaries
// distribution-exactly. What a live result is NOT is a single global
// stream prefix — shards advance independently — but each shard's slice
// is exact for its own prefix, versions and thresholds only move
// forward, and at any whole-system quiesce point (engine Flush, end of
// stream) the result coincides bit for bit with the stop-the-world
// answer. Staleness is bounded by the coordinator inbox: a shard's
// snapshot lags its true state by at most the messages currently queued
// to its coordinator (zero at shard quiesce).
//
// Fault semantics: a shard whose session layer reports degradation
// publishes its last clean state flagged stale (query/snapshot.h). The
// merge NEVER silently folds such a shard: the result carries the stale
// shard list and an any_stale bit alongside the merged sample.
//
// Estimator queries condition on the s-th largest merged key: the top
// s-1 entries plus that key as tau form an exactly-known thresholded
// sample (estimators/swor_estimators.h), giving unbiased
// Horvitz-Thompson subset sums from live snapshots with no access to
// discarded keys.

#ifndef DWRS_QUERY_QUERY_SERVICE_H_
#define DWRS_QUERY_QUERY_SERVICE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "estimators/swor_estimators.h"
#include "obs/metrics.h"
#include "query/snapshot.h"
#include "sampling/keyed_item.h"
#include "sampling/mergeable_sample.h"
#include "sim/message.h"

namespace dwrs::query {

struct QueryResult {
  // True iff every shard has published at least one snapshot with
  // mergeable content. While false the remaining fields cover only the
  // shards that have (merged stays kEmpty when none have).
  bool complete = false;

  // Fault visibility: shards whose snapshot content is frozen at their
  // last clean state. Never silently merged — always surfaced here.
  bool any_stale = false;
  std::vector<int> stale_shards;

  // Root merge of the shard summaries (exact; see the header comment).
  MergeableSample merged;

  // Sum of the shard scalars: L1 W-hat estimates compose by summation
  // (l1/l1_tracker.h); 0 for deployments that do not serve L1.
  double l1_estimate = 0.0;

  // Aggregates across shards.
  sim::MessageStats messages;
  uint64_t steps = 0;

  // The raw per-shard snapshots backing this result, positional (one
  // entry per shard; a shard that has not published yet keeps a
  // default-initialized entry with publish_seq == 0) — what the
  // consistency referee audits (monotone publish_seq / state_version /
  // threshold / session_epoch per shard).
  std::vector<ShardSnapshot> shards;
};

class QueryService {
 public:
  // Non-owning views of the per-shard publishers, in shard order. The
  // publishers (and their writers' endpoints) must outlive the service's
  // last query.
  explicit QueryService(std::vector<const SnapshotPublisher*> shards);

  int num_shards() const { return static_cast<int>(shards_.size()); }

  // One lock-free read per shard plus an O(S * s log s) merge; safe from
  // any number of threads concurrently with ingestion.
  QueryResult Query() const;

  // The merged global sample of Query() (empty while incomplete).
  std::vector<KeyedItem> Sample() const;

  // Summed shard L1 estimates (0.0 while incomplete).
  double L1Estimate() const;

  // Thresholded sample for Horvitz-Thompson estimation: top s-1 merged
  // entries + the s-th largest key as tau. While fewer than s merged
  // candidates exist no shard has announced a threshold, so every
  // delivered item is in hand and the full candidate set is served with
  // tau = 0 (exact-sum mode).
  ThresholdedSample EstimatorSample() const;

  // Subset-sum / count / total-weight estimates over a live snapshot.
  // Each call takes its own snapshot; to compose coherent estimates
  // (e.g. a sum/count ratio) capture EstimatorSample() once and apply
  // estimators/swor_estimators.h to it directly.
  double SubsetSum(const std::function<bool(const Item&)>& pred) const;
  double SubsetCount(const std::function<bool(const Item&)>& pred) const;
  double TotalWeight() const;

  // Optional serve-latency histogram (microseconds). When set, every
  // Query() records its wall-clock duration; the histogram's Record is
  // wait-free, so concurrent query threads stay lock-free. Set before
  // the first query; the histogram must outlive the service.
  void set_latency_histogram(obs::LatencyHistogram* histogram) {
    latency_us_ = histogram;
  }

 private:
  std::vector<const SnapshotPublisher*> shards_;
  obs::LatencyHistogram* latency_us_ = nullptr;
};

}  // namespace dwrs::query

#endif  // DWRS_QUERY_QUERY_SERVICE_H_
