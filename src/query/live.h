// Wiring the live query path into the sharded backends.
//
// Engine (the production path): EnableWsworLiveQueries installs a
// coordinator-thread hook on every shard of an engine::ShardedEngine
// that captures and publishes the shard's snapshot after each processed
// message — shard-local quiesce points — and publishes each shard's
// initial (empty) state eagerly so readers always find a snapshot. The
// returned LiveShardPublishers owns the per-shard publishers; build a
// QueryService over views() and query from any thread while ingestion
// runs.
//
// Simulator (the step-synchronous reference): PublishWsworSnapshots
// captures and publishes each shard of a sim::ShardedRuntime whose
// state advanced since its last publish — call it from Run's on_step
// hook (and once before the run for the initial state). At every step
// boundary the reference's latest snapshot per shard is then exactly
// the engine's (samples, thresholds, state versions, steps, and message
// stats alike; only publish_seq may differ, since the engine publishes
// once per message and the reference once per changed step) — the
// bit-for-bit replay property pinned by tests/query_test.cc.

#ifndef DWRS_QUERY_LIVE_H_
#define DWRS_QUERY_LIVE_H_

#include <memory>
#include <vector>

#include "core/sharded_sampler.h"
#include "engine/sharded_engine.h"
#include "query/snapshot.h"
#include "sim/sharded_runtime.h"

namespace dwrs::query {

// Default snapshot-ring depth for live deployments: deep enough that
// QueryAsOf can reach back across a burst of publishes, shallow enough
// that the per-shard node pool stays a few cache lines of pointers.
inline constexpr int kDefaultRingDepth = 8;

// Owns one SnapshotPublisher per shard. Outlive every QueryService (and
// every engine whose hooks publish into it) built over views().
class LiveShardPublishers {
 public:
  explicit LiveShardPublishers(int num_shards,
                               int ring_depth = kDefaultRingDepth);

  int num_shards() const { return static_cast<int>(publishers_.size()); }
  SnapshotPublisher& shard(int j) { return *publishers_[Index(j)]; }
  const SnapshotPublisher& shard(int j) const { return *publishers_[Index(j)]; }

  // Non-owning views in shard order — the QueryService constructor's
  // input.
  std::vector<const SnapshotPublisher*> views() const;

 private:
  size_t Index(int j) const;
  std::vector<std::unique_ptr<SnapshotPublisher>> publishers_;
};

// Installs the per-shard engine hooks (must run before the engine's
// first Push/Run/Flush) and publishes every shard's initial state. The
// endpoints and the returned publishers must outlive the engine's
// threads; the usual teardown order (publishers before service reads
// stop, engine shut down or quiescent before endpoints die) applies.
// Each hook also counts its publishes in the shard engine's
// EngineStats::snapshot_publishes. ring_depth bounds how far back
// QueryAsOf can reach on each shard.
std::unique_ptr<LiveShardPublishers> EnableWsworLiveQueries(
    engine::ShardedEngine& eng, const ShardedWsworEndpoints& endpoints,
    int ring_depth = kDefaultRingDepth);

// Step-synchronous reference publication: capture + publish all shards
// of the simulator backend. Cheap (O(S * s)); call per step.
void PublishWsworSnapshots(const sim::ShardedRuntime& runtime,
                           const ShardedWsworEndpoints& endpoints,
                           LiveShardPublishers& publishers);

}  // namespace dwrs::query

#endif  // DWRS_QUERY_LIVE_H_
