// Snapshot capture: turns one shard coordinator's state into the
// ShardSnapshot its publisher hands to the query path. Capture runs on
// whatever thread owns the coordinator endpoint — the engine's
// coordinator thread (from the SetSnapshotHook callback) or the driving
// thread under the step-synchronous simulator — at a shard-local quiesce
// point, so it may read the endpoint without synchronization.
//
// Three capture shapes cover the deployments:
//   CaptureSnapshot         — any versioned coordinator (sample +
//                             threshold), reliable transport.
//   CaptureL1Snapshot       — the L1 reduction: kScalarSum summary and
//                             the W-hat scalar derived from the
//                             coordinator threshold (l1/l1_tracker.h).
//   CaptureSessionSnapshot  — a coordinator behind a fault-model
//                             reliability session: stamps the session's
//                             crash-epoch high-water mark and raises the
//                             stale flag while the session reports
//                             degradation (unresolved gaps), which makes
//                             the publisher freeze content at the last
//                             clean state (query/snapshot.h).

#ifndef DWRS_QUERY_CAPTURE_H_
#define DWRS_QUERY_CAPTURE_H_

#include "core/coordinator.h"
#include "faults/session.h"
#include "l1/l1_tracker.h"
#include "query/snapshot.h"
#include "sim/node.h"

namespace dwrs::query {

// Generic capture off the CoordinatorNode interface. `threshold` is
// derived from the exported summary: the target_size-th largest stored
// key (0 while fewer candidates exist) — monotone over a coordinator's
// lifetime for the top-key protocols, which is what the consistency
// referee checks. The caller stamps steps/messages afterwards (they are
// backend state, not coordinator state).
ShardSnapshot CaptureSnapshot(const sim::CoordinatorNode& coordinator);

// L1 capture: the shard's summary is its scalar W-hat estimate
// (summation-composed across shards); threshold is the coordinator's u.
ShardSnapshot CaptureL1Snapshot(const L1TrackerConfig& config,
                                const WsworCoordinator& coordinator);

// Capture through a reliability session (src/faults/): content is the
// inner coordinator's, coherence stamps are the session's. stale is
// raised while any site has an unresolved delivery gap — the window in
// which the coordinator's state may lag retransmissions in flight.
// Callers that detect irrecoverable loss out of band (a non-clean run
// report) set `force_stale` so the shard stays flagged after reconcile.
ShardSnapshot CaptureSessionSnapshot(const faults::CoordinatorSession& session,
                                     bool force_stale = false);

}  // namespace dwrs::query

#endif  // DWRS_QUERY_CAPTURE_H_
