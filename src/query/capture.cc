#include "query/capture.h"

#include <vector>

#include "sampling/keyed_item.h"

namespace dwrs::query {

namespace {

// The target_size-th largest stored key of a top-key summary — the
// sample's own admission threshold, exactly the quantity
// EstimatorSample conditions on. 0 while the sample is not yet full.
double SummaryThreshold(const MergeableSample& sample) {
  if (sample.kind != SampleKind::kTopKey) return 0.0;
  const std::vector<KeyedItem> top = sample.TopEntries();
  if (top.size() < sample.target_size || top.empty()) return 0.0;
  return top.back().key;
}

}  // namespace

ShardSnapshot CaptureSnapshot(const sim::CoordinatorNode& coordinator) {
  ShardSnapshot snap;
  snap.sample = coordinator.ShardSample();
  snap.state_version = coordinator.StateVersion();
  snap.threshold = SummaryThreshold(snap.sample);
  return snap;
}

ShardSnapshot CaptureL1Snapshot(const L1TrackerConfig& config,
                                const WsworCoordinator& coordinator) {
  ShardSnapshot snap;
  snap.sample = L1ShardEstimate(config, coordinator);
  snap.sample.state_version = coordinator.StateVersion();
  snap.state_version = coordinator.StateVersion();
  snap.threshold = coordinator.Threshold();
  snap.l1_estimate = L1EstimateFromThreshold(config, coordinator.Threshold());
  return snap;
}

ShardSnapshot CaptureSessionSnapshot(const faults::CoordinatorSession& session,
                                     bool force_stale) {
  ShardSnapshot snap = CaptureSnapshot(session);
  snap.session_epoch = session.MaxSiteEpoch();
  snap.stale = force_stale || !session.AllGapsResolved();
  return snap;
}

}  // namespace dwrs::query
