// Live query snapshots: the per-shard state a coordinator publishes at
// shard-local quiesce points, and the single-writer/many-reader ring the
// query path reads it from without ever blocking — or being blocked by —
// ingestion.
//
// A ShardSnapshot is an immutable value: the shard coordinator's
// mergeable summary (sampling/mergeable_sample.h) plus the scalars a
// query endpoint serves (threshold, L1 estimate, traffic counters) and
// the coherence stamps a referee can audit (publish sequence, state
// version, session epoch, staleness flag).
//
// SnapshotPublisher is the handoff cell. The writer is the one thread
// that owns the coordinator endpoint (the engine's coordinator thread,
// or the driving thread under the step-synchronous simulator); readers
// are arbitrary query threads. The design is a double-buffer generalized
// to a small node pool with per-node reader pinning, and — since the
// ring generalization — R live nodes instead of one:
//
//   - The writer publishes into a pool node no reader currently pins
//     (refs == 0) and that is not referenced by any ring slot, then
//     stores it into ring slot (publish_seq - 1) % R and swaps the
//     `latest` pointer. The pool grows only when every spare node is
//     pinned, so steady state recycles the same few nodes — and nodes
//     are NEVER freed before the publisher dies, which is what makes
//     the reader protocol safe without hazard pointers.
//   - A reader pins: load a slot (or `latest`), increment the node's
//     reader count, re-validate that the slot still holds the node.
//     Validation failure (the writer rotated the slot concurrently)
//     releases and retries; success means the node's content is
//     complete (the seq_cst slot store the validation load reads from
//     happens after the writer's content write) and cannot be
//     overwritten while pinned (the writer skips nodes with refs != 0,
//     and the skip-check pairs with the reader's pin/validate
//     sequence). A slot can suffer ABA — the same node evicted and
//     later re-published into the same slot — but the re-published
//     content is itself complete before the store the validation read,
//     so the copy is coherent either way; readers trust the stamps
//     inside the copy, never the slot index.
//
// Reads are lock-free: a reader retries only when the writer published
// concurrently, and never waits on a lock or on another reader. The
// writer never waits at all.
//
// The ring enables time-travel reads: ReadAsOf(v) returns the newest
// retained snapshot whose state_version <= v, or fails if every
// retained snapshot is newer (the version was evicted — callers must
// treat eviction as "history gone", not as an error to retry).
//
// Freshness waits: WaitForStateVersion(v) blocks until a publish with
// state_version >= v lands (the publisher notifies only when waiters
// are registered, so the publish hot path stays two atomic stores).
// Published state versions are nondecreasing — degraded publishes
// freeze at the last clean version, never an older one.
//
// Degraded publishes (snap.stale == true, the fault path): the publisher
// freezes the CONTENT at the last clean snapshot — sample, threshold,
// L1, state version — republishing it with the stale flag and the
// caller's fresh coherence stamps. A crashed or gapped shard therefore
// serves its last clean epoch's answer, visibly flagged, rather than a
// silently wrong partial state (see query_service.h for how the merge
// surfaces the flag).

#ifndef DWRS_QUERY_SNAPSHOT_H_
#define DWRS_QUERY_SNAPSHOT_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "sampling/mergeable_sample.h"
#include "sim/message.h"

namespace dwrs::query {

struct ShardSnapshot {
  // Publisher-assigned publish sequence (1-based, monotone per shard).
  uint64_t publish_seq = 0;
  // Coordinator state version at capture (sim::CoordinatorNode::
  // StateVersion): identifies the delivered-message prefix the content
  // reflects. Frozen while stale.
  uint64_t state_version = 0;
  // Backend step clock at capture. Exact at quiesce points; under
  // pipelined ingestion an upper bound on the prefix the content covers.
  uint64_t steps = 0;
  // Fault-model coherence: highest site crash epoch folded into this
  // shard (0 on a reliable transport), and whether the content had to be
  // frozen at the last clean state (session gaps unresolved / data loss
  // detected).
  uint64_t session_epoch = 0;
  bool stale = false;

  // The shard coordinator's mergeable summary, stamped with
  // state_version by the exporter.
  MergeableSample sample;
  // Derived scalars served without touching the coordinator again.
  double threshold = 0.0;
  double l1_estimate = 0.0;
  sim::MessageStats messages;
};

class SnapshotPublisher {
 public:
  // ring_depth = R: how many published snapshots stay readable for
  // ReadAsOf. 1 degenerates to the PR 5 latest-only cell.
  explicit SnapshotPublisher(int ring_depth = 1);
  ~SnapshotPublisher();

  SnapshotPublisher(const SnapshotPublisher&) = delete;
  SnapshotPublisher& operator=(const SnapshotPublisher&) = delete;

  // Writer thread only. Assigns the publish sequence and makes `snap`
  // the snapshot subsequent Read() calls return. When snap.stale is set
  // the content fields are replaced by the last clean publish's (see the
  // header comment); the coherence stamps (steps, session_epoch,
  // messages) stay the caller's.
  void Publish(ShardSnapshot snap);

  // Any thread, lock-free. Copies the latest published snapshot into
  // `*out`; false iff nothing has been published yet. Successive reads
  // (from one thread) see monotonically nondecreasing publish_seq.
  bool Read(ShardSnapshot* out) const;

  // Any thread, lock-free. Copies the newest retained snapshot whose
  // state_version <= max_state_version into `*out`. False when nothing
  // has been published, or when every snapshot still in the ring is
  // newer than max_state_version — i.e. the requested version has been
  // evicted past the ring depth; history that far back is gone.
  bool ReadAsOf(uint64_t max_state_version, ShardSnapshot* out) const;

  // Any thread. Blocks until a publish with state_version >= version
  // lands or `timeout` elapses; true iff the version was reached. The
  // caller is expected to re-read after a true return. Pairs with the
  // engine's publish hook: publishes happen on the coordinator thread
  // at quiesce points, so waiting here is waiting on ingestion itself.
  bool WaitForStateVersion(uint64_t version,
                           std::chrono::nanoseconds timeout) const;

  // Publishes performed so far (writer-exact; readers see it lag at most
  // one in-flight publish behind Read()).
  uint64_t publish_count() const {
    return publish_count_.load(std::memory_order_acquire);
  }

  // Cheap revalidation probes for the merge cache: the publish sequence
  // / state version of the most recent publish, without copying the
  // snapshot. Readers may see these lag the ring by at most one
  // in-flight publish (they are stored after the slot swap), which can
  // only turn a cache hit into a miss — never serve a wrong entry,
  // because the cache key is compared against these same probes.
  uint64_t latest_seq() const {
    return latest_seq_.load(std::memory_order_seq_cst);
  }
  uint64_t latest_state_version() const {
    return latest_version_.load(std::memory_order_seq_cst);
  }

  int ring_depth() const { return static_cast<int>(ring_.size()); }

  // Writer thread only: the state_version of the most recent publish
  // (after any degraded-content freezing), 0 before the first. Lets the
  // writer skip republishing unchanged state without copying a
  // snapshot back out.
  uint64_t published_state_version() const { return published_state_version_; }

  // Shard label stamped on this publisher's flight-recorder events
  // (writer thread only; set before the first Publish).
  void set_trace_shard(int shard) { trace_shard_ = shard; }

 private:
  struct Node {
    ShardSnapshot snap;
    // Readers currently copying this node's content.
    std::atomic<uint64_t> refs{0};
    // Writer-owned: true while some ring slot references this node
    // (such nodes are live and must not be recycled).
    bool in_ring = false;
  };

  Node* AcquireFreeNode();

  // R live slots; slot (publish_seq - 1) % R holds that publish.
  std::vector<std::atomic<Node*>> ring_;
  std::atomic<Node*> latest_{nullptr};
  std::atomic<uint64_t> latest_seq_{0};
  std::atomic<uint64_t> latest_version_{0};
  std::atomic<uint64_t> publish_count_{0};

  // Freshness-SLO waiters. The publish path pays one relaxed-ish atomic
  // load when nobody waits; the mutex is touched only around the
  // condition variable.
  mutable std::mutex wait_mutex_;
  mutable std::condition_variable wait_cv_;
  mutable std::atomic<uint32_t> waiters_{0};

  // Writer-owned. Nodes live until destruction (never freed while a
  // reader could hold a stale pointer); the pool grows past its initial
  // size only while readers pin every spare node.
  std::vector<std::unique_ptr<Node>> pool_;
  // Writer-owned mirror of ring_ contents (avoids atomic loads when
  // evicting).
  std::vector<Node*> ring_mirror_;
  uint64_t next_seq_ = 0;
  uint64_t published_state_version_ = 0;
  int trace_shard_ = 0;
  ShardSnapshot last_clean_;
  bool have_clean_ = false;
};

}  // namespace dwrs::query

#endif  // DWRS_QUERY_SNAPSHOT_H_
