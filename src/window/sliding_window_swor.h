// Centralized sliding-window weighted SWOR: at every point the sample is
// an exact weighted SWOR of the items that arrived within the last
// `window` steps, using per-item exponential keys and the skyline of
// potentially-useful items (O(s log(window)) expected space).

#ifndef DWRS_WINDOW_SLIDING_WINDOW_SWOR_H_
#define DWRS_WINDOW_SLIDING_WINDOW_SWOR_H_

#include <cstdint>
#include <vector>

#include "random/rng.h"
#include "sampling/keyed_item.h"
#include "stream/item.h"
#include "window/skyline.h"

namespace dwrs {

class SlidingWindowWswor {
 public:
  SlidingWindowWswor(int sample_size, uint64_t window, uint64_t seed);

  // Each Add advances time by one step (sequence-based window).
  void Add(const Item& item);

  // Weighted SWOR over the current window (size min(filled, s)).
  std::vector<KeyedItem> Sample() const;

  uint64_t count() const { return count_; }
  size_t SkylineSize() const { return skyline_.size(); }

 private:
  Rng rng_;
  uint64_t count_ = 0;
  KeySkyline skyline_;
};

}  // namespace dwrs

#endif  // DWRS_WINDOW_SLIDING_WINDOW_SWOR_H_
