#include "window/distributed_window.h"

#include <algorithm>

#include "random/distributions.h"
#include "util/check.h"

namespace dwrs {

WindowSite::WindowSite(const WindowConfig& config, int site_index,
                       sim::Transport* transport, uint64_t seed)
    : config_(config),
      site_index_(site_index),
      transport_(transport),
      rng_(seed),
      skyline_(config.sample_size, config.window) {
  DWRS_CHECK(transport != nullptr);
}

void WindowSite::ForwardNewTopEntries(uint64_t now) {
  for (size_t idx : skyline_.TopIndices(now)) {
    const KeySkyline::Entry& e = skyline_.entries()[idx];
    if (forwarded_.contains(e.item.id)) continue;
    forwarded_.insert(e.item.id);
    DWRS_CHECK_LT(e.item.id, 1ull << 40);
    DWRS_CHECK_LT(e.step, 1ull << 24);
    sim::Payload msg;
    msg.type = kWindowCandidate;
    msg.a = (e.step << 40) | e.item.id;  // arrival step rides along
    msg.x = e.item.weight;
    msg.y = e.key;
    msg.words = 4;
    transport_->SendToCoordinator(site_index_, msg);
  }
  // Forget ids that can never be forwarded again (left the window) to
  // keep the set small.
  if (forwarded_.size() > 4 * config_.window) {
    std::unordered_set<uint64_t> live;
    for (const auto& e : skyline_.entries()) {
      if (forwarded_.contains(e.item.id)) live.insert(e.item.id);
    }
    forwarded_ = std::move(live);
  }
}

void WindowSite::OnItem(const Item& item) { OnItems(&item, 1); }

void WindowSite::OnItems(const Item* items, size_t n) {
  // The round clock is read once per span: every item of the span
  // arrives at the same global step (the step-synchronous simulator — the
  // only backend driving this time-based protocol — delivers one item per
  // step, so spans larger than 1 only occur within a single step).
  const uint64_t now = transport_->step();
  skyline_.ExpireUpTo(now);
  for (size_t i = 0; i < n; ++i) {
    DWRS_CHECK_GT(items[i].weight, 0.0);
    skyline_.Add(now, items[i], items[i].weight / Exponential(rng_));
    // Expiries can promote older entries into the local top-s, and the
    // new arrival may enter it directly; forward anything newly promoted.
    ForwardNewTopEntries(now);
  }
}

void WindowSite::OnRound(uint64_t step) {
  if (skyline_.size() == 0) return;
  // Only act when the oldest entry actually left the window (a promotion
  // can only happen via an expiry).
  if (skyline_.entries().front().step + config_.window > step) return;
  skyline_.ExpireUpTo(step);
  ForwardNewTopEntries(step);
}

void WindowSite::OnMessage(const sim::Payload& msg) {
  DWRS_CHECK(false) << " window sites receive no messages, got type "
                    << msg.type;
}

WindowCoordinator::WindowCoordinator(const WindowConfig& config,
                                     sim::Transport* transport)
    : transport_(transport), skyline_(config.sample_size, config.window) {
  DWRS_CHECK(transport != nullptr);
}

void WindowCoordinator::OnMessage(int /*site*/, const sim::Payload& msg) {
  DWRS_CHECK_EQ(msg.type, static_cast<uint32_t>(kWindowCandidate));
  const uint64_t arrival_step = msg.a >> 40;
  const uint64_t id = msg.a & ((1ull << 40) - 1);
  skyline_.ExpireUpTo(transport_->step());
  // Insert at the item's ORIGINAL arrival step so its expiry is exact
  // even when it was promoted (and forwarded) later.
  skyline_.Add(arrival_step, Item{id, msg.x}, msg.y);
}

std::vector<KeyedItem> WindowCoordinator::Sample() const {
  return skyline_.Sample(transport_->step());
}

DistributedWindowWswor::DistributedWindowWswor(const WindowConfig& config)
    : config_(config), runtime_(config.num_sites) {
  Rng master(config.seed);
  for (int i = 0; i < config.num_sites; ++i) {
    sites_.push_back(std::make_unique<WindowSite>(
        config_, i, &runtime_.network(), master.NextU64()));
    runtime_.AttachSite(i, sites_.back().get());
    runtime_.AttachTicker(sites_.back().get());
  }
  coordinator_ =
      std::make_unique<WindowCoordinator>(config_, &runtime_.network());
  runtime_.AttachCoordinator(coordinator_.get());
}

void DistributedWindowWswor::Observe(int site, const Item& item) {
  runtime_.Deliver(WorkloadEvent{site, item});
}

void DistributedWindowWswor::Run(
    const Workload& workload, const std::function<void(uint64_t)>& on_step) {
  for (uint64_t i = 0; i < workload.size(); ++i) {
    Observe(workload.event(i).site, workload.event(i).item);
    if (on_step) on_step(i + 1);
  }
}

size_t DistributedWindowWswor::MaxSiteSkyline() const {
  size_t max_size = 0;
  for (const auto& site : sites_) {
    max_size = std::max(max_size, site->SkylineSize());
  }
  return max_size;
}

}  // namespace dwrs
