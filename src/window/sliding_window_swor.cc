#include "window/sliding_window_swor.h"

#include "random/distributions.h"
#include "util/check.h"

namespace dwrs {

SlidingWindowWswor::SlidingWindowWswor(int sample_size, uint64_t window,
                                       uint64_t seed)
    : rng_(seed), skyline_(sample_size, window) {}

void SlidingWindowWswor::Add(const Item& item) {
  DWRS_CHECK_GT(item.weight, 0.0);
  ++count_;
  skyline_.ExpireUpTo(count_);
  skyline_.Add(count_, item, item.weight / Exponential(rng_));
}

std::vector<KeyedItem> SlidingWindowWswor::Sample() const {
  return skyline_.Sample(count_);
}

}  // namespace dwrs
