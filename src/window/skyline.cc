#include "window/skyline.h"

#include <algorithm>

#include "util/check.h"

namespace dwrs {

KeySkyline::KeySkyline(int sample_size, uint64_t window)
    : sample_size_(sample_size), window_(window) {
  DWRS_CHECK_GT(sample_size, 0);
  DWRS_CHECK_GT(window, 0u);
}

void KeySkyline::Add(uint64_t step, const Item& item, double key) {
  // The newcomer beats every OLDER retained entry with a smaller key (an
  // entry beaten s times can never again be in a window top-s), and is
  // itself beaten by every NEWER retained entry with a larger key.
  int my_beaten = 0;
  size_t kept = 0;
  for (size_t i = 0; i < entries_.size(); ++i) {
    Entry& e = entries_[i];
    if (e.step > step) {
      if (e.key > key) ++my_beaten;
    } else if (e.key < key) {
      ++e.beaten;
    }
    if (e.beaten < sample_size_) {
      if (kept != i) entries_[kept] = entries_[i];
      ++kept;
    }
  }
  entries_.resize(kept);
  if (my_beaten >= sample_size_) return;  // dead on arrival
  const Entry entry{step, item, key, my_beaten};
  const auto pos = std::upper_bound(
      entries_.begin(), entries_.end(), step,
      [](uint64_t s, const Entry& e) { return s < e.step; });
  entries_.insert(pos, entry);
}

void KeySkyline::ExpireUpTo(uint64_t now) {
  size_t first_live = 0;
  while (first_live < entries_.size() &&
         !InWindow(entries_[first_live].step, now)) {
    ++first_live;
  }
  if (first_live > 0) {
    entries_.erase(entries_.begin(),
                   entries_.begin() + static_cast<long>(first_live));
  }
}

std::vector<size_t> KeySkyline::TopIndices(uint64_t now) const {
  std::vector<size_t> live;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (InWindow(entries_[i].step, now)) live.push_back(i);
  }
  const size_t take =
      std::min(live.size(), static_cast<size_t>(sample_size_));
  std::partial_sort(live.begin(), live.begin() + static_cast<long>(take),
                    live.end(), [this](size_t a, size_t b) {
                      return entries_[a].key > entries_[b].key;
                    });
  live.resize(take);
  return live;
}

std::vector<KeyedItem> KeySkyline::Sample(uint64_t now) const {
  std::vector<KeyedItem> out;
  for (size_t i : TopIndices(now)) {
    out.push_back(KeyedItem{entries_[i].item, entries_[i].key});
  }
  return out;
}

}  // namespace dwrs
