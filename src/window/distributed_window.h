// Distributed sliding-window weighted SWOR.
//
// The paper leaves the message-optimal sliding-window protocol open
// (Section 6); this module provides a correct working protocol: every
// site runs a local key skyline over the global round clock and forwards
// an item the moment it (re-)enters the site's local window top-s — if
// an item is in the GLOBAL window top-s it is certainly in its own
// site's local top-s, so the coordinator always holds every candidate.
// Each item is forwarded at most once; the measured message cost is far
// below one per item on stable streams (bench E13), though no optimality
// claim is made.

#ifndef DWRS_WINDOW_DISTRIBUTED_WINDOW_H_
#define DWRS_WINDOW_DISTRIBUTED_WINDOW_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "random/rng.h"
#include "sampling/keyed_item.h"
#include "sim/runtime.h"
#include "stream/workload.h"
#include "window/skyline.h"

namespace dwrs {

enum WindowMessageType : uint32_t {
  kWindowCandidate = 1,  // site -> coord: (step<<40 | id, weight, key)
};

struct WindowConfig {
  int num_sites = 4;
  int sample_size = 16;
  uint64_t window = 1024;  // in global rounds
  uint64_t seed = 1;
};

class WindowSite : public sim::SiteNode {
 public:
  // Excluded from the fault harness (src/faults/): the window protocol's
  // site state (skyline + forwarded-id set keyed to the round clock) is
  // not reconstructible from coordinator state, and its OnRound ticker
  // only exists on the synchronous backend.
  static constexpr bool kRequiresReliableTransport = true;

  WindowSite(const WindowConfig& config, int site_index,
             sim::Transport* transport, uint64_t seed);

  void OnItem(const Item& item) override;
  void OnItems(const Item* items, size_t n) override;
  void OnMessage(const sim::Payload& msg) override;
  // Expiry of older entries can promote retained ones into the local
  // top-s; react to the round clock even without a local arrival.
  void OnRound(uint64_t step) override;

  size_t SkylineSize() const { return skyline_.size(); }

 private:
  void ForwardNewTopEntries(uint64_t now);

  const WindowConfig config_;
  int site_index_;
  sim::Transport* transport_;
  Rng rng_;
  KeySkyline skyline_;
  std::unordered_set<uint64_t> forwarded_;  // item ids already sent
};

class WindowCoordinator : public sim::CoordinatorNode {
 public:
  WindowCoordinator(const WindowConfig& config, sim::Transport* transport);

  void OnMessage(int site, const sim::Payload& msg) override;

  // Weighted SWOR of the items whose arrival step lies in the window.
  std::vector<KeyedItem> Sample() const;

  size_t SkylineSize() const { return skyline_.size(); }

 private:
  sim::Transport* transport_;
  KeySkyline skyline_;
};

class DistributedWindowWswor {
 public:
  explicit DistributedWindowWswor(const WindowConfig& config);

  void Observe(int site, const Item& item);
  void Run(const Workload& workload,
           const std::function<void(uint64_t)>& on_step = nullptr);

  std::vector<KeyedItem> Sample() const { return coordinator_->Sample(); }
  const sim::MessageStats& stats() const { return runtime_.stats(); }

  // Space audit across all nodes.
  size_t MaxSiteSkyline() const;
  size_t CoordinatorSkyline() const { return coordinator_->SkylineSize(); }

 private:
  WindowConfig config_;
  sim::Runtime runtime_;
  std::vector<std::unique_ptr<WindowSite>> sites_;
  std::unique_ptr<WindowCoordinator> coordinator_;
};

}  // namespace dwrs

#endif  // DWRS_WINDOW_DISTRIBUTED_WINDOW_H_
