// Key skyline for sliding-window weighted sampling (the paper's Section 6
// names the sliding-window extension as an open direction; this module
// provides the standard skyline construction on top of the same
// exponential keys).
//
// An item is *useful* for some window iff fewer than s later items carry
// larger keys: once s newer items beat it, it can never re-enter any
// future window's top-s. The skyline retains exactly the useful items;
// its expected size is O(s log(window/s)).

#ifndef DWRS_WINDOW_SKYLINE_H_
#define DWRS_WINDOW_SKYLINE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sampling/keyed_item.h"
#include "stream/item.h"

namespace dwrs {

class KeySkyline {
 public:
  // `sample_size` is s; `window` the number of most recent steps that
  // constitute the active window.
  KeySkyline(int sample_size, uint64_t window);

  // Records an item with its (already drawn) key at global time `step`.
  // Out-of-order steps are supported (a distributed site may promote and
  // forward an old item after newer ones); entries stay sorted by step.
  void Add(uint64_t step, const Item& item, double key);

  // Drops entries that have left the window as of time `now`.
  void ExpireUpTo(uint64_t now);

  // The weighted SWOR of the current window: top-s keys among retained,
  // unexpired entries, descending. `now` is the current global time.
  std::vector<KeyedItem> Sample(uint64_t now) const;

  // All retained entries (sorted by step). Used by the distributed site
  // to detect items entering the local top-s.
  struct Entry {
    uint64_t step = 0;
    Item item;
    double key = 0.0;
    int beaten = 0;  // newer items with larger keys
  };
  const std::vector<Entry>& entries() const { return entries_; }

  size_t size() const { return entries_.size(); }
  int sample_size() const { return sample_size_; }
  uint64_t window() const { return window_; }

  // Indices (into entries()) of the current top-s by key at time `now`.
  std::vector<size_t> TopIndices(uint64_t now) const;

 private:
  bool InWindow(uint64_t step, uint64_t now) const {
    return step + window_ > now;
  }

  int sample_size_;
  uint64_t window_;
  std::vector<Entry> entries_;  // sorted by step
};

}  // namespace dwrs

#endif  // DWRS_WINDOW_SKYLINE_H_
