#include "sampling/cascade.h"

#include <algorithm>

#include "random/distributions.h"
#include "util/check.h"

namespace dwrs {

CascadeSampler::CascadeSampler(int sample_size, uint64_t seed)
    : rng_(seed), stages_(static_cast<size_t>(sample_size)) {
  DWRS_CHECK_GT(sample_size, 0);
}

void CascadeSampler::Add(const Item& item) {
  DWRS_CHECK_GT(item.weight, 0.0);
  ++count_;
  KeyedItem candidate{item, item.weight / Exponential(rng_)};
  // Invariant: stage keys are decreasing, so a candidate below the final
  // stage's key cannot enter the chain at all — the O(1) common case.
  if (stages_.back().filled && candidate.key <= stages_.back().held.key) {
    return;
  }
  for (Stage& stage : stages_) {
    ++cascade_hops_;
    if (!stage.filled) {
      stage.held = candidate;
      stage.filled = true;
      return;
    }
    if (candidate.key > stage.held.key) {
      // The displaced item keeps its key and races downstream.
      std::swap(candidate, stage.held);
    }
  }
  // The final displaced item falls off the end of the chain.
}

std::vector<KeyedItem> CascadeSampler::Sample() const {
  std::vector<KeyedItem> out;
  for (const Stage& stage : stages_) {
    if (stage.filled) out.push_back(stage.held);
  }
  return out;
}

}  // namespace dwrs
