// Bounded container keeping the `capacity` entries with the largest keys.
// This is the sample set S maintained by every sampler in the repository;
// the min entry is the paper's threshold u (the s-th largest key).

#ifndef DWRS_SAMPLING_TOP_KEY_HEAP_H_
#define DWRS_SAMPLING_TOP_KEY_HEAP_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/check.h"

namespace dwrs {

template <typename T>
class TopKeyHeap {
 public:
  struct Entry {
    double key;
    T value;
  };

  explicit TopKeyHeap(size_t capacity) : capacity_(capacity) {
    DWRS_CHECK_GT(capacity, 0u);
    entries_.reserve(capacity + 1);
  }

  // Inserts when the heap has room or `key` beats the current minimum.
  // Returns true when the entry was kept; the evicted minimum (if any) is
  // stored into *evicted when non-null.
  bool Offer(double key, T value, Entry* evicted = nullptr) {
    if (entries_.size() < capacity_) {
      entries_.push_back(Entry{key, std::move(value)});
      std::push_heap(entries_.begin(), entries_.end(), MinFirst());
      return true;
    }
    if (key <= entries_.front().key) return false;
    std::pop_heap(entries_.begin(), entries_.end(), MinFirst());
    if (evicted != nullptr) *evicted = std::move(entries_.back());
    entries_.back() = Entry{key, std::move(value)};
    std::push_heap(entries_.begin(), entries_.end(), MinFirst());
    return true;
  }

  bool full() const { return entries_.size() >= capacity_; }
  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }

  // The s-th largest key once full; 0 before that (the paper's u starts at
  // 0 until the sample fills).
  double ThresholdOrZero() const {
    return full() ? entries_.front().key : 0.0;
  }

  // Smallest retained key; requires a nonempty heap.
  double MinKey() const {
    DWRS_CHECK(!entries_.empty());
    return entries_.front().key;
  }

  const std::vector<Entry>& entries() const { return entries_; }

  // Removes and returns all entries matching `pred`, preserving the heap.
  std::vector<Entry> ExtractIf(const std::function<bool(const Entry&)>& pred) {
    std::vector<Entry> out;
    size_t kept = 0;
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (pred(entries_[i])) {
        out.push_back(std::move(entries_[i]));
      } else {
        entries_[kept++] = std::move(entries_[i]);
      }
    }
    entries_.resize(kept);
    std::make_heap(entries_.begin(), entries_.end(), MinFirst());
    return out;
  }

  // Entries sorted by key descending (copy).
  std::vector<Entry> SortedDescending() const {
    std::vector<Entry> out = entries_;
    std::sort(out.begin(), out.end(),
              [](const Entry& a, const Entry& b) { return a.key > b.key; });
    return out;
  }

 private:
  struct MinFirst {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.key > b.key;  // min-heap on key
    }
  };

  size_t capacity_;
  std::vector<Entry> entries_;
};

}  // namespace dwrs

#endif  // DWRS_SAMPLING_TOP_KEY_HEAP_H_
