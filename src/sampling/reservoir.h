// Classical unweighted reservoir sampling: Vitter's Algorithm R and the
// skip-based Algorithm L. These are the centralized ancestors of the
// distributed samplers and serve as reference distributions in tests.

#ifndef DWRS_SAMPLING_RESERVOIR_H_
#define DWRS_SAMPLING_RESERVOIR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "random/rng.h"
#include "stream/item.h"

namespace dwrs {

// Algorithm R: O(1) per item, replaces position j < s with prob s/t.
class ReservoirSampler {
 public:
  ReservoirSampler(int sample_size, uint64_t seed);

  void Add(const Item& item);

  const std::vector<Item>& sample() const { return sample_; }
  uint64_t count() const { return count_; }

 private:
  size_t sample_size_;
  uint64_t count_ = 0;
  Rng rng_;
  std::vector<Item> sample_;
};

// Algorithm L: geometric skips; o(1) amortized RNG work per item.
class SkipReservoirSampler {
 public:
  SkipReservoirSampler(int sample_size, uint64_t seed);

  void Add(const Item& item);

  const std::vector<Item>& sample() const { return sample_; }
  uint64_t count() const { return count_; }

 private:
  void ScheduleNext();

  size_t sample_size_;
  uint64_t count_ = 0;
  uint64_t next_accept_ = 0;  // 1-based index of next accepted item
  double w_ = 1.0;
  Rng rng_;
  std::vector<Item> sample_;
};

}  // namespace dwrs

#endif  // DWRS_SAMPLING_RESERVOIR_H_
