#include "sampling/weighted_swr.h"

#include <unordered_set>

#include "random/distributions.h"
#include "util/check.h"

namespace dwrs {

CentralizedWeightedSwr::CentralizedWeightedSwr(int sample_size, uint64_t seed)
    : rng_(seed), slots_(static_cast<size_t>(sample_size)) {
  DWRS_CHECK_GT(sample_size, 0);
}

void CentralizedWeightedSwr::Add(const Item& item) {
  DWRS_CHECK_GT(item.weight, 0.0);
  ++count_;
  for (Slot& slot : slots_) {
    const double key = item.weight / Exponential(rng_);
    if (key > slot.key) {
      slot.key = key;
      slot.item = item;
    }
  }
}

std::vector<Item> CentralizedWeightedSwr::Sample() const {
  std::vector<Item> out;
  if (count_ == 0) return out;
  out.reserve(slots_.size());
  for (const Slot& slot : slots_) out.push_back(slot.item);
  return out;
}

size_t CentralizedWeightedSwr::DistinctInSample() const {
  std::unordered_set<uint64_t> ids;
  for (const Item& item : Sample()) ids.insert(item.id);
  return ids.size();
}

}  // namespace dwrs
