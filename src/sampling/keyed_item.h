// An item together with its precision-sampling key v = w / Exp(1).

#ifndef DWRS_SAMPLING_KEYED_ITEM_H_
#define DWRS_SAMPLING_KEYED_ITEM_H_

#include "stream/item.h"

namespace dwrs {

struct KeyedItem {
  Item item;
  double key = 0.0;
};

}  // namespace dwrs

#endif  // DWRS_SAMPLING_KEYED_ITEM_H_
