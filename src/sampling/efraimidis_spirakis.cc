#include "sampling/efraimidis_spirakis.h"

#include "random/distributions.h"
#include "util/check.h"

namespace dwrs {

CentralizedWswor::CentralizedWswor(int sample_size, uint64_t seed)
    : rng_(seed), heap_(static_cast<size_t>(sample_size)) {
  DWRS_CHECK_GT(sample_size, 0);
}

void CentralizedWswor::Add(const Item& item) {
  DWRS_CHECK_GT(item.weight, 0.0);
  ++count_;
  const double key = item.weight / Exponential(rng_);
  heap_.Offer(key, item);
}

std::vector<KeyedItem> CentralizedWswor::Sample() const {
  std::vector<KeyedItem> out;
  for (const auto& e : heap_.SortedDescending()) {
    out.push_back(KeyedItem{e.value, e.key});
  }
  return out;
}

CentralizedWsworSkip::CentralizedWsworSkip(int sample_size, uint64_t seed)
    : sample_size_(static_cast<size_t>(sample_size)),
      rng_(seed),
      heap_(static_cast<size_t>(sample_size)) {
  DWRS_CHECK_GT(sample_size, 0);
}

void CentralizedWsworSkip::Add(const Item& item) {
  DWRS_CHECK_GT(item.weight, 0.0);
  ++count_;
  if (!heap_.full()) {
    heap_.Offer(item.weight / Exponential(rng_), item);
    if (heap_.full()) {
      weight_to_skip_ = heap_.MinKey() * Exponential(rng_);
      skip_armed_ = true;
    }
    return;
  }
  DWRS_CHECK(skip_armed_);
  if (item.weight < weight_to_skip_) {
    // The exponential jump skips past this item entirely.
    weight_to_skip_ -= item.weight;
    return;
  }
  // This item's key beats the threshold; draw it from the conditional law:
  // v = w / t with t ~ Exp(1) | t < w / threshold.
  const double threshold = heap_.MinKey();
  const double t = TruncatedExponential(rng_, item.weight / threshold);
  heap_.Offer(item.weight / t, item);
  weight_to_skip_ = heap_.MinKey() * Exponential(rng_);
}

std::vector<KeyedItem> CentralizedWsworSkip::Sample() const {
  std::vector<KeyedItem> out;
  for (const auto& e : heap_.SortedDescending()) {
    out.push_back(KeyedItem{e.value, e.key});
  }
  return out;
}

}  // namespace dwrs
