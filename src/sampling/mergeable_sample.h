// Mergeable shard summaries: the compact, exactly-composable sample
// state a shard coordinator exports at a quiesce point, and the merge
// operator that combines any number of shard summaries into the summary
// (and hence the sample) a single coordinator over the union of the
// shards' streams would answer with — distribution-exact, because every
// sampler in this repository is key-based and each item's key is drawn
// exactly once, at exactly one shard:
//
//   kTopKey    — keep the target_size entries with the LARGEST stored
//                keys across shards (weighted SWOR's v = w/Exp(1) keys;
//                the unweighted substrate stores its uniform keys
//                NEGATED, so the same max-order merge realizes its
//                min-key semantics). Level-tagged withheld entries merge
//                by level (per-level counts are summed) and are then
//                re-thinned to the global top-target_size — Proposition
//                6's compaction applied across shards: an entry beaten
//                by target_size other *withheld* entries can never reach
//                any merged sample, no matter what merges later.
//   kSlotMin   — per-race minimum (sampling with replacement: Theorem
//                1's s independent races); merge takes the slot-wise
//                key minimum.
//   kScalarSum — a scalar that composes by summation (the sharded L1
//                tracker: per-shard W-hat estimates sum to a global
//                (1 +/- eps) W-hat, since each shard errs by at most
//                eps times its own share of the mass).
//
// The merge is associative and commutative up to floating-point key
// ties (keys are continuous, so exact ties have probability zero; the
// deterministic (key, id) order makes even the tie case reproducible),
// which is what lets a root stage combine shard samples pairwise, in
// one pass, or hierarchically — the mergeable-summary property that
// makes the sharded topology exact rather than approximate.

#ifndef DWRS_SAMPLING_MERGEABLE_SAMPLE_H_
#define DWRS_SAMPLING_MERGEABLE_SAMPLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sampling/keyed_item.h"
#include "stream/item.h"

namespace dwrs {

// A withheld (level-set) entry tagged with its level (Definition 4).
struct LeveledKeyedItem {
  KeyedItem entry;
  int level = -1;
};

// Arrival count of one level set, summed across shards by the merge.
struct LevelCount {
  int level = 0;
  uint64_t count = 0;
};

enum class SampleKind : uint8_t {
  kEmpty = 0,   // coordinator exports no mergeable state
  kTopKey,      // top-target_size entries by key (+ optional level sets)
  kSlotMin,     // per-slot key minimum (SWR races)
  kScalarSum,   // scalar composing by summation
};

struct MergeableSample {
  SampleKind kind = SampleKind::kEmpty;
  // kTopKey: the sample size s. kSlotMin: the number of races.
  size_t target_size = 0;

  // Exporting coordinator's state version at export time
  // (sim::CoordinatorNode::StateVersion): a monotone per-coordinator
  // state stamp, 0 when the exporter does not track versions. The merge
  // takes the maximum — versions of different shards are not mutually
  // ordered, so the merged stamp is only a freshness hint; exact
  // per-shard versions live in the query layer (src/query/). For a
  // single shard the stamp identifies the exported state precisely.
  uint64_t state_version = 0;

  // kTopKey: released/regular candidates (shard coordinator's S).
  std::vector<KeyedItem> entries;
  // kTopKey: withheld candidates with their levels (shard's D), plus the
  // per-level arrival counts backing the saturation bookkeeping.
  std::vector<LeveledKeyedItem> withheld;
  std::vector<LevelCount> level_counts;  // ascending by level

  // kSlotMin: one slot per race; unfilled slots lose every merge.
  struct Slot {
    bool filled = false;
    double key = 0.0;
    Item item;
  };
  std::vector<Slot> slots;

  // kScalarSum.
  double scalar = 0.0;

  // The merged sample this summary answers queries with: kTopKey — the
  // top-target_size of entries ∪ withheld, descending by stored key (ties
  // by ascending id); kSlotMin — the filled slots in race order (key =
  // the race minimum); empty for kScalarSum/kEmpty.
  std::vector<KeyedItem> TopEntries() const;

  // Total arrivals recorded in level_counts for `level` (0 if absent).
  uint64_t LevelCountOf(int level) const;
};

// Exact merge of shard summaries. All non-empty inputs must agree on
// kind and target_size; kEmpty inputs are ignored (identity element).
// The result is again a valid shard summary, so merging nests.
MergeableSample MergeShardSamples(const std::vector<MergeableSample>& shards);

}  // namespace dwrs

#endif  // DWRS_SAMPLING_MERGEABLE_SAMPLE_H_
