// TopKeyHeap is header-only (template); this translation unit exists to
// compile the header standalone and to anchor the module in the build.

#include "sampling/top_key_heap.h"

#include "stream/item.h"

namespace dwrs {

template class TopKeyHeap<Item>;
template class TopKeyHeap<uint64_t>;

}  // namespace dwrs
