// Centralized weighted sampling without replacement via exponential keys
// (Efraimidis & Spirakis 2006; precision-sampling formulation of the
// paper's Proposition 1): every item gets key v = w / Exp(1) and the
// sample is the top-s keys. This is the exact reference distribution the
// distributed sampler must reproduce.

#ifndef DWRS_SAMPLING_EFRAIMIDIS_SPIRAKIS_H_
#define DWRS_SAMPLING_EFRAIMIDIS_SPIRAKIS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "random/rng.h"
#include "sampling/keyed_item.h"
#include "sampling/top_key_heap.h"
#include "stream/item.h"

namespace dwrs {

// One key drawn per item; O(log s) per item via the bounded heap.
class CentralizedWswor {
 public:
  CentralizedWswor(int sample_size, uint64_t seed);

  void Add(const Item& item);

  // Sample (all items seen if fewer than s), keys descending.
  std::vector<KeyedItem> Sample() const;

  // The s-th largest key; 0 while fewer than s items have been seen.
  double Threshold() const { return heap_.ThresholdOrZero(); }

  uint64_t count() const { return count_; }

 private:
  Rng rng_;
  uint64_t count_ = 0;
  TopKeyHeap<Item> heap_;
};

// A-ExpJ: the exponential-jump variant that only draws O(s log(W/s))
// variates in total by skipping over cumulative weight.
class CentralizedWsworSkip {
 public:
  CentralizedWsworSkip(int sample_size, uint64_t seed);

  void Add(const Item& item);

  std::vector<KeyedItem> Sample() const;

  uint64_t count() const { return count_; }

 private:
  size_t sample_size_;
  Rng rng_;
  uint64_t count_ = 0;
  double weight_to_skip_ = 0.0;
  bool skip_armed_ = false;
  TopKeyHeap<Item> heap_;
};

}  // namespace dwrs

#endif  // DWRS_SAMPLING_EFRAIMIDIS_SPIRAKIS_H_
