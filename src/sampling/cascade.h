// Cascade sampling (Braverman, Ostrovsky, Vorsanger 2015 — reference [7]
// of the paper): weighted SWOR as a chain of s single-item samplers.
// Sampler 1 races on the raw stream; an item evicted from sampler i
// (with its key) cascades into sampler i+1. Since each stage retains the
// maximum key it has ever seen among its input, stage i holds exactly
// the i-th largest key overall — the chain collectively holds the top-s
// keys, i.e. a weighted SWOR, with O(1) amortized cascade work.

#ifndef DWRS_SAMPLING_CASCADE_H_
#define DWRS_SAMPLING_CASCADE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "random/rng.h"
#include "sampling/keyed_item.h"
#include "stream/item.h"

namespace dwrs {

class CascadeSampler {
 public:
  CascadeSampler(int sample_size, uint64_t seed);

  void Add(const Item& item);

  // Keys descending (stage order).
  std::vector<KeyedItem> Sample() const;

  uint64_t count() const { return count_; }
  // Total number of stage handoffs; ~ s + s*H(n/s) expected over n items.
  uint64_t cascade_hops() const { return cascade_hops_; }

 private:
  struct Stage {
    bool filled = false;
    KeyedItem held;
  };

  Rng rng_;
  uint64_t count_ = 0;
  uint64_t cascade_hops_ = 0;
  std::vector<Stage> stages_;
};

}  // namespace dwrs

#endif  // DWRS_SAMPLING_CASCADE_H_
