#include "sampling/mergeable_sample.h"

#include <algorithm>

#include "util/check.h"

namespace dwrs {

namespace {

// Descending by key, ascending by id on (probability-zero) ties: the one
// deterministic order every consumer of a merged sample sees.
bool KeyedDescending(const KeyedItem& a, const KeyedItem& b) {
  if (a.key != b.key) return a.key > b.key;
  return a.item.id < b.item.id;
}

bool LeveledDescending(const LeveledKeyedItem& a, const LeveledKeyedItem& b) {
  return KeyedDescending(a.entry, b.entry);
}

void TruncateTop(std::vector<KeyedItem>& v, size_t target) {
  std::sort(v.begin(), v.end(), KeyedDescending);
  if (v.size() > target) v.resize(target);
}

}  // namespace

std::vector<KeyedItem> MergeableSample::TopEntries() const {
  std::vector<KeyedItem> out;
  switch (kind) {
    case SampleKind::kEmpty:
    case SampleKind::kScalarSum:
      break;
    case SampleKind::kTopKey: {
      out.reserve(entries.size() + withheld.size());
      out = entries;
      for (const LeveledKeyedItem& le : withheld) out.push_back(le.entry);
      TruncateTop(out, target_size);
      break;
    }
    case SampleKind::kSlotMin: {
      for (const Slot& slot : slots) {
        if (slot.filled) out.push_back(KeyedItem{slot.item, slot.key});
      }
      break;
    }
  }
  return out;
}

uint64_t MergeableSample::LevelCountOf(int level) const {
  for (const LevelCount& lc : level_counts) {
    if (lc.level == level) return lc.count;
  }
  return 0;
}

MergeableSample MergeShardSamples(const std::vector<MergeableSample>& shards) {
  MergeableSample out;
  for (const MergeableSample& shard : shards) {
    if (shard.kind == SampleKind::kEmpty) continue;
    if (out.kind == SampleKind::kEmpty) {
      out.kind = shard.kind;
      out.target_size = shard.target_size;
      if (shard.kind == SampleKind::kSlotMin) {
        out.slots.resize(shard.target_size);
      }
    }
    DWRS_CHECK(shard.kind == out.kind) << " mixed sample kinds in merge";
    DWRS_CHECK_EQ(shard.target_size, out.target_size);
    out.state_version = std::max(out.state_version, shard.state_version);

    switch (shard.kind) {
      case SampleKind::kEmpty:
        break;
      case SampleKind::kTopKey: {
        out.entries.insert(out.entries.end(), shard.entries.begin(),
                           shard.entries.end());
        out.withheld.insert(out.withheld.end(), shard.withheld.begin(),
                            shard.withheld.end());
        for (const LevelCount& lc : shard.level_counts) {
          auto it = std::lower_bound(
              out.level_counts.begin(), out.level_counts.end(), lc.level,
              [](const LevelCount& a, int level) { return a.level < level; });
          if (it != out.level_counts.end() && it->level == lc.level) {
            it->count += lc.count;
          } else {
            out.level_counts.insert(it, lc);
          }
        }
        break;
      }
      case SampleKind::kSlotMin: {
        DWRS_CHECK_EQ(shard.slots.size(), out.slots.size());
        for (size_t i = 0; i < shard.slots.size(); ++i) {
          const MergeableSample::Slot& slot = shard.slots[i];
          if (!slot.filled) continue;
          MergeableSample::Slot& merged = out.slots[i];
          if (!merged.filled || slot.key < merged.key) merged = slot;
        }
        break;
      }
      case SampleKind::kScalarSum:
        out.scalar += shard.scalar;
        break;
    }
  }

  if (out.kind == SampleKind::kTopKey) {
    // Re-thin: only the top-target_size released candidates and the
    // top-target_size withheld candidates can ever appear in a sample of
    // any further merge (each discard is beaten by target_size survivors
    // of its own class, and survivors never leave) — the cross-shard
    // Proposition 6, keeping merged summaries O(s) no matter how many
    // shards fold in.
    TruncateTop(out.entries, out.target_size);
    std::sort(out.withheld.begin(), out.withheld.end(), LeveledDescending);
    if (out.withheld.size() > out.target_size) {
      out.withheld.resize(out.target_size);
    }
  }
  return out;
}

}  // namespace dwrs
