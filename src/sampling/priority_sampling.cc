#include "sampling/priority_sampling.h"

#include <algorithm>

#include "util/check.h"

namespace dwrs {

PrioritySampler::PrioritySampler(int sample_size, uint64_t seed)
    : sample_size_(static_cast<size_t>(sample_size)),
      rng_(seed),
      heap_(static_cast<size_t>(sample_size) + 1) {
  DWRS_CHECK_GT(sample_size, 0);
}

void PrioritySampler::Add(const Item& item) {
  DWRS_CHECK_GT(item.weight, 0.0);
  ++count_;
  const double priority = item.weight / rng_.NextDoubleOpenLeft();
  heap_.Offer(priority, item);
}

double PrioritySampler::Threshold() const {
  if (!heap_.full()) return 0.0;
  return heap_.MinKey();
}

std::vector<Item> PrioritySampler::Sample() const {
  auto sorted = heap_.SortedDescending();
  std::vector<Item> out;
  const size_t n = std::min(sample_size_, sorted.size());
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(sorted[i].value);
  return out;
}

double PrioritySampler::EstimateSubsetSum(
    const std::function<bool(const Item&)>& pred) const {
  const double tau = Threshold();
  double estimate = 0.0;
  for (const Item& item : Sample()) {
    if (pred(item)) estimate += std::max(item.weight, tau);
  }
  return estimate;
}

}  // namespace dwrs
