#include "sampling/reservoir.h"

#include <cmath>

#include "random/distributions.h"
#include "util/check.h"

namespace dwrs {

ReservoirSampler::ReservoirSampler(int sample_size, uint64_t seed)
    : sample_size_(static_cast<size_t>(sample_size)), rng_(seed) {
  DWRS_CHECK_GT(sample_size, 0);
  sample_.reserve(sample_size_);
}

void ReservoirSampler::Add(const Item& item) {
  ++count_;
  if (sample_.size() < sample_size_) {
    sample_.push_back(item);
    return;
  }
  const uint64_t j = rng_.NextBounded(count_);
  if (j < sample_size_) sample_[j] = item;
}

SkipReservoirSampler::SkipReservoirSampler(int sample_size, uint64_t seed)
    : sample_size_(static_cast<size_t>(sample_size)), rng_(seed) {
  DWRS_CHECK_GT(sample_size, 0);
  sample_.reserve(sample_size_);
}

void SkipReservoirSampler::ScheduleNext() {
  // Li (1994): W *= U^{1/s}; skip ~ floor(log(U')/log(1-W)).
  w_ *= std::exp(std::log(rng_.NextDoubleOpenLeft()) /
                 static_cast<double>(sample_size_));
  const double skip = std::floor(std::log(rng_.NextDoubleOpenLeft()) /
                                 std::log1p(-w_));
  next_accept_ += static_cast<uint64_t>(skip) + 1;
}

void SkipReservoirSampler::Add(const Item& item) {
  ++count_;
  if (sample_.size() < sample_size_) {
    sample_.push_back(item);
    if (sample_.size() == sample_size_) {
      next_accept_ = count_;
      ScheduleNext();
    }
    return;
  }
  if (count_ == next_accept_) {
    sample_[rng_.NextBounded(sample_size_)] = item;
    ScheduleNext();
  }
}

}  // namespace dwrs
