// Centralized weighted sampling WITH replacement (paper Definition 2):
// s independent single-item weighted samplers, each realized as a max-key
// race with exponential keys. The sample may contain the same identifier
// many times — exactly the heavy-hitter collapse the paper's introduction
// warns about (reproduced in bench E6).

#ifndef DWRS_SAMPLING_WEIGHTED_SWR_H_
#define DWRS_SAMPLING_WEIGHTED_SWR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "random/rng.h"
#include "stream/item.h"

namespace dwrs {

class CentralizedWeightedSwr {
 public:
  CentralizedWeightedSwr(int sample_size, uint64_t seed);

  void Add(const Item& item);

  // One entry per slot (multiplicities allowed); empty slots omitted when
  // fewer than one item has arrived.
  std::vector<Item> Sample() const;

  // Number of distinct identifiers in the current sample.
  size_t DistinctInSample() const;

  uint64_t count() const { return count_; }

 private:
  struct Slot {
    double key = -1.0;
    Item item;
  };

  Rng rng_;
  uint64_t count_ = 0;
  std::vector<Slot> slots_;
};

}  // namespace dwrs

#endif  // DWRS_SAMPLING_WEIGHTED_SWR_H_
