// Priority sampling (Duffield, Lund, Thorup 2007), cited by the paper as
// the network-monitoring ancestor of precision sampling. Keeps the s
// highest priorities q = w / Uniform(0,1] and estimates any subset sum
// unbiasedly with sum of max(w, tau) over sampled subset members, where
// tau is the (s+1)-st priority. Used by the network-monitoring example.

#ifndef DWRS_SAMPLING_PRIORITY_SAMPLING_H_
#define DWRS_SAMPLING_PRIORITY_SAMPLING_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "random/rng.h"
#include "sampling/top_key_heap.h"
#include "stream/item.h"

namespace dwrs {

class PrioritySampler {
 public:
  PrioritySampler(int sample_size, uint64_t seed);

  void Add(const Item& item);

  // Unbiased estimate of the total weight of items matching `pred`.
  double EstimateSubsetSum(const std::function<bool(const Item&)>& pred) const;

  // tau: the (s+1)-st largest priority; 0 until s+1 items have arrived.
  double Threshold() const;

  // The s retained items (priorities descending).
  std::vector<Item> Sample() const;

  uint64_t count() const { return count_; }

 private:
  size_t sample_size_;
  Rng rng_;
  uint64_t count_ = 0;
  // Holds s+1 entries; the minimum is the threshold, the rest the sample.
  TopKeyHeap<Item> heap_;
};

}  // namespace dwrs

#endif  // DWRS_SAMPLING_PRIORITY_SAMPLING_H_
