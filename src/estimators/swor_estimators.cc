#include "estimators/swor_estimators.h"

#include <cmath>

#include "util/check.h"

namespace dwrs {

ThresholdedSample MakeThresholdedSample(std::vector<KeyedItem> top) {
  ThresholdedSample out;
  for (size_t i = 1; i < top.size(); ++i) {
    DWRS_CHECK_GE(top[i - 1].key, top[i].key) << " keys must be descending";
  }
  if (top.empty()) return out;
  out.tau = top.back().key;
  top.pop_back();
  out.top = std::move(top);
  return out;
}

double InclusionProbability(double weight, double tau) {
  DWRS_CHECK_GT(weight, 0.0);
  if (tau <= 0.0) return 1.0;
  return -std::expm1(-weight / tau);
}

double EstimateSubsetSum(const ThresholdedSample& sample,
                         const std::function<bool(const Item&)>& pred) {
  double estimate = 0.0;
  for (const KeyedItem& ki : sample.top) {
    if (!pred(ki.item)) continue;
    estimate += ki.item.weight / InclusionProbability(ki.item.weight,
                                                      sample.tau);
  }
  return estimate;
}

double EstimateTotalWeight(const ThresholdedSample& sample) {
  return EstimateSubsetSum(sample, [](const Item&) { return true; });
}

double EstimateSubsetCount(const ThresholdedSample& sample,
                           const std::function<bool(const Item&)>& pred) {
  double estimate = 0.0;
  for (const KeyedItem& ki : sample.top) {
    if (!pred(ki.item)) continue;
    estimate += 1.0 / InclusionProbability(ki.item.weight, sample.tau);
  }
  return estimate;
}

}  // namespace dwrs
