// Estimators on top of weighted SWOR samples with exponential keys.
//
// Conditioning on the (s+1)-st largest key tau, the events {item i is
// among the top-s} are independent with probability
//   P(w_i / Exp > tau) = 1 - exp(-w_i / tau),
// which yields Horvitz-Thompson style unbiased estimators for arbitrary
// subset sums — precision sampling's original use (Section 1.2; cf.
// priority sampling [17] and bottom-k sketches). This is how downstream
// users turn the coordinator's sample into aggregates.

#ifndef DWRS_ESTIMATORS_SWOR_ESTIMATORS_H_
#define DWRS_ESTIMATORS_SWOR_ESTIMATORS_H_

#include <functional>
#include <vector>

#include "sampling/keyed_item.h"

namespace dwrs {

// A sample of the top s+1 keys: the first s entries are the estimation
// sample; the last entry's key is the threshold tau.
struct ThresholdedSample {
  std::vector<KeyedItem> top;  // keys descending, size s
  double tau = 0.0;            // (s+1)-st key; 0 => fewer than s+1 items seen
};

// Splits a (s+1)-sized keyed sample (keys descending) into sample + tau.
// If fewer than s+1 entries are supplied, tau = 0 and estimates are exact
// sums over the (complete) sample.
ThresholdedSample MakeThresholdedSample(std::vector<KeyedItem> top_s_plus_1);

// Inclusion probability of weight w given threshold tau.
double InclusionProbability(double weight, double tau);

// Unbiased estimate of the total weight of items matching `pred`.
double EstimateSubsetSum(const ThresholdedSample& sample,
                         const std::function<bool(const Item&)>& pred);

// Unbiased estimate of the full stream weight (pred == everything).
double EstimateTotalWeight(const ThresholdedSample& sample);

// Estimate of the number of stream items matching `pred` (each sampled
// item contributes 1/p_i instead of w_i/p_i).
double EstimateSubsetCount(const ThresholdedSample& sample,
                           const std::function<bool(const Item&)>& pred);

}  // namespace dwrs

#endif  // DWRS_ESTIMATORS_SWOR_ESTIMATORS_H_
