#include "faults/fault_schedule.h"

#include "util/check.h"

namespace dwrs::faults {
namespace {

// SplitMix64 finalizer over a combined coordinate; each fault kind mixes
// in its own salt so the drop/duplicate/delay/crash decisions at one
// coordinate are independent.
uint64_t Mix(uint64_t seed, uint64_t salt, uint64_t hi, uint64_t lo) {
  uint64_t z = seed + 0x9E3779B97F4A7C15ull * (salt + 1);
  z ^= hi + 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z ^= lo + 0x94D049BB133111EBull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z = (z ^ (z >> 31)) * 0xD6E8FEB86659FD93ull;
  return z ^ (z >> 32);
}

// Uniform double in [0, 1) from the top 53 bits.
double ToUnit(uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

constexpr uint64_t kDropSalt = 1;
constexpr uint64_t kDupSalt = 2;
constexpr uint64_t kDelaySalt = 3;
constexpr uint64_t kDelayAmountSalt = 4;
constexpr uint64_t kCrashSalt = 5;
constexpr uint64_t kProcessKillSalt = 6;

}  // namespace

FaultSchedule::FaultSchedule(const FaultConfig& config) : config_(config) {
  DWRS_CHECK(config.drop_prob >= 0.0 && config.drop_prob <= 1.0);
  DWRS_CHECK(config.duplicate_prob >= 0.0 && config.duplicate_prob <= 1.0);
  DWRS_CHECK(config.delay_prob >= 0.0 && config.delay_prob <= 1.0);
  DWRS_CHECK(config.crash_prob >= 0.0 && config.crash_prob <= 1.0);
  DWRS_CHECK(config.process_kill_prob >= 0.0 &&
             config.process_kill_prob <= 1.0);
  if (config.delay_prob > 0.0) DWRS_CHECK_GE(config.max_delay, 1);
  if (config.crash_prob > 0.0) DWRS_CHECK_GE(config.crash_down_items, 1);
  if (config.process_kill_prob > 0.0) {
    DWRS_CHECK_GE(config.max_process_kills, 1);
  }
}

SendFaults FaultSchedule::OnSend(uint32_t channel, uint64_t index) const {
  SendFaults out;
  if (config_.drop_prob > 0.0 &&
      ToUnit(Mix(config_.seed, kDropSalt, channel, index)) <
          config_.drop_prob) {
    out.drop = true;
    return out;
  }
  if (config_.duplicate_prob > 0.0 &&
      ToUnit(Mix(config_.seed, kDupSalt, channel, index)) <
          config_.duplicate_prob) {
    out.duplicate = true;
  }
  if (config_.delay_prob > 0.0 &&
      ToUnit(Mix(config_.seed, kDelaySalt, channel, index)) <
          config_.delay_prob) {
    out.delay = 1 + static_cast<int>(
                        Mix(config_.seed, kDelayAmountSalt, channel, index) %
                        static_cast<uint64_t>(config_.max_delay));
  }
  return out;
}

bool FaultSchedule::CrashesAt(int site, uint64_t item_index) const {
  if (config_.crash_prob <= 0.0) return false;
  return ToUnit(Mix(config_.seed, kCrashSalt, static_cast<uint64_t>(site),
                    item_index)) < config_.crash_prob;
}

bool FaultSchedule::ProcessKillsAt(uint64_t step) const {
  if (config_.process_kill_prob <= 0.0) return false;
  return ToUnit(Mix(config_.seed, kProcessKillSalt, 0, step)) <
         config_.process_kill_prob;
}

}  // namespace dwrs::faults
