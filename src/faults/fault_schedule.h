// Seeded, fully deterministic fault schedule for the unreliable-network
// scenario family. Every decision — drop this message, duplicate it,
// delay it, crash this site — is a pure function of (seed, coordinate),
// where the coordinate is a (channel, per-channel send index) pair for
// message faults and a (site, per-site item index) pair for crashes.
// Because the coordinates are per-channel/per-site counters rather than
// wall-clock or global state, the same seed produces the same schedule on
// the single-threaded simulator and on the concurrent engine in
// step-synchronous mode: a failing run is replayable bit for bit from its
// seed alone.

#ifndef DWRS_FAULTS_FAULT_SCHEDULE_H_
#define DWRS_FAULTS_FAULT_SCHEDULE_H_

#include <cstdint>

namespace dwrs::faults {

struct FaultConfig {
  uint64_t seed = 1;

  // Message faults, decided independently per send. A message is first
  // tested for drop; a surviving message may be duplicated (the copy is
  // forwarded immediately) and/or delayed. Probabilities in [0, 1].
  double drop_prob = 0.0;
  double duplicate_prob = 0.0;

  // A delayed message is withheld and re-injected into its channel after
  // `delay` further sends on the same channel, where delay is drawn
  // uniformly from [1, max_delay] — delay doubles as reordering, since
  // the withheld message is overtaken by everything sent in between.
  // Messages are counted, not clocked, so the schedule stays exact under
  // both execution backends.
  double delay_prob = 0.0;
  int max_delay = 4;

  // Site crash/restart. Each item arrival at a site crashes it with
  // probability crash_prob; the site then loses its volatile protocol and
  // session state, drops the next crash_down_items arrivals (including
  // the triggering one), and restarts with a bumped epoch.
  double crash_prob = 0.0;
  int crash_down_items = 8;

  // Direction gates: which directions the message faults apply to.
  bool fault_upstream = true;    // site -> coordinator
  bool fault_downstream = true;  // coordinator -> site

  // Whole-process kill (the durability scenario, src/durability/): at a
  // stream step where ProcessKillsAt fires, the durable harness destroys
  // the entire shard stack — backend, transport, sessions, endpoints,
  // un-fsynced WAL buffers — and recovers it from checkpoint + WAL
  // instead of resyncing from live peers. Probability is per step;
  // max_process_kills bounds the kills per run (enforced by the harness,
  // so the schedule itself stays a pure function).
  double process_kill_prob = 0.0;
  int max_process_kills = 2;
};

// The per-send verdict. delay == 0 means deliver now.
struct SendFaults {
  bool drop = false;
  bool duplicate = false;
  int delay = 0;
};

// Stateless decision oracle; const and safe to share across threads.
class FaultSchedule {
 public:
  explicit FaultSchedule(const FaultConfig& config);

  const FaultConfig& config() const { return config_; }

  // Verdict for the index-th send (0-based) on `channel`. Channels are
  // numbered 0..k-1 for site->coordinator and k..2k-1 for
  // coordinator->site, matching sim::Network.
  SendFaults OnSend(uint32_t channel, uint64_t index) const;

  // True iff the site crashes upon its index-th item arrival (0-based
  // count of every arrival, including those lost while down).
  bool CrashesAt(int site, uint64_t item_index) const;

  // True iff the whole shard process is killed after stream step `step`
  // (1-based, a quiesce point). Independent of the message/crash
  // verdicts, so enabling kills never perturbs the rest of the schedule.
  bool ProcessKillsAt(uint64_t step) const;

 private:
  FaultConfig config_;
};

}  // namespace dwrs::faults

#endif  // DWRS_FAULTS_FAULT_SCHEDULE_H_
