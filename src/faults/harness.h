// Fault harness: assembles a full protocol stack — endpoints wrapped in
// reliability sessions, over a FaultyTransport, over either execution
// backend — runs a workload through it, and reconciles at end of stream.
//
//   faults::FaultyRun<faults::WsworFaultTraits> run(config, fault_config,
//                                                   faults::Backend::kSim);
//   run.Run(workload);              // stream + end-of-stream reconcile
//   run.report().clean              // no irrecoverable loss anywhere
//   run.coordinator().Sample();     // exact SWOR of the delivered stream
//
// The reconcile models partial synchrony: after the stream ends the
// network heals (faults disabled), withheld messages are released, and
// sites retransmit until every stamped message is acked. A run is
// `clean` iff nothing was irrecoverably lost — every un-clean cause
// (messages wiped by a crash) is individually counted, so degraded
// results are always detectable, never silent.
//
// Determinism: given (protocol seed, fault seed, workload), two runs on
// the same backend are bit-identical, and the simulator and the
// step-synchronous engine produce the same delivery transcript.

#ifndef DWRS_FAULTS_HARNESS_H_
#define DWRS_FAULTS_HARNESS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "core/config.h"
#include "core/coordinator.h"
#include "core/site.h"
#include "engine/engine.h"
#include "faults/fault_schedule.h"
#include "faults/faulty_transport.h"
#include "faults/session.h"
#include "l1/l1_tracker.h"
#include "obs/tracing_transport.h"
#include "random/rng.h"
#include "sampling/mergeable_sample.h"
#include "sim/runtime.h"
#include "stream/sharding.h"
#include "stream/workload.h"
#include "unweighted/distributed_swor.h"
#include "util/check.h"

namespace dwrs::faults {

enum class Backend { kSim, kEngine };

// Independent randomness per site incarnation: a restarted site must not
// replay its previous key stream.
inline uint64_t RestartSeed(uint64_t base, uint32_t epoch) {
  if (epoch == 0) return base;
  uint64_t z = base + 0x9E3779B97F4A7C15ull * epoch;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// Aggregated outcome of a faulty run.
struct RunReport {
  uint64_t transcript_hash = 0;
  uint64_t delivered = 0;
  uint64_t crashes = 0;
  uint64_t crash_detections = 0;
  uint64_t resyncs_sent = 0;
  uint64_t lost_unacked = 0;  // wiped by crashes; upper-bounds real loss
  uint64_t items_lost = 0;    // arrivals at down sites
  uint64_t duplicates_dropped = 0;
  uint64_t gaps_detected = 0;
  uint64_t nacks_sent = 0;
  // Session-layer counters that used to live only as per-session local
  // state; surfaced so degraded-mode traffic is quantifiable end to end.
  uint64_t retransmits_sent = 0;       // go-back-N replay messages
  uint64_t stale_epoch_dropped = 0;    // pre-crash leftovers discarded
  uint64_t messages_dropped_down = 0;  // arrivals at a dead process
  // Fault-transport verdict totals (both directions combined).
  uint64_t faults_forwarded = 0;
  uint64_t faults_dropped = 0;
  uint64_t faults_duplicated = 0;
  uint64_t faults_delayed = 0;
  // Durability counters (src/durability/): zero unless the run went
  // through a DurableWswor harness with process kills enabled.
  uint64_t process_kills = 0;     // whole-shard kill -9 events
  uint64_t recoveries = 0;        // successful checkpoint+WAL recoveries
  uint64_t wal_records_logged = 0;
  uint64_t wal_records_replayed = 0;
  uint64_t checkpoints_written = 0;
  // False iff a recovery replay's regenerated events diverged from the
  // decision records logged by the original timeline — a flagged
  // (never silent) degraded result.
  bool recovery_consistent = true;
  // True iff every stamped message was delivered exactly once: no buffer
  // was wiped mid-flight and reconcile drained everything. A clean run's
  // sample is an exact SWOR over the items processed by live sites.
  bool clean = false;
};

// --- per-protocol traits ----------------------------------------------

struct WsworFaultTraits {
  using Config = WsworConfig;
  using Coordinator = WsworCoordinator;
  static int NumSites(const Config& config) { return config.num_sites; }
  static uint64_t Seed(const Config& config) { return config.seed; }
  static std::unique_ptr<sim::SiteNode> MakeSite(const Config& config,
                                                 int site,
                                                 sim::Transport* transport,
                                                 uint64_t seed) {
    return std::make_unique<WsworSite>(config, site, transport, seed);
  }
  static std::unique_ptr<Coordinator> MakeCoordinator(
      const Config& config, sim::Transport* transport, Rng& master) {
    return std::make_unique<Coordinator>(config, transport, master.NextU64());
  }
  static std::vector<sim::Payload> Resync(const Coordinator& coordinator) {
    return coordinator.ResyncMessages();
  }
  static std::vector<uint64_t> SampleIds(const Coordinator& coordinator) {
    std::vector<uint64_t> ids;
    for (const KeyedItem& ki : coordinator.Sample()) ids.push_back(ki.item.id);
    return ids;
  }
};

struct UsworFaultTraits {
  using Config = UsworConfig;
  using Coordinator = UsworCoordinator;
  static int NumSites(const Config& config) { return config.num_sites; }
  static uint64_t Seed(const Config& config) { return config.seed; }
  static std::unique_ptr<sim::SiteNode> MakeSite(const Config& config,
                                                 int site,
                                                 sim::Transport* transport,
                                                 uint64_t seed) {
    return std::make_unique<UsworSite>(config, site, transport, seed);
  }
  static std::unique_ptr<Coordinator> MakeCoordinator(
      const Config& config, sim::Transport* transport, Rng& /*master*/) {
    return std::make_unique<Coordinator>(config, transport);
  }
  static std::vector<sim::Payload> Resync(const Coordinator& coordinator) {
    return coordinator.ResyncMessages();
  }
  static std::vector<uint64_t> SampleIds(const Coordinator& coordinator) {
    std::vector<uint64_t> ids;
    for (const Item& item : coordinator.Sample()) ids.push_back(item.id);
    return ids;
  }
};

struct L1FaultTraits {
  using Config = L1TrackerConfig;
  using Coordinator = WsworCoordinator;
  static int NumSites(const Config& config) { return config.num_sites; }
  static uint64_t Seed(const Config& config) { return config.seed; }
  static std::unique_ptr<sim::SiteNode> MakeSite(const Config& config,
                                                 int site,
                                                 sim::Transport* transport,
                                                 uint64_t seed) {
    return std::make_unique<L1Site>(config, site, transport, seed);
  }
  static std::unique_ptr<Coordinator> MakeCoordinator(
      const Config& config, sim::Transport* transport, Rng& master) {
    // Same mapping L1Tracker itself uses; its delivery_delay field is a
    // property of the reliable simulated network and is superseded here
    // by the FaultConfig's delay schedule.
    return std::make_unique<Coordinator>(L1CoordinatorConfig(config),
                                         transport, master.NextU64());
  }
  static std::vector<sim::Payload> Resync(const Coordinator& coordinator) {
    return coordinator.ResyncMessages();
  }
  static std::vector<uint64_t> SampleIds(const Coordinator& coordinator) {
    return WsworFaultTraits::SampleIds(coordinator);
  }
};

// --- the harness ------------------------------------------------------

template <typename Traits>
class FaultyRun {
 public:
  using Config = typename Traits::Config;
  using Coordinator = typename Traits::Coordinator;

  // `trace_shard` labels every flight-recorder event of this stack (the
  // sharded harness passes the shard index; unsharded runs default to 0).
  FaultyRun(const Config& config, const FaultConfig& fault_config,
            Backend backend, int trace_shard = 0)
      : schedule_(fault_config), num_sites_(Traits::NumSites(config)) {
    if (backend == Backend::kSim) {
      runtime_ = std::make_unique<sim::Runtime>(num_sites_);
    } else {
      engine::EngineConfig engine_config;
      engine_config.num_sites = num_sites_;
      engine_config.step_synchronous = true;
      engine_config.trace_shard = trace_shard;
      engine_ = std::make_unique<engine::Engine>(engine_config);
    }
    sim::Transport* inner =
        engine_ ? &engine_->transport()
                : static_cast<sim::Transport*>(&runtime_->network());
    faulty_ = std::make_unique<FaultyTransport>(inner, &schedule_, num_sites_);
    faulty_->set_trace_shard(trace_shard);
    // Sessions and endpoints send through the tracing decorator, so every
    // message is recorded as it enters the network, before the fault
    // layer's verdict.
    tracing_ =
        std::make_unique<obs::TracingTransport>(faulty_.get(), trace_shard);

    // Seed derivation mirrors the reliable facades exactly: one master
    // draw per site in index order, then the coordinator's.
    Rng master(Traits::Seed(config));
    std::vector<uint64_t> site_seeds;
    site_seeds.reserve(static_cast<size_t>(num_sites_));
    for (int i = 0; i < num_sites_; ++i) site_seeds.push_back(master.NextU64());
    coordinator_ = Traits::MakeCoordinator(config, tracing_.get(), master);
    if constexpr (requires { coordinator_->set_trace_shard(trace_shard); }) {
      coordinator_->set_trace_shard(trace_shard);
    }
    coordinator_session_ = std::make_unique<CoordinatorSession>(
        num_sites_, coordinator_.get(), tracing_.get(),
        [this] { return Traits::Resync(*coordinator_); });
    coordinator_session_->set_trace_shard(trace_shard);

    for (int i = 0; i < num_sites_; ++i) {
      site_sessions_.push_back(std::make_unique<SiteSession>(
          i, tracing_.get(), &schedule_,
          [config, i, seed = site_seeds[static_cast<size_t>(i)]](
              sim::Transport* upper, uint32_t epoch) {
            return Traits::MakeSite(config, i, upper,
                                    RestartSeed(seed, epoch));
          }));
      site_sessions_.back()->set_trace_shard(trace_shard);
      if (runtime_) {
        runtime_->AttachSite(i, site_sessions_.back().get());
      } else {
        engine_->AttachSite(i, site_sessions_.back().get());
      }
    }
    if (runtime_) {
      runtime_->AttachCoordinator(coordinator_session_.get());
    } else {
      engine_->AttachCoordinator(coordinator_session_.get());
    }
  }

  ~FaultyRun() {
    // The engine joins its worker threads before any endpoint or the
    // transport stack is destroyed (see the teardown contract in
    // engine/engine.h).
    if (engine_) engine_->Shutdown();
  }

  FaultyRun(const FaultyRun&) = delete;
  FaultyRun& operator=(const FaultyRun&) = delete;

  // Streams the workload and reconciles. Querying the coordinator is
  // legal afterwards. If `on_step` is set, it is invoked after every
  // event with the 1-based prefix length, at a quiesce point of the
  // backend (the engine backend is step-synchronous by construction, so
  // the hook may query the coordinator, the session, and the live-query
  // snapshot layer) — the per-step query transcript the property sweep
  // compares across backends.
  void Run(const Workload& workload,
           const std::function<void(uint64_t)>& on_step = nullptr) {
    if (runtime_) {
      runtime_->Run(workload, on_step);
    } else {
      engine_->Run(workload, on_step);
    }
    Reconcile();
  }

  // End-of-stream reconcile under a healed network: release withheld
  // messages, retransmit every unacked message, repeat until drained.
  void Reconcile() {
    faulty_->set_enabled(false);
    for (int round = 0; round < kMaxReconcileRounds; ++round) {
      faulty_->FlushDelayed();
      FlushBackend();
      bool drained = true;
      for (const auto& session : site_sessions_) {
        if (session->unacked_size() != 0) drained = false;
      }
      if (drained) break;
      for (const auto& session : site_sessions_) {
        session->RetransmitAllUnacked();
      }
      FlushBackend();
    }
    for (const auto& session : site_sessions_) {
      DWRS_CHECK_EQ(session->unacked_size(), 0u)
          << " reconcile failed to drain site retransmit buffers";
    }
  }

  RunReport report() const {
    RunReport out;
    out.transcript_hash = coordinator_session_->transcript_hash();
    out.delivered = coordinator_session_->delivered();
    out.crash_detections = coordinator_session_->crash_detections();
    out.resyncs_sent = coordinator_session_->resyncs_sent();
    out.duplicates_dropped = coordinator_session_->duplicates_dropped();
    out.gaps_detected = coordinator_session_->gaps_detected();
    out.nacks_sent = coordinator_session_->nacks_sent();
    out.stale_epoch_dropped = coordinator_session_->stale_epoch_dropped();
    for (const auto& session : site_sessions_) {
      out.crashes += session->crashes();
      out.lost_unacked += session->lost_unacked();
      out.items_lost += session->items_lost();
      out.retransmits_sent += session->retransmits_sent();
      out.messages_dropped_down += session->messages_dropped_down();
    }
    const FaultCounters& fc = faulty_->counters();
    out.faults_forwarded = fc.forwarded.load(std::memory_order_relaxed);
    out.faults_dropped = fc.dropped.load(std::memory_order_relaxed);
    out.faults_duplicated = fc.duplicated.load(std::memory_order_relaxed);
    out.faults_delayed = fc.delayed.load(std::memory_order_relaxed);
    out.clean =
        out.lost_unacked == 0 && coordinator_session_->AllGapsResolved();
    return out;
  }

  std::vector<uint64_t> SampleIds() const {
    return Traits::SampleIds(*coordinator_);
  }

  const Coordinator& coordinator() const { return *coordinator_; }
  const CoordinatorSession& coordinator_session() const {
    return *coordinator_session_;
  }
  const SiteSession& site_session(int site) const {
    return *site_sessions_[static_cast<size_t>(site)];
  }
  const FaultyTransport& faulty_transport() const { return *faulty_; }
  int num_sites() const { return num_sites_; }

 private:
  static constexpr int kMaxReconcileRounds = 8;

  void FlushBackend() {
    if (runtime_) {
      runtime_->Flush();
    } else {
      engine_->Flush();
    }
  }

  FaultSchedule schedule_;
  const int num_sites_;
  std::unique_ptr<sim::Runtime> runtime_;    // exactly one backend is set
  std::unique_ptr<engine::Engine> engine_;
  std::unique_ptr<FaultyTransport> faulty_;
  std::unique_ptr<obs::TracingTransport> tracing_;
  std::unique_ptr<Coordinator> coordinator_;
  std::unique_ptr<CoordinatorSession> coordinator_session_;
  std::vector<std::unique_ptr<SiteSession>> site_sessions_;
};

using FaultyWswor = FaultyRun<WsworFaultTraits>;
using FaultyUswor = FaultyRun<UsworFaultTraits>;
using FaultyL1 = FaultyRun<L1FaultTraits>;

// --- sharded harness --------------------------------------------------
//
// One full reliability stack PER SHARD: every shard coordinator channel
// gets its own FaultyTransport, CoordinatorSession, and site sessions,
// so crash/loss semantics are per-shard — a crashed or lossy shard
// degrades (and flags) only its own slice of the merged sample, and a
// clean shard's slice stays exact regardless of its siblings. The global
// workload is split by the shared ShardTopology (local site indices,
// per-shard arrival order preserved); shard runs replay each other's
// transcripts bit for bit whether executed sequentially or interleaved,
// because shards share no state and every fault decision is a function
// of per-shard counters only.
template <typename Traits>
class ShardedFaultyRun {
 public:
  using Config = typename Traits::Config;
  using Coordinator = typename Traits::Coordinator;

  // `config.num_sites` is the global k; `shard_faults[j]` is shard j's
  // fault schedule (one entry per shard — faults are per-shard state).
  // Shard protocol seeds derive from the global seed via ShardSeed.
  ShardedFaultyRun(const Config& config,
                   const std::vector<FaultConfig>& shard_faults,
                   Backend backend)
      : topology_(Traits::NumSites(config),
                  static_cast<int>(shard_faults.size())) {
    shards_.reserve(shard_faults.size());
    for (int shard = 0; shard < topology_.num_shards(); ++shard) {
      Config shard_config = config;
      shard_config.num_sites = topology_.SiteCount(shard);
      shard_config.seed = ShardSeed(Traits::Seed(config), shard);
      shards_.push_back(std::make_unique<FaultyRun<Traits>>(
          shard_config, shard_faults[static_cast<size_t>(shard)], backend,
          /*trace_shard=*/shard));
    }
  }

  // Streams the global workload shard by shard (each shard reconciles at
  // its own end of stream). Querying is legal afterwards.
  void Run(const Workload& workload) {
    const std::vector<Workload> splits = SplitByShard(workload, topology_);
    for (int shard = 0; shard < topology_.num_shards(); ++shard) {
      shards_[static_cast<size_t>(shard)]->Run(
          splits[static_cast<size_t>(shard)]);
    }
  }

  // Aggregated over shards; `clean` iff every shard is clean, and
  // `transcript_hash` folds the per-shard hashes in shard order.
  RunReport report() const {
    RunReport out;
    out.transcript_hash = 1469598103934665603ull;  // FNV offset basis
    out.clean = true;
    for (const auto& shard : shards_) {
      const RunReport r = shard->report();
      for (int b = 0; b < 64; b += 8) {
        out.transcript_hash ^= (r.transcript_hash >> b) & 0xffull;
        out.transcript_hash *= 1099511628211ull;  // FNV prime
      }
      out.delivered += r.delivered;
      out.crashes += r.crashes;
      out.crash_detections += r.crash_detections;
      out.resyncs_sent += r.resyncs_sent;
      out.lost_unacked += r.lost_unacked;
      out.items_lost += r.items_lost;
      out.duplicates_dropped += r.duplicates_dropped;
      out.gaps_detected += r.gaps_detected;
      out.nacks_sent += r.nacks_sent;
      out.retransmits_sent += r.retransmits_sent;
      out.stale_epoch_dropped += r.stale_epoch_dropped;
      out.messages_dropped_down += r.messages_dropped_down;
      out.faults_forwarded += r.faults_forwarded;
      out.faults_dropped += r.faults_dropped;
      out.faults_duplicated += r.faults_duplicated;
      out.faults_delayed += r.faults_delayed;
      out.clean = out.clean && r.clean;
    }
    return out;
  }

  // Root merge of the shard coordinators' summaries.
  MergeableSample MergedSample() const {
    std::vector<MergeableSample> summaries;
    summaries.reserve(shards_.size());
    for (size_t shard = 0; shard < shards_.size(); ++shard) {
      summaries.push_back(
          sim::CheckedShardSummary(&shards_[shard]->coordinator(), shard));
    }
    return MergeShardSamples(summaries);
  }

  std::vector<uint64_t> MergedSampleIds() const {
    std::vector<uint64_t> ids;
    for (const KeyedItem& ki : MergedSample().TopEntries()) {
      ids.push_back(ki.item.id);
    }
    return ids;
  }

  FaultyRun<Traits>& shard(int j) {
    return *shards_[static_cast<size_t>(j)];
  }
  const FaultyRun<Traits>& shard(int j) const {
    return *shards_[static_cast<size_t>(j)];
  }
  const ShardTopology& topology() const { return topology_; }

 private:
  ShardTopology topology_;
  std::vector<std::unique_ptr<FaultyRun<Traits>>> shards_;
};

using ShardedFaultyWswor = ShardedFaultyRun<WsworFaultTraits>;
using ShardedFaultyUswor = ShardedFaultyRun<UsworFaultTraits>;

// The deterministic set of item ids that reach a live site under
// `schedule` (everything except arrivals inside crash-down windows),
// replaying exactly the SiteSession crash logic. Fault-seed- and
// workload-determined only — independent of the protocol seed, which is
// what makes the surviving set a valid chi-square reference across
// protocol-seed trials.
std::vector<uint64_t> SurvivingItemIds(const Workload& workload,
                                       const FaultSchedule& schedule);

}  // namespace dwrs::faults

#endif  // DWRS_FAULTS_HARNESS_H_
