// Fault harness: assembles a full protocol stack — endpoints wrapped in
// reliability sessions, over a FaultyTransport, over either execution
// backend — runs a workload through it, and reconciles at end of stream.
//
//   faults::FaultyRun<faults::WsworFaultTraits> run(config, fault_config,
//                                                   faults::Backend::kSim);
//   run.Run(workload);              // stream + end-of-stream reconcile
//   run.report().clean              // no irrecoverable loss anywhere
//   run.coordinator().Sample();     // exact SWOR of the delivered stream
//
// The reconcile models partial synchrony: after the stream ends the
// network heals (faults disabled), withheld messages are released, and
// sites retransmit until every stamped message is acked. A run is
// `clean` iff nothing was irrecoverably lost — every un-clean cause
// (messages wiped by a crash) is individually counted, so degraded
// results are always detectable, never silent.
//
// Determinism: given (protocol seed, fault seed, workload), two runs on
// the same backend are bit-identical, and the simulator and the
// step-synchronous engine produce the same delivery transcript.

#ifndef DWRS_FAULTS_HARNESS_H_
#define DWRS_FAULTS_HARNESS_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/config.h"
#include "core/coordinator.h"
#include "core/site.h"
#include "engine/engine.h"
#include "faults/fault_schedule.h"
#include "faults/faulty_transport.h"
#include "faults/session.h"
#include "l1/l1_tracker.h"
#include "random/rng.h"
#include "sim/runtime.h"
#include "stream/workload.h"
#include "unweighted/distributed_swor.h"
#include "util/check.h"

namespace dwrs::faults {

enum class Backend { kSim, kEngine };

// Independent randomness per site incarnation: a restarted site must not
// replay its previous key stream.
inline uint64_t RestartSeed(uint64_t base, uint32_t epoch) {
  if (epoch == 0) return base;
  uint64_t z = base + 0x9E3779B97F4A7C15ull * epoch;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// Aggregated outcome of a faulty run.
struct RunReport {
  uint64_t transcript_hash = 0;
  uint64_t delivered = 0;
  uint64_t crashes = 0;
  uint64_t crash_detections = 0;
  uint64_t resyncs_sent = 0;
  uint64_t lost_unacked = 0;  // wiped by crashes; upper-bounds real loss
  uint64_t items_lost = 0;    // arrivals at down sites
  uint64_t duplicates_dropped = 0;
  uint64_t gaps_detected = 0;
  uint64_t nacks_sent = 0;
  // True iff every stamped message was delivered exactly once: no buffer
  // was wiped mid-flight and reconcile drained everything. A clean run's
  // sample is an exact SWOR over the items processed by live sites.
  bool clean = false;
};

// --- per-protocol traits ----------------------------------------------

struct WsworFaultTraits {
  using Config = WsworConfig;
  using Coordinator = WsworCoordinator;
  static int NumSites(const Config& config) { return config.num_sites; }
  static uint64_t Seed(const Config& config) { return config.seed; }
  static std::unique_ptr<sim::SiteNode> MakeSite(const Config& config,
                                                 int site,
                                                 sim::Transport* transport,
                                                 uint64_t seed) {
    return std::make_unique<WsworSite>(config, site, transport, seed);
  }
  static std::unique_ptr<Coordinator> MakeCoordinator(
      const Config& config, sim::Transport* transport, Rng& master) {
    return std::make_unique<Coordinator>(config, transport, master.NextU64());
  }
  static std::vector<sim::Payload> Resync(const Coordinator& coordinator) {
    return coordinator.ResyncMessages();
  }
  static std::vector<uint64_t> SampleIds(const Coordinator& coordinator) {
    std::vector<uint64_t> ids;
    for (const KeyedItem& ki : coordinator.Sample()) ids.push_back(ki.item.id);
    return ids;
  }
};

struct UsworFaultTraits {
  using Config = UsworConfig;
  using Coordinator = UsworCoordinator;
  static int NumSites(const Config& config) { return config.num_sites; }
  static uint64_t Seed(const Config& config) { return config.seed; }
  static std::unique_ptr<sim::SiteNode> MakeSite(const Config& config,
                                                 int site,
                                                 sim::Transport* transport,
                                                 uint64_t seed) {
    return std::make_unique<UsworSite>(config, site, transport, seed);
  }
  static std::unique_ptr<Coordinator> MakeCoordinator(
      const Config& config, sim::Transport* transport, Rng& /*master*/) {
    return std::make_unique<Coordinator>(config, transport);
  }
  static std::vector<sim::Payload> Resync(const Coordinator& coordinator) {
    return coordinator.ResyncMessages();
  }
  static std::vector<uint64_t> SampleIds(const Coordinator& coordinator) {
    std::vector<uint64_t> ids;
    for (const Item& item : coordinator.Sample()) ids.push_back(item.id);
    return ids;
  }
};

struct L1FaultTraits {
  using Config = L1TrackerConfig;
  using Coordinator = WsworCoordinator;
  static int NumSites(const Config& config) { return config.num_sites; }
  static uint64_t Seed(const Config& config) { return config.seed; }
  static std::unique_ptr<sim::SiteNode> MakeSite(const Config& config,
                                                 int site,
                                                 sim::Transport* transport,
                                                 uint64_t seed) {
    return std::make_unique<L1Site>(config, site, transport, seed);
  }
  static std::unique_ptr<Coordinator> MakeCoordinator(
      const Config& config, sim::Transport* transport, Rng& master) {
    // Same mapping L1Tracker itself uses; its delivery_delay field is a
    // property of the reliable simulated network and is superseded here
    // by the FaultConfig's delay schedule.
    return std::make_unique<Coordinator>(L1CoordinatorConfig(config),
                                         transport, master.NextU64());
  }
  static std::vector<sim::Payload> Resync(const Coordinator& coordinator) {
    return coordinator.ResyncMessages();
  }
  static std::vector<uint64_t> SampleIds(const Coordinator& coordinator) {
    return WsworFaultTraits::SampleIds(coordinator);
  }
};

// --- the harness ------------------------------------------------------

template <typename Traits>
class FaultyRun {
 public:
  using Config = typename Traits::Config;
  using Coordinator = typename Traits::Coordinator;

  FaultyRun(const Config& config, const FaultConfig& fault_config,
            Backend backend)
      : schedule_(fault_config), num_sites_(Traits::NumSites(config)) {
    if (backend == Backend::kSim) {
      runtime_ = std::make_unique<sim::Runtime>(num_sites_);
    } else {
      engine::EngineConfig engine_config;
      engine_config.num_sites = num_sites_;
      engine_config.step_synchronous = true;
      engine_ = std::make_unique<engine::Engine>(engine_config);
    }
    sim::Transport* inner =
        engine_ ? &engine_->transport()
                : static_cast<sim::Transport*>(&runtime_->network());
    faulty_ = std::make_unique<FaultyTransport>(inner, &schedule_, num_sites_);

    // Seed derivation mirrors the reliable facades exactly: one master
    // draw per site in index order, then the coordinator's.
    Rng master(Traits::Seed(config));
    std::vector<uint64_t> site_seeds;
    site_seeds.reserve(static_cast<size_t>(num_sites_));
    for (int i = 0; i < num_sites_; ++i) site_seeds.push_back(master.NextU64());
    coordinator_ = Traits::MakeCoordinator(config, faulty_.get(), master);
    coordinator_session_ = std::make_unique<CoordinatorSession>(
        num_sites_, coordinator_.get(), faulty_.get(),
        [this] { return Traits::Resync(*coordinator_); });

    for (int i = 0; i < num_sites_; ++i) {
      site_sessions_.push_back(std::make_unique<SiteSession>(
          i, faulty_.get(), &schedule_,
          [config, i, seed = site_seeds[static_cast<size_t>(i)]](
              sim::Transport* upper, uint32_t epoch) {
            return Traits::MakeSite(config, i, upper,
                                    RestartSeed(seed, epoch));
          }));
      if (runtime_) {
        runtime_->AttachSite(i, site_sessions_.back().get());
      } else {
        engine_->AttachSite(i, site_sessions_.back().get());
      }
    }
    if (runtime_) {
      runtime_->AttachCoordinator(coordinator_session_.get());
    } else {
      engine_->AttachCoordinator(coordinator_session_.get());
    }
  }

  ~FaultyRun() {
    // The engine joins its worker threads before any endpoint or the
    // transport stack is destroyed (see the teardown contract in
    // engine/engine.h).
    if (engine_) engine_->Shutdown();
  }

  FaultyRun(const FaultyRun&) = delete;
  FaultyRun& operator=(const FaultyRun&) = delete;

  // Streams the workload and reconciles. Querying the coordinator is
  // legal afterwards.
  void Run(const Workload& workload) {
    if (runtime_) {
      runtime_->Run(workload);
    } else {
      engine_->Run(workload);
    }
    Reconcile();
  }

  // End-of-stream reconcile under a healed network: release withheld
  // messages, retransmit every unacked message, repeat until drained.
  void Reconcile() {
    faulty_->set_enabled(false);
    for (int round = 0; round < kMaxReconcileRounds; ++round) {
      faulty_->FlushDelayed();
      FlushBackend();
      bool drained = true;
      for (const auto& session : site_sessions_) {
        if (session->unacked_size() != 0) drained = false;
      }
      if (drained) break;
      for (const auto& session : site_sessions_) {
        session->RetransmitAllUnacked();
      }
      FlushBackend();
    }
    for (const auto& session : site_sessions_) {
      DWRS_CHECK_EQ(session->unacked_size(), 0u)
          << " reconcile failed to drain site retransmit buffers";
    }
  }

  RunReport report() const {
    RunReport out;
    out.transcript_hash = coordinator_session_->transcript_hash();
    out.delivered = coordinator_session_->delivered();
    out.crash_detections = coordinator_session_->crash_detections();
    out.resyncs_sent = coordinator_session_->resyncs_sent();
    out.duplicates_dropped = coordinator_session_->duplicates_dropped();
    out.gaps_detected = coordinator_session_->gaps_detected();
    out.nacks_sent = coordinator_session_->nacks_sent();
    for (const auto& session : site_sessions_) {
      out.crashes += session->crashes();
      out.lost_unacked += session->lost_unacked();
      out.items_lost += session->items_lost();
    }
    out.clean =
        out.lost_unacked == 0 && coordinator_session_->AllGapsResolved();
    return out;
  }

  std::vector<uint64_t> SampleIds() const {
    return Traits::SampleIds(*coordinator_);
  }

  const Coordinator& coordinator() const { return *coordinator_; }
  const CoordinatorSession& coordinator_session() const {
    return *coordinator_session_;
  }
  const SiteSession& site_session(int site) const {
    return *site_sessions_[static_cast<size_t>(site)];
  }
  const FaultyTransport& faulty_transport() const { return *faulty_; }
  int num_sites() const { return num_sites_; }

 private:
  static constexpr int kMaxReconcileRounds = 8;

  void FlushBackend() {
    if (runtime_) {
      runtime_->Flush();
    } else {
      engine_->Flush();
    }
  }

  FaultSchedule schedule_;
  const int num_sites_;
  std::unique_ptr<sim::Runtime> runtime_;    // exactly one backend is set
  std::unique_ptr<engine::Engine> engine_;
  std::unique_ptr<FaultyTransport> faulty_;
  std::unique_ptr<Coordinator> coordinator_;
  std::unique_ptr<CoordinatorSession> coordinator_session_;
  std::vector<std::unique_ptr<SiteSession>> site_sessions_;
};

using FaultyWswor = FaultyRun<WsworFaultTraits>;
using FaultyUswor = FaultyRun<UsworFaultTraits>;
using FaultyL1 = FaultyRun<L1FaultTraits>;

// The deterministic set of item ids that reach a live site under
// `schedule` (everything except arrivals inside crash-down windows),
// replaying exactly the SiteSession crash logic. Fault-seed- and
// workload-determined only — independent of the protocol seed, which is
// what makes the surviving set a valid chi-square reference across
// protocol-seed trials.
std::vector<uint64_t> SurvivingItemIds(const Workload& workload,
                                       const FaultSchedule& schedule);

}  // namespace dwrs::faults

#endif  // DWRS_FAULTS_HARNESS_H_
