#include "faults/session.h"

#include <bit>

#include "obs/trace.h"
#include "util/check.h"

namespace dwrs::faults {

namespace {

// Flight-recorder event carrying a session message's identity. All
// session events are deterministic per (seeds, workload) on a
// step-synchronous backend, so they participate in the canonical
// transcript (obs/trace.h).
obs::TraceEvent SessionEvent(obs::EventType type, int shard, int site,
                             uint8_t dir, const sim::Payload& msg) {
  obs::TraceEvent event;
  event.type = type;
  event.shard = static_cast<int16_t>(shard);
  event.site = site;
  event.dir = dir;
  event.msg_type = static_cast<uint16_t>(msg.type);
  event.seq = msg.seq;
  event.epoch = msg.epoch;
  event.a = msg.a;
  event.x = msg.x;
  return event;
}

}  // namespace

// ---------------------------------------------------------------------
// SiteSession

SiteSession::SiteSession(int site, sim::Transport* lower,
                         const FaultSchedule* schedule,
                         EndpointFactory factory)
    : site_(site),
      lower_(lower),
      schedule_(schedule),
      factory_(std::move(factory)) {
  DWRS_CHECK(lower != nullptr);
  DWRS_CHECK(schedule != nullptr);
  DWRS_CHECK(factory_ != nullptr);
  endpoint_ = factory_(this, /*epoch=*/0);
  DWRS_CHECK(endpoint_ != nullptr);
}

void SiteSession::OnItem(const Item& item) { OnItems(&item, 1); }

void SiteSession::OnItems(const Item* items, size_t n) {
  // Walk the span splitting it into maximal live runs. The per-item
  // crash/down bookkeeping below replays the per-item path exactly; the
  // endpoint only ever sees contiguous live runs, and since its own span
  // path is partition-invariant the transcript is independent of how the
  // backend batched the stream.
  constexpr size_t kNoRun = static_cast<size_t>(-1);
  size_t run_start = kNoRun;
  const auto flush_run = [&](size_t end) {
    if (run_start == kNoRun) return;
    endpoint_->OnItems(items + run_start, end - run_start);
    run_start = kNoRun;
  };
  for (size_t i = 0; i < n; ++i) {
    const uint64_t index = items_seen_++;
    if (!down_ && schedule_->CrashesAt(site_, index)) {
      flush_run(i);
      Crash();
    }
    if (down_) {
      ++items_lost_;
      if (--down_remaining_ == 0) Restart();
      continue;
    }
    if (run_start == kNoRun) {
      if (retransmit_pending_) {
        // Deferred go-back-N replay (see the field comment): runs at the
        // site's own step, before the new item, so the coordinator can
        // fill the gap and then take the new message in order. A nack can
        // only arrive between spans, so checking at the head of each live
        // run is exactly the per-item check.
        retransmit_pending_ = false;
        for (const sim::Payload& m : unacked_) {
          if (m.seq < retransmit_from_) continue;
          ++retransmits_sent_;
          if (obs::TracingEnabled()) {
            obs::Emit(SessionEvent(obs::EventType::kRetransmit, trace_shard_,
                                   site_, /*dir=*/1, m));
          }
          lower_->SendToCoordinator(site_, m);
        }
      }
      run_start = i;
    }
  }
  flush_run(n);
}

void SiteSession::OnMessage(const sim::Payload& msg) {
  if (obs::TracingEnabled()) {
    obs::Emit(SessionEvent(obs::EventType::kMsgRecv, trace_shard_, site_,
                           /*dir=*/2, msg));
  }
  if (down_) {
    // The process is dead; anything addressed to it is lost on the floor.
    ++messages_dropped_down_;
    return;
  }
  switch (msg.type) {
    case kSessionAck: {
      if (msg.epoch != epoch_) return;  // ack for a previous incarnation
      while (!unacked_.empty() && unacked_.front().seq <= msg.a) {
        unacked_.pop_front();
      }
      return;
    }
    case kSessionNack: {
      if (msg.epoch != epoch_) return;
      // Request go-back-N replay from the lowest seq any nack asked for;
      // performed at the next OnItem (see OnItem).
      if (!retransmit_pending_ ||
          msg.a < static_cast<uint64_t>(retransmit_from_)) {
        retransmit_from_ = static_cast<uint32_t>(msg.a);
      }
      retransmit_pending_ = true;
      return;
    }
    default:
      endpoint_->OnMessage(msg);
  }
}

void SiteSession::SendToCoordinator(int site, const sim::Payload& msg) {
  DWRS_CHECK_EQ(site, site_);
  DWRS_CHECK(!down_);
  // seq 0 means "unstamped" on the wire, so wrapping within one epoch
  // would silently break dedup; fail loudly instead (2^32 messages from
  // one site without a crash is outside the design envelope).
  DWRS_CHECK_NE(next_seq_, 0u) << " per-epoch sequence space exhausted";
  sim::Payload stamped = msg;
  stamped.seq = next_seq_++;
  stamped.epoch = epoch_;
  unacked_.push_back(stamped);
  lower_->SendToCoordinator(site_, stamped);
}

void SiteSession::SendToSite(int /*site*/, const sim::Payload& /*msg*/) {
  DWRS_CHECK(false) << " site endpoints never send downstream";
}

void SiteSession::Broadcast(const sim::Payload& /*msg*/) {
  DWRS_CHECK(false) << " site endpoints never broadcast";
}

void SiteSession::RetransmitAllUnacked() {
  if (down_) return;
  retransmit_pending_ = false;
  for (const sim::Payload& m : unacked_) {
    ++retransmits_sent_;
    if (obs::TracingEnabled()) {
      obs::Emit(SessionEvent(obs::EventType::kRetransmit, trace_shard_, site_,
                             /*dir=*/1, m));
    }
    lower_->SendToCoordinator(site_, m);
  }
}

void SiteSession::Crash() {
  ++crashes_;
  if (obs::TracingEnabled()) {
    obs::TraceEvent event;
    event.type = obs::EventType::kCrash;
    event.shard = static_cast<int16_t>(trace_shard_);
    event.site = site_;
    event.epoch = epoch_;
    event.a = unacked_.size();  // messages about to be irrecoverably lost
    obs::Emit(event);
  }
  down_ = true;
  down_remaining_ =
      static_cast<uint64_t>(schedule_->config().crash_down_items);
  // Volatile state dies with the process: the endpoint, and with it any
  // sent-but-unacked messages — those are irrecoverable and counted, so
  // a degraded sample is always detectable, never silent.
  lost_unacked_ += unacked_.size();
  unacked_.clear();
  retransmit_pending_ = false;
  pre_crash_counters_ += endpoint_->HotPathCounters();
  endpoint_.reset();
}

void SiteSession::Restart() {
  down_ = false;
  ++epoch_;
  next_seq_ = 1;
  if (obs::TracingEnabled()) {
    obs::TraceEvent event;
    event.type = obs::EventType::kRestart;
    event.shard = static_cast<int16_t>(trace_shard_);
    event.site = site_;
    event.epoch = epoch_;
    obs::Emit(event);
  }
  endpoint_ = factory_(this, epoch_);
  DWRS_CHECK(endpoint_ != nullptr);
  // The hello is the first stamped message of the new epoch, so it is
  // covered by the same dedup/gap/retransmit machinery as everything
  // else; if it is dropped, the next message's higher epoch announces the
  // restart implicitly and go-back-N recovers the hello itself.
  sim::Payload hello;
  hello.type = kSessionHello;
  hello.words = 2;
  SendToCoordinator(site_, hello);
}

SiteSession::State SiteSession::SaveState() const {
  State s;
  s.epoch = epoch_;
  s.next_seq = next_seq_;
  s.unacked.assign(unacked_.begin(), unacked_.end());
  s.retransmit_pending = retransmit_pending_;
  s.retransmit_from = retransmit_from_;
  s.items_seen = items_seen_;
  s.down = down_;
  s.down_remaining = down_remaining_;
  s.crashes = crashes_;
  s.lost_unacked = lost_unacked_;
  s.items_lost = items_lost_;
  s.messages_dropped_down = messages_dropped_down_;
  s.retransmits_sent = retransmits_sent_;
  s.pre_crash_counters = pre_crash_counters_;
  return s;
}

void SiteSession::RestoreState(const State& s) {
  epoch_ = s.epoch;
  next_seq_ = s.next_seq;
  unacked_.assign(s.unacked.begin(), s.unacked.end());
  retransmit_pending_ = s.retransmit_pending;
  retransmit_from_ = s.retransmit_from;
  items_seen_ = s.items_seen;
  down_ = s.down;
  down_remaining_ = s.down_remaining;
  crashes_ = s.crashes;
  lost_unacked_ = s.lost_unacked;
  items_lost_ = s.items_lost;
  messages_dropped_down_ = s.messages_dropped_down;
  retransmits_sent_ = s.retransmits_sent;
  pre_crash_counters_ = s.pre_crash_counters;
  // Rebuild the endpoint at the saved epoch (dead while down); no hello —
  // this incarnation already introduced itself in the original timeline.
  endpoint_.reset();
  if (!down_) {
    endpoint_ = factory_(this, epoch_);
    DWRS_CHECK(endpoint_ != nullptr);
  }
}

// ---------------------------------------------------------------------
// CoordinatorSession

CoordinatorSession::CoordinatorSession(int num_sites,
                                       sim::CoordinatorNode* inner,
                                       sim::Transport* lower,
                                       ResyncProvider resync)
    : inner_(inner),
      lower_(lower),
      resync_(std::move(resync)),
      peers_(static_cast<size_t>(num_sites)) {
  DWRS_CHECK(inner != nullptr);
  DWRS_CHECK(lower != nullptr);
  DWRS_CHECK_GT(num_sites, 0);
}

void CoordinatorSession::SendAck(int site, const PeerState& peer) {
  sim::Payload ack;
  ack.type = kSessionAck;
  ack.a = peer.expected_seq - 1;
  ack.epoch = peer.epoch;
  ack.words = 2;
  lower_->SendToSite(site, ack);
}

void CoordinatorSession::FoldTranscript(int site, const sim::Payload& msg) {
  auto fold = [this](uint64_t v) {
    transcript_hash_ ^= v;
    transcript_hash_ *= 1099511628211ull;  // FNV prime
  };
  fold(static_cast<uint64_t>(site));
  fold(msg.type);
  fold(msg.a);
  fold(msg.seq);
  fold(msg.epoch);
  fold(std::bit_cast<uint64_t>(msg.x));
  fold(std::bit_cast<uint64_t>(msg.y));
}

void CoordinatorSession::OnMessage(int site, const sim::Payload& msg) {
  DWRS_CHECK(site >= 0 && static_cast<size_t>(site) < peers_.size());
  DWRS_CHECK_GT(msg.seq, 0u) << " unstamped message on a faulty transport";
  PeerState& peer = peers_[static_cast<size_t>(site)];
  if (obs::TracingEnabled()) {
    obs::Emit(SessionEvent(obs::EventType::kMsgRecv, trace_shard_, site,
                           /*dir=*/1, msg));
  }

  if (msg.epoch < peer.epoch) {
    // In-flight leftover from before the site's crash.
    ++stale_epoch_dropped_;
    if (obs::TracingEnabled()) {
      obs::Emit(SessionEvent(obs::EventType::kStaleEpochDrop, trace_shard_,
                             site, /*dir=*/1, msg));
    }
    return;
  }
  if (msg.epoch > peer.epoch) {
    // Restart detected — via the hello, or implicitly via any later
    // message if the hello was lost. Rebuild the peer slot and replay the
    // coordinator's filter state so the reborn site stops over-sending.
    peer.epoch = msg.epoch;
    peer.expected_seq = 1;
    peer.max_seen_seq = 0;
    peer.last_nacked_expected = 0;
    ++crash_detections_;
    if (obs::TracingEnabled()) {
      obs::TraceEvent event;
      event.type = obs::EventType::kEpochBump;
      event.shard = static_cast<int16_t>(trace_shard_);
      event.site = site;
      event.dir = 1;
      event.epoch = peer.epoch;
      obs::Emit(event);
    }
    if (resync_) {
      for (sim::Payload m : resync_()) {
        m.epoch = peer.epoch;
        if (obs::TracingEnabled()) {
          obs::Emit(SessionEvent(obs::EventType::kResyncSend, trace_shard_,
                                 site, /*dir=*/2, m));
        }
        lower_->SendToSite(site, m);
        ++resyncs_sent_;
      }
    }
  }

  if (msg.seq > peer.max_seen_seq) peer.max_seen_seq = msg.seq;

  if (msg.seq < peer.expected_seq) {
    // Duplicate (network duplication or go-back-N overshoot). Re-ack so a
    // site retransmitting into a lost-ack window can still clear its
    // buffer.
    ++duplicates_dropped_;
    if (obs::TracingEnabled()) {
      obs::Emit(SessionEvent(obs::EventType::kDupDrop, trace_shard_, site,
                             /*dir=*/1, msg));
    }
    SendAck(site, peer);
    return;
  }
  if (msg.seq > peer.expected_seq) {
    // Gap: something before this message is missing. Nack once per
    // missing position; the end-of-stream reconcile covers nacks that
    // are themselves lost.
    ++gaps_detected_;
    if (peer.last_nacked_expected != peer.expected_seq) {
      peer.last_nacked_expected = peer.expected_seq;
      sim::Payload nack;
      nack.type = kSessionNack;
      nack.a = peer.expected_seq;
      nack.epoch = peer.epoch;
      nack.words = 2;
      if (obs::TracingEnabled()) {
        obs::Emit(SessionEvent(obs::EventType::kGapNack, trace_shard_, site,
                               /*dir=*/2, nack));
      }
      lower_->SendToSite(site, nack);
      ++nacks_sent_;
    }
    return;
  }

  // In order: deliver exactly once.
  ++peer.expected_seq;
  FoldTranscript(site, msg);
  ++delivered_;
  if (obs::TracingEnabled()) {
    obs::Emit(SessionEvent(obs::EventType::kMsgDeliver, trace_shard_, site,
                           /*dir=*/1, msg));
  }
  if (msg.type != kSessionHello) inner_->OnMessage(site, msg);
  SendAck(site, peer);
}

CoordinatorSession::State CoordinatorSession::SaveState() const {
  State s;
  s.peers = peers_;
  s.transcript_hash = transcript_hash_;
  s.delivered = delivered_;
  s.duplicates_dropped = duplicates_dropped_;
  s.stale_epoch_dropped = stale_epoch_dropped_;
  s.gaps_detected = gaps_detected_;
  s.nacks_sent = nacks_sent_;
  s.crash_detections = crash_detections_;
  s.resyncs_sent = resyncs_sent_;
  return s;
}

void CoordinatorSession::RestoreState(const State& s) {
  DWRS_CHECK_EQ(s.peers.size(), peers_.size());
  peers_ = s.peers;
  transcript_hash_ = s.transcript_hash;
  delivered_ = s.delivered;
  duplicates_dropped_ = s.duplicates_dropped;
  stale_epoch_dropped_ = s.stale_epoch_dropped;
  gaps_detected_ = s.gaps_detected;
  nacks_sent_ = s.nacks_sent;
  crash_detections_ = s.crash_detections;
  resyncs_sent_ = s.resyncs_sent;
}

bool CoordinatorSession::AllGapsResolved() const {
  for (const PeerState& peer : peers_) {
    if (peer.max_seen_seq >= peer.expected_seq) return false;
  }
  return true;
}

uint32_t CoordinatorSession::MaxSiteEpoch() const {
  uint32_t max_epoch = 0;
  for (const PeerState& peer : peers_) {
    if (peer.epoch > max_epoch) max_epoch = peer.epoch;
  }
  return max_epoch;
}

}  // namespace dwrs::faults
