// Session layer that makes the paper's protocols survive an unreliable
// transport: per-site monotonic sequence numbers and crash epochs stamped
// onto every upstream message, coordinator-side duplicate suppression and
// gap detection with go-back-N retransmission, and a resync path that
// replays the coordinator's filter state (epoch threshold, saturated
// levels) to a crashed-and-restarted site.
//
// Why only the upstream direction carries reliability state: for the
// hardened protocols (core wswor, the unweighted substrate, the L1
// tracker) every coordinator->site message is a monotone filter update —
// thresholds only tighten, saturation flags only set — so downstream
// loss, duplication, and reordering are absorbed by the protocol itself
// (a stale filter only costs extra messages, never correctness). The
// upstream direction carries sample candidates, where a loss or a
// duplicate would silently corrupt the sample; that is what the session
// layer guards.
//
//   endpoint (WsworSite) --sends via--> SiteSession (stamps seq/epoch,
//       buffers unacked)  --> FaultyTransport --> Network / Engine
//   CoordinatorSession (dedup, gap nack, ack, resync) --> inner
//       coordinator endpoint
//
// Protocols whose site state cannot be reconstructed from coordinator
// state (the naive baseline's local top-s, the sliding-window sampler's
// expiry queues) declare kRequiresReliableTransport in their headers and
// are excluded from the fault harness.

#ifndef DWRS_FAULTS_SESSION_H_
#define DWRS_FAULTS_SESSION_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "faults/fault_schedule.h"
#include "sim/message.h"
#include "sim/node.h"
#include "stream/item.h"

namespace dwrs::faults {

// Session-control message tags. Chosen clear of every protocol's own tag
// space (all protocols number from 1) but inside the 32-slot by_type
// accounting window.
enum SessionMessageType : uint32_t {
  kSessionAck = 24,    // coord -> site: a = cumulative seq; epoch echoed
  kSessionNack = 25,   // coord -> site: a = retransmit-from seq; epoch
  kSessionHello = 26,  // site -> coord: first stamped message of an epoch
};

// The site half. Owns the protocol endpoint (rebuilt on restart via the
// factory) and sits between it and the transport in both directions.
class SiteSession : public sim::SiteNode, public sim::Transport {
 public:
  // Builds the protocol endpoint for `epoch`; the endpoint must send via
  // `upper` (this session). Epoch 0 is the initial pre-crash endpoint;
  // later epochs must derive fresh randomness from the epoch so a
  // restarted site never replays its previous key stream.
  using EndpointFactory = std::function<std::unique_ptr<sim::SiteNode>(
      sim::Transport* upper, uint32_t epoch)>;

  SiteSession(int site, sim::Transport* lower, const FaultSchedule* schedule,
              EndpointFactory factory);

  // --- sim::SiteNode (attached to the runtime/engine) ------------------
  // Span ingestion splits the span at crash/restart boundaries and hands
  // the maximal live runs to the inner endpoint's OnItems, so the batched
  // engine path keeps its throughput under fault injection while staying
  // transcript-identical to the per-item path (OnItem is the n = 1 span).
  void OnItem(const Item& item) override;
  void OnItems(const Item* items, size_t n) override;
  void OnMessage(const sim::Payload& msg) override;
  sim::SiteHotPathCounters HotPathCounters() const override {
    // Counters of dead incarnations (folded in by Crash()) plus the
    // live endpoint's, so crash-restarts never shrink the totals.
    sim::SiteHotPathCounters total = pre_crash_counters_;
    if (endpoint_) total += endpoint_->HotPathCounters();
    return total;
  }

  // --- sim::Transport (handed to the inner endpoint) -------------------
  void SendToCoordinator(int site, const sim::Payload& msg) override;
  void SendToSite(int site, const sim::Payload& msg) override;
  void Broadcast(const sim::Payload& msg) override;
  uint64_t step() const override { return lower_->step(); }

  // Re-sends every unacked message (same stamps, same payload — a
  // retransmission is byte-identical to the original). Reconcile helper;
  // quiesce points only.
  void RetransmitAllUnacked();

  bool retransmit_pending() const { return retransmit_pending_; }

  // --- introspection ---------------------------------------------------
  uint32_t epoch() const { return epoch_; }
  bool down() const { return down_; }
  size_t unacked_size() const { return unacked_.size(); }
  uint64_t crashes() const { return crashes_; }
  // Ground truth for "data irrecoverably lost": stamped messages that
  // were neither acked nor retransmittable when a crash wiped the buffer.
  uint64_t lost_unacked() const { return lost_unacked_; }
  // Items that arrived while the site was down (never sampled).
  uint64_t items_lost() const { return items_lost_; }
  uint64_t messages_dropped_down() const { return messages_dropped_down_; }
  // Go-back-N replay traffic: messages re-sent from the unacked buffer
  // (nack-triggered deferred replays plus reconcile-round retransmits).
  uint64_t retransmits_sent() const { return retransmits_sent_; }

  // Shard label stamped on this session's flight-recorder events
  // (sharded harness wiring; 0 for unsharded runs).
  void set_trace_shard(int shard) { trace_shard_ = shard; }

  // --- durable-checkpoint surface (src/durability/) --------------------
  // Everything volatile the session owns: the reliability stamps, the
  // unacked retransmit buffer, the crash/down bookkeeping and the
  // counters. The endpoint's own protocol state is saved separately by
  // the durability layer through endpoint().
  struct State {
    uint32_t epoch = 0;
    uint32_t next_seq = 1;
    std::vector<sim::Payload> unacked;
    bool retransmit_pending = false;
    uint32_t retransmit_from = 0;
    uint64_t items_seen = 0;
    bool down = false;
    uint64_t down_remaining = 0;
    uint64_t crashes = 0;
    uint64_t lost_unacked = 0;
    uint64_t items_lost = 0;
    uint64_t messages_dropped_down = 0;
    uint64_t retransmits_sent = 0;
    sim::SiteHotPathCounters pre_crash_counters;
  };
  State SaveState() const;
  // Restores the session and rebuilds the endpoint at the saved epoch
  // (no endpoint while down). Sends nothing — unlike Restart(), the
  // restored incarnation already introduced itself in the original
  // timeline. The caller restores the endpoint's protocol state
  // afterwards through endpoint().
  void RestoreState(const State& s);
  // The live protocol endpoint (nullptr while down). Mutable access for
  // the durability layer's endpoint state save/restore only.
  sim::SiteNode* endpoint() { return endpoint_.get(); }

 private:
  void Crash();
  void Restart();

  const int site_;
  sim::Transport* const lower_;
  const FaultSchedule* const schedule_;
  EndpointFactory factory_;
  std::unique_ptr<sim::SiteNode> endpoint_;

  uint32_t epoch_ = 0;
  uint32_t next_seq_ = 1;
  std::deque<sim::Payload> unacked_;  // stamped, seq-ascending
  // Go-back-N replay requested by a nack. Deferred to the site's next
  // OnItem rather than performed inline: an inline replay can race — a
  // single coordinator broadcast may release withheld nacks to several
  // sites, whose worker threads would then push replay bursts into the
  // MPSC coordinator inbox concurrently, making the interleaving (and so
  // the transcript) timing-dependent on the engine backend. Deferral
  // keeps exactly one upstream producer per step on both backends, which
  // is what makes a fault seed replay bit-identically.
  bool retransmit_pending_ = false;
  uint32_t retransmit_from_ = 0;

  uint64_t items_seen_ = 0;
  bool down_ = false;
  uint64_t down_remaining_ = 0;

  uint64_t crashes_ = 0;
  uint64_t lost_unacked_ = 0;
  uint64_t items_lost_ = 0;
  uint64_t messages_dropped_down_ = 0;
  uint64_t retransmits_sent_ = 0;
  int trace_shard_ = 0;
  // Hot-path counters of endpoints destroyed by crashes.
  sim::SiteHotPathCounters pre_crash_counters_;
};

// The coordinator half. Delivers upstream messages to the inner endpoint
// exactly once and in per-site order; acks cumulatively; nacks gaps;
// detects restarts (epoch bumps, with or without the hello arriving) and
// replays the resync state to the reborn site.
class CoordinatorSession : public sim::CoordinatorNode {
 public:
  // Produces the protocol messages that rebuild a restarted site's
  // filter state from the coordinator's (e.g. current epoch threshold +
  // saturated levels). Sent down on every detected restart; must be
  // idempotent and safe under loss (all hardened protocols' filter
  // updates are).
  using ResyncProvider = std::function<std::vector<sim::Payload>()>;

  CoordinatorSession(int num_sites, sim::CoordinatorNode* inner,
                     sim::Transport* lower, ResyncProvider resync);

  void OnMessage(int site, const sim::Payload& msg) override;

  // The session is transparent to the root merge stage: a sharded
  // backend attached to sessions still answers MergedSample queries with
  // the inner coordinators' summaries. Version forwarding keeps the
  // live-query snapshot layer oblivious to the session wrapper too.
  MergeableSample ShardSample() const override {
    return inner_->ShardSample();
  }
  uint64_t StateVersion() const override { return inner_->StateVersion(); }

  // --- introspection ---------------------------------------------------
  // FNV-1a fold of every in-order delivered message (site, stamps and
  // payload bits included): the replayable transcript. Two runs are
  // bit-identical iff hash and count agree.
  uint64_t transcript_hash() const { return transcript_hash_; }
  uint64_t delivered() const { return delivered_; }

  uint64_t duplicates_dropped() const { return duplicates_dropped_; }
  uint64_t stale_epoch_dropped() const { return stale_epoch_dropped_; }
  uint64_t gaps_detected() const { return gaps_detected_; }
  uint64_t nacks_sent() const { return nacks_sent_; }
  uint64_t crash_detections() const { return crash_detections_; }
  uint64_t resyncs_sent() const { return resyncs_sent_; }

  // Shard label for this session's flight-recorder events.
  void set_trace_shard(int shard) { trace_shard_ = shard; }

  // True iff no site has an outstanding unfilled gap (every delivered
  // prefix is contiguous and nothing received still waits on a nack).
  bool AllGapsResolved() const;

  // Highest crash epoch observed across all sites — the coordinator-side
  // epoch coherence stamp the live-query snapshots carry (a bump means
  // some site of this shard crashed and restarted).
  uint32_t MaxSiteEpoch() const;

  struct PeerState {
    uint32_t epoch = 0;
    uint32_t expected_seq = 1;
    // Highest seq observed in the current epoch; > expected_seq - 1 means
    // an unfilled gap.
    uint32_t max_seen_seq = 0;
    uint32_t last_nacked_expected = 0;
  };

  // --- durable-checkpoint surface (src/durability/) --------------------
  // The per-peer reliability state plus the transcript fold and counters;
  // with these restored, replaying the logged arrival stream through
  // OnMessage reproduces the exact delivered prefix and counter
  // evolution of the original run.
  struct State {
    std::vector<PeerState> peers;
    uint64_t transcript_hash = 0;
    uint64_t delivered = 0;
    uint64_t duplicates_dropped = 0;
    uint64_t stale_epoch_dropped = 0;
    uint64_t gaps_detected = 0;
    uint64_t nacks_sent = 0;
    uint64_t crash_detections = 0;
    uint64_t resyncs_sent = 0;
  };
  State SaveState() const;
  void RestoreState(const State& s);

 private:
  void SendAck(int site, const PeerState& peer);
  void FoldTranscript(int site, const sim::Payload& msg);

  sim::CoordinatorNode* const inner_;
  sim::Transport* const lower_;
  ResyncProvider resync_;
  std::vector<PeerState> peers_;

  uint64_t transcript_hash_ = 1469598103934665603ull;  // FNV offset basis
  uint64_t delivered_ = 0;
  uint64_t duplicates_dropped_ = 0;
  uint64_t stale_epoch_dropped_ = 0;
  uint64_t gaps_detected_ = 0;
  uint64_t nacks_sent_ = 0;
  uint64_t crash_detections_ = 0;
  uint64_t resyncs_sent_ = 0;
  int trace_shard_ = 0;
};

}  // namespace dwrs::faults

#endif  // DWRS_FAULTS_SESSION_H_
