#include "faults/faulty_transport.h"

#include "obs/trace.h"
#include "util/check.h"

namespace dwrs::faults {

namespace {

obs::TraceEvent FaultEvent(obs::EventType type, int shard, int site,
                           bool upstream, const sim::Payload& msg) {
  obs::TraceEvent event;
  event.type = type;
  event.shard = static_cast<int16_t>(shard);
  event.site = site;
  event.dir = upstream ? 1 : 2;
  event.msg_type = static_cast<uint16_t>(msg.type);
  event.seq = msg.seq;
  event.epoch = msg.epoch;
  event.a = msg.a;
  event.x = msg.x;
  return event;
}

}  // namespace

FaultyTransport::FaultyTransport(sim::Transport* inner,
                                 const FaultSchedule* schedule, int num_sites)
    : inner_(inner),
      schedule_(schedule),
      num_sites_(num_sites),
      channels_(2 * static_cast<size_t>(num_sites)) {
  DWRS_CHECK(inner != nullptr);
  DWRS_CHECK(schedule != nullptr);
  DWRS_CHECK_GT(num_sites, 0);
}

void FaultyTransport::Forward(int site, bool upstream,
                              const sim::Payload& msg) {
  counters_.forwarded.fetch_add(1, std::memory_order_relaxed);
  if (upstream) {
    inner_->SendToCoordinator(site, msg);
  } else {
    inner_->SendToSite(site, msg);
  }
}

void FaultyTransport::ReleaseDue(ChannelState& state, int site,
                                 bool upstream) {
  size_t kept = 0;
  for (size_t i = 0; i < state.held.size(); ++i) {
    if (state.held[i].first < state.next_index) {
      Forward(site, upstream, state.held[i].second);
    } else {
      if (kept != i) state.held[kept] = std::move(state.held[i]);
      ++kept;
    }
  }
  state.held.resize(kept);
}

void FaultyTransport::Send(uint32_t channel, int site, bool upstream,
                           const sim::Payload& msg) {
  ChannelState& state = channels_[channel];
  const uint64_t index = state.next_index++;
  const bool gated = upstream ? schedule_->config().fault_upstream
                              : schedule_->config().fault_downstream;
  SendFaults faults;
  if (enabled() && gated) faults = schedule_->OnSend(channel, index);

  if (faults.drop) {
    counters_.dropped.fetch_add(1, std::memory_order_relaxed);
    if (obs::TracingEnabled()) {
      obs::Emit(FaultEvent(obs::EventType::kFaultDrop, trace_shard_, site,
                           upstream, msg));
    }
  } else {
    if (faults.delay > 0) {
      counters_.delayed.fetch_add(1, std::memory_order_relaxed);
      if (obs::TracingEnabled()) {
        obs::Emit(FaultEvent(obs::EventType::kFaultDelay, trace_shard_, site,
                             upstream, msg));
      }
      state.held.emplace_back(index + static_cast<uint64_t>(faults.delay),
                              msg);
    } else {
      Forward(site, upstream, msg);
    }
    if (faults.duplicate) {
      counters_.duplicated.fetch_add(1, std::memory_order_relaxed);
      if (obs::TracingEnabled()) {
        obs::Emit(FaultEvent(obs::EventType::kFaultDup, trace_shard_, site,
                             upstream, msg));
      }
      Forward(site, upstream, msg);
    }
  }
  ReleaseDue(state, site, upstream);
}

void FaultyTransport::SendToCoordinator(int site, const sim::Payload& msg) {
  DWRS_CHECK(site >= 0 && site < num_sites_);
  Send(static_cast<uint32_t>(site), site, /*upstream=*/true, msg);
}

void FaultyTransport::SendToSite(int site, const sim::Payload& msg) {
  DWRS_CHECK(site >= 0 && site < num_sites_);
  Send(static_cast<uint32_t>(num_sites_ + site), site, /*upstream=*/false,
       msg);
}

void FaultyTransport::Broadcast(const sim::Payload& msg) {
  // No atomic broadcast under the fault model: each site's copy is an
  // independent down-channel send with its own fault verdict.
  for (int site = 0; site < num_sites_; ++site) SendToSite(site, msg);
}

FaultyTransport::State FaultyTransport::SaveState() const {
  State s;
  s.channels = channels_;
  s.forwarded = counters_.forwarded.load(std::memory_order_relaxed);
  s.dropped = counters_.dropped.load(std::memory_order_relaxed);
  s.duplicated = counters_.duplicated.load(std::memory_order_relaxed);
  s.delayed = counters_.delayed.load(std::memory_order_relaxed);
  s.enabled = enabled();
  return s;
}

void FaultyTransport::RestoreState(const State& s) {
  DWRS_CHECK_EQ(s.channels.size(), channels_.size());
  channels_ = s.channels;
  counters_.forwarded.store(s.forwarded, std::memory_order_relaxed);
  counters_.dropped.store(s.dropped, std::memory_order_relaxed);
  counters_.duplicated.store(s.duplicated, std::memory_order_relaxed);
  counters_.delayed.store(s.delayed, std::memory_order_relaxed);
  enabled_.store(s.enabled, std::memory_order_relaxed);
}

void FaultyTransport::FlushDelayed() {
  // Down-channels strictly before up-channels: the caller holds a
  // quiesced engine, so the coordinator thread is parked until the first
  // released upstream message reaches its inbox — after which it may
  // immediately send acks that touch down-channel state. Releasing the
  // down side first keeps this feeder-thread sweep free of that race.
  const size_t k = static_cast<size_t>(num_sites_);
  auto release_all = [this](size_t c) {
    ChannelState& state = channels_[c];
    const bool upstream = c < static_cast<size_t>(num_sites_);
    const int site =
        static_cast<int>(upstream ? c : c - static_cast<size_t>(num_sites_));
    for (auto& [release_at, payload] : state.held) {
      Forward(site, upstream, payload);
    }
    state.held.clear();
  };
  for (size_t c = k; c < 2 * k; ++c) release_all(c);
  for (size_t c = 0; c < k; ++c) release_all(c);
}

}  // namespace dwrs::faults
