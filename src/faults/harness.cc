#include "faults/harness.h"

namespace dwrs::faults {

std::vector<uint64_t> SurvivingItemIds(const Workload& workload,
                                       const FaultSchedule& schedule) {
  const size_t k = static_cast<size_t>(workload.num_sites());
  std::vector<uint64_t> arrivals(k, 0);
  std::vector<uint64_t> down_remaining(k, 0);
  std::vector<uint64_t> surviving;
  const uint64_t down_for =
      static_cast<uint64_t>(schedule.config().crash_down_items);
  for (uint64_t i = 0; i < workload.size(); ++i) {
    const WorkloadEvent& event = workload.event(i);
    const size_t site = static_cast<size_t>(event.site);
    const uint64_t index = arrivals[site]++;
    if (down_remaining[site] == 0 &&
        schedule.CrashesAt(event.site, index)) {
      down_remaining[site] = down_for;
    }
    if (down_remaining[site] > 0) {
      --down_remaining[site];
      continue;  // lost at a crashed site
    }
    surviving.push_back(event.item.id);
  }
  return surviving;
}

}  // namespace dwrs::faults
