// FaultyTransport — a sim::Transport decorator that subjects every send
// to a deterministic FaultSchedule before forwarding it to the inner
// transport (sim::Network or engine::Engine). Drop, duplicate, and
// bounded delay/reorder are applied per channel; broadcasts are
// decomposed into per-site sends so each copy is faulted independently
// (the broadcast_events counter of the inner transport therefore stays
// at zero under faults — the fault model has no atomic broadcast).
//
// Threading: each channel's state is touched only by the thread that
// legitimately sends on it (site i's worker for up-channel i, the
// coordinator thread for every down-channel), mirroring the engine's
// send discipline, so per-channel state needs no locking. Aggregate
// counters are relaxed atomics. FlushDelayed() and set_enabled() must
// only be called at quiesce points (between Deliver calls on the
// simulator; after Engine::Flush on the engine).

#ifndef DWRS_FAULTS_FAULTY_TRANSPORT_H_
#define DWRS_FAULTS_FAULTY_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "faults/fault_schedule.h"
#include "sim/message.h"
#include "sim/node.h"

namespace dwrs::faults {

struct FaultCounters {
  std::atomic<uint64_t> forwarded{0};
  std::atomic<uint64_t> dropped{0};
  std::atomic<uint64_t> duplicated{0};
  std::atomic<uint64_t> delayed{0};
};

class FaultyTransport : public sim::Transport {
 public:
  FaultyTransport(sim::Transport* inner, const FaultSchedule* schedule,
                  int num_sites);

  FaultyTransport(const FaultyTransport&) = delete;
  FaultyTransport& operator=(const FaultyTransport&) = delete;

  // --- sim::Transport --------------------------------------------------
  void SendToCoordinator(int site, const sim::Payload& msg) override;
  void SendToSite(int site, const sim::Payload& msg) override;
  void Broadcast(const sim::Payload& msg) override;
  uint64_t step() const override { return inner_->step(); }

  // Releases every withheld (delayed) message into the inner transport,
  // in per-channel order, down-channels first (see the release-order
  // note in the .cc). Quiesce points only.
  void FlushDelayed();

  // The network "heals": with enabled(false) every send passes through
  // unfaulted. Used by the end-of-stream reconcile round (the standard
  // partial-synchrony assumption that faults eventually quiesce).
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  const FaultCounters& counters() const { return counters_; }

  // Shard label stamped on this transport's flight-recorder events.
  void set_trace_shard(int shard) { trace_shard_ = shard; }

  struct ChannelState {
    uint64_t next_index = 0;
    // (release once next_index exceeds .first, payload); insertion order.
    std::vector<std::pair<uint64_t, sim::Payload>> held;
  };

  // --- durable-checkpoint surface (src/durability/) --------------------
  // Per-channel send indices and withheld messages plus the verdict
  // counters: restoring them keeps every post-recovery send at the same
  // fault-schedule coordinate it had in the original timeline, which is
  // what keeps a recovered run deterministic. Quiesce points only.
  struct State {
    std::vector<ChannelState> channels;
    uint64_t forwarded = 0;
    uint64_t dropped = 0;
    uint64_t duplicated = 0;
    uint64_t delayed = 0;
    bool enabled = true;
  };
  State SaveState() const;
  void RestoreState(const State& s);

 private:
  // channel ids: 0..k-1 up, k..2k-1 down (matching sim::Network).
  void Send(uint32_t channel, int site, bool upstream, const sim::Payload& msg);
  void Forward(int site, bool upstream, const sim::Payload& msg);
  void ReleaseDue(ChannelState& state, int site, bool upstream);

  sim::Transport* const inner_;
  const FaultSchedule* const schedule_;
  const int num_sites_;
  std::atomic<bool> enabled_{true};
  std::vector<ChannelState> channels_;  // 2k entries
  FaultCounters counters_;
  int trace_shard_ = 0;
};

}  // namespace dwrs::faults

#endif  // DWRS_FAULTS_FAULTY_TRANSPORT_H_
