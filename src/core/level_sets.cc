#include "core/level_sets.h"

#include <algorithm>

#include "util/check.h"
#include "util/math_util.h"

namespace dwrs {

LevelSetManager::LevelSetManager(double level_base, uint64_t capacity,
                                 size_t top_keys)
    : level_base_(level_base), capacity_(capacity), heap_(top_keys) {
  DWRS_CHECK_GE(level_base, 2.0);
  DWRS_CHECK_GT(capacity, 0u);
}

int LevelSetManager::LevelOf(double weight) const {
  DWRS_CHECK_GT(weight, 0.0);
  return FloorLogBase(weight, level_base_);
}

bool LevelSetManager::IsSaturated(int level) const {
  DWRS_CHECK_GE(level, 0);
  if (static_cast<size_t>(level) >= saturated_.size()) return false;
  return saturated_[static_cast<size_t>(level)] != 0;
}

std::vector<KeyedItem> LevelSetManager::AddEarly(const Item& item, double key,
                                                 int* saturated_level) {
  const int level = LevelOf(item.weight);
  const size_t idx = static_cast<size_t>(level);
  if (idx >= counts_.size()) {
    counts_.resize(idx + 1, 0);
    saturated_.resize(idx + 1, 0);
  }
  *saturated_level = -1;

  if (saturated_[idx] != 0) {
    // A site sent this before hearing the saturation broadcast (possible
    // with delivery delay); the caller releases it directly.
    return {KeyedItem{item, key}};
  }

  ++counts_[idx];
  heap_.Offer(key, Withheld{item, level});

  if (counts_[idx] < capacity_) return {};

  // Level saturates now: release every stored entry of this level.
  saturated_[idx] = 1;
  *saturated_level = level;
  std::vector<KeyedItem> released;
  for (auto& e : heap_.ExtractIf([level](const TopKeyHeap<Withheld>::Entry& e) {
         return e.value.level == level;
       })) {
    released.push_back(KeyedItem{e.value.item, e.key});
  }
  return released;
}

std::vector<KeyedItem> LevelSetManager::WithheldEntries() const {
  std::vector<KeyedItem> out;
  out.reserve(heap_.size());
  for (const auto& e : heap_.entries()) {
    out.push_back(KeyedItem{e.value.item, e.key});
  }
  return out;
}

std::vector<LeveledKeyedItem> LevelSetManager::WithheldLeveledEntries() const {
  std::vector<LeveledKeyedItem> out;
  out.reserve(heap_.size());
  for (const auto& e : heap_.entries()) {
    out.push_back(LeveledKeyedItem{KeyedItem{e.value.item, e.key},
                                   e.value.level});
  }
  return out;
}

std::vector<LevelCount> LevelSetManager::LevelCounts() const {
  std::vector<LevelCount> out;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] != 0) {
      out.push_back(LevelCount{static_cast<int>(i), counts_[i]});
    }
  }
  return out;
}

std::vector<int> LevelSetManager::SaturatedLevels() const {
  std::vector<int> out;
  for (size_t i = 0; i < saturated_.size(); ++i) {
    if (saturated_[i] != 0) out.push_back(static_cast<int>(i));
  }
  return out;
}

void LevelSetManager::RestoreState(
    const std::vector<LevelCount>& counts,
    const std::vector<int>& saturated_levels,
    const std::vector<LeveledKeyedItem>& withheld) {
  counts_.clear();
  saturated_.clear();
  size_t max_level = 0;
  for (const LevelCount& lc : counts) {
    DWRS_CHECK_GE(lc.level, 0);
    max_level = std::max(max_level, static_cast<size_t>(lc.level));
  }
  for (int level : saturated_levels) {
    DWRS_CHECK_GE(level, 0);
    max_level = std::max(max_level, static_cast<size_t>(level));
  }
  if (!counts.empty() || !saturated_levels.empty()) {
    counts_.resize(max_level + 1, 0);
    saturated_.resize(max_level + 1, 0);
  }
  for (const LevelCount& lc : counts) {
    counts_[static_cast<size_t>(lc.level)] = lc.count;
  }
  for (int level : saturated_levels) {
    saturated_[static_cast<size_t>(level)] = 1;
  }
  heap_ = TopKeyHeap<Withheld>(heap_.capacity());
  for (const LeveledKeyedItem& e : withheld) {
    heap_.Offer(e.entry.key, Withheld{e.entry.item, e.level});
  }
}

uint64_t LevelSetManager::CountInLevel(int level) const {
  DWRS_CHECK_GE(level, 0);
  if (static_cast<size_t>(level) >= counts_.size()) return 0;
  return counts_[static_cast<size_t>(level)];
}

}  // namespace dwrs
