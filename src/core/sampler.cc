#include "core/sampler.h"

#include "util/check.h"

namespace dwrs {

DistributedWswor::DistributedWswor(const WsworConfig& config)
    : config_(config),
      runtime_(config.num_sites, config.delivery_delay, config.jitter_seed) {
  Rng master(config.seed);
  sites_.reserve(static_cast<size_t>(config.num_sites));
  for (int i = 0; i < config.num_sites; ++i) {
    sites_.push_back(std::make_unique<WsworSite>(
        config_, i, &runtime_.network(), master.NextU64()));
    runtime_.AttachSite(i, sites_.back().get());
  }
  coordinator_ = std::make_unique<WsworCoordinator>(
      config_, &runtime_.network(), master.NextU64());
  runtime_.AttachCoordinator(coordinator_.get());
}

void DistributedWswor::Observe(int site, const Item& item) {
  ++items_observed_;
  runtime_.Deliver(WorkloadEvent{site, item});
}

void DistributedWswor::Run(const Workload& workload,
                           const std::function<void(uint64_t)>& on_step) {
  DWRS_CHECK_EQ(workload.num_sites(), config_.num_sites);
  for (uint64_t i = 0; i < workload.size(); ++i) {
    Observe(workload.event(i).site, workload.event(i).item);
    if (on_step) on_step(i + 1);
  }
}

void DistributedWswor::FlushNetwork() { runtime_.Flush(); }

std::vector<KeyedItem> DistributedWswor::Sample() const {
  return coordinator_->Sample();
}

uint64_t DistributedWswor::KeysDecided() const {
  uint64_t total = 0;
  for (const auto& site : sites_) total += site->keys_decided();
  return total;
}

uint64_t DistributedWswor::KeyBitsConsumed() const {
  uint64_t total = 0;
  for (const auto& site : sites_) total += site->key_bits_consumed();
  return total;
}

}  // namespace dwrs
