// Coordinator-side protocol of the weighted SWOR sampler (paper
// Algorithms 2 and 3): maintains the top-s sample S, the level sets D_j,
// the epoch threshold u, and answers continuous sample queries with the
// top-s keys of S ∪ D.

#ifndef DWRS_CORE_COORDINATOR_H_
#define DWRS_CORE_COORDINATOR_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/config.h"
#include "core/level_sets.h"
#include "random/rng.h"
#include "sampling/keyed_item.h"
#include "sampling/top_key_heap.h"
#include "sim/node.h"

namespace dwrs {

// Threading contract (audited for the concurrent engine): the class is
// externally synchronized. OnMessage mutates sample_, levels_ and rng_,
// and Sample()/Threshold()/StoredEntries() read the same state without
// internal locking, so a query concurrent with message processing is a
// data race. Under sim::Runtime everything runs on one thread; under
// engine::Engine all OnMessage calls happen on the coordinator thread and
// queries are only legal at quiesce points (after Engine::Flush or inside
// a step-synchronous on_step hook), which establish a happens-before edge
// with the coordinator thread. Keeping the coordinator lock-free keeps
// the single-threaded hot path at the paper's O(log s) per message.
class WsworCoordinator : public sim::CoordinatorNode {
 public:
  WsworCoordinator(const WsworConfig& config, sim::Transport* transport,
                   uint64_t seed);

  void OnMessage(int site, const sim::Payload& msg) override;

  // Mergeable shard summary: S as top-key entries, D as level-tagged
  // withheld entries with per-level counts. Merging the summaries of
  // shard coordinators over disjoint site subsets yields exactly the
  // sample a single coordinator over all sites would answer with (each
  // item's key is drawn once, at its one shard; see
  // sampling/mergeable_sample.h for the thinning argument). The export
  // is stamped with StateVersion().
  MergeableSample ShardSample() const override;

  // Advances by one per processed protocol message — the coordinator's
  // state is a deterministic function of its delivered-message prefix,
  // so equal versions imply equal state (the property the live-query
  // snapshot layer keys on).
  uint64_t StateVersion() const override { return state_version_; }

  // The continuously maintained weighted SWOR: top-s keys of S ∪ D,
  // descending by key; fewer than s entries only while fewer than s items
  // have been observed. See the threading contract above: callers must
  // not invoke this concurrently with OnMessage.
  std::vector<KeyedItem> Sample() const;

  // u: s-th largest key among sampled (regular + released) items.
  double Threshold() const { return sample_.ThresholdOrZero(); }

  // Announced epoch (-1 until u >= 1).
  int announced_epoch() const { return announced_epoch_; }

  // Space audit (Proposition 6): total stored (item, key) entries.
  size_t StoredEntries() const {
    return sample_.size() + levels_.StoredEntries();
  }

  uint64_t early_received() const { return early_received_; }
  uint64_t regular_received() const { return regular_received_; }

  // The protocol messages that rebuild a crashed-and-restarted site's
  // filter state from coordinator state: the current epoch threshold (if
  // announced) plus one saturation notice per saturated level. All are
  // monotone/idempotent, so replaying them is safe under loss,
  // duplication, and reordering — the resync path of the fault model
  // (src/faults/session.h).
  std::vector<sim::Payload> ResyncMessages() const;

  const LevelSetManager& levels() const { return levels_; }

  // Shard label stamped on this coordinator's flight-recorder events
  // (threshold bumps). Set by the sharded/fault harnesses; 0 otherwise.
  void set_trace_shard(int shard) { trace_shard_ = shard; }

  // --- durability surface (src/durability/) ---------------------------

  // Sample membership change: the entry that entered S and, when the
  // sample was full, the one it displaced. Observed by the durability
  // layer's WAL (sample-delta audit records); adds/evicts are internal
  // heap operations, not wire messages, so this is the only seam that
  // sees them. One unset-hook branch per accepted entry when unused.
  struct SampleDelta {
    KeyedItem added;
    bool evicted_valid = false;
    uint64_t evicted_id = 0;
  };
  void set_sample_delta_hook(std::function<void(const SampleDelta&)> hook) {
    sample_delta_hook_ = std::move(hook);
  }

  // Full coordinator state for durable checkpoints. The summary carries
  // S, the withheld entries and the level counts (exactly the mergeable
  // export); the saturation flags ride separately because they are not
  // derivable from the counts (see level_sets.h), and the RNG words make
  // restored key draws bit-identical.
  struct State {
    uint64_t rng[4] = {0, 0, 0, 0};
    int announced_epoch = -1;
    uint64_t early_received = 0;
    uint64_t regular_received = 0;
    uint64_t state_version = 0;
    MergeableSample summary;
    std::vector<int> saturated_levels;
  };
  State SaveState() const;
  void RestoreState(const State& s);

 private:
  void AddToSample(const Item& item, double key);
  void MaybeAnnounceEpoch();

  const WsworConfig config_;
  const double base_;
  sim::Transport* transport_;
  Rng rng_;
  TopKeyHeap<Item> sample_;  // S
  LevelSetManager levels_;   // D with Prop. 6 compaction
  int announced_epoch_ = -1;
  int trace_shard_ = 0;
  uint64_t early_received_ = 0;
  uint64_t regular_received_ = 0;
  uint64_t state_version_ = 0;
  std::function<void(const SampleDelta&)> sample_delta_hook_;
};

}  // namespace dwrs

#endif  // DWRS_CORE_COORDINATOR_H_
