// The naive distributed weighted SWOR baseline from Section 1.2: every
// site runs an independent top-s key sampler and forwards each item that
// enters its local top-s; the coordinator keeps the global top-s. Output
// distribution is exact, but message complexity is Θ(k·s·log(W)) instead
// of the additive O~(k + s) of the paper's algorithm.

#ifndef DWRS_CORE_NAIVE_H_
#define DWRS_CORE_NAIVE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "random/geometric_skip.h"
#include "random/rng.h"
#include "sampling/keyed_item.h"
#include "sampling/top_key_heap.h"
#include "sim/runtime.h"
#include "stream/workload.h"

namespace dwrs {

// Message tags of the naive protocol.
enum NaiveMessageType : uint32_t {
  kNaiveCandidate = 1,  // site -> coord: (id, weight, key)
};

class NaiveWsworSite : public sim::SiteNode {
 public:
  // Excluded from the fault harness (src/faults/): the site's local top-s
  // filter cannot be rebuilt from coordinator state after a crash — a
  // restarted naive site would re-forward already-sampled items under
  // fresh keys, silently corrupting the sample.
  static constexpr bool kRequiresReliableTransport = true;

  NaiveWsworSite(int sample_size, int site_index, sim::Transport* transport,
                 uint64_t seed);

  void OnItem(const Item& item) override;
  void OnItems(const Item* items, size_t n) override;
  void OnMessage(const sim::Payload& msg) override;
  sim::SiteHotPathCounters HotPathCounters() const override {
    return {filter_.decisions(), filter_.bits_consumed(),
            filter_.skips_taken()};
  }

 private:
  int site_index_;
  sim::Transport* transport_;
  Rng rng_;
  GeometricSkipFilter filter_;
  TopKeyHeap<Item> local_top_;
};

class NaiveWsworCoordinator : public sim::CoordinatorNode {
 public:
  explicit NaiveWsworCoordinator(int sample_size);

  void OnMessage(int site, const sim::Payload& msg) override;

  // Mergeable shard summary: the plain top-key heap (no level sets) —
  // the naive baseline shards trivially, by the same key argument.
  // Stamped with StateVersion().
  MergeableSample ShardSample() const override;

  uint64_t StateVersion() const override { return state_version_; }

  std::vector<KeyedItem> Sample() const;

 private:
  TopKeyHeap<Item> sample_;
  uint64_t state_version_ = 0;
};

// Facade mirroring DistributedWswor.
class NaiveDistributedWswor {
 public:
  NaiveDistributedWswor(int num_sites, int sample_size, uint64_t seed);

  void Observe(int site, const Item& item);
  void Run(const Workload& workload,
           const std::function<void(uint64_t)>& on_step = nullptr);

  std::vector<KeyedItem> Sample() const { return coordinator_->Sample(); }
  const sim::MessageStats& stats() const { return runtime_.stats(); }

 private:
  sim::Runtime runtime_;
  std::vector<std::unique_ptr<NaiveWsworSite>> sites_;
  std::unique_ptr<NaiveWsworCoordinator> coordinator_;
};

}  // namespace dwrs

#endif  // DWRS_CORE_NAIVE_H_
