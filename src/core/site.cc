#include "core/site.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace dwrs {

WsworSite::WsworSite(const WsworConfig& config, int site_index,
                     sim::Transport* transport, uint64_t seed)
    : config_(config),
      site_index_(site_index),
      level_base_(config.ResolvedEpochBase()),
      level_of_(level_base_),
      transport_(transport),
      rng_(seed) {
  DWRS_CHECK(transport != nullptr);
  DWRS_CHECK(site_index >= 0 && site_index < config.num_sites);
}

void WsworSite::OnItem(const Item& item) { OnItems(&item, 1); }

void WsworSite::OnItems(const Item* items, size_t n) {
  // Everything loop-invariant is hoisted: endpoint state only changes via
  // OnMessage, which the backends never interleave inside one span.
  const bool withhold = config_.withhold_heavy;
  const uint8_t* saturated = saturated_.data();
  const size_t num_levels = saturated_.size();
  const double threshold = threshold_;
  const double inv_threshold = threshold > 0.0 ? 1.0 / threshold : 0.0;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    const Item& item = items[i];
    DWRS_CHECK_GT(item.weight, 0.0);
    if (withhold) {
      const size_t level = static_cast<size_t>(level_of_(item.weight));
      if (level >= num_levels || saturated[level] == 0) {
        sim::Payload msg;
        msg.type = kWsworEarly;
        msg.a = item.id;
        msg.x = item.weight;
        msg.words = 3;
        transport_->SendToCoordinator(site_index_, msg);
        continue;
      }
    }
    // Regular path: the key v = w/t (t ~ Exp(1)) beats the threshold iff
    // t < w/u, i.e. with hazard w/u under the skip filter. With u = 0
    // every key qualifies. Rejected items cost a subtract and a compare —
    // no RNG work at all (the geometric-skip fast path).
    const double hazard =
        threshold > 0.0 ? item.weight * inv_threshold : kInf;
    if (!filter_.Admit(rng_, hazard)) continue;
    double key = item.weight / filter_.value();
    // Floating point guard: the decision and the key must agree.
    if (key <= threshold) key = std::nextafter(threshold, kInf);
    sim::Payload msg;
    msg.type = kWsworRegular;
    msg.a = item.id;
    msg.x = item.weight;
    msg.y = key;
    msg.words = 4;
    transport_->SendToCoordinator(site_index_, msg);
  }
}

WsworSite::State WsworSite::SaveState() const {
  State s;
  rng_.SaveState(s.rng);
  s.filter = filter_.SaveState();
  s.threshold = threshold_;
  s.saturated = saturated_;
  return s;
}

void WsworSite::RestoreState(const State& s) {
  rng_.RestoreState(s.rng);
  filter_.RestoreState(s.filter);
  threshold_ = s.threshold;
  saturated_ = s.saturated;
}

void WsworSite::OnMessage(const sim::Payload& msg) {
  switch (msg.type) {
    case kWsworLevelSaturated: {
      const size_t level = static_cast<size_t>(msg.a);
      if (level >= saturated_.size()) saturated_.resize(level + 1, 0);
      saturated_[level] = 1;
      break;
    }
    case kWsworUpdateEpoch:
      // Thresholds only ever grow; ignore stale reordered announcements.
      if (msg.x > threshold_) threshold_ = msg.x;
      break;
    default:
      DWRS_CHECK(false) << " unexpected message type " << msg.type;
  }
}

}  // namespace dwrs
