#include "core/site.h"

#include <limits>

#include "random/lazy_exponential.h"
#include "util/check.h"
#include "util/math_util.h"

namespace dwrs {

WsworSite::WsworSite(const WsworConfig& config, int site_index,
                     sim::Transport* transport, uint64_t seed)
    : config_(config),
      site_index_(site_index),
      level_base_(config.ResolvedEpochBase()),
      transport_(transport),
      rng_(seed) {
  DWRS_CHECK(transport != nullptr);
  DWRS_CHECK(site_index >= 0 && site_index < config.num_sites);
}

int WsworSite::LevelOf(double weight) const {
  return FloorLogBase(weight, level_base_);
}

void WsworSite::OnItem(const Item& item) {
  DWRS_CHECK_GT(item.weight, 0.0);
  if (config_.withhold_heavy) {
    const int level = LevelOf(item.weight);
    const bool saturated =
        static_cast<size_t>(level) < saturated_.size() &&
        saturated_[static_cast<size_t>(level)] != 0;
    if (!saturated) {
      sim::Payload msg;
      msg.type = kWsworEarly;
      msg.a = item.id;
      msg.x = item.weight;
      msg.words = 3;
      transport_->SendToCoordinator(site_index_, msg);
      return;
    }
  }
  // Regular path: lazily decide whether v = w/t beats the threshold, i.e.
  // whether t < w / u. With u = 0 every key qualifies.
  const double bound = threshold_ > 0.0
                           ? item.weight / threshold_
                           : std::numeric_limits<double>::infinity();
  const LazyExpDecision decision = DecideExponentialBelow(rng_, bound);
  ++keys_decided_;
  key_bits_consumed_ += static_cast<uint64_t>(decision.bits_consumed);
  if (!decision.below_bound) return;
  sim::Payload msg;
  msg.type = kWsworRegular;
  msg.a = item.id;
  msg.x = item.weight;
  msg.y = item.weight / decision.value;
  msg.words = 4;
  transport_->SendToCoordinator(site_index_, msg);
}

void WsworSite::OnMessage(const sim::Payload& msg) {
  switch (msg.type) {
    case kWsworLevelSaturated: {
      const size_t level = static_cast<size_t>(msg.a);
      if (level >= saturated_.size()) saturated_.resize(level + 1, 0);
      saturated_[level] = 1;
      break;
    }
    case kWsworUpdateEpoch:
      // Thresholds only ever grow; ignore stale reordered announcements.
      if (msg.x > threshold_) threshold_ = msg.x;
      break;
    default:
      DWRS_CHECK(false) << " unexpected message type " << msg.type;
  }
}

}  // namespace dwrs
