// Sharded facade of the paper's weighted SWOR: S unmodified
// (WsworSite*, WsworCoordinator) protocol instances over disjoint site
// blocks, a step-synchronous sim::ShardedRuntime underneath, and the
// root merge answering global queries exactly.
//
//   ShardedWswor sampler({.num_sites = 8, .sample_size = 32}, /*S=*/2);
//   sampler.Run(workload);          // global site indices
//   auto sample = sampler.Sample(); // exact global weighted SWOR
//
// Seed derivation extends DistributedWswor's: one master RNG draws the k
// site seeds in global site order, then the S coordinator seeds in shard
// order — so with S = 1 every draw, message, and sample is bit-identical
// to the unsharded DistributedWswor (the property pinned by the sharded
// test suite). The same derivation is exposed for engine-backed
// harnesses so sim and engine sharded runs stay replay-equal.

#ifndef DWRS_CORE_SHARDED_SAMPLER_H_
#define DWRS_CORE_SHARDED_SAMPLER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/config.h"
#include "core/coordinator.h"
#include "core/site.h"
#include "sim/sharded_runtime.h"
#include "stream/sharding.h"
#include "stream/workload.h"

namespace dwrs {

// Site seeds in global index order followed by per-shard coordinator
// seeds, drawn from one master RNG — S = 1 reproduces DistributedWswor's
// derivation exactly.
struct ShardedWsworSeeds {
  std::vector<uint64_t> site;
  std::vector<uint64_t> coordinator;
};
ShardedWsworSeeds DeriveShardedWsworSeeds(uint64_t seed,
                                          const ShardTopology& topology);

// The protocol config shard `shard` runs: the global config with
// num_sites narrowed to the shard's block (the paper's k becomes the
// shard's site count, so epoch/level bases resolve per shard).
WsworConfig ShardWsworConfig(const WsworConfig& config,
                             const ShardTopology& topology, int shard);

// The constructed endpoint set of a sharded weighted SWOR deployment.
// Owned by the caller; under engine::ShardedEngine the usual teardown
// contract applies (keep it alive until the backend is quiescent or
// shut down).
struct ShardedWsworEndpoints {
  std::vector<std::unique_ptr<WsworSite>> sites;  // global index order
  std::vector<std::unique_ptr<WsworCoordinator>> coordinators;  // per shard
};

// Builds and attaches the full endpoint set against any sharded backend
// exposing topology()/shard_transport()/AttachSite()/
// AttachShardCoordinator() — sim::ShardedRuntime and
// engine::ShardedEngine both do. The ONE definition of the construction
// and seed-derivation contract the S = 1 bit-identity and sim↔engine
// replay properties depend on; facade, benches, and tests all build
// through it.
template <typename Backend>
ShardedWsworEndpoints AttachShardedWswor(const WsworConfig& config,
                                         Backend& backend) {
  const ShardTopology& topo = backend.topology();
  const ShardedWsworSeeds seeds = DeriveShardedWsworSeeds(config.seed, topo);
  ShardedWsworEndpoints out;
  out.sites.reserve(static_cast<size_t>(topo.num_sites()));
  for (int i = 0; i < topo.num_sites(); ++i) {
    const int shard = topo.ShardOf(i);
    out.sites.push_back(std::make_unique<WsworSite>(
        ShardWsworConfig(config, topo, shard), topo.LocalOf(i),
        &backend.shard_transport(shard), seeds.site[static_cast<size_t>(i)]));
    backend.AttachSite(i, out.sites.back().get());
  }
  out.coordinators.reserve(static_cast<size_t>(topo.num_shards()));
  for (int shard = 0; shard < topo.num_shards(); ++shard) {
    out.coordinators.push_back(std::make_unique<WsworCoordinator>(
        ShardWsworConfig(config, topo, shard), &backend.shard_transport(shard),
        seeds.coordinator[static_cast<size_t>(shard)]));
    backend.AttachShardCoordinator(shard, out.coordinators.back().get());
  }
  return out;
}

class ShardedWswor {
 public:
  // `config.num_sites` is the global k.
  ShardedWswor(const WsworConfig& config, int num_shards);

  void Observe(int site, const Item& item);  // global site index
  void Run(const Workload& workload,
           const std::function<void(uint64_t)>& on_step = nullptr);

  // Delivers any in-flight messages in every shard (only relevant with
  // delivery_delay), mirroring DistributedWswor::FlushNetwork.
  void FlushNetwork() { runtime_.Flush(); }

  // The exact global weighted SWOR (root merge of shard summaries),
  // descending by key — identical in distribution (and for S = 1,
  // identical bit for bit) to DistributedWswor::Sample.
  std::vector<KeyedItem> Sample() const;
  MergeableSample MergedSample() const { return runtime_.MergedSample(); }

  const WsworCoordinator& shard_coordinator(int shard) const {
    return *endpoints_.coordinators[static_cast<size_t>(shard)];
  }
  const ShardTopology& topology() const { return runtime_.topology(); }
  int num_shards() const { return runtime_.num_shards(); }

  // Aggregated traffic; per-shard stats via shard_stats(shard).
  sim::MessageStats stats() const { return runtime_.AggregateStats(); }
  const sim::MessageStats& shard_stats(int shard) const {
    return runtime_.shard_runtime(shard).stats();
  }

 private:
  WsworConfig config_;
  sim::ShardedRuntime runtime_;
  ShardedWsworEndpoints endpoints_;
};

}  // namespace dwrs

#endif  // DWRS_CORE_SHARDED_SAMPLER_H_
