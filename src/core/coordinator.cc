#include "core/coordinator.h"

#include <algorithm>

#include "obs/trace.h"
#include "random/distributions.h"
#include "util/check.h"
#include "util/math_util.h"

namespace dwrs {

WsworCoordinator::WsworCoordinator(const WsworConfig& config,
                                   sim::Transport* transport, uint64_t seed)
    : config_(config),
      base_(config.ResolvedEpochBase()),
      transport_(transport),
      rng_(seed),
      sample_(static_cast<size_t>(config.sample_size)),
      levels_(base_, config.LevelCapacity(),
              static_cast<size_t>(config.sample_size)) {
  DWRS_CHECK(transport != nullptr);
}

void WsworCoordinator::AddToSample(const Item& item, double key) {
  if (sample_delta_hook_) {
    TopKeyHeap<Item>::Entry evicted{-1.0, Item{}};
    if (sample_.Offer(key, item, &evicted)) {
      SampleDelta delta;
      delta.added = KeyedItem{item, key};
      if (evicted.key >= 0.0) {
        delta.evicted_valid = true;
        delta.evicted_id = evicted.value.id;
      }
      sample_delta_hook_(delta);
    }
  } else {
    sample_.Offer(key, item);
  }
  MaybeAnnounceEpoch();
}

WsworCoordinator::State WsworCoordinator::SaveState() const {
  State s;
  rng_.SaveState(s.rng);
  s.announced_epoch = announced_epoch_;
  s.early_received = early_received_;
  s.regular_received = regular_received_;
  s.state_version = state_version_;
  s.summary = ShardSample();
  s.saturated_levels = levels_.SaturatedLevels();
  return s;
}

void WsworCoordinator::RestoreState(const State& s) {
  rng_.RestoreState(s.rng);
  announced_epoch_ = s.announced_epoch;
  early_received_ = s.early_received;
  regular_received_ = s.regular_received;
  state_version_ = s.state_version;
  sample_ = TopKeyHeap<Item>(static_cast<size_t>(config_.sample_size));
  for (const KeyedItem& ki : s.summary.entries) {
    sample_.Offer(ki.key, ki.item);
  }
  levels_.RestoreState(s.summary.level_counts, s.saturated_levels,
                       s.summary.withheld);
}

void WsworCoordinator::MaybeAnnounceEpoch() {
  const double u = sample_.ThresholdOrZero();
  if (u < 1.0) return;
  const int epoch = FloorLogBase(u, base_);
  if (epoch <= announced_epoch_) return;
  announced_epoch_ = epoch;
  sim::Payload msg;
  msg.type = kWsworUpdateEpoch;
  msg.x = PowInt(base_, epoch);
  msg.words = 2;
  if (obs::TracingEnabled()) {
    obs::TraceEvent event;
    event.type = obs::EventType::kThresholdBump;
    event.shard = static_cast<int16_t>(trace_shard_);
    event.epoch = static_cast<uint32_t>(epoch);
    event.x = msg.x;
    obs::Emit(event);
  }
  transport_->Broadcast(msg);
}

void WsworCoordinator::OnMessage(int /*site*/, const sim::Payload& msg) {
  ++state_version_;
  switch (msg.type) {
    case kWsworEarly: {
      ++early_received_;
      Item item{msg.a, msg.x};
      // Algorithm 2: the coordinator draws the key of an early item on
      // arrival; it participates in queries from D until its level
      // saturates.
      const double key = item.weight / Exponential(rng_);
      int saturated_level = -1;
      std::vector<KeyedItem> released =
          levels_.AddEarly(item, key, &saturated_level);
      for (const KeyedItem& ki : released) AddToSample(ki.item, ki.key);
      if (saturated_level >= 0) {
        sim::Payload note;
        note.type = kWsworLevelSaturated;
        note.a = static_cast<uint64_t>(saturated_level);
        note.words = 2;
        transport_->Broadcast(note);
      }
      break;
    }
    case kWsworRegular: {
      ++regular_received_;
      // The heap applies the v > u filter of Algorithm 2 line 19 (the
      // site filtered by a possibly stale epoch threshold).
      AddToSample(Item{msg.a, msg.x}, msg.y);
      break;
    }
    default:
      DWRS_CHECK(false) << " unexpected message type " << msg.type;
  }
}

std::vector<sim::Payload> WsworCoordinator::ResyncMessages() const {
  std::vector<sim::Payload> out;
  if (announced_epoch_ >= 0) {
    sim::Payload msg;
    msg.type = kWsworUpdateEpoch;
    msg.x = PowInt(base_, announced_epoch_);
    msg.words = 2;
    out.push_back(msg);
  }
  for (int level : levels_.SaturatedLevels()) {
    sim::Payload note;
    note.type = kWsworLevelSaturated;
    note.a = static_cast<uint64_t>(level);
    note.words = 2;
    out.push_back(note);
  }
  return out;
}

MergeableSample WsworCoordinator::ShardSample() const {
  MergeableSample out;
  out.kind = SampleKind::kTopKey;
  out.target_size = static_cast<size_t>(config_.sample_size);
  out.state_version = state_version_;
  out.entries.reserve(sample_.size());
  for (const auto& e : sample_.entries()) {
    out.entries.push_back(KeyedItem{e.value, e.key});
  }
  out.withheld = levels_.WithheldLeveledEntries();
  out.level_counts = levels_.LevelCounts();
  return out;
}

std::vector<KeyedItem> WsworCoordinator::Sample() const {
  std::vector<KeyedItem> merged;
  merged.reserve(sample_.size() + levels_.StoredEntries());
  for (const auto& e : sample_.entries()) {
    merged.push_back(KeyedItem{e.value, e.key});
  }
  for (const KeyedItem& ki : levels_.WithheldEntries()) merged.push_back(ki);
  std::sort(merged.begin(), merged.end(),
            [](const KeyedItem& a, const KeyedItem& b) {
              return a.key > b.key;
            });
  if (merged.size() > static_cast<size_t>(config_.sample_size)) {
    merged.resize(static_cast<size_t>(config_.sample_size));
  }
  return merged;
}

}  // namespace dwrs
