// Public facade of the paper's contribution: a continuously maintained
// distributed weighted sample without replacement (Theorem 3).
//
// Usage:
//   DistributedWswor sampler({.num_sites = 8, .sample_size = 32});
//   sampler.Observe(site, Item{id, weight});   // any interleaving
//   auto sample = sampler.Sample();            // valid at ANY point
//   sampler.stats().total_messages();          // network cost so far

#ifndef DWRS_CORE_SAMPLER_H_
#define DWRS_CORE_SAMPLER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/config.h"
#include "core/coordinator.h"
#include "core/site.h"
#include "sampling/keyed_item.h"
#include "sim/runtime.h"
#include "stream/workload.h"

namespace dwrs {

class DistributedWswor {
 public:
  explicit DistributedWswor(const WsworConfig& config);

  // Site `site` observes `item`; messages are exchanged per the protocol.
  void Observe(int site, const Item& item);

  // Convenience: replay a whole workload; `on_step` (if set) is called
  // after each event with the 1-based prefix length — query points.
  void Run(const Workload& workload,
           const std::function<void(uint64_t)>& on_step = nullptr);

  // Delivers any in-flight messages (only relevant with delivery_delay).
  void FlushNetwork();

  // The weighted SWOR of everything observed so far (size min(t, s)).
  std::vector<KeyedItem> Sample() const;

  const sim::MessageStats& stats() const { return runtime_.stats(); }
  const WsworConfig& config() const { return config_; }
  const WsworCoordinator& coordinator() const { return *coordinator_; }

  // Proposition 7 instrumentation aggregated over sites.
  uint64_t KeysDecided() const;
  uint64_t KeyBitsConsumed() const;

  uint64_t items_observed() const { return items_observed_; }

 private:
  WsworConfig config_;
  sim::Runtime runtime_;
  std::vector<std::unique_ptr<WsworSite>> sites_;
  std::unique_ptr<WsworCoordinator> coordinator_;
  uint64_t items_observed_ = 0;
};

}  // namespace dwrs

#endif  // DWRS_CORE_SAMPLER_H_
