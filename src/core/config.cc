#include "core/config.h"

#include <cmath>

#include "util/check.h"
#include "util/math_util.h"

namespace dwrs {

double WsworConfig::ResolvedEpochBase() const {
  DWRS_CHECK_GT(num_sites, 0);
  DWRS_CHECK_GT(sample_size, 0);
  if (epoch_base > 0.0) {
    DWRS_CHECK_GE(epoch_base, 2.0);
    return epoch_base;
  }
  return EpochBase(num_sites, sample_size);
}

uint64_t WsworConfig::LevelCapacity() const {
  DWRS_CHECK_GT(level_capacity_factor, 0);
  const double capacity = std::ceil(level_capacity_factor *
                                    ResolvedEpochBase() * sample_size);
  return static_cast<uint64_t>(capacity);
}

}  // namespace dwrs
