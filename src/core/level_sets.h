// Coordinator-side level set machinery (Definition 4, Lemma 1) with the
// O(s)-space compaction of Proposition 6: only the withheld items whose
// keys rank in the global top-s among withheld items are stored — the
// rest can never appear in any output sample — together with an O(1)-word
// counter per level.

#ifndef DWRS_CORE_LEVEL_SETS_H_
#define DWRS_CORE_LEVEL_SETS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sampling/keyed_item.h"
#include "sampling/mergeable_sample.h"
#include "sampling/top_key_heap.h"
#include "stream/item.h"

namespace dwrs {

class LevelSetManager {
 public:
  // `level_base` is r; a level saturates once `capacity` items arrived in
  // it; `top_keys` is s, the number of withheld entries worth storing.
  LevelSetManager(double level_base, uint64_t capacity, size_t top_keys);

  // The level of a weight (Definition 4).
  int LevelOf(double weight) const;

  bool IsSaturated(int level) const;

  // Records the arrival of an early item with its already-generated key.
  // If this arrival saturates the item's level, marks it saturated and
  // returns the stored entries of that level for release into the sample;
  // otherwise returns empty. `*saturated_level` is set to the level that
  // saturated, or -1.
  std::vector<KeyedItem> AddEarly(const Item& item, double key,
                                  int* saturated_level);

  // Withheld entries currently stored (keys included) — the D-side
  // candidates merged into every query answer.
  std::vector<KeyedItem> WithheldEntries() const;

  // The same entries tagged with their levels, plus the per-level arrival
  // counts — the level-set half of a mergeable shard summary
  // (sampling/mergeable_sample.h): entries merge by level and re-thin,
  // counts compose by summation.
  std::vector<LeveledKeyedItem> WithheldLeveledEntries() const;
  std::vector<LevelCount> LevelCounts() const;  // nonzero levels, ascending

  uint64_t CountInLevel(int level) const;
  uint64_t capacity() const { return capacity_; }

  // Every level currently saturated, ascending — the state a restarted
  // site needs replayed to rebuild its withholding filter.
  std::vector<int> SaturatedLevels() const;

  // Space audit: number of stored (item, key) entries; Proposition 6
  // promises this stays <= s.
  size_t StoredEntries() const { return heap_.size(); }

  // Durable-checkpoint restore (src/durability/): rebuilds the manager
  // from per-level arrival counts, the explicitly saved saturation flags,
  // and the stored withheld entries (re-offered into the top-s heap).
  // The flags must be saved explicitly — they are NOT derivable from the
  // counts, because an arrival at an already-saturated level is released
  // directly without incrementing its count.
  void RestoreState(const std::vector<LevelCount>& counts,
                    const std::vector<int>& saturated_levels,
                    const std::vector<LeveledKeyedItem>& withheld);

 private:
  struct Withheld {
    Item item;
    int level;
  };

  double level_base_;
  uint64_t capacity_;
  std::vector<uint64_t> counts_;    // per level
  std::vector<uint8_t> saturated_;  // per level
  TopKeyHeap<Withheld> heap_;       // top-s keys among withheld items
};

}  // namespace dwrs

#endif  // DWRS_CORE_LEVEL_SETS_H_
