// Site-side protocol of the weighted SWOR sampler (paper Algorithm 1).
//
// Per item the site:
//   1. computes the item's level; if the level is not yet saturated (and
//      withholding is enabled) it forwards the item as an "early" message
//      without generating a key;
//   2. otherwise decides whether the key v = w / Exp(1) beats the current
//      epoch threshold via exact geometric-skip thinning (one amortized
//      RNG draw per *forwarded* item — the batch-era sharpening of
//      Proposition 7's O(1)-bits-per-decision claim; see
//      random/geometric_skip.h) and forwards (e, w, v) only on a win.
//
// Ingestion is span-based: OnItems is the real implementation (all
// loop-invariant state hoisted) and OnItem is the degenerate n = 1 span,
// so the two paths are transcript-identical by construction.

#ifndef DWRS_CORE_SITE_H_
#define DWRS_CORE_SITE_H_

#include <cstdint>
#include <vector>

#include "core/config.h"
#include "random/geometric_skip.h"
#include "random/rng.h"
#include "sim/node.h"
#include "stream/item.h"
#include "util/math_util.h"

namespace dwrs {

class WsworSite : public sim::SiteNode {
 public:
  WsworSite(const WsworConfig& config, int site_index, sim::Transport* transport,
            uint64_t seed);

  void OnItem(const Item& item) override;
  void OnItems(const Item* items, size_t n) override;
  void OnMessage(const sim::Payload& msg) override;
  sim::SiteHotPathCounters HotPathCounters() const override {
    return {keys_decided(), key_bits_consumed(), skips_taken()};
  }

  double threshold() const { return threshold_; }

  // Proposition 7 instrumentation.
  uint64_t keys_decided() const { return filter_.decisions(); }
  uint64_t key_bits_consumed() const { return filter_.bits_consumed(); }
  uint64_t skips_taken() const { return filter_.skips_taken(); }

  // Durable-checkpoint surface (src/durability/): everything that makes
  // the site's future behavior a pure function of its inputs — the RNG
  // words, the geometric-skip residual budget, the announced threshold,
  // and the saturation flags. A restored site regenerates byte-identical
  // messages for the same item suffix.
  struct State {
    uint64_t rng[4] = {0, 0, 0, 0};
    GeometricSkipFilter::State filter;
    double threshold = 0.0;
    std::vector<uint8_t> saturated;
  };
  State SaveState() const;
  void RestoreState(const State& s);

 private:
  const WsworConfig config_;
  const int site_index_;
  const double level_base_;
  const LevelIndexer level_of_;
  sim::Transport* transport_;
  Rng rng_;
  GeometricSkipFilter filter_;
  double threshold_ = 0.0;           // u_i, the announced epoch threshold
  std::vector<uint8_t> saturated_;   // per-level flags
};

}  // namespace dwrs

#endif  // DWRS_CORE_SITE_H_
