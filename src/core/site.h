// Site-side protocol of the weighted SWOR sampler (paper Algorithm 1).
//
// Per item the site:
//   1. computes the item's level; if the level is not yet saturated (and
//      withholding is enabled) it forwards the item as an "early" message
//      without generating a key;
//   2. otherwise draws the key v = w / Exp(1) lazily (Proposition 7) and
//      forwards (e, w, v) only when v exceeds the current epoch threshold.

#ifndef DWRS_CORE_SITE_H_
#define DWRS_CORE_SITE_H_

#include <cstdint>
#include <vector>

#include "core/config.h"
#include "random/rng.h"
#include "sim/node.h"
#include "stream/item.h"

namespace dwrs {

class WsworSite : public sim::SiteNode {
 public:
  WsworSite(const WsworConfig& config, int site_index, sim::Transport* transport,
            uint64_t seed);

  void OnItem(const Item& item) override;
  void OnMessage(const sim::Payload& msg) override;

  double threshold() const { return threshold_; }

  // Proposition 7 instrumentation.
  uint64_t keys_decided() const { return keys_decided_; }
  uint64_t key_bits_consumed() const { return key_bits_consumed_; }

 private:
  int LevelOf(double weight) const;

  const WsworConfig config_;
  const int site_index_;
  const double level_base_;
  sim::Transport* transport_;
  Rng rng_;
  double threshold_ = 0.0;           // u_i, the announced epoch threshold
  std::vector<uint8_t> saturated_;   // per-level flags
  uint64_t keys_decided_ = 0;
  uint64_t key_bits_consumed_ = 0;
};

}  // namespace dwrs

#endif  // DWRS_CORE_SITE_H_
