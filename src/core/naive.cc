#include "core/naive.h"

#include <limits>

#include "util/check.h"

namespace dwrs {

NaiveWsworSite::NaiveWsworSite(int sample_size, int site_index,
                               sim::Transport* transport, uint64_t seed)
    : site_index_(site_index),
      transport_(transport),
      rng_(seed),
      local_top_(static_cast<size_t>(sample_size)) {
  DWRS_CHECK(transport != nullptr);
}

void NaiveWsworSite::OnItem(const Item& item) { OnItems(&item, 1); }

void NaiveWsworSite::OnItems(const Item* items, size_t n) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    const Item& item = items[i];
    DWRS_CHECK_GT(item.weight, 0.0);
    // The item enters the local top-s iff its key w/t beats the heap
    // minimum, i.e. t < w/min — decided by geometric-skip thinning so
    // losing items (the steady state once the heap is warm) consume no
    // randomness. The joint law of (entered, key | entered) is identical
    // to drawing the key for every item.
    const double bound =
        local_top_.full() ? item.weight / local_top_.MinKey() : kInf;
    if (!filter_.Admit(rng_, bound)) continue;
    const double key = item.weight / filter_.value();
    if (!local_top_.Offer(key, item)) continue;  // fp tie at the minimum
    sim::Payload msg;
    msg.type = kNaiveCandidate;
    msg.a = item.id;
    msg.x = item.weight;
    msg.y = key;
    msg.words = 4;
    transport_->SendToCoordinator(site_index_, msg);
  }
}

void NaiveWsworSite::OnMessage(const sim::Payload& msg) {
  DWRS_CHECK(false) << " naive sites never receive messages, got type "
                    << msg.type;
}

NaiveWsworCoordinator::NaiveWsworCoordinator(int sample_size)
    : sample_(static_cast<size_t>(sample_size)) {}

void NaiveWsworCoordinator::OnMessage(int /*site*/, const sim::Payload& msg) {
  DWRS_CHECK_EQ(msg.type, static_cast<uint32_t>(kNaiveCandidate));
  ++state_version_;
  sample_.Offer(msg.y, Item{msg.a, msg.x});
}

MergeableSample NaiveWsworCoordinator::ShardSample() const {
  MergeableSample out;
  out.kind = SampleKind::kTopKey;
  out.target_size = sample_.capacity();
  out.state_version = state_version_;
  out.entries.reserve(sample_.size());
  for (const auto& e : sample_.entries()) {
    out.entries.push_back(KeyedItem{e.value, e.key});
  }
  return out;
}

std::vector<KeyedItem> NaiveWsworCoordinator::Sample() const {
  std::vector<KeyedItem> out;
  for (const auto& e : sample_.SortedDescending()) {
    out.push_back(KeyedItem{e.value, e.key});
  }
  return out;
}

NaiveDistributedWswor::NaiveDistributedWswor(int num_sites, int sample_size,
                                             uint64_t seed)
    : runtime_(num_sites) {
  Rng master(seed);
  sites_.reserve(static_cast<size_t>(num_sites));
  for (int i = 0; i < num_sites; ++i) {
    sites_.push_back(std::make_unique<NaiveWsworSite>(
        sample_size, i, &runtime_.network(), master.NextU64()));
    runtime_.AttachSite(i, sites_.back().get());
  }
  coordinator_ = std::make_unique<NaiveWsworCoordinator>(sample_size);
  runtime_.AttachCoordinator(coordinator_.get());
}

void NaiveDistributedWswor::Observe(int site, const Item& item) {
  runtime_.Deliver(WorkloadEvent{site, item});
}

void NaiveDistributedWswor::Run(
    const Workload& workload, const std::function<void(uint64_t)>& on_step) {
  for (uint64_t i = 0; i < workload.size(); ++i) {
    Observe(workload.event(i).site, workload.event(i).item);
    if (on_step) on_step(i + 1);
  }
}

}  // namespace dwrs
