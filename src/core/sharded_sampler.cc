#include "core/sharded_sampler.h"

#include "random/rng.h"
#include "util/check.h"

namespace dwrs {

ShardedWsworSeeds DeriveShardedWsworSeeds(uint64_t seed,
                                          const ShardTopology& topology) {
  ShardedWsworSeeds out;
  Rng master(seed);
  out.site.reserve(static_cast<size_t>(topology.num_sites()));
  for (int i = 0; i < topology.num_sites(); ++i) {
    out.site.push_back(master.NextU64());
  }
  out.coordinator.reserve(static_cast<size_t>(topology.num_shards()));
  for (int shard = 0; shard < topology.num_shards(); ++shard) {
    out.coordinator.push_back(master.NextU64());
  }
  return out;
}

WsworConfig ShardWsworConfig(const WsworConfig& config,
                             const ShardTopology& topology, int shard) {
  WsworConfig out = config;
  out.num_sites = topology.SiteCount(shard);
  return out;
}

ShardedWswor::ShardedWswor(const WsworConfig& config, int num_shards)
    : config_(config),
      runtime_(config.num_sites, num_shards, config.delivery_delay,
               config.jitter_seed) {
  endpoints_ = AttachShardedWswor(config_, runtime_);
}

void ShardedWswor::Observe(int site, const Item& item) {
  runtime_.Deliver(WorkloadEvent{site, item});
}

void ShardedWswor::Run(const Workload& workload,
                       const std::function<void(uint64_t)>& on_step) {
  DWRS_CHECK_EQ(workload.num_sites(), config_.num_sites);
  for (uint64_t i = 0; i < workload.size(); ++i) {
    Observe(workload.event(i).site, workload.event(i).item);
    if (on_step) on_step(i + 1);
  }
}

std::vector<KeyedItem> ShardedWswor::Sample() const {
  return runtime_.MergedSample().TopEntries();
}

}  // namespace dwrs
