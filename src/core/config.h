// Configuration of the distributed weighted SWOR protocol (Section 3).

#ifndef DWRS_CORE_CONFIG_H_
#define DWRS_CORE_CONFIG_H_

#include <cstdint>

namespace dwrs {

struct WsworConfig {
  int num_sites = 4;    // k
  int sample_size = 16; // s
  uint64_t seed = 1;

  // Epoch / level base r; 0 selects the paper's r = max{2, k/s}.
  double epoch_base = 0.0;

  // A level set saturates after level_capacity_factor * r * s items (the
  // paper uses 4rs).
  int level_capacity_factor = 4;

  // Level-set withholding of heavy items (Definition 4). Disabling it
  // yields the plain precision-sampling protocol — used both by the E5
  // ablation and by the L1 tracker, which removes heavies by duplication
  // instead (Section 5).
  bool withhold_heavy = true;

  // Extra delivery delay in stream steps for every message (0 = delivered
  // before the next item); exercises robustness to in-flight messages.
  int delivery_delay = 0;
  // When nonzero, each message's delay is drawn uniformly from
  // [0, delivery_delay] (per-channel FIFO preserved) — an adversarial
  // jittering network.
  uint64_t jitter_seed = 0;

  double ResolvedEpochBase() const;
  uint64_t LevelCapacity() const;
};

// Message type tags of the weighted SWOR protocol.
enum WsworMessageType : uint32_t {
  kWsworEarly = 1,           // site -> coord: (id, weight)
  kWsworRegular = 2,         // site -> coord: (id, weight, key)
  kWsworLevelSaturated = 3,  // coord -> all sites: (level)
  kWsworUpdateEpoch = 4,     // coord -> all sites: (threshold r^j)
};

}  // namespace dwrs

#endif  // DWRS_CORE_CONFIG_H_
