// The declarative scenario layer: a named, seed-deterministic,
// enumerable catalog of distributed-stream workloads in the YCSB spirit
// (Cooper et al., SoCC'10), each composing a weight generator, a
// partitioner, an arrival process (per-step ingestion rates), and an
// optional site-churn schedule. Every accuracy and message-cost claim
// the repo gates is measured over this matrix (bench/bench_scenarios.cc
// x tools/check_envelopes.py), so "the bounds hold under arbitrary
// input" is a standing, regression-gated statement rather than a
// per-PR anecdote on one static stream.
//
//   const ScenarioSpec* sc = FindScenario("zipf_sweep");
//   Workload w = BuildScenarioWorkload(*sc, /*seed=*/7, /*quick=*/true);
//   auto batches = BuildScenarioBatches(*sc, w.size(), /*seed=*/7);
//   engine.RunPaced(w, batches);          // rate-modulated feeding
//
// Determinism: (scenario, seed, quick) fully determines the workload,
// the batch schedule, and — for churn scenarios — the fault schedule, so
// any matrix cell replays bit for bit on the simulator and on the
// step-synchronous engine.

#ifndef DWRS_STREAM_SCENARIO_H_
#define DWRS_STREAM_SCENARIO_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "faults/fault_schedule.h"
#include "stream/dynamics.h"
#include "stream/generators.h"
#include "stream/partitioners.h"
#include "stream/workload.h"

namespace dwrs {

struct ScenarioSpec {
  std::string name;
  std::string description;
  int num_sites = 8;
  uint64_t items_full = 200000;
  uint64_t items_quick = 1200;

  // Factories (pure; the Rng driving the products comes from the
  // workload builder, keyed on the run seed). `make_weights` receives
  // the materialized item count so phase lengths can scale with the
  // stream (quick runs sweep the same phases as full runs).
  std::function<std::unique_ptr<WeightGenerator>(uint64_t num_items)>
      make_weights;
  std::function<std::unique_ptr<Partitioner>()> make_partitioner;
  std::function<std::unique_ptr<ArrivalProcess>(uint64_t num_items)>
      make_arrivals;

  // Site churn: crash/restart schedule applied through the fault
  // harness's crash/resync path (sites leave mid-stream, drop their
  // volatile state, and rejoin with a bumped epoch). All-zero for
  // steady scenarios. The seed field is a template; ScenarioChurn mixes
  // the run seed in.
  faults::FaultConfig churn;
  bool has_churn = false;
};

// The scenario catalog, built once: >= 6 scenarios covering steady
// baselines, skew sweeps, hot-key drift, diurnal/bursty arrivals,
// skewed site ownership, and site churn. Stable order; unique names.
const std::vector<ScenarioSpec>& ScenarioRegistry();

// nullptr when no scenario has `name`.
const ScenarioSpec* FindScenario(const std::string& name);

// Materializes the scenario's replayable distributed stream.
Workload BuildScenarioWorkload(const ScenarioSpec& spec, uint64_t seed,
                               bool quick);

// Per-step ingestion batch sizes (sum == num_items, every entry >= 1):
// the schedule the engine's paced feeder consumes.
std::vector<uint32_t> BuildScenarioBatches(const ScenarioSpec& spec,
                                           uint64_t num_items, uint64_t seed);

// The scenario's churn schedule with the run seed mixed in (equal to
// spec.churn but for the seed; all-zero schedules pass through).
faults::FaultConfig ScenarioChurn(const ScenarioSpec& spec, uint64_t seed);

}  // namespace dwrs

#endif  // DWRS_STREAM_SCENARIO_H_
