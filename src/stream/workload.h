// A Workload is a fully materialized, replayable distributed stream: the
// global arrival order of items together with the site that observes each
// one. Built from a WeightGenerator + Partitioner + seed, so every
// experiment is reproducible.

#ifndef DWRS_STREAM_WORKLOAD_H_
#define DWRS_STREAM_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "random/rng.h"
#include "stream/generators.h"
#include "stream/item.h"
#include "stream/partitioners.h"

namespace dwrs {

struct WorkloadEvent {
  int site = 0;
  Item item;
};

class Workload {
 public:
  Workload(int num_sites, std::vector<WorkloadEvent> events);

  int num_sites() const { return num_sites_; }
  uint64_t size() const { return events_.size(); }
  const WorkloadEvent& event(uint64_t i) const { return events_[i]; }
  const std::vector<WorkloadEvent>& events() const { return events_; }

  // Total weight of the first `prefix` events (whole stream by default).
  double TotalWeight(uint64_t prefix = UINT64_MAX) const;

  // Weights of the first `prefix` events in arrival order.
  std::vector<double> PrefixWeights(uint64_t prefix = UINT64_MAX) const;

 private:
  int num_sites_;
  std::vector<WorkloadEvent> events_;
};

class WorkloadBuilder {
 public:
  WorkloadBuilder& num_sites(int k);
  WorkloadBuilder& num_items(uint64_t n);
  WorkloadBuilder& seed(uint64_t seed);
  WorkloadBuilder& weights(std::unique_ptr<WeightGenerator> gen);
  WorkloadBuilder& partitioner(std::unique_ptr<Partitioner> p);
  // Round item weights to integers >= 1 (required by the SWR reduction of
  // Corollary 1).
  WorkloadBuilder& integer_weights(bool v);

  Workload Build();

 private:
  int num_sites_ = 4;
  uint64_t num_items_ = 1000;
  uint64_t seed_ = 1;
  bool integer_weights_ = false;
  std::unique_ptr<WeightGenerator> weights_;
  std::unique_ptr<Partitioner> partitioner_;
};

}  // namespace dwrs

#endif  // DWRS_STREAM_WORKLOAD_H_
