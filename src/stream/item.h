// The stream element type of the paper: an identifier with a positive
// weight. The paper assumes w >= 1 (weights fit a constant number of
// machine words); generators in this repository respect that.

#ifndef DWRS_STREAM_ITEM_H_
#define DWRS_STREAM_ITEM_H_

#include <cstdint>

namespace dwrs {

struct Item {
  uint64_t id = 0;
  double weight = 1.0;

  friend bool operator==(const Item& a, const Item& b) {
    return a.id == b.id && a.weight == b.weight;
  }
};

}  // namespace dwrs

#endif  // DWRS_STREAM_ITEM_H_
