// Shard topology: the static assignment of the k global sites to S shard
// coordinators, shared by every sharded backend (sim::ShardedRuntime,
// engine::ShardedEngine, the sharded fault harness) so that a workload
// routes identically everywhere — the precondition for bit-identical
// cross-backend replay.
//
// Sites are partitioned into contiguous blocks: shard j owns global
// sites [Begin(j), Begin(j+1)), with the first num_sites % num_shards
// shards one site larger. Within its shard a site is addressed by its
// LOCAL index (0-based within the block); each shard runs an unmodified
// paper-protocol instance over its local sites.

#ifndef DWRS_STREAM_SHARDING_H_
#define DWRS_STREAM_SHARDING_H_

#include <cstdint>
#include <vector>

#include "stream/workload.h"
#include "util/check.h"

namespace dwrs {

class ShardTopology {
 public:
  ShardTopology(int num_sites, int num_shards)
      : num_sites_(num_sites), num_shards_(num_shards) {
    DWRS_CHECK_GT(num_shards, 0);
    DWRS_CHECK_GE(num_sites, num_shards)
        << " every shard needs at least one site";
  }

  int num_sites() const { return num_sites_; }
  int num_shards() const { return num_shards_; }

  // First global site of `shard`; Begin(num_shards) == num_sites.
  int Begin(int shard) const {
    DWRS_CHECK(shard >= 0 && shard <= num_shards_);
    const int q = num_sites_ / num_shards_;
    const int r = num_sites_ % num_shards_;
    return shard * q + (shard < r ? shard : r);
  }

  int SiteCount(int shard) const { return Begin(shard + 1) - Begin(shard); }

  int ShardOf(int site) const {
    DWRS_CHECK(site >= 0 && site < num_sites_);
    const int q = num_sites_ / num_shards_;
    const int r = num_sites_ % num_shards_;
    const int big = r * (q + 1);  // sites covered by the q+1-sized shards
    return site < big ? site / (q + 1) : r + (site - big) / q;
  }

  int LocalOf(int site) const { return site - Begin(ShardOf(site)); }

  int GlobalOf(int shard, int local) const {
    DWRS_CHECK(local >= 0 && local < SiteCount(shard));
    return Begin(shard) + local;
  }

 private:
  int num_sites_;
  int num_shards_;
};

// Splits a global workload into one per-shard workload with LOCAL site
// indices, preserving arrival order within each shard. Replaying the
// splits shard by shard is transcript-identical to interleaved delivery,
// because shards share no state and every fault/protocol decision is a
// function of per-shard counters only.
std::vector<Workload> SplitByShard(const Workload& workload,
                                   const ShardTopology& topology);

// Per-shard seed derivation (splitmix64 mix of base and shard index):
// shard protocol instances must not share randomness.
uint64_t ShardSeed(uint64_t base, int shard);

}  // namespace dwrs

#endif  // DWRS_STREAM_SHARDING_H_
