// Temporal dynamics for the scenario suite: weight generators whose law
// changes over the stream (hot-key drift, YCSB-style Zipf skew sweeps),
// arrival processes that modulate the per-step ingestion rate (diurnal,
// bursty), and a Zipf-skewed item->site partitioner. These compose with
// the static generators/partitioners library (generators.h,
// partitioners.h) through the same interfaces, so every existing
// harness can run a dynamic stream unchanged — the scenario layer
// (scenario.h) packages the combinations.

#ifndef DWRS_STREAM_DYNAMICS_H_
#define DWRS_STREAM_DYNAMICS_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "random/distributions.h"
#include "random/rng.h"
#include "stream/generators.h"
#include "stream/partitioners.h"

namespace dwrs {

// A base generator plus a rotating heavy residue class: the stream is
// divided into phases of `rotate_every` items, and during phase p the
// positions whose index mod `period` falls in the phase's hot window
// (`hot_count` residues, rotating by a fixed odd stride each phase)
// carry `heavy_weight`; everything else draws from the base generator.
// Models a working set whose heavy keys drift over time — the dynamic
// none of the static skewed generators exercise: every rotation forces
// the coordinator's level sets to absorb a fresh heavy cohort.
class HotKeyDriftWeights : public WeightGenerator {
 public:
  HotKeyDriftWeights(std::unique_ptr<WeightGenerator> base, uint64_t period,
                     uint64_t hot_count, double heavy_weight,
                     uint64_t rotate_every);

  double WeightAt(uint64_t index, Rng& rng) override;

  // True iff `index` is in the hot window of its phase (pure function of
  // the index — the test surface for the rotation schedule).
  bool IsHot(uint64_t index) const;
  // First hot residue of phase `phase` (mod period).
  uint64_t HotOffset(uint64_t phase) const;

 private:
  std::unique_ptr<WeightGenerator> base_;
  uint64_t period_;
  uint64_t hot_count_;
  double heavy_weight_;
  uint64_t rotate_every_;
};

// YCSB-spirit skew sweep (Cooper et al., SoCC'10; Gray et al. SIGMOD'94
// generator idiom): consecutive phases of `phase_len` items draw ranks
// Zipf(theta_p) over [1, num_ranks], cycling through the theta schedule
// — the load/run-phase structure of the classic zipfian workload
// drivers, with theta in {0.5, 0.7, 0.9, 0.99} as the default sweep.
// Weight = rank^-theta_p scaled so the minimum weight is 1 (the
// ZipfWeights convention, applied per phase).
class ZipfSweepWeights : public WeightGenerator {
 public:
  ZipfSweepWeights(uint64_t num_ranks, std::vector<double> thetas,
                   uint64_t phase_len);

  double WeightAt(uint64_t index, Rng& rng) override;

  // The theta governing position `index`.
  double ThetaAt(uint64_t index) const;

  // {0.5, 0.7, 0.9, 0.99} — the auto_gen.sh skewness schedule.
  static std::vector<double> YcsbThetas();

 private:
  uint64_t num_ranks_;
  std::vector<double> thetas_;
  uint64_t phase_len_;
  std::vector<ZipfSampler> samplers_;  // one per theta
  std::vector<double> scales_;
};

// Produces the number of items arriving at feeder step `step` — the
// rate-modulation seam: the scenario layer materializes the schedule and
// the engine's paced feeder (engine::Engine::RunPaced) hands the stream
// over in exactly these batch sizes. Implementations may use the Rng;
// deterministic processes ignore it. Like the weight generators, a
// process must be driven with one Rng from step 0 for replayability.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  // Batch size at `step` (>= 1).
  virtual uint64_t BatchAt(uint64_t step, Rng& rng) = 0;
};

// Fixed batch size: the static feeding every existing bench uses.
class ConstantArrivals : public ArrivalProcess {
 public:
  explicit ConstantArrivals(uint64_t batch);
  uint64_t BatchAt(uint64_t step, Rng& rng) override;

 private:
  uint64_t batch_;
};

// Sinusoidal day/night rate: batch = max(1, round(mean * (1 + amplitude
// * sin(2*pi*step/period)))). Deterministic.
class DiurnalArrivals : public ArrivalProcess {
 public:
  DiurnalArrivals(double mean, double amplitude, uint64_t period);
  uint64_t BatchAt(uint64_t step, Rng& rng) override;

 private:
  double mean_;
  double amplitude_;
  uint64_t period_;
};

// Two-state on/off (burst) process: in the idle state each step emits
// `base` items and enters a burst with probability `burst_prob`; a burst
// emits `burst` items per step for `burst_len` steps. Seed-deterministic
// and sequential (the state advances one step per call, enforced).
class BurstyArrivals : public ArrivalProcess {
 public:
  BurstyArrivals(uint64_t base, uint64_t burst, double burst_prob,
                 uint64_t burst_len);
  uint64_t BatchAt(uint64_t step, Rng& rng) override;

 private:
  uint64_t base_;
  uint64_t burst_;
  double burst_prob_;
  uint64_t burst_len_;
  uint64_t burst_remaining_ = 0;
  uint64_t next_expected_ = 0;  // enforces sequential use
};

// Materializes per-step batch sizes summing to exactly `total_items`
// (the final batch is truncated).
std::vector<uint32_t> MaterializeBatches(ArrivalProcess& process,
                                         uint64_t total_items, Rng& rng);

// Zipf-distributed item->site mapping: item at any position lands on
// site (rank - 1) with rank ~ Zipf(theta) over [1, num_sites] — site 0
// is the hottest. The per-site load imbalance the paper's adversary is
// allowed to choose, in its statistically-typical (rather than
// worst-case-degenerate) form. The sampler is built lazily on the first
// call because num_sites is a call-site parameter; all calls must agree.
class SkewedSitePartitioner : public Partitioner {
 public:
  explicit SkewedSitePartitioner(double theta);

  int SiteFor(uint64_t index, int num_sites, Rng& rng) override;

  // Exact ownership fractions: p_i = (i+1)^-theta / H_{k,theta} — the
  // chi-square reference for the ownership tests, backed by the shared
  // ZipfNormalization cache.
  static std::vector<double> SiteProbabilities(int num_sites, double theta);

 private:
  double theta_;
  std::optional<ZipfSampler> zipf_;
};

}  // namespace dwrs

#endif  // DWRS_STREAM_DYNAMICS_H_
