#include "stream/generators.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <utility>

#include "util/check.h"
#include "util/math_util.h"

namespace dwrs {

double ZipfNormalization(uint64_t n, double alpha) {
  DWRS_CHECK_GE(n, 1u);
  DWRS_CHECK_GT(alpha, 0.0);
  static std::mutex mu;
  static std::map<std::pair<uint64_t, double>, double> cache;
  {
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache.find({n, alpha});
    if (it != cache.end()) return it->second;
  }
  // Sum small-to-large terms first (i descending) for fp accuracy.
  double h = 0.0;
  for (uint64_t i = n; i >= 1; --i) {
    h += std::pow(static_cast<double>(i), -alpha);
  }
  std::lock_guard<std::mutex> lock(mu);
  cache.emplace(std::make_pair(n, alpha), h);
  return h;
}

ConstantWeights::ConstantWeights(double value) : value_(value) {
  DWRS_CHECK_GE(value, 1.0);
}

double ConstantWeights::WeightAt(uint64_t /*index*/, Rng& /*rng*/) {
  return value_;
}

UniformWeights::UniformWeights(double lo, double hi) : lo_(lo), hi_(hi) {
  DWRS_CHECK_GE(lo, 1.0);
  DWRS_CHECK_GE(hi, lo);
}

double UniformWeights::WeightAt(uint64_t /*index*/, Rng& rng) {
  return lo_ + rng.NextDouble() * (hi_ - lo_);
}

ZipfWeights::ZipfWeights(uint64_t num_ranks, double alpha)
    : zipf_(num_ranks, alpha),
      scale_(std::pow(static_cast<double>(num_ranks), alpha)),
      normalization_(ZipfNormalization(num_ranks, alpha)) {}

double ZipfWeights::WeightAt(uint64_t /*index*/, Rng& rng) {
  const uint64_t rank = zipf_.Next(rng);
  // rank^-alpha scaled so the smallest possible weight is exactly 1.
  return scale_ * std::pow(static_cast<double>(rank), -zipf_.alpha());
}

double ZipfWeights::RankProbability(uint64_t rank) const {
  DWRS_CHECK(rank >= 1 && rank <= zipf_.n());
  return std::pow(static_cast<double>(rank), -zipf_.alpha()) / normalization_;
}

ParetoWeights::ParetoWeights(double alpha) : alpha_(alpha) {
  DWRS_CHECK_GT(alpha, 0.0);
}

double ParetoWeights::WeightAt(uint64_t /*index*/, Rng& rng) {
  return std::pow(rng.NextDoubleOpenLeft(), -1.0 / alpha_);
}

PlantedHeavyWeights::PlantedHeavyWeights(std::unique_ptr<WeightGenerator> base,
                                         std::vector<uint64_t> positions,
                                         double heavy_weight)
    : base_(std::move(base)),
      positions_(std::move(positions)),
      heavy_weight_(heavy_weight) {
  DWRS_CHECK(base_ != nullptr);
  DWRS_CHECK_GE(heavy_weight_, 1.0);
  std::sort(positions_.begin(), positions_.end());
}

double PlantedHeavyWeights::WeightAt(uint64_t index, Rng& rng) {
  if (std::binary_search(positions_.begin(), positions_.end(), index)) {
    return heavy_weight_;
  }
  return base_->WeightAt(index, rng);
}

GeometricGrowthWeights::GeometricGrowthWeights(double eps) : eps_(eps) {
  DWRS_CHECK_GT(eps, 0.0);
  DWRS_CHECK_LT(eps, 1.0);
}

double GeometricGrowthWeights::WeightAt(uint64_t index, Rng& /*rng*/) {
  if (index == 0) return 1.0;
  // eps * (1+eps)^i, kept >= 1 so the model's weight assumption holds.
  return std::max(1.0, eps_ * std::pow(1.0 + eps_, static_cast<double>(index)));
}

EpochPowerWeights::EpochPowerWeights(int sites, double base)
    : sites_(static_cast<uint64_t>(sites)), base_(base) {
  DWRS_CHECK_GT(sites, 0);
  DWRS_CHECK_GT(base, 1.0);
}

double EpochPowerWeights::WeightAt(uint64_t index, Rng& /*rng*/) {
  const uint64_t epoch = index / sites_;
  return std::pow(base_, static_cast<double>(epoch));
}

DoublingHeavyWeights::DoublingHeavyWeights(uint64_t burst_len)
    : burst_len_(burst_len) {
  DWRS_CHECK_GT(burst_len, 0u);
}

double DoublingHeavyWeights::WeightAt(uint64_t index, Rng& /*rng*/) {
  DWRS_CHECK_EQ(index, next_expected_)
      << "; DoublingHeavyWeights must be used sequentially from index 0";
  ++next_expected_;
  double w;
  if (index % (burst_len_ + 1) == 0) {
    w = std::max(1.0, total_so_far_);  // doubles the stream
  } else {
    w = 1.0;
  }
  total_so_far_ += w;
  return w;
}

SelfSimilarWeights::SelfSimilarWeights(double bias, int levels)
    : bias_(bias), levels_(levels) {
  DWRS_CHECK(bias > 0.0 && bias < 1.0);
  DWRS_CHECK(levels >= 1 && levels <= 40);
}

double SelfSimilarWeights::WeightAt(uint64_t index, Rng& /*rng*/) {
  // One-bits contribute `bias`, zero-bits (1 - bias), normalized by the
  // minimum per-bit factor so the smallest weight is 1.
  const double lo = std::min(bias_, 1.0 - bias_);
  const double one_factor = bias_ / lo;
  const double zero_factor = (1.0 - bias_) / lo;
  double weight = 1.0;
  for (int level = 0; level < levels_; ++level) {
    weight *= ((index >> level) & 1) ? one_factor : zero_factor;
  }
  return weight;
}

std::vector<double> MaterializeWeights(WeightGenerator& gen, uint64_t count,
                                       Rng& rng) {
  std::vector<double> out;
  out.reserve(count);
  for (uint64_t i = 0; i < count; ++i) out.push_back(gen.WeightAt(i, rng));
  return out;
}

}  // namespace dwrs
