#include "stream/scenario.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace dwrs {
namespace {

// Decorrelates derived seeds (batches, churn) from the workload seed so
// that e.g. the batch schedule never aliases the weight draws.
uint64_t DeriveSeed(uint64_t seed, uint64_t stream_id) {
  uint64_t state = seed ^ (0x9e3779b97f4a7c15ull * (stream_id + 1));
  return SplitMix64(&state);
}

std::vector<ScenarioSpec> BuildRegistry() {
  std::vector<ScenarioSpec> out;

  // 1. Steady baseline: the static workload every existing bench runs —
  // anchors the matrix so envelope drift on dynamics-free streams is
  // caught separately from drift under dynamics.
  {
    ScenarioSpec s;
    s.name = "steady_uniform";
    s.description = "uniform weights, round-robin sites, constant rate";
    s.make_weights = [](uint64_t) {
      return std::make_unique<UniformWeights>(1.0, 100.0);
    };
    s.make_partitioner = [] { return std::make_unique<RoundRobinPartitioner>(); };
    s.make_arrivals = [](uint64_t) {
      return std::make_unique<ConstantArrivals>(8);
    };
    out.push_back(std::move(s));
  }

  // 2. YCSB skew sweep: theta steps through {0.5, 0.7, 0.9, 0.99} in four
  // equal phases of the stream.
  {
    ScenarioSpec s;
    s.name = "zipf_sweep";
    s.description = "Zipf theta sweep 0.5->0.99 in four phases, random sites";
    s.make_weights = [](uint64_t n) {
      const auto thetas = ZipfSweepWeights::YcsbThetas();
      const uint64_t phase_len =
          std::max<uint64_t>(1, n / thetas.size());
      return std::make_unique<ZipfSweepWeights>(/*num_ranks=*/1000, thetas,
                                                phase_len);
    };
    s.make_partitioner = [] { return std::make_unique<RandomPartitioner>(); };
    s.make_arrivals = [](uint64_t) {
      return std::make_unique<ConstantArrivals>(8);
    };
    out.push_back(std::move(s));
  }

  // 3. Hot-key drift: a rotating heavy cohort over a uniform floor. Each
  // rotation forces the coordinator's level sets to absorb a fresh heavy
  // set, the dynamic the static planted-heavy stream never exercises.
  {
    ScenarioSpec s;
    s.name = "hot_key_drift";
    s.description = "rotating heavy residue class over a uniform floor";
    s.make_weights = [](uint64_t n) {
      auto base = std::make_unique<UniformWeights>(1.0, 4.0);
      const uint64_t rotate_every = std::max<uint64_t>(1, n / 8);
      return std::make_unique<HotKeyDriftWeights>(
          std::move(base), /*period=*/64, /*hot_count=*/4,
          /*heavy_weight=*/400.0, rotate_every);
    };
    s.make_partitioner = [] { return std::make_unique<RandomPartitioner>(); };
    s.make_arrivals = [](uint64_t) {
      return std::make_unique<ConstantArrivals>(8);
    };
    out.push_back(std::move(s));
  }

  // 4. Diurnal Zipf: skewed weights under a day/night arrival rate — the
  // paced feeder sees batches swinging 4x around the mean.
  {
    ScenarioSpec s;
    s.name = "diurnal_zipf";
    s.description = "Zipf(0.9) weights, sinusoidal arrival rate";
    s.make_weights = [](uint64_t) {
      return std::make_unique<ZipfWeights>(/*num_ranks=*/1000, /*alpha=*/0.9);
    };
    s.make_partitioner = [] { return std::make_unique<RandomPartitioner>(); };
    s.make_arrivals = [](uint64_t) {
      return std::make_unique<DiurnalArrivals>(/*mean=*/8.0, /*amplitude=*/0.75,
                                               /*period=*/50);
    };
    out.push_back(std::move(s));
  }

  // 5. Bursty hot site: heavy-tailed weights, all traffic on a hopping
  // hot site, on/off burst arrivals — the engine-queue stress cell.
  {
    ScenarioSpec s;
    s.name = "bursty_hotsite";
    s.description = "Pareto weights, hopping hot site, on/off bursts";
    s.make_weights = [](uint64_t) {
      return std::make_unique<ParetoWeights>(/*alpha=*/1.5);
    };
    s.make_partitioner = [] {
      return std::make_unique<AdversarialPartitioner>(/*hop_every=*/97);
    };
    s.make_arrivals = [](uint64_t) {
      return std::make_unique<BurstyArrivals>(/*base=*/2, /*burst=*/32,
                                              /*burst_prob=*/0.05,
                                              /*burst_len=*/5);
    };
    out.push_back(std::move(s));
  }

  // 6. Skewed site ownership: Zipf(1.0) item->site law — site 0 owns
  // ~37% of an 8-site stream, the statistically-typical imbalance.
  {
    ScenarioSpec s;
    s.name = "skewed_sites";
    s.description = "uniform weights, Zipf(1.0) site ownership";
    s.make_weights = [](uint64_t) {
      return std::make_unique<UniformWeights>(1.0, 100.0);
    };
    s.make_partitioner = [] {
      return std::make_unique<SkewedSitePartitioner>(/*theta=*/1.0);
    };
    s.make_arrivals = [](uint64_t) {
      return std::make_unique<ConstantArrivals>(8);
    };
    out.push_back(std::move(s));
  }

  // 7. Site churn: sites crash mid-stream, drop their volatile state, and
  // rejoin via the resync path. Runs that lose items must be flagged
  // degraded by the harness (never silently wrong); clean runs must stay
  // exact over the survivor set.
  {
    ScenarioSpec s;
    s.name = "site_churn";
    s.description = "uniform weights, sites crash and resync mid-stream";
    s.make_weights = [](uint64_t) {
      return std::make_unique<UniformWeights>(1.0, 100.0);
    };
    s.make_partitioner = [] { return std::make_unique<RoundRobinPartitioner>(); };
    s.make_arrivals = [](uint64_t) {
      return std::make_unique<ConstantArrivals>(8);
    };
    s.has_churn = true;
    s.churn.crash_prob = 0.002;
    s.churn.crash_down_items = 6;
    out.push_back(std::move(s));
  }

  return out;
}

}  // namespace

const std::vector<ScenarioSpec>& ScenarioRegistry() {
  static const std::vector<ScenarioSpec>* registry =
      new std::vector<ScenarioSpec>(BuildRegistry());
  return *registry;
}

const ScenarioSpec* FindScenario(const std::string& name) {
  for (const ScenarioSpec& s : ScenarioRegistry()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

Workload BuildScenarioWorkload(const ScenarioSpec& spec, uint64_t seed,
                               bool quick) {
  DWRS_CHECK(spec.make_weights != nullptr);
  DWRS_CHECK(spec.make_partitioner != nullptr);
  const uint64_t n = quick ? spec.items_quick : spec.items_full;
  return WorkloadBuilder()
      .num_sites(spec.num_sites)
      .num_items(n)
      .seed(seed)
      .weights(spec.make_weights(n))
      .partitioner(spec.make_partitioner())
      .Build();
}

std::vector<uint32_t> BuildScenarioBatches(const ScenarioSpec& spec,
                                           uint64_t num_items, uint64_t seed) {
  DWRS_CHECK(spec.make_arrivals != nullptr);
  auto process = spec.make_arrivals(num_items);
  Rng rng(DeriveSeed(seed, /*stream_id=*/1));
  return MaterializeBatches(*process, num_items, rng);
}

faults::FaultConfig ScenarioChurn(const ScenarioSpec& spec, uint64_t seed) {
  faults::FaultConfig config = spec.churn;
  config.seed = DeriveSeed(seed, /*stream_id=*/2);
  return config;
}

}  // namespace dwrs
