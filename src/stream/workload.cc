#include "stream/workload.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace dwrs {

Workload::Workload(int num_sites, std::vector<WorkloadEvent> events)
    : num_sites_(num_sites), events_(std::move(events)) {
  DWRS_CHECK_GT(num_sites, 0);
  for (const WorkloadEvent& e : events_) {
    DWRS_CHECK(e.site >= 0 && e.site < num_sites_);
    DWRS_CHECK_GT(e.item.weight, 0.0);
  }
}

double Workload::TotalWeight(uint64_t prefix) const {
  const uint64_t n = std::min<uint64_t>(prefix, events_.size());
  double total = 0.0;
  for (uint64_t i = 0; i < n; ++i) total += events_[i].item.weight;
  return total;
}

std::vector<double> Workload::PrefixWeights(uint64_t prefix) const {
  const uint64_t n = std::min<uint64_t>(prefix, events_.size());
  std::vector<double> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) out.push_back(events_[i].item.weight);
  return out;
}

WorkloadBuilder& WorkloadBuilder::num_sites(int k) {
  num_sites_ = k;
  return *this;
}

WorkloadBuilder& WorkloadBuilder::num_items(uint64_t n) {
  num_items_ = n;
  return *this;
}

WorkloadBuilder& WorkloadBuilder::seed(uint64_t seed) {
  seed_ = seed;
  return *this;
}

WorkloadBuilder& WorkloadBuilder::weights(
    std::unique_ptr<WeightGenerator> gen) {
  weights_ = std::move(gen);
  return *this;
}

WorkloadBuilder& WorkloadBuilder::partitioner(std::unique_ptr<Partitioner> p) {
  partitioner_ = std::move(p);
  return *this;
}

WorkloadBuilder& WorkloadBuilder::integer_weights(bool v) {
  integer_weights_ = v;
  return *this;
}

Workload WorkloadBuilder::Build() {
  if (!weights_) weights_ = std::make_unique<ConstantWeights>(1.0);
  if (!partitioner_) partitioner_ = std::make_unique<RoundRobinPartitioner>();
  Rng weight_rng(seed_);
  Rng partition_rng(seed_ ^ 0xD1F3A5B7C9E80142ull);
  std::vector<WorkloadEvent> events;
  events.reserve(num_items_);
  for (uint64_t i = 0; i < num_items_; ++i) {
    WorkloadEvent e;
    e.site = partitioner_->SiteFor(i, num_sites_, partition_rng);
    e.item.id = i;
    double w = weights_->WeightAt(i, weight_rng);
    if (integer_weights_) w = std::max(1.0, std::round(w));
    e.item.weight = w;
    events.push_back(e);
  }
  return Workload(num_sites_, std::move(events));
}

}  // namespace dwrs
