#include "stream/dynamics.h"

#include <cmath>

#include "util/check.h"

namespace dwrs {

// ---------------------------------------------------------------------
// HotKeyDriftWeights.

HotKeyDriftWeights::HotKeyDriftWeights(std::unique_ptr<WeightGenerator> base,
                                       uint64_t period, uint64_t hot_count,
                                       double heavy_weight,
                                       uint64_t rotate_every)
    : base_(std::move(base)),
      period_(period),
      hot_count_(hot_count),
      heavy_weight_(heavy_weight),
      rotate_every_(rotate_every) {
  DWRS_CHECK(base_ != nullptr);
  DWRS_CHECK_GT(period, 0u);
  DWRS_CHECK(hot_count >= 1 && hot_count <= period);
  DWRS_CHECK_GE(heavy_weight, 1.0);
  DWRS_CHECK_GT(rotate_every, 0u);
}

uint64_t HotKeyDriftWeights::HotOffset(uint64_t phase) const {
  // A fixed odd stride walks the hot window through every residue class
  // (odd is coprime with any period that is a power of two, and visits
  // all classes of any period within period rotations otherwise).
  constexpr uint64_t kStride = 7919;  // 1000th prime
  return (phase * kStride) % period_;
}

bool HotKeyDriftWeights::IsHot(uint64_t index) const {
  const uint64_t phase = index / rotate_every_;
  const uint64_t offset = HotOffset(phase);
  const uint64_t r = (index % period_ + period_ - offset) % period_;
  return r < hot_count_;
}

double HotKeyDriftWeights::WeightAt(uint64_t index, Rng& rng) {
  // The base generator draws for every position, hot or not, so the
  // RNG stream — and hence every cold weight — is independent of the
  // rotation schedule.
  const double base = base_->WeightAt(index, rng);
  return IsHot(index) ? heavy_weight_ : base;
}

// ---------------------------------------------------------------------
// ZipfSweepWeights.

ZipfSweepWeights::ZipfSweepWeights(uint64_t num_ranks,
                                   std::vector<double> thetas,
                                   uint64_t phase_len)
    : num_ranks_(num_ranks), thetas_(std::move(thetas)),
      phase_len_(phase_len) {
  DWRS_CHECK_GE(num_ranks, 1u);
  DWRS_CHECK(!thetas_.empty());
  DWRS_CHECK_GT(phase_len, 0u);
  samplers_.reserve(thetas_.size());
  scales_.reserve(thetas_.size());
  for (double theta : thetas_) {
    DWRS_CHECK_GT(theta, 0.0);
    samplers_.emplace_back(num_ranks_, theta);
    scales_.push_back(std::pow(static_cast<double>(num_ranks_), theta));
  }
}

double ZipfSweepWeights::ThetaAt(uint64_t index) const {
  return thetas_[(index / phase_len_) % thetas_.size()];
}

double ZipfSweepWeights::WeightAt(uint64_t index, Rng& rng) {
  const size_t phase = (index / phase_len_) % thetas_.size();
  const uint64_t rank = samplers_[phase].Next(rng);
  return scales_[phase] *
         std::pow(static_cast<double>(rank), -thetas_[phase]);
}

std::vector<double> ZipfSweepWeights::YcsbThetas() {
  return {0.5, 0.7, 0.9, 0.99};
}

// ---------------------------------------------------------------------
// Arrival processes.

ConstantArrivals::ConstantArrivals(uint64_t batch) : batch_(batch) {
  DWRS_CHECK_GT(batch, 0u);
}

uint64_t ConstantArrivals::BatchAt(uint64_t /*step*/, Rng& /*rng*/) {
  return batch_;
}

DiurnalArrivals::DiurnalArrivals(double mean, double amplitude,
                                 uint64_t period)
    : mean_(mean), amplitude_(amplitude), period_(period) {
  DWRS_CHECK_GE(mean, 1.0);
  DWRS_CHECK(amplitude >= 0.0 && amplitude <= 1.0);
  DWRS_CHECK_GT(period, 0u);
}

uint64_t DiurnalArrivals::BatchAt(uint64_t step, Rng& /*rng*/) {
  constexpr double kTwoPi = 6.283185307179586477;
  const double phase =
      kTwoPi * static_cast<double>(step % period_) /
      static_cast<double>(period_);
  const double rate = mean_ * (1.0 + amplitude_ * std::sin(phase));
  const double rounded = std::round(rate);
  return rounded < 1.0 ? 1 : static_cast<uint64_t>(rounded);
}

BurstyArrivals::BurstyArrivals(uint64_t base, uint64_t burst,
                               double burst_prob, uint64_t burst_len)
    : base_(base), burst_(burst), burst_prob_(burst_prob),
      burst_len_(burst_len) {
  DWRS_CHECK_GT(base, 0u);
  DWRS_CHECK_GE(burst, base);
  DWRS_CHECK(burst_prob >= 0.0 && burst_prob <= 1.0);
  DWRS_CHECK_GT(burst_len, 0u);
}

uint64_t BurstyArrivals::BatchAt(uint64_t step, Rng& rng) {
  DWRS_CHECK_EQ(step, next_expected_)
      << "; BurstyArrivals must be driven sequentially from step 0";
  ++next_expected_;
  if (burst_remaining_ > 0) {
    --burst_remaining_;
    return burst_;
  }
  if (rng.NextDouble() < burst_prob_) {
    burst_remaining_ = burst_len_ - 1;  // this step is the first of the burst
    return burst_;
  }
  return base_;
}

std::vector<uint32_t> MaterializeBatches(ArrivalProcess& process,
                                         uint64_t total_items, Rng& rng) {
  std::vector<uint32_t> out;
  uint64_t covered = 0;
  uint64_t step = 0;
  while (covered < total_items) {
    uint64_t b = process.BatchAt(step++, rng);
    DWRS_CHECK_GT(b, 0u);
    if (b > total_items - covered) b = total_items - covered;
    out.push_back(static_cast<uint32_t>(b));
    covered += b;
  }
  return out;
}

// ---------------------------------------------------------------------
// SkewedSitePartitioner.

SkewedSitePartitioner::SkewedSitePartitioner(double theta) : theta_(theta) {
  DWRS_CHECK_GT(theta, 0.0);
}

int SkewedSitePartitioner::SiteFor(uint64_t /*index*/, int num_sites,
                                   Rng& rng) {
  DWRS_CHECK_GT(num_sites, 0);
  if (!zipf_ || zipf_->n() != static_cast<uint64_t>(num_sites)) {
    DWRS_CHECK(!zipf_) << " SkewedSitePartitioner used with varying k";
    zipf_.emplace(static_cast<uint64_t>(num_sites), theta_);
  }
  return static_cast<int>(zipf_->Next(rng) - 1);
}

std::vector<double> SkewedSitePartitioner::SiteProbabilities(int num_sites,
                                                             double theta) {
  DWRS_CHECK_GT(num_sites, 0);
  const double h =
      ZipfNormalization(static_cast<uint64_t>(num_sites), theta);
  std::vector<double> probs;
  probs.reserve(static_cast<size_t>(num_sites));
  for (int i = 0; i < num_sites; ++i) {
    probs.push_back(std::pow(static_cast<double>(i + 1), -theta) / h);
  }
  return probs;
}

}  // namespace dwrs
