#include "stream/sharding.h"

namespace dwrs {

std::vector<Workload> SplitByShard(const Workload& workload,
                                   const ShardTopology& topology) {
  DWRS_CHECK_EQ(workload.num_sites(), topology.num_sites());
  std::vector<std::vector<WorkloadEvent>> events(
      static_cast<size_t>(topology.num_shards()));
  for (const WorkloadEvent& event : workload.events()) {
    const int shard = topology.ShardOf(event.site);
    events[static_cast<size_t>(shard)].push_back(
        WorkloadEvent{topology.LocalOf(event.site), event.item});
  }
  std::vector<Workload> out;
  out.reserve(events.size());
  for (int shard = 0; shard < topology.num_shards(); ++shard) {
    out.emplace_back(topology.SiteCount(shard),
                     std::move(events[static_cast<size_t>(shard)]));
  }
  return out;
}

uint64_t ShardSeed(uint64_t base, int shard) {
  uint64_t z = base + 0x9E3779B97F4A7C15ull * (static_cast<uint64_t>(shard) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace dwrs
