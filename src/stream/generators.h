// Weight generators: the synthetic workloads used across tests, benches,
// and examples. Includes the skewed streams motivating the paper and the
// adversarial streams from its lower bound constructions (Theorems 5, 7).

#ifndef DWRS_STREAM_GENERATORS_H_
#define DWRS_STREAM_GENERATORS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "random/distributions.h"
#include "random/rng.h"
#include "stream/item.h"

namespace dwrs {

// Produces the weight of the item at stream position `index` (0-based).
// Implementations may use the Rng; deterministic generators ignore it.
class WeightGenerator {
 public:
  virtual ~WeightGenerator() = default;
  virtual double WeightAt(uint64_t index, Rng& rng) = 0;
};

// All weights equal to `value` (the unweighted special case; the weighted
// SWOR lower bound of Corollary 2 instantiates this).
class ConstantWeights : public WeightGenerator {
 public:
  explicit ConstantWeights(double value = 1.0);
  double WeightAt(uint64_t index, Rng& rng) override;

 private:
  double value_;
};

// Uniform in [lo, hi].
class UniformWeights : public WeightGenerator {
 public:
  UniformWeights(double lo, double hi);
  double WeightAt(uint64_t index, Rng& rng) override;

 private:
  double lo_;
  double hi_;
};

// Generalized harmonic number H_{n,alpha} = sum_{i=1..n} i^-alpha — the
// normalization constant of a Zipf(alpha) law over ranks 1..n. Memoized
// per (n, alpha): scenario sweeps construct many generators/partitioners
// over the same rank space, and the sum is O(n) to evaluate.
double ZipfNormalization(uint64_t n, double alpha);

// Weight = rank^-alpha scaled so the minimum weight is >= 1, rank drawn
// Zipf(alpha) over [1, num_ranks]. Models skewed query / flow streams.
class ZipfWeights : public WeightGenerator {
 public:
  ZipfWeights(uint64_t num_ranks, double alpha);
  double WeightAt(uint64_t index, Rng& rng) override;

  // H_{num_ranks, alpha}: the exact normalization of the rank law.
  double normalization() const { return normalization_; }
  // P(rank drawn = rank) = rank^-alpha / H_{num_ranks, alpha}; the exact
  // per-rank probabilities backing the distribution tests and the
  // skewed-site ownership fractions.
  double RankProbability(uint64_t rank) const;

 private:
  ZipfSampler zipf_;
  double scale_;
  double normalization_;
};

// Pareto(alpha, minimum 1): heavy-tailed weights.
class ParetoWeights : public WeightGenerator {
 public:
  explicit ParetoWeights(double alpha);
  double WeightAt(uint64_t index, Rng& rng) override;

 private:
  double alpha_;
};

// A base generator plus planted heavy items: at each position in
// `positions`, the weight is `heavy_fraction` times the expected total
// base weight of the whole stream. Exercises the level-set machinery.
class PlantedHeavyWeights : public WeightGenerator {
 public:
  PlantedHeavyWeights(std::unique_ptr<WeightGenerator> base,
                      std::vector<uint64_t> positions, double heavy_weight);
  double WeightAt(uint64_t index, Rng& rng) override;

 private:
  std::unique_ptr<WeightGenerator> base_;
  std::vector<uint64_t> positions_;  // sorted
  double heavy_weight_;
};

// The Theorem 5 hard stream: w_i = eps * (1+eps)^i (and w_0 = 1), so every
// arriving item is an eps/2 heavy hitter the moment it arrives.
class GeometricGrowthWeights : public WeightGenerator {
 public:
  explicit GeometricGrowthWeights(double eps);
  double WeightAt(uint64_t index, Rng& rng) override;

 private:
  double eps_;
};

// The Theorem 7 / Theorem 5 second construction: epoch i consists of
// `sites` items of weight k^i each (site j receives one item per epoch).
class EpochPowerWeights : public WeightGenerator {
 public:
  EpochPowerWeights(int sites, double base);
  double WeightAt(uint64_t index, Rng& rng) override;

 private:
  uint64_t sites_;
  double base_;
};

// The ablation stream for E5: "doubling heavies" — item at every
// `burst_len`-boundary has weight equal to the total weight so far
// (doubling the stream), followed by a burst of unit-weight items. Without
// level-set withholding the light items in each burst keep beating the
// depressed threshold.
class DoublingHeavyWeights : public WeightGenerator {
 public:
  explicit DoublingHeavyWeights(uint64_t burst_len);
  double WeightAt(uint64_t index, Rng& rng) override;

 private:
  uint64_t burst_len_;
  double total_so_far_ = 0.0;
  uint64_t next_expected_ = 0;  // enforces sequential use
};

// Self-similar "b-model" weights: the 80/20 rule applied recursively.
// The weight at position i is a product over the low `levels` bits of i —
// each one-bit contributes `bias`, each zero-bit (1 - bias) — normalized
// so the minimum weight is 1. Deterministic, and bursty at every time
// scale: any aligned 2^j-window concentrates a `bias` fraction of its
// weight in one half. The classic self-similar traffic model, used as an
// engine stress workload (weights spanning ~(bias/(1-bias))^levels with
// heavy items clustered in bursts rather than spread uniformly).
class SelfSimilarWeights : public WeightGenerator {
 public:
  explicit SelfSimilarWeights(double bias = 0.7, int levels = 16);
  double WeightAt(uint64_t index, Rng& rng) override;

 private:
  double bias_;
  int levels_;
};

// Materializes `count` weights from a generator (positions 0..count-1).
std::vector<double> MaterializeWeights(WeightGenerator& gen, uint64_t count,
                                       Rng& rng);

}  // namespace dwrs

#endif  // DWRS_STREAM_GENERATORS_H_
