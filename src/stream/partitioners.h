// Partitioners decide which site observes each stream position. The
// paper's model lets an adversary choose the partitioning; these cover the
// benign and the adversarial cases used in the analysis.

#ifndef DWRS_STREAM_PARTITIONERS_H_
#define DWRS_STREAM_PARTITIONERS_H_

#include <cstdint>

#include "random/rng.h"

namespace dwrs {

class Partitioner {
 public:
  virtual ~Partitioner() = default;
  // Site index in [0, num_sites) for the item at stream position `index`.
  virtual int SiteFor(uint64_t index, int num_sites, Rng& rng) = 0;
};

// index mod k.
class RoundRobinPartitioner : public Partitioner {
 public:
  int SiteFor(uint64_t index, int num_sites, Rng& rng) override;
};

// Uniformly random site per item.
class RandomPartitioner : public Partitioner {
 public:
  int SiteFor(uint64_t index, int num_sites, Rng& rng) override;
};

// Everything to one site; degenerate case where the distributed problem
// collapses to a two-party one.
class SingleSitePartitioner : public Partitioner {
 public:
  explicit SingleSitePartitioner(int site = 0);
  int SiteFor(uint64_t index, int num_sites, Rng& rng) override;

 private:
  int site_;
};

// The concurrent-engine stress case: every item lands on one hot site
// while the remaining k-1 sit idle — the worst case for per-site
// threading (zero parallelism, maximum pressure on a single item queue).
// With hop_every > 0 the hot site advances every `hop_every` items,
// sweeping the saturation across workers; hop_every == 0 pins it to site
// 0 forever. Distinct from SingleSitePartitioner, which models the
// protocol's two-party degeneration — this one exists to saturate and
// rotate engine queues under load.
class AdversarialPartitioner : public Partitioner {
 public:
  explicit AdversarialPartitioner(uint64_t hop_every = 0);
  int SiteFor(uint64_t index, int num_sites, Rng& rng) override;

 private:
  uint64_t hop_every_;
};

// Contiguous blocks of `block_len` items rotate across sites — the
// Theorem 7 lower-bound schedule (each site receives its 2k^i updates
// consecutively within an epoch).
class BlockPartitioner : public Partitioner {
 public:
  explicit BlockPartitioner(uint64_t block_len);
  int SiteFor(uint64_t index, int num_sites, Rng& rng) override;

 private:
  uint64_t block_len_;
};

}  // namespace dwrs

#endif  // DWRS_STREAM_PARTITIONERS_H_
