#include "stream/partitioners.h"

#include "util/check.h"

namespace dwrs {

int RoundRobinPartitioner::SiteFor(uint64_t index, int num_sites,
                                   Rng& /*rng*/) {
  return static_cast<int>(index % static_cast<uint64_t>(num_sites));
}

int RandomPartitioner::SiteFor(uint64_t /*index*/, int num_sites, Rng& rng) {
  return static_cast<int>(rng.NextBounded(static_cast<uint64_t>(num_sites)));
}

SingleSitePartitioner::SingleSitePartitioner(int site) : site_(site) {
  DWRS_CHECK_GE(site, 0);
}

int SingleSitePartitioner::SiteFor(uint64_t /*index*/, int num_sites,
                                   Rng& /*rng*/) {
  DWRS_CHECK_LT(site_, num_sites);
  return site_;
}

AdversarialPartitioner::AdversarialPartitioner(uint64_t hop_every)
    : hop_every_(hop_every) {}

int AdversarialPartitioner::SiteFor(uint64_t index, int num_sites,
                                    Rng& /*rng*/) {
  if (hop_every_ == 0) return 0;
  return static_cast<int>((index / hop_every_) %
                          static_cast<uint64_t>(num_sites));
}

BlockPartitioner::BlockPartitioner(uint64_t block_len)
    : block_len_(block_len) {
  DWRS_CHECK_GT(block_len, 0u);
}

int BlockPartitioner::SiteFor(uint64_t index, int num_sites, Rng& /*rng*/) {
  return static_cast<int>((index / block_len_) %
                          static_cast<uint64_t>(num_sites));
}

}  // namespace dwrs
