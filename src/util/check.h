// Lightweight runtime assertion macros.
//
// DWRS_CHECK is always on (including release builds) and is used to guard
// API contracts and internal invariants that must never be violated.
// DWRS_DCHECK compiles away in release builds and is used for hot-path
// invariants that are too expensive to verify in production.

#ifndef DWRS_UTIL_CHECK_H_
#define DWRS_UTIL_CHECK_H_

#include <sstream>
#include <string>

namespace dwrs {
namespace internal_check {

// Aborts the process after printing `message` with source location info.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);

// Stream-capturing helper so DWRS_CHECK(x) << "context" works.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailed(file_, line_, expr_, stream_.str());
  }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal_check
}  // namespace dwrs

#define DWRS_CHECK(condition)                                             \
  while (!(condition))                                                    \
  ::dwrs::internal_check::CheckMessageBuilder(__FILE__, __LINE__,         \
                                              #condition)

#define DWRS_CHECK_GE(a, b) DWRS_CHECK((a) >= (b)) << " got " << (a)
#define DWRS_CHECK_GT(a, b) DWRS_CHECK((a) > (b)) << " got " << (a)
#define DWRS_CHECK_LE(a, b) DWRS_CHECK((a) <= (b)) << " got " << (a)
#define DWRS_CHECK_LT(a, b) DWRS_CHECK((a) < (b)) << " got " << (a)
#define DWRS_CHECK_EQ(a, b) DWRS_CHECK((a) == (b)) << " got " << (a)
#define DWRS_CHECK_NE(a, b) DWRS_CHECK((a) != (b)) << " got " << (a)

#ifdef NDEBUG
#define DWRS_DCHECK(condition) \
  while (false && !(condition)) \
  ::dwrs::internal_check::CheckMessageBuilder(__FILE__, __LINE__, #condition)
#else
#define DWRS_DCHECK(condition) DWRS_CHECK(condition)
#endif

#endif  // DWRS_UTIL_CHECK_H_
