// Minimal JSON scalar/string encoding shared by every emitter in the
// tree (obs snapshots, bench BENCH_*.json, the CLI's stats/trace
// output). One definition so the escaping and non-finite handling can
// never drift between paths.

#ifndef DWRS_UTIL_JSON_H_
#define DWRS_UTIL_JSON_H_

#include <cmath>
#include <cstdio>
#include <string>

namespace dwrs::util {

// %g alone would print "nan"/"inf" — not JSON — so non-finite values (a
// failed run, a divide-by-zero rate) become null rather than corrupting
// the output for downstream tooling.
inline std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

// JSON string encoding per RFC 8259: quotes and backslashes escaped, all
// control characters (< 0x20) emitted as \n-style shorthands or \u00XX.
inline std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    const unsigned char u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace dwrs::util

#endif  // DWRS_UTIL_JSON_H_
