#include "util/math_util.h"

#include <algorithm>

#include "util/check.h"

namespace dwrs {

int PowerOfTwoExponent(double base) {
  const int e = std::ilogb(base);
  if (e >= 1 && std::ldexp(1.0, e) == base) return e;
  return 0;
}

int FloorLogBase(double x, double base) {
  DWRS_CHECK_GT(base, 1.0);
  if (x < base) return 0;
  // base = 2^m: floor(log2 x) is the IEEE exponent (exact for every
  // normal x), and floor(log_{2^m} x) = floor(floor(log2 x) / m) — an
  // integer identity, so no boundary fix-up is needed.
  const int base_exp = PowerOfTwoExponent(base);
  if (base_exp != 0) return std::ilogb(x) / base_exp;
  int j = static_cast<int>(std::floor(std::log(x) / std::log(base)));
  // Guard against floating point rounding at boundaries: adjust so that
  // base^j <= x < base^(j+1) holds exactly with PowInt.
  while (j > 0 && PowInt(base, j) > x) --j;
  while (PowInt(base, j + 1) <= x) ++j;
  return j;
}

LevelIndexer::LevelIndexer(double base)
    : base_(base), base_exp_(PowerOfTwoExponent(base)) {
  DWRS_CHECK_GT(base, 1.0);
}

double PowInt(double base, int j) {
  DWRS_CHECK_GE(j, 0);
  double result = 1.0;
  double b = base;
  unsigned e = static_cast<unsigned>(j);
  while (e > 0) {
    if (e & 1u) result *= b;
    b *= b;
    e >>= 1u;
  }
  return result;
}

int FloorLog2U64(uint64_t x) {
  if (x == 0) return 0;
  return 63 - __builtin_clzll(x);
}

double Clamp(double x, double lo, double hi) {
  return std::min(hi, std::max(lo, x));
}

bool AlmostEqual(double a, double b, double tol) {
  double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= tol * scale;
}

double EpochBase(int num_sites, int sample_size) {
  DWRS_CHECK_GT(num_sites, 0);
  DWRS_CHECK_GT(sample_size, 0);
  return std::max(2.0, static_cast<double>(num_sites) / sample_size);
}

double Theorem3MessageBound(int num_sites, int sample_size,
                            double total_weight) {
  double k = num_sites;
  double s = sample_size;
  double w_over_s = std::max(2.0, total_weight / s);
  return k * std::log(w_over_s) / std::log(1.0 + k / s);
}

double NaiveMessageBound(int num_sites, int sample_size, double total_weight) {
  double k = num_sites;
  double s = sample_size;
  return k * s * std::log(std::max(2.0, total_weight));
}

}  // namespace dwrs
