// Small numeric helpers shared across modules.

#ifndef DWRS_UTIL_MATH_UTIL_H_
#define DWRS_UTIL_MATH_UTIL_H_

#include <cmath>
#include <cstdint>

namespace dwrs {

// Returns floor(log(x) / log(base)) clamped to >= 0; the "level" of a
// weight in the paper's Definition 4 with level base `base`.
int FloorLogBase(double x, double base);

// Returns base^j computed by repeated multiplication for small integer j
// (exact for the powers that fit a double without rounding surprises).
double PowInt(double base, int j);

// log2 of an unsigned integer (floor); 0 maps to 0.
int FloorLog2U64(uint64_t x);

// Numerically stable log(1+x).
inline double Log1p(double x) { return std::log1p(x); }

// Clamps x into [lo, hi].
double Clamp(double x, double lo, double hi);

// Returns true when |a - b| <= tol * max(1, |a|, |b|).
bool AlmostEqual(double a, double b, double tol);

// The paper's epoch/level base r = max{2, k/s}.
double EpochBase(int num_sites, int sample_size);

// Theoretical expected message bound of Theorem 3 (up to constants):
// k * log(W/s) / log(1 + k/s).
double Theorem3MessageBound(int num_sites, int sample_size, double total_weight);

// Naive baseline expectation (Section 1.2): ~ k*s*log(W).
double NaiveMessageBound(int num_sites, int sample_size, double total_weight);

}  // namespace dwrs

#endif  // DWRS_UTIL_MATH_UTIL_H_
