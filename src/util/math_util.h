// Small numeric helpers shared across modules.

#ifndef DWRS_UTIL_MATH_UTIL_H_
#define DWRS_UTIL_MATH_UTIL_H_

#include <cmath>
#include <cstdint>

namespace dwrs {

// Returns floor(log(x) / log(base)) clamped to >= 0; the "level" of a
// weight in the paper's Definition 4 with level base `base`. For bases
// that are exact powers of two (the common case: the paper's epoch/level
// base r = max{2, k/s} is 2 whenever k <= 2s) the result comes straight
// from the IEEE exponent field — exact at every level boundary, no
// transcendental; other bases fall back to the log ratio with an exact
// PowInt fix-up.
int FloorLogBase(double x, double base);

// When base = 2^m for integer m >= 1, returns m; otherwise 0. The
// discriminator behind FloorLogBase's exponent-extraction fast path,
// exposed so per-item callers can hoist it (LevelIndexer).
int PowerOfTwoExponent(double base);

// FloorLogBase with the base discriminated once at construction — the
// per-item form used on sampler hot paths (WsworSite::OnItems computes a
// level per item when withholding is enabled).
class LevelIndexer {
 public:
  explicit LevelIndexer(double base);

  int operator()(double x) const {
    if (x < base_) return 0;
    if (base_exp_ != 0) return std::ilogb(x) / base_exp_;
    return FloorLogBase(x, base_);
  }

  double base() const { return base_; }

 private:
  double base_;
  int base_exp_;  // m when base = 2^m, else 0
};

// Returns base^j computed by repeated multiplication for small integer j
// (exact for the powers that fit a double without rounding surprises).
double PowInt(double base, int j);

// log2 of an unsigned integer (floor); 0 maps to 0.
int FloorLog2U64(uint64_t x);

// Numerically stable log(1+x).
inline double Log1p(double x) { return std::log1p(x); }

// Clamps x into [lo, hi].
double Clamp(double x, double lo, double hi);

// Returns true when |a - b| <= tol * max(1, |a|, |b|).
bool AlmostEqual(double a, double b, double tol);

// The paper's epoch/level base r = max{2, k/s}.
double EpochBase(int num_sites, int sample_size);

// Theoretical expected message bound of Theorem 3 (up to constants):
// k * log(W/s) / log(1 + k/s).
double Theorem3MessageBound(int num_sites, int sample_size, double total_weight);

// Naive baseline expectation (Section 1.2): ~ k*s*log(W).
double NaiveMessageBound(int num_sites, int sample_size, double total_weight);

}  // namespace dwrs

#endif  // DWRS_UTIL_MATH_UTIL_H_
