#include "engine/sharded_engine.h"

#include <algorithm>
#include <utility>

namespace dwrs::engine {

ShardedEngine::ShardedEngine(const ShardedEngineConfig& config)
    : config_(config),
      topology_(config.num_sites, config.num_shards),
      coordinators_(static_cast<size_t>(config.num_shards), nullptr) {
  shards_.reserve(static_cast<size_t>(config.num_shards));
  for (int shard = 0; shard < config.num_shards; ++shard) {
    EngineConfig shard_config = config.shard;
    shard_config.num_sites = topology_.SiteCount(shard);
    shard_config.trace_shard = shard;
    if (shard_config.num_workers == 0) {
      // Split the auto worker budget across the shards: S independent
      // engines each sizing a pool for the whole machine would spawn
      // S times hardware_concurrency threads.
      const int total = Scheduler::ResolveWorkerCount(0, config.num_sites);
      shard_config.num_workers = std::max(1, total / config.num_shards);
    }
    shards_.push_back(std::make_unique<Engine>(shard_config));
  }
}

void ShardedEngine::AttachSite(int site, sim::SiteNode* node) {
  const int shard = topology_.ShardOf(site);
  shards_[Index(shard)]->AttachSite(topology_.LocalOf(site), node);
}

void ShardedEngine::AttachShardCoordinator(int shard,
                                           sim::CoordinatorNode* node) {
  DWRS_CHECK(node != nullptr);
  shards_[Index(shard)]->AttachCoordinator(node);
  coordinators_[Index(shard)] = node;
}

void ShardedEngine::SetShardSnapshotHook(int shard,
                                         std::function<void()> hook) {
  shards_[Index(shard)]->SetSnapshotHook(std::move(hook));
}

void ShardedEngine::Push(int site, const Item& item) {
  const int shard = topology_.ShardOf(site);
  shards_[Index(shard)]->Push(topology_.LocalOf(site), item);
}

void ShardedEngine::Push(int site, const Item* items, size_t n) {
  const int shard = topology_.ShardOf(site);
  shards_[Index(shard)]->Push(topology_.LocalOf(site), items, n);
}

void ShardedEngine::Flush() {
  for (auto& shard : shards_) shard->Flush();
}

void ShardedEngine::Run(const Workload& workload,
                        const std::function<void(uint64_t)>& on_step) {
  DWRS_CHECK_EQ(workload.num_sites(), topology_.num_sites());
  const bool step_synchronous =
      config_.shard.step_synchronous || on_step != nullptr;
  for (uint64_t i = 0; i < workload.size(); ++i) {
    const WorkloadEvent& event = workload.event(i);
    const int shard = topology_.ShardOf(event.site);
    shards_[Index(shard)]->Push(topology_.LocalOf(event.site), event.item);
    if (step_synchronous) {
      // Only the owning shard can have in-flight work: quiescing it alone
      // reproduces sim::ShardedRuntime's per-event delivery exactly.
      shards_[Index(shard)]->Flush();
      if (on_step) on_step(i + 1);
    }
  }
  Flush();
}

void ShardedEngine::Shutdown() {
  for (auto& shard : shards_) shard->Shutdown();
}

MergeableSample ShardedEngine::MergedSample() const {
  std::vector<MergeableSample> summaries;
  summaries.reserve(coordinators_.size());
  for (size_t shard = 0; shard < coordinators_.size(); ++shard) {
    summaries.push_back(sim::CheckedShardSummary(coordinators_[shard], shard));
  }
  return MergeShardSamples(summaries);
}

sim::MessageStats ShardedEngine::AggregateMessageSnapshot() const {
  sim::MessageStats total;
  for (const auto& shard : shards_) total += shard->stats().MessageSnapshot();
  return total;
}

std::vector<uint64_t> ShardedEngine::PerShardMessages() const {
  std::vector<uint64_t> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    out.push_back(shard->stats().total_messages());
  }
  return out;
}

uint64_t ShardedEngine::steps() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->step();
  return total;
}

}  // namespace dwrs::engine
