// Configuration of the concurrent execution engine.

#ifndef DWRS_ENGINE_CONFIG_H_
#define DWRS_ENGINE_CONFIG_H_

#include <cstddef>

namespace dwrs::engine {

struct EngineConfig {
  int num_sites = 4;  // k logical sites, multiplexed over the worker pool

  // Worker threads in the scheduler pool. 0 = auto: hardware_concurrency
  // minus two (the feeder and coordinator threads), clamped to
  // [1, num_sites]. Logical sites are homed to worker (site mod N); the
  // pool size — not k — bounds the thread count, which is what lets one
  // box run k = 10^5..10^6 sites.
  int num_workers = 0;

  // When true (default), a worker whose own run queue is dry steals
  // runnable sites from the back of other workers' queues, so skewed
  // per-site load spreads across the pool. When false, each site only
  // ever runs on its home worker — stronger locality, no load balancing.
  bool work_stealing = true;

  // Items per ingestion batch. The feeder buffers this many items per site
  // before handing them to the site worker in one queue operation, so the
  // per-item synchronization cost is one atomic op amortized over the
  // batch. Larger batches raise throughput and the staleness of the
  // engine-side step clock; 1 degenerates to per-item handoff.
  size_t batch_size = 512;

  // Capacity of each site's item queue, in batches. A full queue blocks
  // the feeder (ingestion backpressure).
  size_t item_queue_batches = 16;

  // Capacity of the site->coordinator MPSC message channel. A full
  // channel blocks the sending site worker, which in turn stalls its item
  // queue and eventually the feeder — backpressure propagates end to end.
  size_t message_queue_capacity = 1 << 14;

  // Site workers hand queued batches to the endpoint's OnItems span path
  // in sub-batches of this many items, polling the control channel once
  // per sub-batch (instead of per item) so fresh thresholds still land
  // promptly while the hot loop stays free of synchronization. Smaller
  // values tighten control latency; larger values maximize span length.
  size_t control_poll_stride = 64;

  // When true, Run() quiesces the whole engine after every event before
  // invoking the per-step hook. The execution is then bit-identical to
  // sim::Runtime with zero delivery delay (same endpoint callbacks in the
  // same order with the same RNG draws) — the mode the equivalence tests
  // run — at the price of destroying pipelining. Passing an on_step hook
  // to Run() forces this behaviour for the duration of that Run, since
  // querying endpoints is only legal at quiesce points.
  bool step_synchronous = false;

  // Shard label stamped on this engine's flight-recorder events (the
  // sharded backend sets it per shard; standalone engines leave it 0).
  int trace_shard = 0;
};

}  // namespace dwrs::engine

#endif  // DWRS_ENGINE_CONFIG_H_
